// The server.metrics exposition plane: response shape, per-op error
// tallies, the Prometheus renderer round-tripping through the strict
// validator, quantile agreement between the live exposition and the
// shared offline helper, and trace-sink flushing on drain.
#include "serve/metrics.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/stats.h"
#include "core/telemetry.h"
#include "serve/server.h"

namespace ceal::serve {
namespace {

// RS drains its whole budget in one step, so the shape test uses CEAL,
// whose stepper advances one iteration at a time and stays kRunning
// after a partial step.
const char* kCreateLine =
    "{\"op\":\"session.create\",\"id\":\"m1\",\"workflow\":\"LV\","
    "\"objective\":\"exec\",\"budget\":30,\"algorithm\":\"CEAL\","
    "\"pool_size\":40,\"component_samples\":20,\"seed\":1}";

json::Value expect_ok(const std::string& response_line) {
  json::Value response = json::Value::parse(response_line);
  EXPECT_TRUE(response.at("ok").as_bool()) << response_line;
  return response;
}

TEST(ServeMetricsTest, ResponseCarriesServerSectionsAndSessions) {
  telemetry::Telemetry tel;
  ServerOptions options;
  options.telemetry = &tel;
  ServerCore core(options);
  expect_ok(core.handle_line(kCreateLine));
  expect_ok(core.handle_line(
      "{\"op\":\"session.step\",\"id\":\"m1\",\"steps\":2}"));

  const json::Value metrics =
      expect_ok(core.handle_line("{\"op\":\"server.metrics\"}"));
  const json::Value& server = metrics.at("server");
  EXPECT_EQ(server.at("sessions").as_int(), 1);
  EXPECT_EQ(server.at("requests").as_int(), 3);
  const json::Value& ops = server.at("ops");
  EXPECT_EQ(ops.at("create").at("requests").as_int(), 1);
  EXPECT_EQ(ops.at("step").at("requests").as_int(), 1);
  EXPECT_EQ(ops.at("metrics").at("requests").as_int(), 1);
  EXPECT_TRUE(metrics.contains("counters"));
  EXPECT_TRUE(metrics.contains("gauges"));
  EXPECT_TRUE(metrics.contains("spans"));
  EXPECT_TRUE(metrics.contains("histograms"));
  // Stepping through the server records the step-latency histogram.
  EXPECT_TRUE(metrics.at("histograms").contains("timing.serve.step_s"));

  const json::Value& sessions = metrics.at("sessions");
  ASSERT_EQ(sessions.size(), 1u);
  const json::Value& session = sessions.at(std::size_t{0});
  EXPECT_EQ(session.at("id").as_string(), "m1");
  EXPECT_EQ(session.at("state").as_string(), "running");
  EXPECT_EQ(session.at("steps").as_int(), 2);
  EXPECT_TRUE(session.contains("budget_used"));
  EXPECT_TRUE(session.contains("budget_remaining"));
  EXPECT_EQ(session.at("budget_used").as_int() +
                session.at("budget_remaining").as_int(),
            session.at("budget").as_int());
}

TEST(ServeMetricsTest, PerOpErrorTalliesCountFailures) {
  telemetry::Telemetry tel;
  ServerOptions options;
  options.telemetry = &tel;
  ServerCore core(options);
  expect_ok(core.handle_line(kCreateLine));
  // Cancel twice: the second is a per-op error charged to "cancel".
  expect_ok(core.handle_line("{\"op\":\"session.cancel\",\"id\":\"m1\"}"));
  const json::Value err = json::Value::parse(
      core.handle_line("{\"op\":\"session.cancel\",\"id\":\"m1\"}"));
  EXPECT_FALSE(err.at("ok").as_bool());

  const json::Value metrics =
      expect_ok(core.handle_line("{\"op\":\"server.metrics\"}"));
  const json::Value& ops = metrics.at("server").at("ops");
  EXPECT_EQ(ops.at("cancel").at("requests").as_int(), 2);
  EXPECT_EQ(ops.at("cancel").at("errors").as_int(), 1);
  EXPECT_EQ(ops.at("create").at("errors").as_int(), 0);
  EXPECT_EQ(tel.counter("serve.op.cancel.errors"), 1u);
}

TEST(ServeMetricsTest, PrometheusRenderPassesStrictValidation) {
  telemetry::Telemetry tel;
  ServerOptions options;
  options.telemetry = &tel;
  ServerCore core(options);
  expect_ok(core.handle_line(kCreateLine));
  expect_ok(core.handle_line(
      "{\"op\":\"session.step\",\"id\":\"m1\",\"steps\":8}"));

  const std::string text = to_prometheus(core.metrics_json());
  const std::size_t samples = validate_prometheus(text);
  EXPECT_GT(samples, 10u);
  EXPECT_NE(text.find("ceal_serve_op_requests_total{op=\"create\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE ceal_timing_serve_step_s histogram"),
            std::string::npos);
  EXPECT_NE(text.find("ceal_session_budget_used{id=\"m1\"}"),
            std::string::npos);
}

TEST(ServeMetricsTest, ValidatorRejectsMalformedExposition) {
  // Sample without a TYPE declaration.
  EXPECT_THROW(validate_prometheus("nope 1\n"), ProtocolError);
  // Non-cumulative histogram buckets.
  EXPECT_THROW(validate_prometheus("# TYPE h histogram\n"
                                   "h_bucket{le=\"1\"} 5\n"
                                   "h_bucket{le=\"2\"} 3\n"
                                   "h_bucket{le=\"+Inf\"} 5\n"
                                   "h_sum 4\nh_count 5\n"),
               ProtocolError);
  // +Inf bucket disagreeing with _count.
  EXPECT_THROW(validate_prometheus("# TYPE h histogram\n"
                                   "h_bucket{le=\"1\"} 2\n"
                                   "h_bucket{le=\"+Inf\"} 2\n"
                                   "h_sum 1\nh_count 3\n"),
               ProtocolError);
  // Histogram not ending in +Inf.
  EXPECT_THROW(validate_prometheus("# TYPE h histogram\n"
                                   "h_bucket{le=\"1\"} 2\n"
                                   "h_sum 1\nh_count 2\n"),
               ProtocolError);
  // Garbage value.
  EXPECT_THROW(validate_prometheus("# TYPE g gauge\ng banana\n"),
               ProtocolError);
  // A well-formed family passes and counts its samples.
  EXPECT_EQ(validate_prometheus("# TYPE h histogram\n"
                                "h_bucket{le=\"1\"} 2\n"
                                "h_bucket{le=\"+Inf\"} 3\n"
                                "h_sum 4.5\nh_count 3\n"),
            4u);
}

TEST(ServeMetricsTest, ExpositionQuantilesMatchTheSharedOfflineHelper) {
  // The live exposition computes p50/p90/p99 through the exact same
  // core/stats.h histogram_quantile an offline consumer of the bucket
  // array would use — the values must agree bit-for-bit.
  telemetry::Telemetry tel;
  const std::vector<double> values{1, 2, 2, 3, 5, 8, 13, 21, 34, 55};
  for (double v : values) tel.observe("probe", v);

  const json::Value sections = telemetry_sections_json(&tel);
  const json::Value& hist = sections.at("histograms").at("probe");
  const telemetry::HistogramStats stats = tel.histogram_stats("probe");
  for (const auto& [key, q] :
       std::vector<std::pair<const char*, double>>{
           {"p50", 0.50}, {"p90", 0.90}, {"p99", 0.99}}) {
    const double offline = histogram_quantile(
        stats.buckets, telemetry::histogram_upper_bounds(), q, stats.min,
        stats.max);
    EXPECT_EQ(hist.at(key).number_lexeme(),
              json::format_number(offline))
        << key;
  }
  EXPECT_EQ(hist.at("count").as_int(),
            static_cast<std::int64_t>(values.size()));
}

TEST(ServeMetricsTest, NullTelemetryYieldsEmptySections) {
  const json::Value sections = telemetry_sections_json(nullptr);
  EXPECT_EQ(sections.at("counters").members().size(), 0u);
  EXPECT_EQ(sections.at("gauges").members().size(), 0u);
  EXPECT_EQ(sections.at("spans").members().size(), 0u);
  EXPECT_EQ(sections.at("histograms").members().size(), 0u);
}

TEST(ServeMetricsTest, FlushSinksMakesSessionTracesVisible) {
  const std::string dir =
      testing::TempDir() + "/serve_metrics_flush_test";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  ServerOptions options;
  options.trace_dir = dir;
  ServerCore core(options);
  expect_ok(core.handle_line(kCreateLine));
  expect_ok(core.handle_line(
      "{\"op\":\"session.step\",\"id\":\"m1\",\"steps\":2}"));
  core.flush_sinks();
  // The per-session sink must have pushed its bytes to disk while the
  // server (and the sink) are still alive.
  std::ifstream in(dir + "/m1.trace.jsonl");
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_NE(line.find("\"event\""), std::string::npos);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace ceal::serve
