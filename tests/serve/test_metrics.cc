// The server.metrics exposition plane: response shape, per-op error
// tallies, the Prometheus renderer round-tripping through the strict
// validator, quantile agreement between the live exposition and the
// shared offline helper, and trace-sink flushing on drain.
#include "serve/metrics.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/stats.h"
#include "core/telemetry.h"
#include "serve/server.h"

namespace ceal::serve {
namespace {

// RS drains its whole budget in one step, so the shape test uses CEAL,
// whose stepper advances one iteration at a time and stays kRunning
// after a partial step.
const char* kCreateLine =
    "{\"op\":\"session.create\",\"id\":\"m1\",\"workflow\":\"LV\","
    "\"objective\":\"exec\",\"budget\":30,\"algorithm\":\"CEAL\","
    "\"pool_size\":40,\"component_samples\":20,\"seed\":1}";

json::Value expect_ok(const std::string& response_line) {
  json::Value response = json::Value::parse(response_line);
  EXPECT_TRUE(response.at("ok").as_bool()) << response_line;
  return response;
}

TEST(ServeMetricsTest, ResponseCarriesServerSectionsAndSessions) {
  telemetry::Telemetry tel;
  ServerOptions options;
  options.telemetry = &tel;
  ServerCore core(options);
  expect_ok(core.handle_line(kCreateLine));
  expect_ok(core.handle_line(
      "{\"op\":\"session.step\",\"id\":\"m1\",\"steps\":2}"));

  const json::Value metrics =
      expect_ok(core.handle_line("{\"op\":\"server.metrics\"}"));
  const json::Value& server = metrics.at("server");
  EXPECT_EQ(server.at("sessions").as_int(), 1);
  EXPECT_EQ(server.at("requests").as_int(), 3);
  const json::Value& ops = server.at("ops");
  EXPECT_EQ(ops.at("create").at("requests").as_int(), 1);
  EXPECT_EQ(ops.at("step").at("requests").as_int(), 1);
  EXPECT_EQ(ops.at("metrics").at("requests").as_int(), 1);
  EXPECT_TRUE(metrics.contains("counters"));
  EXPECT_TRUE(metrics.contains("gauges"));
  EXPECT_TRUE(metrics.contains("spans"));
  EXPECT_TRUE(metrics.contains("histograms"));
  // Stepping through the server records the step-latency histogram.
  EXPECT_TRUE(metrics.at("histograms").contains("timing.serve.step_s"));

  const json::Value& sessions = metrics.at("sessions");
  ASSERT_EQ(sessions.size(), 1u);
  const json::Value& session = sessions.at(std::size_t{0});
  EXPECT_EQ(session.at("id").as_string(), "m1");
  EXPECT_EQ(session.at("state").as_string(), "running");
  EXPECT_EQ(session.at("steps").as_int(), 2);
  EXPECT_TRUE(session.contains("budget_used"));
  EXPECT_TRUE(session.contains("budget_remaining"));
  EXPECT_EQ(session.at("budget_used").as_int() +
                session.at("budget_remaining").as_int(),
            session.at("budget").as_int());
}

TEST(ServeMetricsTest, PerOpErrorTalliesCountFailures) {
  telemetry::Telemetry tel;
  ServerOptions options;
  options.telemetry = &tel;
  ServerCore core(options);
  expect_ok(core.handle_line(kCreateLine));
  // Cancel twice: the second is a per-op error charged to "cancel".
  expect_ok(core.handle_line("{\"op\":\"session.cancel\",\"id\":\"m1\"}"));
  const json::Value err = json::Value::parse(
      core.handle_line("{\"op\":\"session.cancel\",\"id\":\"m1\"}"));
  EXPECT_FALSE(err.at("ok").as_bool());

  const json::Value metrics =
      expect_ok(core.handle_line("{\"op\":\"server.metrics\"}"));
  const json::Value& ops = metrics.at("server").at("ops");
  EXPECT_EQ(ops.at("cancel").at("requests").as_int(), 2);
  EXPECT_EQ(ops.at("cancel").at("errors").as_int(), 1);
  EXPECT_EQ(ops.at("create").at("errors").as_int(), 0);
  EXPECT_EQ(tel.counter("serve.op.cancel.errors"), 1u);
}

TEST(ServeMetricsTest, PrometheusRenderPassesStrictValidation) {
  telemetry::Telemetry tel;
  ServerOptions options;
  options.telemetry = &tel;
  ServerCore core(options);
  expect_ok(core.handle_line(kCreateLine));
  expect_ok(core.handle_line(
      "{\"op\":\"session.step\",\"id\":\"m1\",\"steps\":8}"));

  const std::string text = to_prometheus(core.metrics_json());
  const std::size_t samples = validate_prometheus(text);
  EXPECT_GT(samples, 10u);
  EXPECT_NE(text.find("ceal_serve_op_requests_total{op=\"create\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE ceal_timing_serve_step_s histogram"),
            std::string::npos);
  EXPECT_NE(text.find("ceal_session_budget_used{id=\"m1\"}"),
            std::string::npos);
}

TEST(ServeMetricsTest, ValidatorRejectsMalformedExposition) {
  // Sample without a TYPE declaration.
  EXPECT_THROW(validate_prometheus("nope 1\n"), ProtocolError);
  // Non-cumulative histogram buckets.
  EXPECT_THROW(validate_prometheus("# TYPE h histogram\n"
                                   "h_bucket{le=\"1\"} 5\n"
                                   "h_bucket{le=\"2\"} 3\n"
                                   "h_bucket{le=\"+Inf\"} 5\n"
                                   "h_sum 4\nh_count 5\n"),
               ProtocolError);
  // +Inf bucket disagreeing with _count.
  EXPECT_THROW(validate_prometheus("# TYPE h histogram\n"
                                   "h_bucket{le=\"1\"} 2\n"
                                   "h_bucket{le=\"+Inf\"} 2\n"
                                   "h_sum 1\nh_count 3\n"),
               ProtocolError);
  // Histogram not ending in +Inf.
  EXPECT_THROW(validate_prometheus("# TYPE h histogram\n"
                                   "h_bucket{le=\"1\"} 2\n"
                                   "h_sum 1\nh_count 2\n"),
               ProtocolError);
  // Garbage value.
  EXPECT_THROW(validate_prometheus("# TYPE g gauge\ng banana\n"),
               ProtocolError);
  // A well-formed family passes and counts its samples.
  EXPECT_EQ(validate_prometheus("# TYPE h histogram\n"
                                "h_bucket{le=\"1\"} 2\n"
                                "h_bucket{le=\"+Inf\"} 3\n"
                                "h_sum 4.5\nh_count 3\n"),
            4u);
}

// The corpus behind `ceal_top --check-prom`: every malformed exposition
// must fail with a message naming the offending line, so a failing CI
// gate points at the defect instead of just "invalid".
TEST(ServeMetricsTest, ValidatorErrorsCarryLineNumbers) {
  const auto error_of = [](const std::string& text) {
    try {
      validate_prometheus(text);
    } catch (const ProtocolError& e) {
      return std::string(e.what());
    }
    return std::string();
  };
  // Histogram whose bucket series never reaches +Inf: an end-of-family
  // defect, reported against the family name.
  const std::string no_inf = error_of(
      "# TYPE h histogram\n"
      "h_bucket{le=\"1\"} 2\n"
      "h_sum 1\nh_count 2\n");
  EXPECT_NE(no_inf.find("prometheus:"), std::string::npos) << no_inf;
  EXPECT_NE(no_inf.find("+Inf"), std::string::npos) << no_inf;
  // Non-monotone le series: the regression is on line 3.
  const std::string non_monotone = error_of(
      "# TYPE h histogram\n"
      "h_bucket{le=\"2\"} 2\n"
      "h_bucket{le=\"1\"} 3\n"
      "h_bucket{le=\"+Inf\"} 5\n"
      "h_sum 4\nh_count 5\n");
  EXPECT_NE(non_monotone.find("prometheus:line 3:"), std::string::npos)
      << non_monotone;
  EXPECT_NE(non_monotone.find("increasing"), std::string::npos)
      << non_monotone;
  // Cumulative-count regression, also on line 3.
  const std::string non_cumulative = error_of(
      "# TYPE h histogram\n"
      "h_bucket{le=\"1\"} 5\n"
      "h_bucket{le=\"2\"} 3\n"
      "h_bucket{le=\"+Inf\"} 5\n"
      "h_sum 4\nh_count 5\n");
  EXPECT_NE(non_cumulative.find("prometheus:line 3:"), std::string::npos)
      << non_cumulative;
  // A sample before any TYPE declaration: line 1.
  const std::string untyped = error_of("orphan 1\n# TYPE g gauge\ng 2\n");
  EXPECT_NE(untyped.find("prometheus:line 1:"), std::string::npos)
      << untyped;
}

TEST(ServeMetricsTest, SessionBlockCarriesAgeAndRecorderOccupancy) {
  telemetry::Telemetry tel;
  ServerOptions options;
  options.telemetry = &tel;
  options.flight_recorder = 16;
  ServerCore core(options);
  expect_ok(core.handle_line(kCreateLine));
  expect_ok(core.handle_line(
      "{\"op\":\"session.step\",\"id\":\"m1\",\"steps\":3}"));

  const json::Value metrics =
      expect_ok(core.handle_line("{\"op\":\"server.metrics\"}"));
  const json::Value& session = metrics.at("sessions").at(std::size_t{0});
  // session_age_steps counts requested steps monotonically — stepping a
  // finished session keeps incrementing it while "steps" freezes.
  EXPECT_EQ(session.at("session_age_steps").as_int(), 3);
  // Ring invariant: occupancy never exceeds capacity, and nothing is
  // reported dropped unless the ring is full.
  const std::int64_t events = session.at("recorder_events").as_int();
  const std::int64_t dropped = session.at("recorder_dropped").as_int();
  EXPECT_GT(events, 0);
  EXPECT_LE(events, 16);
  EXPECT_TRUE(dropped == 0 || events == 16);

  expect_ok(core.handle_line(
      "{\"op\":\"session.cancel\",\"id\":\"m1\"}"));
  expect_ok(core.handle_line(
      "{\"op\":\"session.step\",\"id\":\"m1\",\"steps\":4}"));
  const json::Value after =
      expect_ok(core.handle_line("{\"op\":\"server.metrics\"}"));
  EXPECT_EQ(after.at("sessions")
                .at(std::size_t{0})
                .at("session_age_steps")
                .as_int(),
            7);

  // The same fields surface as labeled Prometheus families and the
  // rendering still passes the strict validator.
  const std::string text = to_prometheus(core.metrics_json());
  validate_prometheus(text);
  EXPECT_NE(text.find("ceal_session_age_steps_total{id=\"m1\"} 7"),
            std::string::npos);
  EXPECT_NE(text.find("ceal_session_recorder_events{id=\"m1\"}"),
            std::string::npos);
  EXPECT_NE(text.find("ceal_session_recorder_dropped_total{id=\"m1\"}"),
            std::string::npos);
}

TEST(ServeMetricsTest, ExpositionQuantilesMatchTheSharedOfflineHelper) {
  // The live exposition computes p50/p90/p99 through the exact same
  // core/stats.h histogram_quantile an offline consumer of the bucket
  // array would use — the values must agree bit-for-bit.
  telemetry::Telemetry tel;
  const std::vector<double> values{1, 2, 2, 3, 5, 8, 13, 21, 34, 55};
  for (double v : values) tel.observe("probe", v);

  const json::Value sections = telemetry_sections_json(&tel);
  const json::Value& hist = sections.at("histograms").at("probe");
  const telemetry::HistogramStats stats = tel.histogram_stats("probe");
  for (const auto& [key, q] :
       std::vector<std::pair<const char*, double>>{
           {"p50", 0.50}, {"p90", 0.90}, {"p99", 0.99}}) {
    const double offline = histogram_quantile(
        stats.buckets, telemetry::histogram_upper_bounds(), q, stats.min,
        stats.max);
    EXPECT_EQ(hist.at(key).number_lexeme(),
              json::format_number(offline))
        << key;
  }
  EXPECT_EQ(hist.at("count").as_int(),
            static_cast<std::int64_t>(values.size()));
}

TEST(ServeMetricsTest, NullTelemetryYieldsEmptySections) {
  const json::Value sections = telemetry_sections_json(nullptr);
  EXPECT_EQ(sections.at("counters").members().size(), 0u);
  EXPECT_EQ(sections.at("gauges").members().size(), 0u);
  EXPECT_EQ(sections.at("spans").members().size(), 0u);
  EXPECT_EQ(sections.at("histograms").members().size(), 0u);
}

TEST(ServeMetricsTest, FlushSinksMakesSessionTracesVisible) {
  const std::string dir =
      testing::TempDir() + "/serve_metrics_flush_test";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  ServerOptions options;
  options.trace_dir = dir;
  ServerCore core(options);
  expect_ok(core.handle_line(kCreateLine));
  expect_ok(core.handle_line(
      "{\"op\":\"session.step\",\"id\":\"m1\",\"steps\":2}"));
  core.flush_sinks();
  // The per-session sink must have pushed its bytes to disk while the
  // server (and the sink) are still alive.
  std::ifstream in(dir + "/m1.trace.jsonl");
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_NE(line.find("\"event\""), std::string::npos);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace ceal::serve
