// Multiplexing fidelity: N concurrent sessions with mixed tuners and
// seeds, stepped in an interleaved (shuffled) order through the daemon,
// must each produce a result CSV byte-identical to a solo
// AutoTuner::tune run of the same (algorithm, seed, problem) — and the
// daemon's full response stream must be byte-identical across thread
// counts (responses carry no wall-clock values).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/rng.h"
#include "serve/server.h"
#include "tools/common.h"
#include "tuner/result_io.h"

namespace ceal::serve {
namespace {

struct SessionSpec {
  std::string id;
  std::string algorithm;
  std::uint64_t seed;
};

constexpr std::size_t kBudget = 12;
constexpr std::size_t kPoolSize = 150;
constexpr std::size_t kPoolSeed = 7;
constexpr std::size_t kComponentSamples = 60;

std::vector<SessionSpec> specs() {
  return {{"m-ceal", "CEAL", 11}, {"m-rs", "RS", 12},
          {"m-al", "AL", 13},     {"m-geist", "GEIST", 14},
          {"m-alph", "ALpH", 15}, {"m-bo", "BO", 16}};
}

std::string create_line(const SessionSpec& spec) {
  std::ostringstream os;
  os << "{\"op\":\"session.create\",\"id\":\"" << spec.id
     << "\",\"workflow\":\"LV\",\"objective\":\"exec\",\"budget\":"
     << kBudget << ",\"algorithm\":\"" << spec.algorithm
     << "\",\"seed\":" << spec.seed << ",\"pool_size\":" << kPoolSize
     << ",\"pool_seed\":" << kPoolSeed
     << ",\"component_samples\":" << kComponentSamples << "}";
  return os.str();
}

/// The reference: exactly what ceal_tune --save-result would produce
/// for this (algorithm, seed) — built independently of src/serve.
void write_solo_csv(const SessionSpec& spec, const std::string& path) {
  sim::Workload wl = sim::make_lv();
  const auto pool = tuner::measure_pool(wl.workflow, kPoolSize, kPoolSeed);
  const auto comps = tuner::measure_components(wl.workflow,
                                               kComponentSamples,
                                               kPoolSeed + 1);
  tuner::TuningProblem problem;
  problem.workload = &wl;
  problem.objective = tuner::Objective::kExecTime;
  problem.pool = &pool;
  problem.component_samples = &comps;
  ceal::Rng rng(spec.seed);
  const auto algo = tools::algorithm_by_name(spec.algorithm);
  const tuner::TuneResult result = algo->tune(problem, kBudget, rng);
  tuner::save_result_csv(path, result, algo->name(), wl.workflow.name(),
                         tuner::objective_name(problem.objective), kBudget,
                         spec.seed);
}

std::string slurp(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  EXPECT_TRUE(is.good()) << path;
  std::ostringstream buffer;
  buffer << is.rdbuf();
  return buffer.str();
}

/// A deterministic shuffled stepping schedule: enough single-step
/// rounds to finish every session, visiting sessions in a seeded
/// random order each round.
std::vector<std::string> step_schedule(const std::vector<SessionSpec>& all) {
  ceal::Rng order(99);
  std::vector<std::string> lines;
  for (int round = 0; round < 40; ++round) {
    for (const std::size_t i : order.permutation(all.size())) {
      lines.push_back("{\"op\":\"session.step\",\"id\":\"" + all[i].id +
                      "\"}");
    }
  }
  return lines;
}

TEST(ServeSessionMatrixTest, InterleavedSessionsMatchSoloRuns) {
  const auto all = specs();
  ServerCore core{ServerOptions{}};
  for (const auto& spec : all) {
    const json::Value response =
        json::Value::parse(core.handle_line(create_line(spec)));
    ASSERT_TRUE(response.at("ok").as_bool()) << response.dump();
  }
  for (const auto& line : step_schedule(all)) {
    ASSERT_TRUE(json::Value::parse(core.handle_line(line))
                    .at("ok")
                    .as_bool());
  }
  for (const auto& spec : all) {
    const std::string served = ::testing::TempDir() + "ceal_matrix_" +
                               spec.id + "_served.csv";
    const std::string solo =
        ::testing::TempDir() + "ceal_matrix_" + spec.id + "_solo.csv";
    const json::Value response = json::Value::parse(core.handle_line(
        "{\"op\":\"session.query\",\"id\":\"" + spec.id +
        "\",\"save_result\":\"" + served + "\"}"));
    ASSERT_TRUE(response.at("ok").as_bool()) << response.dump();
    ASSERT_EQ(response.at("state").as_string(), "done")
        << spec.id << ": " << response.dump();
    write_solo_csv(spec, solo);
    EXPECT_EQ(slurp(served), slurp(solo))
        << spec.algorithm << " diverged from its solo run";
    std::remove(served.c_str());
    std::remove(solo.c_str());
  }
}

TEST(ServeSessionMatrixTest, ResponseStreamIsByteStableAcrossThreadCounts) {
  const auto all = specs();
  std::vector<std::string> outputs;
  std::vector<std::string> result_blobs;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    std::ostringstream script;
    for (const auto& spec : all) script << create_line(spec) << "\n";
    for (const auto& line : step_schedule(all)) script << line << "\n";
    std::string results;
    for (const auto& spec : all) {
      const std::string path = ::testing::TempDir() + "ceal_matrix_t" +
                               std::to_string(threads) + "_" + spec.id +
                               ".csv";
      script << "{\"op\":\"session.query\",\"id\":\"" << spec.id
             << "\",\"save_result\":\"" << path << "\"}\n";
      results += path;
      results += "\n";
    }
    script << "{\"op\":\"server.stats\"}\n";

    ServerCore core{ServerOptions{}};
    std::istringstream in(script.str());
    std::ostringstream out;
    serve_stream(core, in, out, threads);
    outputs.push_back(out.str());

    std::string blob;
    std::istringstream paths(results);
    std::string path;
    while (std::getline(paths, path)) {
      blob += slurp(path);
      std::remove(path.c_str());
    }
    result_blobs.push_back(blob);
  }
  ASSERT_EQ(outputs.size(), 2u);
  // The response stream (including the final stats barrier) and every
  // result CSV are byte-identical at 1 and 4 threads: the only
  // differences threading could introduce would be scheduling, and
  // nothing scheduling-dependent is observable.
  EXPECT_EQ(outputs[0], outputs[1]);
  EXPECT_EQ(result_blobs[0], result_blobs[1]);
  EXPECT_FALSE(result_blobs[0].empty());
}

}  // namespace
}  // namespace ceal::serve
