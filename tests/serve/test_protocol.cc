// The daemon's contract with malformed input: every bad request line —
// truncated frames, wrong types, unknown fields/ops/sessions, double
// cancels — produces a structured {"ok":false,"error":"..."} response
// with a one-line "request:<field>: why" message, and never a crash,
// hang, or state change. Plus a randomized round-trip property test
// over the create-request / manifest encoding.
#include "serve/protocol.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/rng.h"
#include "serve/server.h"

namespace ceal::serve {
namespace {

// A fast, valid create request (tiny pool; RS has no surrogate fits).
const char* kCreateLine =
    "{\"op\":\"session.create\",\"id\":\"s1\",\"workflow\":\"LV\","
    "\"objective\":\"exec\",\"budget\":2,\"algorithm\":\"RS\","
    "\"pool_size\":40,\"component_samples\":20,\"seed\":1}";

std::string error_of(const std::string& line) {
  try {
    parse_request(line);
  } catch (const ProtocolError& e) {
    return e.what();
  }
  return "";
}

TEST(ServeProtocolTest, ParsesAValidCreateRequest) {
  const Request req = parse_request(kCreateLine);
  EXPECT_EQ(req.op, Op::kCreate);
  EXPECT_EQ(req.session_id, "s1");
  EXPECT_EQ(req.create.workflow, "LV");
  EXPECT_EQ(req.create.objective, "exec");
  EXPECT_EQ(req.create.algorithm, "RS");
  EXPECT_EQ(req.create.budget, 2u);
  EXPECT_EQ(req.create.pool_size, 40u);
  EXPECT_EQ(req.create.component_samples, 20u);
  EXPECT_EQ(req.create.seed, 1u);
  // Unspecified knobs keep the ceal_tune defaults.
  EXPECT_EQ(req.create.pool_seed, 1u);
  EXPECT_EQ(req.create.max_attempts, 1u);
  EXPECT_FALSE(req.create.history);
}

TEST(ServeProtocolTest, FieldErrorsAreOneLinePathMessages) {
  EXPECT_NE(error_of("{}").find("request:op: missing required field"),
            std::string::npos);
  EXPECT_NE(error_of("{\"op\":7}").find("request:op: expected a string"),
            std::string::npos);
  EXPECT_NE(error_of("{\"op\":\"session.nuke\"}")
                .find("request:op: unknown op"),
            std::string::npos);
  EXPECT_NE(error_of("{\"op\":\"session.step\",\"id\":\"x\",\"steps\":0}")
                .find("request:steps: must be >= 1"),
            std::string::npos);
  EXPECT_NE(error_of("{\"op\":\"session.step\",\"id\":\"x\","
                     "\"steps\":1.5}")
                .find("request:steps: expected an unsigned integer"),
            std::string::npos);
  EXPECT_NE(error_of("{\"op\":\"session.step\",\"id\":\"x\","
                     "\"steps\":-1}")
                .find("request:steps: expected an unsigned integer"),
            std::string::npos);
  EXPECT_NE(error_of("{\"op\":\"session.create\",\"id\":\"s\","
                     "\"workflow\":\"XX\",\"objective\":\"exec\","
                     "\"budget\":1}")
                .find("request:workflow: unknown value \"XX\""),
            std::string::npos);
  EXPECT_NE(error_of("{\"op\":\"session.create\",\"id\":\"s\","
                     "\"workflow\":\"LV\",\"objective\":\"exec\","
                     "\"budget\":0}")
                .find("request:budget: must be >= 1"),
            std::string::npos);
  EXPECT_NE(error_of("{\"op\":\"session.create\",\"id\":\"s\","
                     "\"workflow\":\"LV\",\"objective\":\"exec\","
                     "\"budget\":1,\"bogus\":true}")
                .find("request:bogus: unknown field"),
            std::string::npos);
  EXPECT_NE(error_of("{\"op\":\"session.cancel\",\"id\":\"../etc\"}")
                .find("request:id: may contain only"),
            std::string::npos);
  EXPECT_NE(error_of("{\"op\":\"session.query\",\"id\":\"x\","
                     "\"save_result\":\"\"}")
                .find("request:save_result: must not be empty"),
            std::string::npos);
  EXPECT_NE(error_of("{\"op\":\"server.stats\",\"id\":\"x\"}")
                .find("request:id: unknown field"),
            std::string::npos);
  EXPECT_NE(error_of("[1,2]").find("request: expected a JSON object"),
            std::string::npos);
  EXPECT_NE(error_of("").find("request: invalid JSON"), std::string::npos);
}

// Every proper prefix of a valid frame is a structured error, never an
// exception escaping handle_line or an accepted half-request.
TEST(ServeProtocolTest, TruncatedFramesAlwaysAnswerStructuredErrors) {
  ServerCore core{ServerOptions{}};
  const std::string full = kCreateLine;
  for (std::size_t len = 0; len < full.size(); ++len) {
    const std::string response = core.handle_line(full.substr(0, len));
    const json::Value parsed = json::Value::parse(response);
    ASSERT_TRUE(parsed.is_object()) << "len " << len;
    EXPECT_FALSE(parsed.at("ok").as_bool()) << "len " << len;
    EXPECT_TRUE(parsed.contains("error")) << "len " << len;
  }
  // Nothing was created along the way.
  EXPECT_EQ(core.session_count(), 0u);
}

TEST(ServeProtocolTest, UnknownSessionOpsAnswerStructuredErrors) {
  ServerCore core{ServerOptions{}};
  for (const char* line :
       {"{\"op\":\"session.step\",\"id\":\"ghost\"}",
        "{\"op\":\"session.query\",\"id\":\"ghost\"}",
        "{\"op\":\"session.cancel\",\"id\":\"ghost\"}"}) {
    const json::Value response = json::Value::parse(core.handle_line(line));
    EXPECT_FALSE(response.at("ok").as_bool());
    EXPECT_NE(response.at("error").as_string().find(
                  "request:id: unknown session \"ghost\""),
              std::string::npos);
  }
}

TEST(ServeProtocolTest, DuplicateCreateAndDoubleCancelAreErrors) {
  ServerCore core{ServerOptions{}};
  json::Value response = json::Value::parse(core.handle_line(kCreateLine));
  ASSERT_TRUE(response.at("ok").as_bool());
  EXPECT_EQ(core.session_count(), 1u);

  response = json::Value::parse(core.handle_line(kCreateLine));
  EXPECT_FALSE(response.at("ok").as_bool());
  EXPECT_NE(response.at("error").as_string().find("already exists"),
            std::string::npos);

  response = json::Value::parse(
      core.handle_line("{\"op\":\"session.cancel\",\"id\":\"s1\"}"));
  ASSERT_TRUE(response.at("ok").as_bool());
  EXPECT_EQ(response.at("state").as_string(), "cancelled");

  response = json::Value::parse(
      core.handle_line("{\"op\":\"session.cancel\",\"id\":\"s1\"}"));
  EXPECT_FALSE(response.at("ok").as_bool());
  EXPECT_NE(response.at("error").as_string().find(
                "cannot cancel a cancelled session"),
            std::string::npos);
}

TEST(ServeProtocolTest, OverSteppingADoneSessionIsANoOpSuccess) {
  ServerCore core{ServerOptions{}};
  ASSERT_TRUE(
      json::Value::parse(core.handle_line(kCreateLine)).at("ok").as_bool());
  const std::string step_line =
      "{\"op\":\"session.step\",\"id\":\"s1\",\"steps\":100}";
  json::Value response = json::Value::parse(core.handle_line(step_line));
  ASSERT_TRUE(response.at("ok").as_bool());
  ASSERT_EQ(response.at("state").as_string(), "done");
  const std::string done_dump = response.dump();
  // Stepping again changes nothing, reports the same status.
  response = json::Value::parse(core.handle_line(step_line));
  EXPECT_EQ(response.dump(), done_dump);
}

TEST(ServeProtocolTest, StatsReportsCountsAndStates) {
  ServerCore core{ServerOptions{}};
  ASSERT_TRUE(
      json::Value::parse(core.handle_line(kCreateLine)).at("ok").as_bool());
  const json::Value stats =
      json::Value::parse(core.handle_line("{\"op\":\"server.stats\"}"));
  ASSERT_TRUE(stats.at("ok").as_bool());
  EXPECT_EQ(stats.at("sessions").as_int(), 1);
  EXPECT_EQ(stats.at("running").as_int(), 1);
  EXPECT_EQ(stats.at("requests").as_int(), 2);
  EXPECT_EQ(stats.at("errors").as_int(), 0);
}

TEST(ServeProtocolTest, ParsesServerDumpAndRejectsExtraFields) {
  const Request req = parse_request("{\"op\":\"server.dump\"}");
  EXPECT_EQ(req.op, Op::kDump);
  EXPECT_NE(error_of("{\"op\":\"server.dump\",\"id\":\"x\"}")
                .find("request:id: unknown field"),
            std::string::npos);
}

TEST(ServeProtocolTest, DumpReturnsPerSessionFlightRecorders) {
  ServerOptions options;
  options.flight_recorder = 32;
  ServerCore core{options};
  ASSERT_TRUE(
      json::Value::parse(core.handle_line(kCreateLine)).at("ok").as_bool());
  ASSERT_TRUE(json::Value::parse(
                  core.handle_line(
                      "{\"op\":\"session.step\",\"id\":\"s1\",\"steps\":5}"))
                  .at("ok")
                  .as_bool());
  const json::Value dump =
      json::Value::parse(core.handle_line("{\"op\":\"server.dump\"}"));
  ASSERT_TRUE(dump.at("ok").as_bool());
  const json::Value& recorders = dump.at("recorders");
  ASSERT_EQ(recorders.size(), 1u);
  const json::Value& rec = recorders.at(0);
  EXPECT_EQ(rec.at("label").as_string(), "session:s1");
  EXPECT_EQ(rec.at("capacity").as_int(), 32);
  EXPECT_GT(rec.at("events").as_int(), 0);
  // The recent events parse back as trace events, causal span events
  // (with ids) among them.
  const json::Value& recent = rec.at("recent");
  ASSERT_GT(recent.size(), 0u);
  bool saw_span = false;
  for (std::size_t i = 0; i < recent.size(); ++i) {
    EXPECT_TRUE(recent.at(i).contains("event"));
    if (recent.at(i).contains("span_id")) saw_span = true;
  }
  EXPECT_TRUE(saw_span);
}

TEST(ServeProtocolTest, DumpWithoutRecordersReportsNone) {
  ServerCore core{ServerOptions{}};
  const json::Value dump =
      json::Value::parse(core.handle_line("{\"op\":\"server.dump\"}"));
  ASSERT_TRUE(dump.at("ok").as_bool());
  EXPECT_EQ(dump.at("recorders").size(), 0u);
}

// Property: a random valid create request round-trips through JSON and
// parse_request (and through the manifest encoding) unchanged.
TEST(ServeProtocolTest, RandomCreateRequestsRoundTrip) {
  ceal::Rng rng(20260808);
  const std::vector<std::string> workflows = {"LV", "HS", "GP"};
  const std::vector<std::string> objectives = {"exec", "comp"};
  const std::vector<std::string> algorithms = {"CEAL", "AL",      "RS",
                                               "GEIST", "ALpH",   "BO",
                                               "BO-CEAL"};
  for (int trial = 0; trial < 100; ++trial) {
    CreateParams params;
    params.workflow = workflows[rng.uniform_u64(workflows.size())];
    params.objective = objectives[rng.uniform_u64(objectives.size())];
    params.algorithm = algorithms[rng.uniform_u64(algorithms.size())];
    params.budget = 1 + rng.uniform_u64(500);
    params.seed = rng();
    params.pool_size = 1 + rng.uniform_u64(5000);
    params.pool_seed = rng();
    params.component_samples = 1 + rng.uniform_u64(800);
    params.history = rng.uniform_u64(2) == 1;
    params.fault_rate = rng.uniform_u64(2) == 1 ? 0.25 : 0.0;
    params.outlier_rate = rng.uniform_u64(2) == 1 ? 0.125 : 0.0;
    params.deadline_s = rng.uniform_u64(2) == 1 ? 1024.0 : 0.0;
    params.max_attempts = 1 + rng.uniform_u64(4);
    const std::string id = "rt-" + std::to_string(trial);

    // Request encoding: the manifest fields plus the op, minus nothing.
    json::Value request_json = to_manifest(id, params);
    request_json.set("op", json::Value::string("session.create"));
    const Request req = parse_request(request_json.dump());
    EXPECT_EQ(req.op, Op::kCreate);
    EXPECT_EQ(req.session_id, id);

    // Manifest decoding must agree with the request decoding.
    const CreateParams decoded =
        create_from_manifest(to_manifest(id, params), "manifest");
    for (const CreateParams& got : {req.create, decoded}) {
      EXPECT_EQ(got.workflow, params.workflow);
      EXPECT_EQ(got.objective, params.objective);
      EXPECT_EQ(got.algorithm, params.algorithm);
      EXPECT_EQ(got.budget, params.budget);
      EXPECT_EQ(got.seed, params.seed);
      EXPECT_EQ(got.pool_size, params.pool_size);
      EXPECT_EQ(got.pool_seed, params.pool_seed);
      EXPECT_EQ(got.component_samples, params.component_samples);
      EXPECT_EQ(got.history, params.history);
      EXPECT_EQ(got.fault_rate, params.fault_rate);
      EXPECT_EQ(got.outlier_rate, params.outlier_rate);
      EXPECT_EQ(got.deadline_s, params.deadline_s);
      EXPECT_EQ(got.max_attempts, params.max_attempts);
    }
  }
}

// Fuzz: random garbage lines never escape handle_line as exceptions and
// never create sessions.
TEST(ServeProtocolTest, RandomGarbageNeverEscapesHandleLine) {
  ServerCore core{ServerOptions{}};
  ceal::Rng rng(7);
  const std::string alphabet =
      "{}[]\",:0123456789abcdefgh .\\ntruefalse-+eE";
  for (int trial = 0; trial < 300; ++trial) {
    std::string line;
    const std::size_t len = rng.uniform_u64(60);
    for (std::size_t i = 0; i < len; ++i) {
      line += alphabet[rng.uniform_u64(alphabet.size())];
    }
    const std::string response = core.handle_line(line);
    const json::Value parsed = json::Value::parse(response);
    ASSERT_TRUE(parsed.is_object()) << "input: " << line;
    EXPECT_TRUE(parsed.contains("ok")) << "input: " << line;
  }
  EXPECT_EQ(core.session_count(), 0u);
}

}  // namespace
}  // namespace ceal::serve
