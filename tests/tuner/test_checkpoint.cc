// CheckpointSession semantics: journaling leaves results untouched,
// resume validates the header field-by-field (version and configuration
// skew are loud one-line errors), replay divergence and journal
// tampering are detected, and the checkpoint telemetry counters fire.
#include "tuner/checkpoint.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "core/journal.h"
#include "core/telemetry.h"
#include "sim/workloads.h"
#include "tuner/ceal.h"

namespace ceal::tuner {
namespace {

struct Env {
  sim::Workload wl = sim::make_lv();
  MeasuredPool pool;
  std::vector<ComponentSamples> comps;

  Env()
      : pool(measure_pool(wl.workflow, 150, 71)),
        comps(measure_components(wl.workflow, 60, 72)) {}

  TuningProblem problem(double fail_prob = 0.15) const {
    TuningProblem prob{&wl, Objective::kExecTime, &pool, &comps, false, {}};
    prob.measurement.faults.fail_prob = fail_prob;
    prob.measurement.max_attempts = 2;
    return prob;
  }
};

const Env& env() {
  static Env e;
  return e;
}

void expect_same_result(const TuneResult& a, const TuneResult& b) {
  EXPECT_EQ(a.measured_indices, b.measured_indices);
  EXPECT_EQ(a.measured_statuses, b.measured_statuses);
  EXPECT_EQ(a.failed_runs, b.failed_runs);
  EXPECT_EQ(a.best_predicted_index, b.best_predicted_index);
  EXPECT_EQ(a.best_measured_index, b.best_measured_index);
  EXPECT_EQ(a.runs_used, b.runs_used);
  EXPECT_EQ(a.cost_exec_s, b.cost_exec_s);
  EXPECT_EQ(a.cost_comp_ch, b.cost_comp_ch);
  ASSERT_EQ(a.model_scores.size(), b.model_scores.size());
  for (std::size_t i = 0; i < a.model_scores.size(); ++i) {
    ASSERT_EQ(a.model_scores[i], b.model_scores[i]) << "score " << i;
  }
}

class CheckpointTest : public ::testing::Test {
 protected:
  CheckpointTest()
      : path_(::testing::TempDir() + "ceal_checkpoint_test.cealj") {
    std::remove(path_.c_str());
  }
  void TearDown() override { std::remove(path_.c_str()); }

  /// One complete checkpointed CEAL session into path_.
  TuneResult run_session(std::uint64_t seed = 9, std::size_t budget = 14) {
    CheckpointSession session(path_, CheckpointSession::Mode::kStart);
    Rng rng(seed);
    return Ceal().tune(env().problem(), budget, rng, &session);
  }

  /// Rewrites path_ with the given records (used to tamper with one).
  void rewrite_journal(const std::vector<json::Value>& records) {
    std::remove(path_.c_str());
    JournalWriter writer(path_);
    for (const auto& record : records) writer.append(record);
  }

  std::string path_;
};

TEST_F(CheckpointTest, JournalingDoesNotChangeTheResult) {
  const TuneResult checkpointed = run_session();
  Rng rng(9);
  const TuneResult plain = Ceal().tune(env().problem(), 14, rng);
  expect_same_result(checkpointed, plain);
  const auto journal = read_journal_file(path_);
  EXPECT_GT(journal.records.size(), 3u);
  EXPECT_FALSE(journal.torn_tail);
  // First record is the header, last is the finish summary.
  EXPECT_EQ(journal.records.front().at("kind").as_string(), "header");
  EXPECT_EQ(journal.records.back().at("kind").as_string(), "finish");
}

TEST_F(CheckpointTest, ResumingACompleteJournalReplaysEverything) {
  const TuneResult original = run_session();
  CheckpointSession session(path_, CheckpointSession::Mode::kResume);
  Rng rng(9);
  const TuneResult resumed = Ceal().tune(env().problem(), 14, rng, &session);
  expect_same_result(resumed, original);
  EXPECT_GT(session.replayed_runs(), 0u);
  EXPECT_EQ(session.appended_records(), 0u);
}

TEST_F(CheckpointTest, StartRefusesAnExistingJournal) {
  run_session();
  try {
    CheckpointSession session(path_, CheckpointSession::Mode::kStart);
    FAIL() << "kStart accepted a non-empty journal";
  } catch (const CheckpointError& e) {
    EXPECT_NE(std::string(e.what()).find("--resume"), std::string::npos)
        << e.what();
  }
}

TEST_F(CheckpointTest, ResumeRequiresANonEmptyJournal) {
  // Missing journal: the reader's open failure.
  EXPECT_THROW(CheckpointSession(path_, CheckpointSession::Mode::kResume),
               JournalError);
  // Present but empty: nothing to resume.
  { std::ofstream touch(path_); }
  EXPECT_THROW(CheckpointSession(path_, CheckpointSession::Mode::kResume),
               CheckpointError);
}

TEST_F(CheckpointTest, BudgetSkewNamesTheKnob) {
  run_session(9, 14);
  CheckpointSession session(path_, CheckpointSession::Mode::kResume);
  Rng rng(9);
  try {
    Ceal().tune(env().problem(), 15, rng, &session);  // budget 15 != 14
    FAIL() << "budget skew accepted";
  } catch (const CheckpointError& e) {
    EXPECT_NE(std::string(e.what()).find("'budget'"), std::string::npos)
        << e.what();
  }
}

TEST_F(CheckpointTest, SeedSkewIsRejectedViaTheRngState) {
  run_session(9);
  CheckpointSession session(path_, CheckpointSession::Mode::kResume);
  Rng rng(10);  // different seed -> different entry rng state
  try {
    Ceal().tune(env().problem(), 14, rng, &session);
    FAIL() << "seed skew accepted";
  } catch (const CheckpointError& e) {
    EXPECT_NE(std::string(e.what()).find("'rng'"), std::string::npos)
        << e.what();
  }
}

TEST_F(CheckpointTest, MeasurementPolicySkewIsRejected) {
  run_session();
  CheckpointSession session(path_, CheckpointSession::Mode::kResume);
  Rng rng(9);
  TuningProblem skewed = env().problem(0.25);  // fail_prob 0.25 != 0.15
  try {
    Ceal().tune(skewed, 14, rng, &session);
    FAIL() << "fault-policy skew accepted";
  } catch (const CheckpointError& e) {
    EXPECT_NE(std::string(e.what()).find("'fail_prob'"), std::string::npos)
        << e.what();
  }
}

TEST_F(CheckpointTest, VersionSkewIsRejected) {
  run_session();
  auto records = read_journal_file(path_).records;
  records[0].set("version", json::Value::number(std::uint64_t{999}));
  rewrite_journal(records);
  CheckpointSession session(path_, CheckpointSession::Mode::kResume);
  Rng rng(9);
  try {
    Ceal().tune(env().problem(), 14, rng, &session);
    FAIL() << "version skew accepted";
  } catch (const CheckpointError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("version"), std::string::npos) << what;
    EXPECT_NE(what.find("999"), std::string::npos) << what;
  }
}

TEST_F(CheckpointTest, TamperedDecisionRecordIsDetected) {
  run_session();
  auto records = read_journal_file(path_).records;
  // Find a journaled batch selection and corrupt its want_ok.
  bool tampered = false;
  for (auto& record : records) {
    if (record.at("kind").as_string() == "batch") {
      record.set("want_ok", json::Value::number(std::uint64_t{12345}));
      tampered = true;
      break;
    }
  }
  ASSERT_TRUE(tampered) << "no batch record in the journal";
  rewrite_journal(records);
  CheckpointSession session(path_, CheckpointSession::Mode::kResume);
  Rng rng(9);
  try {
    Ceal().tune(env().problem(), 14, rng, &session);
    FAIL() << "tampered decision record accepted";
  } catch (const CheckpointError& e) {
    EXPECT_NE(std::string(e.what()).find("diverged"), std::string::npos)
        << e.what();
  }
}

TEST_F(CheckpointTest, TamperedMeasureTargetIsDetected) {
  run_session();
  auto records = read_journal_file(path_).records;
  bool tampered = false;
  for (auto& record : records) {
    if (record.at("kind").as_string() == "measure") {
      const auto idx =
          static_cast<std::uint64_t>(record.at("pool_index").as_int());
      record.set("pool_index", json::Value::number(idx + 1));
      tampered = true;
      break;
    }
  }
  ASSERT_TRUE(tampered) << "no measure record in the journal";
  rewrite_journal(records);
  CheckpointSession session(path_, CheckpointSession::Mode::kResume);
  Rng rng(9);
  EXPECT_THROW(Ceal().tune(env().problem(), 14, rng, &session),
               CheckpointError);
}

TEST_F(CheckpointTest, CheckpointTelemetryCountersFire) {
  telemetry::Telemetry telemetry(nullptr);
  {
    CheckpointSession session(path_, CheckpointSession::Mode::kStart);
    TuningProblem prob = env().problem();
    prob.telemetry = &telemetry;
    Rng rng(9);
    Ceal().tune(prob, 14, rng, &session);
    EXPECT_EQ(telemetry.counter("checkpoint.records"),
              session.appended_records());
  }
  EXPECT_GT(telemetry.counter("checkpoint.records"), 3u);
  EXPECT_GT(telemetry.counter("checkpoint.bytes"), 100u);
  EXPECT_EQ(telemetry.counter("resume.replayed_runs"), 0u);

  telemetry::Telemetry resumed_telemetry(nullptr);
  CheckpointSession session(path_, CheckpointSession::Mode::kResume);
  TuningProblem prob = env().problem();
  prob.telemetry = &resumed_telemetry;
  Rng rng(9);
  Ceal().tune(prob, 14, rng, &session);
  EXPECT_GT(resumed_telemetry.counter("resume.replayed_runs"), 0u);
  EXPECT_EQ(resumed_telemetry.counter("resume.replayed_runs"),
            session.replayed_runs());
}

}  // namespace
}  // namespace ceal::tuner
