#include "tuner/bayes_opt.h"

#include <gtest/gtest.h>

#include "core/error.h"
#include "sim/workloads.h"
#include "tuner/random_search.h"

namespace ceal::tuner {
namespace {

class BayesOptTest : public ::testing::Test {
 protected:
  BayesOptTest()
      : wl_(sim::make_lv()),
        pool_(measure_pool(wl_.workflow, 300, 61)),
        comps_(measure_components(wl_.workflow, 60, 62)) {}

  TuningProblem problem(bool history = false) {
    return TuningProblem{&wl_, Objective::kExecTime, &pool_, &comps_,
                         history, {}};
  }

  sim::Workload wl_;
  MeasuredPool pool_;
  std::vector<ComponentSamples> comps_;
};

TEST_F(BayesOptTest, RespectsBudgetAndContract) {
  auto prob = problem();
  BayesOpt bo;
  ceal::Rng rng(1);
  const auto result = bo.tune(prob, 20, rng);
  EXPECT_LE(result.runs_used, 20u);
  EXPECT_EQ(result.model_scores.size(), pool_.size());
  for (const double s : result.model_scores) {
    EXPECT_LE(result.model_scores[result.best_predicted_index], s);
  }
}

TEST_F(BayesOptTest, NameReflectsBootstrapMode) {
  EXPECT_EQ(BayesOpt().name(), "BO");
  BayesOptParams p;
  p.bootstrap_with_low_fidelity = true;
  EXPECT_EQ(BayesOpt(p).name(), "BO-CEAL");
}

TEST_F(BayesOptTest, DeterministicGivenSeed) {
  auto prob = problem();
  BayesOpt bo;
  ceal::Rng r1(2), r2(2);
  const auto a = bo.tune(prob, 15, r1);
  const auto b = bo.tune(prob, 15, r2);
  EXPECT_EQ(a.measured_indices, b.measured_indices);
  EXPECT_EQ(a.best_predicted_index, b.best_predicted_index);
}

TEST_F(BayesOptTest, LowFidelityBootstrapChargesComponentRuns) {
  auto prob = problem(/*history=*/false);
  BayesOptParams p;
  p.bootstrap_with_low_fidelity = true;
  p.mR_fraction = 0.5;
  BayesOpt bo(p);
  ceal::Rng rng(3);
  const auto result = bo.tune(prob, 20, rng);
  // Half the budget goes to component rounds.
  EXPECT_LE(result.measured_indices.size(), 10u);
  EXPECT_LE(result.runs_used, 20u);
}

TEST_F(BayesOptTest, HistoryModeBootstrapIsFree) {
  auto prob = problem(/*history=*/true);
  BayesOptParams p;
  p.bootstrap_with_low_fidelity = true;
  BayesOpt bo(p);
  ceal::Rng rng(4);
  const auto result = bo.tune(prob, 20, rng);
  EXPECT_EQ(result.runs_used, result.measured_indices.size());
}

TEST_F(BayesOptTest, BeatsRandomSearch) {
  auto prob = problem(/*history=*/true);
  BayesOptParams p;
  p.bootstrap_with_low_fidelity = true;
  BayesOpt bo(p);
  RandomSearch rs;
  const auto& truth = pool_.truth(prob.objective);
  double bo_sum = 0.0, rs_sum = 0.0;
  for (int rep = 0; rep < 8; ++rep) {
    ceal::Rng r1(50 + rep), r2(50 + rep);
    bo_sum += truth[bo.tune(prob, 20, r1).best_predicted_index];
    rs_sum += truth[rs.tune(prob, 20, r2).best_predicted_index];
  }
  EXPECT_LT(bo_sum, rs_sum);
}

TEST_F(BayesOptTest, ZeroKappaIsPureExploitation) {
  auto prob = problem();
  BayesOptParams p;
  p.kappa = 0.0;
  BayesOpt bo(p);
  ceal::Rng rng(5);
  const auto result = bo.tune(prob, 15, rng);
  EXPECT_EQ(result.model_scores.size(), pool_.size());
}

TEST_F(BayesOptTest, ParamsValidated) {
  BayesOptParams p;
  p.ensemble_size = 1;
  EXPECT_THROW(BayesOpt{p}, ceal::PreconditionError);
  p = BayesOptParams{};
  p.kappa = -1.0;
  EXPECT_THROW(BayesOpt{p}, ceal::PreconditionError);
  p = BayesOptParams{};
  p.iterations = 0;
  EXPECT_THROW(BayesOpt{p}, ceal::PreconditionError);
}

}  // namespace
}  // namespace ceal::tuner
