#include "tuner/objective.h"

#include <gtest/gtest.h>

namespace ceal::tuner {
namespace {

TEST(Objective, MetricSelectsTheRightField) {
  sim::Measurement m;
  m.exec_s = 12.5;
  m.comp_ch = 3.75;
  EXPECT_DOUBLE_EQ(metric(m, Objective::kExecTime), 12.5);
  EXPECT_DOUBLE_EQ(metric(m, Objective::kComputerTime), 3.75);
}

TEST(Objective, NamesAreStableApi) {
  // Bench CSVs and CLI flags key on these strings.
  EXPECT_EQ(objective_name(Objective::kExecTime), "exec_time");
  EXPECT_EQ(objective_name(Objective::kComputerTime), "computer_time");
}

}  // namespace
}  // namespace ceal::tuner
