// Contract tests shared by every auto-tuning algorithm, run as a
// parameterized suite: budget discipline, result consistency, and
// determinism.
#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "sim/workloads.h"
#include "tuner/active_learning.h"
#include "tuner/alph.h"
#include "tuner/ceal.h"
#include "tuner/geist.h"
#include "tuner/random_search.h"

namespace ceal::tuner {
namespace {

struct Fixture {
  sim::Workload wl = sim::make_lv();
  MeasuredPool pool;
  std::vector<ComponentSamples> comps;

  Fixture()
      : pool(measure_pool(wl.workflow, 300, 11)),
        comps(measure_components(wl.workflow, 60, 12)) {}
};

Fixture& fixture() {
  static Fixture f;  // built once; measuring pools is the slow part
  return f;
}

std::unique_ptr<AutoTuner> make_tuner(const std::string& name) {
  if (name == "RS") return std::make_unique<RandomSearch>();
  if (name == "AL") return std::make_unique<ActiveLearning>();
  if (name == "GEIST") return std::make_unique<Geist>();
  if (name == "ALpH") return std::make_unique<Alph>();
  return std::make_unique<Ceal>();
}

class AlgorithmContract
    : public ::testing::TestWithParam<std::tuple<std::string, bool>> {
 protected:
  TuningProblem problem() {
    auto& f = fixture();
    return TuningProblem{&f.wl, Objective::kExecTime, &f.pool, &f.comps,
                         std::get<1>(GetParam()), {}};
  }

  std::unique_ptr<AutoTuner> tuner() {
    return make_tuner(std::get<0>(GetParam()));
  }
};

TEST_P(AlgorithmContract, RespectsBudget) {
  auto prob = problem();
  ceal::Rng rng(1);
  const auto result = tuner()->tune(prob, 20, rng);
  EXPECT_LE(result.runs_used, 20u);
  EXPECT_GE(result.runs_used, 1u);
}

TEST_P(AlgorithmContract, ScoresCoverWholePool) {
  auto prob = problem();
  ceal::Rng rng(2);
  const auto result = tuner()->tune(prob, 20, rng);
  EXPECT_EQ(result.model_scores.size(), prob.pool->size());
}

TEST_P(AlgorithmContract, BestPredictedIsArgminOfScores) {
  auto prob = problem();
  ceal::Rng rng(3);
  const auto result = tuner()->tune(prob, 20, rng);
  for (const double s : result.model_scores) {
    EXPECT_LE(result.model_scores[result.best_predicted_index], s);
  }
}

TEST_P(AlgorithmContract, MeasuredIndicesAreUniqueAndInRange) {
  auto prob = problem();
  ceal::Rng rng(4);
  const auto result = tuner()->tune(prob, 20, rng);
  std::set<std::size_t> seen(result.measured_indices.begin(),
                             result.measured_indices.end());
  EXPECT_EQ(seen.size(), result.measured_indices.size());
  for (const std::size_t i : result.measured_indices) {
    EXPECT_LT(i, prob.pool->size());
  }
}

TEST_P(AlgorithmContract, MeasuredConfigsScoreAsObservations) {
  auto prob = problem();
  ceal::Rng rng(5);
  const auto result = tuner()->tune(prob, 20, rng);
  const auto& measured = prob.pool->measured(prob.objective);
  for (const std::size_t i : result.measured_indices) {
    EXPECT_DOUBLE_EQ(result.model_scores[i], measured[i]);
  }
}

TEST_P(AlgorithmContract, DeterministicGivenSeed) {
  auto prob = problem();
  ceal::Rng r1(6), r2(6);
  const auto a = tuner()->tune(prob, 15, r1);
  const auto b = tuner()->tune(prob, 15, r2);
  EXPECT_EQ(a.best_predicted_index, b.best_predicted_index);
  EXPECT_EQ(a.measured_indices, b.measured_indices);
  EXPECT_EQ(a.model_scores, b.model_scores);
}

TEST_P(AlgorithmContract, CostsArePositiveAndConsistent) {
  auto prob = problem();
  ceal::Rng rng(7);
  const auto result = tuner()->tune(prob, 20, rng);
  EXPECT_GT(result.cost_exec_s, 0.0);
  EXPECT_GT(result.cost_comp_ch, 0.0);
  // Cost includes at least the measured workflow runs.
  double min_cost = 0.0;
  for (const std::size_t i : result.measured_indices) {
    min_cost += prob.pool->exec_s[i];
  }
  EXPECT_GE(result.cost_exec_s, min_cost - 1e-9);
}

TEST_P(AlgorithmContract, BestMeasuredIsTrulyTheBestMeasurement) {
  auto prob = problem();
  ceal::Rng rng(8);
  const auto result = tuner()->tune(prob, 20, rng);
  const auto& measured = prob.pool->measured(prob.objective);
  for (const std::size_t i : result.measured_indices) {
    EXPECT_LE(measured[result.best_measured_index], measured[i]);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllAlgorithms, AlgorithmContract,
    ::testing::Values(std::make_tuple("RS", false),
                      std::make_tuple("AL", false),
                      std::make_tuple("GEIST", false),
                      std::make_tuple("CEAL", false),
                      std::make_tuple("ALpH", true),
                      std::make_tuple("CEAL", true),
                      std::make_tuple("ALpH", false)),
    [](const auto& info) {
      return std::get<0>(info.param) +
             (std::get<1>(info.param) ? "_hist" : "_nohist");
    });

TEST(AlgorithmNames, AreStable) {
  EXPECT_EQ(RandomSearch().name(), "RS");
  EXPECT_EQ(ActiveLearning().name(), "AL");
  EXPECT_EQ(Geist().name(), "GEIST");
  EXPECT_EQ(Alph().name(), "ALpH");
  EXPECT_EQ(Ceal().name(), "CEAL");
}

TEST(PoolGraphTest, NeighborsAreSymmetricallySized) {
  auto& f = fixture();
  const PoolGraph graph(f.wl.workflow.joint_space(), f.pool.configs, 5);
  EXPECT_EQ(graph.size(), f.pool.size());
  for (std::size_t i = 0; i < graph.size(); ++i) {
    EXPECT_EQ(graph.neighbors(i).size(), 5u);
    for (const std::size_t nb : graph.neighbors(i)) {
      EXPECT_NE(nb, i);
      EXPECT_LT(nb, graph.size());
    }
  }
}

TEST(GeistTest, SharedGraphGivesSameResultAsOwnGraph) {
  auto& f = fixture();
  TuningProblem prob{&f.wl, Objective::kExecTime, &f.pool, &f.comps, false, {}};
  GeistParams with_graph;
  with_graph.graph = std::make_shared<PoolGraph>(
      f.wl.workflow.joint_space(), f.pool.configs, with_graph.k_neighbors);
  Geist own{GeistParams{}}, shared{with_graph};
  ceal::Rng r1(9), r2(9);
  EXPECT_EQ(own.tune(prob, 15, r1).best_predicted_index,
            shared.tune(prob, 15, r2).best_predicted_index);
}

}  // namespace
}  // namespace ceal::tuner
