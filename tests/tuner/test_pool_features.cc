// Pool featurization cache: cached scoring must agree bitwise with the
// per-configuration paths, and CEAL end-to-end must be independent of
// the worker count.
#include "tuner/pool_features.h"

#include <gtest/gtest.h>

#include "core/parallel.h"
#include "core/rng.h"
#include "sim/workloads.h"
#include "tuner/ceal.h"
#include "tuner/low_fidelity.h"
#include "tuner/measured_pool.h"
#include "tuner/surrogate.h"

namespace ceal::tuner {
namespace {

class PoolFeaturesTest : public ::testing::Test {
 protected:
  PoolFeaturesTest()
      : wl_(sim::make_lv()),
        pool_(measure_pool(wl_.workflow, 300, 21)),
        comps_(measure_components(wl_.workflow, 100, 22)) {}

  static void TearDownTestSuite() {
    ceal::set_global_thread_pool_threads(0);
  }

  sim::Workload wl_;
  MeasuredPool pool_;
  std::vector<ComponentSamples> comps_;
};

TEST_F(PoolFeaturesTest, RowsMatchDirectFeaturization) {
  const auto pf = featurize_pool(wl_.workflow, pool_.configs);
  ASSERT_EQ(pf.size(), pool_.configs.size());
  ASSERT_EQ(pf.components.size(), wl_.workflow.component_count());

  const auto& composite = wl_.workflow.space();
  for (std::size_t i = 0; i < pool_.configs.size(); ++i) {
    const auto joint = wl_.workflow.joint_space().features(pool_.configs[i]);
    const auto row = pf.joint.row(i);
    ASSERT_EQ(joint.size(), row.size());
    for (std::size_t k = 0; k < row.size(); ++k) {
      ASSERT_EQ(joint[k], row[k]);
    }
    for (std::size_t j = 0; j < pf.components.size(); ++j) {
      const auto sliced = composite.component_space(j).features(
          composite.slice(pool_.configs[i], j));
      const auto comp_row = pf.components[j].row(i);
      ASSERT_EQ(sliced.size(), comp_row.size());
      for (std::size_t k = 0; k < comp_row.size(); ++k) {
        ASSERT_EQ(sliced[k], comp_row[k]);
      }
    }
  }
}

TEST_F(PoolFeaturesTest, SurrogateCachedPredictionsBitwiseEqual) {
  const auto& space = wl_.workflow.joint_space();
  Surrogate surrogate;
  ceal::Rng rng(5);
  const std::span<const config::Configuration> train(pool_.configs.data(),
                                                     40);
  const std::span<const double> targets(
      pool_.measured(Objective::kExecTime).data(), 40);
  surrogate.fit(space, train, targets, rng);

  const auto direct = surrogate.predict_many(space, pool_.configs);
  const auto cached =
      surrogate.predict_many(featurize_joint(space, pool_.configs));
  ASSERT_EQ(direct.size(), cached.size());
  for (std::size_t i = 0; i < direct.size(); ++i) {
    ASSERT_EQ(direct[i], cached[i]);
    ASSERT_EQ(cached[i],
              surrogate.predict_features(space.features(pool_.configs[i])));
  }
}

TEST_F(PoolFeaturesTest, LowFidelityCachedScoresBitwiseEqual) {
  std::vector<std::vector<std::size_t>> indices(comps_.size());
  for (std::size_t j = 0; j < comps_.size(); ++j) {
    for (std::size_t s = 0; s < comps_[j].size(); ++s) {
      indices[j].push_back(s);
    }
  }
  ceal::Rng rng(9);
  auto components = std::make_shared<const ComponentModelSet>(
      wl_.workflow, Objective::kExecTime, comps_, indices, rng);
  const LowFidelityModel model(wl_.workflow, Objective::kExecTime,
                               components);

  const auto direct = model.score_many(pool_.configs);
  const auto cached =
      model.score_many(featurize_pool(wl_.workflow, pool_.configs));
  ASSERT_EQ(direct.size(), cached.size());
  for (std::size_t i = 0; i < direct.size(); ++i) {
    ASSERT_EQ(direct[i], cached[i]);
    ASSERT_EQ(direct[i], model.score(pool_.configs[i]));
  }
}

TEST_F(PoolFeaturesTest, CealResultIndependentOfThreadCount) {
  TuningProblem problem{&wl_, Objective::kExecTime, &pool_, &comps_, true, {}};
  Ceal ceal;
  std::vector<TuneResult> results;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    ceal::set_global_thread_pool_threads(threads);
    ceal::Rng rng(31);
    results.push_back(ceal.tune(problem, 25, rng));
  }
  ASSERT_EQ(results[0].best_predicted_index, results[1].best_predicted_index);
  ASSERT_EQ(results[0].measured_indices, results[1].measured_indices);
  ASSERT_EQ(results[0].model_scores.size(), results[1].model_scores.size());
  for (std::size_t i = 0; i < results[0].model_scores.size(); ++i) {
    ASSERT_EQ(results[0].model_scores[i], results[1].model_scores[i]);
  }
}

}  // namespace
}  // namespace ceal::tuner
