#include "tuner/tuning_util.h"

#include <gtest/gtest.h>

#include <set>

#include "sim/workloads.h"

namespace ceal::tuner {
namespace {

class TuningUtilTest : public ::testing::Test {
 protected:
  TuningUtilTest()
      : wl_(sim::make_lv()),
        pool_(measure_pool(wl_.workflow, 50, 1)),
        comps_(measure_components(wl_.workflow, 10, 2)),
        problem_{&wl_, Objective::kExecTime, &pool_, &comps_, false, {}} {}

  sim::Workload wl_;
  MeasuredPool pool_;
  std::vector<ComponentSamples> comps_;
  TuningProblem problem_;
};

TEST_F(TuningUtilTest, TopUnmeasuredSkipsMeasured) {
  Collector col(problem_, 10);
  std::vector<double> scores(pool_.size());
  for (std::size_t i = 0; i < scores.size(); ++i) {
    scores[i] = static_cast<double>(i);  // index 0 is best
  }
  col.measure(0);
  col.measure(1);
  const auto top = top_unmeasured(scores, col, 3);
  const std::vector<std::size_t> expected{2, 3, 4};
  EXPECT_EQ(top, expected);
}

TEST_F(TuningUtilTest, TopUnmeasuredReturnsFewerWhenExhausted) {
  Collector col(problem_, 50);
  std::vector<double> scores(pool_.size(), 1.0);
  for (std::size_t i = 0; i < 48; ++i) col.measure(i);
  const auto top = top_unmeasured(scores, col, 5);
  EXPECT_EQ(top.size(), 2u);
}

TEST_F(TuningUtilTest, RandomUnmeasuredIsDistinctAndUnmeasured) {
  Collector col(problem_, 10);
  col.measure(3);
  ceal::Rng rng(1);
  const auto picks = random_unmeasured(col, 10, rng);
  std::set<std::size_t> seen(picks.begin(), picks.end());
  EXPECT_EQ(seen.size(), 10u);
  EXPECT_EQ(seen.count(3), 0u);
}

TEST_F(TuningUtilTest, MeasureBatchStopsAtBudget) {
  Collector col(problem_, 3);
  const std::vector<std::size_t> batch{0, 1, 2, 3, 4};
  const std::size_t measured = measure_batch(col, batch);
  EXPECT_EQ(measured, 3u);
  EXPECT_EQ(col.remaining(), 0u);
}

TEST_F(TuningUtilTest, FitOnMeasuredTrainsOnCollectedData) {
  Collector col(problem_, 10);
  ceal::Rng rng(2);
  for (std::size_t i = 0; i < 10; ++i) col.measure(i);
  Surrogate model;
  fit_on_measured(model, col, rng);
  EXPECT_TRUE(model.is_fitted());
}

TEST_F(TuningUtilTest, FinalizeOverridesMeasuredScoresWithObservations) {
  Collector col(problem_, 2);
  col.measure(4);
  col.measure(9);
  std::vector<double> scores(pool_.size(), 1000.0);
  const auto result = finalize_result(col, std::move(scores));
  EXPECT_DOUBLE_EQ(result.model_scores[4], pool_.exec_s[4]);
  EXPECT_DOUBLE_EQ(result.model_scores[9], pool_.exec_s[9]);
  EXPECT_DOUBLE_EQ(result.model_scores[0], 1000.0);
}

TEST_F(TuningUtilTest, FinalizePicksArgminAndBestMeasured) {
  Collector col(problem_, 2);
  col.measure(4);
  col.measure(9);
  std::vector<double> scores(pool_.size(), 1000.0);
  scores[7] = 0.0001;  // unmeasured model favourite
  const auto result = finalize_result(col, std::move(scores));
  EXPECT_EQ(result.best_predicted_index, 7u);
  const std::size_t expect_best_measured =
      pool_.exec_s[4] <= pool_.exec_s[9] ? 4u : 9u;
  EXPECT_EQ(result.best_measured_index, expect_best_measured);
  EXPECT_EQ(result.runs_used, 2u);
  EXPECT_GT(result.cost_exec_s, 0.0);
}

}  // namespace
}  // namespace ceal::tuner
