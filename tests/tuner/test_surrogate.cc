#include "tuner/surrogate.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/error.h"
#include "core/rng.h"

namespace ceal::tuner {
namespace {

using config::ConfigSpace;
using config::Configuration;
using config::Parameter;

ConfigSpace grid() {
  return ConfigSpace(
      {Parameter::range("x", 1, 32), Parameter::range("y", 1, 8)});
}

TEST(Surrogate, FitsMultiplicativeSurface) {
  const auto space = grid();
  ceal::Rng rng(1);
  std::vector<Configuration> configs;
  std::vector<double> targets;
  for (int i = 0; i < 200; ++i) {
    const Configuration c = space.random_valid(rng);
    configs.push_back(c);
    targets.push_back(100.0 / c[0] * (1.0 + 0.2 * c[1]));
  }
  Surrogate model;
  model.fit(space, configs, targets, rng);
  // Ranking: fewer x is slower.
  EXPECT_GT(model.predict(space, {2, 4}), model.predict(space, {30, 4}));
}

TEST(Surrogate, LogTargetsKeepOutlierFromPoisoningGoodRegion) {
  const auto space = grid();
  ceal::Rng rng(2);
  std::vector<Configuration> configs;
  std::vector<double> targets;
  for (int x = 20; x <= 28; ++x) {
    configs.push_back({x, 1});
    targets.push_back(10.0);
  }
  configs.push_back({1, 8});
  targets.push_back(5000.0);  // extreme outlier
  Surrogate model;
  model.fit(space, configs, targets, rng);
  EXPECT_NEAR(model.predict(space, {24, 1}), 10.0, 3.0);
}

TEST(Surrogate, PredictionsArePositiveWithLogTargets) {
  const auto space = grid();
  ceal::Rng rng(3);
  std::vector<Configuration> configs{{1, 1}, {32, 8}, {16, 4}};
  std::vector<double> targets{100.0, 1.0, 10.0};
  Surrogate model;
  model.fit(space, configs, targets, rng);
  for (int x = 1; x <= 32; x += 5) {
    for (int y = 1; y <= 8; ++y) {
      EXPECT_GT(model.predict(space, {x, y}), 0.0);
    }
  }
}

TEST(Surrogate, LogTargetsRejectNonPositiveValues) {
  const auto space = grid();
  ceal::Rng rng(4);
  std::vector<Configuration> configs{{1, 1}};
  std::vector<double> targets{0.0};
  Surrogate model;
  EXPECT_THROW(model.fit(space, configs, targets, rng),
               ceal::PreconditionError);
}

TEST(Surrogate, RawModeAllowsAnyTargets) {
  const auto space = grid();
  ceal::Rng rng(5);
  std::vector<Configuration> configs{{1, 1}, {2, 1}};
  std::vector<double> targets{-5.0, 5.0};
  Surrogate model(ml::GradientBoostedTrees::surrogate_defaults(),
                  /*log_targets=*/false);
  model.fit(space, configs, targets, rng);
  EXPECT_LT(model.predict(space, {1, 1}), model.predict(space, {2, 1}));
}

TEST(Surrogate, PredictManyMatchesPredict) {
  const auto space = grid();
  ceal::Rng rng(6);
  std::vector<Configuration> configs{{1, 1}, {8, 2}, {32, 8}};
  std::vector<double> targets{30.0, 20.0, 10.0};
  Surrogate model;
  model.fit(space, configs, targets, rng);
  const auto many = model.predict_many(space, configs);
  ASSERT_EQ(many.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(many[i], model.predict(space, configs[i]));
  }
}

TEST(Surrogate, MismatchedSizesRejected) {
  const auto space = grid();
  ceal::Rng rng(7);
  std::vector<Configuration> configs{{1, 1}};
  std::vector<double> targets{1.0, 2.0};
  Surrogate model;
  EXPECT_THROW(model.fit(space, configs, targets, rng),
               ceal::PreconditionError);
}

TEST(Surrogate, IsFittedLifecycle) {
  Surrogate model;
  EXPECT_FALSE(model.is_fitted());
  const auto space = grid();
  ceal::Rng rng(8);
  std::vector<Configuration> configs{{4, 4}};
  std::vector<double> targets{2.0};
  model.fit(space, configs, targets, rng);
  EXPECT_TRUE(model.is_fitted());
  EXPECT_NEAR(model.predict(space, {4, 4}), 2.0, 0.1);
}

}  // namespace
}  // namespace ceal::tuner
