#include "tuner/collector.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/error.h"
#include "sim/workloads.h"

namespace ceal::tuner {
namespace {

class CollectorTest : public ::testing::Test {
 protected:
  CollectorTest()
      : wl_(sim::make_lv()),
        pool_(measure_pool(wl_.workflow, 100, 1)),
        comps_(measure_components(wl_.workflow, 30, 2)) {}

  TuningProblem problem(bool history = false) {
    return TuningProblem{&wl_, Objective::kExecTime, &pool_, &comps_,
                         history, {}};
  }

  sim::Workload wl_;
  MeasuredPool pool_;
  std::vector<ComponentSamples> comps_;
};

TEST_F(CollectorTest, MeasureChargesOncePerConfig) {
  auto prob = problem();
  Collector col(prob, 10);
  EXPECT_EQ(col.remaining(), 10u);
  const double v1 = col.measure(5);
  EXPECT_EQ(col.runs_used(), 1u);
  const double v2 = col.measure(5);  // cached, free
  EXPECT_EQ(col.runs_used(), 1u);
  EXPECT_DOUBLE_EQ(v1, v2);
  EXPECT_DOUBLE_EQ(v1, pool_.exec_s[5]);
}

TEST_F(CollectorTest, BudgetExhaustionThrows) {
  auto prob = problem();
  Collector col(prob, 2);
  col.measure(0);
  col.measure(1);
  EXPECT_EQ(col.remaining(), 0u);
  EXPECT_THROW(col.measure(2), ceal::PreconditionError);
  // Already-measured configs stay free even at zero budget.
  EXPECT_DOUBLE_EQ(col.measure(1), pool_.exec_s[1]);
}

TEST_F(CollectorTest, MeasuredBookkeeping) {
  auto prob = problem();
  Collector col(prob, 5);
  col.measure(7);
  col.measure(3);
  EXPECT_TRUE(col.is_measured(7));
  EXPECT_FALSE(col.is_measured(8));
  const std::vector<std::size_t> expected{7, 3};
  EXPECT_EQ(col.measured_indices(), expected);
  EXPECT_EQ(col.measured_values().size(), 2u);
  EXPECT_DOUBLE_EQ(col.measured_values()[1], pool_.exec_s[3]);
}

TEST_F(CollectorTest, CostAccumulatesMeasuredTimes) {
  auto prob = problem();
  Collector col(prob, 5);
  col.measure(0);
  col.measure(1);
  EXPECT_DOUBLE_EQ(col.cost_exec_s(), pool_.exec_s[0] + pool_.exec_s[1]);
  EXPECT_DOUBLE_EQ(col.cost_comp_ch(), pool_.comp_ch[0] + pool_.comp_ch[1]);
}

TEST_F(CollectorTest, ComponentSamplesChargeRounds) {
  auto prob = problem();
  Collector col(prob, 20);
  ceal::Rng rng(1);
  const auto& idx = col.acquire_component_samples(8, rng);
  EXPECT_EQ(col.runs_used(), 8u);
  ASSERT_EQ(idx.size(), 2u);
  EXPECT_EQ(idx[0].size(), 8u);
  EXPECT_EQ(idx[1].size(), 8u);
  EXPECT_GT(col.cost_exec_s(), 0.0);
}

TEST_F(CollectorTest, ComponentSamplesAreDistinctAcrossCalls) {
  auto prob = problem();
  Collector col(prob, 30);
  ceal::Rng rng(2);
  col.acquire_component_samples(10, rng);
  const auto idx = col.acquire_component_samples(10, rng);
  std::set<std::size_t> seen(idx[0].begin(), idx[0].end());
  EXPECT_EQ(seen.size(), 20u);  // no repeats within a component
}

TEST_F(CollectorTest, HistoryModeComponentSamplesAreFree) {
  auto prob = problem(/*history=*/true);
  Collector col(prob, 5);
  const auto& idx = col.all_component_samples();
  EXPECT_EQ(col.runs_used(), 0u);
  EXPECT_EQ(idx[0].size(), comps_[0].size());
  EXPECT_EQ(idx[1].size(), comps_[1].size());
}

TEST_F(CollectorTest, FreeSamplesRequireHistoryMode) {
  auto prob = problem(/*history=*/false);
  Collector col(prob, 5);
  EXPECT_THROW(col.all_component_samples(), ceal::PreconditionError);
}

TEST_F(CollectorTest, HistoryModeAcquireDoesNotCharge) {
  auto prob = problem(/*history=*/true);
  Collector col(prob, 5);
  ceal::Rng rng(3);
  col.acquire_component_samples(4, rng);
  EXPECT_EQ(col.runs_used(), 0u);
}

TEST_F(CollectorTest, ObjectiveSelectsMeasuredMetric) {
  auto prob = problem();
  prob.objective = Objective::kComputerTime;
  Collector col(prob, 5);
  EXPECT_DOUBLE_EQ(col.measure(4), pool_.comp_ch[4]);
}

TEST_F(CollectorTest, ComponentPoolExhaustionIsGraceful) {
  auto prob = problem();
  Collector col(prob, 50);
  ceal::Rng rng(4);
  // Only 30 samples exist per component; asking for 40 rounds yields 30
  // and charges only the 30 effective rounds — ineffective rounds must
  // not burn workflow-run budget.
  const auto& idx = col.acquire_component_samples(40, rng);
  EXPECT_EQ(idx[0].size(), 30u);
  EXPECT_EQ(idx[1].size(), 30u);
  EXPECT_EQ(col.runs_used(), 30u);
  // The pools are dry: further rounds neither draw nor charge.
  col.acquire_component_samples(5, rng);
  EXPECT_EQ(col.runs_used(), 30u);
  EXPECT_EQ(idx[0].size(), 30u);
}

TEST_F(CollectorTest, FaultFreePathKeepsOkViewsInSync) {
  auto prob = problem();
  ceal::Rng rng(10);
  Collector col(prob, 5, &rng);
  col.measure(2);
  col.measure(9);
  EXPECT_EQ(col.ok_indices(), col.measured_indices());
  EXPECT_EQ(col.ok_values(), col.measured_values());
  EXPECT_EQ(col.failed_count(), 0u);
  ASSERT_EQ(col.measured_statuses().size(), 2u);
  EXPECT_EQ(col.measured_statuses()[0], sim::RunStatus::kOk);
}

TEST_F(CollectorTest, FaultInjectionRequiresRng) {
  auto prob = problem();
  prob.measurement.faults.fail_prob = 0.5;
  EXPECT_THROW(Collector(prob, 5), ceal::PreconditionError);
}

TEST_F(CollectorTest, RetryExactlyExhaustsBudget) {
  auto prob = problem();
  prob.measurement.faults.fail_prob = 0.9999;  // effectively always fails
  prob.measurement.max_attempts = 10;
  ceal::Rng rng(11);
  Collector col(prob, 2, &rng);
  // Attempt 1 charges the first unit and fails; the single retry charges
  // the second; the next retry is *not* taken — the ledger stays exactly
  // spent and the entry keeps its failure status instead of throwing.
  const MeasureOutcome out = col.try_measure(0);
  EXPECT_EQ(out.status, sim::RunStatus::kFailed);
  EXPECT_EQ(out.attempts, 2u);
  EXPECT_EQ(col.runs_used(), 2u);
  EXPECT_EQ(col.remaining(), 0u);
  // A *new* request at zero budget still throws.
  EXPECT_THROW(col.try_measure(1), ceal::PreconditionError);
}

TEST_F(CollectorTest, RepeatOfFailedIndexIsCachedAndFree) {
  auto prob = problem();
  prob.measurement.faults.fail_prob = 0.9999;
  prob.measurement.max_attempts = 1;
  ceal::Rng rng(12);
  Collector col(prob, 10, &rng);
  const MeasureOutcome first = col.try_measure(3);
  ASSERT_EQ(first.status, sim::RunStatus::kFailed);
  EXPECT_EQ(col.runs_used(), 1u);

  // The repeat serves the cached verdict: same status, zero attempts,
  // zero charge — a failed configuration is not silently re-run.
  const MeasureOutcome repeat = col.try_measure(3);
  EXPECT_EQ(repeat.status, sim::RunStatus::kFailed);
  EXPECT_EQ(repeat.attempts, 0u);
  EXPECT_EQ(col.runs_used(), 1u);
  // The value API refuses to conjure a number for a failed entry.
  EXPECT_THROW(col.measure(3), ceal::PreconditionError);

  // Bookkeeping: the entry is in the all-statuses trace but not the
  // training views, and its legacy value slot holds NaN.
  EXPECT_EQ(col.measured_indices().size(), 1u);
  EXPECT_EQ(col.ok_indices().size(), 0u);
  EXPECT_EQ(col.failed_count(), 1u);
  EXPECT_TRUE(std::isnan(col.measured_values()[0]));
}

TEST_F(CollectorTest, UnchargedRetriesSpendOneUnit) {
  auto prob = problem();
  prob.measurement.faults.fail_prob = 0.9999;
  prob.measurement.max_attempts = 5;
  prob.measurement.charge_retries = false;
  ceal::Rng rng(13);
  Collector col(prob, 10, &rng);
  const MeasureOutcome out = col.try_measure(0);
  EXPECT_EQ(out.status, sim::RunStatus::kFailed);
  EXPECT_EQ(out.attempts, 5u);
  EXPECT_EQ(col.runs_used(), 1u);  // retries ride on the first unit
}

TEST_F(CollectorTest, RetriesRecoverFromTransientFailures) {
  auto prob = problem();
  prob.measurement.faults.fail_prob = 0.5;
  prob.measurement.max_attempts = 8;
  ceal::Rng rng(14);
  Collector col(prob, 60, &rng);
  // With 8 attempts at p=0.5 a final failure has probability 2^-8; ten
  // configurations should virtually always all end up measured.
  for (std::size_t i = 0; i < 10; ++i) {
    const MeasureOutcome out = col.try_measure(i);
    EXPECT_EQ(out.status, sim::RunStatus::kOk);
    EXPECT_GE(out.attempts, 1u);
  }
  EXPECT_EQ(col.ok_indices().size(), 10u);
  EXPECT_GE(col.runs_used(), 10u);  // failed attempts charged budget
}

TEST_F(CollectorTest, CensoredRunsBillTheDeadline) {
  auto prob = problem();
  // Deadline below the pool minimum: every attempt is censored
  // deterministically without drawing randomness for the verdict.
  prob.measurement.faults.deadline_s = 1e-6;
  ceal::Rng rng(15);
  Collector col(prob, 4, &rng);
  const MeasureOutcome out = col.try_measure(0);
  EXPECT_EQ(out.status, sim::RunStatus::kCensored);
  EXPECT_DOUBLE_EQ(col.cost_exec_s(), 1e-6);
}

}  // namespace
}  // namespace ceal::tuner
