#include "tuner/collector.h"

#include <gtest/gtest.h>

#include "core/error.h"
#include "sim/workloads.h"

namespace ceal::tuner {
namespace {

class CollectorTest : public ::testing::Test {
 protected:
  CollectorTest()
      : wl_(sim::make_lv()),
        pool_(measure_pool(wl_.workflow, 100, 1)),
        comps_(measure_components(wl_.workflow, 30, 2)) {}

  TuningProblem problem(bool history = false) {
    return TuningProblem{&wl_, Objective::kExecTime, &pool_, &comps_,
                         history};
  }

  sim::Workload wl_;
  MeasuredPool pool_;
  std::vector<ComponentSamples> comps_;
};

TEST_F(CollectorTest, MeasureChargesOncePerConfig) {
  auto prob = problem();
  Collector col(prob, 10);
  EXPECT_EQ(col.remaining(), 10u);
  const double v1 = col.measure(5);
  EXPECT_EQ(col.runs_used(), 1u);
  const double v2 = col.measure(5);  // cached, free
  EXPECT_EQ(col.runs_used(), 1u);
  EXPECT_DOUBLE_EQ(v1, v2);
  EXPECT_DOUBLE_EQ(v1, pool_.exec_s[5]);
}

TEST_F(CollectorTest, BudgetExhaustionThrows) {
  auto prob = problem();
  Collector col(prob, 2);
  col.measure(0);
  col.measure(1);
  EXPECT_EQ(col.remaining(), 0u);
  EXPECT_THROW(col.measure(2), ceal::PreconditionError);
  // Already-measured configs stay free even at zero budget.
  EXPECT_DOUBLE_EQ(col.measure(1), pool_.exec_s[1]);
}

TEST_F(CollectorTest, MeasuredBookkeeping) {
  auto prob = problem();
  Collector col(prob, 5);
  col.measure(7);
  col.measure(3);
  EXPECT_TRUE(col.is_measured(7));
  EXPECT_FALSE(col.is_measured(8));
  const std::vector<std::size_t> expected{7, 3};
  EXPECT_EQ(col.measured_indices(), expected);
  EXPECT_EQ(col.measured_values().size(), 2u);
  EXPECT_DOUBLE_EQ(col.measured_values()[1], pool_.exec_s[3]);
}

TEST_F(CollectorTest, CostAccumulatesMeasuredTimes) {
  auto prob = problem();
  Collector col(prob, 5);
  col.measure(0);
  col.measure(1);
  EXPECT_DOUBLE_EQ(col.cost_exec_s(), pool_.exec_s[0] + pool_.exec_s[1]);
  EXPECT_DOUBLE_EQ(col.cost_comp_ch(), pool_.comp_ch[0] + pool_.comp_ch[1]);
}

TEST_F(CollectorTest, ComponentSamplesChargeRounds) {
  auto prob = problem();
  Collector col(prob, 20);
  ceal::Rng rng(1);
  const auto& idx = col.acquire_component_samples(8, rng);
  EXPECT_EQ(col.runs_used(), 8u);
  ASSERT_EQ(idx.size(), 2u);
  EXPECT_EQ(idx[0].size(), 8u);
  EXPECT_EQ(idx[1].size(), 8u);
  EXPECT_GT(col.cost_exec_s(), 0.0);
}

TEST_F(CollectorTest, ComponentSamplesAreDistinctAcrossCalls) {
  auto prob = problem();
  Collector col(prob, 30);
  ceal::Rng rng(2);
  col.acquire_component_samples(10, rng);
  const auto idx = col.acquire_component_samples(10, rng);
  std::set<std::size_t> seen(idx[0].begin(), idx[0].end());
  EXPECT_EQ(seen.size(), 20u);  // no repeats within a component
}

TEST_F(CollectorTest, HistoryModeComponentSamplesAreFree) {
  auto prob = problem(/*history=*/true);
  Collector col(prob, 5);
  const auto& idx = col.all_component_samples();
  EXPECT_EQ(col.runs_used(), 0u);
  EXPECT_EQ(idx[0].size(), comps_[0].size());
  EXPECT_EQ(idx[1].size(), comps_[1].size());
}

TEST_F(CollectorTest, FreeSamplesRequireHistoryMode) {
  auto prob = problem(/*history=*/false);
  Collector col(prob, 5);
  EXPECT_THROW(col.all_component_samples(), ceal::PreconditionError);
}

TEST_F(CollectorTest, HistoryModeAcquireDoesNotCharge) {
  auto prob = problem(/*history=*/true);
  Collector col(prob, 5);
  ceal::Rng rng(3);
  col.acquire_component_samples(4, rng);
  EXPECT_EQ(col.runs_used(), 0u);
}

TEST_F(CollectorTest, ObjectiveSelectsMeasuredMetric) {
  auto prob = problem();
  prob.objective = Objective::kComputerTime;
  Collector col(prob, 5);
  EXPECT_DOUBLE_EQ(col.measure(4), pool_.comp_ch[4]);
}

TEST_F(CollectorTest, ComponentPoolExhaustionIsGraceful) {
  auto prob = problem();
  Collector col(prob, 50);
  ceal::Rng rng(4);
  // Only 30 samples exist per component; asking for 40 rounds yields 30.
  const auto& idx = col.acquire_component_samples(40, rng);
  EXPECT_EQ(idx[0].size(), 30u);
}

}  // namespace
}  // namespace ceal::tuner
