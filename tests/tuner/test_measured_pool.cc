#include "tuner/measured_pool.h"

#include <gtest/gtest.h>

#include "sim/workloads.h"

namespace ceal::tuner {
namespace {

class MeasuredPoolTest : public ::testing::Test {
 protected:
  MeasuredPoolTest() : wl_(sim::make_lv()) {}

  sim::Workload wl_;
};

TEST_F(MeasuredPoolTest, PoolHasRequestedSizeAndValidConfigs) {
  const auto pool = measure_pool(wl_.workflow, 100, 1);
  EXPECT_EQ(pool.size(), 100u);
  EXPECT_EQ(pool.exec_s.size(), 100u);
  EXPECT_EQ(pool.comp_ch.size(), 100u);
  EXPECT_EQ(pool.true_exec_s.size(), 100u);
  for (const auto& c : pool.configs) {
    EXPECT_TRUE(wl_.workflow.joint_space().is_valid(c));
  }
}

TEST_F(MeasuredPoolTest, SameSeedSamePool) {
  const auto a = measure_pool(wl_.workflow, 50, 7);
  const auto b = measure_pool(wl_.workflow, 50, 7);
  EXPECT_EQ(a.configs, b.configs);
  EXPECT_EQ(a.exec_s, b.exec_s);
}

TEST_F(MeasuredPoolTest, DifferentSeedsDifferentPools) {
  const auto a = measure_pool(wl_.workflow, 50, 7);
  const auto b = measure_pool(wl_.workflow, 50, 8);
  EXPECT_NE(a.configs, b.configs);
}

TEST_F(MeasuredPoolTest, MeasurementsArePositiveAndNearTruth) {
  const auto pool = measure_pool(wl_.workflow, 100, 2);
  for (std::size_t i = 0; i < pool.size(); ++i) {
    EXPECT_GT(pool.exec_s[i], 0.0);
    EXPECT_GT(pool.comp_ch[i], 0.0);
    // 3% lognormal noise keeps measurements within ~25% of truth.
    EXPECT_NEAR(pool.exec_s[i], pool.true_exec_s[i],
                pool.true_exec_s[i] * 0.25);
  }
}

TEST_F(MeasuredPoolTest, BestIndexIsArgmin) {
  const auto pool = measure_pool(wl_.workflow, 200, 3);
  const auto best = pool.best_index(Objective::kExecTime);
  for (const double v : pool.exec_s) {
    EXPECT_LE(pool.exec_s[best], v);
  }
  const auto best_truth = pool.best_truth_index(Objective::kComputerTime);
  for (const double v : pool.true_comp_ch) {
    EXPECT_LE(pool.true_comp_ch[best_truth], v);
  }
}

TEST_F(MeasuredPoolTest, ObjectiveSelectsMetricVector) {
  const auto pool = measure_pool(wl_.workflow, 10, 4);
  EXPECT_EQ(&pool.measured(Objective::kExecTime), &pool.exec_s);
  EXPECT_EQ(&pool.measured(Objective::kComputerTime), &pool.comp_ch);
  EXPECT_EQ(&pool.truth(Objective::kExecTime), &pool.true_exec_s);
}

TEST_F(MeasuredPoolTest, ComponentSamplesPerComponent) {
  const auto comps = measure_components(wl_.workflow, 40, 5);
  ASSERT_EQ(comps.size(), 2u);
  EXPECT_EQ(comps[0].size(), 40u);
  EXPECT_EQ(comps[1].size(), 40u);
  for (std::size_t j = 0; j < comps.size(); ++j) {
    for (const auto& c : comps[j].configs) {
      EXPECT_TRUE(wl_.workflow.app(j).space().is_valid(c));
    }
  }
}

TEST_F(MeasuredPoolTest, UnconfigurableComponentsGetOneSample) {
  const auto gp = sim::make_gp();
  const auto comps = measure_components(gp.workflow, 25, 6);
  ASSERT_EQ(comps.size(), 4u);
  EXPECT_EQ(comps[0].size(), 25u);  // gray_scott
  EXPECT_EQ(comps[1].size(), 25u);  // pdf_calc
  EXPECT_EQ(comps[2].size(), 1u);   // g_plot
  EXPECT_EQ(comps[3].size(), 1u);   // p_plot
}

}  // namespace
}  // namespace ceal::tuner
