#include "tuner/low_fidelity.h"

#include <gtest/gtest.h>

#include <memory>

#include "core/error.h"
#include "core/stats.h"
#include "sim/workloads.h"

namespace ceal::tuner {
namespace {

class LowFidelityTest : public ::testing::Test {
 protected:
  LowFidelityTest()
      : wl_(sim::make_lv()),
        pool_(measure_pool(wl_.workflow, 300, 1)),
        comps_(measure_components(wl_.workflow, 200, 2)) {
    all_indices_.resize(comps_.size());
    for (std::size_t j = 0; j < comps_.size(); ++j) {
      all_indices_[j].resize(comps_[j].size());
      for (std::size_t i = 0; i < comps_[j].size(); ++i) {
        all_indices_[j][i] = i;
      }
    }
  }

  std::shared_ptr<const ComponentModelSet> models(Objective obj) {
    ceal::Rng rng(3);
    return std::make_shared<const ComponentModelSet>(wl_.workflow, obj,
                                                     comps_, all_indices_,
                                                     rng);
  }

  sim::Workload wl_;
  MeasuredPool pool_;
  std::vector<ComponentSamples> comps_;
  std::vector<std::vector<std::size_t>> all_indices_;
};

TEST_F(LowFidelityTest, ComponentModelsPredictSoloTimesAccurately) {
  const auto cm = models(Objective::kExecTime);
  std::vector<double> pred, actual;
  for (std::size_t i = 0; i < comps_[0].size(); ++i) {
    pred.push_back(cm->predict(0, comps_[0].configs[i]));
    actual.push_back(comps_[0].exec_s[i]);
  }
  EXPECT_LT(ceal::mdape_percent(actual, pred), 15.0);
}

TEST_F(LowFidelityTest, ExecScoreIsMaxOfComponentPredictions) {
  const auto cm = models(Objective::kExecTime);
  const LowFidelityModel lf(wl_.workflow, Objective::kExecTime, cm);
  const auto& joint = pool_.configs[0];
  const double expected = std::max(
      cm->predict(0, wl_.workflow.space().slice(joint, 0)),
      cm->predict(1, wl_.workflow.space().slice(joint, 1)));
  EXPECT_DOUBLE_EQ(lf.score(joint), expected);
}

TEST_F(LowFidelityTest, CompScoreIsSumOfComponentPredictions) {
  const auto cm = models(Objective::kComputerTime);
  const LowFidelityModel lf(wl_.workflow, Objective::kComputerTime, cm);
  const auto& joint = pool_.configs[1];
  const double expected =
      cm->predict(0, wl_.workflow.space().slice(joint, 0)) +
      cm->predict(1, wl_.workflow.space().slice(joint, 1));
  EXPECT_DOUBLE_EQ(lf.score(joint), expected);
}

TEST_F(LowFidelityTest, ScoresRankCoupledPerformanceWell) {
  // The whole premise of Phase 1 (§4): the combined component models
  // rank coupled configurations far better than chance.
  const auto cm = models(Objective::kExecTime);
  const LowFidelityModel lf(wl_.workflow, Objective::kExecTime, cm);
  const auto scores = lf.score_many(pool_.configs);
  EXPECT_GT(ceal::spearman(scores, pool_.exec_s), 0.8);
}

TEST_F(LowFidelityTest, ScoreManyMatchesScore) {
  const auto cm = models(Objective::kExecTime);
  const LowFidelityModel lf(wl_.workflow, Objective::kExecTime, cm);
  std::vector<config::Configuration> sub(pool_.configs.begin(),
                                         pool_.configs.begin() + 5);
  const auto scores = lf.score_many(sub);
  for (std::size_t i = 0; i < sub.size(); ++i) {
    EXPECT_DOUBLE_EQ(scores[i], lf.score(sub[i]));
  }
}

TEST_F(LowFidelityTest, EmptySampleIndexListRejected) {
  ceal::Rng rng(4);
  std::vector<std::vector<std::size_t>> empty_indices(comps_.size());
  EXPECT_THROW(ComponentModelSet(wl_.workflow, Objective::kExecTime, comps_,
                                 empty_indices, rng),
               ceal::PreconditionError);
}

TEST_F(LowFidelityTest, SubsetOfSamplesStillWorks) {
  ceal::Rng rng(5);
  std::vector<std::vector<std::size_t>> few(comps_.size());
  for (auto& v : few) v = {0, 1, 2, 3, 4, 5, 6, 7};
  const ComponentModelSet cm(wl_.workflow, Objective::kExecTime, comps_, few,
                             rng);
  EXPECT_EQ(cm.component_count(), 2u);
  EXPECT_GT(cm.predict(0, comps_[0].configs[0]), 0.0);
}

}  // namespace
}  // namespace ceal::tuner
