#include "tuner/evaluation.h"

#include <gtest/gtest.h>

#include <cmath>

#include "sim/workloads.h"
#include "tuner/ceal.h"
#include "tuner/random_search.h"

namespace ceal::tuner {
namespace {

class EvaluationTest : public ::testing::Test {
 protected:
  EvaluationTest()
      : wl_(sim::make_lv()),
        pool_(measure_pool(wl_.workflow, 300, 31)),
        comps_(measure_components(wl_.workflow, 60, 32)) {}

  TuningProblem problem(Objective obj = Objective::kExecTime) {
    return TuningProblem{&wl_, obj, &pool_, &comps_, true, {}};
  }

  sim::Workload wl_;
  MeasuredPool pool_;
  std::vector<ComponentSamples> comps_;
};

TEST_F(EvaluationTest, SummaryFieldsArePopulated) {
  auto prob = problem();
  RandomSearch rs;
  const auto s = evaluate(prob, rs, 15, 5, 1);
  EXPECT_EQ(s.algorithm, "RS");
  EXPECT_EQ(s.workload, "LV");
  EXPECT_EQ(s.budget, 15u);
  EXPECT_EQ(s.replications, 5u);
  EXPECT_GE(s.mean_norm_perf, 1.0);
  EXPECT_GE(s.median_norm_perf, 1.0);
  EXPECT_GT(s.mean_cost_exec_s, 0.0);
  EXPECT_GT(s.mean_cost_comp_ch, 0.0);
  EXPECT_GT(s.mean_runs_used, 0.0);
  EXPECT_LE(s.mean_runs_used, 15.0);
}

TEST_F(EvaluationTest, RecallIsMonotonicallyMeaningful) {
  auto prob = problem();
  RandomSearch rs;
  const auto s = evaluate(prob, rs, 15, 5, 2);
  for (const double r : s.mean_recall) {
    EXPECT_GE(r, 0.0);
    EXPECT_LE(r, 100.0);
  }
}

TEST_F(EvaluationTest, DeterministicGivenSeed) {
  auto prob = problem();
  RandomSearch rs;
  const auto a = evaluate(prob, rs, 10, 4, 7);
  const auto b = evaluate(prob, rs, 10, 4, 7);
  EXPECT_DOUBLE_EQ(a.mean_norm_perf, b.mean_norm_perf);
  EXPECT_DOUBLE_EQ(a.mean_mdape_all, b.mean_mdape_all);
}

TEST_F(EvaluationTest, DifferentSeedsGiveDifferentRuns) {
  auto prob = problem();
  RandomSearch rs;
  const auto a = evaluate(prob, rs, 10, 4, 7);
  const auto b = evaluate(prob, rs, 10, 4, 8);
  EXPECT_NE(a.mean_norm_perf, b.mean_norm_perf);
}

TEST_F(EvaluationTest, ThreadPoolGivesSameAggregates) {
  auto prob = problem();
  RandomSearch rs;
  ceal::ThreadPool tp(3);
  const auto serial = evaluate(prob, rs, 10, 6, 9);
  const auto parallel = evaluate(prob, rs, 10, 6, 9, &tp);
  EXPECT_DOUBLE_EQ(serial.mean_norm_perf, parallel.mean_norm_perf);
  EXPECT_DOUBLE_EQ(serial.mean_recall[0], parallel.mean_recall[0]);
}

TEST_F(EvaluationTest, LeastUsesIsCostOverImprovement) {
  auto prob = problem(Objective::kComputerTime);
  Ceal ceal;
  const auto s = evaluate(prob, ceal, 25, 5, 3);
  if (s.mean_improvement > 0.0) {
    EXPECT_NEAR(s.least_uses, s.mean_cost_comp_ch / s.mean_improvement,
                1e-9);
  } else {
    EXPECT_TRUE(std::isinf(s.least_uses));
  }
}

TEST_F(EvaluationTest, FracBeatExpertWithinBounds) {
  auto prob = problem();
  RandomSearch rs;
  const auto s = evaluate(prob, rs, 15, 5, 4);
  EXPECT_GE(s.frac_beat_expert, 0.0);
  EXPECT_LE(s.frac_beat_expert, 1.0);
}

TEST_F(EvaluationTest, MdapeSplitsComputed) {
  auto prob = problem();
  Ceal ceal;
  const auto s = evaluate(prob, ceal, 20, 5, 5);
  EXPECT_GT(s.mean_mdape_all, 0.0);
  // CEAL often measures the entire top-2% of a small pool, in which case
  // the override makes its top-2% error exactly zero.
  EXPECT_GE(s.mean_mdape_top2, 0.0);
  EXPECT_LT(s.mean_mdape_top2, s.mean_mdape_all + 100.0);
}

}  // namespace
}  // namespace ceal::tuner
