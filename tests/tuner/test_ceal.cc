#include "tuner/ceal.h"

#include <gtest/gtest.h>

#include "core/error.h"
#include "core/stats.h"
#include "sim/workloads.h"
#include "tuner/random_search.h"

namespace ceal::tuner {
namespace {

class CealTest : public ::testing::Test {
 protected:
  CealTest()
      : wl_(sim::make_lv()),
        pool_(measure_pool(wl_.workflow, 400, 21)),
        comps_(measure_components(wl_.workflow, 120, 22)) {}

  TuningProblem problem(bool history,
                        Objective obj = Objective::kExecTime) {
    return TuningProblem{&wl_, obj, &pool_, &comps_, history, {}};
  }

  sim::Workload wl_;
  MeasuredPool pool_;
  std::vector<ComponentSamples> comps_;
};

TEST_F(CealTest, NoHistoryChargesComponentRuns) {
  auto prob = problem(false);
  CealParams params;  // mR = 0.5 m
  Ceal ceal(params);
  ceal::Rng rng(1);
  const auto result = ceal.tune(prob, 50, rng);
  // 25 budget units go to component runs, so at most 25 pool configs
  // can be measured.
  EXPECT_LE(result.measured_indices.size(), 25u);
  EXPECT_LE(result.runs_used, 50u);
}

TEST_F(CealTest, HistoryModeSpendsWholeBudgetOnWorkflowRuns) {
  auto prob = problem(true);
  Ceal ceal(CealParams::with_history());
  ceal::Rng rng(2);
  const auto result = ceal.tune(prob, 25, rng);
  EXPECT_EQ(result.runs_used, result.measured_indices.size());
  EXPECT_GE(result.measured_indices.size(), 20u);
}

TEST_F(CealTest, DefaultCtorAdaptsParamsToHistoryFlag) {
  Ceal auto_ceal;
  ceal::Rng r1(3), r2(3);
  auto no_hist = problem(false);
  auto hist = problem(true);
  const auto a = auto_ceal.tune(no_hist, 30, r1);
  const auto b = auto_ceal.tune(hist, 30, r2);
  // Without histories most budget goes to components (few pool runs);
  // with histories all 30 go to the pool.
  EXPECT_LT(a.measured_indices.size(), b.measured_indices.size());
}

TEST_F(CealTest, FindsBetterConfigsThanRandomSearch) {
  auto prob = problem(true, Objective::kComputerTime);
  Ceal ceal;
  RandomSearch rs;
  const auto& truth = pool_.truth(prob.objective);
  double ceal_sum = 0.0, rs_sum = 0.0;
  for (int rep = 0; rep < 10; ++rep) {
    ceal::Rng r1(100 + rep), r2(100 + rep);
    ceal_sum += truth[ceal.tune(prob, 25, r1).best_predicted_index];
    rs_sum += truth[rs.tune(prob, 25, r2).best_predicted_index];
  }
  EXPECT_LT(ceal_sum, rs_sum);
}

TEST_F(CealTest, SamplesConcentrateOnGoodConfigurations) {
  // §7.4.2: CEAL picks mostly top configurations as training samples.
  auto prob = problem(true);
  Ceal ceal;
  ceal::Rng rng(5);
  const auto result = ceal.tune(prob, 25, rng);
  const auto& measured = pool_.measured(prob.objective);
  const double med = ceal::median(measured);
  std::size_t below_median = 0;
  for (const std::size_t i : result.measured_indices) {
    if (measured[i] < med) ++below_median;
  }
  EXPECT_GT(below_median * 2, result.measured_indices.size());
}

TEST_F(CealTest, WorksForComputerTimeObjective) {
  auto prob = problem(false, Objective::kComputerTime);
  Ceal ceal;
  ceal::Rng rng(6);
  const auto result = ceal.tune(prob, 25, rng);
  EXPECT_EQ(result.model_scores.size(), pool_.size());
  EXPECT_LE(result.runs_used, 25u);
}

TEST_F(CealTest, TinyBudgetStillProducesAModel) {
  auto prob = problem(false);
  Ceal ceal;
  ceal::Rng rng(7);
  const auto result = ceal.tune(prob, 5, rng);
  EXPECT_GE(result.measured_indices.size(), 1u);
  EXPECT_LE(result.runs_used, 5u);
}

TEST_F(CealTest, ParamsAreValidated) {
  CealParams bad;
  bad.iterations = 0;
  EXPECT_THROW(Ceal{bad}, ceal::PreconditionError);
  bad = CealParams{};
  bad.m0_fraction = 1.0;
  EXPECT_THROW(Ceal{bad}, ceal::PreconditionError);
  bad = CealParams{};
  bad.mR_fraction = -0.1;
  EXPECT_THROW(Ceal{bad}, ceal::PreconditionError);
}

TEST_F(CealTest, PresetFactoriesMatchPaperSettings) {
  const auto no_hist = CealParams::no_history();
  EXPECT_EQ(no_hist.iterations, 8u);
  EXPECT_DOUBLE_EQ(no_hist.m0_fraction, 0.05);
  EXPECT_DOUBLE_EQ(no_hist.mR_fraction, 0.5);
  const auto hist = CealParams::with_history();
  EXPECT_EQ(hist.iterations, 3u);
  EXPECT_DOUBLE_EQ(hist.m0_fraction, 0.15);
  EXPECT_DOUBLE_EQ(hist.mR_fraction, 0.0);
}

}  // namespace
}  // namespace ceal::tuner
