#include "tuner/pool_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "core/error.h"
#include "sim/workloads.h"

namespace ceal::tuner {
namespace {

class PoolIoTest : public ::testing::Test {
 protected:
  PoolIoTest()
      : wl_(sim::make_lv()),
        pool_(measure_pool(wl_.workflow, 60, 1)),
        path_(::testing::TempDir() + "ceal_pool_test.csv") {}

  void TearDown() override { std::remove(path_.c_str()); }

  sim::Workload wl_;
  MeasuredPool pool_;
  std::string path_;
};

TEST_F(PoolIoTest, RoundTripPreservesEverything) {
  const auto& space = wl_.workflow.joint_space();
  save_pool_csv(pool_, space, path_);
  const MeasuredPool loaded = load_pool_csv(space, path_);
  ASSERT_EQ(loaded.size(), pool_.size());
  for (std::size_t i = 0; i < pool_.size(); ++i) {
    EXPECT_EQ(loaded.configs[i], pool_.configs[i]);
    EXPECT_DOUBLE_EQ(loaded.exec_s[i], pool_.exec_s[i]);
    EXPECT_DOUBLE_EQ(loaded.comp_ch[i], pool_.comp_ch[i]);
    EXPECT_DOUBLE_EQ(loaded.true_exec_s[i], pool_.true_exec_s[i]);
    EXPECT_DOUBLE_EQ(loaded.true_comp_ch[i], pool_.true_comp_ch[i]);
  }
}

TEST_F(PoolIoTest, PoolWithoutTruthColumnsFallsBackToMeasured) {
  const auto& space = wl_.workflow.joint_space();
  MeasuredPool measured_only = pool_;
  measured_only.true_exec_s.clear();
  measured_only.true_comp_ch.clear();
  save_pool_csv(measured_only, space, path_);
  const MeasuredPool loaded = load_pool_csv(space, path_);
  EXPECT_DOUBLE_EQ(loaded.true_exec_s[0], loaded.exec_s[0]);
}

TEST_F(PoolIoTest, RejectsInvalidConfigurationRows) {
  const auto& space = wl_.workflow.joint_space();
  std::ofstream os(path_);
  os << "a,b,c,d,e,f,exec_s,comp_ch\n";
  os << "999999,1,1,2,1,1,1.0,1.0\n";  // procs out of domain
  os.close();
  EXPECT_THROW(load_pool_csv(space, path_), ceal::PreconditionError);
}

TEST_F(PoolIoTest, RejectsWrongColumnCount) {
  const auto& space = wl_.workflow.joint_space();
  std::ofstream os(path_);
  os << "header\n2,1,1,1.0\n";
  os.close();
  EXPECT_THROW(load_pool_csv(space, path_), ceal::PreconditionError);
}

TEST_F(PoolIoTest, RejectsNonPositiveMeasurements) {
  const auto& space = wl_.workflow.joint_space();
  std::ofstream os(path_);
  os << "a,b,c,d,e,f,exec_s,comp_ch\n";
  os << "288,18,2,288,18,2,-1.0,1.0\n";
  os.close();
  EXPECT_THROW(load_pool_csv(space, path_), ceal::PreconditionError);
}

TEST_F(PoolIoTest, RejectsDuplicateConfigurationRows) {
  const auto& space = wl_.workflow.joint_space();
  save_pool_csv(pool_, space, path_);
  // Re-append the first data row: same configuration, different values.
  std::string first_row;
  {
    std::ifstream is(path_);
    std::getline(is, first_row);  // header
    std::getline(is, first_row);
  }
  std::ofstream(path_, std::ios::app) << first_row << "\n";
  try {
    load_pool_csv(space, path_);
    FAIL() << "duplicate row was accepted";
  } catch (const ceal::PreconditionError& e) {
    const std::string what = e.what();
    // One-line "<path>:<lineno>: why" pointing at the duplicate and its
    // first occurrence.
    const std::string lineno = std::to_string(pool_.size() + 2);
    EXPECT_NE(what.find(path_ + ":" + lineno), std::string::npos) << what;
    EXPECT_NE(what.find("duplicate configuration"), std::string::npos) << what;
    EXPECT_NE(what.find("(first at line 2)"), std::string::npos) << what;
  }
}

TEST_F(PoolIoTest, RejectsEmptyFile) {
  const auto& space = wl_.workflow.joint_space();
  std::ofstream os(path_);
  os.close();
  EXPECT_THROW(load_pool_csv(space, path_), ceal::PreconditionError);
}

TEST_F(PoolIoTest, MissingFileThrows) {
  EXPECT_THROW(load_pool_csv(wl_.workflow.joint_space(),
                             "/nonexistent/pool.csv"),
               std::runtime_error);
}

TEST_F(PoolIoTest, ComponentSamplesRoundTrip) {
  const auto comps = measure_components(wl_.workflow, 25, 2);
  const auto& space = wl_.workflow.app(0).space();
  save_component_csv(comps[0], space, path_);
  const ComponentSamples loaded = load_component_csv(space, path_);
  ASSERT_EQ(loaded.size(), comps[0].size());
  for (std::size_t i = 0; i < loaded.size(); ++i) {
    EXPECT_EQ(loaded.configs[i], comps[0].configs[i]);
    EXPECT_DOUBLE_EQ(loaded.exec_s[i], comps[0].exec_s[i]);
    EXPECT_DOUBLE_EQ(loaded.comp_ch[i], comps[0].comp_ch[i]);
  }
}

TEST_F(PoolIoTest, LoadedPoolDrivesTuning) {
  const auto& space = wl_.workflow.joint_space();
  save_pool_csv(pool_, space, path_);
  const MeasuredPool loaded = load_pool_csv(space, path_);
  EXPECT_EQ(loaded.best_index(Objective::kExecTime),
            pool_.best_index(Objective::kExecTime));
  EXPECT_EQ(loaded.best_truth_index(Objective::kComputerTime),
            pool_.best_truth_index(Objective::kComputerTime));
}

}  // namespace
}  // namespace ceal::tuner
