// Focused tests of GEIST's parameter graph and selection behaviour.
#include <gtest/gtest.h>

#include "config/config_space.h"
#include "core/error.h"
#include "core/rng.h"
#include "tuner/geist.h"

namespace ceal::tuner {
namespace {

using config::ConfigSpace;
using config::Configuration;
using config::Parameter;

TEST(PoolGraph, ChainNeighborsAreIndexAdjacent) {
  // Configurations on a 1-D line: nearest neighbours in feature space are
  // the nearest values.
  const ConfigSpace space({Parameter::range("x", 0, 99)});
  std::vector<Configuration> configs;
  for (int x = 0; x < 100; ++x) configs.push_back({x});
  const PoolGraph graph(space, configs, /*k_neighbors=*/2);
  ASSERT_EQ(graph.size(), 100u);
  // Interior nodes: neighbours are x-1 and x+1.
  for (std::size_t i = 10; i < 90; ++i) {
    const auto& nbrs = graph.neighbors(i);
    ASSERT_EQ(nbrs.size(), 2u);
    for (const std::size_t nb : nbrs) {
      const auto delta = static_cast<std::ptrdiff_t>(nb) -
                         static_cast<std::ptrdiff_t>(i);
      EXPECT_LE(std::abs(delta), 2);
      EXPECT_NE(delta, 0);
    }
  }
}

TEST(PoolGraph, NormalisationMakesScalesComparable) {
  // Feature 0 in [0,1], feature 1 in [0,1000]. Two clusters split on
  // feature 0 only; with min-max normalisation, same-cluster points are
  // each other's neighbours despite feature 1 spreading within clusters.
  const ConfigSpace space(
      {Parameter("a", {0, 1}), Parameter::range("b", 0, 1000, 100)});
  std::vector<Configuration> configs;
  for (int b = 0; b <= 1000; b += 100) {
    configs.push_back({0, b});
    configs.push_back({1, b});
  }
  const PoolGraph graph(space, configs, /*k_neighbors=*/1);
  for (std::size_t i = 0; i < configs.size(); ++i) {
    for (const std::size_t nb : graph.neighbors(i)) {
      EXPECT_EQ(configs[nb][0], configs[i][0])
          << "neighbour crossed the informative cluster split";
    }
  }
}

TEST(PoolGraph, DuplicatePointsAreMutualNeighbors) {
  const ConfigSpace space({Parameter::range("x", 0, 9)});
  std::vector<Configuration> configs{{0}, {0}, {9}};
  const PoolGraph graph(space, configs, /*k_neighbors=*/1);
  EXPECT_EQ(graph.neighbors(0)[0], 1u);
  EXPECT_EQ(graph.neighbors(1)[0], 0u);
}

TEST(PoolGraph, KClampedToPoolSize) {
  const ConfigSpace space({Parameter::range("x", 0, 9)});
  std::vector<Configuration> configs{{0}, {5}, {9}};
  const PoolGraph graph(space, configs, /*k_neighbors=*/10);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(graph.neighbors(i).size(), 2u);  // everyone else
  }
}

TEST(GeistParams, Validation) {
  GeistParams p;
  p.alpha = 1.5;
  EXPECT_THROW(Geist{p}, ceal::PreconditionError);
  p = GeistParams{};
  p.top_quantile = 0.0;
  EXPECT_THROW(Geist{p}, ceal::PreconditionError);
  p = GeistParams{};
  p.iterations = 0;
  EXPECT_THROW(Geist{p}, ceal::PreconditionError);
}

}  // namespace
}  // namespace ceal::tuner
