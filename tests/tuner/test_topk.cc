// Bounded top-k selection (tuner/tuning_util.h) versus the full-sort
// reference it replaced: smallest_k must equal the first k entries of
// ceal::argsort for any score vector — including heavy ties, where the
// stable sort's lower-index preference is the contract — and
// top_unmeasured must equal the old argsort-then-filter walk.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "core/rng.h"
#include "core/stats.h"
#include "sim/workloads.h"
#include "tuner/collector.h"
#include "tuner/tuning_util.h"

namespace ceal::tuner {
namespace {

/// The reference the bounded path must reproduce bit for bit.
std::vector<std::size_t> argsort_prefix(const std::vector<double>& scores,
                                        std::size_t k) {
  auto order = ceal::argsort(scores);
  order.resize(std::min(k, order.size()));
  return order;
}

TEST(SmallestK, MatchesArgsortPrefixOnRandomScores) {
  ceal::Rng rng(17);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<double> scores(200);
    for (double& s : scores) s = rng.uniform(0.0, 1.0);
    for (const std::size_t k : {std::size_t{1}, std::size_t{7},
                                std::size_t{64}, scores.size(),
                                scores.size() + 10}) {
      EXPECT_EQ(smallest_k(scores, k), argsort_prefix(scores, k))
          << "trial " << trial << " k " << k;
    }
  }
}

TEST(SmallestK, HeavyTiesBreakTowardsTheLowerIndex) {
  // Only three distinct values over 300 entries: almost every comparison
  // the heap makes is a tie, so any deviation from the stable sort's
  // lower-index preference shows up immediately.
  ceal::Rng rng(5);
  std::vector<double> scores(300);
  for (double& s : scores) {
    s = static_cast<double>(rng.uniform_u64(3));
  }
  for (const std::size_t k : {std::size_t{1}, std::size_t{50},
                              std::size_t{299}, scores.size()}) {
    EXPECT_EQ(smallest_k(scores, k), argsort_prefix(scores, k)) << "k " << k;
  }
}

TEST(SmallestK, AllEqualScoresSelectTheFirstKIndices) {
  const std::vector<double> scores(64, 1.5);
  const auto got = smallest_k(scores, 8);
  const std::vector<std::size_t> expected{0, 1, 2, 3, 4, 5, 6, 7};
  EXPECT_EQ(got, expected);
}

TEST(TopKSelector, ZeroKKeepsNothing) {
  TopKSelector selector(0);
  selector.push(1.0, 0);
  selector.push(0.0, 1);
  EXPECT_EQ(selector.size(), 0u);
  EXPECT_TRUE(selector.take().empty());
}

TEST(TopKSelector, StreamedPushesInAnyOrderSortByScoreThenIndex) {
  // Indices arrive shuffled (a chunked pool scan visits chunks in order
  // but a test may not); the kept set and its ordering must not depend
  // on arrival order as long as each index arrives once.
  ceal::Rng rng(99);
  std::vector<double> scores(150);
  for (double& s : scores) {
    s = static_cast<double>(rng.uniform_u64(5));
  }
  for (int trial = 0; trial < 5; ++trial) {
    const auto arrival = rng.permutation(scores.size());
    TopKSelector selector(20);
    for (const std::size_t i : arrival) selector.push(scores[i], i);
    EXPECT_EQ(selector.take(), argsort_prefix(scores, 20)) << trial;
  }
}

TEST(TopKSelector, TakeLeavesTheSelectorReusable) {
  TopKSelector selector(2);
  selector.push(3.0, 0);
  selector.push(1.0, 1);
  selector.push(2.0, 2);
  const std::vector<std::size_t> first{1, 2};
  EXPECT_EQ(selector.take(), first);
  selector.push(5.0, 7);
  const std::vector<std::size_t> second{7};
  EXPECT_EQ(selector.take(), second);
}

TEST(TopUnmeasured, EqualsArgsortThenFilterWithTies) {
  sim::Workload wl = sim::make_lv();
  MeasuredPool pool = measure_pool(wl.workflow, 60, 1);
  auto comps = measure_components(wl.workflow, 10, 2);
  TuningProblem problem{&wl, Objective::kExecTime, &pool, &comps, false, {}};
  Collector col(problem, 20);
  for (const std::size_t idx : {0, 3, 4, 10, 59}) col.measure(idx);

  ceal::Rng rng(7);
  std::vector<double> scores(pool.size());
  for (double& s : scores) {
    s = static_cast<double>(rng.uniform_u64(4));
  }
  for (const std::size_t count : {std::size_t{1}, std::size_t{8},
                                  pool.size()}) {
    // Reference: full stable argsort, then drop measured indices.
    std::vector<std::size_t> expected;
    for (const std::size_t idx : ceal::argsort(scores)) {
      if (!col.is_measured(idx)) expected.push_back(idx);
      if (expected.size() == count) break;
    }
    EXPECT_EQ(top_unmeasured(scores, col, count), expected)
        << "count " << count;
  }
}

}  // namespace
}  // namespace ceal::tuner
