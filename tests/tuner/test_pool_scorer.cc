// Streaming pool scoring (tuner/pool_scorer.h): chunked featurization
// must reproduce the monolithic matrices row for row at any thread
// count and chunk size (including chunk sizes that do not divide the
// pool), streaming scores must be bitwise equal to cached scores, and a
// CEAL session that opts into pool_chunk_rows must return the identical
// TuneResult.
#include "tuner/pool_scorer.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/parallel.h"
#include "core/rng.h"
#include "sim/workloads.h"
#include "tuner/ceal.h"
#include "tuner/low_fidelity.h"
#include "tuner/measured_pool.h"
#include "tuner/pool_features.h"
#include "tuner/surrogate.h"

namespace ceal::tuner {
namespace {

class PoolScorerTest : public ::testing::Test {
 protected:
  PoolScorerTest()
      : wl_(sim::make_lv()),
        pool_(measure_pool(wl_.workflow, 300, 21)),
        comps_(measure_components(wl_.workflow, 100, 22)) {}

  static void TearDownTestSuite() {
    ceal::set_global_thread_pool_threads(0);
  }

  Surrogate fitted_surrogate() const {
    Surrogate surrogate;
    ceal::Rng rng(5);
    const std::span<const config::Configuration> train(pool_.configs.data(),
                                                       40);
    const std::span<const double> targets(
        pool_.measured(Objective::kExecTime).data(), 40);
    surrogate.fit(wl_.workflow.joint_space(), train, targets, rng);
    return surrogate;
  }

  LowFidelityModel low_fidelity() const {
    std::vector<std::vector<std::size_t>> indices(comps_.size());
    for (std::size_t j = 0; j < comps_.size(); ++j) {
      for (std::size_t s = 0; s < comps_[j].size(); ++s) {
        indices[j].push_back(s);
      }
    }
    ceal::Rng rng(9);
    auto components = std::make_shared<const ComponentModelSet>(
        wl_.workflow, Objective::kExecTime, comps_, indices, rng);
    return LowFidelityModel(wl_.workflow, Objective::kExecTime, components);
  }

  sim::Workload wl_;
  MeasuredPool pool_;
  std::vector<ComponentSamples> comps_;
};

TEST_F(PoolScorerTest, ChunkedFeaturizationMatchesMonolithicRows) {
  const PoolFeatures whole = featurize_pool(wl_.workflow, pool_.configs);
  // Chunk sizes that divide the pool, that do not (300 = 7*42 + 6), and
  // that exceed it — each at 1 and 4 workers.
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    ceal::set_global_thread_pool_threads(threads);
    for (const std::size_t chunk : {std::size_t{1}, std::size_t{7},
                                    std::size_t{50}, std::size_t{299},
                                    std::size_t{300}, std::size_t{1000}}) {
      std::size_t rows_seen = 0;
      featurize_pool_chunked(
          wl_.workflow, pool_.configs, chunk,
          [&](std::size_t first, const PoolFeatures& block) {
            ASSERT_EQ(first, rows_seen);
            ASSERT_LE(block.size(), chunk);
            ASSERT_EQ(block.components.size(), whole.components.size());
            for (std::size_t r = 0; r < block.size(); ++r) {
              const auto want = whole.joint.row(first + r);
              const auto got = block.joint.row(r);
              ASSERT_EQ(want.size(), got.size());
              for (std::size_t k = 0; k < got.size(); ++k) {
                ASSERT_EQ(want[k], got[k]) << "chunk " << chunk;
              }
              for (std::size_t j = 0; j < block.components.size(); ++j) {
                const auto cwant = whole.components[j].row(first + r);
                const auto cgot = block.components[j].row(r);
                ASSERT_EQ(cwant.size(), cgot.size());
                for (std::size_t k = 0; k < cgot.size(); ++k) {
                  ASSERT_EQ(cwant[k], cgot[k]);
                }
              }
            }
            rows_seen += block.size();
          });
      ASSERT_EQ(rows_seen, pool_.configs.size());
    }
  }
}

TEST_F(PoolScorerTest, StreamingScoresBitwiseEqualCached) {
  const Surrogate surrogate = fitted_surrogate();
  const LowFidelityModel model = low_fidelity();

  const PoolScorer cached(wl_.workflow, pool_.configs, 0, nullptr);
  ASSERT_FALSE(cached.streaming());
  const auto surr_cached = cached.surrogate_scores(surrogate);
  const auto low_cached = cached.low_fidelity_scores(model);

  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    ceal::set_global_thread_pool_threads(threads);
    for (const std::size_t chunk : {std::size_t{64}, std::size_t{299}}) {
      const PoolScorer streaming(wl_.workflow, pool_.configs, chunk,
                                 nullptr);
      ASSERT_TRUE(streaming.streaming());
      const auto surr = streaming.surrogate_scores(surrogate);
      const auto low = streaming.low_fidelity_scores(model);
      ASSERT_EQ(surr.size(), surr_cached.size());
      ASSERT_EQ(low.size(), low_cached.size());
      for (std::size_t i = 0; i < surr.size(); ++i) {
        ASSERT_EQ(surr[i], surr_cached[i]) << "chunk " << chunk;
        ASSERT_EQ(low[i], low_cached[i]) << "chunk " << chunk;
      }
    }
  }
}

TEST_F(PoolScorerTest, JointRowAgreesBetweenModes) {
  const PoolScorer cached(wl_.workflow.joint_space(), pool_.configs, 0,
                          nullptr);
  const PoolScorer streaming(wl_.workflow.joint_space(), pool_.configs, 32,
                             nullptr);
  for (const std::size_t i : {std::size_t{0}, std::size_t{150},
                              pool_.configs.size() - 1}) {
    const auto want = cached.joint_row(i);
    const auto got = streaming.joint_row(i);
    ASSERT_EQ(want.size(), got.size());
    for (std::size_t k = 0; k < want.size(); ++k) {
      ASSERT_EQ(want[k], got[k]);
    }
  }
}

TEST_F(PoolScorerTest, CealWithChunkedPoolReturnsIdenticalResult) {
  TuningProblem problem{&wl_, Objective::kExecTime, &pool_, &comps_, true,
                        {}};
  Ceal ceal;
  ceal::Rng rng_cached(31);
  const TuneResult cached = ceal.tune(problem, 25, rng_cached);

  problem.pool_chunk_rows = 77;  // does not divide the 300-entry pool
  ceal::Rng rng_chunked(31);
  const TuneResult chunked = ceal.tune(problem, 25, rng_chunked);

  ASSERT_EQ(cached.best_predicted_index, chunked.best_predicted_index);
  ASSERT_EQ(cached.best_measured_index, chunked.best_measured_index);
  ASSERT_EQ(cached.measured_indices, chunked.measured_indices);
  ASSERT_EQ(cached.model_scores.size(), chunked.model_scores.size());
  for (std::size_t i = 0; i < cached.model_scores.size(); ++i) {
    ASSERT_EQ(cached.model_scores[i], chunked.model_scores[i]);
  }
}

}  // namespace
}  // namespace ceal::tuner
