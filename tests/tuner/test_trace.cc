// Observability contract of the tuning loop (docs/OBSERVABILITY.md):
// traces are deterministic modulo the `timing` sub-object, attaching
// telemetry never changes tuning results, and the emitted events agree
// with the TuneResult ledger.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/json.h"
#include "core/telemetry.h"
#include "core/thread_pool.h"
#include "sim/workloads.h"
#include "tuner/active_learning.h"
#include "tuner/ceal.h"
#include "tuner/evaluation.h"
#include "tuner/random_search.h"

namespace ceal::tuner {
namespace {

/// Keeps each event's serialised JSON line in memory.
class RecordingSink final : public telemetry::TraceSink {
 public:
  void write(const telemetry::TraceEvent& event) override {
    lines.push_back(event.to_json().dump());
  }
  std::vector<std::string> lines;
};

std::vector<std::string> strip_timing(const std::vector<std::string>& lines) {
  std::vector<std::string> out;
  out.reserve(lines.size());
  for (const auto& line : lines) {
    json::Value v = json::Value::parse(line);
    v.remove_recursive("timing");
    out.push_back(v.dump());
  }
  return out;
}

class TraceTest : public ::testing::Test {
 protected:
  TraceTest()
      : wl_(sim::make_lv()),
        pool_(measure_pool(wl_.workflow, 400, 21)),
        comps_(measure_components(wl_.workflow, 120, 22)) {}

  TuningProblem problem(bool history,
                        Objective obj = Objective::kExecTime) {
    return TuningProblem{&wl_, obj, &pool_, &comps_, history, {}};
  }

  /// Runs one seeded CEAL session with a recording sink attached.
  std::vector<std::string> traced_ceal_run(std::uint64_t seed,
                                           TuneResult* result = nullptr) {
    RecordingSink sink;
    telemetry::Telemetry tel(&sink);
    auto prob = problem(true);
    prob.telemetry = &tel;
    Ceal ceal(CealParams::with_history());
    ceal::Rng rng(seed);
    const TuneResult r = ceal.tune(prob, 25, rng);
    if (result != nullptr) *result = r;
    return sink.lines;
  }

  sim::Workload wl_;
  MeasuredPool pool_;
  std::vector<ComponentSamples> comps_;
};

TEST_F(TraceTest, SeededRunsProduceByteIdenticalTracesModuloTiming) {
  const auto a = strip_timing(traced_ceal_run(9));
  const auto b = strip_timing(traced_ceal_run(9));
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i], b[i]) << "trace diverged at event " << i;
  }
}

TEST_F(TraceTest, DifferentSeedsProduceDifferentTraces) {
  const auto a = strip_timing(traced_ceal_run(9));
  const auto b = strip_timing(traced_ceal_run(10));
  EXPECT_NE(a, b);
}

TEST_F(TraceTest, AttachingTelemetryDoesNotChangeTheResult) {
  auto with_tel = problem(true);
  RecordingSink sink;
  telemetry::Telemetry tel(&sink);
  with_tel.telemetry = &tel;
  auto without_tel = problem(true);

  Ceal ceal(CealParams::with_history());
  ceal::Rng r1(11), r2(11);
  const TuneResult a = ceal.tune(with_tel, 25, r1);
  const TuneResult b = ceal.tune(without_tel, 25, r2);

  EXPECT_EQ(a.best_predicted_index, b.best_predicted_index);
  EXPECT_EQ(a.best_measured_index, b.best_measured_index);
  EXPECT_EQ(a.measured_indices, b.measured_indices);
  EXPECT_EQ(a.model_scores, b.model_scores);
  EXPECT_EQ(a.runs_used, b.runs_used);
  EXPECT_FALSE(sink.lines.empty());
}

TEST_F(TraceTest, SwitchEventMatchesPerIterationModelLabels) {
  const auto lines = traced_ceal_run(12);
  std::int64_t switch_iteration = -1;
  std::vector<std::pair<std::int64_t, std::string>> iteration_models;
  std::vector<std::int64_t> switched_flags;
  for (const auto& line : lines) {
    const json::Value v = json::Value::parse(line);
    const std::string name = v.at("event").as_string();
    if (name == "ceal.switch") {
      EXPECT_EQ(switch_iteration, -1) << "CEAL switched more than once";
      switch_iteration = v.at("iteration").as_int();
    }
    if (name == "ceal.iteration") {
      iteration_models.emplace_back(v.at("iteration").as_int(),
                                    v.at("model").as_string());
      if (v.at("switched").as_bool()) {
        switched_flags.push_back(v.at("iteration").as_int());
      }
    }
  }
  ASSERT_FALSE(iteration_models.empty());
  if (switch_iteration < 0) {
    // No switch: every iteration must report the low-fidelity model.
    for (const auto& [iter, model] : iteration_models) {
      EXPECT_EQ(model, "low") << "iteration " << iter;
    }
    EXPECT_TRUE(switched_flags.empty());
  } else {
    // The switch iteration is exactly the one flagged switched=true, and
    // the model label flips from "low" to "high" at that iteration.
    ASSERT_EQ(switched_flags.size(), 1u);
    EXPECT_EQ(switched_flags[0], switch_iteration);
    for (const auto& [iter, model] : iteration_models) {
      EXPECT_EQ(model, iter < switch_iteration ? "low" : "high")
          << "iteration " << iter;
    }
  }
}

TEST_F(TraceTest, TuneFinishAgreesWithTheResultLedger) {
  TuneResult result;
  const auto lines = traced_ceal_run(13, &result);
  // The ledger event is no longer last on the wire: the causal span
  // layer closes its enclosing tuner.step after it, so the trace must
  // end tune.finish -> span.end... (and nothing else).
  std::size_t finish_at = lines.size();
  for (std::size_t i = 0; i < lines.size(); ++i) {
    if (json::Value::parse(lines[i]).at("event").as_string() ==
        "tune.finish") {
      finish_at = i;
    }
  }
  ASSERT_LT(finish_at, lines.size());
  for (std::size_t i = finish_at + 1; i < lines.size(); ++i) {
    EXPECT_EQ(json::Value::parse(lines[i]).at("event").as_string(),
              "span.end")
        << "event " << i << " after tune.finish";
  }
  const json::Value finish = json::Value::parse(lines[finish_at]);
  EXPECT_EQ(static_cast<std::size_t>(finish.at("runs_used").as_int()),
            result.runs_used);
  EXPECT_EQ(static_cast<std::size_t>(finish.at("measured").as_int()),
            result.measured_indices.size());
  EXPECT_EQ(static_cast<std::size_t>(
                finish.at("best_predicted_index").as_int()),
            result.best_predicted_index);
}

TEST_F(TraceTest, FaultRunFailureCountsMatchTheResult) {
  RecordingSink sink;
  telemetry::Telemetry tel(&sink);
  auto prob = problem(true);
  prob.telemetry = &tel;
  prob.measurement.faults.fail_prob = 0.3;
  prob.measurement.max_attempts = 2;

  RandomSearch rs;
  ceal::Rng rng(14);
  const TuneResult result = rs.tune(prob, 30, rng);

  std::size_t failed_events = 0, ok_events = 0;
  for (const auto& line : sink.lines) {
    const json::Value v = json::Value::parse(line);
    if (v.at("event").as_string() != "measure") continue;
    const std::string status = v.at("status").as_string();
    if (status == "failed") ++failed_events;
    if (status == "ok") ++ok_events;
  }
  EXPECT_EQ(failed_events + tel.counter("measure.censored"),
            result.failed_runs);
  EXPECT_EQ(tel.counter("measure.failed"), failed_events);
  EXPECT_EQ(tel.counter("measure.ok"), ok_events);
  EXPECT_GT(failed_events, 0u);
}

// The deterministic parallel-tracing pattern (telemetry.h header):
// pooled replications each trace into a child Telemetry whose buffer is
// merged in replication order, so the pooled trace must be
// byte-identical to the serial one once `timing` is stripped — and the
// evaluation metrics must agree exactly.
TEST_F(TraceTest, PooledEvaluateMatchesSerialTraceAndSummary) {
  constexpr std::size_t kBudget = 20;
  constexpr std::size_t kReps = 4;
  constexpr std::uint64_t kSeed = 17;
  Ceal ceal(CealParams::with_history());

  RecordingSink serial_sink;
  telemetry::Telemetry serial_tel(&serial_sink);
  auto serial_prob = problem(true);
  serial_prob.telemetry = &serial_tel;
  const EvalSummary serial =
      evaluate(serial_prob, ceal, kBudget, kReps, kSeed);

  RecordingSink pooled_sink;
  telemetry::Telemetry pooled_tel(&pooled_sink);
  auto pooled_prob = problem(true);
  pooled_prob.telemetry = &pooled_tel;
  ceal::ThreadPool eval_pool(4);
  const EvalSummary pooled =
      evaluate(pooled_prob, ceal, kBudget, kReps, kSeed, &eval_pool);

  const auto serial_lines = strip_timing(serial_sink.lines);
  const auto pooled_lines = strip_timing(pooled_sink.lines);
  ASSERT_EQ(serial_lines.size(), pooled_lines.size());
  for (std::size_t i = 0; i < serial_lines.size(); ++i) {
    EXPECT_EQ(serial_lines[i], pooled_lines[i])
        << "pooled trace diverged at event " << i;
  }

  EXPECT_EQ(serial.replications, pooled.replications);
  EXPECT_EQ(serial.mean_norm_perf, pooled.mean_norm_perf);
  EXPECT_EQ(serial.median_norm_perf, pooled.median_norm_perf);
  EXPECT_EQ(serial.mean_recall, pooled.mean_recall);
  EXPECT_EQ(serial.mean_mdape_all, pooled.mean_mdape_all);
  EXPECT_EQ(serial.mean_runs_used, pooled.mean_runs_used);
  EXPECT_EQ(serial.mean_improvement, pooled.mean_improvement);

  // The merged counters match the serial accumulators exactly.
  EXPECT_EQ(serial_tel.counters(), pooled_tel.counters());
  EXPECT_EQ(serial_tel.counter("evaluate.replications"), kReps);
}

TEST_F(TraceTest, SimpleTunersEmitIterationEvents) {
  RecordingSink sink;
  telemetry::Telemetry tel(&sink);
  auto prob = problem(true);
  prob.telemetry = &tel;
  ActiveLearning al;
  ceal::Rng rng(15);
  al.tune(prob, 20, rng);

  std::size_t iterations = 0;
  for (const auto& line : sink.lines) {
    const json::Value v = json::Value::parse(line);
    if (v.at("event").as_string() == "al.iteration") ++iterations;
  }
  EXPECT_GT(iterations, 0u);
  EXPECT_EQ(tel.counter("tuner.iterations"), iterations);
  EXPECT_EQ(json::Value::parse(sink.lines.front()).at("event").as_string(),
            "tune.start");
}

}  // namespace
}  // namespace ceal::tuner
