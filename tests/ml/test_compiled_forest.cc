// CompiledForest: the flattened predictor must be bitwise identical to
// the per-tree walk — single rows, batches, any thread-pool width — and
// the compile_predictor flag must thread through fit(), from_parts(),
// and the serialized v2 format.
#include "ml/compiled_forest.h"

#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "core/parallel.h"
#include "core/rng.h"
#include "core/telemetry.h"
#include "ml/gbt.h"
#include "ml/serialize.h"

namespace ceal::ml {
namespace {

Dataset grid_like(std::size_t n, ceal::Rng& rng) {
  Dataset d(4);
  for (std::size_t i = 0; i < n; ++i) {
    const double a = static_cast<double>(rng.uniform_int(1, 32));
    const double b = static_cast<double>(rng.uniform_int(0, 7));
    const double c = rng.uniform(0.0, 10.0);
    const double e = rng.uniform(-1.0, 1.0);
    d.add(std::vector<double>{a, b, c, e},
          100.0 / a + 5.0 * b + c * c + rng.normal(0.0, 0.3));
  }
  return d;
}

FeatureMatrix matrix_of(const Dataset& d) {
  FeatureMatrix m(d.n_features(), d.size());
  for (std::size_t i = 0; i < d.size(); ++i) m.set_row(i, d.row(i));
  return m;
}

TEST(CompiledForest, BitwiseEqualToTreeWalk) {
  ceal::Rng rng(31);
  const Dataset train = grid_like(200, rng);
  const Dataset pool = grid_like(400, rng);

  GradientBoostedTrees model(GradientBoostedTrees::surrogate_defaults());
  ceal::Rng fit_rng(8);
  model.fit(train, fit_rng);
  ASSERT_EQ(model.compiled(), nullptr);  // flag off: no compilation

  const CompiledForest forest = CompiledForest::compile(model);
  EXPECT_EQ(forest.tree_count(), model.tree_count());
  EXPECT_GT(forest.node_count(), forest.tree_count());

  const auto walk = model.predict_all(pool);
  const auto flat = forest.predict_dataset(pool);
  ASSERT_EQ(walk.size(), flat.size());
  for (std::size_t i = 0; i < pool.size(); ++i) {
    ASSERT_EQ(walk[i], flat[i]) << "row " << i;
    ASSERT_EQ(model.predict(pool.row(i)), forest.predict(pool.row(i)));
  }

  const FeatureMatrix m = matrix_of(pool);
  const auto batched = forest.predict_matrix(m);
  for (std::size_t i = 0; i < pool.size(); ++i) {
    ASSERT_EQ(walk[i], batched[i]);
  }
}

TEST(CompiledForest, FitPathCompilesAndRoutesPredictions) {
  ceal::Rng rng(5);
  const Dataset train = grid_like(150, rng);
  const Dataset pool = grid_like(300, rng);

  GbtParams plain_params = GradientBoostedTrees::surrogate_defaults();
  GbtParams compiled_params = plain_params;
  compiled_params.compile_predictor = true;

  GradientBoostedTrees plain(plain_params), compiled(compiled_params);
  ceal::Rng r1(3), r2(3);
  plain.fit(train, r1);
  compiled.fit(train, r2);
  ASSERT_NE(compiled.compiled(), nullptr);

  const auto a = plain.predict_all(pool);
  const auto b = compiled.predict_all(pool);
  for (std::size_t i = 0; i < pool.size(); ++i) {
    ASSERT_EQ(a[i], b[i]) << "row " << i;
    ASSERT_EQ(plain.predict(pool.row(i)), compiled.predict(pool.row(i)));
  }

  // Batch inference over the compiled path reports its own telemetry.
  telemetry::Telemetry tel;
  compiled.set_telemetry(&tel);
  const FeatureMatrix m = matrix_of(pool);
  const auto c = compiled.predict_matrix(m);
  for (std::size_t i = 0; i < pool.size(); ++i) ASSERT_EQ(a[i], c[i]);
  EXPECT_EQ(tel.counter("compiled.predict.rows"), pool.size());
  EXPECT_EQ(tel.counter("gbt.predict.rows"), pool.size());
}

TEST(CompiledForest, ThreadCountDeterminism) {
  ceal::Rng rng(77);
  const Dataset train = grid_like(150, rng);
  const Dataset pool = grid_like(2000, rng);  // large enough to fan out

  GbtParams p = GradientBoostedTrees::surrogate_defaults();
  p.compile_predictor = true;
  GradientBoostedTrees model(p);
  ceal::Rng fit_rng(6);
  model.fit(train, fit_rng);

  ceal::set_global_thread_pool_threads(1);
  const auto serial = model.predict_all(pool);
  ceal::set_global_thread_pool_threads(4);
  const auto pooled = model.predict_all(pool);
  ceal::set_global_thread_pool_threads(0);
  for (std::size_t i = 0; i < pool.size(); ++i) {
    ASSERT_EQ(serial[i], pooled[i]) << "row " << i;
  }
}

TEST(CompiledForest, SerializeRoundTripKeepsCompiledFlag) {
  ceal::Rng rng(13);
  const Dataset train = grid_like(120, rng);
  GbtParams p = GradientBoostedTrees::surrogate_defaults();
  p.compile_predictor = true;
  p.tree.method = TreeMethod::kQuantized;
  GradientBoostedTrees model(p);
  ceal::Rng fit_rng(2);
  model.fit(train, fit_rng);

  std::stringstream ss;
  save_gbt(model, ss, train.n_features());
  EXPECT_NE(ss.str().find("gbt v2"), std::string::npos);
  EXPECT_NE(ss.str().find("params quantized"), std::string::npos);

  const LoadedGbt loaded = load_gbt(ss);
  EXPECT_EQ(loaded.n_features, train.n_features());
  EXPECT_EQ(loaded.model.params().tree.method, TreeMethod::kQuantized);
  EXPECT_TRUE(loaded.model.params().compile_predictor);
  ASSERT_NE(loaded.model.compiled(), nullptr);
  for (std::size_t i = 0; i < train.size(); ++i) {
    ASSERT_EQ(model.predict(train.row(i)),
              loaded.model.predict(train.row(i)));
  }
}

TEST(CompiledForest, DefaultModelsStillSerializeAsV1) {
  ceal::Rng rng(14);
  const Dataset train = grid_like(60, rng);
  GradientBoostedTrees model(GradientBoostedTrees::surrogate_defaults());
  ceal::Rng fit_rng(1);
  model.fit(train, fit_rng);
  std::stringstream ss;
  save_gbt(model, ss, train.n_features());
  EXPECT_NE(ss.str().find("gbt v1"), std::string::npos);
  EXPECT_EQ(ss.str().find("params "), std::string::npos);
}

}  // namespace
}  // namespace ceal::ml
