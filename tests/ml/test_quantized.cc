// Quantized trainer (TreeMethod::kQuantized): equivalence with the kHist
// trainer within binning tolerance (both search the same ml::quantile_bins
// candidate set when max_bins <= 256; histogram subtraction introduces at
// most last-ulp float error), bitwise thread-count determinism, and the
// shared-cache fast path of the ensemble fit.
#include "ml/quantized.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "core/error.h"
#include "core/parallel.h"
#include "core/rng.h"
#include "core/stats.h"
#include "core/telemetry.h"
#include "ml/gbt.h"
#include "ml/metrics.h"
#include "ml/tree.h"

namespace ceal::ml {
namespace {

/// Surrogate-shaped synthetic task: features on tuning-parameter-like
/// grids, target with multiplicative structure plus noise.
Dataset tuning_like(std::size_t n, ceal::Rng& rng) {
  Dataset d(5);
  for (std::size_t i = 0; i < n; ++i) {
    const double procs = static_cast<double>(rng.uniform_int(1, 64));
    const double ppn = static_cast<double>(rng.uniform_int(1, 8));
    const double freq = static_cast<double>(rng.uniform_int(1, 10));
    const double block = static_cast<double>(rng.uniform_int(16, 256));
    const double aux = rng.uniform(0.0, 1.0);
    const double y = 800.0 / procs + 12.0 * freq + 0.05 * block +
                     3.0 * ppn + aux + rng.normal(0.0, 0.5);
    d.add(std::vector<double>{procs, ppn, freq, block, aux}, y);
  }
  return d;
}

GbtParams method_params(TreeMethod method) {
  GbtParams p = GradientBoostedTrees::surrogate_defaults();
  p.tree.method = method;
  return p;
}

TEST(QuantizedMatrix, BinsMatchHistCandidateSet) {
  ceal::Rng rng(5);
  Dataset d(3);
  for (std::size_t i = 0; i < 400; ++i) {
    d.add(std::vector<double>{rng.uniform(-2.0, 2.0),
                              static_cast<double>(rng.uniform_int(0, 9)),
                              rng.uniform(0.0, 100.0)},
          0.0);
  }
  const QuantizedMatrix qm(d, 64);
  for (std::size_t j = 0; j < d.n_features(); ++j) {
    // Recompute the reference cuts straight from ml::quantile_bins.
    std::vector<double> vals(d.size());
    for (std::size_t k = 0; k < d.size(); ++k) vals[k] = d.feature(k, j);
    std::sort(vals.begin(), vals.end());
    const FeatureQuantiles fq = quantile_bins(vals, 64);
    ASSERT_EQ(qm.bin_count(j), fq.bin_max.size());
    for (std::size_t b = 0; b + 1 < fq.bin_max.size(); ++b) {
      EXPECT_EQ(qm.split_value(j, b), fq.split_value[b]);
    }
    // Sandwich property: partitioning by bin index equals partitioning
    // by value <= split_value[b].
    const std::uint8_t* col = qm.column(j);
    for (std::size_t k = 0; k < d.size(); ++k) {
      const double v = d.feature(k, j);
      for (std::size_t b = 0; b + 1 < fq.bin_max.size(); ++b) {
        EXPECT_EQ(col[k] <= b, v <= fq.split_value[b])
            << "feature " << j << " row " << k << " bin " << b;
      }
    }
  }
}

TEST(QuantizedMatrix, CapsBinsAt256) {
  ceal::Rng rng(17);
  Dataset d(1);
  for (std::size_t i = 0; i < 2000; ++i) {
    d.add(std::vector<double>{rng.uniform(0.0, 1.0)}, 0.0);
  }
  const QuantizedMatrix qm(d, 4096);  // uint8 columns cap at 256 bins
  EXPECT_LE(qm.bin_count(0), 256u);
  EXPECT_GE(qm.bin_count(0), 200u);
}

TEST(TreeQuantized, MatchesHistWithinBinningTolerance) {
  // Same candidate thresholds (shared quantile_bins) + same gain/tie
  // rules means the two trainers grow the same trees up to the last-ulp
  // differences histogram subtraction introduces in g sums.
  ceal::Rng rng(42);
  const Dataset train = tuning_like(300, rng);
  const Dataset pool = tuning_like(500, rng);

  GradientBoostedTrees hist(method_params(TreeMethod::kHist));
  GradientBoostedTrees quant(method_params(TreeMethod::kQuantized));
  ceal::Rng r1(7), r2(7);
  hist.fit(train, r1);
  quant.fit(train, r2);

  const auto hist_pred = hist.predict_all(pool);
  const auto quant_pred = quant.predict_all(pool);
  for (std::size_t i = 0; i < pool.size(); ++i) {
    const double scale = std::max(1.0, std::abs(hist_pred[i]));
    EXPECT_NEAR(hist_pred[i], quant_pred[i], 1e-6 * scale) << "row " << i;
  }

  // And the ranking quality the tuners consume must be indistinguishable
  // from kHist (the kHist suite separately pins hist against exact).
  const auto truth = pool.targets();
  EXPECT_EQ(recall_score_percent(10, hist_pred, truth),
            recall_score_percent(10, quant_pred, truth));
  EXPECT_LE(std::abs(ceal::mdape_percent(truth, hist_pred) -
                     ceal::mdape_percent(truth, quant_pred)),
            0.1);
}

TEST(TreeQuantized, SubsampleAndColsamplePathsStayConsistent) {
  ceal::Rng rng(9);
  const Dataset train = tuning_like(250, rng);

  GbtParams p = method_params(TreeMethod::kQuantized);
  p.subsample = 0.7;       // exercises the untrained-row NaN path
  p.tree.colsample = 0.6;  // exercises the sampled feature pool

  GradientBoostedTrees model(p);
  ceal::Rng fit_rng(3);
  model.fit(train, fit_rng);
  const auto batched = model.predict_all(train);
  for (std::size_t i = 0; i < train.size(); ++i) {
    ASSERT_EQ(batched[i], model.predict(train.row(i)));
    ASSERT_TRUE(std::isfinite(batched[i]));
  }
  // The fitted model explains the training data far better than the
  // constant baseline.
  EXPECT_LT(ceal::rmse(train.targets(), batched),
            0.5 * ceal::stddev(train.targets()));
}

TEST(TreeQuantized, LeafValuesMatchPredictions) {
  ceal::Rng rng(21);
  const Dataset train = tuning_like(120, rng);
  std::vector<double> g(train.size()), h(train.size(), 1.0);
  std::vector<std::size_t> rows(train.size());
  for (std::size_t i = 0; i < train.size(); ++i) {
    g[i] = -train.target(i);
    rows[i] = i;
  }
  TreeParams p;
  p.method = TreeMethod::kQuantized;
  p.max_depth = 4;
  RegressionTree tree(p);
  ceal::Rng fit_rng(2);
  std::vector<double> leaf_values(train.size(),
                                  std::numeric_limits<double>::quiet_NaN());
  tree.fit_gradients(train, rows, g, h, fit_rng, &leaf_values);
  for (std::size_t i = 0; i < train.size(); ++i) {
    ASSERT_EQ(leaf_values[i], tree.predict(train.row(i))) << "row " << i;
  }
}

TEST(TreeQuantized, NonUnitHessiansUseTheGeneralPath) {
  // h != 1 disables the count-as-hessian shortcut; the grown tree must
  // still satisfy min_child_weight against the true hessian sums.
  ceal::Rng rng(33);
  const Dataset train = tuning_like(150, rng);
  std::vector<double> g(train.size()), h(train.size());
  std::vector<std::size_t> rows(train.size());
  for (std::size_t i = 0; i < train.size(); ++i) {
    g[i] = -train.target(i);
    h[i] = 0.5 + 0.01 * static_cast<double>(i % 7);
    rows[i] = i;
  }
  TreeParams p;
  p.method = TreeMethod::kQuantized;
  p.min_child_weight = 5.0;
  RegressionTree tree(p);
  ceal::Rng fit_rng(4);
  tree.fit_gradients(train, rows, g, h, fit_rng);
  EXPECT_GT(tree.leaf_count(), 1u);
  for (std::size_t i = 0; i < train.size(); ++i) {
    ASSERT_TRUE(std::isfinite(tree.predict(train.row(i))));
  }
}

TEST(TreeQuantized, SharedCacheMatchesTransientAndCountsHits) {
  ceal::Rng rng(12);
  const Dataset train = tuning_like(100, rng);
  std::vector<double> g(train.size()), h(train.size(), 1.0);
  std::vector<std::size_t> rows(train.size());
  for (std::size_t i = 0; i < train.size(); ++i) {
    g[i] = -train.target(i);
    rows[i] = i;
  }
  TreeParams p;
  p.method = TreeMethod::kQuantized;

  const QuantizedMatrix cache(train, p.max_bins);
  telemetry::Telemetry tel;
  RegressionTree cached(p), transient(p);
  ceal::Rng r1(6), r2(6);
  cached.fit_gradients(train, rows, g, h, r1, nullptr, nullptr, &tel,
                       &cache);
  transient.fit_gradients(train, rows, g, h, r2, nullptr, nullptr, &tel);
  EXPECT_EQ(tel.counter("tree.quantized_cache.hit"), 1u);
  EXPECT_EQ(tel.counter("tree.quantized_cache.miss"), 1u);
  for (std::size_t i = 0; i < train.size(); ++i) {
    ASSERT_EQ(cached.predict(train.row(i)), transient.predict(train.row(i)));
  }
}

TEST(TreeQuantized, ConstantFeaturesAndTinyDataStayValid) {
  Dataset d(2);
  d.add(std::vector<double>{1.0, 5.0}, 2.0);
  d.add(std::vector<double>{1.0, 5.0}, 4.0);
  GbtParams p = method_params(TreeMethod::kQuantized);
  p.n_rounds = 5;
  GradientBoostedTrees model(p);
  ceal::Rng rng(2);
  model.fit(d, rng);  // no split possible anywhere: all-leaf trees
  EXPECT_NEAR(model.predict(d.row(0)), 3.0, 1.0);
}

TEST(TreeQuantized, ThreadCountDeterminism) {
  ceal::Rng data_rng(123);
  const Dataset train = tuning_like(300, data_rng);
  const Dataset pool = tuning_like(500, data_rng);

  GbtParams params = method_params(TreeMethod::kQuantized);
  params.subsample = 0.8;

  std::vector<std::vector<double>> results;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    ceal::set_global_thread_pool_threads(threads);
    for (int repeat = 0; repeat < 2; ++repeat) {
      GradientBoostedTrees model(params);
      ceal::Rng fit_rng(99);
      model.fit(train, fit_rng);
      std::vector<double> batched = model.predict_all(pool);
      for (std::size_t i = 0; i < pool.size(); ++i) {
        ASSERT_EQ(batched[i], model.predict(pool.row(i)));
      }
      results.push_back(std::move(batched));
    }
  }
  ceal::set_global_thread_pool_threads(0);
  for (std::size_t r = 1; r < results.size(); ++r) {
    for (std::size_t i = 0; i < results[0].size(); ++i) {
      ASSERT_EQ(results[0][i], results[r][i])
          << "row " << i << " differs between run 0 and run " << r;
    }
  }
}

}  // namespace
}  // namespace ceal::ml
