// Histogram trainer (TreeMethod::kHist): equivalence with the exact
// greedy trainer on ranking quality, and bitwise determinism of the
// threaded paths for any worker count.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/error.h"
#include "core/parallel.h"
#include "core/rng.h"
#include "core/stats.h"
#include "ml/gbt.h"
#include "ml/metrics.h"
#include "ml/tree.h"

namespace ceal::ml {
namespace {

/// Surrogate-shaped synthetic task: features on tuning-parameter-like
/// grids, target with multiplicative structure plus noise.
Dataset tuning_like(std::size_t n, ceal::Rng& rng) {
  Dataset d(5);
  for (std::size_t i = 0; i < n; ++i) {
    const double procs = static_cast<double>(rng.uniform_int(1, 64));
    const double ppn = static_cast<double>(rng.uniform_int(1, 8));
    const double freq = static_cast<double>(rng.uniform_int(1, 10));
    const double block = static_cast<double>(rng.uniform_int(16, 256));
    const double aux = rng.uniform(0.0, 1.0);
    const double y = 800.0 / procs + 12.0 * freq + 0.05 * block +
                     3.0 * ppn + aux + rng.normal(0.0, 0.5);
    d.add(std::vector<double>{procs, ppn, freq, block, aux}, y);
  }
  return d;
}

GbtParams method_params(TreeMethod method) {
  GbtParams p = GradientBoostedTrees::surrogate_defaults();
  p.tree.method = method;
  return p;
}

TEST(TreeHist, MatchesExactRecallAndMdapeOnFixture) {
  ceal::Rng rng(42);
  const Dataset train = tuning_like(200, rng);
  const Dataset pool = tuning_like(400, rng);

  GradientBoostedTrees exact(method_params(TreeMethod::kExact));
  GradientBoostedTrees hist(method_params(TreeMethod::kHist));
  ceal::Rng r1(7), r2(7);
  exact.fit(train, r1);
  hist.fit(train, r2);

  const auto exact_pred = exact.predict_all(pool);
  const auto hist_pred = hist.predict_all(pool);
  const auto truth = pool.targets();

  // Acceptance contract: the two trainers rank the pool almost
  // identically — top-10 recall against the ground truth within 5
  // percentage points (0.05), MdAPE within 2 points.
  const double exact_recall = recall_score_percent(10, exact_pred, truth);
  const double hist_recall = recall_score_percent(10, hist_pred, truth);
  EXPECT_LE(std::abs(exact_recall - hist_recall), 5.0);

  const double exact_mdape = ceal::mdape_percent(truth, exact_pred);
  const double hist_mdape = ceal::mdape_percent(truth, hist_pred);
  EXPECT_LE(std::abs(exact_mdape - hist_mdape), 2.0);
}

TEST(TreeHist, FewDistinctValuesReproducesExactSplits) {
  // With fewer distinct values than bins each value gets its own bin,
  // so kHist searches exactly the kExact candidate set and the fitted
  // ensembles should agree closely everywhere.
  ceal::Rng rng(3);
  Dataset d(2);
  for (std::size_t i = 0; i < 120; ++i) {
    const double a = static_cast<double>(rng.uniform_int(0, 7));
    const double b = static_cast<double>(rng.uniform_int(0, 3));
    d.add(std::vector<double>{a, b}, 3.0 * a - 2.0 * b + rng.normal(0.0, 0.1));
  }
  GradientBoostedTrees exact(method_params(TreeMethod::kExact));
  GradientBoostedTrees hist(method_params(TreeMethod::kHist));
  ceal::Rng r1(5), r2(5);
  exact.fit(d, r1);
  hist.fit(d, r2);
  for (std::size_t i = 0; i < d.size(); ++i) {
    EXPECT_NEAR(exact.predict(d.row(i)), hist.predict(d.row(i)), 1e-6);
  }
}

TEST(TreeHist, QuantileBinningHandlesManyDistinctValues) {
  ceal::Rng rng(11);
  Dataset d(3);
  for (std::size_t i = 0; i < 600; ++i) {
    const double x0 = rng.uniform(-3.0, 3.0);
    const double x1 = rng.uniform(0.0, 1000.0);
    const double x2 = rng.uniform(0.0, 1.0);
    d.add(std::vector<double>{x0, x1, x2}, x0 * x0 + 0.01 * x1 + x2);
  }
  GbtParams p = method_params(TreeMethod::kHist);
  p.tree.max_bins = 32;  // force real quantile compression (600 >> 32)
  GradientBoostedTrees model(p);
  ceal::Rng fit_rng(1);
  model.fit(d, fit_rng);
  const auto pred = model.predict_all(d);
  EXPECT_LT(ceal::rmse(d.targets(), pred), 1.0);
}

TEST(TreeHist, ConstantFeaturesAndTinyDataStayValid) {
  Dataset d(2);
  d.add(std::vector<double>{1.0, 5.0}, 2.0);
  d.add(std::vector<double>{1.0, 5.0}, 4.0);
  GbtParams p = method_params(TreeMethod::kHist);
  p.n_rounds = 5;
  GradientBoostedTrees model(p);
  ceal::Rng rng(2);
  model.fit(d, rng);  // no split possible anywhere: all-leaf trees
  EXPECT_NEAR(model.predict(d.row(0)), 3.0, 1.0);
}

TEST(TreeHist, MaxBinsValidated) {
  TreeParams p;
  p.max_bins = 1;
  EXPECT_THROW(RegressionTree{p}, ceal::PreconditionError);
  p.max_bins = 1 << 17;
  EXPECT_THROW(RegressionTree{p}, ceal::PreconditionError);
}

class ThreadCountDeterminism : public ::testing::TestWithParam<TreeMethod> {
 protected:
  static void TearDownTestSuite() {
    // Leave the shared pool at its default size for later suites.
    ceal::set_global_thread_pool_threads(0);
  }
};

TEST_P(ThreadCountDeterminism, FitAndBatchPredictAreBitwiseStable) {
  ceal::Rng data_rng(123);
  const Dataset train = tuning_like(300, data_rng);
  const Dataset pool = tuning_like(500, data_rng);

  GbtParams params = method_params(GetParam());
  params.subsample = 0.8;  // exercise the untrained-row prediction path

  // Two full runs per worker count; every run must produce bit-identical
  // predictions, both one-by-one and batched.
  std::vector<std::vector<double>> results;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    ceal::set_global_thread_pool_threads(threads);
    for (int repeat = 0; repeat < 2; ++repeat) {
      GradientBoostedTrees model(params);
      ceal::Rng fit_rng(99);
      model.fit(train, fit_rng);
      std::vector<double> batched = model.predict_all(pool);
      for (std::size_t i = 0; i < pool.size(); ++i) {
        ASSERT_EQ(batched[i], model.predict(pool.row(i)));
      }
      results.push_back(std::move(batched));
    }
  }
  for (std::size_t r = 1; r < results.size(); ++r) {
    for (std::size_t i = 0; i < results[0].size(); ++i) {
      ASSERT_EQ(results[0][i], results[r][i])
          << "row " << i << " differs between run 0 and run " << r;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(BothMethods, ThreadCountDeterminism,
                         ::testing::Values(TreeMethod::kExact,
                                           TreeMethod::kHist),
                         [](const auto& info) {
                           return info.param == TreeMethod::kExact ? "Exact"
                                                                   : "Hist";
                         });

}  // namespace
}  // namespace ceal::ml
