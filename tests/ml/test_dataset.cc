#include "ml/dataset.h"

#include <gtest/gtest.h>

#include "core/error.h"

namespace ceal::ml {
namespace {

TEST(Dataset, StartsEmpty) {
  const Dataset d(3);
  EXPECT_EQ(d.n_features(), 3u);
  EXPECT_EQ(d.size(), 0u);
  EXPECT_TRUE(d.empty());
}

TEST(Dataset, AddAndAccessRows) {
  Dataset d(2);
  d.add(std::vector<double>{1.0, 2.0}, 10.0);
  d.add(std::vector<double>{3.0, 4.0}, 20.0);
  EXPECT_EQ(d.size(), 2u);
  EXPECT_DOUBLE_EQ(d.feature(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(d.feature(1, 1), 4.0);
  EXPECT_DOUBLE_EQ(d.target(0), 10.0);
  EXPECT_DOUBLE_EQ(d.target(1), 20.0);
  const auto row = d.row(1);
  ASSERT_EQ(row.size(), 2u);
  EXPECT_DOUBLE_EQ(row[0], 3.0);
}

TEST(Dataset, AddRejectsWrongWidth) {
  Dataset d(2);
  EXPECT_THROW(d.add(std::vector<double>{1.0}, 0.0),
               ceal::PreconditionError);
}

TEST(Dataset, OutOfRangeAccessThrows) {
  Dataset d(1);
  d.add(std::vector<double>{1.0}, 1.0);
  EXPECT_THROW(d.row(1), ceal::PreconditionError);
  EXPECT_THROW(d.target(1), ceal::PreconditionError);
  EXPECT_THROW(d.feature(0, 1), ceal::PreconditionError);
}

TEST(Dataset, AppendConcatenates) {
  Dataset a(1), b(1);
  a.add(std::vector<double>{1.0}, 1.0);
  b.add(std::vector<double>{2.0}, 2.0);
  b.add(std::vector<double>{3.0}, 3.0);
  a.append(b);
  EXPECT_EQ(a.size(), 3u);
  EXPECT_DOUBLE_EQ(a.feature(2, 0), 3.0);
}

TEST(Dataset, AppendRejectsWidthMismatch) {
  Dataset a(1), b(2);
  EXPECT_THROW(a.append(b), ceal::PreconditionError);
}

TEST(Dataset, SubsetPicksAndDuplicates) {
  Dataset d(1);
  for (int i = 0; i < 5; ++i) {
    d.add(std::vector<double>{static_cast<double>(i)},
          static_cast<double>(i * 10));
  }
  const std::vector<std::size_t> idx{4, 0, 0};
  const Dataset s = d.subset(idx);
  ASSERT_EQ(s.size(), 3u);
  EXPECT_DOUBLE_EQ(s.target(0), 40.0);
  EXPECT_DOUBLE_EQ(s.target(1), 0.0);
  EXPECT_DOUBLE_EQ(s.target(2), 0.0);
}

TEST(Dataset, ZeroFeatureWidthRejected) {
  EXPECT_THROW(Dataset(0), ceal::PreconditionError);
}

}  // namespace
}  // namespace ceal::ml
