#include "ml/knn.h"

#include <gtest/gtest.h>

#include "core/error.h"
#include "core/rng.h"

namespace ceal::ml {
namespace {

TEST(Knn, ExactMatchDominatesWithDistanceWeighting) {
  Dataset d(1);
  d.add(std::vector<double>{0.0}, 1.0);
  d.add(std::vector<double>{10.0}, 100.0);
  KnnParams p;
  p.k = 2;
  p.distance_weighted = true;
  KnnRegressor model(p);
  ceal::Rng rng(1);
  model.fit(d, rng);
  EXPECT_NEAR(model.predict(std::vector<double>{0.0}), 1.0, 0.01);
}

TEST(Knn, UnweightedAveragesKNearest) {
  Dataset d(1);
  d.add(std::vector<double>{0.0}, 2.0);
  d.add(std::vector<double>{1.0}, 4.0);
  d.add(std::vector<double>{100.0}, 1000.0);
  KnnParams p;
  p.k = 2;
  p.distance_weighted = false;
  KnnRegressor model(p);
  ceal::Rng rng(2);
  model.fit(d, rng);
  EXPECT_DOUBLE_EQ(model.predict(std::vector<double>{0.4}), 3.0);
}

TEST(Knn, KLargerThanDatasetUsesAll) {
  Dataset d(1);
  d.add(std::vector<double>{0.0}, 1.0);
  d.add(std::vector<double>{1.0}, 3.0);
  KnnParams p;
  p.k = 10;
  p.distance_weighted = false;
  KnnRegressor model(p);
  ceal::Rng rng(3);
  model.fit(d, rng);
  EXPECT_DOUBLE_EQ(model.predict(std::vector<double>{0.5}), 2.0);
}

TEST(Knn, FeatureNormalisationBalancesScales) {
  // Feature 0 spans 0..1, feature 1 spans 0..1000. Without min-max
  // normalisation the second feature would dominate the distance.
  Dataset d(2);
  d.add(std::vector<double>{0.0, 0.0}, 1.0);
  d.add(std::vector<double>{1.0, 1000.0}, 2.0);
  d.add(std::vector<double>{0.0, 1000.0}, 3.0);
  KnnParams p;
  p.k = 1;
  KnnRegressor model(p);
  ceal::Rng rng(4);
  model.fit(d, rng);
  // Query near (0, 900): normalised distances make row 2 the closest.
  EXPECT_DOUBLE_EQ(model.predict(std::vector<double>{0.1, 900.0}), 3.0);
}

TEST(Knn, ConstantFeatureDoesNotProduceNan) {
  Dataset d(2);
  d.add(std::vector<double>{5.0, 0.0}, 1.0);
  d.add(std::vector<double>{5.0, 1.0}, 2.0);
  KnnParams p;
  p.k = 1;
  KnnRegressor model(p);
  ceal::Rng rng(5);
  model.fit(d, rng);
  const double pred = model.predict(std::vector<double>{5.0, 0.9});
  EXPECT_DOUBLE_EQ(pred, 2.0);
}

TEST(Knn, PredictBeforeFitThrows) {
  KnnRegressor model;
  EXPECT_FALSE(model.is_fitted());
  EXPECT_THROW(model.predict(std::vector<double>{0.0}),
               ceal::PreconditionError);
}

TEST(Knn, ZeroKRejected) {
  KnnParams p;
  p.k = 0;
  EXPECT_THROW(KnnRegressor{p}, ceal::PreconditionError);
}

}  // namespace
}  // namespace ceal::ml
