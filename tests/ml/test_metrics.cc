#include "ml/metrics.h"

#include <gtest/gtest.h>

#include <vector>

#include "core/error.h"

namespace ceal::ml {
namespace {

TEST(Metrics, TopIndicesPicksSmallest) {
  const std::vector<double> v{5.0, 1.0, 3.0, 2.0};
  const auto top = top_indices(v, 2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0], 1u);
  EXPECT_EQ(top[1], 3u);
}

TEST(Metrics, TopIndicesTieBreaksByIndex) {
  const std::vector<double> v{1.0, 1.0, 1.0};
  const auto top = top_indices(v, 2);
  EXPECT_EQ(top[0], 0u);
  EXPECT_EQ(top[1], 1u);
}

TEST(Metrics, PerfectModelHasFullRecall) {
  const std::vector<double> measured{4.0, 1.0, 3.0, 2.0};
  for (std::size_t n = 1; n <= 4; ++n) {
    EXPECT_DOUBLE_EQ(recall_score_percent(n, measured, measured), 100.0);
  }
}

TEST(Metrics, ReversedModelHasZeroTopRecall) {
  const std::vector<double> measured{1.0, 2.0, 3.0, 4.0};
  const std::vector<double> scores{4.0, 3.0, 2.0, 1.0};
  EXPECT_DOUBLE_EQ(recall_score_percent(1, scores, measured), 0.0);
  EXPECT_DOUBLE_EQ(recall_score_percent(2, scores, measured), 0.0);
  // Full-set recall is trivially 100%.
  EXPECT_DOUBLE_EQ(recall_score_percent(4, scores, measured), 100.0);
}

TEST(Metrics, PartialOverlapGivesFraction) {
  // Model top-2 = {0, 1}; truth top-2 = {0, 3} -> overlap 1/2.
  const std::vector<double> scores{0.0, 1.0, 5.0, 6.0};
  const std::vector<double> measured{0.0, 9.0, 5.0, 1.0};
  EXPECT_DOUBLE_EQ(recall_score_percent(2, scores, measured), 50.0);
}

TEST(Metrics, MonotoneTransformPreservesRecall) {
  // Recall depends only on ranking, so any monotone rescale is invariant.
  const std::vector<double> measured{3.0, 1.0, 2.0, 5.0, 4.0};
  std::vector<double> scaled;
  for (const double v : measured) scaled.push_back(v * v + 7.0);
  for (std::size_t n = 1; n <= 5; ++n) {
    EXPECT_DOUBLE_EQ(recall_score_percent(n, scaled, measured), 100.0);
  }
}

TEST(Metrics, RecallRejectsBadArguments) {
  const std::vector<double> a{1.0, 2.0};
  const std::vector<double> b{1.0};
  EXPECT_THROW(recall_score_percent(1, a, b), ceal::PreconditionError);
  EXPECT_THROW(recall_score_percent(0, a, a), ceal::PreconditionError);
  EXPECT_THROW(recall_score_percent(3, a, a), ceal::PreconditionError);
}

TEST(Metrics, RecallSumTop123PerfectModel) {
  const std::vector<double> measured{5.0, 4.0, 3.0, 2.0, 1.0};
  EXPECT_DOUBLE_EQ(recall_sum_top123(measured, measured), 300.0);
}

TEST(Metrics, RecallSumHandlesTinyBatches) {
  const std::vector<double> one{1.0};
  EXPECT_DOUBLE_EQ(recall_sum_top123(one, one), 100.0);
  const std::vector<double> two{1.0, 2.0};
  EXPECT_DOUBLE_EQ(recall_sum_top123(two, two), 200.0);
}

TEST(Metrics, RecallSumDistinguishesModels) {
  const std::vector<double> measured{1.0, 2.0, 3.0, 4.0, 5.0, 6.0};
  const std::vector<double> good{1.1, 2.1, 3.1, 4.1, 5.1, 6.1};
  const std::vector<double> bad{6.0, 5.0, 4.0, 3.0, 2.0, 1.0};
  EXPECT_GT(recall_sum_top123(good, measured),
            recall_sum_top123(bad, measured));
}

}  // namespace
}  // namespace ceal::ml
