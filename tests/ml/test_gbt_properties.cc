// Parameterized property sweep over GBT hyper-parameters: any sane
// setting must produce finite predictions that beat the constant-mean
// baseline on a learnable surface.
#include <gtest/gtest.h>

#include <cmath>

#include "core/rng.h"
#include "core/stats.h"
#include "ml/gbt.h"

namespace ceal::ml {
namespace {

struct GbtCase {
  std::size_t rounds;
  double lr;
  std::size_t depth;
  double subsample;
  double colsample;
};

class GbtProperty : public ::testing::TestWithParam<GbtCase> {
 protected:
  static Dataset make_data(std::size_t n, ceal::Rng& rng) {
    Dataset d(3);
    for (std::size_t i = 0; i < n; ++i) {
      const double a = rng.uniform(1.0, 100.0);
      const double b = rng.uniform(0.0, 10.0);
      const double c = rng.uniform(0.0, 1.0);
      d.add(std::vector<double>{a, b, c}, 500.0 / a + 5.0 * b + c);
    }
    return d;
  }
};

TEST_P(GbtProperty, BeatsConstantBaseline) {
  const GbtCase c = GetParam();
  GbtParams params;
  params.n_rounds = c.rounds;
  params.learning_rate = c.lr;
  params.subsample = c.subsample;
  params.tree.max_depth = c.depth;
  params.tree.colsample = c.colsample;
  params.tree.min_samples_leaf = 1;
  params.tree.min_child_weight = 0.0;

  ceal::Rng rng(1234);
  const Dataset train = make_data(250, rng);
  const Dataset test = make_data(80, rng);

  GradientBoostedTrees model(params);
  model.fit(train, rng);

  const double base = ceal::mean(train.targets());
  double model_sse = 0.0, base_sse = 0.0;
  for (std::size_t i = 0; i < test.size(); ++i) {
    const double pred = model.predict(test.row(i));
    ASSERT_TRUE(std::isfinite(pred));
    model_sse += (pred - test.target(i)) * (pred - test.target(i));
    base_sse += (base - test.target(i)) * (base - test.target(i));
  }
  EXPECT_LT(model_sse, base_sse);
}

TEST_P(GbtProperty, TrainingErrorIsBoundedByTargetRange) {
  const GbtCase c = GetParam();
  GbtParams params;
  params.n_rounds = c.rounds;
  params.learning_rate = c.lr;
  params.subsample = c.subsample;
  params.tree.max_depth = c.depth;
  params.tree.colsample = c.colsample;

  ceal::Rng rng(99);
  const Dataset train = make_data(120, rng);
  GradientBoostedTrees model(params);
  model.fit(train, rng);

  const double lo = *std::min_element(train.targets().begin(),
                                      train.targets().end());
  const double hi = *std::max_element(train.targets().begin(),
                                      train.targets().end());
  const double span = hi - lo;
  for (std::size_t i = 0; i < train.size(); ++i) {
    const double pred = model.predict(train.row(i));
    EXPECT_GT(pred, lo - span);
    EXPECT_LT(pred, hi + span);
  }
}

INSTANTIATE_TEST_SUITE_P(
    HyperparameterSweep, GbtProperty,
    ::testing::Values(GbtCase{30, 0.3, 3, 1.0, 1.0},
                      GbtCase{100, 0.1, 4, 1.0, 1.0},
                      GbtCase{150, 0.1, 5, 0.8, 0.8},
                      GbtCase{200, 0.05, 6, 0.7, 1.0},
                      GbtCase{60, 0.2, 2, 1.0, 0.5},
                      GbtCase{400, 0.03, 8, 0.9, 0.9}),
    [](const auto& info) {
      const GbtCase& c = info.param;
      return "r" + std::to_string(c.rounds) + "_d" +
             std::to_string(c.depth) + "_i" + std::to_string(info.index);
    });

}  // namespace
}  // namespace ceal::ml
