#include "ml/tree.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/error.h"
#include "core/rng.h"

namespace ceal::ml {
namespace {

// Builds a dataset plus the CART-equivalent gradient encoding
// (g = -y, h = 1) used throughout these tests.
struct CartProblem {
  Dataset data{1};
  std::vector<double> g;
  std::vector<double> h;
  std::vector<std::size_t> rows;

  explicit CartProblem(std::size_t width) : data(width) {}

  void add(std::vector<double> x, double y) {
    data.add(x, y);
    g.push_back(-y);
    h.push_back(1.0);
    rows.push_back(rows.size());
  }
};

TreeParams cart_params(std::size_t max_depth = 6,
                       std::size_t min_leaf = 1) {
  TreeParams p;
  p.max_depth = max_depth;
  p.min_samples_leaf = min_leaf;
  p.min_child_weight = 0.0;
  p.lambda = 0.0;
  return p;
}

TEST(RegressionTree, SingleLeafPredictsMean) {
  CartProblem prob(1);
  prob.add({1.0}, 2.0);
  prob.add({2.0}, 4.0);
  RegressionTree tree(cart_params(/*max_depth=*/1, /*min_leaf=*/2));
  ceal::Rng rng(1);
  tree.fit_gradients(prob.data, prob.rows, prob.g, prob.h, rng);
  // min_samples_leaf = 2 forbids splitting two samples.
  EXPECT_EQ(tree.leaf_count(), 1u);
  EXPECT_DOUBLE_EQ(tree.predict(std::vector<double>{0.0}), 3.0);
}

TEST(RegressionTree, LearnsASingleThresholdSplit) {
  CartProblem prob(1);
  for (double x = 0.0; x < 5.0; x += 1.0) prob.add({x}, 1.0);
  for (double x = 5.0; x < 10.0; x += 1.0) prob.add({x}, 9.0);
  RegressionTree tree(cart_params());
  ceal::Rng rng(2);
  tree.fit_gradients(prob.data, prob.rows, prob.g, prob.h, rng);
  EXPECT_DOUBLE_EQ(tree.predict(std::vector<double>{2.0}), 1.0);
  EXPECT_DOUBLE_EQ(tree.predict(std::vector<double>{7.0}), 9.0);
}

TEST(RegressionTree, PicksTheInformativeFeature) {
  CartProblem prob(2);
  ceal::Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    const double x0 = rng.uniform01();              // noise feature
    const double x1 = static_cast<double>(i % 2);   // informative feature
    prob.add({x0, x1}, x1 * 10.0);
  }
  RegressionTree tree(cart_params());
  tree.fit_gradients(prob.data, prob.rows, prob.g, prob.h, rng);
  EXPECT_NEAR(tree.predict(std::vector<double>{0.5, 0.0}), 0.0, 1e-9);
  EXPECT_NEAR(tree.predict(std::vector<double>{0.5, 1.0}), 10.0, 1e-9);
}

TEST(RegressionTree, DepthLimitIsRespected) {
  CartProblem prob(1);
  for (int i = 0; i < 64; ++i) {
    prob.add({static_cast<double>(i)}, static_cast<double>(i));
  }
  RegressionTree tree(cart_params(/*max_depth=*/3));
  ceal::Rng rng(4);
  tree.fit_gradients(prob.data, prob.rows, prob.g, prob.h, rng);
  EXPECT_LE(tree.depth(), 4u);      // depth counts nodes on the path
  EXPECT_LE(tree.leaf_count(), 8u);  // 2^3 leaves at most
}

TEST(RegressionTree, MinSamplesLeafBoundsLeafSize) {
  CartProblem prob(1);
  for (int i = 0; i < 20; ++i) {
    prob.add({static_cast<double>(i)}, static_cast<double>(i % 7));
  }
  RegressionTree tree(cart_params(/*max_depth=*/10, /*min_leaf=*/5));
  ceal::Rng rng(5);
  tree.fit_gradients(prob.data, prob.rows, prob.g, prob.h, rng);
  EXPECT_LE(tree.leaf_count(), 4u);  // 20 / 5
}

TEST(RegressionTree, ConstantTargetsStaySingleLeaf) {
  CartProblem prob(1);
  for (int i = 0; i < 10; ++i) {
    prob.add({static_cast<double>(i)}, 7.0);
  }
  RegressionTree tree(cart_params());
  ceal::Rng rng(6);
  tree.fit_gradients(prob.data, prob.rows, prob.g, prob.h, rng);
  EXPECT_EQ(tree.leaf_count(), 1u);
  EXPECT_DOUBLE_EQ(tree.predict(std::vector<double>{3.0}), 7.0);
}

TEST(RegressionTree, IdenticalFeatureValuesCannotSplit) {
  CartProblem prob(1);
  prob.add({1.0}, 0.0);
  prob.add({1.0}, 10.0);
  prob.add({1.0}, 20.0);
  RegressionTree tree(cart_params());
  ceal::Rng rng(7);
  tree.fit_gradients(prob.data, prob.rows, prob.g, prob.h, rng);
  EXPECT_EQ(tree.leaf_count(), 1u);
  EXPECT_DOUBLE_EQ(tree.predict(std::vector<double>{1.0}), 10.0);
}

TEST(RegressionTree, LambdaShrinksLeafValues) {
  CartProblem prob(1);
  prob.add({0.0}, 10.0);
  TreeParams p = cart_params();
  p.lambda = 1.0;  // leaf = sum(y) / (n + lambda) = 10 / 2
  RegressionTree tree(p);
  ceal::Rng rng(8);
  tree.fit_gradients(prob.data, prob.rows, prob.g, prob.h, rng);
  EXPECT_DOUBLE_EQ(tree.predict(std::vector<double>{0.0}), 5.0);
}

TEST(RegressionTree, GammaSuppressesWeakSplits) {
  CartProblem prob(1);
  for (double x = 0.0; x < 4.0; x += 1.0) prob.add({x}, x * 0.001);
  TreeParams p = cart_params();
  p.gamma = 100.0;  // any split gain is far below gamma
  RegressionTree tree(p);
  ceal::Rng rng(9);
  tree.fit_gradients(prob.data, prob.rows, prob.g, prob.h, rng);
  EXPECT_EQ(tree.leaf_count(), 1u);
}

TEST(RegressionTree, SubsetOfRowsOnlyUsesThoseRows) {
  CartProblem prob(1);
  prob.add({0.0}, 0.0);
  prob.add({1.0}, 100.0);  // excluded below
  prob.add({2.0}, 0.0);
  const std::vector<std::size_t> rows{0, 2};
  RegressionTree tree(cart_params());
  ceal::Rng rng(10);
  tree.fit_gradients(prob.data, rows, prob.g, prob.h, rng);
  EXPECT_DOUBLE_EQ(tree.predict(std::vector<double>{1.0}), 0.0);
}

TEST(RegressionTree, PredictBeforeFitThrows) {
  RegressionTree tree;
  EXPECT_THROW(tree.predict(std::vector<double>{1.0}),
               ceal::PreconditionError);
}

TEST(RegressionTree, EmptyRowsRejected) {
  CartProblem prob(1);
  prob.add({0.0}, 0.0);
  RegressionTree tree;
  ceal::Rng rng(11);
  const std::vector<std::size_t> empty;
  EXPECT_THROW(tree.fit_gradients(prob.data, empty, prob.g, prob.h, rng),
               ceal::PreconditionError);
}

TEST(RegressionTree, ColsampleOneUsesAllFeatures) {
  // With colsample = 1 the informative second feature must be found.
  CartProblem prob(3);
  for (int i = 0; i < 30; ++i) {
    prob.add({0.0, static_cast<double>(i % 2), 0.0},
             static_cast<double>(i % 2));
  }
  TreeParams p = cart_params();
  p.colsample = 1.0;
  RegressionTree tree(p);
  ceal::Rng rng(12);
  tree.fit_gradients(prob.data, prob.rows, prob.g, prob.h, rng);
  EXPECT_NEAR(tree.predict(std::vector<double>{0.0, 1.0, 0.0}), 1.0, 1e-9);
}

}  // namespace
}  // namespace ceal::ml
