// Property tests for the GBT model file format: randomized
// hyper-parameter configurations must round-trip through save/load with
// bitwise-identical predictions, and malformed files must throw
// PreconditionError (never crash or load silently wrong values).
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "core/error.h"
#include "core/rng.h"
#include "ml/gbt.h"
#include "ml/serialize.h"

namespace ceal::ml {
namespace {

constexpr std::size_t kFeatures = 4;

Dataset random_data(std::size_t n, ceal::Rng& rng) {
  Dataset d(kFeatures);
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<double> row(kFeatures);
    for (double& v : row) v = rng.uniform(-8.0, 8.0);
    d.add(row, row[0] * row[1] - 3.0 * row[2] + rng.uniform01());
  }
  return d;
}

GbtParams random_params(ceal::Rng& rng) {
  GbtParams p;
  p.n_rounds = 1 + rng.uniform_u64(60);
  p.learning_rate = rng.uniform(0.01, 1.0);
  p.subsample = rng.uniform(0.5, 1.0);
  p.tree.max_depth = 1 + rng.uniform_u64(7);
  p.tree.min_samples_leaf = 1 + rng.uniform_u64(4);
  p.tree.min_child_weight = rng.uniform(0.0, 2.0);
  p.tree.lambda = rng.uniform(0.0, 3.0);
  p.tree.gamma = rng.uniform(0.0, 0.5);
  p.tree.colsample = rng.uniform(0.5, 1.0);
  if (rng.bernoulli(0.5)) {
    p.tree.method = TreeMethod::kHist;
    p.tree.max_bins = 2 + rng.uniform_u64(255);
  }
  return p;
}

TEST(SerializeProperties, RandomModelsRoundTripBitwise) {
  ceal::Rng rng(20260806);
  for (int trial = 0; trial < 12; ++trial) {
    const GbtParams params = random_params(rng);
    const Dataset train = random_data(80 + rng.uniform_u64(80), rng);
    GradientBoostedTrees model(params);
    model.fit(train, rng);

    std::stringstream buffer;
    save_gbt(model, buffer, kFeatures);
    const LoadedGbt loaded = load_gbt(buffer);

    ASSERT_EQ(loaded.n_features, kFeatures) << "trial " << trial;
    ASSERT_EQ(loaded.model.tree_count(), model.tree_count())
        << "trial " << trial;
    const Dataset probe = random_data(50, rng);
    for (std::size_t i = 0; i < probe.size(); ++i) {
      // Bitwise equality, not a tolerance: hex-float doubles round-trip
      // every node threshold and leaf weight exactly.
      ASSERT_EQ(loaded.model.predict(probe.row(i)),
                model.predict(probe.row(i)))
          << "trial " << trial << " row " << i;
    }
  }
}

// ---- Malformed corpus: every entry must throw PreconditionError.

std::string valid_model_text() {
  ceal::Rng rng(1);
  const Dataset train = random_data(60, rng);
  GradientBoostedTrees model;
  model.fit(train, rng);
  std::stringstream buffer;
  save_gbt(model, buffer, kFeatures);
  return buffer.str();
}

TEST(SerializeProperties, RejectsTruncatedHeader) {
  for (const char* text : {"", "gbt", "gbt v1", "gbt v1 4",
                           "gbt v1 4 2", "gbt v1 4 2 0x1p-3"}) {
    std::stringstream is(text);
    EXPECT_THROW(load_gbt(is), ceal::PreconditionError) << "'" << text << "'";
  }
}

TEST(SerializeProperties, RejectsEveryPrefixTruncation) {
  const std::string text = valid_model_text();
  // Cut the file at every line boundary except the last: all must throw.
  for (std::size_t pos = text.find('\n'); pos + 1 < text.size();
       pos = text.find('\n', pos + 1)) {
    std::stringstream is(text.substr(0, pos + 1));
    EXPECT_THROW(load_gbt(is), ceal::PreconditionError)
        << "truncated at byte " << pos;
  }
}

TEST(SerializeProperties, RejectsOutOfRangeNodeIndices) {
  // Left child beyond the node table.
  std::stringstream left(
      "gbt v1 2 1 0x1p-3 0x0p+0\n"
      "tree 1\n"
      "node 0 0x0p+0 9 -1 0x1p+0\n");
  EXPECT_THROW(load_gbt(left), ceal::PreconditionError);
  // Right child beyond the node table.
  std::stringstream right(
      "gbt v1 2 1 0x1p-3 0x0p+0\n"
      "tree 3\n"
      "node 0 0x0p+0 1 7 0x0p+0\n"
      "node 0 0x0p+0 -1 -1 0x1p+0\n"
      "node 0 0x0p+0 -1 -1 0x1p+1\n");
  EXPECT_THROW(load_gbt(right), ceal::PreconditionError);
  // Feature index beyond the declared feature count.
  std::stringstream feature(
      "gbt v1 2 1 0x1p-3 0x0p+0\n"
      "tree 1\n"
      "node 3 0x0p+0 -1 -1 0x1p+0\n");
  EXPECT_THROW(load_gbt(feature), ceal::PreconditionError);
}

TEST(SerializeProperties, RejectsNonHexDoubles) {
  // Decimal literals parse with strtod but are not what save_gbt emits;
  // accepting them would mask corruption. All doubles must be hex-floats.
  std::stringstream header("gbt v1 2 1 0.125 0x0p+0\n");
  EXPECT_THROW(load_gbt(header), ceal::PreconditionError);
  std::stringstream threshold(
      "gbt v1 2 1 0x1p-3 0x0p+0\n"
      "tree 1\n"
      "node 0 0.5 -1 -1 0x1p+0\n");
  EXPECT_THROW(load_gbt(threshold), ceal::PreconditionError);
  std::stringstream weight(
      "gbt v1 2 1 0x1p-3 0x0p+0\n"
      "tree 1\n"
      "node 0 0x0p+0 -1 -1 nan\n");
  EXPECT_THROW(load_gbt(weight), ceal::PreconditionError);
  std::stringstream garbage(
      "gbt v1 2 1 0x1p-3 0x0p+0\n"
      "tree 1\n"
      "node 0 0x1p+0zzz -1 -1 0x1p+0\n");
  EXPECT_THROW(load_gbt(garbage), ceal::PreconditionError);
}

TEST(SerializeProperties, RejectsTrailingGarbage) {
  std::string text = valid_model_text();
  {
    std::stringstream doubled(text + text);  // two concatenated models
    EXPECT_THROW(load_gbt(doubled), ceal::PreconditionError);
  }
  {
    std::stringstream junk(text + "node 0 0x0p+0 -1 -1 0x1p+0\n");
    EXPECT_THROW(load_gbt(junk), ceal::PreconditionError);
  }
  {
    // Trailing blank lines are tolerated — they are not corruption.
    std::stringstream padded(text + "\n  \n");
    EXPECT_NO_THROW(load_gbt(padded));
  }
}

TEST(SerializeProperties, MutatedTokensNeverCrash) {
  const std::string text = valid_model_text();
  ceal::Rng rng(2);
  for (int trial = 0; trial < 200; ++trial) {
    std::string mutated = text;
    const std::size_t pos = rng.uniform_u64(mutated.size());
    const char replacement = static_cast<char>(33 + rng.uniform_u64(94));
    mutated[pos] = replacement;
    std::stringstream is(mutated);
    try {
      const LoadedGbt loaded = load_gbt(is);
      (void)loaded;  // a benign mutation may still parse — that's fine
    } catch (const ceal::PreconditionError&) {
      // expected for corrupting mutations
    }
    // Anything else (segfault, std::bad_alloc, uncaught logic error)
    // fails the test by escaping.
  }
}

}  // namespace
}  // namespace ceal::ml
