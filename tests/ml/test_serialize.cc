#include "ml/serialize.h"

#include <gtest/gtest.h>

#include <sstream>

#include "core/error.h"
#include "core/rng.h"

namespace ceal::ml {
namespace {

Dataset training_data(std::size_t n, ceal::Rng& rng) {
  Dataset d(3);
  for (std::size_t i = 0; i < n; ++i) {
    const double a = rng.uniform(0.0, 10.0);
    const double b = rng.uniform(-5.0, 5.0);
    const double c = rng.uniform01();
    d.add(std::vector<double>{a, b, c}, 2.0 * a - b + 10.0 * c + 1.0);
  }
  return d;
}

TEST(Serialize, RoundTripPreservesEveryPrediction) {
  ceal::Rng rng(1);
  const Dataset train = training_data(120, rng);
  GradientBoostedTrees model(GradientBoostedTrees::surrogate_defaults());
  model.fit(train, rng);

  std::stringstream buffer;
  save_gbt(model, buffer, 3);
  const LoadedGbt loaded = load_gbt(buffer);

  EXPECT_EQ(loaded.n_features, 3u);
  EXPECT_EQ(loaded.model.tree_count(), model.tree_count());
  EXPECT_DOUBLE_EQ(loaded.model.base_score(), model.base_score());
  for (std::size_t i = 0; i < train.size(); ++i) {
    EXPECT_DOUBLE_EQ(loaded.model.predict(train.row(i)),
                     model.predict(train.row(i)));
  }
}

TEST(Serialize, HexDoublesSurviveExtremeValues) {
  // A single-sample model stresses exact base-score round-tripping.
  Dataset d(1);
  d.add(std::vector<double>{1.0}, 1.2345678901234567e-7);
  GradientBoostedTrees model;
  ceal::Rng rng(2);
  model.fit(d, rng);
  std::stringstream buffer;
  save_gbt(model, buffer, 1);
  const auto loaded = load_gbt(buffer);
  EXPECT_DOUBLE_EQ(loaded.model.predict(std::vector<double>{1.0}),
                   model.predict(std::vector<double>{1.0}));
}

TEST(Serialize, FileRoundTrip) {
  ceal::Rng rng(3);
  const Dataset train = training_data(40, rng);
  GradientBoostedTrees model;
  model.fit(train, rng);
  const std::string path = ::testing::TempDir() + "ceal_model_test.gbt";
  save_gbt_file(model, path, 3);
  const auto loaded = load_gbt_file(path);
  EXPECT_DOUBLE_EQ(loaded.model.predict(train.row(0)),
                   model.predict(train.row(0)));
  std::remove(path.c_str());
}

TEST(Serialize, RejectsUnfittedModel) {
  GradientBoostedTrees model;
  std::stringstream buffer;
  EXPECT_THROW(save_gbt(model, buffer, 2), ceal::PreconditionError);
}

TEST(Serialize, RejectsWrongMagic) {
  std::stringstream buffer("xgb v1 3 1 0x1p-3 0x0p+0\n");
  EXPECT_THROW(load_gbt(buffer), ceal::PreconditionError);
}

TEST(Serialize, RejectsTruncatedFile) {
  ceal::Rng rng(4);
  const Dataset train = training_data(20, rng);
  GradientBoostedTrees model;
  model.fit(train, rng);
  std::stringstream buffer;
  save_gbt(model, buffer, 3);
  std::string text = buffer.str();
  text.resize(text.size() / 2);
  std::stringstream half(text);
  EXPECT_THROW(load_gbt(half), ceal::PreconditionError);
}

TEST(Serialize, RejectsOutOfRangeFeature) {
  std::stringstream buffer(
      "gbt v1 2 1 0x1p-3 0x0p+0\n"
      "tree 1\n"
      "node 5 0x0p+0 -1 -1 0x1p+0\n");  // feature 5 >= n_features 2
  EXPECT_THROW(load_gbt(buffer), ceal::PreconditionError);
}

TEST(ImportNodes, ValidatesTreeStructure) {
  // Orphan node (never referenced).
  std::vector<TreeNodeData> orphan{
      {0, 0.5, -1, -1, 1.0},
      {0, 0.5, -1, -1, 2.0},
  };
  EXPECT_THROW(RegressionTree::import_nodes(orphan),
               ceal::PreconditionError);

  // Child index out of range.
  std::vector<TreeNodeData> bad_child{{0, 0.5, 1, 7, 0.0}};
  EXPECT_THROW(RegressionTree::import_nodes(bad_child),
               ceal::PreconditionError);

  // One-sided node.
  std::vector<TreeNodeData> one_sided{{0, 0.5, 1, -1, 0.0},
                                      {0, 0.0, -1, -1, 1.0}};
  EXPECT_THROW(RegressionTree::import_nodes(one_sided),
               ceal::PreconditionError);

  // A proper three-node tree.
  std::vector<TreeNodeData> good{{0, 0.5, 1, 2, 0.0},
                                 {0, 0.0, -1, -1, 1.0},
                                 {0, 0.0, -1, -1, 2.0}};
  const auto tree = RegressionTree::import_nodes(good);
  EXPECT_DOUBLE_EQ(tree.predict(std::vector<double>{0.0}), 1.0);
  EXPECT_DOUBLE_EQ(tree.predict(std::vector<double>{1.0}), 2.0);
}

TEST(ImportNodes, ExportImportRoundTrip) {
  ceal::Rng rng(5);
  const Dataset train = training_data(60, rng);
  GradientBoostedTrees model;
  model.fit(train, rng);
  const auto& tree = model.trees().front();
  const auto reimported = RegressionTree::import_nodes(tree.export_nodes());
  for (std::size_t i = 0; i < train.size(); ++i) {
    EXPECT_DOUBLE_EQ(reimported.predict(train.row(i)),
                     tree.predict(train.row(i)));
  }
}

}  // namespace
}  // namespace ceal::ml
