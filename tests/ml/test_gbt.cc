#include "ml/gbt.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/error.h"
#include "core/rng.h"
#include "core/stats.h"

namespace ceal::ml {
namespace {

Dataset quadratic_data(std::size_t n, ceal::Rng& rng) {
  Dataset d(2);
  for (std::size_t i = 0; i < n; ++i) {
    const double x0 = rng.uniform(-2.0, 2.0);
    const double x1 = rng.uniform(-2.0, 2.0);
    d.add(std::vector<double>{x0, x1}, x0 * x0 + 0.5 * x1);
  }
  return d;
}

double test_rmse(const GradientBoostedTrees& model, const Dataset& test) {
  const auto pred = model.predict_all(test);
  return ceal::rmse(test.targets(), pred);
}

TEST(Gbt, FitsSmoothFunction) {
  ceal::Rng rng(1);
  const Dataset train = quadratic_data(400, rng);
  const Dataset test = quadratic_data(100, rng);
  GradientBoostedTrees model;
  model.fit(train, rng);
  EXPECT_LT(test_rmse(model, test), 0.35);
}

TEST(Gbt, MoreRoundsReduceTrainError) {
  ceal::Rng rng(2);
  const Dataset train = quadratic_data(200, rng);
  GbtParams few;
  few.n_rounds = 5;
  GbtParams many;
  many.n_rounds = 200;
  GradientBoostedTrees weak(few), strong(many);
  ceal::Rng r1(3), r2(3);
  weak.fit(train, r1);
  strong.fit(train, r2);
  EXPECT_LT(test_rmse(strong, train), test_rmse(weak, train));
}

TEST(Gbt, BaseScoreIsTargetMean) {
  Dataset d(1);
  d.add(std::vector<double>{0.0}, 2.0);
  d.add(std::vector<double>{1.0}, 4.0);
  GradientBoostedTrees model;
  ceal::Rng rng(4);
  model.fit(d, rng);
  EXPECT_DOUBLE_EQ(model.base_score(), 3.0);
}

TEST(Gbt, SingleSamplePredictsNearIt) {
  Dataset d(1);
  d.add(std::vector<double>{0.0}, 7.0);
  GradientBoostedTrees model;
  ceal::Rng rng(5);
  model.fit(d, rng);
  EXPECT_NEAR(model.predict(std::vector<double>{0.0}), 7.0, 1e-6);
}

TEST(Gbt, DeterministicGivenSeed) {
  ceal::Rng data_rng(6);
  const Dataset train = quadratic_data(100, data_rng);
  GradientBoostedTrees a, b;
  ceal::Rng r1(7), r2(7);
  a.fit(train, r1);
  b.fit(train, r2);
  for (double x = -2.0; x <= 2.0; x += 0.5) {
    EXPECT_DOUBLE_EQ(a.predict(std::vector<double>{x, 0.0}),
                     b.predict(std::vector<double>{x, 0.0}));
  }
}

TEST(Gbt, RefitDiscardsPreviousModel) {
  Dataset d1(1), d2(1);
  d1.add(std::vector<double>{0.0}, 0.0);
  d2.add(std::vector<double>{0.0}, 100.0);
  GradientBoostedTrees model;
  ceal::Rng rng(8);
  model.fit(d1, rng);
  model.fit(d2, rng);
  EXPECT_NEAR(model.predict(std::vector<double>{0.0}), 100.0, 1e-6);
  EXPECT_EQ(model.tree_count(), model.params().n_rounds);
}

TEST(Gbt, PredictBeforeFitThrows) {
  GradientBoostedTrees model;
  EXPECT_FALSE(model.is_fitted());
  EXPECT_THROW(model.predict(std::vector<double>{1.0}),
               ceal::PreconditionError);
}

TEST(Gbt, EmptyDatasetRejected) {
  GradientBoostedTrees model;
  ceal::Rng rng(9);
  const Dataset empty(1);
  EXPECT_THROW(model.fit(empty, rng), ceal::PreconditionError);
}

TEST(Gbt, InvalidParamsRejected) {
  GbtParams p;
  p.learning_rate = 0.0;
  EXPECT_THROW(GradientBoostedTrees{p}, ceal::PreconditionError);
  p = GbtParams{};
  p.n_rounds = 0;
  EXPECT_THROW(GradientBoostedTrees{p}, ceal::PreconditionError);
  p = GbtParams{};
  p.subsample = 1.5;
  EXPECT_THROW(GradientBoostedTrees{p}, ceal::PreconditionError);
}

TEST(Gbt, SubsamplingStillLearnsTrend) {
  ceal::Rng rng(10);
  const Dataset train = quadratic_data(400, rng);
  GbtParams p = GradientBoostedTrees::surrogate_defaults();
  p.subsample = 0.5;
  GradientBoostedTrees model(p);
  model.fit(train, rng);
  // Prediction at x0 = 2 (high) must exceed prediction at x0 = 0 (low).
  EXPECT_GT(model.predict(std::vector<double>{2.0, 0.0}),
            model.predict(std::vector<double>{0.0, 0.0}));
}

TEST(Gbt, OutlierIsolatedFromGoodRegion) {
  // Regression guard: a single extreme sample must not drag down/up the
  // predictions of the dense cluster (requires min_samples_leaf == 1 in
  // the surrogate defaults).
  Dataset d(1);
  for (int i = 0; i < 9; ++i) {
    d.add(std::vector<double>{static_cast<double>(i)}, 10.0);
  }
  d.add(std::vector<double>{100.0}, 5000.0);
  GradientBoostedTrees model(GradientBoostedTrees::surrogate_defaults());
  ceal::Rng rng(11);
  model.fit(d, rng);
  EXPECT_NEAR(model.predict(std::vector<double>{4.0}), 10.0, 2.0);
  EXPECT_GT(model.predict(std::vector<double>{100.0}), 1000.0);
}

}  // namespace
}  // namespace ceal::ml
