#include "ml/random_forest.h"

#include <gtest/gtest.h>

#include "core/error.h"
#include "core/rng.h"
#include "core/stats.h"

namespace ceal::ml {
namespace {

Dataset step_data(std::size_t n, ceal::Rng& rng) {
  Dataset d(1);
  for (std::size_t i = 0; i < n; ++i) {
    const double x = rng.uniform(0.0, 10.0);
    d.add(std::vector<double>{x}, x < 5.0 ? 1.0 : 9.0);
  }
  return d;
}

TEST(RandomForest, LearnsStepFunction) {
  ceal::Rng rng(1);
  const Dataset train = step_data(300, rng);
  RandomForest model;
  model.fit(train, rng);
  EXPECT_NEAR(model.predict(std::vector<double>{2.0}), 1.0, 0.5);
  EXPECT_NEAR(model.predict(std::vector<double>{8.0}), 9.0, 0.5);
}

TEST(RandomForest, PredictionIsAverageWithinTargetRange) {
  ceal::Rng rng(2);
  const Dataset train = step_data(200, rng);
  RandomForest model;
  model.fit(train, rng);
  for (double x = 0.0; x <= 10.0; x += 1.0) {
    const double p = model.predict(std::vector<double>{x});
    EXPECT_GE(p, 1.0 - 1e-9);
    EXPECT_LE(p, 9.0 + 1e-9);
  }
}

TEST(RandomForest, TreeCountMatchesParams) {
  RandomForestParams params;
  params.n_trees = 17;
  RandomForest model(params);
  ceal::Rng rng(3);
  Dataset d(1);
  d.add(std::vector<double>{0.0}, 1.0);
  d.add(std::vector<double>{1.0}, 2.0);
  model.fit(d, rng);
  EXPECT_EQ(model.tree_count(), 17u);
}

TEST(RandomForest, DeterministicGivenSeed) {
  ceal::Rng data_rng(4);
  const Dataset train = step_data(100, data_rng);
  RandomForest a, b;
  ceal::Rng r1(5), r2(5);
  a.fit(train, r1);
  b.fit(train, r2);
  EXPECT_DOUBLE_EQ(a.predict(std::vector<double>{3.0}),
                   b.predict(std::vector<double>{3.0}));
}

TEST(RandomForest, PredictBeforeFitThrows) {
  RandomForest model;
  EXPECT_FALSE(model.is_fitted());
  EXPECT_THROW(model.predict(std::vector<double>{0.0}),
               ceal::PreconditionError);
}

TEST(RandomForest, InvalidParamsRejected) {
  RandomForestParams p;
  p.n_trees = 0;
  EXPECT_THROW(RandomForest{p}, ceal::PreconditionError);
  p = RandomForestParams{};
  p.bootstrap_fraction = 0.0;
  EXPECT_THROW(RandomForest{p}, ceal::PreconditionError);
}

}  // namespace
}  // namespace ceal::ml
