#include "config/parameter.h"

#include <gtest/gtest.h>

#include "core/error.h"

namespace ceal::config {
namespace {

TEST(Parameter, ExplicitValues) {
  const Parameter p("outputs", {4, 8, 16, 32});
  EXPECT_EQ(p.name(), "outputs");
  EXPECT_EQ(p.cardinality(), 4u);
  EXPECT_EQ(p.value(0), 4);
  EXPECT_EQ(p.value(3), 32);
}

TEST(Parameter, RangeWithUnitStep) {
  const Parameter p = Parameter::range("procs", 2, 5);
  EXPECT_EQ(p.cardinality(), 4u);
  EXPECT_EQ(p.value(0), 2);
  EXPECT_EQ(p.value(3), 5);
}

TEST(Parameter, RangeWithStride) {
  const Parameter p = Parameter::range("outputs", 4, 32, 4);
  EXPECT_EQ(p.cardinality(), 8u);
  EXPECT_EQ(p.value(0), 4);
  EXPECT_EQ(p.value(7), 32);
}

TEST(Parameter, RangeStopsAtUpperBound) {
  const Parameter p = Parameter::range("x", 1, 10, 4);  // 1, 5, 9
  EXPECT_EQ(p.cardinality(), 3u);
  EXPECT_EQ(p.value(2), 9);
}

TEST(Parameter, SingletonRange) {
  const Parameter p = Parameter::range("procs", 1, 1);
  EXPECT_EQ(p.cardinality(), 1u);
  EXPECT_EQ(p.value(0), 1);
}

TEST(Parameter, IndexOfRoundTrips) {
  const Parameter p = Parameter::range("ppn", 1, 35);
  for (std::size_t i = 0; i < p.cardinality(); ++i) {
    EXPECT_EQ(p.index_of(p.value(i)), i);
  }
}

TEST(Parameter, IndexOfMissingValueThrows) {
  const Parameter p("tpp", {1, 2, 4});
  EXPECT_THROW(p.index_of(3), ceal::PreconditionError);
  EXPECT_THROW(p.index_of(0), ceal::PreconditionError);
}

TEST(Parameter, Contains) {
  const Parameter p("tpp", {1, 2, 4});
  EXPECT_TRUE(p.contains(2));
  EXPECT_FALSE(p.contains(3));
}

TEST(Parameter, RejectsEmptyValues) {
  EXPECT_THROW(Parameter("x", {}), ceal::PreconditionError);
}

TEST(Parameter, RejectsNonIncreasingValues) {
  EXPECT_THROW(Parameter("x", {1, 1}), ceal::PreconditionError);
  EXPECT_THROW(Parameter("x", {2, 1}), ceal::PreconditionError);
}

TEST(Parameter, RejectsEmptyName) {
  EXPECT_THROW(Parameter("", {1}), ceal::PreconditionError);
}

TEST(Parameter, RangeRejectsBadArguments) {
  EXPECT_THROW(Parameter::range("x", 5, 1), ceal::PreconditionError);
  EXPECT_THROW(Parameter::range("x", 1, 5, 0), ceal::PreconditionError);
}

}  // namespace
}  // namespace ceal::config
