// Parameterized round-trip and invariant sweep over a family of spaces
// with different shapes and constraints.
#include <gtest/gtest.h>

#include "config/config_space.h"
#include "core/rng.h"

namespace ceal::config {
namespace {

struct SpaceCase {
  const char* name;
  std::vector<Parameter> params;
  ConfigSpace::Constraint constraint;
};

SpaceCase make_case(int which) {
  switch (which) {
    case 0:
      return {"one_param", {Parameter::range("a", 0, 99)}, {}};
    case 1:
      return {"two_params",
              {Parameter::range("a", 1, 16), Parameter("b", {2, 4, 8})},
              {}};
    case 2:
      return {"constrained",
              {Parameter::range("p", 1, 50), Parameter::range("q", 1, 10)},
              [](const Configuration& c) { return c[0] % c[1] == 0; }};
    case 3:
      return {"strided",
              {Parameter::range("x", 0, 100, 25),
               Parameter::range("y", -5, 5)},
              {}};
    default:
      return {"deep",
              {Parameter::range("a", 1, 4), Parameter::range("b", 1, 4),
               Parameter::range("c", 1, 4), Parameter::range("d", 1, 4),
               Parameter::range("e", 1, 4)},
              [](const Configuration& c) {
                int total = 0;
                for (const int v : c) total += v;
                return total <= 12;
              }};
  }
}

class SpaceProperty : public ::testing::TestWithParam<int> {
 protected:
  SpaceProperty() {
    auto c = make_case(GetParam());
    space_ = std::make_unique<ConfigSpace>(std::move(c.params),
                                           std::move(c.constraint));
  }

  std::unique_ptr<ConfigSpace> space_;
};

TEST_P(SpaceProperty, FlatIndexRoundTripsEverywhere) {
  const std::uint64_t step = std::max<std::uint64_t>(
      1, space_->raw_size() / 257);
  for (std::uint64_t i = 0; i < space_->raw_size(); i += step) {
    EXPECT_EQ(space_->flat_index(space_->at(i)), i);
  }
}

TEST_P(SpaceProperty, RandomValidAlwaysValidates) {
  ceal::Rng rng(GetParam() + 1);
  for (int i = 0; i < 200; ++i) {
    EXPECT_TRUE(space_->is_valid(space_->random_valid(rng)));
  }
}

TEST_P(SpaceProperty, NeighborsAreValidAndAdjacent) {
  ceal::Rng rng(GetParam() + 10);
  for (int i = 0; i < 20; ++i) {
    const auto c = space_->random_valid(rng);
    for (const auto& n : space_->neighbors(c)) {
      EXPECT_TRUE(space_->is_valid(n));
      int diffs = 0;
      for (std::size_t j = 0; j < c.size(); ++j) {
        if (n[j] != c[j]) ++diffs;
      }
      EXPECT_EQ(diffs, 1);
    }
  }
}

TEST_P(SpaceProperty, EstimateTracksExactCount) {
  if (space_->raw_size() > 100000) GTEST_SKIP();
  ceal::Rng rng(GetParam() + 20);
  const double exact =
      static_cast<double>(space_->count_valid_exact()) /
      static_cast<double>(space_->raw_size());
  const double estimate = space_->estimate_valid_fraction(rng, 30000);
  EXPECT_NEAR(estimate, exact, 0.02);
}

TEST_P(SpaceProperty, FeaturesMatchConfigurationValues) {
  ceal::Rng rng(GetParam() + 30);
  const auto c = space_->random_valid(rng);
  const auto f = space_->features(c);
  ASSERT_EQ(f.size(), c.size());
  for (std::size_t j = 0; j < c.size(); ++j) {
    EXPECT_DOUBLE_EQ(f[j], static_cast<double>(c[j]));
  }
}

INSTANTIATE_TEST_SUITE_P(SpaceFamily, SpaceProperty,
                         ::testing::Range(0, 5),
                         [](const auto& info) {
                           return std::string(
                               make_case(info.param).name);
                         });

}  // namespace
}  // namespace ceal::config
