#include "config/config_space.h"

#include <gtest/gtest.h>

#include <set>

#include "core/error.h"
#include "core/rng.h"

namespace ceal::config {
namespace {

ConfigSpace small_space(ConfigSpace::Constraint c = {}) {
  return ConfigSpace({Parameter::range("a", 1, 3), Parameter("b", {10, 20}),
                      Parameter::range("c", 0, 4)},
                     std::move(c));
}

TEST(ConfigSpace, RawSizeIsProductOfCardinalities) {
  EXPECT_EQ(small_space().raw_size(), 3u * 2u * 5u);
}

TEST(ConfigSpace, AtDecodesMixedRadixLastFastest) {
  const auto s = small_space();
  EXPECT_EQ(s.at(0), (Configuration{1, 10, 0}));
  EXPECT_EQ(s.at(1), (Configuration{1, 10, 1}));
  EXPECT_EQ(s.at(5), (Configuration{1, 20, 0}));
  EXPECT_EQ(s.at(s.raw_size() - 1), (Configuration{3, 20, 4}));
}

TEST(ConfigSpace, FlatIndexInvertsAt) {
  const auto s = small_space();
  for (std::uint64_t i = 0; i < s.raw_size(); ++i) {
    EXPECT_EQ(s.flat_index(s.at(i)), i);
  }
}

TEST(ConfigSpace, AtRejectsOutOfRangeIndex) {
  const auto s = small_space();
  EXPECT_THROW(s.at(s.raw_size()), ceal::PreconditionError);
}

TEST(ConfigSpace, ParameterLookupByName) {
  const auto s = small_space();
  EXPECT_EQ(s.parameter_index("a"), 0u);
  EXPECT_EQ(s.parameter_index("c"), 2u);
  EXPECT_THROW(s.parameter_index("missing"), ceal::PreconditionError);
}

TEST(ConfigSpace, ValueOfByName) {
  const auto s = small_space();
  const Configuration c{2, 20, 3};
  EXPECT_EQ(s.value_of(c, "a"), 2);
  EXPECT_EQ(s.value_of(c, "b"), 20);
}

TEST(ConfigSpace, ValidityChecksDomainsAndConstraint) {
  const auto s = small_space(
      [](const Configuration& c) { return c[0] + c[2] <= 4; });
  EXPECT_TRUE(s.is_valid({1, 10, 3}));
  EXPECT_FALSE(s.is_valid({1, 10, 4}));   // constraint violated
  EXPECT_FALSE(s.is_valid({1, 15, 0}));   // 15 not in b's domain
  EXPECT_FALSE(s.is_valid({1, 10}));      // wrong arity
}

TEST(ConfigSpace, RandomValidRespectsConstraint) {
  const auto s = small_space(
      [](const Configuration& c) { return c[0] == 2; });
  ceal::Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    const auto c = s.random_valid(rng);
    EXPECT_EQ(c[0], 2);
    EXPECT_TRUE(s.is_valid(c));
  }
}

TEST(ConfigSpace, RandomValidThrowsOnEmptyConstraint) {
  const auto s = small_space([](const Configuration&) { return false; });
  ceal::Rng rng(5);
  EXPECT_THROW(s.random_valid(rng, 100), ceal::InvariantError);
}

TEST(ConfigSpace, SampleValidReturnsRequestedCount) {
  const auto s = small_space();
  ceal::Rng rng(6);
  EXPECT_EQ(s.sample_valid(rng, 17).size(), 17u);
}

TEST(ConfigSpace, CountValidExactMatchesManualCount) {
  const auto s = small_space(
      [](const Configuration& c) { return c[2] % 2 == 0; });
  // c in {0,2,4} of 5 values -> 3/5 of the grid.
  EXPECT_EQ(s.count_valid_exact(), 3u * 2u * 3u);
}

TEST(ConfigSpace, CountValidExactWithoutConstraintIsRawSize) {
  const auto s = small_space();
  EXPECT_EQ(s.count_valid_exact(), s.raw_size());
}

TEST(ConfigSpace, CountValidExactRefusesHugeSpaces) {
  const auto s = small_space([](const Configuration&) { return true; });
  EXPECT_THROW(s.count_valid_exact(/*limit=*/10), ceal::PreconditionError);
}

TEST(ConfigSpace, EstimateValidFractionApproximatesTruth) {
  const auto s = small_space(
      [](const Configuration& c) { return c[2] % 2 == 0; });
  ceal::Rng rng(7);
  EXPECT_NEAR(s.estimate_valid_fraction(rng, 20000), 0.6, 0.02);
}

TEST(ConfigSpace, NeighborsDifferInExactlyOneParameterStep) {
  const auto s = small_space();
  const Configuration c{2, 10, 2};
  const auto nbrs = s.neighbors(c);
  // a: 1 or 3; b: 20; c: 1 or 3 -> five neighbours.
  EXPECT_EQ(nbrs.size(), 5u);
  for (const auto& n : nbrs) {
    int diffs = 0;
    for (std::size_t i = 0; i < c.size(); ++i) {
      if (n[i] != c[i]) ++diffs;
    }
    EXPECT_EQ(diffs, 1);
    EXPECT_TRUE(s.is_valid(n));
  }
}

TEST(ConfigSpace, NeighborsRespectDomainEdges) {
  const auto s = small_space();
  const auto nbrs = s.neighbors({1, 10, 0});  // a and c at lower edges
  EXPECT_EQ(nbrs.size(), 3u);  // a->2, b->20, c->1
}

TEST(ConfigSpace, NeighborsFilterInvalid) {
  const auto s = small_space(
      [](const Configuration& c) { return c[0] != 2; });
  const auto nbrs = s.neighbors({1, 10, 2});
  for (const auto& n : nbrs) EXPECT_NE(n[0], 2);
}

TEST(ConfigSpace, FeaturesCastValues) {
  const auto s = small_space();
  const auto f = s.features({3, 20, 4});
  ASSERT_EQ(f.size(), 3u);
  EXPECT_DOUBLE_EQ(f[0], 3.0);
  EXPECT_DOUBLE_EQ(f[1], 20.0);
  EXPECT_DOUBLE_EQ(f[2], 4.0);
}

TEST(ConfigSpace, ToStringFormat) {
  EXPECT_EQ(to_string({1, 2, 3}), "(1, 2, 3)");
  EXPECT_EQ(to_string({}), "()");
}

TEST(ConfigSpace, UniformityOverSmallGrid) {
  // at(uniform) should hit every cell roughly equally.
  const ConfigSpace s({Parameter::range("x", 0, 3)});
  ceal::Rng rng(11);
  std::array<int, 4> hits{};
  for (int i = 0; i < 8000; ++i) {
    ++hits[static_cast<std::size_t>(s.random_valid(rng)[0])];
  }
  for (const int h : hits) EXPECT_NEAR(h, 2000, 150);
}

}  // namespace
}  // namespace ceal::config
