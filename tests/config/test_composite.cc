#include "config/composite.h"

#include <gtest/gtest.h>

#include "core/error.h"
#include "core/rng.h"

namespace ceal::config {
namespace {

CompositeSpace two_component_space(
    CompositeSpace::JointConstraint joint = {}) {
  ConfigSpace sim({Parameter::range("procs", 1, 4),
                   Parameter::range("ppn", 1, 2)},
                  [](const Configuration& c) { return c[0] >= c[1]; });
  ConfigSpace ana({Parameter::range("procs", 1, 3)});
  std::vector<CompositeSpace::Component> comps;
  comps.push_back({"sim", std::move(sim)});
  comps.push_back({"ana", std::move(ana)});
  return CompositeSpace(std::move(comps), std::move(joint));
}

TEST(CompositeSpace, JointConcatenatesParameters) {
  const auto cs = two_component_space();
  EXPECT_EQ(cs.component_count(), 2u);
  EXPECT_EQ(cs.joint().dimension(), 3u);
  EXPECT_EQ(cs.joint().parameter(0).name(), "sim.procs");
  EXPECT_EQ(cs.joint().parameter(1).name(), "sim.ppn");
  EXPECT_EQ(cs.joint().parameter(2).name(), "ana.procs");
}

TEST(CompositeSpace, SliceRangesAreContiguous) {
  const auto cs = two_component_space();
  EXPECT_EQ(cs.slice_range(0), (std::pair<std::size_t, std::size_t>{0, 2}));
  EXPECT_EQ(cs.slice_range(1), (std::pair<std::size_t, std::size_t>{2, 3}));
}

TEST(CompositeSpace, SliceExtractsComponentConfig) {
  const auto cs = two_component_space();
  const Configuration joint{3, 2, 1};
  EXPECT_EQ(cs.slice(joint, 0), (Configuration{3, 2}));
  EXPECT_EQ(cs.slice(joint, 1), (Configuration{1}));
}

TEST(CompositeSpace, JoinInvertsSlice) {
  const auto cs = two_component_space();
  const Configuration joint{4, 1, 2};
  EXPECT_EQ(cs.join({cs.slice(joint, 0), cs.slice(joint, 1)}), joint);
}

TEST(CompositeSpace, JoinRejectsWrongPartCount) {
  const auto cs = two_component_space();
  EXPECT_THROW(cs.join({{1, 1}}), ceal::PreconditionError);
}

TEST(CompositeSpace, JointValidityEnforcesComponentConstraints) {
  const auto cs = two_component_space();
  EXPECT_TRUE(cs.joint().is_valid({2, 2, 1}));
  EXPECT_FALSE(cs.joint().is_valid({1, 2, 1}));  // sim: procs < ppn
}

TEST(CompositeSpace, JointValidityEnforcesWorkflowConstraint) {
  const auto cs = two_component_space(
      [](const Configuration& joint) { return joint[0] + joint[2] <= 5; });
  EXPECT_TRUE(cs.joint().is_valid({4, 1, 1}));
  EXPECT_FALSE(cs.joint().is_valid({4, 1, 2}));
}

TEST(CompositeSpace, RandomValidSatisfiesEverything) {
  const auto cs = two_component_space(
      [](const Configuration& joint) { return joint[0] + joint[2] <= 5; });
  ceal::Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    const auto c = cs.joint().random_valid(rng);
    EXPECT_GE(c[0], c[1]);
    EXPECT_LE(c[0] + c[2], 5);
  }
}

TEST(CompositeSpace, SurvivesMove) {
  // The joint constraint shares state with the composite; a moved-from
  // composite must not dangle it.
  auto cs = two_component_space();
  const CompositeSpace moved = std::move(cs);
  EXPECT_TRUE(moved.joint().is_valid({2, 2, 1}));
  EXPECT_FALSE(moved.joint().is_valid({1, 2, 1}));
  EXPECT_EQ(moved.slice({3, 1, 2}, 1), (Configuration{2}));
}

TEST(CompositeSpace, ComponentAccessors) {
  const auto cs = two_component_space();
  EXPECT_EQ(cs.component_name(0), "sim");
  EXPECT_EQ(cs.component_name(1), "ana");
  EXPECT_EQ(cs.component_space(1).dimension(), 1u);
  EXPECT_THROW(cs.component_name(2), ceal::PreconditionError);
}

TEST(CompositeSpace, RequiresAtLeastOneComponent) {
  EXPECT_THROW(CompositeSpace({}), ceal::PreconditionError);
}

}  // namespace
}  // namespace ceal::config
