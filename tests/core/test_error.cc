#include "core/error.h"

#include <gtest/gtest.h>

#include <string>

namespace ceal {
namespace {

TEST(Error, ExpectPassesOnTrue) {
  EXPECT_NO_THROW(CEAL_EXPECT(1 + 1 == 2));
  EXPECT_NO_THROW(CEAL_EXPECT_MSG(true, "never shown"));
}

TEST(Error, ExpectThrowsPreconditionOnFalse) {
  EXPECT_THROW(CEAL_EXPECT(1 == 2), PreconditionError);
}

TEST(Error, EnsureThrowsInvariantOnFalse) {
  EXPECT_THROW(CEAL_ENSURE(false), InvariantError);
  EXPECT_NO_THROW(CEAL_ENSURE(true));
}

TEST(Error, MessagesCarryExpressionAndLocation) {
  try {
    CEAL_EXPECT_MSG(2 < 1, "two is not less than one");
    FAIL() << "should have thrown";
  } catch (const PreconditionError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("2 < 1"), std::string::npos);
    EXPECT_NE(what.find("test_error.cc"), std::string::npos);
    EXPECT_NE(what.find("two is not less than one"), std::string::npos);
  }
}

TEST(Error, InvariantMessageDistinctFromPrecondition) {
  try {
    CEAL_ENSURE_MSG(false, "broken state");
    FAIL() << "should have thrown";
  } catch (const InvariantError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("invariant failed"), std::string::npos);
    EXPECT_NE(what.find("broken state"), std::string::npos);
  }
}

TEST(Error, HierarchyAllowsGenericCatch) {
  // PreconditionError is an invalid_argument; InvariantError a logic_error.
  EXPECT_THROW(CEAL_EXPECT(false), std::invalid_argument);
  EXPECT_THROW(CEAL_ENSURE(false), std::logic_error);
}

TEST(Error, SideEffectsEvaluateExactlyOnce) {
  int calls = 0;
  const auto count = [&calls] {
    ++calls;
    return true;
  };
  CEAL_EXPECT(count());
  EXPECT_EQ(calls, 1);
}

}  // namespace
}  // namespace ceal
