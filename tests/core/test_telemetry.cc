#include "core/telemetry.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <fstream>
#include <iterator>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/error.h"
#include "core/flight_recorder.h"
#include "core/json.h"

namespace ceal::telemetry {
namespace {

/// Collects events in memory for assertions.
class RecordingSink final : public TraceSink {
 public:
  void write(const TraceEvent& event) override {
    lines.push_back(event.to_json().dump());
  }
  void flush() override { ++flushes; }

  std::vector<std::string> lines;
  int flushes = 0;
};

TEST(Telemetry, CountersAccumulateAndDefaultToZero) {
  Telemetry tel;
  EXPECT_EQ(tel.counter("measure.ok"), 0u);
  tel.count("measure.ok");
  tel.count("measure.ok", 3);
  EXPECT_EQ(tel.counter("measure.ok"), 4u);
  EXPECT_EQ(tel.counters().size(), 1u);
}

TEST(Telemetry, GaugesKeepTheLastValue) {
  Telemetry tel;
  tel.gauge("budget.remaining", 25.0);
  tel.gauge("budget.remaining", 7.0);
  ASSERT_EQ(tel.gauges().count("budget.remaining"), 1u);
  EXPECT_DOUBLE_EQ(tel.gauges().at("budget.remaining"), 7.0);
}

TEST(Telemetry, SpansAccumulateCountAndTotal) {
  Telemetry tel;
  tel.add_span("surrogate.fit", 0.5);
  tel.add_span("surrogate.fit", 0.25);
  const SpanStats stats = tel.span_stats("surrogate.fit");
  EXPECT_EQ(stats.count, 2u);
  EXPECT_DOUBLE_EQ(stats.total_s, 0.75);
  EXPECT_EQ(tel.span_stats("never").count, 0u);
}

TEST(Telemetry, EmitStampsMonotonicSequenceNumbers) {
  RecordingSink sink;
  Telemetry tel(&sink);
  tel.emit(TraceEvent("first"));
  tel.emit(TraceEvent("second"));
  ASSERT_EQ(sink.lines.size(), 2u);
  EXPECT_EQ(sink.lines[0], "{\"event\":\"first\",\"seq\":0}");
  EXPECT_EQ(sink.lines[1], "{\"event\":\"second\",\"seq\":1}");
}

TEST(Telemetry, EmitWithoutSinkIsDropped) {
  Telemetry tel;
  EXPECT_FALSE(tel.tracing());
  tel.emit(TraceEvent("lost"));  // must not crash
  tel.count("still.counts");
  EXPECT_EQ(tel.counter("still.counts"), 1u);
}

TEST(Telemetry, GaugeMaxKeepsTheHighWaterMark) {
  Telemetry tel;
  tel.gauge_max("pool.queue_depth.max", 3.0);
  tel.gauge_max("pool.queue_depth.max", 9.0);
  tel.gauge_max("pool.queue_depth.max", 5.0);
  EXPECT_DOUBLE_EQ(tel.gauges().at("pool.queue_depth.max"), 9.0);
}

// The thread-safety contract (telemetry.h header): one Telemetry shared
// by any number of concurrent writers loses no updates, and concurrent
// emit() stamps unique, dense sequence numbers. Run under the sanitizer
// stages of run_tier1.sh (asan/ubsan, and tsan with --with-tsan) this is
// also the data-race probe for the sharded accumulators.
TEST(Telemetry, ConcurrentWritersLoseNothing) {
  constexpr std::size_t kThreads = 8;
  constexpr std::uint64_t kOpsPerThread = 2000;
  RecordingSink sink;
  Telemetry tel(&sink);

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tel, t] {
      // Mix shared names (every shard contended) with per-thread names.
      const std::string own = "thread." + std::to_string(t);
      for (std::uint64_t i = 0; i < kOpsPerThread; ++i) {
        tel.count("stress.shared");
        tel.count(own);
        tel.add_span("stress.span", 0.001);
        tel.gauge_max("stress.peak", static_cast<double>(i));
        if (i % 100 == 0) {
          TraceEvent event("stress.tick");
          event.field("thread", static_cast<std::uint64_t>(t));
          tel.emit(std::move(event));
        }
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(tel.counter("stress.shared"), kThreads * kOpsPerThread);
  for (std::size_t t = 0; t < kThreads; ++t) {
    EXPECT_EQ(tel.counter("thread." + std::to_string(t)), kOpsPerThread);
  }
  const SpanStats span = tel.span_stats("stress.span");
  EXPECT_EQ(span.count, kThreads * kOpsPerThread);
  EXPECT_NEAR(span.total_s, 0.001 * static_cast<double>(span.count), 1e-6);
  EXPECT_DOUBLE_EQ(tel.gauges().at("stress.peak"),
                   static_cast<double>(kOpsPerThread - 1));

  // Every emitted event carries a distinct seq, and together they are
  // dense: 0..n-1 with no gaps (nothing was dropped or double-stamped).
  std::set<std::int64_t> seqs;
  for (const auto& line : sink.lines) {
    seqs.insert(json::Value::parse(line).at("seq").as_int());
  }
  ASSERT_EQ(sink.lines.size(), kThreads * (kOpsPerThread / 100));
  EXPECT_EQ(seqs.size(), sink.lines.size());
  EXPECT_EQ(*seqs.begin(), 0);
  EXPECT_EQ(*seqs.rbegin(),
            static_cast<std::int64_t>(sink.lines.size()) - 1);
}

TEST(BufferTraceSinkTest, KeepsEventsInEmissionOrder) {
  BufferTraceSink buffer;
  Telemetry tel(&buffer);
  for (int i = 0; i < 5; ++i) {
    TraceEvent event("buffered");
    event.field("i", i);
    tel.emit(std::move(event));
  }
  ASSERT_EQ(buffer.size(), 5u);
  for (std::size_t i = 0; i < buffer.events().size(); ++i) {
    const json::Value v = buffer.events()[i].to_json();
    EXPECT_EQ(v.at("i").as_int(), static_cast<std::int64_t>(i));
    EXPECT_EQ(v.at("seq").as_int(), static_cast<std::int64_t>(i));
  }
  buffer.clear();
  EXPECT_EQ(buffer.size(), 0u);
}

TEST(Telemetry, MergeAddsAccumulatorsAndReplaysBufferedEvents) {
  RecordingSink parent_sink;
  Telemetry parent(&parent_sink);
  parent.count("shared.counter", 2);
  parent.add_span("shared.span", 0.5);
  parent.gauge("g", 1.0);
  parent.emit(TraceEvent("parent.before"));  // takes seq 0

  BufferTraceSink buffer;
  Telemetry child(&buffer);
  child.count("shared.counter", 3);
  child.count("child.only");
  child.add_span("shared.span", 0.25);
  child.gauge("g", 7.0);
  child.emit(TraceEvent("child.a"));
  child.emit(TraceEvent("child.b"));

  parent.merge(child, buffer.events());

  EXPECT_EQ(parent.counter("shared.counter"), 5u);
  EXPECT_EQ(parent.counter("child.only"), 1u);
  const SpanStats span = parent.span_stats("shared.span");
  EXPECT_EQ(span.count, 2u);
  EXPECT_DOUBLE_EQ(span.total_s, 0.75);
  EXPECT_DOUBLE_EQ(parent.gauges().at("g"), 7.0);  // child wins

  // The buffered events were replayed through the parent in order and
  // re-stamped with the parent's sequence numbers.
  ASSERT_EQ(parent_sink.lines.size(), 3u);
  EXPECT_EQ(parent_sink.lines[1], "{\"event\":\"child.a\",\"seq\":1}");
  EXPECT_EQ(parent_sink.lines[2], "{\"event\":\"child.b\",\"seq\":2}");
}

TEST(Telemetry, MergeWithoutEventsOnlyFoldsAccumulators) {
  Telemetry parent;
  Telemetry child;
  child.count("c", 4);
  parent.merge(child);
  EXPECT_EQ(parent.counter("c"), 4u);
}

TEST(TraceEventTest, FieldsSerialiseInOrderWithTimingLast) {
  TraceEvent event("ceal.iteration");
  event.field("iteration", std::uint64_t{3})
      .field("model", "high")
      .field("switched", true)
      .field("value", 1.5)
      .timing("fit_s", 0.25);
  EXPECT_EQ(event.to_json().dump(),
            "{\"event\":\"ceal.iteration\",\"iteration\":3,"
            "\"model\":\"high\",\"switched\":true,\"value\":1.5,"
            "\"timing\":{\"fit_s\":0.25}}");
}

TEST(TraceEventTest, SpanFieldsBecomeArrays) {
  const std::vector<std::size_t> batch{4, 2, 9};
  const std::vector<double> values{1.5, 2.0};
  TraceEvent event("x");
  event.field("batch", std::span<const std::size_t>(batch))
      .field("values", std::span<const double>(values));
  EXPECT_EQ(event.to_json().dump(),
            "{\"event\":\"x\",\"batch\":[4,2,9],\"values\":[1.5,2]}");
}

TEST(JsonlTraceSinkTest, WritesOneEscapedLinePerEvent) {
  std::ostringstream os;
  {
    JsonlTraceSink sink(os);
    TraceEvent event("note");
    event.field("text", "line1\nline2 \"quoted\"");
    sink.write(event);
  }
  EXPECT_EQ(os.str(),
            "{\"event\":\"note\",\"text\":\"line1\\nline2 "
            "\\\"quoted\\\"\"}\n");
}

TEST(JsonlTraceSinkTest, FileSinkFlushesOnDestruction) {
  const std::string path = testing::TempDir() + "telemetry_flush.jsonl";
  {
    JsonlTraceSink sink(path);
    Telemetry tel(&sink);
    tel.emit(TraceEvent("a"));
    tel.emit(TraceEvent("b"));
  }  // destruction must leave both lines on disk
  std::ifstream in(path);
  std::string line;
  std::vector<std::string> lines;
  while (std::getline(in, line)) lines.push_back(line);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(json::Value::parse(lines[0]).at("event").as_string(), "a");
  EXPECT_EQ(json::Value::parse(lines[1]).at("event").as_string(), "b");
}

TEST(JsonlTraceSinkTest, UnwritablePathThrows) {
  EXPECT_THROW(JsonlTraceSink("/nonexistent-dir/trace.jsonl"),
               PreconditionError);
}

TEST(NullTraceSinkTest, SwallowsEverything) {
  NullTraceSink sink;
  Telemetry tel(&sink);
  EXPECT_TRUE(tel.tracing());
  TraceEvent event("dropped");
  event.field("n", 1);
  tel.emit(std::move(event));  // must not crash or emit anywhere
}

TEST(MultiTraceSinkTest, FansOutToEverySinkInOrder) {
  RecordingSink a, b;
  MultiTraceSink multi({&a, &b});
  Telemetry tel(&multi);
  tel.emit(TraceEvent("both"));
  multi.flush();
  ASSERT_EQ(a.lines.size(), 1u);
  ASSERT_EQ(b.lines.size(), 1u);
  EXPECT_EQ(a.lines[0], b.lines[0]);
  EXPECT_EQ(a.flushes, 1);
  EXPECT_EQ(b.flushes, 1);
}

TEST(ScopedSpanTest, RecordsOnceAndIsIdempotent) {
  Telemetry tel;
  ScopedSpan span(&tel, "work");
  const double first = span.stop();
  const double second = span.stop();
  EXPECT_GE(first, 0.0);
  EXPECT_EQ(first, second);
  EXPECT_EQ(tel.span_stats("work").count, 1u);
}

TEST(ScopedSpanTest, DestructionRecordsUnstoppedSpan) {
  Telemetry tel;
  { ScopedSpan span(&tel, "scoped"); }
  EXPECT_EQ(tel.span_stats("scoped").count, 1u);
}

TEST(ScopedSpanTest, NullTelemetryIsANoOp) {
  ScopedSpan span(nullptr, "ignored");
  EXPECT_EQ(span.stop(), 0.0);
}

TEST(Telemetry, SummaryEventKeepsWallclockUnderTiming) {
  Telemetry tel;
  tel.count("measure.ok", 5);
  tel.gauge("budget.remaining", 3.0);
  tel.add_span("surrogate.fit", 0.5);
  const json::Value summary = tel.summary_event().to_json();
  EXPECT_EQ(summary.at("event").as_string(), "telemetry.summary");
  EXPECT_EQ(summary.at("measure.ok").as_int(), 5);
  EXPECT_DOUBLE_EQ(summary.at("budget.remaining").as_double(), 3.0);
  EXPECT_EQ(summary.at("surrogate.fit.count").as_int(), 1);
  // The only wall-clock value lives under `timing`; stripping it must
  // leave a deterministic event.
  EXPECT_DOUBLE_EQ(summary.at("timing").at("surrogate.fit.total_s")
                       .as_double(),
                   0.5);
  json::Value stripped = summary;
  stripped.remove_recursive("timing");
  EXPECT_FALSE(stripped.contains("timing"));
}

TEST(Telemetry, SummaryTableListsEveryMetric) {
  Telemetry tel;
  tel.count("measure.ok", 2);
  tel.gauge("g", 1.0);
  tel.add_span("s", 0.1);
  std::ostringstream os;
  os << tel.summary_table();
  const std::string out = os.str();
  EXPECT_NE(out.find("measure.ok"), std::string::npos);
  EXPECT_NE(out.find("counter"), std::string::npos);
  EXPECT_NE(out.find("gauge"), std::string::npos);
  EXPECT_NE(out.find("span"), std::string::npos);
}


// --- Histograms ---

TEST(Telemetry, HistogramObservationsAccumulateExactStats) {
  Telemetry tel;
  tel.observe("measure.attempts", 1.0);
  tel.observe("measure.attempts", 2.0);
  tel.observe("measure.attempts", 4.0);
  const HistogramStats stats = tel.histogram_stats("measure.attempts");
  EXPECT_EQ(stats.count, 3u);
  EXPECT_DOUBLE_EQ(stats.sum, 7.0);
  EXPECT_DOUBLE_EQ(stats.min, 1.0);
  EXPECT_DOUBLE_EQ(stats.max, 4.0);
  EXPECT_EQ(stats.buckets.size(), kHistogramBuckets);
  const double p50 = stats.quantile(0.5);
  EXPECT_GE(p50, 1.0);
  EXPECT_LE(p50, 4.0);
  EXPECT_EQ(tel.histograms().size(), 1u);
}

TEST(Telemetry, HistogramUnknownNameIsEmpty) {
  Telemetry tel;
  const HistogramStats stats = tel.histogram_stats("never.observed");
  EXPECT_EQ(stats.count, 0u);
  EXPECT_TRUE(stats.buckets.empty());
}

TEST(Telemetry, HistogramRejectsNonFiniteObservations) {
  Telemetry tel;
  EXPECT_THROW(tel.observe("h", std::numeric_limits<double>::infinity()),
               PreconditionError);
  EXPECT_THROW(tel.observe("h", std::numeric_limits<double>::quiet_NaN()),
               PreconditionError);
}

TEST(Telemetry, HistogramEightThreadStressKeepsExactCountAndSum) {
  // Integer-valued observations sum exactly in a double, so the stress
  // test can assert bitwise-exact count and sum across 8 writers.
  Telemetry tel;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&tel, t] {
      for (int i = 0; i < kPerThread; ++i) {
        tel.observe("stress", static_cast<double>(1 + (t + i) % 7));
        tel.observe("stress.other", 2.0);
      }
    });
  }
  for (auto& w : workers) w.join();
  const HistogramStats stats = tel.histogram_stats("stress");
  EXPECT_EQ(stats.count,
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  double expected_sum = 0.0;
  std::uint64_t bucketed = 0;
  for (int t = 0; t < kThreads; ++t)
    for (int i = 0; i < kPerThread; ++i)
      expected_sum += static_cast<double>(1 + (t + i) % 7);
  EXPECT_DOUBLE_EQ(stats.sum, expected_sum);
  for (std::uint64_t n : stats.buckets) bucketed += n;
  EXPECT_EQ(bucketed, stats.count);
  EXPECT_EQ(tel.histogram_stats("stress.other").count,
            static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(Telemetry, HistogramMergeIsAssociativeAndMatchesSerial) {
  // The same observations fed serially, or split over children merged
  // in either grouping, must land on identical stats (integer values,
  // so even the double sum is exact under any order).
  const std::vector<double> values{1, 3, 3, 7, 20, 100, 5000, 2, 2, 41};
  Telemetry serial;
  for (double v : values) serial.observe("h", v);

  Telemetry a, b, c;
  for (std::size_t i = 0; i < values.size(); ++i) {
    (i % 3 == 0 ? a : i % 3 == 1 ? b : c).observe("h", values[i]);
  }
  // (a <- b) <- c
  Telemetry left;
  for (std::size_t i = 0; i < values.size(); i += 3)
    left.observe("h", values[i]);
  left.merge(b, {});
  left.merge(c, {});
  // a <- (b <- c)
  Telemetry right;
  for (std::size_t i = 0; i < values.size(); i += 3)
    right.observe("h", values[i]);
  Telemetry bc;
  bc.merge(b, {});
  bc.merge(c, {});
  right.merge(bc, {});

  const HistogramStats expect = serial.histogram_stats("h");
  for (const Telemetry* tel : {&left, &right}) {
    const HistogramStats got = tel->histogram_stats("h");
    EXPECT_EQ(got.count, expect.count);
    EXPECT_DOUBLE_EQ(got.sum, expect.sum);
    EXPECT_DOUBLE_EQ(got.min, expect.min);
    EXPECT_DOUBLE_EQ(got.max, expect.max);
    EXPECT_EQ(got.buckets, expect.buckets);
  }
}

TEST(Telemetry, SummaryEventNestsTimingHistogramsUnderTiming) {
  Telemetry tel;
  tel.observe("measure.attempts", 2.0);
  tel.observe("timing.serve.step_s", 0.25);
  const json::Value summary = tel.summary_event().to_json();
  // Deterministic histogram stats are plain fields...
  EXPECT_EQ(summary.at("hist.measure.attempts.count").as_int(), 1);
  EXPECT_DOUBLE_EQ(summary.at("hist.measure.attempts.sum").as_double(),
                   2.0);
  EXPECT_TRUE(summary.contains("hist.measure.attempts.p99"));
  // ...while every stat of a timing.* histogram lives under `timing`,
  // so the determinism gates strip it with the other wall clocks.
  EXPECT_FALSE(summary.contains("hist.timing.serve.step_s.count"));
  const json::Value& timing = summary.at("timing");
  EXPECT_TRUE(timing.contains("hist.timing.serve.step_s.count"));
  EXPECT_TRUE(timing.contains("hist.timing.serve.step_s.p50"));
  json::Value stripped = summary;
  stripped.remove_recursive("timing");
  EXPECT_FALSE(stripped.dump().find("step_s") != std::string::npos);
}

TEST(ScopedHistogramTimerTest, RecordsOnceAndNullIsANoOp) {
  Telemetry tel;
  {
    ScopedHistogramTimer timer(&tel, "timing.unit_s");
    const double elapsed = timer.stop();
    EXPECT_GE(elapsed, 0.0);
    EXPECT_EQ(timer.stop(), elapsed);  // idempotent: no second record
  }
  EXPECT_EQ(tel.histogram_stats("timing.unit_s").count, 1u);
  ScopedHistogramTimer null_timer(nullptr, "ignored");
  EXPECT_EQ(null_timer.stop(), 0.0);
}

// --- Flush propagation ---

TEST(MultiTraceSinkTest, FlushPropagatesToEverySink) {
  RecordingSink a, b;
  MultiTraceSink multi({&a, &b});
  multi.flush();
  EXPECT_EQ(a.flushes, 1);
  EXPECT_EQ(b.flushes, 1);
}

TEST(JsonlTraceSinkTest, FlushMakesLinesVisibleBeforeDestruction) {
  const std::string path =
      testing::TempDir() + "/telemetry_flush_test.jsonl";
  JsonlTraceSink sink(path);
  TraceEvent event("flush.probe");
  event.field("n", std::uint64_t{1});
  sink.write(event);
  sink.flush();
  // Read while the sink is still alive: flush alone must have pushed
  // the bytes to the file.
  std::ifstream in(path);
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_NE(line.find("flush.probe"), std::string::npos);
}

// --- Causal spans ---

json::Value parsed(const std::string& line) {
  return json::Value::parse(line);
}

TEST(SpanIdHexTest, Renders16LowercaseHexDigits) {
  EXPECT_EQ(span_id_hex(0), "0000000000000000");
  EXPECT_EQ(span_id_hex(0xdeadbeef), "00000000deadbeef");
  EXPECT_EQ(span_id_hex(~std::uint64_t{0}), "ffffffffffffffff");
}

TEST(Mix64Test, IsDeterministicAndWellMixed) {
  EXPECT_EQ(mix64(42), mix64(42));
  EXPECT_NE(mix64(42), mix64(43));
  EXPECT_NE(mix64(0), 0u);  // the finalizer moves even zero
}

TEST(CausalSpanTest, EmitsPairedBeginEndWithHierarchicalIds) {
  RecordingSink sink;
  Telemetry tel(&sink);
  tel.seed_trace(42);
  {
    ScopedCausalSpan outer(&tel, "outer");
    ScopedCausalSpan inner(&tel, "inner");
  }
  ASSERT_EQ(sink.lines.size(), 4u);
  const json::Value outer_b = parsed(sink.lines[0]);
  const json::Value inner_b = parsed(sink.lines[1]);
  const json::Value inner_e = parsed(sink.lines[2]);
  const json::Value outer_e = parsed(sink.lines[3]);
  EXPECT_EQ(outer_b.at("event").as_string(), "span.begin");
  EXPECT_EQ(outer_b.at("span").as_string(), "outer");
  EXPECT_EQ(inner_e.at("event").as_string(), "span.end");
  EXPECT_EQ(inner_e.at("span").as_string(), "inner");
  EXPECT_EQ(outer_e.at("span").as_string(), "outer");
  // ids are 16-hex-digit strings; the inner span parents on the outer.
  EXPECT_EQ(outer_b.at("span_id").as_string().size(), 16u);
  EXPECT_EQ(inner_b.at("parent_span_id").as_string(),
            outer_b.at("span_id").as_string());
  EXPECT_EQ(inner_e.at("span_id").as_string(),
            inner_b.at("span_id").as_string());
  // All four share the seed-derived trace id, and the end events carry
  // wall-clock only under `timing`.
  for (const auto& line : sink.lines) {
    const json::Value v = parsed(line);
    EXPECT_EQ(v.at("trace_id").as_string(),
              span_id_hex(mix64(42)));
    EXPECT_TRUE(v.contains("timing"));
  }
  // Metrics stay compatible with ScopedSpan: both spans accumulated.
  EXPECT_EQ(tel.span_stats("outer").count, 1u);
  EXPECT_EQ(tel.span_stats("inner").count, 1u);
}

TEST(CausalSpanTest, SeededTracesAreByteIdenticalModuloTiming) {
  const auto run = [] {
    RecordingSink sink;
    Telemetry tel(&sink);
    tel.seed_trace(7);
    {
      ScopedCausalSpan a(&tel, "step");
      { ScopedCausalSpan b(&tel, "fit"); }
      { ScopedCausalSpan c(&tel, "predict"); }
    }
    std::vector<std::string> out;
    for (const auto& line : sink.lines) {
      json::Value v = json::Value::parse(line);
      v.remove_recursive("timing");
      out.push_back(v.dump());
    }
    return out;
  };
  EXPECT_EQ(run(), run());
}

TEST(CausalSpanTest, AdoptedStrandsGetDistinctDeterministicIds) {
  RecordingSink sink;
  Telemetry parent(&sink);
  parent.seed_trace(9);
  TraceContext root;
  {
    ScopedCausalSpan span(&parent, "evaluate");
    root = span.context();
  }
  const auto strand_first_id = [&](std::uint64_t strand) {
    RecordingSink child_sink;
    Telemetry child(&child_sink);
    child.adopt_trace(root, strand);
    { ScopedCausalSpan s(&child, "replication"); }
    return parsed(child_sink.lines[0]);
  };
  const json::Value a = strand_first_id(1);
  const json::Value b = strand_first_id(2);
  const json::Value a_again = strand_first_id(1);
  // Same trace, distinct id namespaces per strand, reproducible.
  EXPECT_EQ(a.at("trace_id").as_string(), b.at("trace_id").as_string());
  EXPECT_NE(a.at("span_id").as_string(), b.at("span_id").as_string());
  EXPECT_EQ(a.at("span_id").as_string(),
            a_again.at("span_id").as_string());
  // A strand's root span parents on the adopted context.
  EXPECT_EQ(a.at("parent_span_id").as_string(),
            span_id_hex(root.span_id));
  EXPECT_EQ(a.at("strand").as_int(), 1);
  EXPECT_EQ(b.at("strand").as_int(), 2);
}

TEST(CausalSpanTest, UnobservedTelemetryChargesSpanWithoutEvents) {
  Telemetry tel;  // no sink, no recorder
  EXPECT_FALSE(tel.observed());
  { ScopedCausalSpan span(&tel, "quiet"); }
  EXPECT_EQ(tel.span_stats("quiet").count, 1u);
  ScopedCausalSpan null_span(nullptr, "ignored");
  EXPECT_EQ(null_span.stop(), 0.0);
}

// --- Flight recorder ---

TEST(FlightRecorderTest, RingKeepsTheMostRecentEvents) {
  FlightRecorder rec(3);
  for (int i = 0; i < 5; ++i) {
    rec.record("{\"n\":" + std::to_string(i) + "}");
  }
  EXPECT_EQ(rec.recorded(), 5u);
  EXPECT_EQ(rec.size(), 3u);
  EXPECT_EQ(rec.dropped(), 2u);
  const auto lines = rec.snapshot();
  ASSERT_EQ(lines.size(), 3u);  // oldest-first: 2, 3, 4
  EXPECT_EQ(lines[0], "{\"n\":2}");
  EXPECT_EQ(lines[2], "{\"n\":4}");
}

TEST(FlightRecorderTest, CapturesTelemetryEventsWithoutASink) {
  FlightRecorder rec(8);
  Telemetry tel;
  tel.set_flight_recorder(&rec);
  EXPECT_TRUE(tel.observed());
  tel.seed_trace(5);
  { ScopedCausalSpan span(&tel, "recorded"); }
  const auto lines = rec.snapshot();
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(parsed(lines[0]).at("event").as_string(), "span.begin");
  EXPECT_EQ(parsed(lines[1]).at("event").as_string(), "span.end");
}

TEST(FlightRecorderTest, RecorderLinesMatchSinkLinesExactly) {
  FlightRecorder rec(16);
  RecordingSink sink;
  Telemetry tel(&sink);
  tel.set_flight_recorder(&rec);
  tel.seed_trace(3);
  {
    ScopedCausalSpan a(&tel, "one");
    ScopedCausalSpan b(&tel, "two");
  }
  EXPECT_EQ(rec.snapshot(), sink.lines);
}

TEST(FlightRecorderTest, OversizeLinesBecomeAStubEvent) {
  FlightRecorder rec(2);
  rec.record(std::string(8192, 'x'));
  const auto lines = rec.snapshot();
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("flight.oversize"), std::string::npos);
}

TEST(FlightRecorderTest, RegistryDumpNamesEveryRecorder) {
  FlightRecorder rec(4);
  rec.record("{\"event\":\"probe\"}");
  register_crash_recorder(&rec, "test session!");  // label is sanitized
  const std::string dump = dump_registered_recorders();
  unregister_crash_recorder(&rec);
  EXPECT_NE(dump.find("\"event\":\"flight.recorder\""), std::string::npos);
  EXPECT_NE(dump.find("test_session_"), std::string::npos);
  EXPECT_NE(dump.find("{\"event\":\"probe\"}"), std::string::npos);
  // After unregistering, the recorder no longer appears.
  EXPECT_EQ(dump_registered_recorders().find("test_session_"),
            std::string::npos);
}

TEST(JsonlTraceSinkTest, FsyncOnFlushKeepsLinesReadable) {
  const std::string path =
      testing::TempDir() + "/telemetry_fsync_test.jsonl";
  JsonlTraceSink sink(path, /*fsync_on_flush=*/true);
  TraceEvent event("durable.probe");
  sink.write(event);
  sink.flush();
  // The torn-tail contract: after flush the file ends at a complete
  // line, never mid-record.
  std::ifstream in(path);
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  ASSERT_FALSE(contents.empty());
  EXPECT_EQ(contents.back(), '\n');
  EXPECT_NE(contents.find("durable.probe"), std::string::npos);
}

}  // namespace
}  // namespace ceal::telemetry
