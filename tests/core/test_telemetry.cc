#include "core/telemetry.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/error.h"
#include "core/json.h"

namespace ceal::telemetry {
namespace {

/// Collects events in memory for assertions.
class RecordingSink final : public TraceSink {
 public:
  void write(const TraceEvent& event) override {
    lines.push_back(event.to_json().dump());
  }
  void flush() override { ++flushes; }

  std::vector<std::string> lines;
  int flushes = 0;
};

TEST(Telemetry, CountersAccumulateAndDefaultToZero) {
  Telemetry tel;
  EXPECT_EQ(tel.counter("measure.ok"), 0u);
  tel.count("measure.ok");
  tel.count("measure.ok", 3);
  EXPECT_EQ(tel.counter("measure.ok"), 4u);
  EXPECT_EQ(tel.counters().size(), 1u);
}

TEST(Telemetry, GaugesKeepTheLastValue) {
  Telemetry tel;
  tel.gauge("budget.remaining", 25.0);
  tel.gauge("budget.remaining", 7.0);
  ASSERT_EQ(tel.gauges().count("budget.remaining"), 1u);
  EXPECT_DOUBLE_EQ(tel.gauges().at("budget.remaining"), 7.0);
}

TEST(Telemetry, SpansAccumulateCountAndTotal) {
  Telemetry tel;
  tel.add_span("surrogate.fit", 0.5);
  tel.add_span("surrogate.fit", 0.25);
  const SpanStats stats = tel.span_stats("surrogate.fit");
  EXPECT_EQ(stats.count, 2u);
  EXPECT_DOUBLE_EQ(stats.total_s, 0.75);
  EXPECT_EQ(tel.span_stats("never").count, 0u);
}

TEST(Telemetry, EmitStampsMonotonicSequenceNumbers) {
  RecordingSink sink;
  Telemetry tel(&sink);
  tel.emit(TraceEvent("first"));
  tel.emit(TraceEvent("second"));
  ASSERT_EQ(sink.lines.size(), 2u);
  EXPECT_EQ(sink.lines[0], "{\"event\":\"first\",\"seq\":0}");
  EXPECT_EQ(sink.lines[1], "{\"event\":\"second\",\"seq\":1}");
}

TEST(Telemetry, EmitWithoutSinkIsDropped) {
  Telemetry tel;
  EXPECT_FALSE(tel.tracing());
  tel.emit(TraceEvent("lost"));  // must not crash
  tel.count("still.counts");
  EXPECT_EQ(tel.counter("still.counts"), 1u);
}

TEST(TraceEventTest, FieldsSerialiseInOrderWithTimingLast) {
  TraceEvent event("ceal.iteration");
  event.field("iteration", std::uint64_t{3})
      .field("model", "high")
      .field("switched", true)
      .field("value", 1.5)
      .timing("fit_s", 0.25);
  EXPECT_EQ(event.to_json().dump(),
            "{\"event\":\"ceal.iteration\",\"iteration\":3,"
            "\"model\":\"high\",\"switched\":true,\"value\":1.5,"
            "\"timing\":{\"fit_s\":0.25}}");
}

TEST(TraceEventTest, SpanFieldsBecomeArrays) {
  const std::vector<std::size_t> batch{4, 2, 9};
  const std::vector<double> values{1.5, 2.0};
  TraceEvent event("x");
  event.field("batch", std::span<const std::size_t>(batch))
      .field("values", std::span<const double>(values));
  EXPECT_EQ(event.to_json().dump(),
            "{\"event\":\"x\",\"batch\":[4,2,9],\"values\":[1.5,2]}");
}

TEST(JsonlTraceSinkTest, WritesOneEscapedLinePerEvent) {
  std::ostringstream os;
  {
    JsonlTraceSink sink(os);
    TraceEvent event("note");
    event.field("text", "line1\nline2 \"quoted\"");
    sink.write(event);
  }
  EXPECT_EQ(os.str(),
            "{\"event\":\"note\",\"text\":\"line1\\nline2 "
            "\\\"quoted\\\"\"}\n");
}

TEST(JsonlTraceSinkTest, FileSinkFlushesOnDestruction) {
  const std::string path = testing::TempDir() + "telemetry_flush.jsonl";
  {
    JsonlTraceSink sink(path);
    Telemetry tel(&sink);
    tel.emit(TraceEvent("a"));
    tel.emit(TraceEvent("b"));
  }  // destruction must leave both lines on disk
  std::ifstream in(path);
  std::string line;
  std::vector<std::string> lines;
  while (std::getline(in, line)) lines.push_back(line);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(json::Value::parse(lines[0]).at("event").as_string(), "a");
  EXPECT_EQ(json::Value::parse(lines[1]).at("event").as_string(), "b");
}

TEST(JsonlTraceSinkTest, UnwritablePathThrows) {
  EXPECT_THROW(JsonlTraceSink("/nonexistent-dir/trace.jsonl"),
               PreconditionError);
}

TEST(NullTraceSinkTest, SwallowsEverything) {
  NullTraceSink sink;
  Telemetry tel(&sink);
  EXPECT_TRUE(tel.tracing());
  TraceEvent event("dropped");
  event.field("n", 1);
  tel.emit(std::move(event));  // must not crash or emit anywhere
}

TEST(MultiTraceSinkTest, FansOutToEverySinkInOrder) {
  RecordingSink a, b;
  MultiTraceSink multi({&a, &b});
  Telemetry tel(&multi);
  tel.emit(TraceEvent("both"));
  multi.flush();
  ASSERT_EQ(a.lines.size(), 1u);
  ASSERT_EQ(b.lines.size(), 1u);
  EXPECT_EQ(a.lines[0], b.lines[0]);
  EXPECT_EQ(a.flushes, 1);
  EXPECT_EQ(b.flushes, 1);
}

TEST(ScopedSpanTest, RecordsOnceAndIsIdempotent) {
  Telemetry tel;
  ScopedSpan span(&tel, "work");
  const double first = span.stop();
  const double second = span.stop();
  EXPECT_GE(first, 0.0);
  EXPECT_EQ(first, second);
  EXPECT_EQ(tel.span_stats("work").count, 1u);
}

TEST(ScopedSpanTest, DestructionRecordsUnstoppedSpan) {
  Telemetry tel;
  { ScopedSpan span(&tel, "scoped"); }
  EXPECT_EQ(tel.span_stats("scoped").count, 1u);
}

TEST(ScopedSpanTest, NullTelemetryIsANoOp) {
  ScopedSpan span(nullptr, "ignored");
  EXPECT_EQ(span.stop(), 0.0);
}

TEST(Telemetry, SummaryEventKeepsWallclockUnderTiming) {
  Telemetry tel;
  tel.count("measure.ok", 5);
  tel.gauge("budget.remaining", 3.0);
  tel.add_span("surrogate.fit", 0.5);
  const json::Value summary = tel.summary_event().to_json();
  EXPECT_EQ(summary.at("event").as_string(), "telemetry.summary");
  EXPECT_EQ(summary.at("measure.ok").as_int(), 5);
  EXPECT_DOUBLE_EQ(summary.at("budget.remaining").as_double(), 3.0);
  EXPECT_EQ(summary.at("surrogate.fit.count").as_int(), 1);
  // The only wall-clock value lives under `timing`; stripping it must
  // leave a deterministic event.
  EXPECT_DOUBLE_EQ(summary.at("timing").at("surrogate.fit.total_s")
                       .as_double(),
                   0.5);
  json::Value stripped = summary;
  stripped.remove_recursive("timing");
  EXPECT_FALSE(stripped.contains("timing"));
}

TEST(Telemetry, SummaryTableListsEveryMetric) {
  Telemetry tel;
  tel.count("measure.ok", 2);
  tel.gauge("g", 1.0);
  tel.add_span("s", 0.1);
  std::ostringstream os;
  os << tel.summary_table();
  const std::string out = os.str();
  EXPECT_NE(out.find("measure.ok"), std::string::npos);
  EXPECT_NE(out.find("counter"), std::string::npos);
  EXPECT_NE(out.find("gauge"), std::string::npos);
  EXPECT_NE(out.find("span"), std::string::npos);
}

}  // namespace
}  // namespace ceal::telemetry
