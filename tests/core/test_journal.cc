// The journal reader's failure model, held exhaustively: a torn tail
// (SIGKILL mid-append) is recovered by truncation, every other defect in
// a complete record — bit flips, wrong length, bad sequence numbers —
// raises JournalError. The sweeps below try truncation at every byte
// offset and a flip of every bit of a journal; the reader must recover
// or fail cleanly on each one, never crash, loop, or accept a corrupt
// record.
#include "core/journal.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "core/json.h"

namespace ceal {
namespace {

json::Value payload(std::uint64_t i) {
  json::Value v = json::Value::object();
  v.set("kind", json::Value::string("test"));
  v.set("i", json::Value::number(i));
  v.set("data", json::Value::string("abc*def"));  // '*' flips to '\n'
  return v;
}

/// A well-formed journal of `n` records as raw bytes.
std::string sample_journal(std::uint64_t n) {
  std::string text;
  for (std::uint64_t i = 0; i < n; ++i) {
    text += frame_journal_record(i, payload(i).dump());
  }
  return text;
}

class JournalFileTest : public ::testing::Test {
 protected:
  JournalFileTest() : path_(::testing::TempDir() + "ceal_test.cealj") {
    std::remove(path_.c_str());
  }
  void TearDown() override { std::remove(path_.c_str()); }

  void write_raw(const std::string& bytes) {
    std::ofstream os(path_, std::ios::binary | std::ios::trunc);
    os << bytes;
  }

  std::string path_;
};

TEST(Crc32, MatchesKnownVectors) {
  // Reference values from the IEEE 802.3 / zlib polynomial.
  EXPECT_EQ(crc32(""), 0x00000000u);
  EXPECT_EQ(crc32("123456789"), 0xcbf43926u);
  EXPECT_EQ(crc32("The quick brown fox jumps over the lazy dog"),
            0x414fa339u);
}

TEST(JournalText, EmptyInputIsAValidEmptyJournal) {
  const auto result = read_journal_text("", "mem");
  EXPECT_TRUE(result.records.empty());
  EXPECT_EQ(result.valid_bytes, 0u);
  EXPECT_FALSE(result.torn_tail);
}

TEST(JournalText, RoundTripsEveryRecordInOrder) {
  const std::string text = sample_journal(5);
  const auto result = read_journal_text(text, "mem");
  ASSERT_EQ(result.records.size(), 5u);
  EXPECT_EQ(result.valid_bytes, text.size());
  EXPECT_FALSE(result.torn_tail);
  for (std::uint64_t i = 0; i < 5; ++i) {
    EXPECT_EQ(result.records[i].dump(), payload(i).dump());
  }
}

TEST(JournalText, TruncationAtEveryByteOffsetRecoversThePrefix) {
  // A journal cut at any byte is what SIGKILL leaves behind. The reader
  // must hand back exactly the records that fit completely and flag the
  // remainder as a torn tail — and never throw.
  const std::string text = sample_journal(4);
  // Record boundaries: offsets just after each '\n'.
  std::vector<std::size_t> boundaries{0};
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (text[i] == '\n') boundaries.push_back(i + 1);
  }
  for (std::size_t cut = 0; cut <= text.size(); ++cut) {
    SCOPED_TRACE("cut at byte " + std::to_string(cut));
    JournalReadResult result;
    ASSERT_NO_THROW(result = read_journal_text(text.substr(0, cut), "mem"));
    // Number of whole records before the cut.
    std::size_t whole = 0;
    while (whole + 1 < boundaries.size() && boundaries[whole + 1] <= cut) {
      ++whole;
    }
    EXPECT_EQ(result.records.size(), whole);
    EXPECT_EQ(result.valid_bytes, boundaries[whole]);
    EXPECT_EQ(result.torn_tail, cut != boundaries[whole]);
    for (std::size_t i = 0; i < whole; ++i) {
      EXPECT_EQ(result.records[i].dump(), payload(i).dump());
    }
  }
}

TEST(JournalText, EverySingleBitFlipIsRejectedOrTruncated) {
  // Flip every bit of every byte. The only flip the reader cannot
  // distinguish from a crash is one that destroys the final newline
  // (the tail then looks torn and is dropped); every other flip lands
  // in a complete line and must raise JournalError — CRC for payload
  // bytes, the structural checks for the frame head.
  const std::string text = sample_journal(3);
  const auto intact = read_journal_text(text, "mem");
  ASSERT_EQ(intact.records.size(), 3u);
  for (std::size_t byte = 0; byte < text.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      SCOPED_TRACE("flip byte " + std::to_string(byte) + " bit " +
                   std::to_string(bit));
      std::string corrupt = text;
      corrupt[byte] = static_cast<char>(corrupt[byte] ^ (1 << bit));
      if (byte == text.size() - 1) {
        // The final newline became another byte: indistinguishable from
        // a torn tail, so the last record is dropped, not accepted.
        JournalReadResult result;
        ASSERT_NO_THROW(result = read_journal_text(corrupt, "mem"));
        EXPECT_EQ(result.records.size(), 2u);
        EXPECT_TRUE(result.torn_tail);
      } else {
        EXPECT_THROW(read_journal_text(corrupt, "mem"), JournalError);
      }
    }
  }
}

TEST(JournalText, RejectsDuplicateSequenceNumbers) {
  const std::string p = payload(0).dump();
  const std::string text =
      frame_journal_record(0, p) + frame_journal_record(0, p);
  try {
    read_journal_text(text, "mem");
    FAIL() << "duplicate sequence number accepted";
  } catch (const JournalError& e) {
    EXPECT_NE(std::string(e.what()).find("mem:record 2"), std::string::npos)
        << e.what();
  }
}

TEST(JournalText, RejectsOutOfOrderSequenceNumbers) {
  const std::string text = frame_journal_record(1, payload(0).dump());
  EXPECT_THROW(read_journal_text(text, "mem"), JournalError);
  const std::string swapped = frame_journal_record(1, payload(0).dump()) +
                              frame_journal_record(0, payload(1).dump());
  EXPECT_THROW(read_journal_text(swapped, "mem"), JournalError);
}

TEST(JournalText, RejectsOversizedDeclaredLength) {
  // A declared length past the line's actual payload must not make the
  // reader read out of bounds or swallow the next record.
  const std::string text = "J1 0 999 00000000 {}\n";
  EXPECT_THROW(read_journal_text(text, "mem"), JournalError);
  const std::string huge = "J1 0 99999999999999999999 00000000 {}\n";
  EXPECT_THROW(read_journal_text(huge, "mem"), JournalError);
}

TEST(JournalText, RejectsNonObjectPayloads) {
  // Structurally valid frame, but the payload is not a JSON object.
  const std::string text = frame_journal_record(0, "[1,2,3]");
  EXPECT_THROW(read_journal_text(text, "mem"), JournalError);
  const std::string garbage = frame_journal_record(0, "not json");
  EXPECT_THROW(read_journal_text(garbage, "mem"), JournalError);
}

TEST(JournalText, ErrorMessagesAreOneLineWithRecordNumber) {
  std::string corrupt = sample_journal(2);
  corrupt[corrupt.size() / 2] ^= 0x40;  // somewhere in record 2
  try {
    read_journal_text(corrupt, "session.cealj");
    FAIL() << "corrupt journal accepted";
  } catch (const JournalError& e) {
    const std::string what = e.what();
    EXPECT_EQ(what.find('\n'), std::string::npos) << what;
    EXPECT_EQ(what.find("session.cealj:record "), 0u) << what;
  }
}

TEST_F(JournalFileTest, WriterProducesTheCanonicalFraming) {
  {
    JournalWriter writer(path_);
    for (std::uint64_t i = 0; i < 3; ++i) {
      EXPECT_EQ(writer.append(payload(i)), i);
    }
    EXPECT_EQ(writer.records(), 3u);
  }
  std::ifstream is(path_, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(is)),
                    std::istreambuf_iterator<char>());
  EXPECT_EQ(bytes, sample_journal(3));
}

TEST_F(JournalFileTest, ResumedWriterContinuesTheSequence) {
  { JournalWriter writer(path_); writer.append(payload(0)); }
  {
    const auto loaded = read_journal_file(path_);
    JournalWriter writer(path_, loaded.records.size());
    writer.append(payload(1));
    writer.append(payload(2));
  }
  const auto result = read_journal_file(path_);
  ASSERT_EQ(result.records.size(), 3u);
  EXPECT_FALSE(result.torn_tail);
}

TEST_F(JournalFileTest, TornTailIsDroppedAndTruncatable) {
  const std::string text = sample_journal(2);
  write_raw(text + "J1 2 17 0abc");  // partial third record, no newline
  const auto result = read_journal_file(path_);
  EXPECT_EQ(result.records.size(), 2u);
  EXPECT_TRUE(result.torn_tail);
  EXPECT_EQ(result.valid_bytes, text.size());
  truncate_journal_file(path_, result.valid_bytes);
  const auto clean = read_journal_file(path_);
  EXPECT_EQ(clean.records.size(), 2u);
  EXPECT_FALSE(clean.torn_tail);
}

TEST_F(JournalFileTest, MissingFileThrows) {
  EXPECT_THROW(read_journal_file(path_ + ".absent"), JournalError);
}

}  // namespace
}  // namespace ceal
