#include "core/stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/error.h"

namespace ceal {
namespace {

TEST(Stats, MeanOfKnownValues) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
}

TEST(Stats, MeanRejectsEmpty) {
  const std::vector<double> xs;
  EXPECT_THROW(mean(xs), PreconditionError);
}

TEST(Stats, VarianceAndStddev) {
  const std::vector<double> xs{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_NEAR(variance(xs), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(stddev(xs), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(Stats, MedianOddAndEven) {
  const std::vector<double> odd{5.0, 1.0, 3.0};
  EXPECT_DOUBLE_EQ(median(odd), 3.0);
  const std::vector<double> even{4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(median(even), 2.5);
}

TEST(Stats, QuantileEndpointsAndMiddle) {
  const std::vector<double> xs{10.0, 20.0, 30.0, 40.0, 50.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 50.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 30.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.25), 20.0);
}

TEST(Stats, QuantileInterpolatesLinearly) {
  const std::vector<double> xs{0.0, 10.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.3), 3.0);
}

TEST(Stats, QuantileRejectsOutOfRangeQ) {
  const std::vector<double> xs{1.0};
  EXPECT_THROW(quantile(xs, -0.1), PreconditionError);
  EXPECT_THROW(quantile(xs, 1.1), PreconditionError);
}

TEST(Stats, AbsolutePercentageError) {
  EXPECT_DOUBLE_EQ(absolute_percentage_error(100.0, 110.0), 0.1);
  EXPECT_DOUBLE_EQ(absolute_percentage_error(100.0, 90.0), 0.1);
  EXPECT_THROW(absolute_percentage_error(0.0, 1.0), PreconditionError);
}

TEST(Stats, MdapeIsMedianOfApesInPercent) {
  const std::vector<double> actual{100.0, 100.0, 100.0};
  const std::vector<double> pred{110.0, 120.0, 150.0};  // APEs 10, 20, 50
  EXPECT_DOUBLE_EQ(mdape_percent(actual, pred), 20.0);
}

TEST(Stats, MdapeRejectsSizeMismatch) {
  const std::vector<double> a{1.0, 2.0};
  const std::vector<double> b{1.0};
  EXPECT_THROW(mdape_percent(a, b), PreconditionError);
}

TEST(Stats, RmseOfKnownValues) {
  const std::vector<double> a{1.0, 2.0, 3.0};
  const std::vector<double> b{2.0, 2.0, 5.0};  // errors 1, 0, 2
  EXPECT_NEAR(rmse(a, b), std::sqrt(5.0 / 3.0), 1e-12);
}

TEST(Stats, ArgsortIsStableAscending) {
  const std::vector<double> xs{3.0, 1.0, 2.0, 1.0};
  const auto order = argsort(xs);
  const std::vector<std::size_t> expected{1, 3, 2, 0};
  EXPECT_EQ(order, expected);
}

TEST(Stats, RanksInvertArgsort) {
  const std::vector<double> xs{30.0, 10.0, 20.0};
  const auto r = ranks(xs);
  EXPECT_EQ(r[0], 2u);
  EXPECT_EQ(r[1], 0u);
  EXPECT_EQ(r[2], 1u);
}

TEST(Stats, PearsonPerfectCorrelation) {
  const std::vector<double> a{1.0, 2.0, 3.0, 4.0};
  const std::vector<double> b{2.0, 4.0, 6.0, 8.0};
  EXPECT_NEAR(pearson(a, b), 1.0, 1e-12);
}

TEST(Stats, PearsonPerfectAnticorrelation) {
  const std::vector<double> a{1.0, 2.0, 3.0};
  const std::vector<double> b{3.0, 2.0, 1.0};
  EXPECT_NEAR(pearson(a, b), -1.0, 1e-12);
}

TEST(Stats, PearsonRejectsConstantInput) {
  const std::vector<double> a{1.0, 1.0, 1.0};
  const std::vector<double> b{1.0, 2.0, 3.0};
  EXPECT_THROW(pearson(a, b), PreconditionError);
}

TEST(Stats, SpearmanIsRankCorrelation) {
  // Monotone but non-linear relation: Spearman 1, Pearson < 1.
  const std::vector<double> a{1.0, 2.0, 3.0, 4.0, 5.0};
  const std::vector<double> b{1.0, 8.0, 27.0, 64.0, 125.0};
  EXPECT_NEAR(spearman(a, b), 1.0, 1e-12);
  EXPECT_LT(pearson(a, b), 1.0);
}

}  // namespace
}  // namespace ceal
