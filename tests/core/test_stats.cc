#include "core/stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "core/error.h"

namespace ceal {
namespace {

TEST(Stats, MeanOfKnownValues) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
}

TEST(Stats, MeanRejectsEmpty) {
  const std::vector<double> xs;
  EXPECT_THROW(mean(xs), PreconditionError);
}

TEST(Stats, VarianceAndStddev) {
  const std::vector<double> xs{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_NEAR(variance(xs), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(stddev(xs), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(Stats, MedianOddAndEven) {
  const std::vector<double> odd{5.0, 1.0, 3.0};
  EXPECT_DOUBLE_EQ(median(odd), 3.0);
  const std::vector<double> even{4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(median(even), 2.5);
}

TEST(Stats, QuantileEndpointsAndMiddle) {
  const std::vector<double> xs{10.0, 20.0, 30.0, 40.0, 50.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 50.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 30.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.25), 20.0);
}

TEST(Stats, QuantileInterpolatesLinearly) {
  const std::vector<double> xs{0.0, 10.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.3), 3.0);
}

TEST(Stats, QuantileRejectsOutOfRangeQ) {
  const std::vector<double> xs{1.0};
  EXPECT_THROW(quantile(xs, -0.1), PreconditionError);
  EXPECT_THROW(quantile(xs, 1.1), PreconditionError);
}

TEST(Stats, AbsolutePercentageError) {
  EXPECT_DOUBLE_EQ(absolute_percentage_error(100.0, 110.0), 0.1);
  EXPECT_DOUBLE_EQ(absolute_percentage_error(100.0, 90.0), 0.1);
  EXPECT_THROW(absolute_percentage_error(0.0, 1.0), PreconditionError);
}

TEST(Stats, MdapeIsMedianOfApesInPercent) {
  const std::vector<double> actual{100.0, 100.0, 100.0};
  const std::vector<double> pred{110.0, 120.0, 150.0};  // APEs 10, 20, 50
  EXPECT_DOUBLE_EQ(mdape_percent(actual, pred), 20.0);
}

TEST(Stats, MdapeRejectsSizeMismatch) {
  const std::vector<double> a{1.0, 2.0};
  const std::vector<double> b{1.0};
  EXPECT_THROW(mdape_percent(a, b), PreconditionError);
}

TEST(Stats, RmseOfKnownValues) {
  const std::vector<double> a{1.0, 2.0, 3.0};
  const std::vector<double> b{2.0, 2.0, 5.0};  // errors 1, 0, 2
  EXPECT_NEAR(rmse(a, b), std::sqrt(5.0 / 3.0), 1e-12);
}

TEST(Stats, ArgsortIsStableAscending) {
  const std::vector<double> xs{3.0, 1.0, 2.0, 1.0};
  const auto order = argsort(xs);
  const std::vector<std::size_t> expected{1, 3, 2, 0};
  EXPECT_EQ(order, expected);
}

TEST(Stats, RanksInvertArgsort) {
  const std::vector<double> xs{30.0, 10.0, 20.0};
  const auto r = ranks(xs);
  EXPECT_EQ(r[0], 2u);
  EXPECT_EQ(r[1], 0u);
  EXPECT_EQ(r[2], 1u);
}

TEST(Stats, PearsonPerfectCorrelation) {
  const std::vector<double> a{1.0, 2.0, 3.0, 4.0};
  const std::vector<double> b{2.0, 4.0, 6.0, 8.0};
  EXPECT_NEAR(pearson(a, b), 1.0, 1e-12);
}

TEST(Stats, PearsonPerfectAnticorrelation) {
  const std::vector<double> a{1.0, 2.0, 3.0};
  const std::vector<double> b{3.0, 2.0, 1.0};
  EXPECT_NEAR(pearson(a, b), -1.0, 1e-12);
}

TEST(Stats, PearsonRejectsConstantInput) {
  const std::vector<double> a{1.0, 1.0, 1.0};
  const std::vector<double> b{1.0, 2.0, 3.0};
  EXPECT_THROW(pearson(a, b), PreconditionError);
}

TEST(Stats, SpearmanIsRankCorrelation) {
  // Monotone but non-linear relation: Spearman 1, Pearson < 1.
  const std::vector<double> a{1.0, 2.0, 3.0, 4.0, 5.0};
  const std::vector<double> b{1.0, 8.0, 27.0, 64.0, 125.0};
  EXPECT_NEAR(spearman(a, b), 1.0, 1e-12);
  EXPECT_LT(pearson(a, b), 1.0);
}


// --- histogram_quantile ---

TEST(Stats, HistogramQuantileSingleBucketReturnsClampedEdge) {
  // All mass in one bucket with one sample: the observed value itself.
  const std::vector<std::uint64_t> counts{0, 1, 0};
  const std::vector<double> bounds{1.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(histogram_quantile(counts, bounds, 0.5, 1.7, 1.7), 1.7);
}

TEST(Stats, HistogramQuantileInterpolatesWithinBucket) {
  // Four samples in bucket (1, 2]: positions 0..3 spread linearly over
  // the clamped bucket [min, max] = [1.2, 1.8].
  const std::vector<std::uint64_t> counts{0, 4};
  const std::vector<double> bounds{1.0, 2.0};
  EXPECT_DOUBLE_EQ(histogram_quantile(counts, bounds, 0.0, 1.2, 1.8), 1.2);
  EXPECT_DOUBLE_EQ(histogram_quantile(counts, bounds, 1.0, 1.8, 1.8), 1.8);
  const double mid = histogram_quantile(counts, bounds, 0.5, 1.2, 1.8);
  EXPECT_GT(mid, 1.2);
  EXPECT_LT(mid, 1.8);
}

TEST(Stats, HistogramQuantileWalksBucketsByRank) {
  // 10 samples below 1, 10 in (1, 2]: the median rank (pos = 9.5) sits
  // astride the bucket edge; p90 is firmly in the second bucket.
  const std::vector<std::uint64_t> counts{10, 10};
  const std::vector<double> bounds{1.0, 2.0};
  const double p90 = histogram_quantile(counts, bounds, 0.9, 0.1, 1.9);
  EXPECT_GT(p90, 1.0);
  EXPECT_LE(p90, 1.9);
}

TEST(Stats, HistogramQuantileAcceptsOverflowBucket) {
  // counts may carry one extra overflow bucket beyond the bounds; its
  // upper edge is the observed max.
  const std::vector<std::uint64_t> counts{1, 1, 2};
  const std::vector<double> bounds{1.0, 2.0};
  const double p99 = histogram_quantile(counts, bounds, 0.99, 0.5, 7.0);
  EXPECT_GT(p99, 2.0);
  EXPECT_LE(p99, 7.0);
}

TEST(Stats, HistogramQuantileBracketsSampleQuantileWithinABucket) {
  // Bucketing loses in-bucket detail but never more than one bucket
  // width: the histogram quantile at rank pos = q*(n-1) stays within a
  // 10^(1/4) log-spaced bucket of the order statistics bracketing pos.
  const std::vector<double> sample{0.011, 0.013, 0.02, 0.04, 0.05,
                                   0.08,  0.2,   0.3,  0.9,  2.5};
  std::vector<double> bounds;
  for (int k = -8; k <= 4; ++k) bounds.push_back(std::pow(10.0, k / 4.0));
  std::vector<std::uint64_t> counts(bounds.size(), 0);
  for (double x : sample) {
    std::size_t i = 0;
    while (i < bounds.size() && x > bounds[i]) ++i;
    ++counts[i < counts.size() ? i : counts.size() - 1];
  }
  const double factor = std::pow(10.0, 0.25);
  for (double q : {0.0, 0.5, 0.9, 0.99, 1.0}) {
    const double pos = q * static_cast<double>(sample.size() - 1);
    const double lo = sample[static_cast<std::size_t>(std::floor(pos))];
    const double hi = sample[static_cast<std::size_t>(std::ceil(pos))];
    const double approx =
        histogram_quantile(counts, bounds, q, 0.011, 2.5);
    EXPECT_GE(approx, lo / factor) << "q=" << q;
    EXPECT_LE(approx, hi * factor) << "q=" << q;
  }
}

TEST(Stats, HistogramQuantileRejectsBadInput) {
  const std::vector<std::uint64_t> counts{1};
  const std::vector<double> bounds{1.0};
  const std::vector<std::uint64_t> empty;
  const std::vector<std::uint64_t> zero{0};
  EXPECT_THROW(histogram_quantile(empty, bounds, 0.5, 0.0, 1.0),
               PreconditionError);
  EXPECT_THROW(histogram_quantile(zero, bounds, 0.5, 0.0, 1.0),
               PreconditionError);
  EXPECT_THROW(histogram_quantile(counts, bounds, -0.1, 0.0, 1.0),
               PreconditionError);
  EXPECT_THROW(histogram_quantile(counts, bounds, 1.1, 0.0, 1.0),
               PreconditionError);
  // counts must be bounds-sized or bounds+1 (overflow).
  const std::vector<std::uint64_t> too_many{1, 1, 1};
  EXPECT_THROW(histogram_quantile(too_many, bounds, 0.5, 0.0, 1.0),
               PreconditionError);
}

}  // namespace
}  // namespace ceal
