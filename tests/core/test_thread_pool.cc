#include "core/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace ceal {
namespace {

TEST(ThreadPool, DefaultHasAtLeastOneWorker) {
  ThreadPool pool;
  EXPECT_GE(pool.thread_count(), 1u);
}

TEST(ThreadPool, SubmitReturnsValue) {
  ThreadPool pool(2);
  auto fut = pool.submit([] { return 41 + 1; });
  EXPECT_EQ(fut.get(), 42);
}

TEST(ThreadPool, SubmitPropagatesExceptions) {
  ThreadPool pool(2);
  auto fut = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(fut.get(), std::runtime_error);
}

TEST(ThreadPool, ManySubmittedTasksAllRun) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.submit([&counter] { ++counter; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(0, hits.size(),
                    [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForEmptyRangeIsNoop) {
  ThreadPool pool(2);
  int calls = 0;
  pool.parallel_for(5, 5, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ThreadPool, ParallelForNonzeroBegin) {
  ThreadPool pool(2);
  std::atomic<long> sum{0};
  pool.parallel_for(10, 20,
                    [&](std::size_t i) { sum += static_cast<long>(i); });
  EXPECT_EQ(sum.load(), 145);  // 10 + 11 + ... + 19
}

TEST(ThreadPool, ParallelForPropagatesException) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(0, 100,
                                 [](std::size_t i) {
                                   if (i == 57) {
                                     throw std::runtime_error("bad index");
                                   }
                                 }),
               std::runtime_error);
}

TEST(ThreadPool, SingleWorkerPoolStillCompletes) {
  ThreadPool pool(1);
  std::vector<int> out(100, 0);
  pool.parallel_for(0, out.size(), [&](std::size_t i) {
    out[i] = static_cast<int>(i) * 2;
  });
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], static_cast<int>(i) * 2);
  }
}

TEST(ThreadPool, NestedSubmitFromParallelForDoesNotDeadlock) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  // parallel_for runs chunks on workers plus the caller; tasks submitted
  // from inside must still drain because the caller participates.
  pool.parallel_for(0, 4, [&](std::size_t) { ++counter; });
  auto fut = pool.submit([&counter] { ++counter; });
  fut.get();
  EXPECT_EQ(counter.load(), 5);
}

}  // namespace
}  // namespace ceal
