#include "core/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <functional>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/telemetry.h"

namespace ceal {
namespace {

TEST(ThreadPool, DefaultHasAtLeastOneWorker) {
  ThreadPool pool;
  EXPECT_GE(pool.thread_count(), 1u);
}

TEST(ThreadPool, SubmitReturnsValue) {
  ThreadPool pool(2);
  auto fut = pool.submit([] { return 41 + 1; });
  EXPECT_EQ(fut.get(), 42);
}

TEST(ThreadPool, SubmitPropagatesExceptions) {
  ThreadPool pool(2);
  auto fut = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(fut.get(), std::runtime_error);
}

TEST(ThreadPool, ManySubmittedTasksAllRun) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.submit([&counter] { ++counter; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(0, hits.size(),
                    [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForEmptyRangeIsNoop) {
  ThreadPool pool(2);
  int calls = 0;
  pool.parallel_for(5, 5, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ThreadPool, ParallelForNonzeroBegin) {
  ThreadPool pool(2);
  std::atomic<long> sum{0};
  pool.parallel_for(10, 20,
                    [&](std::size_t i) { sum += static_cast<long>(i); });
  EXPECT_EQ(sum.load(), 145);  // 10 + 11 + ... + 19
}

TEST(ThreadPool, ParallelForPropagatesException) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(0, 100,
                                 [](std::size_t i) {
                                   if (i == 57) {
                                     throw std::runtime_error("bad index");
                                   }
                                 }),
               std::runtime_error);
}

TEST(ThreadPool, SingleWorkerPoolStillCompletes) {
  ThreadPool pool(1);
  std::vector<int> out(100, 0);
  pool.parallel_for(0, out.size(), [&](std::size_t i) {
    out[i] = static_cast<int>(i) * 2;
  });
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], static_cast<int>(i) * 2);
  }
}

// A task's future completes inside the task body; the worker records
// per-thread stats and the pool.task span just after. Poll briefly for
// that bookkeeping instead of racing it.
std::uint64_t tasks_ran(const ThreadPool& pool) {
  std::uint64_t ran = 0;
  for (const auto& stats : pool.thread_stats()) ran += stats.tasks;
  return ran;
}

void wait_for(const std::function<bool()>& done) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (!done() && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

TEST(ThreadPool, InstrumentationCountsEveryTask) {
  constexpr std::uint64_t kTasks = 64;
  telemetry::Telemetry tel;  // dedicated instance (thread_pool.h header)
  ThreadPool pool(3);
  pool.set_telemetry(&tel);
  EXPECT_EQ(pool.telemetry(), &tel);

  std::vector<std::future<void>> futures;
  futures.reserve(kTasks);
  for (std::uint64_t i = 0; i < kTasks; ++i) {
    futures.push_back(pool.submit([] {}));
  }
  for (auto& f : futures) f.get();
  wait_for([&] {
    return tasks_ran(pool) == kTasks &&
           tel.span_stats("pool.task").count == kTasks;
  });

  EXPECT_EQ(pool.tasks_submitted(), kTasks);
  EXPECT_EQ(tel.counter("pool.tasks"), kTasks);
  EXPECT_EQ(tel.span_stats("pool.task").count, kTasks);
  // The queue-depth high-water gauge saw at least the deepest backlog,
  // which is at least 1 (the first submit observes its own entry).
  EXPECT_GE(tel.gauges().at("pool.queue_depth.max"), 1.0);
  EXPECT_GE(pool.max_queue_depth(), 1u);

  // Per-thread busy stats cover exactly the submitted tasks.
  std::uint64_t ran = 0;
  for (const auto& stats : pool.thread_stats()) {
    ran += stats.tasks;
    EXPECT_GE(stats.busy_s, 0.0);
  }
  EXPECT_EQ(ran, kTasks);
}

TEST(ThreadPool, UninstrumentedPoolStillTracksItsOwnStats) {
  ThreadPool pool(2);
  EXPECT_EQ(pool.telemetry(), nullptr);
  auto fut = pool.submit([] { return 1; });
  EXPECT_EQ(fut.get(), 1);
  EXPECT_EQ(pool.tasks_submitted(), 1u);
  wait_for([&] { return tasks_ran(pool) == 1; });
  EXPECT_EQ(tasks_ran(pool), 1u);
}

TEST(ThreadPool, NestedSubmitFromParallelForDoesNotDeadlock) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  // parallel_for runs chunks on workers plus the caller; tasks submitted
  // from inside must still drain because the caller participates.
  pool.parallel_for(0, 4, [&](std::size_t) { ++counter; });
  auto fut = pool.submit([&counter] { ++counter; });
  fut.get();
  EXPECT_EQ(counter.load(), 5);
}

}  // namespace
}  // namespace ceal
