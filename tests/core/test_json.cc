#include "core/json.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>

#include "core/error.h"

namespace ceal::json {
namespace {

TEST(JsonValue, BuildersProduceExpectedKinds) {
  EXPECT_TRUE(Value().is_null());
  EXPECT_EQ(Value::boolean(true).kind(), Value::Kind::kBool);
  EXPECT_EQ(Value::number(1.5).kind(), Value::Kind::kNumber);
  EXPECT_EQ(Value::string("s").kind(), Value::Kind::kString);
  EXPECT_TRUE(Value::array().is_array());
  EXPECT_TRUE(Value::object().is_object());
}

TEST(JsonValue, NumberFormattingIsShortestRoundTrip) {
  EXPECT_EQ(Value::number(1.0).dump(), "1");
  EXPECT_EQ(Value::number(0.1).dump(), "0.1");
  EXPECT_EQ(Value::number(std::int64_t{-42}).dump(), "-42");
  EXPECT_EQ(Value::number(std::uint64_t{18446744073709551615ULL}).dump(),
            "18446744073709551615");
  const double v = 0.20805078000194044;
  EXPECT_EQ(std::stod(Value::number(v).dump()), v);
}

TEST(JsonValue, NonFiniteNumbersAreRejected) {
  EXPECT_THROW(Value::number(std::numeric_limits<double>::infinity()),
               PreconditionError);
  EXPECT_THROW(Value::number(std::numeric_limits<double>::quiet_NaN()),
               PreconditionError);
}

TEST(JsonValue, ObjectKeepsInsertionOrderAndSetReplacesInPlace) {
  Value obj = Value::object();
  obj.set("z", Value::number(std::int64_t{1}));
  obj.set("a", Value::number(std::int64_t{2}));
  obj.set("z", Value::number(std::int64_t{3}));  // replaced, stays first
  EXPECT_EQ(obj.dump(), "{\"z\":3,\"a\":2}");
  EXPECT_TRUE(obj.contains("a"));
  EXPECT_FALSE(obj.contains("b"));
  EXPECT_EQ(obj.at("z").as_int(), 3);
  EXPECT_EQ(obj.find("missing"), nullptr);
  EXPECT_THROW(obj.at("missing"), PreconditionError);
}

TEST(JsonValue, ArrayInterface) {
  Value arr = Value::array();
  arr.push(Value::number(std::int64_t{7}));
  arr.push(Value::string("x"));
  EXPECT_EQ(arr.size(), 2u);
  EXPECT_EQ(arr.at(0).as_int(), 7);
  EXPECT_EQ(arr.at(1).as_string(), "x");
  EXPECT_EQ(arr.dump(), "[7,\"x\"]");
}

TEST(JsonValue, StringEscapingPolicy) {
  EXPECT_EQ(Value::string("a\"b\\c").dump(), "\"a\\\"b\\\\c\"");
  EXPECT_EQ(Value::string("\n\r\t\b\f").dump(), "\"\\n\\r\\t\\b\\f\"");
  EXPECT_EQ(Value::string(std::string(1, '\x01')).dump(), "\"\\u0001\"");
}

TEST(JsonValue, ParseRoundTripsWriterOutputByteExactly) {
  const std::string doc =
      "{\"event\":\"measure\",\"seq\":2,\"value\":319.82383270419905,"
      "\"flags\":[true,false,null],\"nested\":{\"k\":-1.5e-3}}";
  EXPECT_EQ(Value::parse(doc).dump(), doc);
}

TEST(JsonValue, ParserKeepsNumberLexemeVerbatim) {
  // 1.50 and 1.5 are the same double but different lexemes — the parser
  // must preserve the source bytes for the determinism comparison.
  EXPECT_EQ(Value::parse("1.50").dump(), "1.50");
  EXPECT_EQ(Value::parse("1e3").number_lexeme(), "1e3");
  EXPECT_DOUBLE_EQ(Value::parse("1e3").as_double(), 1000.0);
}

TEST(JsonValue, ParserDecodesEscapes) {
  const Value v = Value::parse("\"a\\u0041\\n\\/\"");
  EXPECT_EQ(v.as_string(), "aA\n/");
}

TEST(JsonValue, ParserRejectsMalformedInput) {
  EXPECT_THROW(Value::parse(""), PreconditionError);
  EXPECT_THROW(Value::parse("{"), PreconditionError);
  EXPECT_THROW(Value::parse("{\"a\":}"), PreconditionError);
  EXPECT_THROW(Value::parse("[1,]"), PreconditionError);
  EXPECT_THROW(Value::parse("tru"), PreconditionError);
  EXPECT_THROW(Value::parse("1 2"), PreconditionError);  // trailing garbage
  EXPECT_THROW(Value::parse("\"unterminated"), PreconditionError);
  EXPECT_THROW(Value::parse("\"\\u12ZZ\""), PreconditionError);
  EXPECT_THROW(Value::parse("\"\\u1234\""), PreconditionError);  // > 0xFF
  EXPECT_THROW(Value::parse("01x"), PreconditionError);
}

TEST(JsonValue, TypedAccessorsRejectKindMismatch) {
  EXPECT_THROW(Value::string("x").as_double(), PreconditionError);
  EXPECT_THROW(Value::number(1.0).as_string(), PreconditionError);
  EXPECT_THROW(Value::number(1.5).as_int(), PreconditionError);
  EXPECT_THROW(Value::object().at(std::size_t{0}), PreconditionError);
  EXPECT_THROW(Value::array().members(), PreconditionError);
}

TEST(JsonValue, RemoveRecursiveStripsKeyAtEveryDepth) {
  Value doc = Value::parse(
      "{\"a\":1,\"timing\":{\"x\":2},"
      "\"nested\":{\"timing\":{\"y\":3},\"keep\":4},"
      "\"list\":[{\"timing\":{}},{\"keep\":5}]}");
  doc.remove_recursive("timing");
  EXPECT_EQ(doc.dump(),
            "{\"a\":1,\"nested\":{\"keep\":4},\"list\":[{},{\"keep\":5}]}");
}

TEST(JsonValue, WhitespaceIsAcceptedBetweenTokens) {
  const Value v = Value::parse(" { \"a\" : [ 1 , 2 ] } ");
  EXPECT_EQ(v.dump(), "{\"a\":[1,2]}");
}

}  // namespace
}  // namespace ceal::json
