#include "core/table.h"

#include <gtest/gtest.h>

#include <sstream>

#include "core/error.h"

namespace ceal {
namespace {

TEST(Table, HeaderIsRequired) {
  EXPECT_THROW(Table(std::vector<std::string>{}), PreconditionError);
}

TEST(Table, RendersAlignedColumns) {
  Table t({"name", "value"});
  t.add_row({"a", "1"});
  t.add_row({"longer", "22"});
  std::ostringstream os;
  os << t;
  const std::string out = os.str();
  EXPECT_NE(out.find("name    value"), std::string::npos);
  EXPECT_NE(out.find("longer  22"), std::string::npos);
  EXPECT_NE(out.find("------"), std::string::npos);
}

TEST(Table, ShortRowsArePadded) {
  Table t({"a", "b", "c"});
  t.add_row({"x"});
  EXPECT_EQ(t.row_count(), 1u);
  std::ostringstream os;
  os << t;  // must not throw
  EXPECT_FALSE(os.str().empty());
}

TEST(Table, OverlongRowsAreRejected) {
  Table t({"a"});
  EXPECT_THROW(t.add_row({"x", "y"}), PreconditionError);
}

TEST(Table, NumFormatsWithPrecision) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(2.0, 0), "2");
  EXPECT_EQ(Table::num(-1.5, 1), "-1.5");
}

TEST(Table, ToCsvWritesHeaderAndRows) {
  Table t({"name", "value"});
  t.add_row({"a", "1"});
  t.add_row({"b", "2"});
  std::ostringstream os;
  t.to_csv(os);
  EXPECT_EQ(os.str(), "name,value\na,1\nb,2\n");
}

TEST(Table, ToCsvQuotesSpecialCells) {
  Table t({"name", "value"});
  t.add_row({"with,comma", "with \"quote\""});
  t.add_row({"with\nnewline", "plain"});
  std::ostringstream os;
  t.to_csv(os);
  EXPECT_EQ(os.str(),
            "name,value\n\"with,comma\",\"with \"\"quote\"\"\"\n"
            "\"with\nnewline\",plain\n");
}

// RFC 4180: a bare carriage return must be quoted too, or a cell like a
// hostile session id ("evil\r\nid") splits into two records on readers
// that accept lone-\r line endings.
TEST(Table, ToCsvQuotesCarriageReturns) {
  Table t({"id", "state"});
  t.add_row({"evil\r\nid", "running"});
  t.add_row({"bare\rreturn", "done"});
  std::ostringstream os;
  t.to_csv(os);
  EXPECT_EQ(os.str(),
            "id,state\n\"evil\r\nid\",running\n"
            "\"bare\rreturn\",done\n");
}

TEST(Table, ToCsvPadsShortRows) {
  Table t({"a", "b", "c"});
  t.add_row({"x"});
  std::ostringstream os;
  t.to_csv(os);
  EXPECT_EQ(os.str(), "a,b,c\nx,,\n");
}

TEST(Table, RowCountTracksRows) {
  Table t({"h"});
  EXPECT_EQ(t.row_count(), 0u);
  t.add_row({"1"});
  t.add_row({"2"});
  EXPECT_EQ(t.row_count(), 2u);
}

}  // namespace
}  // namespace ceal
