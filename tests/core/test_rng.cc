#include "core/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include "core/error.h"
#include "core/stats.h"

namespace ceal {
namespace {

TEST(SplitMix64, KnownSequenceIsDeterministic) {
  std::uint64_t s1 = 1234;
  std::uint64_t s2 = 1234;
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(splitmix64_next(s1), splitmix64_next(s2));
  }
}

TEST(Rng, SameSeedSameStream) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, UniformU64RespectsBound) {
  Rng rng(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 17ULL, 1000ULL}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.uniform_u64(bound), bound);
    }
  }
}

TEST(Rng, UniformU64RejectsZeroBound) {
  Rng rng(7);
  EXPECT_THROW(rng.uniform_u64(0), PreconditionError);
}

TEST(Rng, UniformIntCoversInclusiveRange) {
  Rng rng(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all five values should appear
}

TEST(Rng, Uniform01InHalfOpenInterval) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, Uniform01MeanIsApproximatelyHalf) {
  Rng rng(5);
  std::vector<double> xs(20000);
  for (auto& x : xs) x = rng.uniform01();
  EXPECT_NEAR(mean(xs), 0.5, 0.01);
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(17);
  std::vector<double> xs(40000);
  for (auto& x : xs) x = rng.normal();
  EXPECT_NEAR(mean(xs), 0.0, 0.02);
  EXPECT_NEAR(stddev(xs), 1.0, 0.02);
}

TEST(Rng, NormalWithParamsScalesAndShifts) {
  Rng rng(19);
  std::vector<double> xs(40000);
  for (auto& x : xs) x = rng.normal(10.0, 2.0);
  EXPECT_NEAR(mean(xs), 10.0, 0.05);
  EXPECT_NEAR(stddev(xs), 2.0, 0.05);
}

TEST(Rng, LognormalFactorHasMedianOne) {
  Rng rng(23);
  std::vector<double> xs(20001);
  for (auto& x : xs) x = rng.lognormal_factor(0.1);
  EXPECT_NEAR(median(xs), 1.0, 0.01);
  for (const double x : xs) EXPECT_GT(x, 0.0);
}

TEST(Rng, LognormalZeroSigmaIsExactlyOne) {
  Rng rng(29);
  EXPECT_DOUBLE_EQ(rng.lognormal_factor(0.0), 1.0);
}

TEST(Rng, BernoulliEdgesAreDeterministic) {
  Rng rng(31);
  EXPECT_FALSE(rng.bernoulli(0.0));
  EXPECT_TRUE(rng.bernoulli(1.0));
  EXPECT_FALSE(rng.bernoulli(-1.0));
  EXPECT_TRUE(rng.bernoulli(2.0));
}

TEST(Rng, BernoulliRateMatchesProbability) {
  Rng rng(37);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(Rng, PermutationIsAPermutation) {
  Rng rng(41);
  const auto p = rng.permutation(100);
  std::set<std::size_t> seen(p.begin(), p.end());
  EXPECT_EQ(seen.size(), 100u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 99u);
}

TEST(Rng, PermutationOfZeroAndOne) {
  Rng rng(43);
  EXPECT_TRUE(rng.permutation(0).empty());
  const auto one = rng.permutation(1);
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0], 0u);
}

TEST(Rng, SampleWithoutReplacementIsDistinct) {
  Rng rng(47);
  const auto s = rng.sample_without_replacement(50, 20);
  std::set<std::size_t> seen(s.begin(), s.end());
  EXPECT_EQ(seen.size(), 20u);
  for (const auto v : s) EXPECT_LT(v, 50u);
}

TEST(Rng, SampleWithoutReplacementFullSet) {
  Rng rng(53);
  const auto s = rng.sample_without_replacement(10, 10);
  std::set<std::size_t> seen(s.begin(), s.end());
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, SampleWithoutReplacementRejectsOversizedK) {
  Rng rng(59);
  EXPECT_THROW(rng.sample_without_replacement(5, 6), PreconditionError);
}

TEST(Rng, SplitStreamsAreDecorrelated) {
  Rng parent(61);
  Rng a = parent.split(0);
  Rng b = parent.split(1);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

}  // namespace
}  // namespace ceal
