#include "core/atomic_file.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <optional>

namespace ceal {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(is),
          std::istreambuf_iterator<char>()};
}

bool exists(const std::string& path) {
  std::ifstream is(path);
  return static_cast<bool>(is);
}

class AtomicFileTest : public ::testing::Test {
 protected:
  AtomicFileTest() : path_(::testing::TempDir() + "ceal_atomic_test.txt") {
    std::remove(path_.c_str());
    std::remove((path_ + ".tmp").c_str());
  }
  void TearDown() override {
    std::remove(path_.c_str());
    std::remove((path_ + ".tmp").c_str());
  }

  std::string path_;
};

TEST_F(AtomicFileTest, CommitPublishesTheFileAndRemovesTheTemp) {
  {
    AtomicFile file(path_);
    file.stream() << "hello\n";
    file.commit();
  }
  EXPECT_EQ(slurp(path_), "hello\n");
  EXPECT_FALSE(exists(path_ + ".tmp"));
}

TEST_F(AtomicFileTest, DestructionWithoutCommitLeavesNothing) {
  {
    AtomicFile file(path_);
    file.stream() << "half-written";
    // no commit: the error path / exception path
  }
  EXPECT_FALSE(exists(path_));
  EXPECT_FALSE(exists(path_ + ".tmp"));
}

TEST_F(AtomicFileTest, AbortedRewriteKeepsTheOldContents) {
  atomic_write_file(path_, "original");
  {
    AtomicFile file(path_);
    file.stream() << "replacement that never lands";
  }
  EXPECT_EQ(slurp(path_), "original");
  EXPECT_FALSE(exists(path_ + ".tmp"));
}

TEST_F(AtomicFileTest, CommitReplacesExistingContents) {
  atomic_write_file(path_, "old");
  atomic_write_file(path_, "new");
  EXPECT_EQ(slurp(path_), "new");
}

TEST_F(AtomicFileTest, CommitTwiceIsRejected) {
  AtomicFile file(path_);
  file.stream() << "x";
  file.commit();
  EXPECT_THROW(file.commit(), std::runtime_error);
}

TEST_F(AtomicFileTest, UnwritableDirectoryThrowsOnOpen) {
  EXPECT_THROW(AtomicFile("/nonexistent-dir/file.txt"), std::runtime_error);
}

}  // namespace
}  // namespace ceal
