#include "core/csv.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/error.h"

namespace ceal {
namespace {

class CsvTest : public ::testing::Test {
 protected:
  void TearDown() override { std::remove(path_.c_str()); }

  std::string read_back() const {
    std::ifstream in(path_);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
  }

  std::string path_ = ::testing::TempDir() + "ceal_csv_test.csv";
};

TEST_F(CsvTest, WritesHeaderAndRows) {
  {
    CsvWriter csv(path_, {"a", "b"});
    csv.add_row({"1", "2"});
    csv.add_row({"3", "4"});
    EXPECT_EQ(csv.rows_written(), 2u);
  }
  EXPECT_EQ(read_back(), "a,b\n1,2\n3,4\n");
}

TEST_F(CsvTest, EscapesCommasQuotesAndNewlines) {
  {
    CsvWriter csv(path_, {"x"});
    csv.add_row({"a,b"});
    csv.add_row({"quote\"inside"});
    csv.add_row({"line\nbreak"});
  }
  EXPECT_EQ(read_back(),
            "x\n\"a,b\"\n\"quote\"\"inside\"\n\"line\nbreak\"\n");
}

TEST_F(CsvTest, RejectsWidthMismatch) {
  CsvWriter csv(path_, {"a", "b"});
  EXPECT_THROW(csv.add_row({"only-one"}), PreconditionError);
}

TEST_F(CsvTest, RejectsEmptyHeader) {
  EXPECT_THROW(CsvWriter(path_, {}), PreconditionError);
}

TEST(Csv, UnwritablePathThrows) {
  EXPECT_THROW(CsvWriter("/nonexistent-dir/foo.csv", {"a"}),
               std::runtime_error);
}

}  // namespace
}  // namespace ceal
