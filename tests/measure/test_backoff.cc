// The shared retry schedule (core/backoff.h): deterministic per
// (policy, seed), exponential with a cap, jitter bounded, saturating
// past exhaustion. Both the Collector's virtual retry delays and the
// subprocess plane's worker-restart waits ride on these properties.
#include "core/backoff.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace ceal {
namespace {

std::vector<double> draw(Backoff& b, std::size_t n) {
  std::vector<double> out;
  for (std::size_t i = 0; i < n; ++i) out.push_back(b.next_delay_s());
  return out;
}

TEST(MeasureBackoff, SameSeedSameSchedule) {
  const BackoffPolicy policy;
  Backoff a(policy, 42), b(policy, 42);
  EXPECT_EQ(draw(a, 8), draw(b, 8));
}

TEST(MeasureBackoff, DifferentSeedsDecorrelate) {
  const BackoffPolicy policy;
  Backoff a(policy, 1), b(policy, 2);
  EXPECT_NE(draw(a, 8), draw(b, 8));
}

TEST(MeasureBackoff, ExponentialGrowthCappedWithoutJitter) {
  BackoffPolicy policy;
  policy.initial_s = 0.1;
  policy.multiplier = 2.0;
  policy.max_s = 0.5;
  policy.jitter = 0.0;
  Backoff b(policy, 7);
  EXPECT_DOUBLE_EQ(b.next_delay_s(), 0.1);
  EXPECT_DOUBLE_EQ(b.next_delay_s(), 0.2);
  EXPECT_DOUBLE_EQ(b.next_delay_s(), 0.4);
  EXPECT_DOUBLE_EQ(b.next_delay_s(), 0.5);  // capped
  EXPECT_DOUBLE_EQ(b.next_delay_s(), 0.5);  // saturates, never wraps
}

TEST(MeasureBackoff, JitterStaysWithinBounds) {
  BackoffPolicy policy;
  policy.initial_s = 0.05;
  policy.multiplier = 2.0;
  policy.max_s = 2.0;
  policy.jitter = 0.25;
  policy.max_retries = 64;
  Backoff b(policy, 99);
  double base = policy.initial_s;
  for (std::size_t k = 0; k < 32; ++k) {
    const double expected = std::min(base, policy.max_s);
    const double d = b.next_delay_s();
    EXPECT_GE(d, expected * (1.0 - policy.jitter));
    EXPECT_LE(d, expected * (1.0 + policy.jitter));
    base *= policy.multiplier;
  }
}

TEST(MeasureBackoff, ExhaustionAfterMaxRetries) {
  BackoffPolicy policy;
  policy.max_retries = 3;
  Backoff b(policy, 5);
  EXPECT_FALSE(b.exhausted());
  b.next_delay_s();
  b.next_delay_s();
  EXPECT_FALSE(b.exhausted());
  b.next_delay_s();
  EXPECT_TRUE(b.exhausted());
  EXPECT_EQ(b.retries(), 3u);
  // Calling past exhaustion still hands out (capped) delays.
  EXPECT_GT(b.next_delay_s(), 0.0);
}

TEST(MeasureBackoff, TotalAccumulatesAndResetClears) {
  BackoffPolicy policy;
  policy.jitter = 0.0;
  policy.initial_s = 0.1;
  policy.multiplier = 2.0;
  policy.max_s = 10.0;
  Backoff b(policy, 11);
  b.next_delay_s();
  b.next_delay_s();
  EXPECT_DOUBLE_EQ(b.total_delay_s(), 0.1 + 0.2);
  b.reset();
  EXPECT_EQ(b.retries(), 0u);
  EXPECT_DOUBLE_EQ(b.total_delay_s(), 0.0);
  EXPECT_FALSE(b.exhausted());
  // After a reset the schedule starts over at the initial delay.
  EXPECT_DOUBLE_EQ(b.next_delay_s(), 0.1);
}

TEST(MeasureBackoff, ResetAdvancesJitterStream) {
  // Jittered delays after a reset must not replay the pre-reset draws —
  // a success between two fault bursts decorrelates the bursts.
  BackoffPolicy policy;  // default jitter 0.25
  Backoff a(policy, 123);
  const std::vector<double> first = draw(a, 3);
  a.reset();
  const std::vector<double> second = draw(a, 3);
  EXPECT_NE(first, second);
}

TEST(MeasureBackoff, ZeroInitialYieldsZeroDelays) {
  BackoffPolicy policy;
  policy.initial_s = 0.0;
  Backoff b(policy, 3);
  EXPECT_DOUBLE_EQ(b.next_delay_s(), 0.0);
  EXPECT_DOUBLE_EQ(b.next_delay_s(), 0.0);
}

}  // namespace
}  // namespace ceal
