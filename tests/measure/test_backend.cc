// Measurement-backend chaos and equality tests: the in-process backend
// returns pool rows bitwise; the subprocess backend returns the same
// rows bitwise under clean runs, injected worker crashes, injected
// hangs (hedged stragglers), and full degradation; and a Collector
// session driven through a backend is identical to the inline one.
//
// CEAL_WORKER_BIN (a compile definition from tests/CMakeLists.txt) is
// the build-tree path of the real ceal_worker binary.
#include "measure/backend.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/rng.h"
#include "measure/subprocess.h"
#include "sim/workloads.h"
#include "tuner/collector.h"
#include "tuner/measured_pool.h"

namespace ceal::measure {
namespace {

bool bits_equal(double a, double b) {
  return std::memcmp(&a, &b, sizeof a) == 0;
}

// Scoped environment variable: set on construction, unset on
// destruction (the worker fault-injection hooks travel via environ).
class ScopedEnv {
 public:
  ScopedEnv(const char* key, const std::string& value) : key_(key) {
    ::setenv(key, value.c_str(), /*overwrite=*/1);
  }
  ~ScopedEnv() { ::unsetenv(key_); }

 private:
  const char* key_;
};

class MeasureBackendTest : public ::testing::Test {
 protected:
  MeasureBackendTest()
      : wl_(sim::make_lv()),
        pool_(tuner::measure_pool(wl_.workflow, kPoolSize, kPoolSeed)),
        comps_(tuner::measure_components(wl_.workflow, 10, 2)) {}

  // Worker-side pool reconstruction arguments matching pool_.
  static std::vector<std::string> worker_args() {
    return {"--workflow", "LV", "--pool-size", std::to_string(kPoolSize),
            "--pool-seed", std::to_string(kPoolSeed)};
  }

  SubprocessOptions base_options() const {
    SubprocessOptions options;
    options.workers = 2;
    options.worker_bin = CEAL_WORKER_BIN;
    options.worker_args = worker_args();
    options.seed = 7;
    return options;
  }

  // Runs indices [0, n) through `backend` and checks every RawRun is
  // the pool row, bitwise.
  void expect_pool_rows(MeasureBackend& backend, std::size_t n) {
    std::vector<std::size_t> batch;
    for (std::size_t i = 0; i < n; ++i) batch.push_back(i);
    backend.prefetch(batch);
    for (std::size_t i = 0; i < n; ++i) {
      const RawRun raw = backend.run(i);
      EXPECT_TRUE(bits_equal(raw.exec_s, pool_.exec_s[i])) << "index " << i;
      EXPECT_TRUE(bits_equal(raw.comp_ch, pool_.comp_ch[i])) << "index " << i;
    }
  }

  static constexpr std::size_t kPoolSize = 48;
  static constexpr std::uint32_t kPoolSeed = 11;

  sim::Workload wl_;
  tuner::MeasuredPool pool_;
  std::vector<tuner::ComponentSamples> comps_;
};

TEST_F(MeasureBackendTest, InProcessReturnsPoolRowsBitwise) {
  InProcessBackend backend(pool_);
  EXPECT_STREQ(backend.name(), "inproc");
  expect_pool_rows(backend, pool_.size());
}

TEST_F(MeasureBackendTest, SubprocessCleanRunMatchesPool) {
  SubprocessBackend backend(pool_, base_options());
  EXPECT_STREQ(backend.name(), "subprocess");
  expect_pool_rows(backend, 16);
  const SubprocessStats& stats = backend.stats();
  EXPECT_EQ(stats.completed, 16u);
  EXPECT_GE(stats.dispatched, 16u);
  EXPECT_EQ(stats.retries, 0u);
  EXPECT_EQ(stats.restarts, 0u);
  EXPECT_EQ(stats.local_runs, 0u);
  EXPECT_FALSE(backend.degraded());
}

TEST_F(MeasureBackendTest, RunWithoutPrefetchWorks) {
  // A fault top-up can request an index the batch never announced.
  SubprocessBackend backend(pool_, base_options());
  const RawRun raw = backend.run(5);
  EXPECT_TRUE(bits_equal(raw.exec_s, pool_.exec_s[5]));
  EXPECT_TRUE(bits_equal(raw.comp_ch, pool_.comp_ch[5]));
}

TEST_F(MeasureBackendTest, SurvivesRepeatedWorkerCrashes) {
  // Every worker SIGKILLs itself after serving 2 runs, forever (each
  // respawn crashes again after 2 more). All results must still be the
  // exact pool rows, with restarts and re-queues on the books.
  ScopedEnv crash("CEAL_WORKER_CRASH_AFTER", "2");
  SubprocessBackend backend(pool_, base_options());
  expect_pool_rows(backend, 12);
  const SubprocessStats& stats = backend.stats();
  EXPECT_EQ(stats.completed, 12u);
  EXPECT_GE(stats.restarts, 1u);
  EXPECT_FALSE(backend.degraded());
}

TEST_F(MeasureBackendTest, HedgesOrRestartsPastHungWorkers) {
  // Every worker hangs on its second run request, so each process
  // instance serves exactly one run: with 8 runs and 2 slots, progress
  // is only possible through the hedge/hang-deadline machinery killing
  // and restarting hung workers — whatever the startup interleaving.
  // Every result still matches the pool, and no slot retires (a valid
  // result resets its restart schedule).
  ScopedEnv hang("CEAL_WORKER_HANG_AFTER", "1");
  SubprocessOptions options = base_options();
  options.hedge_after_s = 0.05;
  options.hang_after_s = 0.25;
  options.restart_backoff.initial_s = 0.001;
  options.restart_backoff.max_s = 0.01;
  SubprocessBackend backend(pool_, options);
  expect_pool_rows(backend, 8);
  const SubprocessStats& stats = backend.stats();
  EXPECT_EQ(stats.completed, 8u);
  EXPECT_GE(stats.restarts, 1u);
  EXPECT_EQ(stats.retired, 0u);
  EXPECT_FALSE(backend.degraded());
}

TEST_F(MeasureBackendTest, MissingWorkerBinaryDegradesGracefully) {
  SubprocessOptions options = base_options();
  options.worker_bin = "/nonexistent/ceal_worker";
  options.degrade_after = 2;
  options.restart_backoff.initial_s = 0.001;
  options.restart_backoff.max_s = 0.01;
  SubprocessBackend backend(pool_, options);
  expect_pool_rows(backend, 6);  // still correct — served in-process
  EXPECT_TRUE(backend.degraded());
  const SubprocessStats& stats = backend.stats();
  EXPECT_TRUE(stats.degraded);
  EXPECT_EQ(stats.local_runs, 6u);
}

TEST_F(MeasureBackendTest, CrashLoopingWorkerDegradesGracefully) {
  // /bin/true spawns fine, then exits before saying hello: EOF faults
  // with no success in between exhaust the degrade threshold.
  SubprocessOptions options = base_options();
  options.worker_bin = "/bin/true";
  options.worker_args.clear();
  options.degrade_after = 2;
  options.restart_backoff.initial_s = 0.001;
  options.restart_backoff.max_s = 0.01;
  SubprocessBackend backend(pool_, options);
  expect_pool_rows(backend, 4);
  EXPECT_TRUE(backend.degraded());
  EXPECT_EQ(backend.stats().local_runs, 4u);
}

TEST_F(MeasureBackendTest, PoolMismatchIsRejectedBeforeServingRuns) {
  // Workers that rebuild a *different* pool (seed skew) must never
  // serve a run: their hellos are rejected as faults until the backend
  // degrades, and the degraded results still come from our pool.
  SubprocessOptions options = base_options();
  options.worker_args = {"--workflow", "LV", "--pool-size",
                         std::to_string(kPoolSize), "--pool-seed",
                         std::to_string(kPoolSeed + 1)};
  options.degrade_after = 2;
  options.restart_backoff.initial_s = 0.001;
  options.restart_backoff.max_s = 0.01;
  SubprocessBackend backend(pool_, options);
  expect_pool_rows(backend, 3);
  EXPECT_TRUE(backend.degraded());
  EXPECT_EQ(backend.stats().completed, 0u);
  EXPECT_EQ(backend.stats().local_runs, 3u);
}

// One fixed request schedule with faults and retries enabled, driven
// twice — inline collector vs. a backend-carrying collector. The
// sessions must be bitwise-identical: values, statuses, costs, budget.
class CollectorEqualityTest : public MeasureBackendTest {
 protected:
  struct SessionResult {
    std::vector<std::size_t> indices;
    std::vector<double> values;
    std::vector<sim::RunStatus> statuses;
    std::size_t runs_used = 0;
    double cost_exec_s = 0.0;
    double backoff_total_s = 0.0;
  };

  SessionResult drive(MeasureBackend* backend) {
    tuner::TuningProblem problem;
    problem.workload = &wl_;
    problem.pool = &pool_;
    problem.component_samples = &comps_;
    problem.objective = tuner::Objective::kExecTime;
    problem.measurement.faults.fail_prob = 0.3;
    problem.measurement.max_attempts = 3;
    problem.measure = backend;
    Rng rng(99);
    tuner::Collector collector(problem, /*budget_runs=*/40, &rng);
    // A fixed schedule with batched prefetch hints and repeats.
    const std::vector<std::vector<std::size_t>> batches = {
        {0, 1, 2, 3}, {4, 5, 6, 7}, {2, 8, 9}, {10, 11, 0, 12}};
    for (const auto& batch : batches) {
      collector.prefetch(batch);
      for (const std::size_t index : batch) {
        (void)collector.try_measure(index);
      }
    }
    SessionResult result;
    result.indices = collector.measured_indices();
    result.values = collector.measured_values();
    result.statuses = collector.measured_statuses();
    result.runs_used = collector.runs_used();
    result.cost_exec_s = collector.cost_exec_s();
    result.backoff_total_s = collector.backoff_total_s();
    return result;
  }

  static void expect_identical(const SessionResult& a,
                               const SessionResult& b) {
    ASSERT_EQ(a.indices, b.indices);
    ASSERT_EQ(a.values.size(), b.values.size());
    for (std::size_t i = 0; i < a.values.size(); ++i) {
      EXPECT_TRUE(bits_equal(a.values[i], b.values[i])) << "entry " << i;
    }
    EXPECT_EQ(a.statuses, b.statuses);
    EXPECT_EQ(a.runs_used, b.runs_used);
    EXPECT_TRUE(bits_equal(a.cost_exec_s, b.cost_exec_s));
    EXPECT_TRUE(bits_equal(a.backoff_total_s, b.backoff_total_s));
  }
};

TEST_F(CollectorEqualityTest, InlineAndInProcessBackendAgree) {
  const SessionResult inline_session = drive(nullptr);
  InProcessBackend inproc(pool_);
  expect_identical(inline_session, drive(&inproc));
}

TEST_F(CollectorEqualityTest, InlineAndSubprocessBackendAgree) {
  const SessionResult inline_session = drive(nullptr);
  SubprocessBackend subprocess(pool_, base_options());
  expect_identical(inline_session, drive(&subprocess));
}

TEST_F(CollectorEqualityTest, InlineAndCrashingSubprocessAgree) {
  const SessionResult inline_session = drive(nullptr);
  ScopedEnv crash("CEAL_WORKER_CRASH_AFTER", "3");
  SubprocessBackend subprocess(pool_, base_options());
  expect_identical(inline_session, drive(&subprocess));
}

TEST_F(CollectorEqualityTest, InlineAndDegradedSubprocessAgree) {
  const SessionResult inline_session = drive(nullptr);
  SubprocessOptions options = base_options();
  options.worker_bin = "/nonexistent/ceal_worker";
  options.degrade_after = 1;
  options.restart_backoff.initial_s = 0.001;
  options.restart_backoff.max_s = 0.01;
  SubprocessBackend subprocess(pool_, options);
  expect_identical(inline_session, drive(&subprocess));
  EXPECT_TRUE(subprocess.degraded());
}

}  // namespace
}  // namespace ceal::measure
