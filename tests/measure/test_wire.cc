// Wire-protocol hardening tests for the measurement plane
// (src/measure/wire.h): builder/parser round-trips, a corpus of
// malformed / truncated / bit-flipped frames, and a randomized
// round-trip property test. The contract under test: a damaged frame
// is *always* surfaced as an exception (worker fault) or held as an
// incomplete buffer — never silently delivered as data.
#include "measure/wire.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "core/journal.h"
#include "core/rng.h"
#include "sim/workloads.h"
#include "tuner/measured_pool.h"

namespace ceal::measure {
namespace {

bool bits_equal(double a, double b) {
  return std::memcmp(&a, &b, sizeof a) == 0;
}

double double_from_bits(std::uint64_t bits) {
  double v = 0.0;
  std::memcpy(&v, &bits, sizeof v);
  return v;
}

// Frames `payload` and parses it back through a fresh reader pair.
json::Value round_trip(const json::Value& payload) {
  FrameWriter writer;
  FrameReader reader("test");
  const std::string bytes = writer.frame(payload);
  reader.feed(bytes.data(), bytes.size());
  auto parsed = reader.next();
  EXPECT_TRUE(parsed.has_value());
  return std::move(*parsed);
}

TEST(MeasureWire, HelloRoundTrip) {
  const HelloMsg msg = parse_hello(
      round_trip(hello_message(3, 12345, 2000, 0xdeadbeefcafef00dULL)));
  EXPECT_EQ(msg.worker, 3u);
  EXPECT_EQ(msg.pid, 12345);
  EXPECT_EQ(msg.pool_n, 2000u);
  EXPECT_EQ(msg.pool_fp, 0xdeadbeefcafef00dULL);
}

TEST(MeasureWire, RunRoundTrip) {
  const json::Value payload = round_trip(run_message(77, 1999));
  EXPECT_EQ(message_op(payload), "run");
  const RunMsg msg = parse_run(payload);
  EXPECT_EQ(msg.id, 77u);
  EXPECT_EQ(msg.index, 1999u);
}

TEST(MeasureWire, ResultRoundTripIsBitwise) {
  // Awkward doubles: negative zero, denormal, largest finite, 1/3.
  const double awkward[] = {-0.0, std::numeric_limits<double>::denorm_min(),
                            std::numeric_limits<double>::max(), 1.0 / 3.0,
                            -6.02214076e23};
  for (const double exec_s : awkward) {
    for (const double comp_ch : awkward) {
      const ResultMsg msg = parse_result(round_trip(
          result_message(9, 4, 0xfeedULL, exec_s, comp_ch)));
      EXPECT_EQ(msg.id, 9u);
      EXPECT_EQ(msg.index, 4u);
      EXPECT_EQ(msg.config_fp, 0xfeedULL);
      EXPECT_TRUE(bits_equal(msg.exec_s, exec_s));
      EXPECT_TRUE(bits_equal(msg.comp_ch, comp_ch));
    }
  }
}

TEST(MeasureWire, PingPongShutdownRoundTrip) {
  EXPECT_EQ(parse_ping_id(round_trip(ping_message(42))), 42u);
  EXPECT_EQ(parse_ping_id(round_trip(pong_message(43))), 43u);
  EXPECT_EQ(message_op(round_trip(shutdown_message())), "shutdown");
}

TEST(MeasureWire, ReaderHandlesBytewiseFeed) {
  FrameWriter writer;
  FrameReader reader("test");
  const std::string bytes = writer.frame(ping_message(7));
  // A partial frame is never delivered; the full frame is, exactly once.
  for (std::size_t i = 0; i + 1 < bytes.size(); ++i) {
    reader.feed(&bytes[i], 1);
    EXPECT_FALSE(reader.next().has_value());
  }
  reader.feed(&bytes[bytes.size() - 1], 1);
  auto payload = reader.next();
  ASSERT_TRUE(payload.has_value());
  EXPECT_EQ(parse_ping_id(*payload), 7u);
  EXPECT_EQ(reader.buffered(), 0u);
  EXPECT_FALSE(reader.next().has_value());
}

TEST(MeasureWire, ReaderEnforcesSequenceContinuity) {
  FrameWriter writer;
  const std::string first = writer.frame(ping_message(1));
  const std::string second = writer.frame(ping_message(2));

  // In order: both frames validate.
  {
    FrameReader reader("test");
    reader.feed(first.data(), first.size());
    reader.feed(second.data(), second.size());
    EXPECT_TRUE(reader.next().has_value());
    EXPECT_TRUE(reader.next().has_value());
    EXPECT_EQ(reader.frames(), 2u);
  }
  // A dropped frame (reader sees seq 1 while expecting 0) is detected.
  {
    FrameReader reader("test");
    reader.feed(second.data(), second.size());
    EXPECT_THROW(reader.next(), JournalError);
  }
  // A replayed frame (seq 0 again after 0) is detected too.
  {
    FrameReader reader("test");
    reader.feed(first.data(), first.size());
    EXPECT_TRUE(reader.next().has_value());
    reader.feed(first.data(), first.size());
    EXPECT_THROW(reader.next(), JournalError);
  }
}

TEST(MeasureWire, MalformedFrameCorpus) {
  const std::string good =
      frame_journal_record(0, ping_message(5).dump());
  const std::vector<std::string> corpus = {
      "garbage with no framing at all\n",
      "J2 0 10 00000000 {\"op\":\"x\"}\n",       // wrong magic
      "J1 0\n",                                   // truncated header
      "J1 0 999999 00000000 {\"op\":\"x\"}\n",    // length overshoots
      "J1 0 2 00000000 {\"op\":\"ping\"}\n",      // length undershoots
      "J1 0 10 zzzzzzzz {\"op\":\"x\"}\n",        // non-hex CRC
      good.substr(0, good.size() / 2) + "\n",     // torn mid-frame
      std::string("J1 0 4 ") + "00000000" + " not{\n",  // CRC mismatch
  };
  for (const std::string& bytes : corpus) {
    FrameReader reader("corpus");
    reader.feed(bytes.data(), bytes.size());
    EXPECT_THROW(reader.next(), std::exception) << "corpus entry: " << bytes;
  }
}

TEST(MeasureWire, BitFlipSweepNeverDeliversCorruptPayload) {
  // Flip every bit of a complete frame. CRC32 catches any single-bit
  // flip in the covered region; header damage trips magic/seq/length
  // checks; flipping the newline just leaves an incomplete buffer. In
  // no case may a payload come back that differs from the original.
  FrameWriter writer;
  const std::string original_bytes = writer.frame(
      result_message(12, 345, 0xabcdef0123456789ULL, 1.5e-3, -2.25));
  const std::string original_dump =
      result_message(12, 345, 0xabcdef0123456789ULL, 1.5e-3, -2.25).dump();
  for (std::size_t byte = 0; byte < original_bytes.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string corrupt = original_bytes;
      corrupt[byte] = static_cast<char>(corrupt[byte] ^ (1 << bit));
      FrameReader reader("flip");
      reader.feed(corrupt.data(), corrupt.size());
      try {
        const auto payload = reader.next();
        if (payload.has_value()) {
          // Only reachable if the flip left the frame fully valid —
          // then the payload must still be the original bytes.
          EXPECT_EQ(payload->dump(), original_dump)
              << "byte " << byte << " bit " << bit;
        }
      } catch (const std::exception&) {
        // Detected — the dispatcher treats this as a worker fault.
      }
    }
  }
}

TEST(MeasureWire, ParserRejectsMissingAndMistypedFields) {
  // Missing field.
  {
    json::Value no_index = json::Value::object();
    no_index.set("op", json::Value::string("run"));
    no_index.set("id", json::Value::number(std::uint64_t{1}));
    EXPECT_THROW(parse_run(no_index), WireError);
  }
  // Mistyped numeric field.
  {
    json::Value msg = json::Value::object();
    msg.set("op", json::Value::string("ping"));
    msg.set("id", json::Value::string("not a number"));
    EXPECT_THROW(parse_ping_id(msg), WireError);
  }
  // Negative id.
  {
    json::Value msg = json::Value::object();
    msg.set("op", json::Value::string("ping"));
    msg.set("id", json::Value::number(std::int64_t{-5}));
    EXPECT_THROW(parse_ping_id(msg), WireError);
  }
  // Malformed hex word.
  {
    json::Value msg = result_message(1, 2, 3, 0.5, 0.25);
    msg.set("fp", json::Value::string("12ab"));  // missing 0x prefix
    EXPECT_THROW(parse_result(msg), WireError);
    msg.set("fp", json::Value::string("0xNOPE"));
    EXPECT_THROW(parse_result(msg), WireError);
  }
  // Malformed hex float.
  {
    json::Value msg = result_message(1, 2, 3, 0.5, 0.25);
    msg.set("exec_s", json::Value::string("one point five"));
    EXPECT_THROW(parse_result(msg), WireError);
    msg.set("exec_s", json::Value::number(1.5));  // number, not string
    EXPECT_THROW(parse_result(msg), WireError);
  }
  // Non-object payload.
  EXPECT_THROW(message_op(json::Value::string("hi")), WireError);
  // Missing op.
  EXPECT_THROW(message_op(json::Value::object()), WireError);
}

TEST(MeasureWire, RandomizedRoundTripProperty) {
  // 500 random result messages with arbitrary finite bit patterns must
  // survive frame -> parse bitwise, through one continuous connection
  // (exercising the running sequence numbers on both sides).
  Rng gen(0x511ce0f517eULL);
  FrameWriter writer;
  FrameReader reader("prop");
  for (int iter = 0; iter < 500; ++iter) {
    // Ids are JSON numbers (53 exact bits); fingerprints travel as hex
    // words and cover the full 64-bit range.
    const std::uint64_t id = gen.uniform_u64(1ULL << 53);
    const std::size_t index = static_cast<std::size_t>(gen.uniform_u64(4096));
    const std::uint64_t fp = gen();
    double exec_s = double_from_bits(gen());
    double comp_ch = double_from_bits(gen());
    // NaNs are excluded: "%a" prints them as "nan", which loses payload
    // bits — the protocol never carries NaN measurements.
    if (std::isnan(exec_s)) exec_s = 0.125 * static_cast<double>(iter);
    if (std::isnan(comp_ch)) comp_ch = -0.5 * static_cast<double>(iter);
    const std::string bytes =
        writer.frame(result_message(id, index, fp, exec_s, comp_ch));
    // Split the feed at a random point to exercise buffering.
    const std::size_t cut =
        static_cast<std::size_t>(gen.uniform_u64(bytes.size() + 1));
    reader.feed(bytes.data(), cut);
    if (cut < bytes.size()) {
      reader.feed(bytes.data() + cut, bytes.size() - cut);
    }
    auto payload = reader.next();
    ASSERT_TRUE(payload.has_value());
    const ResultMsg msg = parse_result(*payload);
    EXPECT_EQ(msg.id, id);
    EXPECT_EQ(msg.index, index);
    EXPECT_EQ(msg.config_fp, fp);
    EXPECT_TRUE(bits_equal(msg.exec_s, exec_s));
    EXPECT_TRUE(bits_equal(msg.comp_ch, comp_ch));
  }
  EXPECT_EQ(writer.frames(), 500u);
  EXPECT_EQ(reader.frames(), 500u);
}

TEST(MeasureWire, ConfigFingerprintDistinguishesRows) {
  const sim::Workload wl = sim::make_lv();
  const tuner::MeasuredPool pool = tuner::measure_pool(wl.workflow, 64, 1);
  std::vector<std::uint64_t> fps;
  for (std::size_t i = 0; i < pool.size(); ++i) {
    fps.push_back(config_fingerprint(pool, i));
    // Stable across calls.
    EXPECT_EQ(fps.back(), config_fingerprint(pool, i));
  }
  // No collisions across this pool (a collision would let a hedged
  // duplicate be confused with a different row).
  std::size_t distinct = 0;
  for (std::size_t i = 0; i < fps.size(); ++i) {
    bool seen = false;
    for (std::size_t j = 0; j < i; ++j) seen = seen || (fps[j] == fps[i]);
    if (!seen) ++distinct;
  }
  EXPECT_EQ(distinct, fps.size());
}

}  // namespace
}  // namespace ceal::measure
