#include "apps/stage_write.h"

#include <gtest/gtest.h>

#include <vector>

#include "core/error.h"

namespace ceal::apps {
namespace {

struct CountingSink {
  std::vector<std::size_t> flush_sizes;

  StageWriter::Sink fn() {
    return [this](std::span<const std::byte> buffer) {
      flush_sizes.push_back(buffer.size());
    };
  }
};

constexpr std::size_t kMiB = 1024 * 1024;

TEST(StageWriter, FlushesWholeBuffersOnly) {
  CountingSink sink;
  StageWriter writer({.buffer_mb = 1}, sink.fn());
  const std::vector<std::byte> block(kMiB / 2);
  writer.write(block);  // half full, no flush
  EXPECT_TRUE(sink.flush_sizes.empty());
  writer.write(block);  // exactly full -> one flush
  ASSERT_EQ(sink.flush_sizes.size(), 1u);
  EXPECT_EQ(sink.flush_sizes[0], kMiB);
}

TEST(StageWriter, LargeBlockSpansMultipleFlushes) {
  CountingSink sink;
  StageWriter writer({.buffer_mb = 1}, sink.fn());
  const std::vector<std::byte> block(3 * kMiB + 100);
  writer.write(block);
  EXPECT_EQ(sink.flush_sizes.size(), 3u);
  writer.finish();
  ASSERT_EQ(sink.flush_sizes.size(), 4u);
  EXPECT_EQ(sink.flush_sizes.back(), 100u);
}

TEST(StageWriter, FinishOnEmptyBufferIsNoop) {
  CountingSink sink;
  StageWriter writer({.buffer_mb = 2}, sink.fn());
  writer.finish();
  EXPECT_TRUE(sink.flush_sizes.empty());
  EXPECT_EQ(writer.stats().flush_count, 0u);
}

TEST(StageWriter, StatsTrackBytes) {
  CountingSink sink;
  StageWriter writer({.buffer_mb = 1}, sink.fn());
  const std::vector<std::byte> block(kMiB + 7);
  writer.write(block);
  writer.finish();
  EXPECT_EQ(writer.stats().bytes_in, kMiB + 7);
  EXPECT_EQ(writer.stats().bytes_flushed, kMiB + 7);
  EXPECT_EQ(writer.stats().flush_count, 2u);
}

TEST(StageWriter, WriteDoublesStagesRawBytes) {
  CountingSink sink;
  StageWriter writer({.buffer_mb = 1}, sink.fn());
  const std::vector<double> values(100, 1.5);
  writer.write_doubles(values);
  writer.finish();
  EXPECT_EQ(writer.stats().bytes_in, 100 * sizeof(double));
}

TEST(StageWriter, BufferCapacityMatchesParams) {
  CountingSink sink;
  StageWriter writer({.buffer_mb = 3}, sink.fn());
  EXPECT_EQ(writer.buffer_capacity_bytes(), 3 * kMiB);
}

TEST(StageWriter, RejectsEmptySink) {
  EXPECT_THROW(StageWriter({.buffer_mb = 1}, StageWriter::Sink{}),
               ceal::PreconditionError);
}

TEST(StageWriter, RejectsZeroBuffer) {
  CountingSink sink;
  EXPECT_THROW(StageWriter({.buffer_mb = 0}, sink.fn()),
               ceal::PreconditionError);
}

}  // namespace
}  // namespace ceal::apps
