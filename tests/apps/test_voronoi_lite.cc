#include "apps/voronoi_lite.h"

#include <gtest/gtest.h>

#include <numeric>

#include "core/error.h"
#include "core/rng.h"
#include "core/thread_pool.h"

namespace ceal::apps {
namespace {

class VoronoiTest : public ::testing::Test {
 protected:
  std::vector<Vec2> random_positions(std::size_t n, double box,
                                     std::uint64_t seed) {
    ceal::Rng rng(seed);
    std::vector<Vec2> pos(n);
    for (auto& p : pos) {
      p.x = rng.uniform(0.0, box);
      p.y = rng.uniform(0.0, box);
    }
    return pos;
  }

  ceal::ThreadPool pool_{2};
};

TEST_F(VoronoiTest, HistogramCountsEveryParticle) {
  VoronoiParams params;
  params.box = 32.0;
  VoronoiLite voro(params, pool_);
  const auto pos = random_positions(500, params.box, 1);
  const auto result = voro.analyze(pos);
  const std::size_t total = std::accumulate(result.histogram.begin(),
                                            result.histogram.end(),
                                            std::size_t{0});
  EXPECT_EQ(total, 500u);
  EXPECT_EQ(result.histogram.size(), params.histogram_bins);
}

TEST_F(VoronoiTest, StatisticsArePositive) {
  VoronoiParams params;
  params.box = 32.0;
  VoronoiLite voro(params, pool_);
  const auto result = voro.analyze(random_positions(300, params.box, 2));
  EXPECT_GT(result.mean_nn_distance, 0.0);
  EXPECT_GT(result.mean_cell_volume, 0.0);
}

TEST_F(VoronoiTest, DenserSystemsHaveSmallerCells) {
  VoronoiParams params;
  params.box = 32.0;
  VoronoiLite voro(params, pool_);
  const auto sparse = voro.analyze(random_positions(100, params.box, 3));
  const auto dense = voro.analyze(random_positions(2000, params.box, 3));
  EXPECT_LT(dense.mean_cell_volume, sparse.mean_cell_volume);
  EXPECT_LT(dense.mean_nn_distance, sparse.mean_nn_distance);
}

TEST_F(VoronoiTest, RegularLatticeNearestNeighbourMatchesSpacing) {
  VoronoiParams params;
  params.box = 16.0;
  params.search_radius = 3.0;
  VoronoiLite voro(params, pool_);
  std::vector<Vec2> lattice;
  for (int y = 0; y < 8; ++y) {
    for (int x = 0; x < 8; ++x) {
      lattice.push_back({x * 2.0 + 1.0, y * 2.0 + 1.0});
    }
  }
  const auto result = voro.analyze(lattice);
  EXPECT_NEAR(result.mean_nn_distance, 2.0, 1e-9);
}

TEST_F(VoronoiTest, ThreadCountDoesNotChangeResult) {
  VoronoiParams params;
  params.box = 32.0;
  ceal::ThreadPool pool1(1), pool4(4);
  VoronoiLite a(params, pool1), b(params, pool4);
  const auto pos = random_positions(400, params.box, 4);
  EXPECT_DOUBLE_EQ(a.analyze(pos).mean_nn_distance,
                   b.analyze(pos).mean_nn_distance);
}

TEST_F(VoronoiTest, RejectsFewerThanTwoParticles) {
  VoronoiParams params;
  VoronoiLite voro(params, pool_);
  const std::vector<Vec2> one{{1.0, 1.0}};
  EXPECT_THROW(voro.analyze(one), ceal::PreconditionError);
}

}  // namespace
}  // namespace ceal::apps
