#include "apps/stream.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "core/error.h"

namespace ceal::apps {
namespace {

TEST(Stream, PushPopRoundTrip) {
  Stream stream(4);
  Frame f;
  f.step = 3;
  f.data = {1.0, 2.0};
  EXPECT_TRUE(stream.push(std::move(f)));
  const auto out = stream.pop();
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->step, 3u);
  EXPECT_EQ(out->data, (std::vector<double>{1.0, 2.0}));
}

TEST(Stream, PreservesFifoOrder) {
  Stream stream(8);
  for (std::size_t i = 0; i < 5; ++i) {
    stream.push(Frame{i, {}});
  }
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(stream.pop()->step, i);
  }
}

TEST(Stream, CloseDrainsThenSignalsEnd) {
  Stream stream(4);
  stream.push(Frame{0, {}});
  stream.close();
  EXPECT_TRUE(stream.pop().has_value());   // pending frame still readable
  EXPECT_FALSE(stream.pop().has_value());  // then end-of-stream
}

TEST(Stream, PushAfterCloseIsRejected) {
  Stream stream(4);
  stream.close();
  EXPECT_FALSE(stream.push(Frame{}));
  EXPECT_EQ(stream.frames_pushed(), 0u);
}

TEST(Stream, ProducerConsumerTransfersEverything) {
  Stream stream(2);  // tiny capacity forces back-pressure
  constexpr std::size_t kFrames = 200;
  std::thread producer([&] {
    for (std::size_t i = 0; i < kFrames; ++i) {
      stream.push(Frame{i, std::vector<double>(16, double(i))});
    }
    stream.close();
  });
  std::size_t received = 0;
  std::size_t next_step = 0;
  while (auto frame = stream.pop()) {
    EXPECT_EQ(frame->step, next_step++);
    ++received;
  }
  producer.join();
  EXPECT_EQ(received, kFrames);
  EXPECT_EQ(stream.frames_pushed(), kFrames);
}

TEST(Stream, BackPressureBlocksTheFasterSide) {
  Stream stream(1);
  std::thread producer([&] {
    for (std::size_t i = 0; i < 50; ++i) {
      stream.push(Frame{i, std::vector<double>(1024)});
    }
    stream.close();
  });
  std::size_t received = 0;
  while (auto frame = stream.pop()) {
    std::this_thread::sleep_for(std::chrono::microseconds(200));
    ++received;
  }
  producer.join();
  EXPECT_EQ(received, 50u);
  // A slow consumer over a size-1 stream must have blocked the producer.
  EXPECT_GT(stream.producer_blocked_seconds(), 0.0);
}

TEST(Stream, CloseUnblocksWaitingConsumer) {
  Stream stream(4);
  std::thread consumer([&] {
    const auto frame = stream.pop();  // blocks until close
    EXPECT_FALSE(frame.has_value());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  stream.close();
  consumer.join();
}

TEST(Stream, SizeTracksQueueDepth) {
  Stream stream(4);
  EXPECT_EQ(stream.size(), 0u);
  stream.push(Frame{});
  stream.push(Frame{});
  EXPECT_EQ(stream.size(), 2u);
  stream.pop();
  EXPECT_EQ(stream.size(), 1u);
}

TEST(Stream, RejectsZeroCapacity) {
  EXPECT_THROW(Stream(0), ceal::PreconditionError);
}

}  // namespace
}  // namespace ceal::apps
