#include "apps/pdf_calc.h"

#include <gtest/gtest.h>

#include <numeric>

#include "core/error.h"
#include "core/rng.h"
#include "core/thread_pool.h"

namespace ceal::apps {
namespace {

class PdfTest : public ::testing::Test {
 protected:
  ceal::ThreadPool pool_{2};
};

TEST_F(PdfTest, CountsSumToFieldSize) {
  PdfParams params;
  params.bins = 16;
  PdfCalc pdf(params, pool_);
  ceal::Rng rng(1);
  std::vector<double> field(1000);
  for (auto& x : field) x = rng.normal();
  const auto result = pdf.compute(field);
  EXPECT_EQ(std::accumulate(result.counts.begin(), result.counts.end(),
                            std::size_t{0}),
            1000u);
}

TEST_F(PdfTest, DensityIntegratesToOne) {
  PdfParams params;
  params.bins = 32;
  PdfCalc pdf(params, pool_);
  ceal::Rng rng(2);
  std::vector<double> field(5000);
  for (auto& x : field) x = rng.uniform(-3.0, 5.0);
  const auto result = pdf.compute(field);
  const double width = (result.hi - result.lo) / params.bins;
  double integral = 0.0;
  for (const double d : result.density) integral += d * width;
  EXPECT_NEAR(integral, 1.0, 1e-9);
}

TEST_F(PdfTest, BoundsMatchFieldExtremes) {
  PdfCalc pdf(PdfParams{}, pool_);
  const std::vector<double> field{3.0, -1.0, 7.0, 2.0};
  const auto result = pdf.compute(field);
  EXPECT_DOUBLE_EQ(result.lo, -1.0);
  EXPECT_DOUBLE_EQ(result.hi, 7.0);
}

TEST_F(PdfTest, UniformFieldFillsOneBin) {
  PdfParams params;
  params.bins = 8;
  PdfCalc pdf(params, pool_);
  const std::vector<double> field(100, 42.0);
  const auto result = pdf.compute(field);
  std::size_t nonzero = 0;
  for (const auto c : result.counts) {
    if (c > 0) ++nonzero;
  }
  EXPECT_EQ(nonzero, 1u);
}

TEST_F(PdfTest, GaussianPeaksNearMean) {
  PdfParams params;
  params.bins = 21;
  PdfCalc pdf(params, pool_);
  ceal::Rng rng(3);
  std::vector<double> field(50000);
  for (auto& x : field) x = rng.normal(10.0, 1.0);
  const auto result = pdf.compute(field);
  const auto peak = std::max_element(result.counts.begin(),
                                     result.counts.end());
  const std::size_t peak_bin =
      static_cast<std::size_t>(peak - result.counts.begin());
  const double width = (result.hi - result.lo) / params.bins;
  const double peak_center = result.lo + (peak_bin + 0.5) * width;
  EXPECT_NEAR(peak_center, 10.0, 1.0);
}

TEST_F(PdfTest, ThreadCountInvariance) {
  ceal::ThreadPool pool1(1), pool4(4);
  PdfCalc a(PdfParams{}, pool1), b(PdfParams{}, pool4);
  ceal::Rng rng(4);
  std::vector<double> field(10000);
  for (auto& x : field) x = rng.uniform01();
  EXPECT_EQ(a.compute(field).counts, b.compute(field).counts);
}

TEST_F(PdfTest, RejectsDegenerateInput) {
  PdfCalc pdf(PdfParams{}, pool_);
  const std::vector<double> one{1.0};
  EXPECT_THROW(pdf.compute(one), ceal::PreconditionError);
}

}  // namespace
}  // namespace ceal::apps
