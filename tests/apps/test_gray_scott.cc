#include "apps/gray_scott.h"

#include <gtest/gtest.h>

#include "core/error.h"
#include "core/thread_pool.h"

namespace ceal::apps {
namespace {

class GrayScottTest : public ::testing::Test {
 protected:
  ceal::ThreadPool pool_{2};
};

TEST_F(GrayScottTest, SeedRegionActivatesReaction) {
  GrayScottParams params;
  params.n = 64;
  params.steps = 50;
  GrayScott2D sim(params, pool_);
  const auto result = sim.run();
  EXPECT_GT(result.v_sum, 0.0);   // V species present and spreading
  EXPECT_GT(result.u_sum, 0.0);
  EXPECT_EQ(result.steps_run, 50u);
}

TEST_F(GrayScottTest, ConcentrationsStayInPhysicalRange) {
  GrayScottParams params;
  params.n = 32;
  params.steps = 200;
  GrayScott2D sim(params, pool_);
  sim.run();
  for (const double u : sim.u()) {
    EXPECT_GE(u, -0.05);
    EXPECT_LE(u, 1.05);
  }
  for (const double v : sim.v()) {
    EXPECT_GE(v, -0.05);
    EXPECT_LE(v, 1.05);
  }
}

TEST_F(GrayScottTest, ObserverReceivesVField) {
  GrayScottParams params;
  params.n = 16;
  params.steps = 5;
  GrayScott2D sim(params, pool_);
  std::size_t calls = 0;
  sim.run([&](std::size_t, std::span<const double> v) {
    ++calls;
    EXPECT_EQ(v.size(), params.n * params.n);
  });
  EXPECT_EQ(calls, 5u);
}

TEST_F(GrayScottTest, DeterministicAcrossThreadCounts) {
  GrayScottParams params;
  params.n = 32;
  params.steps = 25;
  ceal::ThreadPool pool1(1), pool3(3);
  GrayScott2D a(params, pool1), b(params, pool3);
  const auto ra = a.run();
  const auto rb = b.run();
  EXPECT_DOUBLE_EQ(ra.u_sum, rb.u_sum);
  EXPECT_DOUBLE_EQ(ra.v_sum, rb.v_sum);
}

TEST_F(GrayScottTest, PatternSpreadsBeyondSeed) {
  GrayScottParams params;
  params.n = 64;
  GrayScottParams longer = params;
  params.steps = 10;
  longer.steps = 400;
  GrayScott2D early(params, pool_), late(longer, pool_);
  early.run();
  late.run();
  // Count active cells (V above threshold): the pattern grows.
  const auto active = [](std::span<const double> v) {
    std::size_t n = 0;
    for (const double x : v) {
      if (x > 0.1) ++n;
    }
    return n;
  };
  EXPECT_GT(active(late.v()), active(early.v()));
}

TEST_F(GrayScottTest, RejectsTinyGrid) {
  GrayScottParams params;
  params.n = 4;
  EXPECT_THROW(GrayScott2D(params, pool_), ceal::PreconditionError);
}

}  // namespace
}  // namespace ceal::apps
