#include "apps/md_lite.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/error.h"
#include "core/thread_pool.h"

namespace ceal::apps {
namespace {

class MdTest : public ::testing::Test {
 protected:
  static MdParams small() {
    MdParams p;
    p.n_particles = 256;
    p.steps = 10;
    p.box = 32.0;
    p.dt = 0.002;
    p.temperature = 0.5;
    return p;
  }

  ceal::ThreadPool pool_{2};
};

TEST_F(MdTest, PositionsStayInPeriodicBox) {
  MdLite sim(small(), pool_);
  sim.run();
  for (const auto& p : sim.positions()) {
    EXPECT_GE(p.x, 0.0);
    EXPECT_LT(p.x, small().box);
    EXPECT_GE(p.y, 0.0);
    EXPECT_LT(p.y, small().box);
  }
}

TEST_F(MdTest, EnergiesAreFinite) {
  MdLite sim(small(), pool_);
  const auto result = sim.run();
  EXPECT_TRUE(std::isfinite(result.kinetic_energy));
  EXPECT_TRUE(std::isfinite(result.potential_energy));
  EXPECT_GT(result.kinetic_energy, 0.0);
  EXPECT_EQ(result.steps_run, small().steps);
}

TEST_F(MdTest, DeterministicForSameSeed) {
  MdLite a(small(), pool_), b(small(), pool_);
  const auto ra = a.run();
  const auto rb = b.run();
  EXPECT_DOUBLE_EQ(ra.kinetic_energy, rb.kinetic_energy);
  EXPECT_DOUBLE_EQ(ra.potential_energy, rb.potential_energy);
}

TEST_F(MdTest, DifferentSeedsDiffer) {
  MdParams p1 = small(), p2 = small();
  p2.seed = p1.seed + 1;
  MdLite a(p1, pool_), b(p2, pool_);
  EXPECT_NE(a.run().kinetic_energy, b.run().kinetic_energy);
}

TEST_F(MdTest, ObserverSeesPositionsEveryStep) {
  MdLite sim(small(), pool_);
  std::size_t calls = 0;
  sim.run([&](std::size_t, std::span<const Vec2> pos) {
    ++calls;
    EXPECT_EQ(pos.size(), small().n_particles);
  });
  EXPECT_EQ(calls, small().steps);
}

TEST_F(MdTest, ColdLatticeStaysNearLattice) {
  // With zero temperature and a relaxed lattice the system barely moves,
  // so kinetic energy remains tiny.
  MdParams p = small();
  p.temperature = 0.0;
  p.steps = 5;
  MdLite sim(p, pool_);
  const auto result = sim.run();
  EXPECT_LT(result.kinetic_energy, 1.0);
}

TEST_F(MdTest, RejectsBoxSmallerThanCutoffNeighbourhood) {
  MdParams p = small();
  p.box = 4.0;
  p.cutoff = 2.5;
  EXPECT_THROW(MdLite(p, pool_), ceal::PreconditionError);
}

}  // namespace
}  // namespace ceal::apps
