#include "apps/heat_transfer.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/error.h"
#include "core/thread_pool.h"

namespace ceal::apps {
namespace {

class HeatTest : public ::testing::Test {
 protected:
  ceal::ThreadPool pool_{2};
};

TEST_F(HeatTest, HeatFlowsInFromHotBoundary) {
  HeatParams params;
  params.nx = 32;
  params.ny = 32;
  params.steps = 50;
  HeatTransfer2D sim(params, pool_);
  const auto result = sim.run();
  EXPECT_GT(result.checksum, 0.0);  // interior warmed up from zero
  EXPECT_EQ(result.steps_run, 50u);
}

TEST_F(HeatTest, TemperatureStaysWithinBoundaryBounds) {
  HeatParams params;
  params.nx = 16;
  params.ny = 16;
  params.steps = 100;
  params.hot_boundary = 50.0;
  HeatTransfer2D sim(params, pool_);
  sim.run();
  for (const double t : sim.field()) {
    EXPECT_GE(t, -1e-12);
    EXPECT_LE(t, 50.0 + 1e-12);
  }
}

TEST_F(HeatTest, MoreStepsMoveCloserToSteadyState) {
  HeatParams params;
  params.nx = 16;
  params.ny = 16;
  HeatParams longer = params;
  params.steps = 10;
  longer.steps = 200;
  HeatTransfer2D sim_short(params, pool_);
  HeatTransfer2D sim_long(longer, pool_);
  // The hot boundary keeps injecting heat, so the checksum grows
  // monotonically toward the steady state.
  EXPECT_LT(sim_short.run().checksum, sim_long.run().checksum);
}

TEST_F(HeatTest, ObserverSeesEveryStep) {
  HeatParams params;
  params.nx = 8;
  params.ny = 8;
  params.steps = 7;
  HeatTransfer2D sim(params, pool_);
  std::size_t calls = 0;
  std::size_t last_step = 0;
  const auto result = sim.run([&](std::size_t step,
                                  std::span<const double> field) {
    ++calls;
    last_step = step;
    EXPECT_EQ(field.size(), params.nx * params.ny);
  });
  EXPECT_EQ(calls, 7u);
  EXPECT_EQ(last_step, 6u);
  EXPECT_EQ(result.steps_run, 7u);
}

TEST_F(HeatTest, ResultIndependentOfThreadCount) {
  HeatParams params;
  params.nx = 24;
  params.ny = 24;
  params.steps = 30;
  ceal::ThreadPool pool1(1), pool4(4);
  HeatTransfer2D a(params, pool1), b(params, pool4);
  EXPECT_DOUBLE_EQ(a.run().checksum, b.run().checksum);
}

TEST_F(HeatTest, RejectsUnstableAlpha) {
  HeatParams params;
  params.alpha = 0.3;
  EXPECT_THROW(HeatTransfer2D(params, pool_), ceal::PreconditionError);
}

TEST_F(HeatTest, RejectsDegenerateGrid) {
  HeatParams params;
  params.nx = 1;
  EXPECT_THROW(HeatTransfer2D(params, pool_), ceal::PreconditionError);
}

}  // namespace
}  // namespace ceal::apps
