// tools/chrome_trace.h: exporting causal span traces to the Chrome
// trace-event format, and the strict validator the exports must pass.
#include "tools/chrome_trace.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/json.h"
#include "core/telemetry.h"

namespace ceal::tools {
namespace {

class RecordingSink final : public telemetry::TraceSink {
 public:
  void write(const telemetry::TraceEvent& event) override {
    lines.push_back(event.to_json().dump());
  }
  std::vector<std::string> lines;
};

/// Runs a small nested span tree through real Telemetry and returns the
/// parsed trace — the exact producer format the exporter consumes.
std::vector<json::Value> sample_trace(std::uint64_t seed) {
  RecordingSink sink;
  telemetry::Telemetry tel(&sink);
  tel.seed_trace(seed);
  {
    telemetry::ScopedCausalSpan step(&tel, "tuner.step");
    { telemetry::ScopedCausalSpan fit(&tel, "surrogate.fit"); }
    { telemetry::ScopedCausalSpan predict(&tel, "surrogate.predict"); }
  }
  // A non-span event interleaved, as real traces have.
  tel.emit(telemetry::TraceEvent("tune.finish"));
  std::vector<json::Value> events;
  for (const auto& line : sink.lines) {
    events.push_back(json::Value::parse(line));
  }
  return events;
}

TEST(ChromeTraceExport, ProducesAValidatedDocument) {
  const json::Value doc = export_chrome_trace(sample_trace(11));
  EXPECT_EQ(validate_chrome_trace(doc), 3u);
  const json::Value& events = doc.at("traceEvents");
  // 6 B/E events plus process_name + thread_name metadata.
  EXPECT_EQ(events.size(), 8u);
  EXPECT_EQ(doc.at("displayTimeUnit").as_string(), "ms");
  // First events are the metadata naming the lane.
  EXPECT_EQ(events.at(0).at("ph").as_string(), "M");
  EXPECT_EQ(events.at(0).at("name").as_string(), "process_name");
  EXPECT_EQ(events.at(1).at("name").as_string(), "thread_name");
  EXPECT_EQ(events.at(1).at("args").at("name").as_string(), "strand 0");
}

TEST(ChromeTraceExport, StripTsIsByteStableAcrossRuns) {
  const json::Value a = export_chrome_trace(sample_trace(5), true);
  const json::Value b = export_chrome_trace(sample_trace(5), true);
  EXPECT_EQ(a.dump(), b.dump());
  EXPECT_EQ(validate_chrome_trace(a), 3u);
  // Stripped timestamps are trace positions, starting at 0.
  const json::Value& events = a.at("traceEvents");
  EXPECT_EQ(events.at(2).at("ts").number_lexeme(), "0");
}

TEST(ChromeTraceExport, WithoutStripTsTimestampsAreMonotonePerLane) {
  const json::Value doc = export_chrome_trace(sample_trace(5), false);
  EXPECT_EQ(validate_chrome_trace(doc), 3u);  // validator checks monotone ts
}

TEST(ChromeTraceExport, SpanEventMissingFieldsIsRejected) {
  std::vector<json::Value> events;
  events.push_back(json::Value::parse("{\"event\":\"span.begin\"}"));
  EXPECT_THROW(export_chrome_trace(events), ChromeTraceError);
}

json::Value doc_of(const std::string& trace_events_json) {
  return json::Value::parse("{\"traceEvents\":" + trace_events_json + "}");
}

std::string error_of(const json::Value& doc) {
  try {
    validate_chrome_trace(doc);
  } catch (const ChromeTraceError& e) {
    return e.what();
  }
  return "";
}

TEST(ChromeTraceValidate, RejectsMissingTraceEvents) {
  EXPECT_NE(error_of(json::Value::parse("{}")).find("traceEvents"),
            std::string::npos);
}

TEST(ChromeTraceValidate, RejectsEventWithoutName) {
  const std::string err =
      error_of(doc_of("[{\"ph\":\"B\",\"pid\":1,\"tid\":1,\"ts\":0}]"));
  EXPECT_NE(err.find("chrome:event 1:"), std::string::npos);
  EXPECT_NE(err.find("'name'"), std::string::npos);
}

TEST(ChromeTraceValidate, RejectsEndWithoutBegin) {
  const std::string err = error_of(doc_of(
      "[{\"name\":\"x\",\"ph\":\"E\",\"pid\":1,\"tid\":1,\"ts\":0}]"));
  EXPECT_NE(err.find("chrome:event 1:"), std::string::npos);
  EXPECT_NE(err.find("no open span"), std::string::npos);
}

TEST(ChromeTraceValidate, RejectsMismatchedEndName) {
  const std::string err = error_of(doc_of(
      "[{\"name\":\"a\",\"ph\":\"B\",\"pid\":1,\"tid\":1,\"ts\":0},"
      "{\"name\":\"b\",\"ph\":\"E\",\"pid\":1,\"tid\":1,\"ts\":1}]"));
  EXPECT_NE(err.find("chrome:event 2:"), std::string::npos);
  EXPECT_NE(err.find("does not match open span"), std::string::npos);
}

TEST(ChromeTraceValidate, RejectsBackwardsTimestamps) {
  const std::string err = error_of(doc_of(
      "[{\"name\":\"a\",\"ph\":\"B\",\"pid\":1,\"tid\":1,\"ts\":5},"
      "{\"name\":\"a\",\"ph\":\"E\",\"pid\":1,\"tid\":1,\"ts\":4}]"));
  EXPECT_NE(err.find("chrome:event 2:"), std::string::npos);
  EXPECT_NE(err.find("goes backwards"), std::string::npos);
}

TEST(ChromeTraceValidate, RejectsDuplicateSpanIds) {
  const std::string err = error_of(doc_of(
      "[{\"name\":\"a\",\"ph\":\"B\",\"pid\":1,\"tid\":1,\"ts\":0,"
      "\"args\":{\"span_id\":\"aa\"}},"
      "{\"name\":\"a\",\"ph\":\"E\",\"pid\":1,\"tid\":1,\"ts\":1},"
      "{\"name\":\"b\",\"ph\":\"B\",\"pid\":1,\"tid\":1,\"ts\":2,"
      "\"args\":{\"span_id\":\"aa\"}},"
      "{\"name\":\"b\",\"ph\":\"E\",\"pid\":1,\"tid\":1,\"ts\":3}]"));
  EXPECT_NE(err.find("chrome:event 3:"), std::string::npos);
  EXPECT_NE(err.find("duplicate span_id"), std::string::npos);
}

TEST(ChromeTraceValidate, RejectsParentNotMatchingEnclosingSpan) {
  const std::string err = error_of(doc_of(
      "[{\"name\":\"a\",\"ph\":\"B\",\"pid\":1,\"tid\":1,\"ts\":0,"
      "\"args\":{\"span_id\":\"aa\"}},"
      "{\"name\":\"b\",\"ph\":\"B\",\"pid\":1,\"tid\":1,\"ts\":1,"
      "\"args\":{\"span_id\":\"bb\",\"parent_span_id\":\"zz\"}}]"));
  EXPECT_NE(err.find("chrome:event 2:"), std::string::npos);
  EXPECT_NE(err.find("does not match enclosing span"), std::string::npos);
}

TEST(ChromeTraceValidate, RejectsUnclosedSpansAtEndOfTrace) {
  const std::string err = error_of(doc_of(
      "[{\"name\":\"a\",\"ph\":\"B\",\"pid\":1,\"tid\":1,\"ts\":0}]"));
  EXPECT_NE(err.find("unclosed span 'a'"), std::string::npos);
}

TEST(ChromeTraceValidate, AcceptsCrossStrandParents) {
  // A strand's root span may parent on a span in another tid; the
  // validator only holds parents to the enclosing stack within a lane.
  const json::Value doc = doc_of(
      "[{\"name\":\"eval\",\"ph\":\"B\",\"pid\":1,\"tid\":1,\"ts\":0,"
      "\"args\":{\"span_id\":\"aa\"}},"
      "{\"name\":\"rep\",\"ph\":\"B\",\"pid\":1,\"tid\":2,\"ts\":0,"
      "\"args\":{\"span_id\":\"bb\",\"parent_span_id\":\"aa\"}},"
      "{\"name\":\"rep\",\"ph\":\"E\",\"pid\":1,\"tid\":2,\"ts\":1},"
      "{\"name\":\"eval\",\"ph\":\"E\",\"pid\":1,\"tid\":1,\"ts\":2}]");
  EXPECT_EQ(validate_chrome_trace(doc), 2u);
}

}  // namespace
}  // namespace ceal::tools
