#include "tools/args.h"

#include <gtest/gtest.h>

#include <vector>

namespace ceal::tools {
namespace {

/// Builds argv from string literals (argv[0] = program name).
struct Argv {
  explicit Argv(std::vector<std::string> tokens)
      : storage(std::move(tokens)) {
    storage.insert(storage.begin(), "prog");
    for (auto& t : storage) ptrs.push_back(t.data());
  }
  int argc() const { return static_cast<int>(ptrs.size()); }
  char** argv() { return ptrs.data(); }

  std::vector<std::string> storage;
  std::vector<char*> ptrs;
};

TEST(Args, FlagPresenceAndAbsence) {
  Argv a({"--verbose"});
  Args args(a.argc(), a.argv(), "usage");
  EXPECT_TRUE(args.flag("verbose"));
  EXPECT_FALSE(args.flag("quiet"));
  args.finish();
}

TEST(Args, OptionReturnsValueOrFallback) {
  Argv a({"--workflow", "LV"});
  Args args(a.argc(), a.argv(), "usage");
  EXPECT_EQ(args.option("workflow", "HS"), "LV");
  EXPECT_EQ(args.option("objective", "exec"), "exec");
  args.finish();
}

TEST(Args, IntegerParsesAndDefaults) {
  Argv a({"--budget", "25"});
  Args args(a.argc(), a.argv(), "usage");
  EXPECT_EQ(args.integer("budget", 0), 25);
  EXPECT_EQ(args.integer("seed", 42), 42);
  args.finish();
}

TEST(Args, RequiredReturnsPresentValue) {
  Argv a({"--out", "file.csv"});
  Args args(a.argc(), a.argv(), "usage");
  EXPECT_EQ(args.required("out"), "file.csv");
  args.finish();
}

TEST(ArgsDeathTest, RequiredMissingExits) {
  Argv a({});
  Args args(a.argc(), a.argv(), "usage");
  EXPECT_EXIT(args.required("out"), ::testing::ExitedWithCode(2),
              "missing required --out");
}

TEST(ArgsDeathTest, UnknownArgumentExits) {
  Argv a({"--bogus", "1"});
  Args args(a.argc(), a.argv(), "usage");
  args.flag("verbose");  // declare something else
  EXPECT_EXIT(args.finish(), ::testing::ExitedWithCode(2),
              "unknown argument");
}

TEST(ArgsDeathTest, HelpPrintsUsageAndExitsZero) {
  Argv a({"--help"});
  Args args(a.argc(), a.argv(), "the usage text");
  EXPECT_EXIT(args.finish(), ::testing::ExitedWithCode(0),
              "");
}

TEST(ArgsDeathTest, MalformedIntegerExits) {
  Argv a({"--budget", "abc"});
  Args args(a.argc(), a.argv(), "usage");
  EXPECT_EXIT(args.integer("budget", 0), ::testing::ExitedWithCode(2),
              "expects an integer");
}

TEST(Args, QuietVerboseAndTraceCombine) {
  // The ceal_tune observability flags: --quiet/--verbose are independent
  // booleans and --trace carries a path; all must survive finish().
  Argv a({"--quiet", "--verbose", "--trace", "out.jsonl",
          "--metrics-summary"});
  Args args(a.argc(), a.argv(), "usage");
  EXPECT_TRUE(args.flag("quiet"));
  EXPECT_TRUE(args.flag("verbose"));
  EXPECT_TRUE(args.flag("metrics-summary"));
  EXPECT_EQ(args.option("trace", ""), "out.jsonl");
  args.finish();
}

TEST(Args, MultipleFlagsAndOptionsTogether) {
  Argv a({"--workflow", "GP", "--history", "--budget", "50", "--explain"});
  Args args(a.argc(), a.argv(), "usage");
  EXPECT_EQ(args.required("workflow"), "GP");
  EXPECT_TRUE(args.flag("history"));
  EXPECT_TRUE(args.flag("explain"));
  EXPECT_EQ(args.integer("budget", 0), 50);
  args.finish();
}

}  // namespace
}  // namespace ceal::tools
