// Strict trace-reading contract (tools/trace_io.h): every defect —
// malformed line, non-object line, empty trace, unreadable file — is a
// TraceReadError whose message is one printable "<name>:<line>: why"
// line. ceal_trace and ceal_report rely on this to turn bad input into
// a one-line error and a nonzero exit.
#include "tools/trace_io.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

namespace ceal::tools {
namespace {

TEST(TraceIo, ReadsOneObjectPerLine) {
  std::istringstream in(
      "{\"event\":\"tune.start\",\"seq\":0}\n"
      "{\"event\":\"tune.finish\",\"seq\":1}\n");
  const auto events = read_trace_stream(in, "t.jsonl");
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].at("event").as_string(), "tune.start");
  EXPECT_EQ(events[1].at("event").as_string(), "tune.finish");
}

TEST(TraceIo, BlankAndWhitespaceLinesAreSkipped) {
  std::istringstream in(
      "\n"
      "{\"event\":\"a\"}\n"
      "   \t\r\n"
      "{\"event\":\"b\"}\n"
      "\n");
  EXPECT_EQ(read_trace_stream(in, "t.jsonl").size(), 2u);
}

TEST(TraceIo, TruncatedLineReportsFileAndLineNumber) {
  std::istringstream in(
      "{\"event\":\"a\"}\n"
      "{\"event\":\"b\",\"seq\":\n");
  try {
    read_trace_stream(in, "trunc.jsonl");
    FAIL() << "expected TraceReadError";
  } catch (const TraceReadError& e) {
    const std::string what = e.what();
    EXPECT_TRUE(what.starts_with("trunc.jsonl:2: malformed trace line"))
        << what;
    EXPECT_EQ(what.find('\n'), std::string::npos) << "multi-line message";
  }
}

TEST(TraceIo, NonObjectLineIsRejected) {
  std::istringstream in("[1,2,3]\n");
  try {
    read_trace_stream(in, "t.jsonl");
    FAIL() << "expected TraceReadError";
  } catch (const TraceReadError& e) {
    EXPECT_STREQ(e.what(), "t.jsonl:1: trace line is not a JSON object");
  }
}

TEST(TraceIo, EmptyTraceIsAnError) {
  std::istringstream empty("");
  EXPECT_THROW(read_trace_stream(empty, "empty.jsonl"), TraceReadError);
  std::istringstream blank("\n  \n");
  try {
    read_trace_stream(blank, "blank.jsonl");
    FAIL() << "expected TraceReadError";
  } catch (const TraceReadError& e) {
    EXPECT_STREQ(e.what(), "blank.jsonl: empty trace (no events)");
  }
}

TEST(TraceIo, MissingFileIsAnError) {
  try {
    read_trace_file("/nonexistent-dir/trace.jsonl");
    FAIL() << "expected TraceReadError";
  } catch (const TraceReadError& e) {
    EXPECT_STREQ(e.what(),
                 "cannot open trace file '/nonexistent-dir/trace.jsonl'");
  }
}

}  // namespace
}  // namespace ceal::tools
