// Metric extraction and regression logic of ceal_report
// (tools/report_core.h): trace summaries sum across files and grow the
// derived metrics, bench JSON prefers the median aggregate, and
// compare() flags regressions by each metric's direction of goodness.
#include "tools/report_core.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/json.h"

namespace ceal::tools::report {
namespace {

std::vector<json::Value> events_of(const std::vector<std::string>& lines) {
  std::vector<json::Value> out;
  out.reserve(lines.size());
  for (const auto& line : lines) out.push_back(json::Value::parse(line));
  return out;
}

TEST(TraceAccumulator, SumsSummariesAcrossFilesAndDerivesRates) {
  TraceAccumulator acc;
  EXPECT_TRUE(acc.empty());
  acc.add(events_of({
      R"({"event":"ceal.switch","iteration":10})",
      R"({"event":"telemetry.summary","seq":9,"measure.requests":20,)"
      R"("measure.failed":2,"gbt.rounds":100,)"
      R"("timing":{"gbt.round.total_s":0.5}})",
  }));
  acc.add(events_of({
      R"({"event":"ceal.switch","iteration":14})",
      R"({"event":"telemetry.summary","seq":3,"measure.requests":10,)"
      R"("measure.censored":1,"gbt.rounds":100,)"
      R"("timing":{"gbt.round.total_s":0.5}})",
  }));
  EXPECT_FALSE(acc.empty());

  const MetricMap m = acc.finish();
  EXPECT_DOUBLE_EQ(m.at("trace.measure.requests"), 30.0);
  EXPECT_DOUBLE_EQ(m.at("trace.gbt.rounds"), 200.0);
  EXPECT_DOUBLE_EQ(m.at("trace.gbt.round.total_s"), 1.0);
  // Derived: switch mean over both traces, failure rate over the sums,
  // fit throughput from rounds / round seconds.
  EXPECT_DOUBLE_EQ(m.at("trace.ceal.switch_iteration.mean"), 12.0);
  EXPECT_DOUBLE_EQ(m.at("trace.measure.failure_rate"), 3.0 / 30.0);
  EXPECT_DOUBLE_EQ(m.at("trace.gbt.fit_rounds_per_s"), 200.0);
  // seq is bookkeeping, not a metric.
  EXPECT_EQ(m.count("trace.seq"), 0u);
}

TEST(TraceAccumulator, NoDerivedMetricsWithoutTheirInputs) {
  TraceAccumulator acc;
  acc.add(events_of({R"({"event":"telemetry.summary","tune.sessions":1})"}));
  const MetricMap m = acc.finish();
  EXPECT_EQ(m.count("trace.measure.failure_rate"), 0u);
  EXPECT_EQ(m.count("trace.gbt.fit_rounds_per_s"), 0u);
  EXPECT_EQ(m.count("trace.ceal.switch_iteration.mean"), 0u);
}

TEST(TraceAccumulator, HistogramStatsAggregateByKindNotBySum) {
  // hist.<name>.count/.sum add across files; order statistics do not:
  // .max/.p50/.p90/.p99 take the max (loud-side), .min the min. The
  // same rules apply inside the timing object (timing.* histograms).
  TraceAccumulator acc;
  acc.add(events_of({
      R"({"event":"telemetry.summary","hist.measure.attempts.count":10,)"
      R"("hist.measure.attempts.sum":14,"hist.measure.attempts.min":1,)"
      R"("hist.measure.attempts.max":3,"hist.measure.attempts.p99":3,)"
      R"("timing":{"hist.timing.serve.step_s.count":4,)"
      R"("hist.timing.serve.step_s.p50":0.2}})",
  }));
  acc.add(events_of({
      R"({"event":"telemetry.summary","hist.measure.attempts.count":5,)"
      R"("hist.measure.attempts.sum":9,"hist.measure.attempts.min":2,)"
      R"("hist.measure.attempts.max":5,"hist.measure.attempts.p99":2,)"
      R"("timing":{"hist.timing.serve.step_s.count":2,)"
      R"("hist.timing.serve.step_s.p50":0.1}})",
  }));
  const MetricMap m = acc.finish();
  EXPECT_DOUBLE_EQ(m.at("trace.hist.measure.attempts.count"), 15.0);
  EXPECT_DOUBLE_EQ(m.at("trace.hist.measure.attempts.sum"), 23.0);
  EXPECT_DOUBLE_EQ(m.at("trace.hist.measure.attempts.min"), 1.0);
  EXPECT_DOUBLE_EQ(m.at("trace.hist.measure.attempts.max"), 5.0);
  EXPECT_DOUBLE_EQ(m.at("trace.hist.measure.attempts.p99"), 3.0);
  EXPECT_DOUBLE_EQ(m.at("trace.hist.timing.serve.step_s.count"), 6.0);
  EXPECT_DOUBLE_EQ(m.at("trace.hist.timing.serve.step_s.p50"), 0.2);
}

TEST(Compare, HistogramMetricsAreDirectionAware) {
  // Latency quantiles regress upward; batch_ok (successes per
  // iteration) regresses downward like recalls and throughputs.
  MetricMap baseline{{"trace.hist.timing.serve.step_s.p99", 1.0},
                     {"trace.hist.iteration.batch_ok.p50", 4.0}};
  MetricMap current{{"trace.hist.timing.serve.step_s.p99", 2.0},
                    {"trace.hist.iteration.batch_ok.p50", 2.0}};
  const auto rows = compare(baseline, current, 0.10);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].name, "trace.hist.iteration.batch_ok.p50");
  EXPECT_TRUE(rows[0].regression);  // fewer batch successes is bad
  EXPECT_EQ(rows[1].name, "trace.hist.timing.serve.step_s.p99");
  EXPECT_TRUE(rows[1].regression);  // higher latency is bad
}

TEST(BenchMetrics, PlainEntriesWhenNoAggregates) {
  const json::Value root = json::Value::parse(
      R"({"benchmarks":[)"
      R"({"name":"BM_Fit","cpu_time":12.5,"real_time":13.0}]})");
  ASSERT_TRUE(is_bench_json(root));
  MetricMap m;
  add_bench_metrics(root, m);
  EXPECT_DOUBLE_EQ(m.at("bench.BM_Fit.cpu_time"), 12.5);
  EXPECT_DOUBLE_EQ(m.at("bench.BM_Fit.real_time"), 13.0);
}

TEST(BenchMetrics, MedianAggregateSuppressesPerRepetitionEntries) {
  const json::Value root = json::Value::parse(
      R"({"benchmarks":[)"
      R"({"name":"BM_Fit/repeats:3","run_name":"BM_Fit","cpu_time":11.0},)"
      R"({"name":"BM_Fit/repeats:3","run_name":"BM_Fit","cpu_time":99.0},)"
      R"({"name":"BM_Fit_mean","run_name":"BM_Fit",)"
      R"("aggregate_name":"mean","cpu_time":55.0},)"
      R"({"name":"BM_Fit_median","run_name":"BM_Fit",)"
      R"("aggregate_name":"median","cpu_time":12.0,"real_time":12.5}]})");
  MetricMap m;
  add_bench_metrics(root, m);
  ASSERT_EQ(m.size(), 2u);  // only the median's two times
  EXPECT_DOUBLE_EQ(m.at("bench.BM_Fit.cpu_time"), 12.0);
  EXPECT_DOUBLE_EQ(m.at("bench.BM_Fit.real_time"), 12.5);
}

TEST(BenchMetrics, CustomCountersBecomeMetricsButBookkeepingDoesNot) {
  const json::Value root = json::Value::parse(
      R"({"benchmarks":[)"
      R"({"name":"BM_Pool/1024","run_type":"iteration",)"
      R"("repetitions":1,"repetition_index":0,"threads":1,)"
      R"("family_index":0,"per_family_instance_index":0,)"
      R"("iterations":50,"real_time":9.0,"cpu_time":8.0,)"
      R"("time_unit":"ms","items_per_second":113777.0,)"
      R"("recall_at_64":0.984,"peak_rss_mb":91.5}]})");
  MetricMap m;
  add_bench_metrics(root, m);
  // The two times plus the three custom counters; iterations, thread
  // counts, and family indices are bookkeeping, not metrics.
  EXPECT_EQ(m.size(), 5u);
  EXPECT_DOUBLE_EQ(m.at("bench.BM_Pool/1024.items_per_second"), 113777.0);
  EXPECT_DOUBLE_EQ(m.at("bench.BM_Pool/1024.recall_at_64"), 0.984);
  EXPECT_DOUBLE_EQ(m.at("bench.BM_Pool/1024.peak_rss_mb"), 91.5);
  EXPECT_EQ(m.count("bench.BM_Pool/1024.iterations"), 0u);
  EXPECT_EQ(m.count("bench.BM_Pool/1024.threads"), 0u);
}

TEST(BenchMetrics, CealHeaderPeakRssIsMaxAcrossFiles) {
  MetricMap m;
  add_bench_metrics(json::Value::parse(
                        R"({"ceal":{"peak_rss_mb":120.0},"benchmarks":[]})"),
                    m);
  add_bench_metrics(json::Value::parse(
                        R"({"ceal":{"peak_rss_mb":80.0},"benchmarks":[]})"),
                    m);
  EXPECT_DOUBLE_EQ(m.at("bench.ceal.peak_rss_mb"), 120.0);
  // Platforms without getrusage report 0: no metric then.
  MetricMap none;
  add_bench_metrics(json::Value::parse(
                        R"({"ceal":{"peak_rss_mb":0.0},"benchmarks":[]})"),
                    none);
  EXPECT_EQ(none.count("bench.ceal.peak_rss_mb"), 0u);
}

TEST(BenchMetrics, NonBenchDocumentsAreRecognised) {
  EXPECT_FALSE(is_bench_json(json::Value::parse(R"({"event":"x"})")));
  EXPECT_FALSE(is_bench_json(json::Value::parse("[1]")));
}

TEST(Compare, DirectionDependsOnTheMetricName) {
  // Times are lower-better: +30% is a regression at 10% tolerance.
  // Throughputs are higher-better: -30% is the regression there.
  const MetricMap base{{"trace.fit.total_s", 1.0},
                       {"trace.gbt.fit_rounds_per_s", 100.0}};
  const MetricMap slower{{"trace.fit.total_s", 1.3},
                         {"trace.gbt.fit_rounds_per_s", 70.0}};
  const auto rows = compare(base, slower, 0.1);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_TRUE(rows[0].regression);  // total_s up
  EXPECT_TRUE(rows[1].regression);  // per_s down
  EXPECT_FALSE(rows[0].improvement);

  const MetricMap faster{{"trace.fit.total_s", 0.7},
                         {"trace.gbt.fit_rounds_per_s", 130.0}};
  for (const auto& row : compare(base, faster, 0.1)) {
    EXPECT_FALSE(row.regression) << row.name;
    EXPECT_TRUE(row.improvement) << row.name;
  }
}

TEST(Compare, BenchCountersAreDirectionAware) {
  // Throughput (configs/sec) and recall are higher-better: a drop is
  // the regression. Peak RSS is lower-better: growth is the regression.
  const MetricMap base{{"bench.BM_Pool/1024.items_per_second", 100000.0},
                       {"bench.BM_Pool/1024.recall_at_64", 1.0},
                       {"bench.ceal.peak_rss_mb", 100.0}};
  const MetricMap worse{{"bench.BM_Pool/1024.items_per_second", 70000.0},
                        {"bench.BM_Pool/1024.recall_at_64", 0.5},
                        {"bench.ceal.peak_rss_mb", 140.0}};
  for (const auto& row : compare(base, worse, 0.1)) {
    EXPECT_TRUE(row.regression) << row.name;
    EXPECT_FALSE(row.improvement) << row.name;
  }
  const MetricMap better{{"bench.BM_Pool/1024.items_per_second", 140000.0},
                         {"bench.BM_Pool/1024.recall_at_64", 1.0},
                         {"bench.ceal.peak_rss_mb", 60.0}};
  std::size_t improved = 0;
  for (const auto& row : compare(base, better, 0.1)) {
    EXPECT_FALSE(row.regression) << row.name;
    improved += row.improvement ? 1 : 0;
  }
  EXPECT_EQ(improved, 2u);  // recall was already at its ceiling
}

TEST(Compare, WithinToleranceIsNeither) {
  const MetricMap base{{"m.total_s", 1.0}};
  const MetricMap cur{{"m.total_s", 1.05}};
  const auto rows = compare(base, cur, 0.1);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_FALSE(rows[0].regression);
  EXPECT_FALSE(rows[0].improvement);
  EXPECT_NEAR(rows[0].rel_delta, 0.05, 1e-12);
}

TEST(Compare, OneSidedMetricsAreReportedButNeverRegress) {
  const MetricMap base{{"gone.total_s", 1.0}};
  const MetricMap cur{{"new.total_s", 2.0}};
  const auto rows = compare(base, cur, 0.1);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_TRUE(rows[0].in_baseline);
  EXPECT_FALSE(rows[0].in_current);
  EXPECT_FALSE(rows[1].in_baseline);
  EXPECT_TRUE(rows[1].in_current);
  for (const auto& row : rows) EXPECT_FALSE(row.regression);
}

TEST(Compare, TinyBaselinesAreNotCompared) {
  const MetricMap base{{"m.count", 0.0}};
  const MetricMap cur{{"m.count", 5.0}};
  const auto rows = compare(base, cur, 0.1);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_FALSE(rows[0].regression);
  EXPECT_DOUBLE_EQ(rows[0].rel_delta, 0.0);
}

TEST(Compare, MergeWalkCoversDisjointAndSharedNamesInOrder) {
  const MetricMap base{{"a", 1.0}, {"c", 1.0}, {"d", 1.0}};
  const MetricMap cur{{"b", 1.0}, {"c", 2.0}, {"d", 1.0}};
  const auto rows = compare(base, cur, 0.5);
  ASSERT_EQ(rows.size(), 4u);
  EXPECT_EQ(rows[0].name, "a");
  EXPECT_EQ(rows[1].name, "b");
  EXPECT_EQ(rows[2].name, "c");
  EXPECT_EQ(rows[3].name, "d");
  EXPECT_TRUE(rows[2].in_baseline && rows[2].in_current);
  EXPECT_TRUE(rows[2].regression);  // +100% > 50%, lower-better
}

}  // namespace
}  // namespace ceal::tools::report
