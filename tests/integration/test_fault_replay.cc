// Deterministic replay under fault injection: the fault sequence is
// drawn from a stream split off the tuner seed, so re-running a tuning
// session with the same seed and a nonzero fault rate must reproduce the
// identical measurement trace, statuses, and final ranking.
#include <gtest/gtest.h>

#include <cmath>

#include "sim/workloads.h"
#include "tuner/active_learning.h"
#include "tuner/ceal.h"
#include "tuner/random_search.h"

namespace ceal::tuner {
namespace {

struct Env {
  sim::Workload wl = sim::make_lv();
  MeasuredPool pool;
  std::vector<ComponentSamples> comps;

  Env()
      : pool(measure_pool(wl.workflow, 400, 61)),
        comps(measure_components(wl.workflow, 120, 62)) {}

  TuningProblem faulty(double fail_prob, std::size_t max_attempts) const {
    TuningProblem prob{&wl, Objective::kExecTime, &pool, &comps, false, {}};
    prob.measurement.faults.fail_prob = fail_prob;
    prob.measurement.max_attempts = max_attempts;
    return prob;
  }
};

const Env& env() {
  static Env e;
  return e;
}

TEST(FaultReplay, SameSeedReproducesIdenticalCealSession) {
  const auto prob = env().faulty(0.2, 3);
  Ceal ceal;
  ceal::Rng rng_a(17), rng_b(17);
  const TuneResult a = ceal.tune(prob, 40, rng_a);
  const TuneResult b = ceal.tune(prob, 40, rng_b);

  // Identical traces, not just identical summaries: every requested
  // index in the same order, with the same per-entry fault verdicts.
  EXPECT_EQ(a.measured_indices, b.measured_indices);
  EXPECT_EQ(a.measured_statuses, b.measured_statuses);
  EXPECT_EQ(a.failed_runs, b.failed_runs);
  EXPECT_EQ(a.runs_used, b.runs_used);
  EXPECT_EQ(a.best_predicted_index, b.best_predicted_index);
  ASSERT_EQ(a.model_scores.size(), b.model_scores.size());
  for (std::size_t i = 0; i < a.model_scores.size(); ++i) {
    ASSERT_EQ(a.model_scores[i], b.model_scores[i]) << "index " << i;
  }
}

TEST(FaultReplay, DifferentSeedsDivergeUnderFaults) {
  // Sanity check on the replay test itself: the fault channel is really
  // random across seeds, so distinct seeds should produce distinct
  // traces (else the identity above would be vacuous).
  const auto prob = env().faulty(0.3, 2);
  Ceal ceal;
  ceal::Rng rng_a(1), rng_b(2);
  const TuneResult a = ceal.tune(prob, 40, rng_a);
  const TuneResult b = ceal.tune(prob, 40, rng_b);
  EXPECT_NE(a.measured_indices, b.measured_indices);
}

TEST(FaultReplay, CealCompletesWithinBudgetUnderHeavyFaults) {
  const auto prob = env().faulty(0.2, 3);
  Ceal ceal;
  ceal::Rng rng(23);
  const TuneResult result = ceal.tune(prob, 50, rng);
  EXPECT_LE(result.runs_used, 50u);
  EXPECT_EQ(result.model_scores.size(), env().pool.size());
  EXPECT_LT(result.best_predicted_index, env().pool.size());
  // The session must still deliver a usable recommendation: a finite
  // score for the winner and at least one successful measurement.
  EXPECT_TRUE(std::isfinite(result.model_scores[result.best_predicted_index]));
  EXPECT_GT(result.measured_indices.size(), result.failed_runs);
}

TEST(FaultReplay, EverySearcherSurvivesFaultInjection) {
  const auto prob = env().faulty(0.25, 2);
  ceal::Rng rng(31);
  RandomSearch rs;
  ActiveLearning al;
  for (const AutoTuner* algo :
       std::initializer_list<const AutoTuner*>{&rs, &al}) {
    ceal::Rng run_rng(rng.uniform_u64(1u << 30));
    const TuneResult result = algo->tune(prob, 30, run_rng);
    EXPECT_LE(result.runs_used, 30u) << algo->name();
    EXPECT_EQ(result.model_scores.size(), env().pool.size()) << algo->name();
  }
}

}  // namespace
}  // namespace ceal::tuner
