// Kill-and-resume equivalence, swept over every crash point: a
// checkpointed session killed after record k (for all k) and resumed
// must produce a TuneResult bitwise identical to an uninterrupted run —
// under fault injection, at 1 and at 4 worker threads, and with a torn
// journal tail (the partial final record a SIGKILL mid-append leaves).
//
// The "kill" here is simulated by truncating the journal to its first k
// records and resuming from the prefix — exactly the state a killed
// process leaves on disk, at every record boundary, without the expense
// of forking a process per k (tools/run_tier1.sh kills a real ceal_tune
// with SIGKILL for the end-to-end version).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "core/journal.h"
#include "core/parallel.h"
#include "sim/workloads.h"
#include "tuner/active_learning.h"
#include "tuner/ceal.h"
#include "tuner/checkpoint.h"
#include "tuner/random_search.h"

namespace ceal::tuner {
namespace {

constexpr std::uint64_t kSeed = 13;
constexpr std::size_t kBudget = 12;

struct Env {
  sim::Workload wl = sim::make_lv();
  MeasuredPool pool;
  std::vector<ComponentSamples> comps;

  Env()
      : pool(measure_pool(wl.workflow, 150, 81)),
        comps(measure_components(wl.workflow, 60, 82)) {}

  TuningProblem problem(double fail_prob) const {
    TuningProblem prob{&wl, Objective::kExecTime, &pool, &comps, false, {}};
    prob.measurement.faults.fail_prob = fail_prob;
    prob.measurement.max_attempts = 2;
    return prob;
  }
};

const Env& env() {
  static Env e;
  return e;
}

void expect_same_result(const TuneResult& a, const TuneResult& b,
                        const std::string& context) {
  ASSERT_EQ(a.measured_indices, b.measured_indices) << context;
  ASSERT_EQ(a.measured_statuses, b.measured_statuses) << context;
  ASSERT_EQ(a.failed_runs, b.failed_runs) << context;
  ASSERT_EQ(a.best_predicted_index, b.best_predicted_index) << context;
  ASSERT_EQ(a.best_measured_index, b.best_measured_index) << context;
  ASSERT_EQ(a.runs_used, b.runs_used) << context;
  ASSERT_EQ(a.cost_exec_s, b.cost_exec_s) << context;
  ASSERT_EQ(a.cost_comp_ch, b.cost_comp_ch) << context;
  ASSERT_EQ(a.model_scores.size(), b.model_scores.size()) << context;
  for (std::size_t i = 0; i < a.model_scores.size(); ++i) {
    ASSERT_EQ(a.model_scores[i], b.model_scores[i])
        << context << ", score " << i;
  }
}

std::string slurp(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(is),
          std::istreambuf_iterator<char>()};
}

void write_raw(const std::string& path, const std::string& bytes) {
  std::remove(path.c_str());
  std::ofstream os(path, std::ios::binary);
  os << bytes;
}

/// Byte offsets of the journal's record boundaries: boundaries[k] is
/// where record k ends (boundaries[0] == 0).
std::vector<std::size_t> record_boundaries(const std::string& bytes) {
  std::vector<std::size_t> boundaries{0};
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    if (bytes[i] == '\n') boundaries.push_back(i + 1);
  }
  return boundaries;
}

class CrashMatrixTest : public ::testing::Test {
 protected:
  CrashMatrixTest()
      : path_(::testing::TempDir() + "ceal_crash_matrix.cealj") {
    std::remove(path_.c_str());
  }
  void TearDown() override {
    std::remove(path_.c_str());
    set_global_thread_pool_threads(0);
  }

  TuneResult resume_from(const std::string& prefix_bytes,
                         const AutoTuner& algo, const TuningProblem& prob) {
    write_raw(path_, prefix_bytes);
    CheckpointSession session(path_, CheckpointSession::Mode::kResume);
    Rng rng(kSeed);
    return algo.tune(prob, kBudget, rng, &session);
  }

  /// The full sweep for one algorithm: uninterrupted baseline, then a
  /// resume from the journal prefix at every record boundary k >= 1.
  void sweep(const AutoTuner& algo, const TuningProblem& prob) {
    // Uninterrupted baseline, no checkpoint: the null path.
    Rng baseline_rng(kSeed);
    const TuneResult baseline = algo.tune(prob, kBudget, baseline_rng);

    // Uninterrupted checkpointed run: same result, and its journal is
    // the ground truth every crash prefix below is cut from.
    std::remove(path_.c_str());
    {
      CheckpointSession session(path_, CheckpointSession::Mode::kStart);
      Rng rng(kSeed);
      const TuneResult checkpointed =
          algo.tune(prob, kBudget, rng, &session);
      expect_same_result(checkpointed, baseline,
                         algo.name() + " checkpointed");
    }
    const std::string journal = slurp(path_);
    const auto boundaries = record_boundaries(journal);
    const std::size_t n = boundaries.size() - 1;
    ASSERT_GT(n, 2u) << algo.name();

    for (std::size_t k = 1; k <= n; ++k) {
      const TuneResult resumed =
          resume_from(journal.substr(0, boundaries[k]), algo, prob);
      expect_same_result(resumed, baseline,
                         algo.name() + " killed after record " +
                             std::to_string(k) + "/" + std::to_string(n));
    }
  }

  std::string path_;
};

TEST_F(CrashMatrixTest, CealSurvivesAKillAtEveryRecordBoundary) {
  set_global_thread_pool_threads(1);
  sweep(Ceal(), env().problem(0.2));
}

TEST_F(CrashMatrixTest, CealCrashMatrixIsThreadCountInvariant) {
  set_global_thread_pool_threads(4);
  sweep(Ceal(), env().problem(0.2));
}

TEST_F(CrashMatrixTest, TornTailsResumeLikeCleanBoundaries) {
  // A SIGKILL mid-append leaves k whole records plus a partial line;
  // resume must drop the fragment and continue from record k.
  const TuningProblem prob = env().problem(0.2);
  const Ceal algo;
  Rng baseline_rng(kSeed);
  const TuneResult baseline = algo.tune(prob, kBudget, baseline_rng);
  std::remove(path_.c_str());
  {
    CheckpointSession session(path_, CheckpointSession::Mode::kStart);
    Rng rng(kSeed);
    algo.tune(prob, kBudget, rng, &session);
  }
  const std::string journal = slurp(path_);
  const auto boundaries = record_boundaries(journal);
  const std::size_t n = boundaries.size() - 1;
  for (std::size_t k = 1; k + 1 <= n; k += 3) {
    // Cut partway into record k+1 (at least one byte past the boundary,
    // at most one byte short of its newline).
    const std::size_t cut =
        boundaries[k] + (boundaries[k + 1] - boundaries[k]) / 2;
    const TuneResult resumed =
        resume_from(journal.substr(0, cut), algo, prob);
    expect_same_result(resumed, baseline,
                       "torn tail inside record " + std::to_string(k + 1));
  }
}

TEST_F(CrashMatrixTest, FaultFreeSessionsResumeToo) {
  // Without fault injection there is no fault-rng state to hand across
  // the crash; the measure records alone must carry the session.
  const TuningProblem prob = env().problem(0.0);
  const Ceal algo;
  Rng baseline_rng(kSeed);
  const TuneResult baseline = algo.tune(prob, kBudget, baseline_rng);
  std::remove(path_.c_str());
  {
    CheckpointSession session(path_, CheckpointSession::Mode::kStart);
    Rng rng(kSeed);
    algo.tune(prob, kBudget, rng, &session);
  }
  const std::string journal = slurp(path_);
  const auto boundaries = record_boundaries(journal);
  const std::size_t mid = (boundaries.size() - 1) / 2;
  const TuneResult resumed =
      resume_from(journal.substr(0, boundaries[mid]), algo, prob);
  expect_same_result(resumed, baseline, "fault-free resume");
}

TEST_F(CrashMatrixTest, OtherSearchersSurviveMidSessionKills) {
  // Spot-check the shared-helper path: AL and RS journal through the
  // same Collector/measure_batch machinery as CEAL.
  const TuningProblem prob = env().problem(0.2);
  const ActiveLearning al;
  const RandomSearch rs;
  for (const AutoTuner* algo :
       std::initializer_list<const AutoTuner*>{&al, &rs}) {
    Rng baseline_rng(kSeed);
    const TuneResult baseline = algo->tune(prob, kBudget, baseline_rng);
    std::remove(path_.c_str());
    {
      CheckpointSession session(path_, CheckpointSession::Mode::kStart);
      Rng rng(kSeed);
      algo->tune(prob, kBudget, rng, &session);
    }
    const std::string journal = slurp(path_);
    const auto boundaries = record_boundaries(journal);
    const std::size_t n = boundaries.size() - 1;
    ASSERT_GT(n, 2u) << algo->name();
    for (const std::size_t k : {std::size_t{1}, n / 2, n - 1}) {
      const TuneResult resumed =
          resume_from(journal.substr(0, boundaries[k]), *algo, prob);
      expect_same_result(resumed, baseline,
                         algo->name() + " killed after record " +
                             std::to_string(k));
    }
  }
}

}  // namespace
}  // namespace ceal::tuner
