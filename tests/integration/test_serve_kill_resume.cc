// Daemon kill/resume equivalence, swept over every journal record
// boundary: a checkpointed serve session whose daemon dies after record
// k (for all k) and restarts with --resume must finish with a result
// CSV byte-identical to the uninterrupted daemon's — and its completed
// journal must converge to the same bytes. The "kill" is simulated by
// rebuilding a ServerCore over a manifest plus a k-record journal
// prefix, exactly the disk state a SIGKILLed daemon leaves at boundary
// k (tools/run_tier1.sh SIGKILLs a real ceal_serve for the end-to-end
// version).
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "serve/server.h"

namespace ceal::serve {
namespace {

// Fault injection + retries on: the journal then carries fault-rng
// handoffs, the hardest state to resume.
const char* kCreateLine =
    "{\"op\":\"session.create\",\"id\":\"kr1\",\"workflow\":\"LV\","
    "\"objective\":\"exec\",\"budget\":10,\"algorithm\":\"CEAL\","
    "\"seed\":5,\"pool_size\":120,\"pool_seed\":31,"
    "\"component_samples\":50,\"fault_rate\":0.15,\"max_attempts\":2}";

std::string slurp(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(is),
          std::istreambuf_iterator<char>()};
}

void write_raw(const std::string& path, const std::string& bytes) {
  std::remove(path.c_str());
  std::ofstream os(path, std::ios::binary);
  os << bytes;
}

/// Byte offsets of the journal's record boundaries: boundaries[k] is
/// where record k ends (boundaries[0] == 0).
std::vector<std::size_t> record_boundaries(const std::string& bytes) {
  std::vector<std::size_t> boundaries{0};
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    if (bytes[i] == '\n') boundaries.push_back(i + 1);
  }
  return boundaries;
}

class ServeKillResumeTest : public ::testing::Test {
 protected:
  ServeKillResumeTest() : root_(::testing::TempDir() + "ceal_serve_kr") {
    std::filesystem::remove_all(root_);
    std::filesystem::create_directories(root_);
  }
  void TearDown() override { std::filesystem::remove_all(root_); }

  ServerOptions options(const std::string& dir) const {
    ServerOptions opts;
    opts.checkpoint_dir = dir;
    return opts;
  }

  /// Drives the session to completion and returns its result CSV bytes.
  std::string finish_and_save(ServerCore& core, const std::string& tag) {
    EXPECT_TRUE(json::Value::parse(
                    core.handle_line("{\"op\":\"session.step\",\"id\":"
                                     "\"kr1\",\"steps\":1000}"))
                    .at("ok")
                    .as_bool());
    const std::string csv = root_ + "/" + tag + ".csv";
    const json::Value response = json::Value::parse(core.handle_line(
        "{\"op\":\"session.query\",\"id\":\"kr1\",\"save_result\":\"" +
        csv + "\"}"));
    EXPECT_TRUE(response.at("ok").as_bool()) << response.dump();
    EXPECT_EQ(response.at("state").as_string(), "done") << response.dump();
    return slurp(csv);
  }

  std::string root_;
};

TEST_F(ServeKillResumeTest, EveryRecordBoundaryResumesBitwiseIdentically) {
  // Uninterrupted daemon: the reference CSV and the ground-truth
  // journal every crash prefix below is cut from.
  const std::string ref_dir = root_ + "/ref";
  ServerCore reference{options(ref_dir)};
  ASSERT_TRUE(json::Value::parse(reference.handle_line(kCreateLine))
                  .at("ok")
                  .as_bool());
  const std::string ref_csv = finish_and_save(reference, "ref");
  ASSERT_FALSE(ref_csv.empty());
  const std::string manifest = slurp(ref_dir + "/kr1.session.json");
  ASSERT_FALSE(manifest.empty());
  const std::string journal = slurp(ref_dir + "/kr1.cealj");
  const auto boundaries = record_boundaries(journal);
  const std::size_t n = boundaries.size() - 1;
  ASSERT_GT(n, 3u);

  // k = 0: killed before the first durable record — the manifest alone
  // must rebuild the session from scratch. k = n: killed after the
  // terminal record — resume replays the whole journal through to done.
  for (std::size_t k = 0; k <= n; ++k) {
    const std::string dir = root_ + "/kill" + std::to_string(k);
    std::filesystem::create_directories(dir);
    write_raw(dir + "/kr1.session.json", manifest);
    if (k > 0) {
      write_raw(dir + "/kr1.cealj", journal.substr(0, boundaries[k]));
    }
    ServerCore resumed{options(dir)};
    ASSERT_EQ(resumed.resume_sessions(), 1u) << "boundary " << k;
    const std::string csv =
        finish_and_save(resumed, "kill" + std::to_string(k));
    EXPECT_EQ(csv, ref_csv) << "killed after record " << k << "/" << n;
    // The resumed daemon's completed journal converges to the
    // uninterrupted daemon's bytes.
    EXPECT_EQ(slurp(dir + "/kr1.cealj"), journal)
        << "journal diverged at boundary " << k;
  }
}

TEST_F(ServeKillResumeTest, TornJournalTailsResumeToo) {
  const std::string ref_dir = root_ + "/ref";
  ServerCore reference{options(ref_dir)};
  ASSERT_TRUE(json::Value::parse(reference.handle_line(kCreateLine))
                  .at("ok")
                  .as_bool());
  const std::string ref_csv = finish_and_save(reference, "ref");
  const std::string manifest = slurp(ref_dir + "/kr1.session.json");
  const std::string journal = slurp(ref_dir + "/kr1.cealj");
  const auto boundaries = record_boundaries(journal);
  const std::size_t n = boundaries.size() - 1;
  for (std::size_t k = 1; k + 1 <= n; k += 3) {
    // A SIGKILL mid-append leaves k whole records plus a fragment of
    // record k+1; resume must drop the fragment and continue.
    const std::size_t cut =
        boundaries[k] + (boundaries[k + 1] - boundaries[k]) / 2;
    const std::string dir = root_ + "/torn" + std::to_string(k);
    std::filesystem::create_directories(dir);
    write_raw(dir + "/kr1.session.json", manifest);
    write_raw(dir + "/kr1.cealj", journal.substr(0, cut));
    ServerCore resumed{options(dir)};
    ASSERT_EQ(resumed.resume_sessions(), 1u);
    const std::string csv =
        finish_and_save(resumed, "torn" + std::to_string(k));
    EXPECT_EQ(csv, ref_csv) << "torn tail inside record " << k + 1;
  }
}

TEST_F(ServeKillResumeTest, ResumeRefusesCorruptDurableState) {
  const std::string dir = root_ + "/corrupt";
  std::filesystem::create_directories(dir);
  // Manifest whose id contradicts its filename.
  write_raw(dir + "/other.session.json",
            "{\"id\":\"kr1\",\"workflow\":\"LV\",\"objective\":\"exec\","
            "\"algorithm\":\"CEAL\",\"budget\":10,\"seed\":5,"
            "\"pool_size\":120,\"pool_seed\":31,\"component_samples\":50,"
            "\"history\":false,\"fault_rate\":0.15,\"outlier_rate\":0,"
            "\"deadline\":0,\"max_attempts\":2}");
  {
    ServerCore core{options(dir)};
    EXPECT_THROW(core.resume_sessions(), ProtocolError);
  }
  std::filesystem::remove(dir + "/other.session.json");
  // Unparseable manifest.
  write_raw(dir + "/kr1.session.json", "{\"id\":");
  {
    ServerCore core{options(dir)};
    EXPECT_THROW(core.resume_sessions(), ProtocolError);
  }
}

TEST_F(ServeKillResumeTest, CancelledSessionsAreNotResurrected) {
  const std::string dir = root_ + "/cancel";
  ServerCore core{options(dir)};
  ASSERT_TRUE(json::Value::parse(core.handle_line(kCreateLine))
                  .at("ok")
                  .as_bool());
  ASSERT_TRUE(json::Value::parse(
                  core.handle_line("{\"op\":\"session.step\",\"id\":"
                                   "\"kr1\",\"steps\":1}"))
                  .at("ok")
                  .as_bool());
  ASSERT_TRUE(json::Value::parse(core.handle_line(
                                     "{\"op\":\"session.cancel\",\"id\":"
                                     "\"kr1\"}"))
                  .at("ok")
                  .as_bool());
  EXPECT_FALSE(std::filesystem::exists(dir + "/kr1.session.json"));
  EXPECT_FALSE(std::filesystem::exists(dir + "/kr1.cealj"));
  ServerCore restarted{options(dir)};
  EXPECT_EQ(restarted.resume_sessions(), 0u);
}

}  // namespace
}  // namespace ceal::serve
