// Slow stress sweep (ctest -L slow): every searcher against a grid of
// failure rates and retry policies, checking the invariants that the
// cheap tier only spot-checks — budget never overruns, rankings stay
// finite, and the measured trace always accounts for every status.
#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "sim/workloads.h"
#include "tuner/active_learning.h"
#include "tuner/bayes_opt.h"
#include "tuner/ceal.h"
#include "tuner/random_search.h"

namespace ceal::tuner {
namespace {

TEST(FaultStress, EverySearcherOnEveryFaultGrid) {
  sim::Workload wl = sim::make_lv();
  const MeasuredPool pool = measure_pool(wl.workflow, 300, 71);
  const auto comps = measure_components(wl.workflow, 90, 72);

  RandomSearch rs;
  ActiveLearning al;
  Ceal ceal;
  BayesOpt bo;
  const AutoTuner* algos[] = {&rs, &al, &ceal, &bo};

  std::uint64_t seed = 1;
  for (const double rate : {0.1, 0.3, 0.5}) {
    for (const std::size_t attempts : {std::size_t{1}, std::size_t{3}}) {
      TuningProblem prob{&wl, Objective::kExecTime, &pool, &comps, false,
                         {}};
      prob.measurement.faults.fail_prob = rate;
      prob.measurement.faults.outlier_prob = 0.05;
      prob.measurement.max_attempts = attempts;
      for (const AutoTuner* algo : algos) {
        ceal::Rng rng(seed++);
        const TuneResult result = algo->tune(prob, 30, rng);
        const std::string label = algo->name() + " rate " +
                                  std::to_string(rate) + " attempts " +
                                  std::to_string(attempts);
        EXPECT_LE(result.runs_used, 30u) << label;
        EXPECT_EQ(result.model_scores.size(), pool.size()) << label;
        EXPECT_EQ(result.measured_statuses.size(),
                  result.measured_indices.size())
            << label;
        EXPECT_GT(result.measured_indices.size(), result.failed_runs)
            << label;
        for (const double s : result.model_scores) {
          ASSERT_TRUE(std::isfinite(s)) << label;
        }
      }
    }
  }
}

}  // namespace
}  // namespace ceal::tuner
