// End-to-end integration tests: build a workflow, measure pools, run the
// complete bootstrapped auto-tuning pipeline, and check the paper's
// qualitative claims hold on this build.
#include <gtest/gtest.h>

#include <memory>

#include "ml/metrics.h"
#include "sim/workloads.h"
#include "tuner/active_learning.h"
#include "tuner/ceal.h"
#include "tuner/evaluation.h"
#include "tuner/low_fidelity.h"
#include "tuner/random_search.h"

namespace ceal::tuner {
namespace {

struct Env {
  sim::Workload wl = sim::make_lv();
  MeasuredPool pool;
  std::vector<ComponentSamples> comps;

  Env()
      : pool(measure_pool(wl.workflow, 600, 41)),
        comps(measure_components(wl.workflow, 200, 42)) {}
};

Env& env() {
  static Env e;
  return e;
}

TEST(EndToEnd, LowFidelityModelBeatsRandomOrderingAtRecall) {
  // Fig. 4's claim: the ACM combination ranks configurations far better
  // than a random ordering.
  auto& e = env();
  ceal::Rng rng(1);
  std::vector<std::vector<std::size_t>> all(e.comps.size());
  for (std::size_t j = 0; j < e.comps.size(); ++j) {
    all[j].resize(e.comps[j].size());
    for (std::size_t i = 0; i < e.comps[j].size(); ++i) all[j][i] = i;
  }
  auto cm = std::make_shared<const ComponentModelSet>(
      e.wl.workflow, Objective::kExecTime, e.comps, all, rng);
  const LowFidelityModel lf(e.wl.workflow, Objective::kExecTime, cm);
  const auto scores = lf.score_many(e.pool.configs);

  // Random ordering recall for top-25 of 600 is ~4% in expectation; the
  // low-fidelity model must do far better.
  const double recall25 =
      ml::recall_score_percent(25, scores, e.pool.exec_s);
  EXPECT_GT(recall25, 20.0);
}

TEST(EndToEnd, CealBeatsRandomSamplingAtEqualBudget) {
  auto& e = env();
  TuningProblem prob{&e.wl, Objective::kExecTime, &e.pool, &e.comps, false, {}};
  Ceal ceal;
  RandomSearch rs;
  const auto s_ceal = evaluate(prob, ceal, 50, 12, 5);
  const auto s_rs = evaluate(prob, rs, 50, 12, 5);
  EXPECT_LT(s_ceal.mean_norm_perf, s_rs.mean_norm_perf);
}

TEST(EndToEnd, HistoriesImproveCeal) {
  // Fig. 9's claim: historical component measurements let CEAL spend the
  // whole budget on workflow runs and find better configurations.
  auto& e = env();
  TuningProblem no_hist{&e.wl, Objective::kComputerTime, &e.pool, &e.comps,
                        false, {}};
  TuningProblem hist = no_hist;
  hist.components_are_history = true;
  Ceal ceal;
  const auto s_no = evaluate(no_hist, ceal, 25, 12, 6);
  const auto s_yes = evaluate(hist, ceal, 25, 12, 6);
  EXPECT_LE(s_yes.mean_norm_perf, s_no.mean_norm_perf * 1.05);
}

TEST(EndToEnd, CealTopConfigPredictionsAreAccurate) {
  // Fig. 6's claim: CEAL's surrogate is accurate for the top
  // configurations even when its global MdAPE is unremarkable.
  auto& e = env();
  TuningProblem prob{&e.wl, Objective::kExecTime, &e.pool, &e.comps, true, {}};
  Ceal ceal;
  const auto s = evaluate(prob, ceal, 50, 12, 7);
  EXPECT_LT(s.mean_mdape_top2, 60.0);
}

TEST(EndToEnd, WholePipelineRunsOnEveryWorkflow) {
  for (auto& wl : sim::make_all_workloads()) {
    const auto pool = measure_pool(wl.workflow, 200, 51);
    const auto comps = measure_components(wl.workflow, 40, 52);
    for (const auto obj :
         {Objective::kExecTime, Objective::kComputerTime}) {
      TuningProblem prob{&wl, obj, &pool, &comps, false, {}};
      Ceal ceal;
      ceal::Rng rng(8);
      const auto result = ceal.tune(prob, 20, rng);
      EXPECT_EQ(result.model_scores.size(), pool.size())
          << wl.workflow.name() << " " << objective_name(obj);
      EXPECT_LE(result.runs_used, 20u);
    }
  }
}

TEST(EndToEnd, RecommendedConfigIsNearPoolOptimum) {
  auto& e = env();
  TuningProblem prob{&e.wl, Objective::kExecTime, &e.pool, &e.comps, true, {}};
  Ceal ceal;
  const auto s = evaluate(prob, ceal, 50, 12, 9);
  // Within 25% of the pool optimum on average (paper: within ~5-15%).
  EXPECT_LT(s.mean_norm_perf, 1.25);
}

}  // namespace
}  // namespace ceal::tuner
