#include "sim/scaling.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>

#include "core/error.h"

namespace ceal::sim {
namespace {

ScalingParams basic() {
  ScalingParams p;
  p.serial_s = 0.1;
  p.work_core_s = 100.0;
  p.thread_frac = 0.5;
  p.mem_slope = 1.0;
  p.comm_log_s = 0.02;
  p.comm_lin_s = 0.1;
  p.p_ref = 1000.0;
  p.halo_s = 0.0;
  return p;
}

TEST(ScalingModel, SerialFloorIsNeverUndershot) {
  const ScalingModel model(basic());
  const MachineSpec machine;
  for (int p = 1; p <= 1024; p *= 2) {
    EXPECT_GT(model.step_time(p, 1, 1, 1.0, machine), basic().serial_s);
  }
}

TEST(ScalingModel, SmallScaleSpeedupIsNearLinear) {
  const ScalingModel model(basic());
  const MachineSpec machine;
  const double t1 = model.step_time(1, 1, 1, 1.0, machine);
  const double t2 = model.step_time(2, 1, 1, 1.0, machine);
  EXPECT_LT(t2, t1);
  EXPECT_GT(t2, t1 / 2.2);  // not super-linear
}

TEST(ScalingModel, CommunicationEventuallyDominates) {
  // Strong-scaling curve is U-shaped: time at very high p exceeds the
  // minimum over p.
  const ScalingModel model(basic());
  const MachineSpec machine;
  double best = std::numeric_limits<double>::infinity();
  for (int p = 1; p <= 100000; p *= 2) {
    best = std::min(best, model.step_time(p, 1, 1, 1.0, machine));
  }
  EXPECT_GT(model.step_time(100000, 1, 1, 1.0, machine), best * 1.5);
}

TEST(ScalingModel, FullerNodesSufferMemoryContention) {
  const ScalingModel model(basic());
  const MachineSpec machine;  // 36 cores/node
  const double sparse = model.step_time(36, 6, 1, 1.0, machine);
  const double packed = model.step_time(36, 36, 1, 1.0, machine);
  EXPECT_GT(packed, sparse);
}

TEST(ScalingModel, ContentionKneeIsSharpNearFullOccupancy) {
  // The cubic occupancy curve makes the marginal penalty grow: the jump
  // from 24->36 ppn exceeds the jump from 1->12 ppn.
  const ScalingModel model(basic());
  const MachineSpec machine;
  const double lo = model.step_time(36, 1, 1, 1.0, machine);
  const double mid = model.step_time(36, 12, 1, 1.0, machine);
  const double hi = model.step_time(36, 24, 1, 1.0, machine);
  const double full = model.step_time(36, 36, 1, 1.0, machine);
  EXPECT_GT(full - hi, mid - lo);
}

TEST(ScalingModel, ThreadsHelpAccordingToThreadFraction) {
  ScalingParams p = basic();
  p.comm_log_s = 0.0;
  p.comm_lin_s = 0.0;
  p.mem_slope = 0.0;
  const ScalingModel model(p);
  const MachineSpec machine;
  const double t1 = model.step_time(4, 1, 1, 1.0, machine);
  const double t4 = model.step_time(4, 1, 4, 1.0, machine);
  // workers = 1 + 3 * 0.5 = 2.5 per process.
  EXPECT_NEAR((t1 - p.serial_s) / (t4 - p.serial_s), 2.5, 1e-9);
}

TEST(ScalingModel, ZeroThreadFractionIgnoresThreadsInWork) {
  ScalingParams p = basic();
  p.thread_frac = 0.0;
  p.mem_slope = 0.0;
  const ScalingModel model(p);
  const MachineSpec machine;
  // With ppn=1, tpp 1 vs 2 keeps occupancy below one node's cores.
  EXPECT_DOUBLE_EQ(model.step_time(8, 1, 1, 1.0, machine),
                   model.step_time(8, 1, 2, 1.0, machine));
}

TEST(ScalingModel, OversubscriptionSlowsDown) {
  ScalingParams p = basic();
  p.thread_frac = 0.0;  // threads give no speedup, only occupancy
  const ScalingModel model(p);
  const MachineSpec machine;
  const double fits = model.step_time(36, 36, 1, 1.0, machine);
  const double oversub = model.step_time(36, 36, 4, 1.0, machine);
  EXPECT_GT(oversub, fits);
}

TEST(ScalingModel, SkewedDecompositionCostsMoreWithHalo) {
  ScalingParams p = basic();
  p.halo_s = 1.0;
  const ScalingModel model(p);
  const MachineSpec machine;
  EXPECT_GT(model.step_time(64, 8, 1, 4.0, machine),
            model.step_time(64, 8, 1, 1.0, machine));
}

TEST(ScalingModel, RejectsInvalidArguments) {
  const ScalingModel model(basic());
  const MachineSpec machine;
  EXPECT_THROW(model.step_time(0, 1, 1, 1.0, machine),
               ceal::PreconditionError);
  EXPECT_THROW(model.step_time(1, 0, 1, 1.0, machine),
               ceal::PreconditionError);
  EXPECT_THROW(model.step_time(1, 1, 1, 0.5, machine),
               ceal::PreconditionError);
}

TEST(ScalingModel, RejectsInvalidParams) {
  ScalingParams p = basic();
  p.thread_frac = 1.5;
  EXPECT_THROW(ScalingModel{p}, ceal::PreconditionError);
  p = basic();
  p.p_ref = 0.0;
  EXPECT_THROW(ScalingModel{p}, ceal::PreconditionError);
}

TEST(MachineSpec, CoreHoursArithmetic) {
  const MachineSpec machine;  // 36 cores/node
  EXPECT_DOUBLE_EQ(machine.core_hours(2, 3600.0), 72.0);
  EXPECT_DOUBLE_EQ(machine.core_hours(1, 100.0), 1.0);
}

}  // namespace
}  // namespace ceal::sim
