// Parameterized property sweep over every (workflow, objective) pair:
// invariants the coupling simulator must satisfy regardless of workload.
#include <gtest/gtest.h>

#include "core/rng.h"
#include "core/stats.h"
#include "sim/workloads.h"
#include "tuner/objective.h"

namespace ceal::sim {
namespace {

using tuner::Objective;

class WorkflowProperty
    : public ::testing::TestWithParam<std::tuple<int, Objective>> {
 protected:
  WorkflowProperty() {
    const auto all = make_all_workloads();
    wl_ = std::make_unique<Workload>(all[static_cast<std::size_t>(
        std::get<0>(GetParam()))]);
  }

  Objective objective() const { return std::get<1>(GetParam()); }
  std::unique_ptr<Workload> wl_;
};

TEST_P(WorkflowProperty, MetricsArePositiveOnRandomConfigs) {
  ceal::Rng rng(1);
  for (int i = 0; i < 30; ++i) {
    const auto c = wl_->workflow.joint_space().random_valid(rng);
    const auto m = wl_->workflow.expected(c);
    EXPECT_GT(tuner::metric(m, objective()), 0.0);
    EXPECT_GE(m.nodes, static_cast<int>(wl_->workflow.component_count()));
    EXPECT_LE(m.nodes, wl_->workflow.machine().allocation_nodes);
  }
}

TEST_P(WorkflowProperty, NoiseIsUnbiasedInTheMedian) {
  ceal::Rng rng(2);
  const auto c = wl_->workflow.joint_space().random_valid(rng);
  const double expected = tuner::metric(wl_->workflow.expected(c),
                                        objective());
  std::vector<double> runs(301);
  for (auto& r : runs) {
    r = tuner::metric(wl_->workflow.run(c, rng), objective());
  }
  // Lognormal noise has median 1, so the median run matches expectation.
  EXPECT_NEAR(ceal::median(runs), expected, expected * 0.02);
}

TEST_P(WorkflowProperty, ComputerTimeDominatesSingleNodeExecTime) {
  // comp_ch = exec_s * nodes * cores / 3600 with nodes >= component count,
  // so comp/exec ratio is bounded below by cores/3600 * components.
  ceal::Rng rng(3);
  for (int i = 0; i < 20; ++i) {
    const auto c = wl_->workflow.joint_space().random_valid(rng);
    const auto m = wl_->workflow.expected(c);
    const double cores = wl_->workflow.machine().cores_per_node;
    EXPECT_NEAR(m.comp_ch, m.exec_s * m.nodes * cores / 3600.0,
                1e-9 * m.comp_ch);
  }
}

TEST_P(WorkflowProperty, SoloModelsAreDeterministicPerConfig) {
  ceal::Rng rng(4);
  for (std::size_t j = 0; j < wl_->workflow.component_count(); ++j) {
    const auto c = wl_->workflow.app(j).space().random_valid(rng);
    const auto a = wl_->workflow.expected_component(j, c);
    const auto b = wl_->workflow.expected_component(j, c);
    EXPECT_DOUBLE_EQ(a.exec_s, b.exec_s);
    EXPECT_DOUBLE_EQ(a.comp_ch, b.comp_ch);
  }
}

TEST_P(WorkflowProperty, BottleneckComponentBoundsTheWorkflow) {
  // The coupled execution time is at least the largest per-step compute
  // time times the number of steps (synchronised pipeline).
  ceal::Rng rng(5);
  const auto& wf = wl_->workflow;
  for (int i = 0; i < 10; ++i) {
    const auto joint = wf.joint_space().random_valid(rng);
    double max_step = 0.0;
    for (std::size_t j = 0; j < wf.component_count(); ++j) {
      const auto part = wf.space().slice(joint, j);
      max_step = std::max(
          max_step, wf.app(j).step_compute_s(part, wf.machine(), 0.0));
    }
    const auto m = wf.expected(joint);
    EXPECT_GE(m.exec_s,
              max_step * wf.coupling().pipeline_steps * 0.999);
  }
}

std::string workflow_param_name(
    const ::testing::TestParamInfo<std::tuple<int, Objective>>& info) {
  static const char* const names[] = {"LV", "HS", "GP"};
  return std::string(names[std::get<0>(info.param)]) + "_" +
         tuner::objective_name(std::get<1>(info.param));
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkflows, WorkflowProperty,
    ::testing::Combine(::testing::Values(0, 1, 2),
                       ::testing::Values(Objective::kExecTime,
                                         Objective::kComputerTime)),
    workflow_param_name);

}  // namespace
}  // namespace ceal::sim
