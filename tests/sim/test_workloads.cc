#include "sim/workloads.h"

#include <gtest/gtest.h>

#include "core/rng.h"

namespace ceal::sim {
namespace {

TEST(Workloads, AllThreeBuild) {
  const auto all = make_all_workloads();
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(all[0].workflow.name(), "LV");
  EXPECT_EQ(all[1].workflow.name(), "HS");
  EXPECT_EQ(all[2].workflow.name(), "GP");
}

TEST(Workloads, MachineMatchesPaperTestbed) {
  const MachineSpec m = paper_machine();
  EXPECT_EQ(m.total_nodes, 600);
  EXPECT_EQ(m.cores_per_node, 36);
  EXPECT_EQ(m.allocation_nodes, 32);
}

TEST(Workloads, LvComponentStructure) {
  const auto lv = make_lv();
  ASSERT_EQ(lv.workflow.component_count(), 2u);
  EXPECT_EQ(lv.workflow.app(0).name(), "lammps");
  EXPECT_EQ(lv.workflow.app(1).name(), "voro");
  EXPECT_EQ(lv.workflow.joint_space().dimension(), 6u);
  ASSERT_EQ(lv.workflow.edges().size(), 1u);
  EXPECT_EQ(lv.workflow.edges()[0].producer, 0u);
  EXPECT_EQ(lv.workflow.edges()[0].consumer, 1u);
}

TEST(Workloads, HsComponentStructure) {
  const auto hs = make_hs();
  ASSERT_EQ(hs.workflow.component_count(), 2u);
  EXPECT_EQ(hs.workflow.app(0).name(), "heat_transfer");
  EXPECT_EQ(hs.workflow.app(0).space().dimension(), 5u);
  EXPECT_EQ(hs.workflow.app(1).space().dimension(), 2u);
  EXPECT_EQ(hs.workflow.joint_space().dimension(), 7u);
}

TEST(Workloads, GpComponentStructure) {
  const auto gp = make_gp();
  ASSERT_EQ(gp.workflow.component_count(), 4u);
  EXPECT_EQ(gp.workflow.app(2).name(), "g_plot");
  EXPECT_FALSE(gp.workflow.app(2).configurable());
  EXPECT_FALSE(gp.workflow.app(3).configurable());
  ASSERT_EQ(gp.workflow.edges().size(), 3u);
}

TEST(Workloads, Table1RawSizesMatchPaperGrids) {
  // LAMMPS/Voro++: 1084 procs x 35 ppn x 4 tpp.
  const auto lv = make_lv();
  EXPECT_EQ(lv.workflow.app(0).space().raw_size(), 1084u * 35u * 4u);
  // Heat transfer: 31 x 31 x 35 x 8 x 40.
  const auto hs = make_hs();
  EXPECT_EQ(hs.workflow.app(0).space().raw_size(),
            31u * 31u * 35u * 8u * 40u);
  // Stage write: 1084 x 35. PDF: 512 x 35.
  EXPECT_EQ(hs.workflow.app(1).space().raw_size(), 1084u * 35u);
  const auto gp = make_gp();
  EXPECT_EQ(gp.workflow.app(1).space().raw_size(), 512u * 35u);
}

TEST(Workloads, LammpsValidCountEchoesPaperTable) {
  // Paper §7.1 reports ~7.6e4 valid LAMMPS configurations; the node
  // constraint ceil(p/ppn) <= 31 yields the same order.
  const auto lv = make_lv();
  ceal::Rng rng(1);
  const double frac =
      lv.workflow.app(0).space().estimate_valid_fraction(rng, 40000);
  const double count =
      frac * static_cast<double>(lv.workflow.app(0).space().raw_size());
  EXPECT_GT(count, 6.0e4);
  EXPECT_LT(count, 9.5e4);
}

TEST(Workloads, ExpertConfigurationsAreValid) {
  for (const auto& wl : make_all_workloads()) {
    EXPECT_TRUE(wl.workflow.joint_space().is_valid(wl.expert_exec))
        << wl.workflow.name();
    EXPECT_TRUE(wl.workflow.joint_space().is_valid(wl.expert_comp))
        << wl.workflow.name();
  }
}

TEST(Workloads, AllocationConstraintHoldsOnRandomDraws) {
  for (const auto& wl : make_all_workloads()) {
    ceal::Rng rng(2);
    for (int i = 0; i < 50; ++i) {
      const auto c = wl.workflow.joint_space().random_valid(rng);
      EXPECT_LE(wl.workflow.total_nodes(c), 32) << wl.workflow.name();
    }
  }
}

TEST(Workloads, ExecMagnitudesEchoTable2) {
  // Orders of magnitude from Table 2 (shape, not exact values):
  // LV best ~25 s, HS best ~6-15 s, GP best ~97 s.
  const auto lv = make_lv();
  EXPECT_GT(lv.workflow.expected(lv.expert_exec).exec_s, 15.0);
  EXPECT_LT(lv.workflow.expected(lv.expert_exec).exec_s, 120.0);
  const auto gp = make_gp();
  const double gp_exec = gp.workflow.expected(gp.expert_exec).exec_s;
  EXPECT_GT(gp_exec, 80.0);
  EXPECT_LT(gp_exec, 130.0);
}

TEST(Workloads, GPlotBottleneckFlattensGpExecTimes) {
  // §7.1: unconfigurable G-Plot dominates; most reasonable configs have
  // nearly identical execution times.
  const auto gp = make_gp();
  ceal::Rng rng(3);
  // Two very different well-provisioned configurations.
  const auto& space = gp.workflow.joint_space();
  config::Configuration a = gp.expert_exec;   // 525/512 procs
  config::Configuration b = gp.expert_exec;
  b[space.parameter_index("gray_scott.procs")] = 300;
  b[space.parameter_index("pdf_calc.procs")] = 256;
  ASSERT_TRUE(space.is_valid(b));
  const double ta = gp.workflow.expected(a).exec_s;
  const double tb = gp.workflow.expected(b).exec_s;
  EXPECT_NEAR(ta, tb, ta * 0.1);
}

TEST(Workloads, ExpertsUnderperformBestForLvAndHs) {
  // Table 2: expert recommendations do poorly except for GP exec.
  const auto lv = make_lv();
  ceal::Rng rng(4);
  double best_exec = 1e100;
  for (int i = 0; i < 300; ++i) {
    const auto c = lv.workflow.joint_space().random_valid(rng);
    best_exec = std::min(best_exec, lv.workflow.expected(c).exec_s);
  }
  EXPECT_GT(lv.workflow.expected(lv.expert_exec).exec_s, best_exec);
}

}  // namespace
}  // namespace ceal::sim
