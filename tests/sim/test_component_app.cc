#include "sim/component_app.h"

#include <gtest/gtest.h>

#include "core/error.h"

namespace ceal::sim {
namespace {

using config::ConfigSpace;
using config::Configuration;
using config::Parameter;

ComponentApp simple_app(IoProfile io = {}, double startup = 2.0) {
  ParamRoles roles;
  roles.procs = 0;
  roles.ppn = 1;
  roles.tpp = 2;
  ConfigSpace space({Parameter::range("procs", 1, 64),
                     Parameter::range("ppn", 1, 36),
                     Parameter::range("tpp", 1, 4)});
  ScalingParams scaling;
  scaling.serial_s = 0.1;
  scaling.work_core_s = 50.0;
  return ComponentApp("app", std::move(space), roles, scaling, io, startup);
}

ComponentApp grid_app(IoProfile io = {}) {
  ParamRoles roles;
  roles.procs_x = 0;
  roles.procs_y = 1;
  roles.ppn = 2;
  roles.outputs = 3;
  roles.buffer_mb = 4;
  ConfigSpace space(
      {Parameter::range("px", 2, 8), Parameter::range("py", 2, 8),
       Parameter::range("ppn", 1, 36), Parameter::range("outputs", 4, 32, 4),
       Parameter::range("buffer_mb", 1, 40)});
  ScalingParams scaling;
  scaling.serial_s = 0.05;
  scaling.work_core_s = 20.0;
  return ComponentApp("grid", std::move(space), roles, scaling, io, 1.0);
}

TEST(ComponentApp, RoleExtraction) {
  const auto app = simple_app();
  const Configuration c{32, 8, 2};
  EXPECT_EQ(app.procs(c), 32);
  EXPECT_EQ(app.ppn(c), 8);
  EXPECT_EQ(app.tpp(c), 2);
  EXPECT_EQ(app.nodes(c), 4);
  EXPECT_DOUBLE_EQ(app.aspect(c), 1.0);
}

TEST(ComponentApp, NodesRoundUp) {
  const auto app = simple_app();
  EXPECT_EQ(app.nodes({33, 8, 1}), 5);
  EXPECT_EQ(app.nodes({1, 8, 1}), 1);  // ppn capped at procs
}

TEST(ComponentApp, GridDecompositionRoles) {
  const auto app = grid_app();
  const Configuration c{4, 8, 16, 8, 10};
  EXPECT_EQ(app.procs(c), 32);
  EXPECT_EQ(app.nodes(c), 2);
  EXPECT_DOUBLE_EQ(app.aspect(c), 2.0);
}

TEST(ComponentApp, OutputVolumeScalesWithOutputsKnob) {
  IoProfile io;
  io.base_output_gb = 0.1;  // at the minimum outputs value (4)
  const auto app = grid_app(io);
  EXPECT_DOUBLE_EQ(app.output_gb_per_step({2, 2, 1, 4, 10}), 0.1);
  EXPECT_DOUBLE_EQ(app.output_gb_per_step({2, 2, 1, 32, 10}), 0.8);
}

TEST(ComponentApp, NoOutputsKnobMeansConstantVolume) {
  IoProfile io;
  io.base_output_gb = 0.25;
  const auto app = simple_app(io);
  EXPECT_DOUBLE_EQ(app.output_gb_per_step({8, 2, 1}), 0.25);
}

TEST(ComponentApp, SinkAppsProduceNothing) {
  const auto app = simple_app();  // base_output_gb = 0
  EXPECT_DOUBLE_EQ(app.output_gb_per_step({8, 2, 1}), 0.0);
}

TEST(ComponentApp, ConsumerWorkScalesWithInputVolume) {
  IoProfile io;
  io.default_input_gb = 0.1;
  const auto app = simple_app(io);
  const MachineSpec machine;
  const Configuration c{8, 4, 1};
  const double at_default = app.step_compute_s(c, machine, 0.1);
  const double at_double = app.step_compute_s(c, machine, 0.2);
  // Parallel part doubles, serial part does not.
  EXPECT_GT(at_double, at_default * 1.5);
  EXPECT_LT(at_double, at_default * 2.0);
}

TEST(ComponentApp, StagingOverheadTradesFlushesAgainstStalls) {
  IoProfile io;
  io.base_output_gb = 0.0625;  // 64 MB at outputs = 4
  io.flush_latency_s = 2e-3;
  io.buffer_stall_s_per_mb = 1.5e-3;
  const auto app = grid_app(io);
  const double tiny = app.staging_overhead_s({4, 4, 4, 4, 1});
  const double mid = app.staging_overhead_s({4, 4, 4, 4, 16});
  const double big = app.staging_overhead_s({4, 4, 4, 4, 40});
  // Many flushes hurt at 1 MB; stalls hurt at 40 MB; 16 MB is cheaper
  // than both.
  EXPECT_LT(mid, tiny);
  EXPECT_LT(mid, big);
}

TEST(ComponentApp, NoBufferKnobMeansNoStagingOverhead) {
  IoProfile io;
  io.base_output_gb = 0.5;
  const auto app = simple_app(io);
  EXPECT_DOUBLE_EQ(app.staging_overhead_s({8, 2, 1}), 0.0);
}

TEST(ComponentApp, SoloExecComposesStartupStepsAndIo) {
  IoProfile io;
  io.base_output_gb = 0.1;
  const auto app = simple_app(io, /*startup=*/3.0);
  const MachineSpec machine;
  const Configuration c{16, 8, 1};
  const double step = app.step_compute_s(c, machine, 0.0);
  const double io_s = 0.1 / machine.fs_bw_gbs + machine.fs_latency_s;
  EXPECT_NEAR(app.solo_exec_s(c, machine, 10), 3.0 + 10.0 * (step + io_s),
              1e-9);
}

TEST(ComponentApp, SoloCompUsesNodesAndCores) {
  const auto app = simple_app();
  const MachineSpec machine;
  const Configuration c{16, 8, 1};  // 2 nodes
  const double exec = app.solo_exec_s(c, machine, 10);
  EXPECT_DOUBLE_EQ(app.solo_comp_ch(c, machine, 10),
                   exec * 2 * 36 / 3600.0);
}

TEST(ComponentApp, NodeLimitConstraintFiltersConfigs) {
  ParamRoles roles;
  roles.procs = 0;
  roles.ppn = 1;
  const auto constraint = ComponentApp::node_limit_constraint(roles, 4);
  EXPECT_TRUE(constraint({16, 4}));   // 4 nodes
  EXPECT_FALSE(constraint({17, 4}));  // 5 nodes
  EXPECT_TRUE(constraint({2, 35}));   // 1 node (ppn capped at procs)
}

TEST(ComponentApp, NodeLimitConstraintHandlesGridRoles) {
  ParamRoles roles;
  roles.procs_x = 0;
  roles.procs_y = 1;
  roles.ppn = 2;
  const auto constraint = ComponentApp::node_limit_constraint(roles, 2);
  EXPECT_TRUE(constraint({4, 4, 8}));   // 16 procs / 8 ppn = 2 nodes
  EXPECT_FALSE(constraint({4, 8, 8}));  // 32 procs / 8 ppn = 4 nodes
}

TEST(ComponentApp, UnconfigurableAppIsAllowedWithoutProcsRole) {
  ParamRoles roles;
  roles.procs = 0;
  ConfigSpace space({Parameter("procs", {1})});
  ScalingParams scaling;
  scaling.serial_s = 1.0;
  scaling.work_core_s = 0.0;
  const ComponentApp app("plot", std::move(space), roles, scaling, {}, 1.0);
  EXPECT_FALSE(app.configurable());
  EXPECT_EQ(app.nodes({1}), 1);
}

}  // namespace
}  // namespace ceal::sim
