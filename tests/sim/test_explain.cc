#include <gtest/gtest.h>

#include "core/error.h"
#include "core/rng.h"
#include "sim/workloads.h"

namespace ceal::sim {
namespace {

class ExplainTest : public ::testing::Test {
 protected:
  ExplainTest() : wl_(make_lv()) {}

  Workload wl_;
};

TEST_F(ExplainTest, BreakdownMatchesExpectedMeasurement) {
  ceal::Rng rng(1);
  for (int i = 0; i < 20; ++i) {
    const auto c = wl_.workflow.joint_space().random_valid(rng);
    const auto bd = wl_.workflow.explain(c);
    const auto m = wl_.workflow.expected(c);
    EXPECT_DOUBLE_EQ(bd.exec_s, m.exec_s);
    EXPECT_DOUBLE_EQ(bd.comp_ch, m.comp_ch);
    EXPECT_EQ(bd.nodes, m.nodes);
  }
}

TEST_F(ExplainTest, ExactlyOneBottleneckWithMaxPeriod) {
  ceal::Rng rng(2);
  const auto c = wl_.workflow.joint_space().random_valid(rng);
  const auto bd = wl_.workflow.explain(c);
  std::size_t bottlenecks = 0;
  double max_period = 0.0;
  for (const auto& comp : bd.components) {
    max_period = std::max(max_period, comp.period_s);
    if (comp.bottleneck) ++bottlenecks;
  }
  ASSERT_EQ(bottlenecks, 1u);
  for (const auto& comp : bd.components) {
    if (comp.bottleneck) {
      EXPECT_DOUBLE_EQ(comp.period_s, max_period);
    }
  }
}

TEST_F(ExplainTest, PeriodDecomposesIntoParts) {
  ceal::Rng rng(3);
  const auto c = wl_.workflow.joint_space().random_valid(rng);
  const auto bd = wl_.workflow.explain(c);
  for (const auto& comp : bd.components) {
    EXPECT_NEAR(comp.period_s,
                comp.step_compute_s + comp.staging_s +
                    comp.transfer_exposed_s,
                1e-12);
  }
}

TEST_F(ExplainTest, StepIsContentionTimesBottleneckPeriod) {
  ceal::Rng rng(4);
  const auto c = wl_.workflow.joint_space().random_valid(rng);
  const auto bd = wl_.workflow.explain(c);
  double max_period = 0.0;
  for (const auto& comp : bd.components) {
    max_period = std::max(max_period, comp.period_s);
  }
  EXPECT_NEAR(bd.step_s, max_period * bd.contention_factor, 1e-12);
  EXPECT_GE(bd.contention_factor, 1.0);
}

TEST_F(ExplainTest, ConsumerSeesProducerVolume) {
  const auto c = wl_.expert_exec;
  const auto bd = wl_.workflow.explain(c);
  // LV: lammps streams 0.02 GB/step to voro.
  EXPECT_DOUBLE_EQ(bd.components[0].input_gb, 0.0);
  EXPECT_DOUBLE_EQ(bd.components[1].input_gb, 0.02);
  EXPECT_GT(bd.transfer_total_s, 0.0);
}

TEST_F(ExplainTest, NamesAndShapesFollowTheWorkflow) {
  const auto gp = make_gp();
  const auto bd = gp.workflow.explain(gp.expert_exec);
  ASSERT_EQ(bd.components.size(), 4u);
  EXPECT_EQ(bd.components[0].name, "gray_scott");
  EXPECT_EQ(bd.components[2].name, "g_plot");
  // The unconfigurable G-Plot is the bottleneck at the expert config.
  EXPECT_TRUE(bd.components[2].bottleneck);
}

TEST_F(ExplainTest, InvalidConfigurationRejected) {
  config::Configuration bad = wl_.expert_exec;
  bad[0] = 1085;
  EXPECT_THROW(wl_.workflow.explain(bad), ceal::PreconditionError);
}

}  // namespace
}  // namespace ceal::sim
