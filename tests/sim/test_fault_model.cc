#include "sim/fault_model.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/error.h"
#include "core/rng.h"
#include "sim/workloads.h"

namespace ceal::sim {
namespace {

TEST(FaultModel, DefaultIsDisabled) {
  const FaultModel m;
  EXPECT_FALSE(m.enabled());
  m.validate();
}

TEST(FaultModel, AnyChannelEnables) {
  FaultModel m;
  m.fail_prob = 0.1;
  EXPECT_TRUE(m.enabled());
  m = FaultModel{};
  m.deadline_s = 100.0;
  EXPECT_TRUE(m.enabled());
  m = FaultModel{};
  m.outlier_prob = 0.05;
  EXPECT_TRUE(m.enabled());
}

TEST(FaultModel, ValidateRejectsOutOfRange) {
  FaultModel m;
  m.fail_prob = 1.0;
  EXPECT_THROW(m.validate(), ceal::PreconditionError);
  m = FaultModel{};
  m.fail_prob = -0.1;
  EXPECT_THROW(m.validate(), ceal::PreconditionError);
  m = FaultModel{};
  m.deadline_s = -1.0;
  EXPECT_THROW(m.validate(), ceal::PreconditionError);
  m = FaultModel{};
  m.outlier_prob = 1.5;
  EXPECT_THROW(m.validate(), ceal::PreconditionError);
  m = FaultModel{};
  m.outlier_tail = 0.0;
  EXPECT_THROW(m.validate(), ceal::PreconditionError);
}

TEST(FaultModel, DeadlineCensorsDeterministically) {
  FaultModel m;
  m.deadline_s = 50.0;
  ceal::Rng rng(1);
  // Longer than the deadline: killed exactly at the walltime limit.
  const FaultOutcome slow = apply_faults(m, 120.0, rng);
  EXPECT_EQ(slow.status, RunStatus::kCensored);
  EXPECT_DOUBLE_EQ(slow.elapsed_s, 50.0);
  // Shorter: untouched.
  const FaultOutcome fast = apply_faults(m, 20.0, rng);
  EXPECT_EQ(fast.status, RunStatus::kOk);
  EXPECT_DOUBLE_EQ(fast.elapsed_s, 20.0);
  EXPECT_DOUBLE_EQ(fast.value_factor, 1.0);
}

TEST(FaultModel, FailedRunsConsumePartialWallclock) {
  FaultModel m;
  m.fail_prob = 0.999;  // force the failure branch
  ceal::Rng rng(2);
  for (int i = 0; i < 50; ++i) {
    const FaultOutcome out = apply_faults(m, 100.0, rng);
    ASSERT_EQ(out.status, RunStatus::kFailed);
    EXPECT_GE(out.elapsed_s, 0.0);
    EXPECT_LT(out.elapsed_s, 100.0);
  }
}

TEST(FaultModel, OutliersOnlyInflate) {
  FaultModel m;
  m.outlier_prob = 0.999;
  m.outlier_tail = 2.0;
  ceal::Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    const FaultOutcome out = apply_faults(m, 10.0, rng);
    ASSERT_EQ(out.status, RunStatus::kOk);
    EXPECT_GE(out.value_factor, 1.0);
    EXPECT_DOUBLE_EQ(out.elapsed_s, 10.0);
  }
}

TEST(FaultModel, SameSeedReplaysIdenticalFaultTrace) {
  FaultModel m;
  m.fail_prob = 0.3;
  m.deadline_s = 60.0;
  m.outlier_prob = 0.2;
  ceal::Rng a(7), b(7);
  for (int i = 0; i < 200; ++i) {
    const double exec = 10.0 + i;
    const FaultOutcome oa = apply_faults(m, exec, a);
    const FaultOutcome ob = apply_faults(m, exec, b);
    ASSERT_EQ(oa.status, ob.status);
    ASSERT_DOUBLE_EQ(oa.elapsed_s, ob.elapsed_s);
    ASSERT_DOUBLE_EQ(oa.value_factor, ob.value_factor);
  }
}

TEST(FaultModel, FailureRateMatchesProbability) {
  FaultModel m;
  m.fail_prob = 0.25;
  ceal::Rng rng(11);
  int failed = 0;
  const int n = 4000;
  for (int i = 0; i < n; ++i) {
    if (apply_faults(m, 5.0, rng).status == RunStatus::kFailed) ++failed;
  }
  const double rate = static_cast<double>(failed) / n;
  EXPECT_NEAR(rate, 0.25, 0.03);
}

TEST(FaultyRun, DisabledModelMatchesPlainRunExactly) {
  const auto wl = make_lv();
  ceal::Rng rng(5);
  const auto joint = wl.workflow.joint_space().sample_valid(rng, 1)[0];

  ceal::Rng plain(99), faulty(99);
  const Measurement ref = wl.workflow.run(joint, plain);
  const FaultyRun out =
      run_with_faults(wl.workflow, joint, FaultModel{}, faulty);
  EXPECT_EQ(out.status, RunStatus::kOk);
  EXPECT_DOUBLE_EQ(out.measurement.exec_s, ref.exec_s);
  EXPECT_DOUBLE_EQ(out.measurement.comp_ch, ref.comp_ch);
  EXPECT_DOUBLE_EQ(out.elapsed_s, ref.exec_s);
  // The disabled model must not consume randomness: the two generators
  // stay in lock-step after the call.
  EXPECT_DOUBLE_EQ(plain.uniform01(), faulty.uniform01());
}

TEST(FaultyRun, FailedRunZeroesTheMeasurement) {
  const auto wl = make_lv();
  ceal::Rng rng(6);
  const auto joint = wl.workflow.joint_space().sample_valid(rng, 1)[0];
  FaultModel m;
  m.fail_prob = 0.999;
  const FaultyRun out = run_with_faults(wl.workflow, joint, m, rng);
  EXPECT_EQ(out.status, RunStatus::kFailed);
  EXPECT_DOUBLE_EQ(out.measurement.exec_s, 0.0);
  EXPECT_DOUBLE_EQ(out.measurement.comp_ch, 0.0);
}

TEST(RunStatusName, CoversEveryStatus) {
  EXPECT_STREQ(run_status_name(RunStatus::kOk), "ok");
  EXPECT_STREQ(run_status_name(RunStatus::kFailed), "failed");
  EXPECT_STREQ(run_status_name(RunStatus::kCensored), "censored");
}

}  // namespace
}  // namespace ceal::sim
