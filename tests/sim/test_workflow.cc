#include "sim/workflow.h"

#include <gtest/gtest.h>

#include "core/error.h"
#include "core/rng.h"
#include "sim/workloads.h"

namespace ceal::sim {
namespace {

using config::Configuration;

class WorkflowTest : public ::testing::Test {
 protected:
  WorkflowTest() : wl_(make_lv()) {}

  Workload wl_;
};

TEST_F(WorkflowTest, ExpectedIsDeterministic) {
  const auto& c = wl_.expert_exec;
  const auto a = wl_.workflow.expected(c);
  const auto b = wl_.workflow.expected(c);
  EXPECT_DOUBLE_EQ(a.exec_s, b.exec_s);
  EXPECT_DOUBLE_EQ(a.comp_ch, b.comp_ch);
}

TEST_F(WorkflowTest, NoisyRunsCenterOnExpected) {
  const auto& c = wl_.expert_exec;
  const double expected = wl_.workflow.expected(c).exec_s;
  ceal::Rng rng(1);
  double sum = 0.0;
  for (int i = 0; i < 400; ++i) sum += wl_.workflow.run(c, rng).exec_s;
  EXPECT_NEAR(sum / 400.0, expected, expected * 0.02);
}

TEST_F(WorkflowTest, ComputerTimeConsistentWithNodesAndExec) {
  const auto m = wl_.workflow.expected(wl_.expert_comp);
  EXPECT_DOUBLE_EQ(
      m.comp_ch,
      wl_.workflow.machine().core_hours(m.nodes, m.exec_s));
}

TEST_F(WorkflowTest, TotalNodesMatchesComponentSum) {
  const auto& c = wl_.expert_exec;  // (288,18,2 | 288,18,2) -> 16 + 16
  EXPECT_EQ(wl_.workflow.total_nodes(c), 32);
  const auto m = wl_.workflow.expected(c);
  EXPECT_EQ(m.nodes, 32);
}

TEST_F(WorkflowTest, CoupledRunIsSlowerThanBestSoloComponent) {
  // Synchronisation pins every component to the slowest one, so the
  // workflow cannot finish before its slowest solo component compute.
  const auto& c = wl_.expert_exec;
  const auto m = wl_.workflow.expected(c);
  for (std::size_t j = 0; j < wl_.workflow.component_count(); ++j) {
    EXPECT_EQ(m.component_exec_s.size(), wl_.workflow.component_count());
  }
  EXPECT_GE(m.exec_s, 0.0);
  // All components report (nearly) the full synchronised duration.
  for (const double t : m.component_exec_s) {
    EXPECT_NEAR(t, m.exec_s, wl_.workflow.app(0).startup_s() + 5.0);
  }
}

TEST_F(WorkflowTest, InvalidConfigurationRejected) {
  Configuration bad = wl_.expert_exec;
  bad[0] = 1085;  // lammps at 1085 procs, ppn 18 -> 61 nodes > 31
  EXPECT_THROW(wl_.workflow.expected(bad), ceal::PreconditionError);
}

TEST_F(WorkflowTest, SoloComponentRunMatchesAppModel) {
  const Configuration lammps_cfg{64, 16, 1};
  const auto m = wl_.workflow.expected_component(0, lammps_cfg);
  EXPECT_DOUBLE_EQ(
      m.exec_s,
      wl_.workflow.app(0).solo_exec_s(lammps_cfg, wl_.workflow.machine(),
                                      wl_.workflow.coupling().pipeline_steps));
  EXPECT_EQ(m.nodes, 4);
}

TEST_F(WorkflowTest, SoloComponentRejectsInvalidConfig) {
  EXPECT_THROW(wl_.workflow.expected_component(0, {1085, 1, 1}),
               ceal::PreconditionError);
}

TEST_F(WorkflowTest, SoloDiffersFromCoupledShare) {
  // The low-fidelity gap: the solo execution time of a component differs
  // from the coupled workflow's execution time at the same settings.
  const auto& c = wl_.expert_exec;
  const auto coupled = wl_.workflow.expected(c);
  const auto solo =
      wl_.workflow.expected_component(0, wl_.workflow.space().slice(c, 0));
  EXPECT_NE(coupled.exec_s, solo.exec_s);
}

TEST_F(WorkflowTest, MoreStreamedDataSlowsTheWorkflow) {
  auto hs = make_hs();
  Configuration few = hs.expert_exec;
  Configuration many = hs.expert_exec;
  const auto& space = hs.workflow.joint_space();
  few[space.parameter_index("heat_transfer.outputs")] = 4;
  many[space.parameter_index("heat_transfer.outputs")] = 32;
  EXPECT_GT(hs.workflow.expected(many).exec_s,
            hs.workflow.expected(few).exec_s);
}

TEST_F(WorkflowTest, EdgeValidationAtConstruction) {
  auto wl = make_lv();
  const MachineSpec machine;
  std::vector<ComponentApp> apps;
  // Build one tiny app to test edge index checking.
  config::ConfigSpace space({config::Parameter("procs", {1})});
  ParamRoles roles;
  roles.procs = 0;
  ScalingParams scaling;
  apps.emplace_back("a", space, roles, scaling, IoProfile{}, 0.0);
  EXPECT_THROW(InSituWorkflow("bad", machine, std::move(apps), {{0, 1}}),
               ceal::PreconditionError);
}

TEST_F(WorkflowTest, ZeroNoiseRunEqualsExpected) {
  CouplingParams coupling;
  coupling.noise_sigma = 0.0;
  const MachineSpec machine;
  auto lv = make_lv();
  // Rebuild LV's apps is heavy; instead check GP with default apps by
  // comparing run vs expected under sigma = 0 via a fresh workflow using
  // the same apps is not exposed, so verify the noise factor bounds:
  ceal::Rng rng(3);
  const auto exp = lv.workflow.expected(lv.expert_exec);
  for (int i = 0; i < 50; ++i) {
    const auto m = lv.workflow.run(lv.expert_exec, rng);
    EXPECT_NEAR(m.exec_s, exp.exec_s, exp.exec_s * 0.2);  // sigma 3%
  }
}

}  // namespace
}  // namespace ceal::sim
