// Quickstart: auto-tune an in-situ workflow with CEAL in ~30 lines.
//
// 1. Build the HS workflow (Heat Transfer -> Stage Write).
// 2. Draw the 2000-configuration sample pool and the per-component solo
//    measurements (the paper's C_pool and D_hist).
// 3. Run CEAL with a 50-run budget and print its recommendation.
#include <iostream>

#include "sim/workloads.h"
#include "tuner/ceal.h"
#include "tuner/measured_pool.h"

int main() {
  using namespace ceal;

  // The workflow: components, parameter spaces, coupling, expert configs.
  sim::Workload hs = sim::make_hs();

  // Pre-measured data: a random pool of coupled runs plus solo component
  // runs reusable as "historical measurements".
  const auto pool = tuner::measure_pool(hs.workflow, 2000, /*seed=*/1);
  const auto comps = tuner::measure_components(hs.workflow, 500, /*seed=*/2);

  tuner::TuningProblem problem{&hs, tuner::Objective::kExecTime, &pool,
                               &comps, /*components_are_history=*/true, {}};

  tuner::Ceal ceal;  // paper defaults, adapted to the history flag
  Rng rng(42);
  const tuner::TuneResult result = ceal.tune(problem, /*budget=*/50, rng);

  const auto& best = pool.configs[result.best_predicted_index];
  std::cout << "CEAL used " << result.runs_used << " workflow-run budget "
            << "units and recommends\n  configuration "
            << config::to_string(best) << "\n  with expected execution time "
            << hs.workflow.expected(best).exec_s << " s\n";
  std::cout << "Expert recommendation takes "
            << hs.workflow.expected(hs.expert_exec).exec_s << " s\n";
  return 0;
}
