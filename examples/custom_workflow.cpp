// Building and tuning your own in-situ workflow with the public API.
//
// The scenario: a climate mini-simulation streams to two consumers — an
// eddy detector and a compression/archival stage. We define the three
// component performance models, couple them, and let CEAL find a good
// joint configuration under a small budget.
#include <iostream>

#include "config/config_space.h"
#include "sim/workflow.h"
#include "tuner/ceal.h"
#include "tuner/measured_pool.h"

int main() {
  using namespace ceal;
  using config::ConfigSpace;
  using config::Parameter;

  const sim::MachineSpec machine;  // 36-core nodes, 32-node allocations

  // --- Component 1: the simulation (producer). ---------------------
  sim::ParamRoles sim_roles;
  sim_roles.procs = 0;
  sim_roles.ppn = 1;
  ConfigSpace sim_space(
      {Parameter::range("procs", 2, 512), Parameter::range("ppn", 1, 35)},
      sim::ComponentApp::node_limit_constraint(sim_roles, 16));
  sim::ScalingParams sim_scaling;
  sim_scaling.serial_s = 0.1;
  sim_scaling.work_core_s = 180.0;
  sim_scaling.mem_slope = 1.0;
  sim_scaling.comm_log_s = 0.03;
  sim_scaling.comm_lin_s = 0.2;
  sim_scaling.p_ref = 512.0;
  sim::IoProfile sim_io;
  sim_io.base_output_gb = 0.2;  // streamed field per step

  // --- Component 2: eddy detection (analysis consumer). ------------
  sim::ParamRoles eddy_roles;
  eddy_roles.procs = 0;
  eddy_roles.ppn = 1;
  ConfigSpace eddy_space(
      {Parameter::range("procs", 1, 128), Parameter::range("ppn", 1, 35)},
      sim::ComponentApp::node_limit_constraint(eddy_roles, 8));
  sim::ScalingParams eddy_scaling;
  eddy_scaling.serial_s = 0.05;
  eddy_scaling.work_core_s = 40.0;
  eddy_scaling.mem_slope = 0.6;
  eddy_scaling.comm_log_s = 0.02;
  eddy_scaling.p_ref = 128.0;
  sim::IoProfile eddy_io;
  eddy_io.default_input_gb = 0.2;

  // --- Component 3: compression + archival (I/O consumer). ---------
  sim::ParamRoles comp_roles;
  comp_roles.procs = 0;
  comp_roles.ppn = 1;
  comp_roles.buffer_mb = 2;
  ConfigSpace comp_space(
      {Parameter::range("procs", 1, 64), Parameter::range("ppn", 1, 35),
       Parameter::range("buffer_mb", 1, 32)},
      sim::ComponentApp::node_limit_constraint(comp_roles, 4));
  sim::ScalingParams comp_scaling;
  comp_scaling.serial_s = 0.02;
  comp_scaling.work_core_s = 25.0;
  comp_scaling.mem_slope = 0.4;
  comp_scaling.p_ref = 64.0;
  sim::IoProfile comp_io;
  comp_io.default_input_gb = 0.2;
  comp_io.base_output_gb = 0.05;  // compressed archive stream

  std::vector<sim::ComponentApp> apps;
  apps.emplace_back("climate_sim", std::move(sim_space), sim_roles,
                    sim_scaling, sim_io, 3.0);
  apps.emplace_back("eddy_detect", std::move(eddy_space), eddy_roles,
                    eddy_scaling, eddy_io, 2.0);
  apps.emplace_back("compressor", std::move(comp_space), comp_roles,
                    comp_scaling, comp_io, 1.0);

  // Fan-out DAG: the simulation streams to both consumers.
  sim::InSituWorkflow workflow("climate", machine, std::move(apps),
                               {{0, 1}, {0, 2}});
  std::cout << "Joint space: " << workflow.joint_space().dimension()
            << " parameters, " << workflow.joint_space().raw_size()
            << " raw grid points\n";

  // Wrap it as a workload (no expert recommendation — reuse a sane one).
  sim::Workload wl{std::move(workflow),
                   /*expert_exec=*/{256, 32, 64, 32, 32, 32, 8},
                   /*expert_comp=*/{64, 32, 16, 16, 8, 8, 8}};

  const auto pool = tuner::measure_pool(wl.workflow, 1500, 11);
  const auto comps = tuner::measure_components(wl.workflow, 300, 12);
  tuner::TuningProblem problem{&wl, tuner::Objective::kComputerTime, &pool,
                               &comps, /*components_are_history=*/true, {}};

  tuner::Ceal ceal;
  Rng rng(5);
  const auto result = ceal.tune(problem, 30, rng);
  const auto& best = pool.configs[result.best_predicted_index];
  const auto perf = wl.workflow.expected(best);
  std::cout << "CEAL recommendation: " << config::to_string(best) << "\n"
            << "  execution time " << perf.exec_s << " s on " << perf.nodes
            << " nodes = " << perf.comp_ch << " core-hours per run\n"
            << "Expert guess costs "
            << wl.workflow.expected(wl.expert_comp).comp_ch
            << " core-hours per run\n";
  return 0;
}
