// Real in-situ coupling with the mini-app kernels: a Heat Transfer
// producer streams every step's field through a bounded staging channel
// (apps::Stream) to a Stage Write consumer running concurrently — the
// Fig. 2b pattern, in-process. We measure the coupled wall-clock at
// several configurations, fit a boosted-tree component model to the
// measurements, and use it to predict an unmeasured configuration.
//
// A second stage runs Gray-Scott -> PDF-calculator the same way.
#include <iostream>
#include <thread>

#include "apps/gray_scott.h"
#include "apps/heat_transfer.h"
#include "apps/pdf_calc.h"
#include "apps/stage_write.h"
#include "apps/stream.h"
#include "core/table.h"
#include "ml/gbt.h"

namespace {

using namespace ceal;

/// Runs heat->stage_write coupled over a Stream; returns wall seconds.
double run_heat_stage(std::size_t grid, std::size_t steps,
                      std::size_t buffer_mb, std::size_t threads) {
  ThreadPool pool(threads);
  apps::Stream stream(/*capacity=*/4);

  std::size_t sink_bytes = 0;
  std::thread consumer([&] {
    apps::StageWriter writer(
        {.buffer_mb = buffer_mb},
        [&](std::span<const std::byte> buf) { sink_bytes += buf.size(); });
    while (auto frame = stream.pop()) {
      writer.write_doubles(frame->data);
    }
    writer.finish();
  });

  apps::HeatParams params;
  params.nx = grid;
  params.ny = grid;
  params.steps = steps;
  apps::HeatTransfer2D sim(params, pool);
  const auto start = std::chrono::steady_clock::now();
  sim.run([&](std::size_t step, std::span<const double> field) {
    stream.push(
        apps::Frame{step, std::vector<double>(field.begin(), field.end())});
  });
  stream.close();
  consumer.join();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

int main() {
  // --- Stage 1: coupled heat -> stage-write sweep. ------------------
  std::cout << "In-situ mini-app pipeline: HeatTransfer2D -> Stream -> "
               "StageWriter\n\n";
  Table table({"grid", "steps", "buffer (MB)", "threads", "coupled (s)"});
  ml::Dataset data(3);  // features: grid, buffer, threads
  for (const std::size_t grid : {64, 128, 192}) {
    for (const std::size_t threads : {1, 2}) {
      const double t = run_heat_stage(grid, 30, 2, threads);
      table.add_row({std::to_string(grid), "30", "2",
                     std::to_string(threads), Table::num(t, 4)});
      data.add(std::vector<double>{static_cast<double>(grid), 2.0,
                                   static_cast<double>(threads)},
               t);
    }
  }
  std::cout << table << "\n";

  // Fit a component model to the coupled measurements and predict an
  // unmeasured configuration.
  ml::GradientBoostedTrees model(
      ml::GradientBoostedTrees::surrogate_defaults());
  Rng rng(1);
  model.fit(data, rng);
  const std::vector<double> unseen{160.0, 2.0, 2.0};
  std::cout << "Boosted-tree component model predicts grid=160, threads=2: "
            << Table::num(model.predict(unseen), 4) << " s\n\n";

  // --- Stage 2: Gray-Scott -> PDF calculator. -----------------------
  std::cout << "In-situ mini-app pipeline: GrayScott2D -> PdfCalc\n";
  ThreadPool pool(2);
  apps::GrayScottParams gs;
  gs.n = 96;
  gs.steps = 60;
  apps::GrayScott2D sim(gs, pool);
  apps::PdfCalc pdf({.bins = 24}, pool);
  apps::PdfResult last;
  const auto result = sim.run([&](std::size_t, std::span<const double> v) {
    last = pdf.compute(v);
  });
  std::cout << "Ran " << result.steps_run << " steps in "
            << Table::num(result.elapsed_seconds, 3)
            << " s; final V-field PDF over [" << Table::num(last.lo, 3)
            << ", " << Table::num(last.hi, 3) << "]\n";
  std::cout << "PDF (" << last.density.size() << " bins):";
  for (const double d : last.density) {
    std::cout << " " << Table::num(d, 2);
  }
  std::cout << "\n";
  return 0;
}
