// A real LV-shaped in-situ pipeline: the MD-lite particle simulation
// streams each step's positions through the bounded staging channel to a
// concurrently running Voronoi-lite analyser — the same
// producer/consumer structure as the paper's LAMMPS -> Voro++ workflow,
// executed with actual kernels in this process.
//
// The demo shows the coupling effect the paper's simulator models: when
// the analyser is made slower than the producer (larger search radius),
// back-pressure throttles the simulation, and the coupled wall-clock
// tracks the *slower* side — max-coupling in the flesh (Eqn. 1).
#include <chrono>
#include <iostream>
#include <thread>

#include "apps/md_lite.h"
#include "apps/stream.h"
#include "apps/voronoi_lite.h"
#include "core/table.h"

namespace {

using namespace ceal;

struct CoupledResult {
  double wall_s = 0.0;
  double producer_blocked_s = 0.0;
  double consumer_blocked_s = 0.0;
  double mean_cell_volume = 0.0;
  std::size_t frames = 0;
};

CoupledResult run_coupled(std::size_t particles, std::size_t steps,
                          double search_radius, std::size_t sim_threads,
                          std::size_t ana_threads) {
  apps::MdParams md;
  md.n_particles = particles;
  md.steps = steps;
  md.box = 64.0;
  md.dt = 0.002;
  md.temperature = 0.5;

  apps::VoronoiParams voro;
  voro.box = md.box;
  voro.search_radius = search_radius;

  ThreadPool sim_pool(sim_threads);
  ThreadPool ana_pool(ana_threads);
  apps::Stream stream(/*capacity=*/2);

  CoupledResult result;
  std::thread analyser([&] {
    apps::VoronoiLite analysis(voro, ana_pool);
    double volume_sum = 0.0;
    std::size_t frames = 0;
    while (auto frame = stream.pop()) {
      // Rebuild the positions from the streamed frame.
      std::vector<apps::Vec2> pos(frame->data.size() / 2);
      for (std::size_t i = 0; i < pos.size(); ++i) {
        pos[i] = {frame->data[2 * i], frame->data[2 * i + 1]};
      }
      volume_sum += analysis.analyze(pos).mean_cell_volume;
      ++frames;
    }
    result.mean_cell_volume =
        frames > 0 ? volume_sum / static_cast<double>(frames) : 0.0;
    result.frames = frames;
  });

  const auto start = std::chrono::steady_clock::now();
  apps::MdLite sim(md, sim_pool);
  sim.run([&](std::size_t step, std::span<const apps::Vec2> pos) {
    apps::Frame frame;
    frame.step = step;
    frame.data.reserve(pos.size() * 2);
    for (const auto& p : pos) {
      frame.data.push_back(p.x);
      frame.data.push_back(p.y);
    }
    stream.push(std::move(frame));
  });
  stream.close();
  analyser.join();
  result.wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  result.producer_blocked_s = stream.producer_blocked_seconds();
  result.consumer_blocked_s = stream.consumer_blocked_seconds();
  return result;
}

}  // namespace

int main() {
  std::cout << "Real in-situ LV analogue: MdLite -> Stream -> VoronoiLite\n"
               "(coupled wall-clock follows the slower side — Eqn. 1 in "
               "the flesh)\n\n";
  Table table({"particles", "steps", "search radius", "wall (s)",
               "producer blocked (s)", "consumer blocked (s)",
               "mean cell vol"});
  for (const double radius : {2.0, 4.0, 8.0}) {
    const auto r = run_coupled(1024, 25, radius, 1, 1);
    table.add_row({"1024", "25", Table::num(radius, 1),
                   Table::num(r.wall_s, 4),
                   Table::num(r.producer_blocked_s, 4),
                   Table::num(r.consumer_blocked_s, 4),
                   Table::num(r.mean_cell_volume, 2)});
  }
  std::cout << table;
  std::cout << "\nLarger analysis radii slow the consumer; the producer's "
               "blocked time grows with it, which is\nexactly the "
               "synchronisation coupling the auto-tuner's simulator "
               "models (and the reason component\nmodels built from solo "
               "runs under-predict coupled behaviour).\n";
  return 0;
}
