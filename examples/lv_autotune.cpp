// LV case study: compare the four no-history auto-tuners (RS, GEIST, AL,
// CEAL) on the LAMMPS->Voro++ workflow for both objectives — a miniature
// of the paper's Fig. 5 evaluation, using the public evaluation harness.
#include <cmath>
#include <iostream>
#include <memory>

#include "core/table.h"
#include "sim/workloads.h"
#include "tuner/active_learning.h"
#include "tuner/ceal.h"
#include "tuner/evaluation.h"
#include "tuner/geist.h"
#include "tuner/random_search.h"

int main() {
  using namespace ceal;
  using tuner::Objective;

  sim::Workload lv = sim::make_lv();
  const auto pool = tuner::measure_pool(lv.workflow, 2000, 1);
  const auto comps = tuner::measure_components(lv.workflow, 500, 2);

  std::vector<std::unique_ptr<tuner::AutoTuner>> algorithms;
  algorithms.push_back(std::make_unique<tuner::RandomSearch>());
  algorithms.push_back(std::make_unique<tuner::Geist>());
  algorithms.push_back(std::make_unique<tuner::ActiveLearning>());
  algorithms.push_back(std::make_unique<tuner::Ceal>());

  Table table({"objective", "samples", "algorithm", "normalized perf",
               "top-1 recall", "least uses"});
  for (const auto obj : {Objective::kExecTime, Objective::kComputerTime}) {
    const std::size_t budget = obj == Objective::kExecTime ? 50 : 25;
    tuner::TuningProblem problem{&lv, obj, &pool, &comps,
                                 /*components_are_history=*/false, {}};
    for (const auto& algo : algorithms) {
      const auto s = tuner::evaluate(problem, *algo, budget,
                                     /*replications=*/20, /*seed=*/7);
      table.add_row({tuner::objective_name(obj), std::to_string(budget),
                     s.algorithm, Table::num(s.mean_norm_perf),
                     Table::num(s.mean_recall[0], 0) + "%",
                     std::isinf(s.least_uses)
                         ? "inf"
                         : Table::num(s.least_uses, 0)});
      std::cout << "." << std::flush;
    }
  }
  std::cout << "\n(normalized perf: actual time of the recommendation over "
               "the pool optimum; 20 replications)\n\n"
            << table;
  return 0;
}
