// Phase 1 in isolation: build per-component performance models from solo
// measurements, combine them with the analytical coupling model, and
// inspect how well the resulting low-fidelity model ranks *coupled*
// workflow configurations it has never seen (the paper's Fig. 4 idea).
#include <iostream>
#include <memory>

#include "core/stats.h"
#include "core/table.h"
#include "ml/metrics.h"
#include "sim/workloads.h"
#include "tuner/low_fidelity.h"
#include "tuner/measured_pool.h"

int main() {
  using namespace ceal;
  using tuner::Objective;

  sim::Workload lv = sim::make_lv();
  const auto pool = tuner::measure_pool(lv.workflow, 500, 1);
  const auto comps = tuner::measure_components(lv.workflow, 500, 2);

  // Train each component model on its full solo-measurement archive.
  std::vector<std::vector<std::size_t>> all(comps.size());
  for (std::size_t j = 0; j < comps.size(); ++j) {
    all[j].resize(comps[j].size());
    for (std::size_t i = 0; i < comps[j].size(); ++i) all[j][i] = i;
  }

  Rng rng(3);
  Table table({"objective", "combiner", "spearman vs coupled",
               "recall top-5", "recall top-25"});
  for (const auto obj : {Objective::kExecTime, Objective::kComputerTime}) {
    auto models = std::make_shared<const tuner::ComponentModelSet>(
        lv.workflow, obj, comps, all, rng);

    // Per-component accuracy on the solo data itself.
    for (std::size_t j = 0; j < comps.size(); ++j) {
      std::vector<double> pred, act;
      for (std::size_t i = 0; i < comps[j].size(); ++i) {
        pred.push_back(models->predict(j, comps[j].configs[i]));
        act.push_back(comps[j].measured(obj)[i]);
      }
      std::cout << lv.workflow.app(j).name() << " model ("
                << tuner::objective_name(obj)
                << "): solo MdAPE = " << mdape_percent(act, pred) << "%\n";
    }

    // Combine and score the coupled pool.
    const tuner::LowFidelityModel low_fid(lv.workflow, obj, models);
    const auto scores = low_fid.score_many(pool.configs);
    const auto& measured = pool.measured(obj);
    table.add_row({tuner::objective_name(obj),
                   obj == Objective::kExecTime ? "max (Eqn. 1)"
                                               : "sum (Eqn. 2)",
                   Table::num(spearman(scores, measured)),
                   Table::num(ml::recall_score_percent(5, scores, measured),
                              0) +
                       "%",
                   Table::num(
                       ml::recall_score_percent(25, scores, measured), 0) +
                       "%"});
  }
  std::cout << "\n" << table
            << "\nThe component models are near-exact on solo runs, yet the "
               "combined score is only a *ranking*\nsignal for coupled "
               "runs — the low-fidelity gap that CEAL's Phase 2 closes "
               "with real workflow samples.\n";
  return 0;
}
