// ceal_explain — per-component cost breakdown of one workflow
// configuration under the coupling simulator, next to each component's
// solo profile (the low-fidelity gap, made visible).
//
//   ceal_explain --workflow LV --config 288,18,2,288,18,2
//   ceal_explain --workflow HS --expert exec
#include <iostream>

#include "core/table.h"
#include "tools/args.h"
#include "tools/common.h"

namespace {

constexpr const char* kUsage =
    "--workflow LV|HS|GP (--config v0,v1,... | --expert exec|comp)";

}  // namespace

int main(int argc, char** argv) {
  using namespace ceal;
  tools::Args args(argc, argv, kUsage);
  const auto wl_name = args.required("workflow");
  const auto config_text = args.option("config", "");
  const auto expert = args.option("expert", "");
  args.finish();

  sim::Workload wl = tools::workload_by_name(wl_name);
  config::Configuration c;
  if (!config_text.empty()) {
    c = tools::parse_config(config_text);
  } else if (expert == "exec") {
    c = wl.expert_exec;
  } else if (expert == "comp") {
    c = wl.expert_comp;
  } else {
    std::cerr << "need --config or --expert exec|comp\n"
              << args.usage_text();
    return 2;
  }
  if (!wl.workflow.joint_space().is_valid(c)) {
    std::cerr << "configuration " << config::to_string(c)
              << " is not valid for " << wl.workflow.name() << "\n";
    return 1;
  }

  const auto bd = wl.workflow.explain(c);
  std::cout << wl.workflow.name() << " " << config::to_string(c) << "\n\n";

  Table table({"component", "procs", "nodes", "input (GB)", "compute (s)",
               "staging (s)", "transfer (s)", "period (s)", "solo exec (s)",
               ""});
  for (std::size_t j = 0; j < bd.components.size(); ++j) {
    const auto& comp = bd.components[j];
    const auto solo = wl.workflow.expected_component(
        j, wl.workflow.space().slice(c, j));
    table.add_row({comp.name, std::to_string(comp.procs),
                   std::to_string(comp.nodes), Table::num(comp.input_gb, 3),
                   Table::num(comp.step_compute_s, 4),
                   Table::num(comp.staging_s, 4),
                   Table::num(comp.transfer_exposed_s, 4),
                   Table::num(comp.period_s, 4),
                   Table::num(solo.exec_s, 2),
                   comp.bottleneck ? "<- bottleneck" : ""});
  }
  std::cout << table << "\n";
  std::cout << "synchronised step: " << Table::num(bd.step_s, 4)
            << " s (contention x" << Table::num(bd.contention_factor, 3)
            << ")\n"
            << "coupled run: " << Table::num(bd.exec_s, 2) << " s on "
            << bd.nodes << " nodes = " << Table::num(bd.comp_ch, 3)
            << " core-hours\n";
  return 0;
}
