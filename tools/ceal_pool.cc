// ceal_pool — generate and measure a configuration pool (and optionally
// the per-component solo samples) for a benchmark workflow, saving them
// as CSV for reuse by ceal_tune and external analysis.
//
//   ceal_pool --workflow LV --size 2000 --seed 7 --out lv_pool.csv
//   ceal_pool --workflow HS --size 500 --out hs.csv --components hs_comp
#include <iostream>

#include "core/table.h"
#include "tools/args.h"
#include "tools/common.h"
#include "tuner/measured_pool.h"
#include "tuner/pool_io.h"

namespace {

constexpr const char* kUsage =
    "--workflow LV|HS|GP --out FILE\n"
    "  [--size N]         pool size (default 2000)\n"
    "  [--seed S]         measurement seed (default 1)\n"
    "  [--components PREFIX]  also save PREFIX_<app>.csv solo samples\n"
    "  [--component-samples N]  solo samples per app (default 500)";

}  // namespace

int main(int argc, char** argv) {
  using namespace ceal;
  tools::Args args(argc, argv, kUsage);
  const auto wl_name = args.required("workflow");
  const auto out = args.required("out");
  const auto size = static_cast<std::size_t>(args.integer("size", 2000));
  const auto seed = static_cast<std::uint64_t>(args.integer("seed", 1));
  const auto components_prefix = args.option("components", "");
  const auto comp_samples =
      static_cast<std::size_t>(args.integer("component-samples", 500));
  args.finish();

  sim::Workload wl = tools::workload_by_name(wl_name);
  const auto pool = tuner::measure_pool(wl.workflow, size, seed);
  tuner::save_pool_csv(pool, wl.workflow.joint_space(), out);

  const auto exec_best = pool.best_index(tuner::Objective::kExecTime);
  const auto comp_best = pool.best_index(tuner::Objective::kComputerTime);
  std::cout << "measured " << pool.size() << " configurations of "
            << wl.workflow.name() << " -> " << out << "\n"
            << "  best exec: " << Table::num(pool.exec_s[exec_best], 2)
            << " s at " << config::to_string(pool.configs[exec_best]) << "\n"
            << "  best comp: " << Table::num(pool.comp_ch[comp_best], 3)
            << " ch at " << config::to_string(pool.configs[comp_best])
            << "\n";

  if (!components_prefix.empty()) {
    const auto comps =
        tuner::measure_components(wl.workflow, comp_samples, seed + 1);
    for (std::size_t j = 0; j < comps.size(); ++j) {
      const std::string path =
          components_prefix + "_" + wl.workflow.app(j).name() + ".csv";
      tuner::save_component_csv(comps[j], wl.workflow.app(j).space(), path);
      std::cout << "  " << comps[j].size() << " solo samples of "
                << wl.workflow.app(j).name() << " -> " << path << "\n";
    }
  }
  return 0;
}
