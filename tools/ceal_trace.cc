// ceal_trace — inspect JSONL traces produced by `ceal_tune --trace`.
//
//   ceal_trace --input trace.jsonl             per-session report
//   ceal_trace --input trace.jsonl --csv       tables as CSV
//   ceal_trace --input a.jsonl --check-determinism b.jsonl
//   ceal_trace --input trace.jsonl --chrome out.json [--strip-ts]
//   ceal_trace --check-chrome out.json
//
// The determinism check parses both traces, strips every `timing`
// sub-object (the only place wall-clock is allowed, see
// docs/OBSERVABILITY.md), re-serialises, and compares event by event;
// any divergence exits 1. Two runs of the same seeded session must pass.
//
// --chrome converts the trace's causal span events into the Chrome
// trace-event format (chrome://tracing, Perfetto) and self-validates
// the result before reporting; --strip-ts replaces wall-clock
// timestamps with trace positions so exports of same-seed runs are
// byte-identical. --check-chrome re-validates an existing export.
#include <algorithm>
#include <fstream>
#include <iostream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "core/json.h"
#include "core/table.h"
#include "tools/args.h"
#include "tools/chrome_trace.h"
#include "tools/trace_io.h"

namespace {

using ceal::Table;
using ceal::json::Value;

constexpr const char* kUsage =
    "--input FILE [--csv | --check-determinism FILE2 | --chrome OUT]\n"
    "  --input FILE              JSONL trace from `ceal_tune --trace`\n"
    "  [--csv]                   emit report tables as CSV\n"
    "  [--check-determinism F2]  compare two traces modulo `timing`;\n"
    "                            exits 1 when they diverge\n"
    "  [--chrome OUT]            export causal spans as Chrome trace JSON\n"
    "  [--strip-ts]              deterministic ts (trace position) in the\n"
    "                            Chrome export, for byte comparison\n"
    "  [--check-chrome FILE]     validate an existing Chrome export\n"
    "                            (standalone; --input not needed)";

/// Strict shared reader (tools/trace_io.h): malformed lines and empty
/// traces print one line and exit 2.
std::vector<Value> read_trace(const std::string& path) {
  try {
    return ceal::tools::read_trace_file(path);
  } catch (const ceal::tools::TraceReadError& e) {
    std::cerr << "ceal_trace: " << e.what() << "\n";
    std::exit(2);
  }
}

/// The event re-serialised with every `timing` sub-object removed — the
/// deterministic residue two seeded runs must agree on.
std::string canonical_no_timing(const Value& event) {
  Value stripped = event;
  stripped.remove_recursive("timing");
  return stripped.dump();
}

int check_determinism(const std::string& a_path, const std::string& b_path) {
  const auto a = read_trace(a_path);
  const auto b = read_trace(b_path);
  const std::size_t n = std::min(a.size(), b.size());
  for (std::size_t i = 0; i < n; ++i) {
    const std::string ca = canonical_no_timing(a[i]);
    const std::string cb = canonical_no_timing(b[i]);
    if (ca != cb) {
      std::cout << "traces diverge at event " << i + 1 << " (timing "
                << "stripped):\n  " << a_path << ": " << ca << "\n  "
                << b_path << ": " << cb << "\n";
      return 1;
    }
  }
  if (a.size() != b.size()) {
    std::cout << "traces diverge: " << a.size() << " vs " << b.size()
              << " events (first " << n << " identical)\n";
    return 1;
  }
  std::cout << "traces match: " << n
            << " events identical after stripping timing\n";
  return 0;
}

/// Exports the trace's span events as Chrome trace JSON, then runs the
/// strict validator over the document just produced — an export that
/// fails its own validation is a bug, not a report.
int export_chrome(const std::string& input, const std::string& out_path,
                  bool strip_ts) {
  const auto events = read_trace(input);
  Value doc;
  std::size_t pairs = 0;
  try {
    doc = ceal::tools::export_chrome_trace(events, strip_ts);
    pairs = ceal::tools::validate_chrome_trace(doc);
  } catch (const ceal::tools::ChromeTraceError& e) {
    std::cerr << "ceal_trace: " << input << ": " << e.what() << "\n";
    return 2;
  }
  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "ceal_trace: cannot open '" << out_path << "' for writing\n";
    return 2;
  }
  doc.write(out);
  out << "\n";
  if (!out.flush()) {
    std::cerr << "ceal_trace: write to '" << out_path << "' failed\n";
    return 2;
  }
  std::cout << out_path << ": " << pairs << " spans ("
            << doc.at("traceEvents").size() << " trace events"
            << (strip_ts ? ", ts stripped" : "") << ")\n";
  return 0;
}

/// Validates an existing Chrome export; exits 1 on the first violation.
int check_chrome(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "ceal_trace: cannot open '" << path << "'\n";
    return 2;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  Value doc;
  try {
    doc = Value::parse(buffer.str());
  } catch (const std::exception& e) {
    std::cout << path << ": invalid JSON: " << e.what() << "\n";
    return 1;
  }
  try {
    const std::size_t pairs = ceal::tools::validate_chrome_trace(doc);
    std::cout << path << ": ok (" << pairs << " spans)\n";
    return 0;
  } catch (const ceal::tools::ChromeTraceError& e) {
    std::cout << path << ": " << e.what() << "\n";
    return 1;
  }
}

// --- Field helpers (schema is open; absent fields degrade to blanks). ---

std::string text_field(const Value& event, std::string_view key) {
  const Value* v = event.find(key);
  return v != nullptr ? v->as_string() : std::string();
}

/// The exact number lexeme, for lossless display of integers.
std::string num_field(const Value& event, std::string_view key) {
  const Value* v = event.find(key);
  return v != nullptr ? v->number_lexeme() : std::string();
}

double real_field(const Value& event, std::string_view key, double fallback) {
  const Value* v = event.find(key);
  return v != nullptr ? v->as_double() : fallback;
}

double timing_field(const Value& event, std::string_view key,
                    double fallback) {
  const Value* timing = event.find("timing");
  if (timing == nullptr) return fallback;
  const Value* v = timing->find(key);
  return v != nullptr ? v->as_double() : fallback;
}

bool is_iteration_event(const std::string& name) {
  return name.ends_with(".iteration") || name == "rs.sweep";
}

/// One tuning session: its tune.start event plus everything up to (and
/// including) the next tune.finish.
struct Session {
  const Value* start = nullptr;
  std::vector<const Value*> events;
};

std::vector<Session> split_sessions(const std::vector<Value>& events) {
  std::vector<Session> sessions;
  for (const auto& event : events) {
    const std::string name = text_field(event, "event");
    if (name == "tune.start" || sessions.empty()) {
      sessions.emplace_back();
      if (name == "tune.start") {
        sessions.back().start = &event;
        continue;
      }
    }
    sessions.back().events.push_back(&event);
  }
  return sessions;
}

void print_table(const Table& table, bool csv) {
  if (csv) {
    table.to_csv(std::cout);
  } else {
    std::cout << table;
  }
}

void report_session(std::size_t index, const Session& session, bool csv) {
  std::cout << (csv ? "# " : "") << "session " << index + 1 << ": ";
  if (session.start != nullptr) {
    const Value& s = *session.start;
    std::cout << text_field(s, "algorithm") << " on "
              << text_field(s, "workflow") << " (" << text_field(s, "objective")
              << ", budget " << num_field(s, "budget") << ")";
  } else {
    std::cout << "(no tune.start event)";
  }
  std::cout << "\n";

  // Per-iteration table.
  Table iterations({"iter", "event", "model", "batch", "ok", "best",
                    "budget used", "remaining", "fit (s)"});
  std::size_t iteration_rows = 0;
  for (const Value* event : session.events) {
    const std::string name = text_field(*event, "event");
    if (!is_iteration_event(name)) continue;
    ++iteration_rows;
    std::string best;
    if (const Value* values = event->find("batch_values");
        values != nullptr && values->size() > 0) {
      double lowest = std::numeric_limits<double>::infinity();
      for (std::size_t i = 0; i < values->size(); ++i) {
        lowest = std::min(lowest, values->at(i).as_double());
      }
      best = Table::num(lowest, 3);
    }
    const Value* batch = event->find("batch");
    iterations.add_row(
        {num_field(*event, "iteration"), name, text_field(*event, "model"),
         batch != nullptr ? std::to_string(batch->size()) : "",
         num_field(*event, "batch_ok"), best,
         num_field(*event, "budget_used"),
         num_field(*event, "budget_remaining"),
         Table::num(timing_field(*event, "fit_s", 0.0), 4)});
  }
  if (iteration_rows > 0) print_table(iterations, csv);

  // CEAL model-switch point and top-up injections.
  bool is_ceal = false;
  bool switched = false;
  std::size_t topup_events = 0;
  double topup_injected = 0.0;
  for (const Value* event : session.events) {
    const std::string name = text_field(*event, "event");
    if (name == "ceal.iteration") is_ceal = true;
    if (name == "ceal.switch") {
      switched = true;
      std::cout << (csv ? "# " : "  ") << "model switch at iteration "
                << num_field(*event, "iteration") << " (recall M_L "
                << Table::num(real_field(*event, "recall_low", 0.0), 1)
                << ", M_H "
                << Table::num(real_field(*event, "recall_high", 0.0), 1)
                << ")\n";
    }
    if (name == "ceal.topup") {
      ++topup_events;
      topup_injected += real_field(*event, "injected", 0.0);
    }
  }
  if (is_ceal && !switched) {
    std::cout << (csv ? "# " : "  ")
              << "no model switch (low-fidelity model retained)\n";
  }
  if (topup_events > 0) {
    std::cout << (csv ? "# " : "  ") << "top-ups: " << topup_events
              << " (injected " << Table::num(topup_injected, 0)
              << " random samples)\n";
  }

  // Failure-rate breakdown over measure events.
  std::size_t requests = 0, ok = 0, failed = 0, censored = 0, retries = 0;
  for (const Value* event : session.events) {
    if (text_field(*event, "event") != "measure") continue;
    ++requests;
    const std::string status = text_field(*event, "status");
    if (status == "ok") ++ok;
    if (status == "failed") ++failed;
    if (status == "censored") ++censored;
    const double attempts = real_field(*event, "attempts", 1.0);
    if (attempts > 1.0) retries += static_cast<std::size_t>(attempts) - 1;
  }
  if (requests > 0) {
    const auto rate = [&](std::size_t n) {
      return Table::num(100.0 * static_cast<double>(n) /
                            static_cast<double>(requests),
                        1) +
             "%";
    };
    Table failures({"status", "count", "rate"});
    failures.add_row({"ok", std::to_string(ok), rate(ok)});
    failures.add_row({"failed", std::to_string(failed), rate(failed)});
    failures.add_row({"censored", std::to_string(censored), rate(censored)});
    failures.add_row({"retries", std::to_string(retries), ""});
    print_table(failures, csv);
  }

  // Phase-timing profile from the session's telemetry.summary event.
  const Value* summary = nullptr;
  for (const Value* event : session.events) {
    if (text_field(*event, "event") == "telemetry.summary") summary = event;
  }
  if (summary != nullptr) {
    const Value* timing = summary->find("timing");
    if (timing != nullptr && timing->members().size() > 0) {
      Table phases({"span", "count", "total (s)"});
      for (const auto& [key, value] : timing->members()) {
        if (!key.ends_with(".total_s")) continue;
        const std::string span = key.substr(0, key.size() - 8);
        phases.add_row({span, num_field(*summary, span + ".count"),
                        Table::num(value.as_double(), 6)});
      }
      print_table(phases, csv);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  ceal::tools::Args args(argc, argv, kUsage);
  const auto chrome_in = args.option("check-chrome", "");
  if (!chrome_in.empty()) {
    args.finish();
    return check_chrome(chrome_in);
  }
  const auto input = args.required("input");
  const auto other = args.option("check-determinism", "");
  const auto chrome_out = args.option("chrome", "");
  const bool strip_ts = args.flag("strip-ts");
  const bool csv = args.flag("csv");
  args.finish();

  if (!other.empty()) return check_determinism(input, other);
  if (!chrome_out.empty()) return export_chrome(input, chrome_out, strip_ts);

  const auto events = read_trace(input);
  std::cout << (csv ? "# " : "") << input << ": " << events.size()
            << " events\n";
  const auto sessions = split_sessions(events);
  for (std::size_t i = 0; i < sessions.size(); ++i) {
    report_session(i, sessions[i], csv);
  }
  return 0;
}
