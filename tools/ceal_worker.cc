// ceal_worker — one measurement worker process of the distributed
// measurement plane (docs/RELIABILITY.md "Distributed measurement
// plane").
//
// Spawned by measure::SubprocessBackend with its stdin/stdout connected
// to the dispatcher over pipes; stderr stays on the parent's. The worker
// rebuilds the measured pool independently from the same arguments the
// dispatcher used (or loads the same CSV), announces itself with a hello
// frame carrying the pool fingerprint — so version or seed skew is
// caught before it serves a single run — and then answers framed run
// requests with the requested pool row until stdin reaches EOF or a
// shutdown frame arrives.
//
// Fault-injection hooks for the chaos tests (counted per run request;
// the hello is always sent first):
//   CEAL_WORKER_CRASH_AFTER="N"     every worker SIGKILLs itself on its
//                                   (N+1)-th run request
//   CEAL_WORKER_CRASH_AFTER="I:N"   only the worker with --index I does
//   CEAL_WORKER_HANG_AFTER          same addressing, hangs instead
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <optional>
#include <string>
#include <thread>

#include "measure/wire.h"
#include "tools/args.h"
#include "tools/common.h"
#include "tuner/checkpoint.h"
#include "tuner/measured_pool.h"
#include "tuner/pool_io.h"

namespace {

constexpr const char* kUsage =
    "--workflow LV|HS|GP [--pool-size N] [--pool-seed S]\n"
    "  [--pool-file FILE]       load the pool CSV instead of measuring\n"
    "  [--index I]              worker slot index (default 0)\n"
    "\n"
    "Measurement worker for `--measure-backend subprocess`; speaks the\n"
    "journal-framed wire protocol on stdin/stdout. Not meant to be run\n"
    "by hand.";

/// "N" (all workers) or "I:N" (only worker I): the run count after
/// which this worker injects its fault, or nullopt when unaddressed.
std::optional<std::uint64_t> injection_threshold(const char* env_name,
                                                 std::size_t index) {
  const char* raw = std::getenv(env_name);
  if (raw == nullptr || *raw == '\0') return std::nullopt;
  std::string spec(raw);
  const std::size_t colon = spec.find(':');
  if (colon != std::string::npos) {
    const unsigned long long target =
        std::strtoull(spec.substr(0, colon).c_str(), nullptr, 10);
    if (target != index) return std::nullopt;
    spec = spec.substr(colon + 1);
  }
  char* end = nullptr;
  const unsigned long long n = std::strtoull(spec.c_str(), &end, 10);
  if (end == spec.c_str() || *end != '\0') {
    std::cerr << "ceal_worker: malformed " << env_name << "='" << raw
              << "'\n";
    std::exit(2);
  }
  return n;
}

bool write_all(int fd, const std::string& data) {
  std::size_t written = 0;
  while (written < data.size()) {
    const ::ssize_t n =
        ::write(fd, data.data() + written, data.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    written += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ceal;
  tools::Args args(argc, argv, kUsage);
  const auto wl_name = args.required("workflow");
  const auto pool_size =
      static_cast<std::size_t>(args.integer("pool-size", 2000));
  const auto pool_seed =
      static_cast<std::uint64_t>(args.integer("pool-seed", 1));
  const auto pool_file = args.option("pool-file", "");
  const auto index = static_cast<std::size_t>(args.integer("index", 0));
  args.finish();

  const sim::Workload wl = tools::workload_by_name(wl_name);
  const tuner::MeasuredPool pool = [&] {
    try {
      return pool_file.empty()
                 ? tuner::measure_pool(wl.workflow, pool_size, pool_seed)
                 : tuner::load_pool_csv(wl.workflow.joint_space(),
                                        pool_file);
    } catch (const std::exception& e) {
      std::cerr << "ceal_worker: " << e.what() << "\n";
      std::exit(2);
    }
  }();

  const auto crash_after =
      injection_threshold("CEAL_WORKER_CRASH_AFTER", index);
  const auto hang_after =
      injection_threshold("CEAL_WORKER_HANG_AFTER", index);

  measure::FrameWriter writer;
  if (!write_all(1, writer.frame(measure::hello_message(
                     index, static_cast<std::int64_t>(::getpid()),
                     pool.size(), tuner::pool_fingerprint(pool))))) {
    return 1;
  }

  measure::FrameReader frames("dispatcher stdin");
  std::uint64_t handled_runs = 0;
  char buffer[4096];
  for (;;) {
    const ::ssize_t n = ::read(0, buffer, sizeof buffer);
    if (n < 0) {
      if (errno == EINTR) continue;
      std::cerr << "ceal_worker " << index
                << ": stdin read failed: " << std::strerror(errno) << "\n";
      return 1;
    }
    if (n == 0) return 0;  // dispatcher closed the pipe: clean exit
    frames.feed(buffer, static_cast<std::size_t>(n));
    try {
      while (std::optional<json::Value> payload = frames.next()) {
        const std::string& op = measure::message_op(*payload);
        if (op == "shutdown") return 0;
        if (op == "ping") {
          const std::uint64_t id = measure::parse_ping_id(*payload);
          if (!write_all(1, writer.frame(measure::pong_message(id)))) {
            return 1;
          }
          continue;
        }
        if (op != "run") {
          std::cerr << "ceal_worker " << index << ": unexpected op '" << op
                    << "'\n";
          return 1;
        }
        const measure::RunMsg run = measure::parse_run(*payload);
        if (run.index >= pool.size()) {
          std::cerr << "ceal_worker " << index << ": run index "
                    << run.index << " out of range\n";
          return 1;
        }
        if (crash_after && handled_runs == *crash_after) {
          ::raise(SIGKILL);
        }
        if (hang_after && handled_runs == *hang_after) {
          for (;;) std::this_thread::sleep_for(std::chrono::hours(1));
        }
        ++handled_runs;
        const json::Value result = measure::result_message(
            run.id, run.index,
            measure::config_fingerprint(pool, run.index),
            pool.exec_s[run.index], pool.comp_ch[run.index]);
        if (!write_all(1, writer.frame(result))) return 1;
      }
    } catch (const std::exception& e) {
      std::cerr << "ceal_worker " << index << ": " << e.what() << "\n";
      return 1;
    }
  }
}
