// Chrome trace-event export of causal span traces, plus a strict
// validator for the produced documents.
//
// `export_chrome_trace` turns the `span.begin`/`span.end` events of a
// JSONL trace (see docs/OBSERVABILITY.md, "Causal spans") into the
// Chrome trace-event JSON format that chrome://tracing and Perfetto
// load directly: one process per trace_id, one thread per strand, `B`
// and `E` duration events carrying span ids in `args`.
//
// Determinism: with `strip_ts` set, the `ts` field is the event's
// position in the trace instead of wall-clock microseconds, so two
// exports of byte-identical traces (timing stripped) are byte-identical
// JSON — the property the tier-1 Chrome-export gate diffs across
// thread counts. Without `strip_ts`, `ts` comes from `timing.ts_s`,
// clamped monotone per thread lane (Chrome rejects time travel).
//
// `validate_chrome_trace` holds exported documents to the rules the
// viewers rely on: every event has name/ph/pid/tid, `B`/`E` carry a
// numeric non-decreasing `ts` per (pid, tid), begin/end pairs nest LIFO
// with matching names and span ids, span ids are unique, a nested
// span's parent_span_id is the enclosing span, and every stack is
// empty at the end. Violations raise ChromeTraceError with a
// "chrome:event N:" prefix, mirroring validate_prometheus.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "core/json.h"

namespace ceal::tools {

/// Raised on any malformed Chrome trace document; what() is one
/// printable "chrome:event N: why" line.
class ChromeTraceError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

namespace chrome_detail {

inline const json::Value* find_string(const json::Value& event,
                                      std::string_view key) {
  const json::Value* v = event.find(key);
  return (v != nullptr && v->kind() == json::Value::Kind::kString) ? v
                                                                   : nullptr;
}

inline const json::Value* find_number(const json::Value& event,
                                      std::string_view key) {
  const json::Value* v = event.find(key);
  return (v != nullptr && v->kind() == json::Value::Kind::kNumber) ? v
                                                                   : nullptr;
}

}  // namespace chrome_detail

/// Converts the span events of a JSONL trace into a Chrome trace-event
/// document {"traceEvents": [...], "displayTimeUnit": "ms"}. Non-span
/// events are ignored. Each distinct trace_id becomes a process (pid in
/// first-seen order, named by a process_name metadata event); each
/// strand becomes a thread within it (tid = strand + 1). Span events
/// missing required fields raise ChromeTraceError against their
/// 1-based position in `events`.
inline json::Value export_chrome_trace(const std::vector<json::Value>& events,
                                       bool strip_ts = false) {
  using chrome_detail::find_number;
  using chrome_detail::find_string;
  json::Value trace_events = json::Value::array();
  // pid per trace_id, first-seen order; named lanes get one metadata
  // event each, emitted inline at first sight (deterministic given the
  // deterministic event order of the input trace).
  std::map<std::string, std::uint64_t> pids;
  std::set<std::pair<std::uint64_t, std::uint64_t>> named_threads;
  std::map<std::pair<std::uint64_t, std::uint64_t>, double> last_ts;
  std::uint64_t sequence = 0;  // strip_ts lane: position in the trace

  const auto metadata = [&](const char* what, std::uint64_t pid,
                            std::uint64_t tid, const std::string& name) {
    json::Value m = json::Value::object();
    m.set("name", json::Value::string(what));
    m.set("ph", json::Value::string("M"));
    m.set("pid", json::Value::number(pid));
    m.set("tid", json::Value::number(tid));
    json::Value args = json::Value::object();
    args.set("name", json::Value::string(name));
    m.set("args", std::move(args));
    trace_events.push(std::move(m));
  };

  for (std::size_t i = 0; i < events.size(); ++i) {
    const json::Value& event = events[i];
    const json::Value* kind = find_string(event, "event");
    if (kind == nullptr) continue;
    const bool begin = kind->as_string() == "span.begin";
    const bool end = kind->as_string() == "span.end";
    if (!begin && !end) continue;

    const auto bad = [&](const std::string& why) {
      return ChromeTraceError("chrome:event " + std::to_string(i + 1) + ": " +
                              why);
    };
    const json::Value* span = find_string(event, "span");
    const json::Value* trace_id = find_string(event, "trace_id");
    const json::Value* span_id = find_string(event, "span_id");
    const json::Value* parent = find_string(event, "parent_span_id");
    const json::Value* strand = find_number(event, "strand");
    if (span == nullptr || trace_id == nullptr || span_id == nullptr ||
        parent == nullptr || strand == nullptr) {
      throw bad("span event missing span/trace_id/span_id/parent_span_id/"
                "strand");
    }

    const auto [it, fresh] =
        pids.emplace(trace_id->as_string(), pids.size() + 1);
    const std::uint64_t pid = it->second;
    const std::uint64_t tid =
        static_cast<std::uint64_t>(strand->as_double()) + 1;
    if (fresh) {
      metadata("process_name", pid, 0, "trace " + trace_id->as_string());
    }
    if (named_threads.insert({pid, tid}).second) {
      metadata("thread_name", pid, tid,
               "strand " + std::to_string(tid - 1));
    }

    double ts;
    if (strip_ts) {
      ts = static_cast<double>(sequence++);
    } else {
      const json::Value* timing = event.find("timing");
      const json::Value* ts_s =
          timing != nullptr ? chrome_detail::find_number(*timing, "ts_s")
                            : nullptr;
      ts = ts_s != nullptr ? ts_s->as_double() * 1e6 : 0.0;
      double& last = last_ts[{pid, tid}];
      if (ts < last) ts = last;  // clamp: no time travel within a lane
      last = ts;
    }

    json::Value out = json::Value::object();
    out.set("name", json::Value::string(span->as_string()));
    out.set("ph", json::Value::string(begin ? "B" : "E"));
    out.set("pid", json::Value::number(pid));
    out.set("tid", json::Value::number(tid));
    out.set("ts", strip_ts
                      ? json::Value::number(static_cast<std::uint64_t>(ts))
                      : json::Value::number(ts));
    json::Value args = json::Value::object();
    args.set("span_id", json::Value::string(span_id->as_string()));
    if (begin) {
      args.set("parent_span_id", json::Value::string(parent->as_string()));
    }
    out.set("args", std::move(args));
    trace_events.push(std::move(out));
  }

  json::Value doc = json::Value::object();
  doc.set("traceEvents", std::move(trace_events));
  doc.set("displayTimeUnit", json::Value::string("ms"));
  return doc;
}

/// Validates a Chrome trace-event document (see file comment for the
/// rule set) and returns the number of complete begin/end span pairs.
/// Throws ChromeTraceError on the first violation.
inline std::size_t validate_chrome_trace(const json::Value& doc) {
  using chrome_detail::find_number;
  using chrome_detail::find_string;
  if (!doc.is_object()) {
    throw ChromeTraceError("chrome: document is not a JSON object");
  }
  const json::Value* trace_events = doc.find("traceEvents");
  if (trace_events == nullptr || !trace_events->is_array()) {
    throw ChromeTraceError("chrome: traceEvents array missing");
  }

  struct Open {
    std::string name;
    std::string span_id;
  };
  std::map<std::pair<std::uint64_t, std::uint64_t>, std::vector<Open>> stacks;
  std::map<std::pair<std::uint64_t, std::uint64_t>, double> last_ts;
  std::set<std::string> seen_span_ids;
  std::size_t pairs = 0;

  for (std::size_t i = 0; i < trace_events->size(); ++i) {
    const json::Value& event = trace_events->at(i);
    const auto bad = [&](const std::string& why) {
      return ChromeTraceError("chrome:event " + std::to_string(i + 1) + ": " +
                              why);
    };
    if (!event.is_object()) throw bad("event is not a JSON object");
    const json::Value* name = find_string(event, "name");
    const json::Value* ph = find_string(event, "ph");
    const json::Value* pid = find_number(event, "pid");
    const json::Value* tid = find_number(event, "tid");
    if (name == nullptr) throw bad("missing string 'name'");
    if (ph == nullptr) throw bad("missing string 'ph'");
    if (pid == nullptr) throw bad("missing numeric 'pid'");
    if (tid == nullptr) throw bad("missing numeric 'tid'");
    const std::string& phase = ph->as_string();
    if (phase == "M") continue;
    if (phase != "B" && phase != "E") {
      throw bad("unsupported ph '" + phase + "' (expected B, E, or M)");
    }

    const json::Value* ts = find_number(event, "ts");
    if (ts == nullptr) throw bad("missing numeric 'ts'");
    const std::pair<std::uint64_t, std::uint64_t> lane{
        static_cast<std::uint64_t>(pid->as_double()),
        static_cast<std::uint64_t>(tid->as_double())};
    const auto [ts_it, first_ts] = last_ts.emplace(lane, ts->as_double());
    if (!first_ts) {
      if (ts->as_double() < ts_it->second) {
        throw bad("ts " + ts->number_lexeme() +
                  " goes backwards within pid/tid lane");
      }
      ts_it->second = ts->as_double();
    }

    const json::Value* args = event.find("args");
    const json::Value* span_id =
        args != nullptr ? find_string(*args, "span_id") : nullptr;
    std::vector<Open>& stack = stacks[lane];
    if (phase == "B") {
      if (span_id != nullptr) {
        if (!seen_span_ids.insert(span_id->as_string()).second) {
          throw bad("duplicate span_id " + span_id->as_string());
        }
        const json::Value* parent = find_string(*args, "parent_span_id");
        if (parent != nullptr && !stack.empty() &&
            parent->as_string() != stack.back().span_id) {
          throw bad("parent_span_id " + parent->as_string() +
                    " does not match enclosing span " + stack.back().span_id);
        }
      }
      stack.push_back({name->as_string(),
                       span_id != nullptr ? span_id->as_string()
                                          : std::string()});
    } else {
      if (stack.empty()) {
        throw bad("end event '" + name->as_string() + "' with no open span");
      }
      const Open& top = stack.back();
      if (top.name != name->as_string()) {
        throw bad("end event '" + name->as_string() +
                  "' does not match open span '" + top.name + "'");
      }
      if (span_id != nullptr && !top.span_id.empty() &&
          span_id->as_string() != top.span_id) {
        throw bad("end span_id " + span_id->as_string() +
                  " does not match begin span_id " + top.span_id);
      }
      stack.pop_back();
      ++pairs;
    }
  }

  for (const auto& [lane, stack] : stacks) {
    if (!stack.empty()) {
      throw ChromeTraceError(
          "chrome: unclosed span '" + stack.back().name + "' in pid " +
          std::to_string(lane.first) + " tid " + std::to_string(lane.second));
    }
  }
  return pairs;
}

}  // namespace ceal::tools
