#!/usr/bin/env bash
# Tier-1 verification: every test labelled tier1 (unit, system, and
# example smoke tests — see tests/CMakeLists.txt), trace determinism
# gates (serial and 4-thread pooled), the micro benches + ceal_report
# regression gate against .ceal-bench/baseline, then the same tier1
# label set rebuilt and rerun under AddressSanitizer and
# UndefinedBehaviorSanitizer (CEAL_SANITIZE, see the root
# CMakeLists.txt). Sanitizer builds go to build-address/ and
# build-undefined/ so they never disturb the primary build/ tree.
# Slow stress sweeps carry the `slow` label instead and are not part of
# tier 1; run them with `ctest --test-dir build -L slow`.
#
# Usage: tools/run_tier1.sh [--skip-sanitizers] [--with-tsan]
#   --skip-sanitizers  stop after the plain build stages
#   --with-tsan        additionally rebuild with CEAL_SANITIZE=thread and
#                      run the concurrency-sensitive tier1 tests under it
set -euo pipefail
cd "$(dirname "$0")/.."

jobs="$(nproc 2>/dev/null || echo 2)"
skip_san=0
with_tsan=0
for arg in "$@"; do
  case "$arg" in
    --skip-sanitizers) skip_san=1 ;;
    --with-tsan) with_tsan=1 ;;
    *) echo "unknown argument: $arg" >&2; exit 2 ;;
  esac
done

echo "== tier-1: plain build + ctest -L tier1 =="
cmake -B build -S . >/dev/null
cmake --build build -j "$jobs"
ctest --test-dir build --output-on-failure -j "$jobs" -L tier1

echo "== tier-1: trace determinism gate =="
# Two seeded runs at the fig5 configuration must (a) print the same
# report whether or not tracing is on, and (b) produce traces that are
# byte-identical once `timing` is stripped (docs/OBSERVABILITY.md).
trace_dir="$(mktemp -d)"
trap 'rm -rf "$trace_dir"' EXIT
fig5_args=(--workflow LV --objective exec --budget 50 --pool-seed 20211114
           --seed 42)
./build/tools/ceal_tune "${fig5_args[@]}" > "$trace_dir/plain.txt"
./build/tools/ceal_tune "${fig5_args[@]}" \
  --trace "$trace_dir/a.jsonl" > "$trace_dir/traced.txt"
./build/tools/ceal_tune "${fig5_args[@]}" \
  --trace "$trace_dir/b.jsonl" > /dev/null
diff "$trace_dir/plain.txt" "$trace_dir/traced.txt" \
  || { echo "tracing changed ceal_tune stdout"; exit 1; }
./build/tools/ceal_trace --input "$trace_dir/a.jsonl" \
  --check-determinism "$trace_dir/b.jsonl"

echo "== tier-1: pooled-replication determinism gate =="
# A 4-thread evaluation must produce the same stripped trace as the
# serial path (per-replication child telemetry, merged in order).
rep_args=(--workflow LV --objective exec --budget 25 --pool-size 400
          --pool-seed 21 --component-samples 120 --seed 7 --replications 4
          --quiet)
./build/tools/ceal_tune "${rep_args[@]}" --trace "$trace_dir/serial.jsonl"
./build/tools/ceal_tune "${rep_args[@]}" --threads 4 \
  --trace "$trace_dir/pooled.jsonl"
./build/tools/ceal_trace --input "$trace_dir/serial.jsonl" \
  --check-determinism "$trace_dir/pooled.jsonl"

echo "== tier-1: kill-resume determinism gate =="
# Crash-safety end to end (docs/RELIABILITY.md): a checkpointed
# ceal_tune SIGKILLed mid-session (CEAL_CRASH_AFTER_RECORDS makes the
# session kill itself right after the Nth journal record is durable)
# and then resumed must print byte-identical stdout and write a
# byte-identical hex-exact result CSV to an uninterrupted run.
kill_args=(--workflow LV --objective exec --budget 20 --pool-size 300
           --pool-seed 31 --component-samples 100 --seed 5
           --fault-rate 0.15 --max-attempts 2)
./build/tools/ceal_tune "${kill_args[@]}" \
  --save-result "$trace_dir/uninterrupted.csv" \
  > "$trace_dir/uninterrupted.txt"
rc=0
CEAL_CRASH_AFTER_RECORDS=12 ./build/tools/ceal_tune "${kill_args[@]}" \
  --checkpoint "$trace_dir/ckpt" > "$trace_dir/killed.txt" 2>/dev/null || rc=$?
if [[ "$rc" -ne 137 ]]; then
  echo "expected the checkpointed session to die with SIGKILL (137), got $rc"
  exit 1
fi
./build/tools/ceal_tune "${kill_args[@]}" --checkpoint "$trace_dir/ckpt" \
  --resume --save-result "$trace_dir/resumed.csv" \
  > "$trace_dir/resumed.txt" 2> "$trace_dir/resume_info.txt"
diff "$trace_dir/uninterrupted.txt" "$trace_dir/resumed.txt" \
  || { echo "kill+resume changed ceal_tune stdout"; exit 1; }
diff "$trace_dir/uninterrupted.csv" "$trace_dir/resumed.csv" \
  || { echo "kill+resume changed the tuning result"; exit 1; }
grep -q "measurements replayed" "$trace_dir/resume_info.txt" \
  || { echo "resume did not report replayed measurements"; exit 1; }
# Torn tail: chop the journal mid-record (as a kill mid-append would)
# and resume again — the fragment must be dropped, not rejected.
journal="$trace_dir/ckpt/journal.cealj"
full_size=$(wc -c < "$journal")
truncate -s "$((full_size - 7))" "$journal"
./build/tools/ceal_tune "${kill_args[@]}" --checkpoint "$trace_dir/ckpt" \
  --resume --save-result "$trace_dir/torn.csv" \
  > "$trace_dir/torn.txt" 2>/dev/null
diff "$trace_dir/uninterrupted.csv" "$trace_dir/torn.csv" \
  || { echo "torn-tail resume changed the tuning result"; exit 1; }

echo "== tier-1: worker-chaos measurement-plane gate =="
# Distributed measurement plane (docs/RELIABILITY.md "Distributed
# measurement plane"): the same faulty session as above dispatched to
# subprocess workers — with one worker SIGKILLing itself every 2 runs
# and another hanging (forcing hedges and hang kills) — must print
# byte-identical stdout and write a byte-identical result CSV to the
# uninterrupted in-process run. A third run with an unspawnable worker
# binary must degrade gracefully to in-process execution, again with
# identical bytes.
CEAL_WORKER_CRASH_AFTER="0:2" CEAL_WORKER_HANG_AFTER="1:3" \
  ./build/tools/ceal_tune "${kill_args[@]}" \
    --measure-backend subprocess --workers 3 \
    --hedge-after-s 0.05 --hang-after-s 0.5 \
    --save-result "$trace_dir/chaos.csv" > "$trace_dir/chaos.txt"
diff "$trace_dir/uninterrupted.txt" "$trace_dir/chaos.txt" \
  || { echo "worker chaos changed ceal_tune stdout"; exit 1; }
diff "$trace_dir/uninterrupted.csv" "$trace_dir/chaos.csv" \
  || { echo "worker chaos changed the tuning result"; exit 1; }
./build/tools/ceal_tune "${kill_args[@]}" \
  --measure-backend subprocess --worker-bin /bin/false --degrade-after 2 \
  --save-result "$trace_dir/degraded.csv" > "$trace_dir/degraded.txt"
diff "$trace_dir/uninterrupted.txt" "$trace_dir/degraded.txt" \
  || { echo "degraded measurement plane changed ceal_tune stdout"; exit 1; }
diff "$trace_dir/uninterrupted.csv" "$trace_dir/degraded.csv" \
  || { echo "degraded measurement plane changed the tuning result"; exit 1; }

echo "== tier-1: serve kill-resume determinism gate =="
# The daemon version of the same contract (docs/SERVING.md): a
# ceal_serve session journaling to --checkpoint, SIGKILLed after the
# 12th durable journal record, restarted with --resume and stepped to
# completion must save a result CSV byte-identical to the solo
# ceal_tune run above (the session.create mirrors kill_args exactly).
serve_dir="$trace_dir/serve"
mkdir -p "$serve_dir"
serve_create='{"op":"session.create","id":"gate","workflow":"LV",'
serve_create+='"objective":"exec","budget":20,"algorithm":"CEAL","seed":5,'
serve_create+='"pool_size":300,"pool_seed":31,"component_samples":100,'
serve_create+='"fault_rate":0.15,"max_attempts":2}'
rc=0
printf '%s\n{"op":"session.step","id":"gate","steps":1000}\n' "$serve_create" \
  | CEAL_CRASH_AFTER_RECORDS=12 ./build/tools/ceal_serve \
      --checkpoint "$serve_dir" >/dev/null 2>&1 || rc=$?
if [[ "$rc" -ne 137 ]]; then
  echo "expected ceal_serve to die with SIGKILL (137), got $rc"
  exit 1
fi
printf '{"op":"session.step","id":"gate","steps":1000}\n{"op":"session.query","id":"gate","save_result":"%s"}\n' \
    "$serve_dir/served.csv" \
  | ./build/tools/ceal_serve --checkpoint "$serve_dir" --resume \
      > "$serve_dir/responses.txt" 2> "$serve_dir/resume_info.txt"
grep -q "resumed 1 session(s)" "$serve_dir/resume_info.txt" \
  || { echo "ceal_serve --resume did not rebuild the killed session"; exit 1; }
grep -q '"ok":false' "$serve_dir/responses.txt" \
  && { echo "ceal_serve answered an error after resume"; exit 1; }
diff "$trace_dir/uninterrupted.csv" "$serve_dir/served.csv" \
  || { echo "daemon kill+resume changed the tuning result"; exit 1; }

echo "== tier-1: metrics exposition gate =="
# Observability plane (docs/OBSERVABILITY.md): the same request script
# through a daemon at --threads 1 and 4 with --metrics-export must
# produce (a) a Prometheus exposition that passes ceal_top's strict
# validator and (b) a deterministic metric subset (ceal_top --once
# --csv --deterministic: no spans, no timing.* histograms, no export
# timestamp) that is byte-identical across thread counts. Then a live
# socket daemon is scraped with ceal_top --once (the server.metrics op
# end to end) and SIGTERM-drained: it must exit 0 and leave a final
# valid snapshot pair behind.
metrics_dir="$trace_dir/metrics"
mkdir -p "$metrics_dir"
metrics_script() {
  printf '{"op":"session.create","id":"mg1","workflow":"LV","objective":"exec","budget":20,"algorithm":"CEAL","seed":5,"pool_size":200,"component_samples":80}\n'
  printf '{"op":"session.create","id":"mg2","workflow":"HS","objective":"comp","budget":12,"algorithm":"RS","seed":9,"pool_size":150,"component_samples":60}\n'
  printf '{"op":"session.step","id":"mg1","steps":3}\n'
  printf '{"op":"session.step","id":"mg2","steps":2}\n'
  printf '{"op":"session.cancel","id":"mg2"}\n'
  printf '{"op":"session.cancel","id":"mg2"}\n'  # double cancel: a per-op error
  printf '{"op":"server.metrics"}\n'
  printf '{"op":"session.step","id":"mg1","steps":100}\n'
  printf '{"op":"server.stats"}\n'
}
for t in 1 4; do
  metrics_script | ./build/tools/ceal_serve --threads "$t" \
    --metrics-export "$metrics_dir/t$t.json" --metrics-interval 600 \
    > "$metrics_dir/t$t.responses" 2>/dev/null
  ./build/tools/ceal_top --check-prom "$metrics_dir/t$t.json.prom" \
    > /dev/null
  ./build/tools/ceal_top --once --csv --deterministic \
    --file "$metrics_dir/t$t.json" > "$metrics_dir/t$t.det.csv"
done
# Response streams stay byte-identical across thread counts except the
# server.metrics response, which is documented to carry wall clocks
# (its "spans" member marks it) — the deterministic subset of that one
# is covered by the ceal_top CSV diff below instead.
diff <(grep -v '"spans"' "$metrics_dir/t1.responses") \
     <(grep -v '"spans"' "$metrics_dir/t4.responses") \
  || { echo "serve responses differ across thread counts"; exit 1; }
diff "$metrics_dir/t1.det.csv" "$metrics_dir/t4.det.csv" \
  || { echo "deterministic metric subset differs across thread counts"; exit 1; }
# The script double-cancels a drained session: exactly those two cancel
# requests (and nothing else) must answer errors.
[[ "$(grep -c '"ok":false' "$metrics_dir/t1.responses")" -eq 2 ]] \
  || { echo "metrics gate script answered unexpected errors"; exit 1; }
sock="$metrics_dir/live.sock"
./build/tools/ceal_serve --socket "$sock" \
  --metrics-export "$metrics_dir/live.json" --metrics-interval 600 \
  2> "$metrics_dir/live.log" &
serve_pid=$!
for _ in $(seq 100); do [[ -S "$sock" ]] && break; sleep 0.05; done
[[ -S "$sock" ]] || { echo "ceal_serve did not open its socket"; exit 1; }
./build/tools/ceal_top --socket "$sock" --once > "$metrics_dir/top.txt"
grep -q "ceal_serve:" "$metrics_dir/top.txt" \
  || { echo "ceal_top --once rendered no dashboard"; exit 1; }
kill -TERM "$serve_pid"
rc=0; wait "$serve_pid" || rc=$?
[[ "$rc" -eq 0 ]] \
  || { echo "ceal_serve did not drain cleanly on SIGTERM (rc=$rc)"; exit 1; }
./build/tools/ceal_top --check-prom "$metrics_dir/live.json.prom" >/dev/null

echo "== tier-1: chrome trace export gate =="
# Causal spans (docs/OBSERVABILITY.md "Causal spans & the flight
# recorder"): a seeded two-session daemon run with --trace-dir must
# (a) leave per-session Chrome timelines on drain that pass the strict
# ceal_trace --check-chrome validator, (b) produce per-session trace
# JSONL whose stripped span tree is byte-identical across --threads 1
# and 4, and (c) produce --strip-ts Chrome exports that are
# byte-identical across thread counts (ids and tree shape are a pure
# function of the session seed, never of scheduling).
chrome_dir="$trace_dir/chrome"
chrome_script() {
  printf '{"op":"session.create","id":"cg1","workflow":"LV","objective":"exec","budget":12,"algorithm":"CEAL","seed":11,"pool_size":200,"component_samples":80}\n'
  printf '{"op":"session.create","id":"cg2","workflow":"HS","objective":"comp","budget":8,"algorithm":"RS","seed":13,"pool_size":150,"component_samples":60}\n'
  printf '{"op":"session.step","id":"cg1","steps":6}\n'
  printf '{"op":"session.step","id":"cg2","steps":4}\n'
  printf '{"op":"session.step","id":"cg1","steps":100}\n'
  printf '{"op":"session.step","id":"cg2","steps":100}\n'
  printf '{"op":"server.stats"}\n'
}
for t in 1 4; do
  d="$chrome_dir/t$t"
  mkdir -p "$d"
  chrome_script | ./build/tools/ceal_serve --threads "$t" \
    --trace-dir "$d" > "$d/responses.txt" 2> "$d/drain.log"
  for id in cg1 cg2; do
    [[ -s "$d/$id.chrome.json" ]] \
      || { echo "drain left no chrome export for $id (threads $t)"; exit 1; }
    ./build/tools/ceal_trace --check-chrome "$d/$id.chrome.json" >/dev/null
    ./build/tools/ceal_trace --input "$d/$id.trace.jsonl" \
      --chrome "$d/$id.strip.json" --strip-ts >/dev/null
  done
done
for id in cg1 cg2; do
  ./build/tools/ceal_trace --input "$chrome_dir/t1/$id.trace.jsonl" \
    --check-determinism "$chrome_dir/t4/$id.trace.jsonl"
  diff "$chrome_dir/t1/$id.strip.json" "$chrome_dir/t4/$id.strip.json" \
    || { echo "strip-ts chrome export differs across thread counts ($id)"; exit 1; }
done

echo "== tier-1: flight-recorder crash-dump gate =="
# Crash forensics (docs/SERVING.md "server.dump and the crash-forensics
# flight recorder"): a daemon with an armed flight recorder that
# SIGSEGVs mid-step (CEAL_CRASH_SIGSEGV_AFTER raises on the Nth emit)
# must die with 139 and leave a parseable flight dump whose ring still
# contains the last event the per-session trace sink flushed to disk.
crash_dir="$trace_dir/crashdump"
mkdir -p "$crash_dir"
crash_script() {
  printf '{"op":"session.create","id":"fr1","workflow":"LV","objective":"exec","budget":20,"algorithm":"CEAL","seed":17,"pool_size":200,"component_samples":80}\n'
  for _ in $(seq 12); do
    printf '{"op":"session.step","id":"fr1","steps":1}\n'
  done
}
rc=0
crash_script | CEAL_CRASH_SIGSEGV_AFTER=80 ./build/tools/ceal_serve \
  --trace-dir "$crash_dir" --flight-recorder 512 \
  --flight-dump "$crash_dir/flight.jsonl" >/dev/null 2>&1 || rc=$?
if [[ "$rc" -ne 139 ]]; then
  echo "expected ceal_serve to die with SIGSEGV (139), got $rc"
  exit 1
fi
[[ -s "$crash_dir/flight.jsonl" ]] \
  || { echo "crash handler left no flight dump"; exit 1; }
grep -q '"event":"flight.recorder"' "$crash_dir/flight.jsonl" \
  || { echo "flight dump carries no recorder header"; exit 1; }
grep -q '"label":"session:fr1"' "$crash_dir/flight.jsonl" \
  || { echo "flight dump is missing the session ring"; exit 1; }
# Every line of the dump must be a standalone JSON object (the trace
# reader doubles as the parser here).
./build/tools/ceal_trace --input "$crash_dir/flight.jsonl" >/dev/null \
  || { echo "flight dump is not parseable JSONL"; exit 1; }
last_flushed="$(tail -n 1 "$crash_dir/fr1.trace.jsonl")"
[[ -n "$last_flushed" ]] \
  || { echo "crashed session flushed no trace lines"; exit 1; }
grep -qF -- "$last_flushed" "$crash_dir/flight.jsonl" \
  || { echo "flight dump lost the last flushed trace event"; exit 1; }

echo "== tier-1: micro benches + ceal_report regression gate =="
# Cheap micro benches write BENCH_*.json (with the common metadata
# header) into .ceal-bench/current alongside the fig5 trace; ceal_report
# summarises and — when .ceal-bench/baseline exists from an earlier pass
# — gates span totals, bench times, and the custom counters
# (configs/sec, recall_at_64, peak RSS) against it. The pool-scale
# sweep is capped at 16k configs here (CEAL_POOL_SCALE_MAX) so the
# stage stays seconds, not minutes; a full 1M-row validation run is a
# manual `bench_pool_scale` invocation (docs/PERFORMANCE.md). Wall clocks on a
# loaded single-core box are noisy, so the bench gate uses repetition
# medians and generous tolerances; the deterministic counters in the
# trace metrics are what regressions usually show up in first.
bench_dir=".ceal-bench"
rm -rf "$bench_dir/current"
mkdir -p "$bench_dir/current"
export CEAL_TELEMETRY_OVERHEAD_TOL="${CEAL_TELEMETRY_OVERHEAD_TOL:-0.15}"
(cd "$bench_dir/current" \
  && ../../build/bench/bench_micro_ml --benchmark_min_time=0.05 \
       --benchmark_repetitions=3 --benchmark_report_aggregates_only=true \
       > bench_micro_ml.log \
  && ../../build/bench/bench_micro_telemetry --benchmark_min_time=0.05 \
       --benchmark_repetitions=3 --benchmark_report_aggregates_only=true \
       > bench_micro_telemetry.log \
  && CEAL_POOL_SCALE_MAX="${CEAL_POOL_SCALE_MAX:-16384}" \
     ../../build/bench/bench_pool_scale --benchmark_min_time=0.05 \
       --benchmark_repetitions=3 --benchmark_report_aggregates_only=true \
       > bench_pool_scale.log \
  && ../../build/bench/bench_serve_load --benchmark_min_time=0.05 \
       --benchmark_repetitions=3 --benchmark_report_aggregates_only=true \
       > bench_serve_load.log \
  && ../../build/bench/bench_measure_plane --benchmark_min_time=0.02 \
       --benchmark_repetitions=3 --benchmark_report_aggregates_only=true \
       > bench_measure_plane.log)
cp "$trace_dir/a.jsonl" "$bench_dir/current/fig5_trace.jsonl"
if [[ -d "$bench_dir/baseline" ]]; then
  ./build/tools/ceal_report --current "$bench_dir/current" \
    --baseline "$bench_dir/baseline" --tolerance 0.5
else
  ./build/tools/ceal_report --current "$bench_dir/current"
  echo "(no $bench_dir/baseline yet — summary only)"
fi
# Self-check: identical inputs must pass, a degraded fixture must not.
./build/tools/ceal_report --current "$bench_dir/current" \
  --baseline "$bench_dir/current" > /dev/null
printf '{"event":"telemetry.summary","seq":0,"x.count":2,"timing":{"x.total_s":1.0}}\n' \
  > "$trace_dir/gate_base.jsonl"
printf '{"event":"telemetry.summary","seq":0,"x.count":2,"timing":{"x.total_s":9.0}}\n' \
  > "$trace_dir/gate_cur.jsonl"
if ./build/tools/ceal_report --current "$trace_dir/gate_cur.jsonl" \
     --baseline "$trace_dir/gate_base.jsonl" --tolerance 0.5 > /dev/null; then
  echo "ceal_report failed to flag a degraded span fixture"; exit 1
fi
# Rotate: this pass becomes the next pass's baseline.
rm -rf "$bench_dir/baseline"
cp -r "$bench_dir/current" "$bench_dir/baseline"

if [[ "$skip_san" == 1 ]]; then
  echo "tier-1 OK (sanitizer stages skipped)"
  exit 0
fi

for san in address undefined; do
  echo "== tier-1: tier1 label set under ${san} sanitizer =="
  dir="build-${san}"
  cmake -B "$dir" -S . -DCEAL_SANITIZE="$san" >/dev/null
  cmake --build "$dir" -j "$jobs" --target unit_tests system_tests \
    serve_tests measure_tests ceal_worker quickstart component_models \
    miniapp_demo custom_workflow md_insitu
  ctest --test-dir "$dir" --output-on-failure -j "$jobs" -L tier1
done

if [[ "$with_tsan" == 1 ]]; then
  echo "== tier-1: concurrency telemetry tests under ThreadSanitizer =="
  dir="build-thread"
  cmake -B "$dir" -S . -DCEAL_SANITIZE=thread >/dev/null
  cmake --build "$dir" -j "$jobs" --target unit_tests system_tests \
    serve_tests measure_tests ceal_worker
  ctest --test-dir "$dir" --output-on-failure -j "$jobs" -L tier1 \
    -R 'Telemetry|ThreadPool|Trace|Parallel|Quantized|Compiled|PoolScorer|Serve|Measure'
fi

echo "tier-1 OK (plain + asan + ubsan$([[ "$with_tsan" == 1 ]] && echo ' + tsan'))"
