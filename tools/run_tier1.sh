#!/usr/bin/env bash
# Tier-1 verification: every test labelled tier1 (unit, system, and
# example smoke tests — see tests/CMakeLists.txt), then the same label
# set rebuilt and rerun under AddressSanitizer and
# UndefinedBehaviorSanitizer (CEAL_SANITIZE, see the root
# CMakeLists.txt). Sanitizer builds go to build-address/ and
# build-undefined/ so they never disturb the primary build/ tree.
# Slow stress sweeps carry the `slow` label instead and are not part of
# tier 1; run them with `ctest --test-dir build -L slow`.
#
# Usage: tools/run_tier1.sh [--skip-sanitizers]
set -euo pipefail
cd "$(dirname "$0")/.."

jobs="$(nproc 2>/dev/null || echo 2)"
skip_san=0
[[ "${1:-}" == "--skip-sanitizers" ]] && skip_san=1

echo "== tier-1: plain build + ctest -L tier1 =="
cmake -B build -S . >/dev/null
cmake --build build -j "$jobs"
ctest --test-dir build --output-on-failure -j "$jobs" -L tier1

echo "== tier-1: trace determinism gate =="
# Two seeded runs at the fig5 configuration must (a) print the same
# report whether or not tracing is on, and (b) produce traces that are
# byte-identical once `timing` is stripped (docs/OBSERVABILITY.md).
trace_dir="$(mktemp -d)"
trap 'rm -rf "$trace_dir"' EXIT
fig5_args=(--workflow LV --objective exec --budget 50 --pool-seed 20211114
           --seed 42)
./build/tools/ceal_tune "${fig5_args[@]}" > "$trace_dir/plain.txt"
./build/tools/ceal_tune "${fig5_args[@]}" \
  --trace "$trace_dir/a.jsonl" > "$trace_dir/traced.txt"
./build/tools/ceal_tune "${fig5_args[@]}" \
  --trace "$trace_dir/b.jsonl" > /dev/null
diff "$trace_dir/plain.txt" "$trace_dir/traced.txt" \
  || { echo "tracing changed ceal_tune stdout"; exit 1; }
./build/tools/ceal_trace --input "$trace_dir/a.jsonl" \
  --check-determinism "$trace_dir/b.jsonl"

if [[ "$skip_san" == 1 ]]; then
  echo "tier-1 OK (sanitizer stages skipped)"
  exit 0
fi

for san in address undefined; do
  echo "== tier-1: tier1 label set under ${san} sanitizer =="
  dir="build-${san}"
  cmake -B "$dir" -S . -DCEAL_SANITIZE="$san" >/dev/null
  cmake --build "$dir" -j "$jobs" --target unit_tests system_tests \
    quickstart component_models miniapp_demo custom_workflow md_insitu
  ctest --test-dir "$dir" --output-on-failure -j "$jobs" -L tier1
done

echo "tier-1 OK (plain + asan + ubsan)"
