#!/usr/bin/env bash
# Tier-1 verification: the full regular test suite, then the unit (ml)
# and system (tuner) test binaries rebuilt and rerun under
# AddressSanitizer and UndefinedBehaviorSanitizer (CEAL_SANITIZE, see the
# root CMakeLists.txt). Sanitizer builds go to build-address/ and
# build-undefined/ so they never disturb the primary build/ tree.
#
# Usage: tools/run_tier1.sh [--skip-sanitizers]
set -euo pipefail
cd "$(dirname "$0")/.."

jobs="$(nproc 2>/dev/null || echo 2)"
skip_san=0
[[ "${1:-}" == "--skip-sanitizers" ]] && skip_san=1

echo "== tier-1: plain build + full ctest =="
cmake -B build -S . >/dev/null
cmake --build build -j "$jobs"
ctest --test-dir build --output-on-failure -j "$jobs"

if [[ "$skip_san" == 1 ]]; then
  echo "tier-1 OK (sanitizer stages skipped)"
  exit 0
fi

for san in address undefined; do
  echo "== tier-1: ml+tuner tests under ${san} sanitizer =="
  dir="build-${san}"
  cmake -B "$dir" -S . -DCEAL_SANITIZE="$san" >/dev/null
  cmake --build "$dir" -j "$jobs" --target unit_tests system_tests
  "./$dir/tests/unit_tests" --gtest_brief=1
  "./$dir/tests/system_tests" --gtest_brief=1
done

echo "tier-1 OK (plain + asan + ubsan)"
