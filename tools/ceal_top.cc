// ceal_top — live operational dashboard for a running ceal_serve
// daemon. Polls the server.metrics op over the daemon's Unix socket (or
// watches a --metrics-export snapshot file) and renders the session
// table, counters, and latency histograms; or emits one flat CSV sample
// for scripting.
//
//   ceal_top --socket /tmp/ceal.sock            # live dashboard, 2s poll
//   ceal_top --file /tmp/ceal.metrics.json      # watch an export file
//   ceal_top --socket S --once --csv            # one scriptable sample
//   ceal_top --once --csv --deterministic ...   # byte-stable subset only
//   ceal_top --check-prom /tmp/ceal.metrics.json.prom
//
// --deterministic drops every wall-clock field (the "spans" section,
// timing.* histograms, the export-timestamp "timing" object), leaving a
// subset that is byte-identical across daemon thread counts for the
// same request stream — the tier-1 gate diffs it at --threads 1 vs 4.
#include <cerrno>
#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/json.h"
#include "core/table.h"
#include "serve/metrics.h"
#include "serve/protocol.h"
#include "tools/args.h"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#define CEAL_TOP_HAS_SOCKETS 1
#endif

namespace {

using ceal::json::Value;

constexpr const char* kUsage =
    "(--socket PATH | --file FILE | --check-prom FILE)\n"
    "\n"
    "source:\n"
    "  [--socket PATH]          poll a live daemon's server.metrics op\n"
    "  [--file FILE]            read a --metrics-export JSON snapshot\n"
    "\n"
    "output:\n"
    "  [--interval S]           poll period for the dashboard (default: 2)\n"
    "  [--once]                 print one sample and exit\n"
    "  [--csv]                  flat key,value CSV instead of the dashboard\n"
    "  [--deterministic]        drop wall-clock fields (spans, timing.*\n"
    "                           histograms, export timestamp) so output is\n"
    "                           byte-stable across daemon thread counts\n"
    "\n"
    "validation:\n"
    "  [--check-prom FILE]      strictly validate a Prometheus exposition\n"
    "                           file and exit 0 (2 on any violation)";

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

// One round-trip request over the daemon's Unix socket.
std::string query_socket(const std::string& path) {
#ifdef CEAL_TOP_HAS_SOCKETS
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    throw std::runtime_error(std::string("socket() failed: ") +
                             std::strerror(errno));
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    ::close(fd);
    throw std::runtime_error("socket path too long (" +
                             std::to_string(path.size()) + " > " +
                             std::to_string(sizeof(addr.sun_path) - 1) +
                             " bytes): " + path);
  }
  path.copy(addr.sun_path, path.size());
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    // The single most common failure: the daemon is not there. One
    // actionable line — the path and the precise errno ("No such file
    // or directory" = never started / wrong path, "Connection refused"
    // = stale socket file left by a dead daemon.)
    const int err = errno;
    ::close(fd);
    throw std::runtime_error("cannot connect to " + path + ": " +
                             std::strerror(err) +
                             " (is ceal_serve running with --socket " +
                             path + "?)");
  }
  const std::string request = "{\"op\":\"server.metrics\"}\n";
  std::size_t written = 0;
  while (written < request.size()) {
    const ssize_t n =
        ::write(fd, request.data() + written, request.size() - written);
    if (n <= 0) {
      const int err = errno;
      ::close(fd);
      throw std::runtime_error("write to " + path + " failed: " +
                               (n < 0 ? std::strerror(err)
                                      : "connection closed"));
    }
    written += static_cast<std::size_t>(n);
  }
  ::shutdown(fd, SHUT_WR);
  std::string response;
  char chunk[4096];
  for (;;) {
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n < 0) {
      const int err = errno;
      ::close(fd);
      throw std::runtime_error("read from " + path + " failed: " +
                               std::strerror(err));
    }
    if (n == 0) break;
    response.append(chunk, static_cast<std::size_t>(n));
    if (response.find('\n') != std::string::npos) break;
  }
  ::close(fd);
  const std::size_t eol = response.find('\n');
  if (eol == std::string::npos) {
    throw std::runtime_error(
        "no response from " + path + ": connection closed after " +
        std::to_string(response.size()) +
        " byte(s) without a complete line (daemon draining?)");
  }
  return response.substr(0, eol);
#else
  (void)path;
  throw std::runtime_error("unix sockets are not supported on this platform");
#endif
}

Value fetch(const std::string& socket_path, const std::string& file_path) {
  const std::string text = socket_path.empty()
                               ? read_file(file_path)
                               : query_socket(socket_path);
  Value doc = Value::parse(text);
  if (const Value* ok = doc.find("ok")) {
    if (ok->kind() == Value::Kind::kBool && !ok->as_bool()) {
      const Value* error = doc.find("error");
      throw std::runtime_error("server error: " +
                               (error ? error->as_string() : text));
    }
  }
  return doc;
}

// Strips every wall-clock member: the spans section, timing.*
// histograms, and the export-timestamp object. Mirrors the contract in
// docs/OBSERVABILITY.md — everything left is a deterministic function
// of the request stream.
void strip_wall_clock(Value& metrics) {
  Value stripped = Value::object();
  for (const auto& [key, value] : metrics.members()) {
    if (key == "spans" || key == "timing") continue;
    if (key == "histograms") {
      Value kept = Value::object();
      for (const auto& [name, hist] : value.members()) {
        if (name.starts_with("timing.")) continue;
        kept.set(name, hist);
      }
      stripped.set(key, std::move(kept));
      continue;
    }
    stripped.set(key, value);
  }
  metrics = std::move(stripped);
}

// Flattens the metrics document into dotted key/value CSV rows, in
// document order (deterministic: the document's member order is).
void flatten(const Value& v, const std::string& prefix,
             ceal::Table& out) {
  switch (v.kind()) {
    case Value::Kind::kObject:
      for (const auto& [key, member] : v.members())
        flatten(member, prefix.empty() ? key : prefix + "." + key, out);
      break;
    case Value::Kind::kArray:
      for (std::size_t i = 0; i < v.size(); ++i)
        flatten(v.at(i), prefix + "." + std::to_string(i), out);
      break;
    case Value::Kind::kNumber:
      out.add_row({prefix, v.number_lexeme()});
      break;
    case Value::Kind::kString:
      out.add_row({prefix, v.as_string()});
      break;
    case Value::Kind::kBool:
      out.add_row({prefix, v.as_bool() ? "true" : "false"});
      break;
    case Value::Kind::kNull:
      out.add_row({prefix, "null"});
      break;
  }
}

void print_csv(const Value& metrics, std::ostream& os) {
  ceal::Table table({"metric", "value"});
  flatten(metrics, "", table);
  table.to_csv(os);
}

std::string field_text(const Value& session, const char* key) {
  const Value* v = session.find(key);
  if (v == nullptr) return "-";
  if (v->kind() == Value::Kind::kNumber) return v->number_lexeme();
  if (v->kind() == Value::Kind::kString) return v->as_string();
  return "-";
}

void print_dashboard(const Value& metrics, bool clear_screen,
                     std::ostream& os) {
  if (clear_screen) os << "\x1b[2J\x1b[H";

  if (const Value* server = metrics.find("server")) {
    os << "ceal_serve:";
    for (const char* key : {"sessions", "requests", "errors"}) {
      if (const Value* v = server->find(key))
        os << "  " << key << "=" << v->number_lexeme();
    }
    os << "\n";
    if (const Value* ops = server->find("ops")) {
      os << "ops:";
      for (const auto& [op, tallies] : ops->members()) {
        os << "  " << op << "=" << tallies.at("requests").number_lexeme();
        const Value& errors = tallies.at("errors");
        if (errors.number_lexeme() != "0")
          os << "(!" << errors.number_lexeme() << ")";
      }
      os << "\n";
    }
    os << "\n";
  }

  if (const Value* sessions = metrics.find("sessions")) {
    ceal::Table table({"id", "state", "algo", "wf", "steps", "age", "used",
                       "left", "best", "model", "lag", "rec", "drop"});
    for (std::size_t i = 0; i < sessions->size(); ++i) {
      const Value& s = sessions->at(i);
      table.add_row({field_text(s, "id"), field_text(s, "state"),
                     field_text(s, "algorithm"), field_text(s, "workflow"),
                     field_text(s, "steps"),
                     field_text(s, "session_age_steps"),
                     field_text(s, "budget_used"),
                     field_text(s, "budget_remaining"),
                     field_text(s, "best_value"), field_text(s, "model"),
                     field_text(s, "checkpoint_replay_pending"),
                     field_text(s, "recorder_events"),
                     field_text(s, "recorder_dropped")});
    }
    os << "sessions (" << sessions->size() << "):\n" << table << "\n";
  }

  if (const Value* histograms = metrics.find("histograms")) {
    if (histograms->members().size() > 0) {
      ceal::Table table({"histogram", "count", "sum", "p50", "p90", "p99"});
      for (const auto& [name, h] : histograms->members()) {
        table.add_row({name, h.at("count").number_lexeme(),
                       h.at("sum").number_lexeme(),
                       h.at("p50").number_lexeme(),
                       h.at("p90").number_lexeme(),
                       h.at("p99").number_lexeme()});
      }
      os << "histograms:\n" << table << "\n";
    }
  }

  if (const Value* counters = metrics.find("counters")) {
    if (counters->members().size() > 0) {
      ceal::Table table({"counter", "value"});
      for (const auto& [name, v] : counters->members())
        table.add_row({name, v.number_lexeme()});
      os << "counters:\n" << table;
    }
  }
  os.flush();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ceal;
  tools::Args args(argc, argv, kUsage);

  const auto socket_path = args.option("socket", "");
  const auto file_path = args.option("file", "");
  const auto check_prom = args.option("check-prom", "");
  const double interval = args.real("interval", 2.0);
  const bool once = args.flag("once");
  const bool csv = args.flag("csv");
  const bool deterministic = args.flag("deterministic");
  args.finish();

  try {
    if (!check_prom.empty()) {
      const std::size_t samples =
          serve::validate_prometheus(read_file(check_prom));
      std::cout << check_prom << ": ok (" << samples << " samples)\n";
      return 0;
    }
    if (socket_path.empty() == file_path.empty()) {
      std::cerr << "exactly one of --socket or --file is required\n";
      return 2;
    }
    if (interval <= 0.0) {
      std::cerr << "--interval must be > 0\n";
      return 2;
    }
    for (;;) {
      Value metrics = fetch(socket_path, file_path);
      if (deterministic) strip_wall_clock(metrics);
      if (csv)
        print_csv(metrics, std::cout);
      else
        print_dashboard(metrics, /*clear_screen=*/!once, std::cout);
      if (once) break;
      std::this_thread::sleep_for(std::chrono::duration<double>(interval));
    }
  } catch (const std::exception& e) {
    std::cerr << "ceal_top: " << e.what() << "\n";
    return 2;
  }
  return 0;
}
