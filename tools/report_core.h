// Metric extraction and baseline comparison for ceal_report.
//
// Header-only so the unit tests (tests/tools/test_report.cc) exercise the
// aggregation and regression logic without shelling out to the tool.
//
// Two input kinds feed one flat metric namespace:
//  * trace JSONL files (`ceal_tune --trace`): the `telemetry.summary`
//    events' counters, gauges, span counts, and span totals become
//    "trace.<name>" metrics, summed across all ingested files; derived
//    metrics (switch iteration, failure rate, fit/predict throughput)
//    are computed from those sums. Histogram stats ("hist.<name>.<stat>"
//    fields, core/telemetry.h summary_event) aggregate by stat kind:
//    .count/.sum add, .max/.p50/.p90/.p99 take the max across files
//    (a quantile of merged runs is bounded by the worst per-run
//    quantile's bucket, so the max is the honest loud-side aggregate),
//    .min takes the min.
//  * google-benchmark JSON files (`BENCH_*.json` from bench/): each
//    benchmark's cpu/real time becomes "bench.<name>.cpu_time" /
//    ".real_time", and every custom numeric counter (state.counters,
//    items_per_second, ...) becomes "bench.<name>.<counter>",
//    preferring the `_median` aggregate when repetitions were run.
//    The "ceal" metadata header annotate_bench_json() adds contributes
//    "bench.ceal.peak_rss_mb" (max across files — RSS is a high-water
//    mark, so the max is the honest aggregate).
//
// compare() evaluates current vs baseline per metric with a relative
// tolerance; whether a delta is a regression depends on the metric's
// direction (times and failure rates are lower-better, throughputs
// higher-better). Metrics present on only one side are reported but
// never regressions — runs may legitimately differ in coverage.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "core/json.h"

namespace ceal::tools::report {

/// Flat metric namespace: name -> value.
using MetricMap = std::map<std::string, double>;

/// Direction of goodness, by naming convention: throughputs
/// (trace "*_per_s", google-benchmark "*_per_second"), recall
/// fractions (bench_pool_scale's recall_at_64), and per-iteration
/// success counts (trace.hist.iteration.batch_ok.*) improve upward,
/// everything else (counts, seconds, bytes, rates) is treated as
/// lower-better. Pure-count metrics rarely regress meaningfully, but
/// treating growth as suspect errs on the loud side.
inline bool higher_is_better(std::string_view name) {
  return name.ends_with("_per_s") || name.ends_with("_per_second") ||
         name.find("recall") != std::string_view::npos ||
         name.find("batch_ok") != std::string_view::npos;
}

/// Baselines smaller than this are noise; comparing against them would
/// turn rounding jitter into huge relative deltas.
inline constexpr double kMinBaseline = 1e-12;

/// Accumulates metrics over any number of trace files, then finish()
/// adds the derived metrics on top of the raw sums.
class TraceAccumulator {
 public:
  /// Ingests one trace's events (tools/trace_io.h reader output).
  void add(const std::vector<json::Value>& events) {
    for (const json::Value& event : events) {
      const json::Value* name = event.find("event");
      if (name == nullptr) continue;
      if (name->as_string() == "telemetry.summary") {
        add_summary(event);
      } else if (name->as_string() == "ceal.switch") {
        if (const json::Value* iter = event.find("iteration")) {
          switch_iteration_sum_ += iter->as_double();
          ++switch_count_;
        }
      }
    }
  }

  /// Raw sums plus derived metrics.
  MetricMap finish() const {
    MetricMap out = sums_;
    if (switch_count_ > 0) {
      out["trace.ceal.switch_iteration.mean"] =
          switch_iteration_sum_ / static_cast<double>(switch_count_);
    }
    const double requests = value_or(out, "trace.measure.requests", 0.0);
    if (requests > 0.0) {
      out["trace.measure.failure_rate"] =
          (value_or(out, "trace.measure.failed", 0.0) +
           value_or(out, "trace.measure.censored", 0.0)) /
          requests;
    }
    add_throughput(out, "trace.gbt.fit_rounds_per_s", "trace.gbt.rounds",
                   "trace.gbt.round.total_s");
    add_throughput(out, "trace.gbt.predict_rows_per_s",
                   "trace.gbt.predict.rows", "trace.gbt.predict.total_s");
    add_throughput(out, "trace.surrogate.fits_per_s", "trace.surrogate.fits",
                   "trace.surrogate.fit.total_s");
    return out;
  }

  bool empty() const { return sums_.empty() && switch_count_ == 0; }

 private:
  // Histogram summary fields carry order statistics, which must not be
  // summed across files the way counters are.
  enum class Aggregate { kSum, kMax, kMin };

  static Aggregate aggregate_kind(std::string_view key) {
    if (key.find("hist.") == std::string_view::npos) return Aggregate::kSum;
    if (key.ends_with(".max") || key.ends_with(".p50") ||
        key.ends_with(".p90") || key.ends_with(".p99"))
      return Aggregate::kMax;
    if (key.ends_with(".min")) return Aggregate::kMin;
    return Aggregate::kSum;  // .count / .sum accumulate
  }

  void accumulate(const std::string& key, double value) {
    const std::string metric = "trace." + key;
    switch (aggregate_kind(key)) {
      case Aggregate::kSum:
        sums_[metric] += value;
        break;
      case Aggregate::kMax: {
        const auto it = sums_.find(metric);
        sums_[metric] = it == sums_.end() ? value
                                          : std::max(it->second, value);
        break;
      }
      case Aggregate::kMin: {
        const auto it = sums_.find(metric);
        sums_[metric] = it == sums_.end() ? value
                                          : std::min(it->second, value);
        break;
      }
    }
  }

  void add_summary(const json::Value& summary) {
    for (const auto& [key, value] : summary.members()) {
      if (key == "event" || key == "seq") continue;
      if (key == "timing") {
        for (const auto& [tkey, tvalue] : value.members()) {
          accumulate(tkey, tvalue.as_double());
        }
        continue;
      }
      if (value.kind() == json::Value::Kind::kNumber) {
        accumulate(key, value.as_double());
      }
    }
  }

  static double value_or(const MetricMap& m, const std::string& key,
                         double fallback) {
    const auto it = m.find(key);
    return it == m.end() ? fallback : it->second;
  }

  static void add_throughput(MetricMap& out, const std::string& name,
                             const std::string& count_key,
                             const std::string& total_key) {
    const double count = value_or(out, count_key, 0.0);
    const double total = value_or(out, total_key, 0.0);
    if (count > 0.0 && total > kMinBaseline) out[name] = count / total;
  }

  MetricMap sums_;
  double switch_iteration_sum_ = 0.0;
  std::size_t switch_count_ = 0;
};

/// A parsed JSON document is a google-benchmark output file when it has
/// the "benchmarks" array.
inline bool is_bench_json(const json::Value& root) {
  return root.is_object() && root.contains("benchmarks");
}

/// Bookkeeping keys google-benchmark writes on every entry; numeric
/// members outside this set are the benchmark's own counters
/// (state.counters, items_per_second from SetItemsProcessed, ...).
inline bool is_standard_bench_key(std::string_view key) {
  return key == "repetitions" || key == "repetition_index" ||
         key == "threads" || key == "iterations" || key == "family_index" ||
         key == "per_family_instance_index";
}

/// Extracts "bench.<name>.cpu_time" / ".real_time" plus one
/// "bench.<name>.<counter>" metric per custom numeric counter. With
/// --benchmark_repetitions the file carries per-repetition entries plus
/// aggregates; only the `median` aggregate is used then (repetition
/// noise is exactly what the median is there to suppress). The
/// top-level "ceal" header (bench/common.h annotate_bench_json)
/// contributes "bench.ceal.peak_rss_mb" as a max across ingested files.
inline void add_bench_metrics(const json::Value& root, MetricMap& out) {
  const json::Value& benchmarks = root.at("benchmarks");
  bool has_median = false;
  for (std::size_t i = 0; i < benchmarks.size(); ++i) {
    const json::Value* agg = benchmarks.at(i).find("aggregate_name");
    if (agg != nullptr && agg->as_string() == "median") has_median = true;
  }
  for (std::size_t i = 0; i < benchmarks.size(); ++i) {
    const json::Value& b = benchmarks.at(i);
    const json::Value* agg = b.find("aggregate_name");
    if (has_median) {
      if (agg == nullptr || agg->as_string() != "median") continue;
    } else if (agg != nullptr) {
      continue;  // unexpected aggregate without a median: skip
    }
    const json::Value* name = b.find(has_median ? "run_name" : "name");
    if (name == nullptr) name = b.find("name");
    if (name == nullptr) continue;
    for (const auto& [key, value] : b.members()) {
      if (value.kind() != json::Value::Kind::kNumber) continue;
      if (is_standard_bench_key(key)) continue;
      out["bench." + name->as_string() + "." + key] = value.as_double();
    }
  }
  if (const json::Value* meta = root.find("ceal")) {
    if (const json::Value* rss = meta->find("peak_rss_mb")) {
      if (rss->kind() == json::Value::Kind::kNumber &&
          rss->as_double() > 0.0) {
        double& slot = out["bench.ceal.peak_rss_mb"];
        slot = std::max(slot, rss->as_double());
      }
    }
  }
}

/// One metric's baseline-vs-current verdict.
struct Comparison {
  std::string name;
  bool in_baseline = false;
  bool in_current = false;
  double baseline = 0.0;
  double current = 0.0;
  /// (current - baseline) / |baseline|; 0 when not comparable.
  double rel_delta = 0.0;
  /// Beyond tolerance in the bad direction for this metric.
  bool regression = false;
  /// Beyond tolerance in the good direction.
  bool improvement = false;
};

/// Compares every metric seen on either side. A metric regresses when
/// its relative delta exceeds `tolerance` in the bad direction and the
/// baseline is large enough to compare against (>= kMinBaseline).
inline std::vector<Comparison> compare(const MetricMap& baseline,
                                       const MetricMap& current,
                                       double tolerance) {
  std::vector<Comparison> out;
  auto bi = baseline.begin();
  auto ci = current.begin();
  while (bi != baseline.end() || ci != current.end()) {
    Comparison c;
    const bool take_b =
        ci == current.end() ||
        (bi != baseline.end() && bi->first <= ci->first);
    const bool take_c =
        bi == baseline.end() ||
        (ci != current.end() && ci->first <= bi->first);
    if (take_b) {
      c.name = bi->first;
      c.in_baseline = true;
      c.baseline = bi->second;
      ++bi;
    }
    if (take_c) {
      c.name = ci->first;
      c.in_current = true;
      c.current = ci->second;
      ++ci;
    }
    if (c.in_baseline && c.in_current &&
        std::abs(c.baseline) >= kMinBaseline) {
      c.rel_delta = (c.current - c.baseline) / std::abs(c.baseline);
      const double bad = higher_is_better(c.name) ? -c.rel_delta
                                                  : c.rel_delta;
      c.regression = bad > tolerance;
      c.improvement = bad < -tolerance;
    }
    out.push_back(std::move(c));
  }
  return out;
}

}  // namespace ceal::tools::report
