// Shared lookups for the ceal_* command-line tools.
#pragma once

#include <iostream>
#include <memory>
#include <sstream>
#include <string>

#include "sim/workloads.h"
#include "tuner/active_learning.h"
#include "tuner/alph.h"
#include "tuner/bayes_opt.h"
#include "tuner/ceal.h"
#include "tuner/geist.h"
#include "tuner/objective.h"
#include "tuner/random_search.h"

namespace ceal::tools {

inline sim::Workload workload_by_name(const std::string& name) {
  if (name == "LV" || name == "lv") return sim::make_lv();
  if (name == "HS" || name == "hs") return sim::make_hs();
  if (name == "GP" || name == "gp") return sim::make_gp();
  std::cerr << "unknown workflow '" << name << "' (expected LV, HS, GP)\n";
  std::exit(2);
}

inline tuner::Objective objective_by_name(const std::string& name) {
  if (name == "exec" || name == "exec_time") {
    return tuner::Objective::kExecTime;
  }
  if (name == "comp" || name == "computer_time") {
    return tuner::Objective::kComputerTime;
  }
  std::cerr << "unknown objective '" << name << "' (expected exec, comp)\n";
  std::exit(2);
}

inline std::unique_ptr<tuner::AutoTuner> algorithm_by_name(
    const std::string& name) {
  if (name == "CEAL") return std::make_unique<tuner::Ceal>();
  if (name == "AL") return std::make_unique<tuner::ActiveLearning>();
  if (name == "RS") return std::make_unique<tuner::RandomSearch>();
  if (name == "GEIST") return std::make_unique<tuner::Geist>();
  if (name == "ALpH") return std::make_unique<tuner::Alph>();
  if (name == "BO") return std::make_unique<tuner::BayesOpt>();
  if (name == "BO-CEAL") {
    tuner::BayesOptParams params;
    params.bootstrap_with_low_fidelity = true;
    return std::make_unique<tuner::BayesOpt>(params);
  }
  std::cerr << "unknown algorithm '" << name
            << "' (expected CEAL, AL, RS, GEIST, ALpH, BO, BO-CEAL)\n";
  std::exit(2);
}

/// Parses "288,18,2,288,18,2" into a Configuration.
inline config::Configuration parse_config(const std::string& text) {
  config::Configuration c;
  std::string token;
  std::istringstream is(text);
  while (std::getline(is, token, ',')) {
    c.push_back(static_cast<int>(std::strtol(token.c_str(), nullptr, 10)));
  }
  return c;
}

}  // namespace ceal::tools
