// Strict JSONL trace reading shared by ceal_trace and ceal_report.
//
// A trace file is one JSON object per line (`ceal_tune --trace`). The
// readers here turn every defect — unreadable file, truncated/malformed
// line, non-object line, or a file with no events at all — into a
// TraceReadError whose message is a single "<path>:<line>: why" line, so
// the tools can print it and exit nonzero instead of crashing on an
// unhandled parse throw.
#pragma once

#include <fstream>
#include <istream>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/json.h"

namespace ceal::tools {

/// Raised on any malformed trace input; what() is one printable line.
class TraceReadError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Reads JSONL events from `in`, reporting defects against `name`.
/// Blank lines are tolerated (a trailing newline is not an event); every
/// non-blank line must parse to a JSON object. A stream with zero events
/// is an error — an empty trace always means something went wrong
/// upstream, and silently reporting "nothing" hides it.
inline std::vector<json::Value> read_trace_stream(std::istream& in,
                                                  const std::string& name) {
  std::vector<json::Value> events;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    json::Value event;
    try {
      event = json::Value::parse(line);
    } catch (const std::exception& e) {
      throw TraceReadError(name + ":" + std::to_string(lineno) +
                           ": malformed trace line: " + e.what());
    }
    if (!event.is_object()) {
      throw TraceReadError(name + ":" + std::to_string(lineno) +
                           ": trace line is not a JSON object");
    }
    events.push_back(std::move(event));
  }
  if (events.empty()) {
    throw TraceReadError(name + ": empty trace (no events)");
  }
  return events;
}

/// Opens `path` and reads it with read_trace_stream.
inline std::vector<json::Value> read_trace_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw TraceReadError("cannot open trace file '" + path + "'");
  }
  return read_trace_stream(in, path);
}

}  // namespace ceal::tools
