// ceal_tune — run one auto-tuning session (or an averaged evaluation)
// against a benchmark workflow.
//
//   ceal_tune --workflow LV --objective comp --budget 25 --history
//   ceal_tune --workflow HS --objective exec --budget 50
//             --algorithm AL --replications 40
//   ceal_tune --workflow LV --objective exec --budget 50
//             --load-pool pool.csv --save-model surrogate.gbt
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <memory>
#include <optional>

#include "core/atomic_file.h"
#include "core/error.h"
#include "core/flight_recorder.h"
#include "core/journal.h"
#include "core/table.h"
#include "core/telemetry.h"
#include "measure/backend.h"
#include "measure/subprocess.h"
#include "ml/gbt.h"
#include "ml/serialize.h"
#include "tools/args.h"
#include "tools/common.h"
#include "tuner/checkpoint.h"
#include "tuner/evaluation.h"
#include "tuner/measured_pool.h"
#include "tuner/pool_io.h"
#include "tuner/result_io.h"

namespace {

constexpr const char* kUsage =
    "--workflow LV|HS|GP --objective exec|comp --budget N\n"
    "\n"
    "tuning:\n"
    "  [--algorithm CEAL|AL|RS|GEIST|ALpH|BO|BO-CEAL]  (default CEAL)\n"
    "  [--history]              treat component samples as free history\n"
    "  [--replications N]       N>1: evaluate instead of one session\n"
    "  [--threads N]            run replications on an N-thread pool\n"
    "  [--pool-size N]          default 2000\n"
    "  [--component-samples N]  default 500\n"
    "  [--pool-seed S] [--seed S]\n"
    "  [--load-pool FILE] [--save-pool FILE]  pool CSV persistence\n"
    "  [--save-model FILE]      persist a surrogate fitted on the session\n"
    "  [--explain]              print the recommendation's cost breakdown\n"
    "\n"
    "fault model:\n"
    "  [--fault-rate P]         per-attempt failure probability (default 0)\n"
    "  [--outlier-rate P]       heavy-tail outlier probability (default 0)\n"
    "  [--deadline S]           censor runs longer than S seconds\n"
    "  [--max-attempts N]       measurement retries per config (default 1)\n"
    "\n"
    "measurement plane (docs/RELIABILITY.md):\n"
    "  [--measure-backend inproc|subprocess]  where runs execute\n"
    "                           (default inproc; results are identical)\n"
    "  [--workers N]            subprocess worker count (default 4)\n"
    "  [--worker-bin PATH]      worker binary (default: sibling\n"
    "                           ceal_worker)\n"
    "  [--hedge-after-s S]      straggler hedging threshold (default\n"
    "                           0.25)\n"
    "  [--hang-after-s S]       worker hang deadline (default 10)\n"
    "  [--degrade-after K]      consecutive faults before falling back\n"
    "                           in-process (default 3)\n"
    "\n"
    "checkpoint:\n"
    "  [--checkpoint DIR]       journal the session to DIR/journal.cealj\n"
    "  [--resume]               resume the journaled session in DIR\n"
    "  [--save-result FILE]     write an exact (hex-float) result CSV\n"
    "\n"
    "observability:\n"
    "  [--trace FILE]           stream JSONL trace events to FILE\n"
    "  [--flight-recorder N]    keep the last N trace events in memory and\n"
    "                           dump them on SIGSEGV/SIGABRT/SIGBUS\n"
    "  [--flight-dump FILE]     crash dump path (default:\n"
    "                           ceal_tune.flight.jsonl)\n"
    "  [--metrics-summary]      print the telemetry counter/span table\n"
    "  [--quiet]                suppress the session report\n"
    "  [--verbose]              echo trace events to stderr\n"
    "\n"
    "performance (docs/PERFORMANCE.md):\n"
    "  [--gbt-backend exact|hist|quantized]  surrogate trainer\n"
    "                           (default exact, the pinned-results path)\n"
    "  [--gbt-bins N]           histogram/quantized bins (default 256)\n"
    "  [--compiled-predictor]   flatten trained trees for batch inference\n"
    "  [--pool-chunk N]         stream pool scoring in N-row blocks\n"
    "                           (bounded memory; default 0 = cache)";

ceal::ml::TreeMethod backend_by_name(const std::string& name) {
  if (name == "exact") return ceal::ml::TreeMethod::kExact;
  if (name == "hist") return ceal::ml::TreeMethod::kHist;
  if (name == "quantized") return ceal::ml::TreeMethod::kQuantized;
  std::cerr << "unknown --gbt-backend: " << name
            << " (expected exact|hist|quantized)\n";
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ceal;
  tools::Args args(argc, argv, kUsage);

  const auto wl_name = args.required("workflow");
  const auto objective = tools::objective_by_name(args.required("objective"));
  const auto budget = static_cast<std::size_t>(args.integer("budget", 0));
  const auto algo = tools::algorithm_by_name(args.option("algorithm", "CEAL"));
  const bool history = args.flag("history");
  const auto replications =
      static_cast<std::size_t>(args.integer("replications", 1));
  const auto eval_threads =
      static_cast<std::size_t>(args.integer("threads", 0));
  const auto pool_size =
      static_cast<std::size_t>(args.integer("pool-size", 2000));
  const auto comp_samples =
      static_cast<std::size_t>(args.integer("component-samples", 500));
  const auto pool_seed =
      static_cast<std::uint64_t>(args.integer("pool-seed", 1));
  const auto seed = static_cast<std::uint64_t>(args.integer("seed", 42));
  const auto load_pool = args.option("load-pool", "");
  const auto save_pool = args.option("save-pool", "");
  const auto save_model = args.option("save-model", "");
  const bool explain = args.flag("explain");
  const double fault_rate = args.real("fault-rate", 0.0);
  const double outlier_rate = args.real("outlier-rate", 0.0);
  const double deadline = args.real("deadline", 0.0);
  const auto max_attempts =
      static_cast<std::size_t>(args.integer("max-attempts", 1));
  const auto checkpoint_dir = args.option("checkpoint", "");
  const bool resume = args.flag("resume");
  const auto save_result = args.option("save-result", "");
  const auto trace_path = args.option("trace", "");
  const auto flight_capacity =
      static_cast<std::size_t>(args.integer("flight-recorder", 0));
  const auto flight_dump = args.option("flight-dump",
                                       "ceal_tune.flight.jsonl");
  const bool metrics_summary = args.flag("metrics-summary");
  const bool quiet = args.flag("quiet");
  const bool verbose = args.flag("verbose");
  const auto gbt_backend = args.option("gbt-backend", "exact");
  const auto gbt_bins = static_cast<std::size_t>(args.integer("gbt-bins", 256));
  const bool compiled_predictor = args.flag("compiled-predictor");
  const auto pool_chunk =
      static_cast<std::size_t>(args.integer("pool-chunk", 0));
  // Empty means "not given": the default path keeps problem.measure
  // null (the paper's inline collector); an explicit `inproc` installs
  // the InProcessBackend to exercise the backend seam.
  const auto measure_backend = args.option("measure-backend", "");
  const auto measure_workers =
      static_cast<std::size_t>(args.integer("workers", 4));
  const auto worker_bin = args.option("worker-bin", "");
  const double hedge_after_s = args.real("hedge-after-s", 0.25);
  const double hang_after_s = args.real("hang-after-s", 10.0);
  const auto degrade_after =
      static_cast<std::size_t>(args.integer("degrade-after", 3));
  args.finish();

  if (budget == 0) {
    std::cerr << "--budget must be >= 1\n" << args.usage_text();
    return 2;
  }
  if (resume && checkpoint_dir.empty()) {
    std::cerr << "--resume requires --checkpoint DIR\n";
    return 2;
  }
  if (!checkpoint_dir.empty() && replications > 1) {
    std::cerr << "--checkpoint covers a single session; it cannot be "
                 "combined with --replications\n";
    return 2;
  }

  sim::Workload wl = tools::workload_by_name(wl_name);
  const auto& space = wl.workflow.joint_space();

  const tuner::MeasuredPool pool = [&] {
    try {
      return load_pool.empty()
                 ? tuner::measure_pool(wl.workflow, pool_size, pool_seed)
                 : tuner::load_pool_csv(space, load_pool);
    } catch (const PreconditionError& e) {
      std::cerr << "ceal_tune: " << e.what() << "\n";
      std::exit(2);
    }
  }();
  if (!save_pool.empty()) {
    tuner::save_pool_csv(pool, space, save_pool);
    std::cout << "pool saved to " << save_pool << " (" << pool.size()
              << " configurations)\n";
  }
  const auto comps =
      tuner::measure_components(wl.workflow, comp_samples, pool_seed + 1);

  tuner::TuningProblem problem{&wl, objective, &pool, &comps, history, {}};
  problem.measurement.faults.fail_prob = fault_rate;
  problem.measurement.faults.outlier_prob = outlier_rate;
  problem.measurement.faults.deadline_s = deadline;
  problem.measurement.max_attempts = std::max<std::size_t>(1, max_attempts);
  problem.measurement.faults.validate();

  // Performance knobs (all default to the pinned reproduction path: exact
  // trainer, tree-walk predictor, cached pool featurization).
  if (gbt_bins == 0) {
    std::cerr << "--gbt-bins must be >= 1\n";
    return 2;
  }
  problem.surrogate_gbt.tree.method = backend_by_name(gbt_backend);
  problem.surrogate_gbt.tree.max_bins = gbt_bins;
  problem.surrogate_gbt.compile_predictor = compiled_predictor;
  problem.pool_chunk_rows = pool_chunk;

  // Observability: any of --trace / --verbose / --metrics-summary attaches
  // a Telemetry to the session. Tracing never writes to stdout, so seeded
  // runs print byte-identical reports with tracing on or off (the tier-1
  // gate checks this).
  std::unique_ptr<telemetry::JsonlTraceSink> file_sink;
  std::unique_ptr<telemetry::JsonlTraceSink> stderr_sink;
  if (!trace_path.empty()) {
    file_sink = std::make_unique<telemetry::JsonlTraceSink>(trace_path);
  }
  if (verbose) {
    stderr_sink = std::make_unique<telemetry::JsonlTraceSink>(std::cerr);
  }
  std::vector<telemetry::TraceSink*> fanout;
  if (file_sink) fanout.push_back(file_sink.get());
  if (stderr_sink) fanout.push_back(stderr_sink.get());
  std::optional<telemetry::MultiTraceSink> multi_sink;
  telemetry::TraceSink* sink = nullptr;
  if (fanout.size() == 1) {
    sink = fanout.front();
  } else if (fanout.size() > 1) {
    multi_sink.emplace(fanout);
    sink = &*multi_sink;
  }
  std::optional<telemetry::Telemetry> telemetry_store;
  std::optional<telemetry::FlightRecorder> flight_recorder;
  if (sink != nullptr || metrics_summary || flight_capacity > 0) {
    telemetry_store.emplace(sink);
    // Causal span ids derive from the session seed: two runs with the
    // same seed produce byte-identical traces once timing is stripped.
    telemetry_store->seed_trace(seed);
    if (flight_capacity > 0) {
      flight_recorder.emplace(flight_capacity);
      telemetry_store->set_flight_recorder(&*flight_recorder);
      telemetry::register_crash_recorder(&*flight_recorder, "session");
      telemetry::install_crash_dump_handler(flight_dump);
    }
    problem.telemetry = &*telemetry_store;
  }
  const auto finish_telemetry = [&] {
    if (!telemetry_store) return;
    telemetry_store->emit(telemetry_store->summary_event());
    if (telemetry_store->sink() != nullptr) telemetry_store->sink()->flush();
    if (metrics_summary) std::cout << telemetry_store->summary_table();
  };

  // Measurement backend (docs/RELIABILITY.md "Distributed measurement
  // plane"). Backends are dispatch strategies, never data sources, so
  // every choice here produces byte-identical sessions; subprocess adds
  // multi-process fan-out with hedging and graceful degradation.
  std::unique_ptr<measure::MeasureBackend> backend_store;
  if (measure_backend == "subprocess") {
    if (replications > 1) {
      std::cerr << "--measure-backend subprocess covers a single session; "
                   "it cannot be combined with --replications\n";
      return 2;
    }
    measure::SubprocessOptions mopts;
    mopts.workers = std::max<std::size_t>(1, measure_workers);
    mopts.worker_bin = worker_bin;
    mopts.hedge_after_s = hedge_after_s;
    mopts.hang_after_s = hang_after_s;
    mopts.degrade_after = std::max<std::size_t>(1, degrade_after);
    mopts.seed = seed;
    mopts.worker_args = {"--workflow", wl_name};
    if (load_pool.empty()) {
      mopts.worker_args.insert(
          mopts.worker_args.end(),
          {"--pool-size", std::to_string(pool_size), "--pool-seed",
           std::to_string(pool_seed)});
    } else {
      mopts.worker_args.insert(mopts.worker_args.end(),
                               {"--pool-file", load_pool});
    }
    backend_store = std::make_unique<measure::SubprocessBackend>(
        pool, std::move(mopts),
        telemetry_store ? &*telemetry_store : nullptr);
  } else if (measure_backend == "inproc") {
    backend_store = std::make_unique<measure::InProcessBackend>(pool);
  } else if (!measure_backend.empty()) {
    std::cerr << "unknown --measure-backend: " << measure_backend
              << " (expected inproc|subprocess)\n";
    return 2;
  }
  problem.measure = backend_store.get();

  if (replications > 1) {
    // Replications run on a pool when --threads is given; trace output is
    // byte-identical to the serial path (per-replication child telemetry,
    // merged in replication order — see tuner::evaluate).
    std::optional<ceal::ThreadPool> eval_pool;
    if (eval_threads > 0) eval_pool.emplace(eval_threads);
    const auto s =
        tuner::evaluate(problem, *algo, budget, replications, seed,
                        eval_pool ? &*eval_pool : nullptr);
    Table table({"metric", "value"});
    table.add_row({"algorithm", s.algorithm});
    table.add_row({"normalized performance", Table::num(s.mean_norm_perf)});
    table.add_row({"median normalized", Table::num(s.median_norm_perf)});
    table.add_row({"top-1 recall", Table::num(s.mean_recall[0], 1) + "%"});
    table.add_row({"top-3 recall", Table::num(s.mean_recall[2], 1) + "%"});
    table.add_row({"MdAPE top-2%", Table::num(s.mean_mdape_top2, 1) + "%"});
    table.add_row({"MdAPE all", Table::num(s.mean_mdape_all, 1) + "%"});
    table.add_row({"mean collection cost (s)",
                   Table::num(s.mean_cost_exec_s, 1)});
    table.add_row({"mean collection cost (ch)",
                   Table::num(s.mean_cost_comp_ch, 2)});
    table.add_row({"least number of uses",
                   std::isinf(s.least_uses) ? "inf"
                                            : Table::num(s.least_uses, 0)});
    table.add_row({"beats expert",
                   Table::num(100.0 * s.frac_beat_expert, 0) + "%"});
    if (!quiet) std::cout << table;
    finish_telemetry();
    return 0;
  }

  // Checkpointing: the session journal lives inside the checkpoint
  // directory. Resume re-executes the tuner from the same seed with
  // journaled measurements served for free, so the report on stdout is
  // byte-identical to an uninterrupted run (the kill-resume gate in
  // tools/run_tier1.sh diffs it); resume bookkeeping goes to stderr.
  std::optional<tuner::CheckpointSession> checkpoint;
  if (!checkpoint_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(checkpoint_dir, ec);
    const std::string journal_path =
        (std::filesystem::path(checkpoint_dir) / "journal.cealj").string();
    try {
      checkpoint.emplace(journal_path,
                         resume ? tuner::CheckpointSession::Mode::kResume
                                : tuner::CheckpointSession::Mode::kStart);
    } catch (const std::exception& e) {
      std::cerr << "ceal_tune: " << e.what() << "\n";
      return 2;
    }
  }

  Rng rng(seed);
  tuner::TuneResult result;
  try {
    result = algo->tune(problem, budget, rng,
                        checkpoint ? &*checkpoint : nullptr);
  } catch (const tuner::CheckpointError& e) {
    std::cerr << "ceal_tune: " << e.what() << "\n";
    return 2;
  } catch (const JournalError& e) {
    std::cerr << "ceal_tune: " << e.what() << "\n";
    return 2;
  }
  if (checkpoint && resume) {
    std::cerr << "resumed session: " << checkpoint->replayed_runs()
              << " measurements replayed from the journal, "
              << checkpoint->appended_records() << " records appended\n";
  }
  const auto& best = pool.configs[result.best_predicted_index];
  const auto perf = wl.workflow.expected(best);

  if (!quiet) {
    std::cout << algo->name() << " on " << wl.workflow.name() << " ("
              << tuner::objective_name(objective) << ", budget " << budget
              << (history ? ", with histories" : "") << ")\n";
    std::cout << "  measured " << result.measured_indices.size()
              << " workflow configurations, " << result.runs_used
              << " budget units used\n";
    if (problem.measurement.faults.enabled()) {
      std::size_t censored = 0;
      for (const auto st : result.measured_statuses) {
        if (st == sim::RunStatus::kCensored) ++censored;
      }
      std::cout << "  faults: " << result.failed_runs << " failed, "
                << censored << " censored attempts (fault-rate " << fault_rate
                << ", max-attempts " << problem.measurement.max_attempts
                << ")\n";
    }
    std::cout << "  recommendation: " << config::to_string(best) << "\n";
    std::cout << "  expected: " << Table::num(perf.exec_s, 2) << " s on "
              << perf.nodes << " nodes = " << Table::num(perf.comp_ch, 3)
              << " core-hours per run\n";
    const auto& expert = objective == tuner::Objective::kExecTime
                             ? wl.expert_exec
                             : wl.expert_comp;
    std::cout << "  expert config: "
              << Table::num(tuner::metric(wl.workflow.expected(expert),
                                          objective),
                            3)
              << (objective == tuner::Objective::kExecTime ? " s"
                                                           : " core-hours")
              << "\n";
  }

  if (explain) {
    const auto bd = wl.workflow.explain(best);
    Table table({"component", "procs", "nodes", "compute (s)",
                 "staging (s)", "transfer (s)", "period (s)", ""});
    for (const auto& c : bd.components) {
      table.add_row({c.name, std::to_string(c.procs),
                     std::to_string(c.nodes),
                     Table::num(c.step_compute_s, 4),
                     Table::num(c.staging_s, 4),
                     Table::num(c.transfer_exposed_s, 4),
                     Table::num(c.period_s, 4),
                     c.bottleneck ? "<- bottleneck" : ""});
    }
    std::cout << "\n" << table;
    std::cout << "contention x" << Table::num(bd.contention_factor, 3)
              << ", synchronised step " << Table::num(bd.step_s, 4)
              << " s, startup " << Table::num(bd.startup_s, 1) << " s\n";
  }

  if (!save_model.empty()) {
    // Fit a log-time GBT on everything the session measured and persist
    // it (predictions are exp() of the model output).
    ml::Dataset data(space.dimension());
    for (const std::size_t i : result.measured_indices) {
      data.add(space.features(pool.configs[i]),
               std::log(pool.measured(objective)[i]));
    }
    ml::GradientBoostedTrees model(problem.surrogate_gbt);
    Rng model_rng(seed + 1);
    model.fit(data, model_rng);
    ml::save_gbt_file(model, save_model, space.dimension());
    std::cout << "surrogate (log-time GBT) saved to " << save_model << "\n";
  }

  if (!save_result.empty()) {
    // Exact result artifact (tuner/result_io.h): two sessions produced
    // identical TuneResults iff these files are byte-identical.
    tuner::save_result_csv(save_result, result, algo->name(),
                           wl.workflow.name(),
                           tuner::objective_name(objective), budget, seed);
  }
  finish_telemetry();
  return 0;
}
