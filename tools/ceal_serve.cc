// ceal_serve — tuning-as-a-service: a long-lived daemon multiplexing
// many concurrent tuning sessions over newline-delimited JSON
// (docs/SERVING.md has the protocol reference).
//
//   ceal_serve                              # serve requests on stdio
//   ceal_serve --socket /tmp/ceal.sock      # serve a Unix socket
//   ceal_serve --checkpoint DIR             # journal every session
//   ceal_serve --checkpoint DIR --resume    # rebuild sessions after a kill
//   ceal_serve --metrics-export FILE        # periodic metrics snapshots
//
// SIGTERM/SIGINT drain: in --socket mode the handlers set a stop flag
// (installed without SA_RESTART so a blocked accept returns EINTR), the
// accept loop exits after the in-flight connection, every trace sink is
// flushed, and a final metrics snapshot is written.
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <ctime>
#include <iostream>
#include <mutex>
#include <optional>
#include <thread>

#include "core/atomic_file.h"
#include "core/flight_recorder.h"
#include "core/telemetry.h"
#include "serve/metrics.h"
#include "serve/server.h"
#include "tools/args.h"
#include "tools/chrome_trace.h"
#include "tools/trace_io.h"

namespace {

constexpr const char* kUsage =
    "[--socket PATH] [--checkpoint DIR [--resume]]\n"
    "\n"
    "server:\n"
    "  [--socket PATH]          listen on a Unix stream socket instead of\n"
    "                           serving requests from stdin to stdout\n"
    "  [--threads N]            session worker threads (default: all cores)\n"
    "\n"
    "durability:\n"
    "  [--checkpoint DIR]       journal every session to DIR/<id>.cealj\n"
    "                           with a DIR/<id>.session.json manifest\n"
    "  [--resume]               rebuild the sessions journaled in DIR; a\n"
    "                           resumed session replays its journal while\n"
    "                           the client steps it (bitwise-identical\n"
    "                           results after a SIGKILL)\n"
    "\n"
    "measurement plane (docs/RELIABILITY.md):\n"
    "  [--measure-backend inproc|subprocess]  where session measurements\n"
    "                           execute (default: inline pool reads;\n"
    "                           results are identical under any backend)\n"
    "  [--measure-workers N]    subprocess workers per session (default 4)\n"
    "  [--worker-bin PATH]      worker binary (default: sibling\n"
    "                           ceal_worker)\n"
    "  [--hedge-after-s S]      straggler hedging threshold (default 0.25)\n"
    "  [--hang-after-s S]       worker hang deadline (default 10)\n"
    "  [--degrade-after K]      consecutive faults before a session falls\n"
    "                           back in-process (default 3)\n"
    "\n"
    "observability:\n"
    "  [--trace FILE]           stream server JSONL trace events to FILE\n"
    "  [--trace-dir DIR]        per-session traces in DIR/<id>.trace.jsonl\n"
    "                           (fsynced per step slice; Chrome trace\n"
    "                           exports DIR/<id>.chrome.json on drain)\n"
    "  [--flight-recorder N]    keep the last N trace events per session\n"
    "                           (and for the server) in an in-memory ring;\n"
    "                           dumped by server.dump, on drain, and by the\n"
    "                           SIGSEGV/SIGABRT/SIGBUS crash handler\n"
    "  [--flight-dump FILE]     crash/drain dump path (default:\n"
    "                           ceal_serve.flight.jsonl)\n"
    "  [--metrics-export FILE]  atomically write the server.metrics\n"
    "                           snapshot to FILE (JSON) and FILE.prom\n"
    "                           (Prometheus text) every interval and once\n"
    "                           at shutdown\n"
    "  [--metrics-interval S]   export period in seconds (default: 5)\n"
    "  [--metrics-summary]      print the telemetry table to stderr on exit";

volatile std::sig_atomic_t g_stop = 0;

void handle_stop_signal(int) { g_stop = 1; }

// Install without SA_RESTART so a blocked accept(2) sees EINTR and the
// serve loop can observe the stop flag.
void install_stop_handlers() {
  struct sigaction action{};
  action.sa_handler = handle_stop_signal;
  sigemptyset(&action.sa_mask);
  action.sa_flags = 0;
  sigaction(SIGTERM, &action, nullptr);
  sigaction(SIGINT, &action, nullptr);
}

// Writes one snapshot pair: FILE (JSON, wall timestamp under the
// top-level "timing" object so determinism filters strip it) and
// FILE.prom (Prometheus text exposition). Both via atomic rename, so a
// concurrent reader never sees a torn file.
void export_snapshot(const ceal::serve::ServerCore& core,
                     const std::string& path) {
  namespace json = ceal::json;
  json::Value snapshot = core.metrics_json();
  json::Value timing = json::Value::object();
  timing.set("exported_unix_s",
             json::Value::number(static_cast<double>(std::time(nullptr))));
  snapshot.set("timing", std::move(timing));
  {
    ceal::AtomicFile file(path);
    file.stream() << snapshot.dump() << '\n';
    file.commit();
  }
  {
    ceal::AtomicFile file(path + ".prom");
    file.stream() << ceal::serve::to_prometheus(snapshot);
    file.commit();
  }
}

// Periodic exporter thread: wakes every `interval_s`, or immediately on
// shutdown (condition variable, not a sleep, so exit is prompt).
class MetricsExporter {
 public:
  MetricsExporter(const ceal::serve::ServerCore& core, std::string path,
                  double interval_s)
      : core_(core), path_(std::move(path)), interval_s_(interval_s) {
    thread_ = std::thread([this] { run(); });
  }

  ~MetricsExporter() { stop(); }

  /// Stops the thread and writes one final snapshot.
  void stop() {
    {
      std::lock_guard lock(mutex_);
      if (done_) return;
      done_ = true;
    }
    cv_.notify_all();
    thread_.join();
    try {
      export_snapshot(core_, path_);
    } catch (const std::exception& e) {
      std::cerr << "metrics export failed: " << e.what() << "\n";
    }
  }

 private:
  void run() {
    const auto period = std::chrono::duration<double>(interval_s_);
    std::unique_lock lock(mutex_);
    while (!done_) {
      if (cv_.wait_for(lock, period, [this] { return done_; })) break;
      lock.unlock();
      try {
        export_snapshot(core_, path_);
      } catch (const std::exception& e) {
        std::cerr << "metrics export failed: " << e.what() << "\n";
      }
      lock.lock();
    }
  }

  const ceal::serve::ServerCore& core_;
  std::string path_;
  double interval_s_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool done_ = false;
  std::thread thread_;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace ceal;
  tools::Args args(argc, argv, kUsage);

  const auto socket_path = args.option("socket", "");
  const auto threads = static_cast<std::size_t>(args.integer("threads", 0));
  const auto checkpoint_dir = args.option("checkpoint", "");
  const bool resume = args.flag("resume");
  const auto trace_path = args.option("trace", "");
  const auto trace_dir = args.option("trace-dir", "");
  const auto flight_capacity =
      static_cast<std::size_t>(args.integer("flight-recorder", 0));
  const auto flight_dump = args.option("flight-dump",
                                       "ceal_serve.flight.jsonl");
  const auto metrics_export = args.option("metrics-export", "");
  const double metrics_interval = args.real("metrics-interval", 5.0);
  const bool metrics_summary = args.flag("metrics-summary");
  const auto measure_backend = args.option("measure-backend", "");
  const auto measure_workers =
      static_cast<std::size_t>(args.integer("measure-workers", 4));
  const auto worker_bin = args.option("worker-bin", "");
  const double hedge_after_s = args.real("hedge-after-s", 0.25);
  const double hang_after_s = args.real("hang-after-s", 10.0);
  const auto degrade_after =
      static_cast<std::size_t>(args.integer("degrade-after", 3));
  args.finish();

  if (!measure_backend.empty() && measure_backend != "inproc" &&
      measure_backend != "subprocess") {
    std::cerr << "unknown --measure-backend: " << measure_backend
              << " (expected inproc|subprocess)\n";
    return 2;
  }

  if (resume && checkpoint_dir.empty()) {
    std::cerr << "--resume requires --checkpoint DIR\n";
    return 2;
  }
  if (metrics_interval <= 0.0) {
    std::cerr << "--metrics-interval must be > 0\n";
    return 2;
  }

  // The protocol owns stdout; every diagnostic goes to stderr.
  std::optional<telemetry::JsonlTraceSink> sink;
  if (!trace_path.empty()) sink.emplace(trace_path);
  telemetry::Telemetry telemetry(sink ? &*sink : nullptr);

  // Flight recorder for the server's own telemetry, plus the crash
  // handler that dumps every registered ring (this one and each
  // session's) on SIGSEGV/SIGABRT/SIGBUS.
  std::optional<telemetry::FlightRecorder> server_recorder;
  if (flight_capacity > 0) {
    server_recorder.emplace(flight_capacity);
    telemetry.set_flight_recorder(&*server_recorder);
    telemetry::register_crash_recorder(&*server_recorder, "server");
    telemetry::install_crash_dump_handler(flight_dump);
  }

  serve::ServerOptions options;
  options.checkpoint_dir = checkpoint_dir;
  options.trace_dir = trace_dir;
  // Per-slice flushes reach the disk, so a crash dump's ring tail can
  // be matched against the on-disk trace (tier-1 crash-dump gate).
  options.trace_fsync = !trace_dir.empty();
  options.flight_recorder = flight_capacity;
  options.telemetry = &telemetry;
  options.measure.backend = measure_backend;
  options.measure.workers = measure_workers;
  options.measure.worker_bin = worker_bin;
  options.measure.hedge_after_s = hedge_after_s;
  options.measure.hang_after_s = hang_after_s;
  options.measure.degrade_after = degrade_after;

  try {
    serve::ServerCore core(options);
    if (resume) {
      const std::size_t resumed = core.resume_sessions();
      std::cerr << "resumed " << resumed << " session(s) from "
                << checkpoint_dir << "\n";
    }
    std::optional<MetricsExporter> exporter;
    if (!metrics_export.empty())
      exporter.emplace(core, metrics_export, metrics_interval);
    if (!socket_path.empty()) {
      install_stop_handlers();
      std::cerr << "listening on " << socket_path << "\n";
      serve::serve_unix_socket(core, socket_path, threads,
                               [] { return g_stop != 0; });
      if (g_stop != 0) std::cerr << "stop signal received, draining\n";
    } else {
      serve::serve_stream(core, std::cin, std::cout, threads);
    }
    // Graceful drain: flush per-session trace sinks, then (via the
    // exporter destructor below) write the final metrics snapshot.
    core.flush_sinks();
    if (exporter) exporter->stop();
    // Chrome trace export of every per-session trace, self-validated,
    // written atomically beside the JSONL.
    if (!trace_dir.empty()) {
      for (const std::string& id : core.session_ids()) {
        const std::string jsonl = trace_dir + "/" + id + ".trace.jsonl";
        try {
          const auto events = tools::read_trace_file(jsonl);
          json::Value doc = tools::export_chrome_trace(events);
          const std::size_t spans = tools::validate_chrome_trace(doc);
          AtomicFile file(trace_dir + "/" + id + ".chrome.json");
          file.stream() << doc.dump() << '\n';
          file.commit();
          std::cerr << "exported " << spans << " span(s) to " << trace_dir
                    << "/" << id << ".chrome.json\n";
        } catch (const std::exception& e) {
          std::cerr << "chrome export skipped for session " << id << ": "
                    << e.what() << "\n";
        }
      }
    }
    // Drain-time flight-recorder dump — same shape as a crash dump, but
    // through AtomicFile since we are not in a signal handler.
    if (flight_capacity > 0) {
      AtomicFile file(flight_dump);
      file.stream() << telemetry::dump_registered_recorders();
      file.commit();
      std::cerr << "flight recorder dumped to " << flight_dump << "\n";
    }
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n";
    return 2;
  }

  telemetry.emit(telemetry.summary_event());
  if (sink) sink->flush();
  if (metrics_summary) std::cerr << telemetry.summary_table();
  return 0;
}
