// ceal_serve — tuning-as-a-service: a long-lived daemon multiplexing
// many concurrent tuning sessions over newline-delimited JSON
// (docs/SERVING.md has the protocol reference).
//
//   ceal_serve                              # serve requests on stdio
//   ceal_serve --socket /tmp/ceal.sock      # serve a Unix socket
//   ceal_serve --checkpoint DIR             # journal every session
//   ceal_serve --checkpoint DIR --resume    # rebuild sessions after a kill
#include <iostream>
#include <optional>

#include "core/telemetry.h"
#include "serve/server.h"
#include "tools/args.h"

namespace {

constexpr const char* kUsage =
    "[--socket PATH] [--checkpoint DIR [--resume]]\n"
    "\n"
    "server:\n"
    "  [--socket PATH]          listen on a Unix stream socket instead of\n"
    "                           serving requests from stdin to stdout\n"
    "  [--threads N]            session worker threads (default: all cores)\n"
    "\n"
    "durability:\n"
    "  [--checkpoint DIR]       journal every session to DIR/<id>.cealj\n"
    "                           with a DIR/<id>.session.json manifest\n"
    "  [--resume]               rebuild the sessions journaled in DIR; a\n"
    "                           resumed session replays its journal while\n"
    "                           the client steps it (bitwise-identical\n"
    "                           results after a SIGKILL)\n"
    "\n"
    "observability:\n"
    "  [--trace FILE]           stream server JSONL trace events to FILE\n"
    "  [--trace-dir DIR]        per-session traces in DIR/<id>.trace.jsonl\n"
    "  [--metrics-summary]      print the telemetry table to stderr on exit";

}  // namespace

int main(int argc, char** argv) {
  using namespace ceal;
  tools::Args args(argc, argv, kUsage);

  const auto socket_path = args.option("socket", "");
  const auto threads = static_cast<std::size_t>(args.integer("threads", 0));
  const auto checkpoint_dir = args.option("checkpoint", "");
  const bool resume = args.flag("resume");
  const auto trace_path = args.option("trace", "");
  const auto trace_dir = args.option("trace-dir", "");
  const bool metrics_summary = args.flag("metrics-summary");
  args.finish();

  if (resume && checkpoint_dir.empty()) {
    std::cerr << "--resume requires --checkpoint DIR\n";
    return 2;
  }

  // The protocol owns stdout; every diagnostic goes to stderr.
  std::optional<telemetry::JsonlTraceSink> sink;
  if (!trace_path.empty()) sink.emplace(trace_path);
  telemetry::Telemetry telemetry(sink ? &*sink : nullptr);

  serve::ServerOptions options;
  options.checkpoint_dir = checkpoint_dir;
  options.trace_dir = trace_dir;
  options.telemetry = &telemetry;

  try {
    serve::ServerCore core(options);
    if (resume) {
      const std::size_t resumed = core.resume_sessions();
      std::cerr << "resumed " << resumed << " session(s) from "
                << checkpoint_dir << "\n";
    }
    if (!socket_path.empty()) {
      std::cerr << "listening on " << socket_path << "\n";
      serve::serve_unix_socket(core, socket_path, threads);
    } else {
      serve::serve_stream(core, std::cin, std::cout, threads);
    }
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n";
    return 2;
  }

  telemetry.emit(telemetry.summary_event());
  if (sink) sink->flush();
  if (metrics_summary) std::cerr << telemetry.summary_table();
  return 0;
}
