// ceal_report — aggregate trace/bench artifacts and gate on regressions.
//
//   ceal_report --current DIR                      per-run summary
//   ceal_report --current DIR --baseline DIR       compare, exit 1 on
//                                                  regression
//   ceal_report --current a.jsonl --baseline b.jsonl --tolerance 0.25
//
// Inputs may be files or directories; directories are scanned (non-
// recursively) for *.jsonl traces (`ceal_tune --trace`) and *.json
// google-benchmark outputs (`BENCH_*.json` from bench/). Trace metrics
// are summed across files; see tools/report_core.h for the metric
// namespace and docs/PERFORMANCE.md for the regression-gate workflow.
//
// Exit codes: 0 ok, 1 regression beyond tolerance, 2 bad input
// (unreadable, malformed, or empty — always with a one-line error).
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/json.h"
#include "core/table.h"
#include "tools/args.h"
#include "tools/report_core.h"
#include "tools/trace_io.h"

namespace {

namespace fs = std::filesystem;
using ceal::Table;
using ceal::json::Value;
namespace report = ceal::tools::report;

constexpr const char* kUsage =
    "--current PATH [--baseline PATH] [--tolerance R] [--csv]\n"
    "  --current PATH    trace .jsonl / bench .json file, or a directory\n"
    "                    of them (scanned non-recursively)\n"
    "  [--baseline PATH] same; compare and exit 1 on regression\n"
    "  [--tolerance R]   relative tolerance for regressions (default 0.1)\n"
    "  [--csv]           emit tables as CSV";

/// All metrics harvested from one --current / --baseline argument.
struct Inputs {
  report::MetricMap metrics;
  std::size_t trace_files = 0;
  std::size_t bench_files = 0;
};

/// Raised with a printable one-line message on any input defect.
class InputError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

Value parse_json_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw InputError("cannot open file '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  try {
    return Value::parse(buffer.str());
  } catch (const std::exception& e) {
    throw InputError(path + ": malformed JSON: " + std::string(e.what()));
  }
}

void ingest_file(const fs::path& path, Inputs& inputs,
                 report::TraceAccumulator& traces) {
  const std::string ext = path.extension().string();
  if (ext == ".jsonl") {
    traces.add(ceal::tools::read_trace_file(path.string()));
    ++inputs.trace_files;
    return;
  }
  if (ext == ".json") {
    const Value root = parse_json_file(path.string());
    if (!report::is_bench_json(root)) {
      throw InputError(path.string() +
                       ": not a google-benchmark JSON file "
                       "(no \"benchmarks\" array)");
    }
    report::add_bench_metrics(root, inputs.metrics);
    ++inputs.bench_files;
    return;
  }
  throw InputError(path.string() +
                   ": unsupported input (expect .jsonl trace or .json "
                   "bench output)");
}

Inputs collect(const std::string& arg) {
  Inputs inputs;
  report::TraceAccumulator traces;
  if (fs::is_directory(arg)) {
    std::vector<fs::path> files;
    for (const auto& entry : fs::directory_iterator(arg)) {
      if (!entry.is_regular_file()) continue;
      const std::string ext = entry.path().extension().string();
      if (ext == ".jsonl" || ext == ".json") files.push_back(entry.path());
    }
    std::sort(files.begin(), files.end());
    if (files.empty()) {
      throw InputError("no .jsonl/.json inputs in directory '" + arg + "'");
    }
    for (const fs::path& f : files) ingest_file(f, inputs, traces);
  } else if (fs::exists(arg)) {
    ingest_file(arg, inputs, traces);
  } else {
    throw InputError("no such file or directory: '" + arg + "'");
  }
  if (!traces.empty()) {
    for (const auto& [name, value] : traces.finish()) {
      inputs.metrics[name] += value;
    }
  }
  return inputs;
}

void print_table(const Table& table, bool csv) {
  if (csv) {
    table.to_csv(std::cout);
  } else {
    std::cout << table;
  }
}

void print_summary(const Inputs& inputs, bool csv) {
  Table table({"metric", "value"});
  for (const auto& [name, value] : inputs.metrics) {
    table.add_row({name, Table::num(value, 6)});
  }
  print_table(table, csv);
}

std::string percent(double rel) {
  return Table::num(100.0 * rel, 2) + "%";
}

}  // namespace

int main(int argc, char** argv) {
  ceal::tools::Args args(argc, argv, kUsage);
  const auto current_arg = args.required("current");
  const auto baseline_arg = args.option("baseline", "");
  const double tolerance = args.real("tolerance", 0.1);
  const bool csv = args.flag("csv");
  args.finish();

  if (tolerance < 0.0) {
    std::cerr << "--tolerance must be >= 0\n";
    return 2;
  }

  Inputs current, baseline;
  try {
    current = collect(current_arg);
    if (!baseline_arg.empty()) baseline = collect(baseline_arg);
  } catch (const std::exception& e) {
    std::cerr << "ceal_report: " << e.what() << "\n";
    return 2;
  }

  std::cout << (csv ? "# " : "") << "current: " << current.trace_files
            << " trace file(s), " << current.bench_files
            << " bench file(s), " << current.metrics.size()
            << " metric(s)\n";
  print_summary(current, csv);

  if (baseline_arg.empty()) return 0;

  const auto comparisons =
      report::compare(baseline.metrics, current.metrics, tolerance);
  Table table({"metric", "baseline", "current", "delta", "status"});
  std::size_t regressions = 0, improvements = 0;
  for (const auto& c : comparisons) {
    std::string status = "ok";
    if (!c.in_baseline) {
      status = "new";
    } else if (!c.in_current) {
      status = "gone";
    } else if (c.regression) {
      status = "REGRESSION";
      ++regressions;
    } else if (c.improvement) {
      status = "improved";
      ++improvements;
    }
    table.add_row({c.name,
                   c.in_baseline ? Table::num(c.baseline, 6) : "",
                   c.in_current ? Table::num(c.current, 6) : "",
                   c.in_baseline && c.in_current ? percent(c.rel_delta) : "",
                   status});
  }
  print_table(table, csv);
  std::cout << (csv ? "# " : "") << "regressions: " << regressions
            << ", improvements: " << improvements << " (tolerance "
            << percent(tolerance) << ")\n";
  return regressions > 0 ? 1 : 0;
}
