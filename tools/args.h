// Tiny declarative command-line parser shared by the ceal_* tools.
// Flags are "--name value" or boolean "--name"; unknown flags abort with
// the usage text.
#pragma once

#include <cstdlib>
#include <iostream>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

namespace ceal::tools {

class Args {
 public:
  Args(int argc, char** argv, std::string usage)
      : program_(argv[0]), usage_(std::move(usage)) {
    for (int i = 1; i < argc; ++i) tokens_.emplace_back(argv[i]);
  }

  /// Declares a boolean flag; returns true when present.
  bool flag(const std::string& name) {
    declared_.insert(name);
    for (std::size_t i = 0; i < tokens_.size(); ++i) {
      if (tokens_[i] == "--" + name) {
        consumed_.insert(i);
        return true;
      }
    }
    return false;
  }

  /// Declares a valued option; returns its value or `fallback`.
  std::string option(const std::string& name, std::string fallback) {
    return value_of(name).value_or(std::move(fallback));
  }

  /// Declares a required valued option; exits with usage when missing.
  std::string required(const std::string& name) {
    auto v = value_of(name);
    if (!v) {
      std::cerr << "missing required --" << name << "\n" << usage_text();
      std::exit(2);
    }
    return *v;
  }

  long integer(const std::string& name, long fallback) {
    const auto v = value_of(name);
    if (!v) return fallback;
    char* end = nullptr;
    const long parsed = std::strtol(v->c_str(), &end, 10);
    if (end == v->c_str() || *end != '\0') {
      std::cerr << "--" << name << " expects an integer, got '" << *v
                << "'\n";
      std::exit(2);
    }
    return parsed;
  }

  double real(const std::string& name, double fallback) {
    const auto v = value_of(name);
    if (!v) return fallback;
    char* end = nullptr;
    const double parsed = std::strtod(v->c_str(), &end);
    if (end == v->c_str() || *end != '\0') {
      std::cerr << "--" << name << " expects a number, got '" << *v << "'\n";
      std::exit(2);
    }
    return parsed;
  }

  /// Call after all declarations: rejects unknown/unconsumed flags and
  /// handles --help.
  void finish() {
    for (std::size_t i = 0; i < tokens_.size(); ++i) {
      if (tokens_[i] == "--help" || tokens_[i] == "-h") {
        std::cout << usage_text();
        std::exit(0);
      }
      if (!consumed_.count(i)) {
        std::cerr << "unknown argument '" << tokens_[i] << "'\n"
                  << usage_text();
        std::exit(2);
      }
    }
  }

  std::string usage_text() const {
    return "usage: " + program_ + " " + usage_ + "\n";
  }

 private:
  std::optional<std::string> value_of(const std::string& name) {
    declared_.insert(name);
    for (std::size_t i = 0; i + 1 < tokens_.size(); ++i) {
      if (tokens_[i] == "--" + name) {
        consumed_.insert(i);
        consumed_.insert(i + 1);
        return tokens_[i + 1];
      }
    }
    return std::nullopt;
  }

  std::string program_;
  std::string usage_;
  std::vector<std::string> tokens_;
  std::set<std::size_t> consumed_;
  std::set<std::string> declared_;
};

}  // namespace ceal::tools
