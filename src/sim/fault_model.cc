#include "sim/fault_model.h"

#include <cmath>

#include "core/error.h"

namespace ceal::sim {

const char* run_status_name(RunStatus status) {
  switch (status) {
    case RunStatus::kOk:
      return "ok";
    case RunStatus::kFailed:
      return "failed";
    case RunStatus::kCensored:
      return "censored";
  }
  return "unknown";
}

void FaultModel::validate() const {
  CEAL_EXPECT_MSG(fail_prob >= 0.0 && fail_prob < 1.0,
                  "fail_prob must be in [0, 1)");
  CEAL_EXPECT_MSG(deadline_s >= 0.0, "deadline_s must be >= 0");
  CEAL_EXPECT_MSG(outlier_prob >= 0.0 && outlier_prob < 1.0,
                  "outlier_prob must be in [0, 1)");
  CEAL_EXPECT_MSG(outlier_tail > 0.0, "outlier_tail must be > 0");
}

FaultOutcome apply_faults(const FaultModel& model, double exec_s,
                          ceal::Rng& rng) {
  CEAL_EXPECT(exec_s > 0.0);
  FaultOutcome out;
  // Fixed draw order — failure, deadline, outlier — so a seed replays the
  // same fault trace regardless of which channels are configured off.
  if (model.fail_prob > 0.0 && rng.bernoulli(model.fail_prob)) {
    out.status = RunStatus::kFailed;
    out.elapsed_s = rng.uniform01() * exec_s;  // fault strikes mid-run
    return out;
  }
  if (model.deadline_s > 0.0 && exec_s > model.deadline_s) {
    out.status = RunStatus::kCensored;
    out.elapsed_s = model.deadline_s;  // killed at the walltime limit
    return out;
  }
  out.elapsed_s = exec_s;
  if (model.outlier_prob > 0.0 && rng.bernoulli(model.outlier_prob)) {
    // Pareto(alpha) magnitude via inverse-CDF: (1-u)^(-1/alpha) >= 1.
    const double u = rng.uniform01();
    out.value_factor = std::pow(1.0 - u, -1.0 / model.outlier_tail);
  }
  return out;
}

FaultyRun run_with_faults(const InSituWorkflow& workflow,
                          const config::Configuration& joint,
                          const FaultModel& model, ceal::Rng& rng) {
  FaultyRun out;
  out.measurement = workflow.run(joint, rng);
  out.elapsed_s = out.measurement.exec_s;
  if (!model.enabled()) return out;  // no extra draws on the clean path
  model.validate();
  const FaultOutcome fo = apply_faults(model, out.measurement.exec_s, rng);
  out.status = fo.status;
  out.elapsed_s = fo.elapsed_s;
  if (fo.status == RunStatus::kOk) {
    out.measurement.exec_s *= fo.value_factor;
    out.measurement.comp_ch *= fo.value_factor;
    for (double& t : out.measurement.component_exec_s) t *= fo.value_factor;
  } else {
    out.measurement = Measurement{};
  }
  return out;
}

}  // namespace ceal::sim
