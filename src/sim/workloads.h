// The paper's three benchmark workflows (§7.1) with the Table-1
// parameter spaces and expert-recommended configurations:
//
//   LV — LAMMPS molecular dynamics -> Voro++ tessellation/analysis
//   HS — Heat Transfer simulation  -> Stage Write output staging
//   GP — Gray-Scott reaction-diffusion -> PDF calculator -> P-Plot,
//                                      -> G-Plot
//
// Ground-truth constants are calibrated so the best/expert magnitudes
// echo Table 2 (documented in EXPERIMENTS.md); tuning results depend on
// the shape of the surfaces, not the absolute values.
#pragma once

#include <string>
#include <vector>

#include "sim/workflow.h"

namespace ceal::sim {

struct Workload {
  InSituWorkflow workflow;
  /// Expert-recommended joint configurations (Table 2), one per
  /// optimisation objective.
  config::Configuration expert_exec;
  config::Configuration expert_comp;
};

/// The paper's cluster (600 Broadwell nodes, 36 cores, 32-node
/// allocations).
MachineSpec paper_machine();

Workload make_lv();
Workload make_hs();
Workload make_gp();

/// All three, in paper order {LV, HS, GP}.
std::vector<Workload> make_all_workloads();

}  // namespace ceal::sim
