#include "sim/scaling.h"

#include <algorithm>
#include <cmath>

#include "core/error.h"

namespace ceal::sim {

ScalingModel::ScalingModel(ScalingParams params) : params_(params) {
  CEAL_EXPECT(params_.serial_s >= 0.0);
  CEAL_EXPECT(params_.work_core_s >= 0.0);
  CEAL_EXPECT(params_.thread_frac >= 0.0 && params_.thread_frac <= 1.0);
  CEAL_EXPECT(params_.p_ref > 0.0);
}

double ScalingModel::step_time(int procs, int ppn, int tpp, double aspect,
                               const MachineSpec& machine) const {
  CEAL_EXPECT(procs >= 1 && ppn >= 1 && tpp >= 1);
  CEAL_EXPECT(aspect >= 1.0);

  const double p = static_cast<double>(procs);
  const double workers = 1.0 + (static_cast<double>(tpp) - 1.0) *
                                   params_.thread_frac;

  // Node occupancy: hardware threads requested over physical cores.
  const double occupancy =
      static_cast<double>(ppn) * static_cast<double>(tpp) /
      static_cast<double>(machine.cores_per_node);
  // Bandwidth contention saturates sharply as the node fills (cubic in
  // occupancy, a NUMA-like knee near full occupancy).
  const double occ = std::min(1.0, occupancy);
  const double mem_factor = 1.0 + params_.mem_slope * occ * occ * occ;
  const double oversub = std::max(1.0, occupancy);

  const double compute =
      params_.work_core_s / (p * workers) * mem_factor * oversub;
  const double comm = params_.comm_log_s * std::log2(p + 1.0) +
                      params_.comm_lin_s * (p / params_.p_ref);
  const double halo = params_.halo_s / std::sqrt(p) * aspect;

  return params_.serial_s + compute + comm + halo;
}

}  // namespace ceal::sim
