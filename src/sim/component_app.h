// Ground-truth performance model of one component application.
//
// A ComponentApp owns its configuration space (Table 1), knows which
// parameter plays which role (process count, processes per node, threads,
// output count, staging-buffer size), and exposes the analytic timing
// pieces the workflow simulator composes: per-step compute time, produced
// data volume, staging overhead, and solo-run time.
//
// The solo-run model (used to train the tuner's component models) writes
// and reads the persistent filesystem, while the coupled in-situ model in
// workflow.cc streams over the interconnect with synchronisation — the
// systematic difference between them is exactly the low-fidelity gap the
// paper's bootstrapping method is designed around (§3).
#pragma once

#include <string>

#include "config/config_space.h"
#include "sim/machine.h"
#include "sim/scaling.h"

namespace ceal::sim {

/// Positions of the role-carrying parameters inside the app's
/// configuration; -1 when the app does not have that knob.
struct ParamRoles {
  int procs = -1;      ///< "# processes"
  int procs_x = -1;    ///< decomposed process grid (procs = x * y)
  int procs_y = -1;
  int ppn = -1;        ///< "# processes per node"
  int tpp = -1;        ///< "# threads per process"
  int outputs = -1;    ///< "# outputs"
  int buffer_mb = -1;  ///< staging buffer size (MB)
};

/// Data-movement behaviour of the app.
struct IoProfile {
  /// Data produced per pipeline step at the *smallest* `outputs` setting
  /// (scaled linearly in outputs when that knob exists), in GB.
  double base_output_gb = 0.0;
  /// Input volume the app consumes per step in a solo benchmark run, GB.
  /// In a coupled run the actual producer volume replaces this, which is
  /// one of the interactions component models cannot see.
  double default_input_gb = 0.0;
  /// Per-flush staging latency (seconds); flushes = volume / buffer.
  double flush_latency_s = 2e-3;
  /// Stall cost per MB of staging buffer (memory pressure / burstiness).
  double buffer_stall_s_per_mb = 1.5e-3;
};

class ComponentApp {
 public:
  ComponentApp(std::string name, config::ConfigSpace space, ParamRoles roles,
               ScalingParams scaling, IoProfile io, double startup_s);

  const std::string& name() const { return name_; }
  const config::ConfigSpace& space() const { return space_; }
  bool configurable() const { return space_.raw_size() > 1; }
  double startup_s() const { return startup_s_; }
  const IoProfile& io() const { return io_; }

  /// Total MPI processes of configuration `c`.
  int procs(const config::Configuration& c) const;
  int ppn(const config::Configuration& c) const;
  int tpp(const config::Configuration& c) const;
  /// Nodes occupied: ceil(procs / ppn).
  int nodes(const config::Configuration& c) const;
  /// Decomposition skew max(px,py)/min(px,py); 1 when not decomposed.
  double aspect(const config::Configuration& c) const;

  /// GB streamed to downstream consumers per pipeline step.
  double output_gb_per_step(const config::Configuration& c) const;

  /// Per-step compute time when consuming `input_gb` of upstream data.
  /// The app's parallel work scales with input volume relative to its
  /// solo default (a consumer fed more data does more work per step).
  double step_compute_s(const config::Configuration& c,
                        const MachineSpec& machine, double input_gb) const;

  /// Producer-side staging overhead per step (flush latency + buffer
  /// stalls). Zero for apps without a buffer knob.
  double staging_overhead_s(const config::Configuration& c) const;

  /// Noise-free solo (standalone) execution time for a run of `steps`
  /// pipeline steps: startup + steps * (compute + filesystem I/O).
  double solo_exec_s(const config::Configuration& c,
                     const MachineSpec& machine, int steps) const;

  /// Noise-free solo computer time in core-hours.
  double solo_comp_ch(const config::Configuration& c,
                      const MachineSpec& machine, int steps) const;

  /// Standard constraint for Table-1 style spaces: the node demand
  /// ceil(procs/ppn) must fit `max_nodes`. Usable as a ConfigSpace
  /// constraint via the returned predicate.
  static config::ConfigSpace::Constraint node_limit_constraint(
      ParamRoles roles, int max_nodes);

 private:
  int role_value(int idx, const config::Configuration& c, int fallback) const;

  std::string name_;
  config::ConfigSpace space_;
  ParamRoles roles_;
  ScalingModel scaling_;
  IoProfile io_;
  double startup_s_;
};

}  // namespace ceal::sim
