// Machine description for the cluster performance simulator.
//
// Defaults mirror the paper's testbed (§7.1): a 600-node cluster with two
// 18-core Broadwell sockets per node (hyperthreading off) and an
// Omni-Path interconnect; workflows run on allocations of up to 32 nodes.
#pragma once

namespace ceal::sim {

struct MachineSpec {
  int total_nodes = 600;
  int allocation_nodes = 32;     ///< max nodes one workflow may occupy
  int cores_per_node = 36;
  double node_net_bw_gbs = 10.0; ///< injection bandwidth per node (GB/s)
  double net_latency_s = 2e-6;
  double fs_bw_gbs = 8.0;        ///< shared parallel-filesystem bandwidth
  double fs_latency_s = 2e-3;    ///< per-operation filesystem latency

  /// Core-hours consumed by `nodes` nodes held for `seconds`.
  double core_hours(int nodes, double seconds) const {
    return seconds * static_cast<double>(nodes) *
           static_cast<double>(cores_per_node) / 3600.0;
  }
};

}  // namespace ceal::sim
