#include "sim/workflow.h"

#include <algorithm>
#include <cmath>

#include "core/error.h"

namespace ceal::sim {

namespace {

config::CompositeSpace build_space(const std::vector<ComponentApp>& apps,
                                   const MachineSpec& machine) {
  std::vector<config::CompositeSpace::Component> comps;
  comps.reserve(apps.size());
  for (const auto& app : apps) {
    comps.push_back({app.name(), app.space()});
  }

  // The workflow-level constraint needs each app's node demand; capture
  // lightweight (name, space-dim) agnostic closures by copying the apps'
  // node arithmetic via slice offsets computed below. We rebuild offsets
  // here because CompositeSpace computes them the same way (in order).
  std::vector<std::size_t> offsets(apps.size() + 1, 0);
  for (std::size_t j = 0; j < apps.size(); ++j) {
    offsets[j + 1] = offsets[j] + apps[j].space().dimension();
  }

  // Copy the apps into the constraint closure: they are cheap value types
  // (a space plus scalars) and this keeps the space self-contained.
  auto apps_copy = std::make_shared<const std::vector<ComponentApp>>(apps);
  auto constraint = [apps_copy, offsets,
                     max_nodes = machine.allocation_nodes](
                        const config::Configuration& joint) {
    int total = 0;
    for (std::size_t j = 0; j < apps_copy->size(); ++j) {
      const config::Configuration part(
          joint.begin() + static_cast<std::ptrdiff_t>(offsets[j]),
          joint.begin() + static_cast<std::ptrdiff_t>(offsets[j + 1]));
      total += (*apps_copy)[j].nodes(part);
      if (total > max_nodes) return false;
    }
    return true;
  };

  return config::CompositeSpace(std::move(comps), std::move(constraint));
}

}  // namespace

InSituWorkflow::InSituWorkflow(std::string name, MachineSpec machine,
                               std::vector<ComponentApp> apps,
                               std::vector<Edge> edges,
                               CouplingParams coupling)
    : name_(std::move(name)),
      machine_(machine),
      apps_(std::move(apps)),
      edges_(std::move(edges)),
      coupling_(coupling),
      space_(build_space(apps_, machine_)) {
  CEAL_EXPECT(!apps_.empty());
  CEAL_EXPECT(coupling_.pipeline_steps >= 1);
  CEAL_EXPECT(coupling_.transfer_overlap >= 0.0 &&
              coupling_.transfer_overlap <= 1.0);
  CEAL_EXPECT(coupling_.net_efficiency > 0.0 &&
              coupling_.net_efficiency <= 1.0);
  CEAL_EXPECT(coupling_.noise_sigma >= 0.0);
  for (const Edge& e : edges_) {
    CEAL_EXPECT(e.producer < apps_.size());
    CEAL_EXPECT(e.consumer < apps_.size());
    CEAL_EXPECT(e.producer != e.consumer);
  }
}

const ComponentApp& InSituWorkflow::app(std::size_t j) const {
  CEAL_EXPECT(j < apps_.size());
  return apps_[j];
}

int InSituWorkflow::total_nodes(const config::Configuration& joint) const {
  int total = 0;
  for (std::size_t j = 0; j < apps_.size(); ++j) {
    total += apps_[j].nodes(space_.slice(joint, j));
  }
  return total;
}

CostBreakdown InSituWorkflow::breakdown(
    const config::Configuration& joint) const {
  CEAL_EXPECT_MSG(joint_space().is_valid(joint),
                  "invalid workflow configuration");

  const std::size_t n = apps_.size();
  CostBreakdown bd;
  bd.components.resize(n);
  std::vector<config::Configuration> part(n);
  for (std::size_t j = 0; j < n; ++j) {
    part[j] = space_.slice(joint, j);
    ComponentCost& cost = bd.components[j];
    cost.name = apps_[j].name();
    cost.procs = apps_[j].procs(part[j]);
    cost.nodes = apps_[j].nodes(part[j]);
    bd.nodes += cost.nodes;
  }

  // Upstream volume arriving at each component per step.
  std::vector<double> edge_gb(edges_.size(), 0.0);
  for (std::size_t e = 0; e < edges_.size(); ++e) {
    edge_gb[e] = apps_[edges_[e].producer].output_gb_per_step(
        part[edges_[e].producer]);
    bd.components[edges_[e].consumer].input_gb += edge_gb[e];
  }

  // Per-component step period: compute + staging + unhidden transfer.
  for (std::size_t j = 0; j < n; ++j) {
    ComponentCost& cost = bd.components[j];
    cost.step_compute_s = apps_[j].step_compute_s(
        part[j], machine_, cost.input_gb);
    cost.staging_s = apps_[j].staging_overhead_s(part[j]);
  }
  for (std::size_t e = 0; e < edges_.size(); ++e) {
    // Stream bandwidth is limited by the slimmer endpoint.
    const int lanes = std::min(bd.components[edges_[e].producer].nodes,
                               bd.components[edges_[e].consumer].nodes);
    const double bw = static_cast<double>(lanes) * machine_.node_net_bw_gbs *
                      coupling_.net_efficiency;
    const double xfer = edge_gb[e] / bw + machine_.net_latency_s;
    bd.transfer_total_s += xfer;
    const double exposed = xfer * (1.0 - coupling_.transfer_overlap);
    bd.components[edges_[e].producer].transfer_exposed_s += exposed;
    bd.components[edges_[e].consumer].transfer_exposed_s += exposed;
  }

  // Synchronised pipeline: all components advance with the slowest one.
  double step = 0.0;
  std::size_t slowest = 0;
  for (std::size_t j = 0; j < n; ++j) {
    ComponentCost& cost = bd.components[j];
    cost.period_s =
        cost.step_compute_s + cost.staging_s + cost.transfer_exposed_s;
    if (cost.period_s > step) {
      step = cost.period_s;
      slowest = j;
    }
  }
  bd.components[slowest].bottleneck = true;

  // Interconnect contention: concurrent streams on the shared fabric
  // inflate the step when transfer time is significant relative to it.
  bd.contention_factor = 1.0 + coupling_.contention_coef *
                                   bd.transfer_total_s /
                                   std::max(step, 1e-9);
  bd.step_s = step * bd.contention_factor;

  for (const auto& a : apps_) {
    bd.startup_s = std::max(bd.startup_s, a.startup_s());
  }
  bd.exec_s = bd.startup_s +
              static_cast<double>(coupling_.pipeline_steps) * bd.step_s;
  bd.comp_ch = machine_.core_hours(bd.nodes, bd.exec_s);
  return bd;
}

Measurement InSituWorkflow::coupled(const config::Configuration& joint,
                                    double noise_factor) const {
  const CostBreakdown bd = breakdown(joint);
  Measurement m;
  m.exec_s = bd.exec_s * noise_factor;
  m.nodes = bd.nodes;
  m.comp_ch = machine_.core_hours(m.nodes, m.exec_s);
  m.component_exec_s.resize(apps_.size());
  for (std::size_t j = 0; j < apps_.size(); ++j) {
    // Every component is held for the full synchronised run; its own
    // startup may end earlier but the measurement is end-to-end.
    m.component_exec_s[j] =
        (apps_[j].startup_s() +
         static_cast<double>(coupling_.pipeline_steps) * bd.step_s) *
        noise_factor;
  }
  return m;
}

Measurement InSituWorkflow::expected(const config::Configuration& joint) const {
  return coupled(joint, 1.0);
}

CostBreakdown InSituWorkflow::explain(
    const config::Configuration& joint) const {
  return breakdown(joint);
}

Measurement InSituWorkflow::run(const config::Configuration& joint,
                                ceal::Rng& rng) const {
  return coupled(joint, rng.lognormal_factor(coupling_.noise_sigma));
}

Measurement InSituWorkflow::expected_component(
    std::size_t j, const config::Configuration& c) const {
  CEAL_EXPECT(j < apps_.size());
  CEAL_EXPECT_MSG(apps_[j].space().is_valid(c),
                  "invalid component configuration");
  Measurement m;
  m.exec_s = apps_[j].solo_exec_s(c, machine_, coupling_.pipeline_steps);
  m.nodes = apps_[j].nodes(c);
  m.comp_ch = machine_.core_hours(m.nodes, m.exec_s);
  m.component_exec_s = {m.exec_s};
  return m;
}

Measurement InSituWorkflow::run_component(std::size_t j,
                                          const config::Configuration& c,
                                          ceal::Rng& rng) const {
  Measurement m = expected_component(j, c);
  const double f = rng.lognormal_factor(coupling_.noise_sigma);
  m.exec_s *= f;
  m.comp_ch *= f;
  m.component_exec_s[0] *= f;
  return m;
}

}  // namespace ceal::sim
