// Seeded, deterministic fault injection for workflow runs.
//
// Real in-situ runs fail: node faults kill a run partway through, a
// walltime limit censors runs that would exceed the job's deadline, and
// staging glitches corrupt individual measurements into heavy-tailed
// outliers. The fault model reproduces those three event classes on top
// of the simulator's clean measurements, drawing every random decision
// from a ceal::Rng so any fault sequence is exactly replayable from a
// seed. A default-constructed model is disabled and draws nothing, which
// keeps every fault-free code path bitwise identical to the seed
// reproduction.
#pragma once

#include "core/rng.h"
#include "sim/workflow.h"

namespace ceal::sim {

/// Outcome class of one run attempt.
enum class RunStatus {
  kOk,        ///< the run finished and produced a measurement
  kFailed,    ///< the run died (node fault, staging stall) — no value
  kCensored,  ///< the run was killed at the walltime deadline — no value
};

const char* run_status_name(RunStatus status);

struct FaultModel {
  /// Probability that a run attempt dies before finishing.
  double fail_prob = 0.0;
  /// Walltime deadline in seconds; a run whose wall-clock would exceed it
  /// is killed at the deadline and reported censored. 0 disables it.
  double deadline_s = 0.0;
  /// Probability that a surviving run's measurement is corrupted into a
  /// heavy-tailed outlier (staging hiccup, interference burst).
  double outlier_prob = 0.0;
  /// Pareto tail index of the outlier magnitude; the measurement is
  /// multiplied by (1-u)^(-1/outlier_tail) >= 1. Smaller = heavier tail.
  double outlier_tail = 2.0;

  /// True when any fault channel can fire. Disabled models must never
  /// consume randomness.
  bool enabled() const {
    return fail_prob > 0.0 || deadline_s > 0.0 || outlier_prob > 0.0;
  }

  /// Throws ceal::PreconditionError on out-of-range parameters.
  void validate() const;
};

/// Fault verdict for one run attempt with true wall-clock `exec_s`.
struct FaultOutcome {
  RunStatus status = RunStatus::kOk;
  /// Multiplier applied to the measured value (1 unless an outlier fired).
  /// Only meaningful when status == kOk.
  double value_factor = 1.0;
  /// Wall-clock the attempt actually consumed: full exec_s for clean
  /// runs, a uniform fraction of it for failed runs (the fault strikes
  /// mid-run), the deadline for censored runs.
  double elapsed_s = 0.0;
};

/// Draws the fault verdict for one attempt. Draw order is fixed
/// (failure, then deadline check, then outlier) so traces replay
/// identically for a given seed. `model` must be validated and enabled;
/// a disabled model must be short-circuited by the caller instead.
FaultOutcome apply_faults(const FaultModel& model, double exec_s,
                          ceal::Rng& rng);

/// One noisy coupled run subjected to fault injection. When the model is
/// disabled this is exactly InSituWorkflow::run (same rng draws).
struct FaultyRun {
  RunStatus status = RunStatus::kOk;
  Measurement measurement;  ///< valid when status == kOk (outlier-scaled)
  double elapsed_s = 0.0;   ///< wall-clock consumed by the attempt
};
FaultyRun run_with_faults(const InSituWorkflow& workflow,
                          const config::Configuration& joint,
                          const FaultModel& model, ceal::Rng& rng);

}  // namespace ceal::sim
