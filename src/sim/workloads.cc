#include "sim/workloads.h"

#include "core/error.h"

namespace ceal::sim {

namespace {

using config::ConfigSpace;
using config::Parameter;

constexpr int kMaxNodesPerApp = 31;

/// "# processes 2..1085, # processes per node 1..35, # threads 1..4"
/// (LAMMPS and Voro++ rows of Table 1).
ComponentApp make_proc_ppn_tpp_app(std::string name, ScalingParams scaling,
                                   IoProfile io, double startup_s) {
  ParamRoles roles;
  roles.procs = 0;
  roles.ppn = 1;
  roles.tpp = 2;
  ConfigSpace space(
      {Parameter::range("procs", 2, 1085), Parameter::range("ppn", 1, 35),
       Parameter::range("tpp", 1, 4)},
      ComponentApp::node_limit_constraint(roles, kMaxNodesPerApp));
  return ComponentApp(std::move(name), std::move(space), roles, scaling, io,
                      startup_s);
}

/// "# processes lo..hi, # processes per node 1..35" (Stage Write,
/// Gray-Scott, PDF-calculator rows of Table 1).
ComponentApp make_proc_ppn_app(std::string name, int procs_lo, int procs_hi,
                               ScalingParams scaling, IoProfile io,
                               double startup_s) {
  ParamRoles roles;
  roles.procs = 0;
  roles.ppn = 1;
  ConfigSpace space({Parameter::range("procs", procs_lo, procs_hi),
                     Parameter::range("ppn", 1, 35)},
                    ComponentApp::node_limit_constraint(roles,
                                                        kMaxNodesPerApp));
  return ComponentApp(std::move(name), std::move(space), roles, scaling, io,
                      startup_s);
}

/// Unconfigurable single-process visualisation app (G-Plot, P-Plot).
ComponentApp make_plot_app(std::string name, double step_seconds,
                           double input_gb, double startup_s) {
  ParamRoles roles;
  roles.procs = 0;
  ConfigSpace space({Parameter("procs", {1})});
  ScalingParams scaling;
  scaling.serial_s = step_seconds;
  scaling.work_core_s = 0.0;
  scaling.comm_log_s = 0.0;
  scaling.comm_lin_s = 0.0;
  IoProfile io;
  io.default_input_gb = input_gb;
  return ComponentApp(std::move(name), std::move(space), roles, scaling, io,
                      startup_s);
}

}  // namespace

MachineSpec paper_machine() { return MachineSpec{}; }

Workload make_lv() {
  const MachineSpec machine = paper_machine();

  // LAMMPS: 16 000-atom MD, streams positions+velocities each step.
  ScalingParams lammps;
  lammps.serial_s = 0.15;
  lammps.work_core_s = 250.0;
  lammps.thread_frac = 0.3;
  lammps.mem_slope = 1.2;
  lammps.comm_log_s = 0.04;
  lammps.comm_lin_s = 0.30;
  lammps.p_ref = 1085.0;
  IoProfile lammps_io;
  lammps_io.base_output_gb = 0.02;

  // Voro++: tessellation of the streamed frame; threads well.
  ScalingParams voro;
  voro.serial_s = 0.10;
  voro.work_core_s = 30.0;
  voro.thread_frac = 0.7;
  voro.mem_slope = 0.8;
  voro.comm_log_s = 0.03;
  voro.comm_lin_s = 0.15;
  voro.p_ref = 1085.0;
  IoProfile voro_io;
  voro_io.default_input_gb = 0.02;

  std::vector<ComponentApp> apps;
  apps.push_back(
      make_proc_ppn_tpp_app("lammps", lammps, lammps_io, 4.0));
  apps.push_back(make_proc_ppn_tpp_app("voro", voro, voro_io, 3.0));

  InSituWorkflow wf("LV", machine, std::move(apps), {{0, 1}});
  Workload wl{std::move(wf),
              /*expert_exec=*/{288, 18, 2, 288, 18, 2},
              /*expert_comp=*/{18, 18, 2, 18, 18, 2}};
  CEAL_ENSURE(wl.workflow.joint_space().is_valid(wl.expert_exec));
  CEAL_ENSURE(wl.workflow.joint_space().is_valid(wl.expert_comp));
  return wl;
}

Workload make_hs() {
  const MachineSpec machine = paper_machine();

  // Heat Transfer: px * py process grid over a fixed global mesh; the
  // outputs knob multiplies the streamed volume, the buffer knob trades
  // flush latency against staging stalls.
  ScalingParams heat;
  heat.serial_s = 0.04;
  heat.work_core_s = 40.0;
  heat.thread_frac = 0.0;
  heat.mem_slope = 3.5;
  heat.comm_log_s = 0.015;
  heat.comm_lin_s = 0.50;
  heat.p_ref = 1024.0;
  heat.halo_s = 1.0;
  IoProfile heat_io;
  heat_io.base_output_gb = 0.0625;  // at outputs = 4; 0.5 GB at 32
  heat_io.flush_latency_s = 2e-3;
  heat_io.buffer_stall_s_per_mb = 1.5e-3;

  ParamRoles heat_roles;
  heat_roles.procs_x = 0;
  heat_roles.procs_y = 1;
  heat_roles.ppn = 2;
  heat_roles.outputs = 3;
  heat_roles.buffer_mb = 4;
  ConfigSpace heat_space(
      {Parameter::range("px", 2, 32), Parameter::range("py", 2, 32),
       Parameter::range("ppn", 1, 35), Parameter::range("outputs", 4, 32, 4),
       Parameter::range("buffer_mb", 1, 40)},
      ComponentApp::node_limit_constraint(heat_roles, kMaxNodesPerApp));

  // Stage Write: drains the stream to the filesystem; its per-step work
  // scales with the producer's streamed volume.
  ScalingParams sw;
  sw.serial_s = 0.03;
  sw.work_core_s = 8.0;
  sw.thread_frac = 0.0;
  sw.mem_slope = 0.3;
  sw.comm_log_s = 0.01;
  sw.comm_lin_s = 0.40;
  sw.p_ref = 1085.0;
  IoProfile sw_io;
  sw_io.default_input_gb = 0.0625;

  std::vector<ComponentApp> apps;
  apps.emplace_back("heat_transfer", std::move(heat_space), heat_roles, heat,
                    heat_io, 1.0);
  apps.push_back(make_proc_ppn_app("stage_write", 2, 1085, sw, sw_io, 1.0));

  InSituWorkflow wf("HS", machine, std::move(apps), {{0, 1}});
  Workload wl{std::move(wf),
              /*expert_exec=*/{32, 17, 34, 4, 20, 560, 35},
              /*expert_comp=*/{8, 4, 32, 4, 20, 35, 35}};
  CEAL_ENSURE(wl.workflow.joint_space().is_valid(wl.expert_exec));
  CEAL_ENSURE(wl.workflow.joint_space().is_valid(wl.expert_comp));
  return wl;
}

Workload make_gp() {
  const MachineSpec machine = paper_machine();

  // Gray-Scott: 3D reaction-diffusion producer.
  ScalingParams gs;
  gs.serial_s = 0.20;
  gs.work_core_s = 100.0;
  gs.thread_frac = 0.0;
  gs.mem_slope = 0.7;
  gs.comm_log_s = 0.05;
  gs.comm_lin_s = 0.30;
  gs.p_ref = 1085.0;
  IoProfile gs_io;
  gs_io.base_output_gb = 0.30;

  // PDF calculator: reduces each Gray-Scott frame to a histogram.
  ScalingParams pdf;
  pdf.serial_s = 0.05;
  pdf.work_core_s = 50.0;
  pdf.thread_frac = 0.0;
  pdf.mem_slope = 0.8;
  pdf.comm_log_s = 0.02;
  pdf.comm_lin_s = 0.10;
  pdf.p_ref = 512.0;
  IoProfile pdf_io;
  pdf_io.default_input_gb = 0.30;
  pdf_io.base_output_gb = 0.01;

  std::vector<ComponentApp> apps;
  apps.push_back(make_proc_ppn_app("gray_scott", 2, 1085, gs, gs_io, 3.0));
  apps.push_back(make_proc_ppn_app("pdf_calc", 1, 512, pdf, pdf_io, 2.0));
  // G-Plot renders the full field (slow, unconfigurable bottleneck);
  // P-Plot renders the PDF (fast, unconfigurable).
  apps.push_back(make_plot_app("g_plot", 4.65, 0.30, 2.0));
  apps.push_back(make_plot_app("p_plot", 0.90, 0.01, 1.0));

  InSituWorkflow wf("GP", machine, std::move(apps),
                    {{0, 1}, {0, 2}, {1, 3}});
  Workload wl{std::move(wf),
              /*expert_exec=*/{525, 35, 512, 35, 1, 1},
              /*expert_comp=*/{35, 35, 35, 35, 1, 1}};
  CEAL_ENSURE(wl.workflow.joint_space().is_valid(wl.expert_exec));
  CEAL_ENSURE(wl.workflow.joint_space().is_valid(wl.expert_comp));
  return wl;
}

std::vector<Workload> make_all_workloads() {
  std::vector<Workload> all;
  all.push_back(make_lv());
  all.push_back(make_hs());
  all.push_back(make_gp());
  return all;
}

}  // namespace ceal::sim
