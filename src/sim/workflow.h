// In-situ workflow coupling simulator.
//
// Components run concurrently on disjoint node sets inside one
// allocation, exchanging per-step data over the interconnect through a
// staging library (Fig. 2b). The coupled model captures what the solo
// model cannot:
//   * pipeline synchronisation — every step advances at the pace of the
//     slowest component (T = max_j period_j);
//   * streaming-transfer cost on the shared interconnect, with partial
//     compute/transfer overlap;
//   * interconnect contention that inflates the step when transfers are
//     large relative to the step period;
//   * producer-volume-dependent consumer work (a consumer fed more data
//     than its solo benchmark works harder per step).
// That systematic solo-vs-coupled gap is the low-fidelity gap of §3.
#pragma once

#include <string>
#include <vector>

#include "config/composite.h"
#include "core/rng.h"
#include "sim/component_app.h"
#include "sim/machine.h"

namespace ceal::sim {

/// Streaming data dependency: producer j streams its per-step output to
/// consumer k for the lifetime of the run.
struct Edge {
  std::size_t producer;
  std::size_t consumer;
};

/// One observed (or expected) run.
struct Measurement {
  double exec_s = 0.0;   ///< end-to-end wall-clock (longest component)
  double comp_ch = 0.0;  ///< computer time in core-hours
  std::vector<double> component_exec_s;
  int nodes = 0;         ///< total nodes occupied
};

/// Per-component share of one coupled step (diagnostics / reports).
struct ComponentCost {
  std::string name;
  int procs = 0;
  int nodes = 0;
  double input_gb = 0.0;            ///< upstream volume per step
  double step_compute_s = 0.0;      ///< own compute per step
  double staging_s = 0.0;           ///< buffer flush/stall overhead
  double transfer_exposed_s = 0.0;  ///< unhidden transfer share
  double period_s = 0.0;            ///< compute + staging + transfer
  bool bottleneck = false;          ///< sets the synchronised step
};

/// Full noise-free cost breakdown of one coupled run (see explain()).
struct CostBreakdown {
  std::vector<ComponentCost> components;
  double transfer_total_s = 0.0;   ///< summed per-step stream transfers
  double contention_factor = 1.0;  ///< interconnect inflation multiplier
  double step_s = 0.0;             ///< synchronised step after contention
  double startup_s = 0.0;
  double exec_s = 0.0;
  double comp_ch = 0.0;
  int nodes = 0;
};

struct CouplingParams {
  int pipeline_steps = 20;       ///< synchronised steps per run
  double transfer_overlap = 0.6; ///< fraction of transfer hidden by compute
  double net_efficiency = 0.7;   ///< achieved fraction of link bandwidth
  double contention_coef = 0.25; ///< interconnect contention strength
  double noise_sigma = 0.03;     ///< lognormal measurement noise (0 = none)
};

class InSituWorkflow {
 public:
  /// `apps` become the workflow components in DAG order; every edge index
  /// must reference them. The composite space gains the allocation
  /// constraint sum_j nodes_j <= machine.allocation_nodes.
  InSituWorkflow(std::string name, MachineSpec machine,
                 std::vector<ComponentApp> apps, std::vector<Edge> edges,
                 CouplingParams coupling = {});

  const std::string& name() const { return name_; }
  const MachineSpec& machine() const { return machine_; }
  const CouplingParams& coupling() const { return coupling_; }
  const config::CompositeSpace& space() const { return space_; }
  /// The joint configuration space all tuners operate on.
  const config::ConfigSpace& joint_space() const { return space_.joint(); }

  std::size_t component_count() const { return apps_.size(); }
  const ComponentApp& app(std::size_t j) const;
  const std::vector<Edge>& edges() const { return edges_; }

  /// Total node demand of a joint configuration.
  int total_nodes(const config::Configuration& joint) const;

  /// Noise-free coupled performance of a joint configuration.
  Measurement expected(const config::Configuration& joint) const;

  /// Noise-free per-component cost breakdown of a coupled run — where
  /// each step goes (compute, staging, transfer), who the bottleneck is,
  /// and how contention inflates the pipeline.
  CostBreakdown explain(const config::Configuration& joint) const;

  /// One coupled run with measurement noise.
  Measurement run(const config::Configuration& joint, ceal::Rng& rng) const;

  /// Noise-free solo performance of component `j` under its own
  /// configuration `c` (used for component-model training data).
  Measurement expected_component(std::size_t j,
                                 const config::Configuration& c) const;

  /// One noisy solo run of component `j`.
  Measurement run_component(std::size_t j, const config::Configuration& c,
                            ceal::Rng& rng) const;

 private:
  Measurement coupled(const config::Configuration& joint,
                      double noise_factor) const;
  CostBreakdown breakdown(const config::Configuration& joint) const;

  std::string name_;
  MachineSpec machine_;
  std::vector<ComponentApp> apps_;
  std::vector<Edge> edges_;
  CouplingParams coupling_;
  config::CompositeSpace space_;
};

}  // namespace ceal::sim
