// Analytic strong-scaling model for one component application.
//
// The per-step compute time of an app running with p processes, ppn
// processes per node, and tpp threads per process is modelled as
//
//   t_step = serial_s
//          + work_core_s / (p · w(tpp)) · mem(ppn·tpp) · oversub(ppn·tpp)
//          + comm_log_s · log2(p) + comm_lin_s · p / p_ref
//          + halo_s / sqrt(p) · aspect
//
// where w(tpp) = 1 + (tpp−1)·thread_frac is the per-process speedup from
// threading, mem(·) models per-node memory-bandwidth saturation,
// oversub(·) the slowdown when ppn·tpp exceeds the physical cores, the
// log/linear terms collective-communication cost, and the halo term
// nearest-neighbour exchange (aspect > 1 penalises skewed 2D
// decompositions). The resulting surface is U-shaped in p with a
// configuration-dependent optimum — the structure the paper's tuners
// exploit.
#pragma once

#include "sim/machine.h"

namespace ceal::sim {

struct ScalingParams {
  double serial_s = 0.05;       ///< non-parallelisable time per step
  double work_core_s = 200.0;   ///< parallel work per step (core-seconds)
  double thread_frac = 0.5;     ///< threading efficiency in [0, 1]
  double mem_slope = 0.6;       ///< memory-bandwidth contention strength
  double comm_log_s = 0.02;     ///< collective cost coefficient
  double comm_lin_s = 0.10;     ///< linear network pressure at p == p_ref
  double p_ref = 1085.0;        ///< process count normalising comm_lin_s
  double halo_s = 0.0;          ///< nearest-neighbour exchange coefficient
};

class ScalingModel {
 public:
  explicit ScalingModel(ScalingParams params);

  /// Per-step compute time. `aspect` >= 1 penalises skewed decompositions
  /// (1 = perfectly square). All arguments must be >= 1.
  double step_time(int procs, int ppn, int tpp, double aspect,
                   const MachineSpec& machine) const;

  const ScalingParams& params() const { return params_; }

 private:
  ScalingParams params_;
};

}  // namespace ceal::sim
