#include "sim/component_app.h"

#include <algorithm>
#include <cmath>

#include "core/error.h"

namespace ceal::sim {

ComponentApp::ComponentApp(std::string name, config::ConfigSpace space,
                           ParamRoles roles, ScalingParams scaling,
                           IoProfile io, double startup_s)
    : name_(std::move(name)),
      space_(std::move(space)),
      roles_(roles),
      scaling_(scaling),
      io_(io),
      startup_s_(startup_s) {
  CEAL_EXPECT(!name_.empty());
  CEAL_EXPECT(startup_s_ >= 0.0);
  CEAL_EXPECT_MSG(roles_.procs >= 0 ||
                      (roles_.procs_x >= 0 && roles_.procs_y >= 0) ||
                      !configurable(),
                  "configurable app needs a process-count role");
}

int ComponentApp::role_value(int idx, const config::Configuration& c,
                             int fallback) const {
  if (idx < 0) return fallback;
  CEAL_EXPECT(static_cast<std::size_t>(idx) < c.size());
  return c[static_cast<std::size_t>(idx)];
}

int ComponentApp::procs(const config::Configuration& c) const {
  if (roles_.procs_x >= 0 && roles_.procs_y >= 0) {
    return role_value(roles_.procs_x, c, 1) * role_value(roles_.procs_y, c, 1);
  }
  return role_value(roles_.procs, c, 1);
}

int ComponentApp::ppn(const config::Configuration& c) const {
  return role_value(roles_.ppn, c, 1);
}

int ComponentApp::tpp(const config::Configuration& c) const {
  return role_value(roles_.tpp, c, 1);
}

int ComponentApp::nodes(const config::Configuration& c) const {
  const int p = procs(c);
  const int per_node = std::min(ppn(c), p);
  return (p + per_node - 1) / per_node;
}

double ComponentApp::aspect(const config::Configuration& c) const {
  if (roles_.procs_x < 0 || roles_.procs_y < 0) return 1.0;
  const double x = role_value(roles_.procs_x, c, 1);
  const double y = role_value(roles_.procs_y, c, 1);
  return std::max(x, y) / std::min(x, y);
}

double ComponentApp::output_gb_per_step(const config::Configuration& c) const {
  if (io_.base_output_gb <= 0.0) return 0.0;
  if (roles_.outputs < 0) return io_.base_output_gb;
  const int outputs = role_value(roles_.outputs, c, 1);
  const int min_outputs =
      space_.parameter(static_cast<std::size_t>(roles_.outputs)).value(0);
  return io_.base_output_gb * static_cast<double>(outputs) /
         static_cast<double>(min_outputs);
}

double ComponentApp::step_compute_s(const config::Configuration& c,
                                    const MachineSpec& machine,
                                    double input_gb) const {
  double t = scaling_.step_time(procs(c), ppn(c), tpp(c), aspect(c), machine);
  // A consumer fed more data than its solo benchmark does proportionally
  // more parallel work; the serial/comm terms are unaffected.
  if (io_.default_input_gb > 0.0 && input_gb > 0.0) {
    const double ratio = input_gb / io_.default_input_gb;
    const double parallel_part = t - scaling_.params().serial_s;
    t = scaling_.params().serial_s + parallel_part * ratio;
  }
  return t;
}

double ComponentApp::staging_overhead_s(const config::Configuration& c) const {
  if (roles_.buffer_mb < 0) return 0.0;
  const double buffer_mb =
      static_cast<double>(role_value(roles_.buffer_mb, c, 1));
  const double volume_mb = output_gb_per_step(c) * 1024.0;
  const double flushes = std::max(1.0, volume_mb / buffer_mb);
  return flushes * io_.flush_latency_s +
         buffer_mb * io_.buffer_stall_s_per_mb;
}

double ComponentApp::solo_exec_s(const config::Configuration& c,
                                 const MachineSpec& machine,
                                 int steps) const {
  CEAL_EXPECT(steps >= 1);
  // Standalone mode: inputs are read from and outputs written to the
  // parallel filesystem (Fig. 2a), with the same buffering behaviour.
  const double out_gb = output_gb_per_step(c);
  double io_s = 0.0;
  if (out_gb > 0.0) {
    io_s += out_gb / machine.fs_bw_gbs + machine.fs_latency_s;
  }
  if (io_.default_input_gb > 0.0) {
    io_s += io_.default_input_gb / machine.fs_bw_gbs + machine.fs_latency_s;
  }
  const double step =
      step_compute_s(c, machine, io_.default_input_gb) +
      staging_overhead_s(c) + io_s;
  return startup_s_ + static_cast<double>(steps) * step;
}

double ComponentApp::solo_comp_ch(const config::Configuration& c,
                                  const MachineSpec& machine,
                                  int steps) const {
  return machine.core_hours(nodes(c), solo_exec_s(c, machine, steps));
}

config::ConfigSpace::Constraint ComponentApp::node_limit_constraint(
    ParamRoles roles, int max_nodes) {
  return [roles, max_nodes](const config::Configuration& c) {
    int p = 1;
    if (roles.procs_x >= 0 && roles.procs_y >= 0) {
      p = c[static_cast<std::size_t>(roles.procs_x)] *
          c[static_cast<std::size_t>(roles.procs_y)];
    } else if (roles.procs >= 0) {
      p = c[static_cast<std::size_t>(roles.procs)];
    }
    const int per_node =
        roles.ppn >= 0
            ? std::min(c[static_cast<std::size_t>(roles.ppn)], p)
            : p;
    const int nodes = (p + per_node - 1) / per_node;
    return nodes <= max_nodes;
  };
}

}  // namespace ceal::sim
