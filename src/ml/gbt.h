// Gradient-boosted regression trees with squared-error loss — a
// from-scratch stand-in for xgboost.XGBRegressor, which the paper uses as
// the surrogate model in every auto-tuning algorithm (§7.3).
#pragma once

#include <memory>
#include <vector>

#include "ml/model.h"
#include "ml/tree.h"

namespace ceal::telemetry {
class Telemetry;
}

namespace ceal::ml {

class CompiledForest;

struct GbtParams {
  std::size_t n_rounds = 100;
  double learning_rate = 0.1;
  /// Fraction of rows sampled per round (0 < subsample <= 1).
  double subsample = 1.0;
  /// When true, fit() flattens the trained trees into a CompiledForest
  /// (ml/compiled_forest.h) and every later prediction — single-row and
  /// batch — runs over the contiguous node array instead of walking the
  /// per-tree tables. Results are bitwise identical either way; the
  /// compiled layout only changes constant factors.
  bool compile_predictor = false;
  TreeParams tree;
};

class GradientBoostedTrees final : public Regressor {
 public:
  explicit GradientBoostedTrees(GbtParams params = {});

  /// Surrogate-friendly defaults for the paper's tiny sample budgets
  /// (tens of samples): shallow trees, strong shrinkage.
  static GbtParams surrogate_defaults();

  void fit(const Dataset& data, ceal::Rng& rng) override;
  double predict(std::span<const double> features) const override;
  bool is_fitted() const override { return fitted_; }

  /// Batch prediction, parallel over rows on the global thread pool.
  /// Each row descends the trees in ensemble order, so the result is
  /// bitwise identical to row-by-row predict() for any worker count.
  std::vector<double> predict_all(const Dataset& data) const override;

  /// Same as predict_all for a cached (target-less) feature matrix —
  /// the pool-scoring hot path of the tuners.
  std::vector<double> predict_matrix(const FeatureMatrix& rows) const;

  /// Attaches (or detaches, with nullptr) a concurrency-safe telemetry
  /// registry; not owned, must outlive the model's fits/predictions.
  /// fit() records "gbt.fits"/"gbt.rounds" counters and the "gbt.round"
  /// span (per-round wall clock); batch prediction records
  /// "gbt.predict.batches"/"gbt.predict.rows" and the "gbt.predict"
  /// span. Counter values are deterministic functions of the inputs;
  /// only span seconds carry wall-clock nondeterminism.
  void set_telemetry(ceal::telemetry::Telemetry* telemetry) {
    telemetry_ = telemetry;
  }
  ceal::telemetry::Telemetry* telemetry() const { return telemetry_; }

  std::size_t tree_count() const { return trees_.size(); }
  double base_score() const { return base_score_; }
  const GbtParams& params() const { return params_; }
  /// Trained member trees (for ml::save_gbt). Requires is_fitted().
  const std::vector<RegressionTree>& trees() const;

  /// Reassembles a fitted model from persisted parts (ml::load_gbt).
  /// Compiles the flat predictor when params.compile_predictor is set.
  static GradientBoostedTrees from_parts(GbtParams params,
                                         double base_score,
                                         std::vector<RegressionTree> trees);

  /// The flattened predictor, or nullptr when compile_predictor is off
  /// (or before fit()). Shared so copies of a fitted model alias one
  /// immutable node array instead of re-flattening.
  const CompiledForest* compiled() const { return compiled_.get(); }

 private:
  GbtParams params_;
  double base_score_ = 0.0;
  std::vector<RegressionTree> trees_;
  bool fitted_ = false;
  std::shared_ptr<const CompiledForest> compiled_;
  ceal::telemetry::Telemetry* telemetry_ = nullptr;
};

}  // namespace ceal::ml
