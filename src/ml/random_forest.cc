#include "ml/random_forest.h"

#include <cmath>

#include "core/error.h"

namespace ceal::ml {

RandomForest::RandomForest(RandomForestParams params) : params_(params) {
  CEAL_EXPECT(params_.n_trees >= 1);
  CEAL_EXPECT(params_.bootstrap_fraction > 0.0 &&
              params_.bootstrap_fraction <= 1.0);
}

void RandomForest::fit(const Dataset& data, ceal::Rng& rng) {
  CEAL_EXPECT_MSG(!data.empty(), "cannot fit on an empty dataset");
  trees_.clear();
  trees_.reserve(params_.n_trees);

  const std::size_t n = data.size();
  // Fitting a gradient tree with g = -y, h = 1, lambda = 0 yields leaves
  // equal to the mean target, i.e. a plain CART regression tree.
  std::vector<double> grad(n), hess(n, 1.0);
  for (std::size_t i = 0; i < n; ++i) grad[i] = -data.target(i);

  const auto rows_per_tree = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::llround(
             params_.bootstrap_fraction * static_cast<double>(n))));

  for (std::size_t t = 0; t < params_.n_trees; ++t) {
    std::vector<std::size_t> rows(rows_per_tree);
    for (auto& r : rows) r = rng.uniform_u64(n);  // with replacement
    RegressionTree tree(params_.tree);
    tree.fit_gradients(data, rows, grad, hess, rng);
    trees_.push_back(std::move(tree));
  }
  fitted_ = true;
}

double RandomForest::predict(std::span<const double> features) const {
  CEAL_EXPECT_MSG(fitted_, "predict() before fit()");
  double sum = 0.0;
  for (const auto& tree : trees_) sum += tree.predict(features);
  return sum / static_cast<double>(trees_.size());
}

}  // namespace ceal::ml
