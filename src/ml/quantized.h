// Quantized training backend for TreeMethod::kQuantized.
//
// A QuantizedMatrix is the structure-of-arrays counterpart of the
// row-major Dataset: per-feature quantile bin edges are computed once
// (same cuts as HistogramCache, see ml::quantile_bins) and every feature
// value is packed to a uint8 bin index stored in a contiguous per-feature
// column. An ensemble fit quantizes once and shares the matrix across
// all boosting rounds.
//
// QuantizedTreeBuilder grows one tree over the packed columns in level
// order (breadth-first). Compared to the recursive kHist builder it
// removes every per-(node, feature) allocation: histograms live in two
// reusable scratch buffers (current and previous level), accumulation
// walks rows and reads each row's bin indices from a packed row-major
// mirror in one load, and each
// bin update is one fused gradient+count accumulation (hessians are
// tracked separately only when they are not identically 1.0 — boosting
// with squared error always passes h_i = 1, where the per-bin hessian is
// exactly the count). Each level also accumulates only the smaller child
// of every split and derives the sibling by histogram subtraction
// (sibling = parent - smaller), halving the accumulation work below the
// root. The node units of a level are independent and fan out across the
// global thread pool; reductions walk features in ascending index order,
// so the grown tree is bitwise identical for any worker count.
//
// Histograms are sparse: each node unit carries a per-bin occupancy
// bitmap (one uint64 word per 64 bins, features padded to word
// boundaries), and only occupied bins are ever written or read. Deep in
// a tree a node holds far fewer rows than there are bins, so full
// zero-fills, subtraction over every bin, and gain evaluation at empty
// boundaries would all be bin-linear waste — with the bitmap, accumulate
// first-touch-initialises bins, derive walks only the parent's set bits,
// and the split scan visits only occupied boundaries. Skipping empty
// boundaries selects the same split: an empty bin's boundary carries the
// same prefix sums as the nearest occupied boundary below it, so its
// gain is a tie the incumbent (earlier bin) already holds.
//
// Split candidates, gain formula, tie handling (kGainEps, lowest feature
// index), and all TreeParams constraints match kHist exactly; predictions
// differ from kHist only by the last-ulp float error that histogram
// subtraction introduces, and only when max_bins <= 256 keeps the two
// candidate sets identical.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "ml/tree.h"

namespace ceal::ml {

/// Growable scratch of uninitialised storage. The histogram buffers are
/// governed by occupancy bitmaps — bins without a set bit are never
/// read — so the zero-fill std::vector performs on every resize-growth
/// (one per tree level, every tree of the ensemble) would be pure
/// overhead. Growth discards the old contents.
template <class T>
class ScratchBuffer {
 public:
  T* ensure(std::size_t n) {
    if (cap_ < n) {
      buf_ = std::make_unique_for_overwrite<T[]>(n);
      cap_ = n;
    }
    return buf_.get();
  }
  T* data() { return buf_.get(); }
  const T* data() const { return buf_.get(); }
  void swap(ScratchBuffer& other) {
    buf_.swap(other.buf_);
    std::swap(cap_, other.cap_);
  }

 private:
  std::unique_ptr<T[]> buf_;
  std::size_t cap_ = 0;
};

/// Pre-quantized SoA view of a dataset: per-feature bin edges plus one
/// contiguous uint8 bin-index column per feature. Quantization depends
/// only on the feature values — not on gradients or the per-tree row
/// sample — so it is computed once per ensemble fit.
class QuantizedMatrix {
 public:
  /// Quantile-bins every feature of `data` into at most
  /// min(max_bins, 256) bins (uint8 indices). 2 <= max_bins <= 65536.
  QuantizedMatrix(const Dataset& data, std::size_t max_bins);

  std::size_t n_rows() const { return n_rows_; }
  std::size_t n_features() const { return features_.size(); }

  /// Number of bins of feature j (>= 1 when the matrix is non-empty).
  std::size_t bin_count(std::size_t j) const {
    return features_[j].bin_max.size();
  }

  /// Candidate threshold between bins b and b+1 of feature j.
  double split_value(std::size_t j, std::size_t b) const {
    return features_[j].split_value[b];
  }

  /// Contiguous bin-index column of feature j (n_rows() entries).
  const std::uint8_t* column(std::size_t j) const {
    return binned_.data() + j * n_rows_;
  }

  /// All bin indices of one row, contiguous (n_features() entries).
  /// Histogram accumulation walks rows, not columns, so the row-major
  /// mirror turns its d column gathers per row into one packed load.
  const std::uint8_t* packed_row(std::size_t r) const {
    return packed_.data() + r * features_.size();
  }

 private:
  std::size_t n_rows_ = 0;
  std::vector<FeatureQuantiles> features_;
  /// Bin index per value, feature-major: binned_[j * n_rows_ + row].
  std::vector<std::uint8_t> binned_;
  /// The same indices row-major: packed_[row * n_features + j].
  std::vector<std::uint8_t> packed_;
};

/// Reusable scratch shared by every QuantizedTreeBuilder of one
/// ensemble fit: histogram buffers, row/gradient gathers, and the
/// 1/(k + lambda) reciprocal table. A builder lives for one tree; an
/// ensemble fit constructs thousands, and without a shared workspace
/// each one would re-allocate (and re-fill) every buffer. Owned by the
/// caller (ml/gbt.cc keeps one per fit next to the QuantizedMatrix);
/// not concurrency-safe — one workspace per running fit.
struct QuantizedWorkspace {
  ScratchBuffer<double> prev_g, curr_g;
  ScratchBuffer<double> prev_h, curr_h;  // unused when hessians are unit
  ScratchBuffer<std::uint32_t> prev_n, curr_n;
  ScratchBuffer<std::uint64_t> prev_bits, curr_bits;
  std::vector<std::uint32_t> slots;         // rows, partitioned in place
  std::vector<std::uint32_t> part_scratch;  // right side of a partition
  std::vector<double> recip;                // 1/(k + recip_lambda)
  double recip_lambda = std::numeric_limits<double>::quiet_NaN();
};

/// Level-order tree growth over a QuantizedMatrix; one instance per
/// fitted tree (RegressionTree::fit_gradients constructs it for
/// TreeMethod::kQuantized).
class QuantizedTreeBuilder {
 public:
  /// `workspace` (nullable) carries the scratch buffers across trees of
  /// an ensemble fit; when null the builder owns a transient one.
  QuantizedTreeBuilder(RegressionTree& tree,
                       std::span<const std::size_t> row_indices,
                       std::span<const double> g, std::span<const double> h,
                       std::vector<std::size_t> feature_pool,
                       const QuantizedMatrix& matrix,
                       ceal::telemetry::Telemetry* telemetry,
                       QuantizedWorkspace* workspace = nullptr);

  void run(std::vector<double>* out_leaf_values);

 private:
  struct LevelNode {
    std::uint32_t lo = 0, hi = 0;    // range in slots_
    std::int32_t node = -1;          // index into the tree's node table
    double g_sum = 0.0, h_sum = 0.0;
    std::int32_t parent_hist = -1;   // histogram slot in the previous level
    std::int32_t sibling = -1;       // index of the sibling LevelNode
    std::int32_t hist = -1;          // this node's slot; -1 when terminal
    bool subtract = false;           // derive from parent - sibling
  };

  struct Split {
    bool found = false;
    std::size_t slot = 0;  // index into pool_
    std::size_t bin = 0;
    double gain = 0.0;
    double g_left = 0.0;
    double h_left = 0.0;
    std::uint32_t n_left = 0;
  };

  const TreeParams& params() const { return tree_.params_; }
  /// Builds the node's histogram from its rows. `parent_bits` (nullable)
  /// is set when the node's sibling will derive by subtraction: bins the
  /// parent occupies but this node does not are zeroed so the sibling's
  /// dense subtraction reads defined values everywhere it matters.
  void accumulate(const LevelNode& node, const std::uint64_t* parent_bits);
  void derive(const LevelNode& node, const LevelNode& sibling);
  Split best_split(const LevelNode& node) const;

  RegressionTree& tree_;
  std::span<const double> g_, h_;
  std::vector<std::size_t> pool_;   // searched features, ascending
  const QuantizedMatrix& qm_;
  ceal::telemetry::Telemetry* telemetry_;  // nullable

  bool unit_hessian_ = false;       // every h_i == 1.0 (the boosting case)

  /// Transient fallback, allocated only when the caller passed no
  /// workspace; ws_ is the one actually used either way. Declared
  /// before the reference views below so they bind to live storage.
  std::unique_ptr<QuantizedWorkspace> owned_ws_;
  QuantizedWorkspace& ws_;

  // Views into ws_ under the builder's historical member names.
  std::vector<std::uint32_t>& slots_ = ws_.slots;  // rows, partitioned

  /// Sum of per-feature bin counts over pool_, each padded up to a
  /// multiple of 64 so every feature's occupancy bits start on a word
  /// boundary (padding bins are never accumulated, so their bits stay 0
  /// and their array slots are never read). A bin's array slot index
  /// equals its global bit index.
  std::size_t total_bins_ = 0;
  std::size_t words_ = 0;              // total_bins_ / 64
  std::vector<std::size_t> feat_off_;  // per pool slot, offset into a hist

  /// 1 / (k + lambda) for k = 0..n_rows, so the unit-hessian split scan
  /// replaces its two divisions per candidate with multiplications
  /// (hessian sums are exact row counts there). Cached in the workspace
  /// across trees (ws_.recip_lambda keys validity).
  std::vector<double>& recip_ = ws_.recip;

  // Histogram scratch, reused across levels (and, via the workspace,
  // across trees): previous level (parents) and current level, each
  // `units x total_bins_`. Uninitialised except where the occupancy
  // bitmaps say otherwise.
  ScratchBuffer<double>& prev_g_ = ws_.prev_g;
  ScratchBuffer<double>& curr_g_ = ws_.curr_g;
  ScratchBuffer<double>& prev_h_ = ws_.prev_h;  // unused when unit_hessian_
  ScratchBuffer<double>& curr_h_ = ws_.curr_h;
  ScratchBuffer<std::uint32_t>& prev_n_ = ws_.prev_n;
  ScratchBuffer<std::uint32_t>& curr_n_ = ws_.curr_n;
  ScratchBuffer<std::uint64_t>& prev_bits_ = ws_.prev_bits;   // occupancy
  ScratchBuffer<std::uint64_t>& curr_bits_ = ws_.curr_bits;
  std::vector<std::uint32_t>& part_scratch_ = ws_.part_scratch;

  // Per-level bookkeeping, reused across levels.
  std::vector<LevelNode> next_;
  std::vector<Split> splits_;
  std::vector<std::size_t> acc_units_;
};

}  // namespace ceal::ml
