#include "ml/compiled_forest.h"

#include <utility>

#include "core/error.h"
#include "core/parallel.h"
#include "core/telemetry.h"
#include "ml/gbt.h"

namespace ceal::ml {

namespace {

/// Rows x trees below which the pool dispatch overhead outweighs the
/// parallel win (same break-even as the tree-walk batch predictor).
constexpr std::size_t kParallelPredictWork = 1 << 14;

}  // namespace

CompiledForest CompiledForest::compile(const GradientBoostedTrees& model) {
  CEAL_EXPECT_MSG(model.is_fitted(), "cannot compile an unfitted model");
  CompiledForest out;
  out.base_score_ = model.base_score();
  out.learning_rate_ = model.params().learning_rate;
  out.roots_.reserve(model.tree_count());
  std::size_t total = 0;
  for (const auto& tree : model.trees()) total += tree.node_count();
  out.nodes_.reserve(total);

  for (const auto& tree : model.trees()) {
    const auto src = tree.export_nodes();
    out.roots_.push_back(static_cast<std::uint32_t>(out.nodes_.size()));
    // Iterative pre-order emission: the left child always lands at
    // parent + 1; the right child's slot is patched once its subtree
    // starts. The explicit stack keeps degenerate chains (depth ~ node
    // count) off the call stack.
    std::vector<std::pair<std::int32_t, std::int32_t>> stack;  // src, patch
    stack.emplace_back(0, -1);
    while (!stack.empty()) {
      const auto [s, patch] = stack.back();
      stack.pop_back();
      const auto flat = static_cast<std::int32_t>(out.nodes_.size());
      if (patch >= 0) out.nodes_[static_cast<std::size_t>(patch)].right = flat;
      const TreeNodeData& d = src[static_cast<std::size_t>(s)];
      FlatNode node;
      if (d.left < 0) {
        node.key = d.weight;
      } else {
        node.key = d.threshold;
        node.feature = static_cast<std::uint32_t>(d.feature);
        stack.emplace_back(d.right, flat);  // after the whole left subtree
        stack.emplace_back(d.left, -1);     // next emission: flat + 1
      }
      out.nodes_.push_back(node);
    }
  }
  CEAL_ENSURE(out.nodes_.size() == total);
  return out;
}

double CompiledForest::predict(std::span<const double> features) const {
  double out = base_score_;
  for (const std::uint32_t root : roots_) {
    std::size_t i = root;
    for (;;) {
      const FlatNode& n = nodes_[i];
      if (n.right < 0) {
        out += learning_rate_ * n.key;
        break;
      }
      CEAL_EXPECT(n.feature < features.size());
      i = features[n.feature] <= n.key ? i + 1
                                       : static_cast<std::size_t>(n.right);
    }
  }
  return out;
}

template <typename RowOf>
std::vector<double> CompiledForest::predict_batch(
    std::size_t n, const RowOf& row_of,
    ceal::telemetry::Telemetry* tel) const {
  telemetry::ScopedCausalSpan span(tel, "compiled.predict");
  if (tel != nullptr) {
    tel->count("compiled.predict.batches");
    tel->count("compiled.predict.rows", n);
  }
  std::vector<double> out(n);
  const auto fill = [&](std::size_t i) { out[i] = predict(row_of(i)); };
  if (n > 1 && n * roots_.size() >= kParallelPredictWork) {
    ceal::parallel_apply(0, n, fill);
  } else {
    for (std::size_t i = 0; i < n; ++i) fill(i);
  }
  return out;
}

std::vector<double> CompiledForest::predict_matrix(
    const FeatureMatrix& rows, ceal::telemetry::Telemetry* telemetry) const {
  return predict_batch(rows.size(),
                       [&](std::size_t i) { return rows.row(i); }, telemetry);
}

std::vector<double> CompiledForest::predict_dataset(
    const Dataset& data, ceal::telemetry::Telemetry* telemetry) const {
  return predict_batch(data.size(),
                       [&](std::size_t i) { return data.row(i); }, telemetry);
}

}  // namespace ceal::ml
