#include "ml/serialize.h"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "core/error.h"

namespace ceal::ml {

namespace {

// Doubles are stored as C99 hex-floats: exact round trip, no locale.
std::string hex_double(double v) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%a", v);
  return buf;
}

double parse_hex_double(const std::string& token) {
  // save_gbt only ever emits C99 hex-floats; accepting anything else
  // (decimal strings, "nan", partial parses) would let a corrupted file
  // load with silently wrong values.
  std::size_t digits = 0;
  if (digits < token.size() &&
      (token[digits] == '+' || token[digits] == '-')) {
    ++digits;
  }
  CEAL_EXPECT_MSG(digits + 1 < token.size() && token[digits] == '0' &&
                      (token[digits + 1] == 'x' || token[digits + 1] == 'X'),
                  "malformed double in model file (expected hex-float): " +
                      token);
  char* end = nullptr;
  const double v = std::strtod(token.c_str(), &end);
  CEAL_EXPECT_MSG(end != nullptr && *end == '\0' &&
                      end != token.c_str() && std::isfinite(v),
                  "malformed double in model file: " + token);
  return v;
}

std::string next_line(std::istream& is) {
  std::string line;
  CEAL_EXPECT_MSG(static_cast<bool>(std::getline(is, line)),
                  "unexpected end of model file");
  return line;
}

}  // namespace

std::string method_name(TreeMethod m) {
  switch (m) {
    case TreeMethod::kExact: return "exact";
    case TreeMethod::kHist: return "hist";
    case TreeMethod::kQuantized: return "quantized";
  }
  CEAL_EXPECT_MSG(false, "unknown tree method");
  return {};
}

TreeMethod parse_method(const std::string& name) {
  if (name == "exact") return TreeMethod::kExact;
  if (name == "hist") return TreeMethod::kHist;
  if (name == "quantized") return TreeMethod::kQuantized;
  CEAL_EXPECT_MSG(false, "unknown tree method in model file: " + name);
  return TreeMethod::kExact;
}

void save_gbt(const GradientBoostedTrees& model, std::ostream& os,
              std::size_t n_features) {
  CEAL_EXPECT_MSG(model.is_fitted(), "cannot save an unfitted model");
  CEAL_EXPECT(n_features > 0);
  // Models that only use v1 features keep writing v1 files, so existing
  // default-path artifacts stay byte-identical across this change.
  const GbtParams& p = model.params();
  const bool needs_v2 =
      p.tree.method != TreeMethod::kExact || p.compile_predictor;
  os << "gbt " << (needs_v2 ? "v2 " : "v1 ") << n_features << ' '
     << model.tree_count() << ' ' << hex_double(p.learning_rate) << ' '
     << hex_double(model.base_score()) << '\n';
  if (needs_v2) {
    os << "params " << method_name(p.tree.method) << ' ' << p.tree.max_bins
       << ' ' << (p.compile_predictor ? 1 : 0) << '\n';
  }
  for (const auto& tree : model.trees()) {
    const auto nodes = tree.export_nodes();
    os << "tree " << nodes.size() << '\n';
    for (const TreeNodeData& n : nodes) {
      os << "node " << n.feature << ' ' << hex_double(n.threshold) << ' '
         << n.left << ' ' << n.right << ' ' << hex_double(n.weight)
         << '\n';
    }
  }
  CEAL_EXPECT_MSG(static_cast<bool>(os), "write failure while saving model");
}

LoadedGbt load_gbt(std::istream& is) {
  std::istringstream header(next_line(is));
  std::string magic, version;
  std::size_t n_features = 0, n_trees = 0;
  std::string lr_token, base_token;
  header >> magic >> version >> n_features >> n_trees >> lr_token >>
      base_token;
  CEAL_EXPECT_MSG(magic == "gbt" && (version == "v1" || version == "v2"),
                  "not a CEAL gbt v1/v2 model file");
  CEAL_EXPECT_MSG(n_features > 0 && n_trees > 0,
                  "model file declares an empty model");

  GbtParams params;
  params.n_rounds = n_trees;
  params.learning_rate = parse_hex_double(lr_token);
  const double base_score = parse_hex_double(base_token);

  if (version == "v2") {
    std::istringstream params_line(next_line(is));
    std::string tag, method;
    std::size_t max_bins = 0;
    int compiled = -1;
    params_line >> tag >> method >> max_bins >> compiled;
    CEAL_EXPECT_MSG(tag == "params" && !params_line.fail() &&
                        (compiled == 0 || compiled == 1),
                    "malformed params line in model file");
    params.tree.method = parse_method(method);
    params.tree.max_bins = max_bins;
    params.compile_predictor = compiled == 1;
  }

  std::vector<RegressionTree> trees;
  trees.reserve(n_trees);
  for (std::size_t t = 0; t < n_trees; ++t) {
    std::istringstream tree_header(next_line(is));
    std::string tag;
    std::size_t n_nodes = 0;
    tree_header >> tag >> n_nodes;
    CEAL_EXPECT_MSG(tag == "tree" && n_nodes > 0,
                    "malformed tree header in model file");
    std::vector<TreeNodeData> nodes;
    nodes.reserve(n_nodes);
    for (std::size_t i = 0; i < n_nodes; ++i) {
      std::istringstream node_line(next_line(is));
      std::string node_tag, threshold_token, weight_token;
      TreeNodeData d;
      node_line >> node_tag >> d.feature >> threshold_token >> d.left >>
          d.right >> weight_token;
      CEAL_EXPECT_MSG(node_tag == "node" && !node_line.fail(),
                      "malformed node line in model file");
      CEAL_EXPECT_MSG(d.feature < n_features,
                      "node references a feature beyond n_features");
      d.threshold = parse_hex_double(threshold_token);
      d.weight = parse_hex_double(weight_token);
      nodes.push_back(d);
    }
    trees.push_back(RegressionTree::import_nodes(nodes));
  }

  // A model file ends after its last tree; anything further is
  // corruption (e.g. a concatenated or doubled file), not padding.
  std::string tail;
  while (std::getline(is, tail)) {
    CEAL_EXPECT_MSG(tail.find_first_not_of(" \t\r") == std::string::npos,
                    "trailing garbage after the last tree in model file");
  }

  LoadedGbt out{GradientBoostedTrees::from_parts(params, base_score,
                                                 std::move(trees)),
                n_features};
  return out;
}

void save_gbt_file(const GradientBoostedTrees& model,
                   const std::string& path, std::size_t n_features) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("cannot open " + path + " for writing");
  save_gbt(model, os, n_features);
}

LoadedGbt load_gbt_file(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("cannot open " + path);
  return load_gbt(is);
}

}  // namespace ceal::ml
