#include "ml/dataset.h"

#include <algorithm>

#include "core/error.h"

namespace ceal::ml {

Dataset::Dataset(std::size_t n_features) : n_features_(n_features) {
  CEAL_EXPECT(n_features > 0);
}

void Dataset::reserve(std::size_t n_rows) {
  x_.reserve(n_rows * n_features_);
  targets_.reserve(n_rows);
}

void Dataset::add(std::span<const double> features, double target) {
  CEAL_EXPECT(features.size() == n_features_);
  x_.insert(x_.end(), features.begin(), features.end());
  targets_.push_back(target);
}

std::span<const double> Dataset::row(std::size_t i) const {
  CEAL_EXPECT(i < size());
  return {x_.data() + i * n_features_, n_features_};
}

double Dataset::target(std::size_t i) const {
  CEAL_EXPECT(i < size());
  return targets_[i];
}

double Dataset::feature(std::size_t i, std::size_t j) const {
  CEAL_EXPECT(i < size());
  CEAL_EXPECT(j < n_features_);
  return x_[i * n_features_ + j];
}

void Dataset::append(const Dataset& other) {
  CEAL_EXPECT(other.n_features_ == n_features_);
  x_.insert(x_.end(), other.x_.begin(), other.x_.end());
  targets_.insert(targets_.end(), other.targets_.begin(),
                  other.targets_.end());
}

Dataset Dataset::subset(std::span<const std::size_t> indices) const {
  Dataset out(n_features_);
  out.reserve(indices.size());
  for (const std::size_t i : indices) out.add(row(i), target(i));
  return out;
}

FeatureMatrix::FeatureMatrix(std::size_t n_features, std::size_t n_rows)
    : n_features_(n_features), n_rows_(n_rows),
      x_(n_features * n_rows, 0.0) {
  CEAL_EXPECT(n_features > 0);
}

std::span<const double> FeatureMatrix::row(std::size_t i) const {
  CEAL_EXPECT(i < n_rows_);
  return {x_.data() + i * n_features_, n_features_};
}

std::span<double> FeatureMatrix::mutable_row(std::size_t i) {
  CEAL_EXPECT(i < n_rows_);
  return {x_.data() + i * n_features_, n_features_};
}

void FeatureMatrix::set_row(std::size_t i, std::span<const double> features) {
  CEAL_EXPECT(features.size() == n_features_);
  const auto dst = mutable_row(i);
  std::copy(features.begin(), features.end(), dst.begin());
}

}  // namespace ceal::ml
