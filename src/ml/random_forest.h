// Random forest regressor: bagged CART trees with per-tree feature
// subsampling. Mentioned by the paper (§2.2) as a traditional model that
// beats neural networks at tiny sample counts; we offer it as an
// alternative surrogate for ablations.
#pragma once

#include <vector>

#include "ml/model.h"
#include "ml/tree.h"

namespace ceal::ml {

struct RandomForestParams {
  std::size_t n_trees = 100;
  /// Rows drawn (with replacement) per tree as a fraction of n.
  double bootstrap_fraction = 1.0;
  TreeParams tree = {.max_depth = 12,
                     .min_samples_leaf = 1,
                     .min_child_weight = 0.0,
                     .lambda = 0.0,
                     .gamma = 0.0,
                     .colsample = 0.7};
};

class RandomForest final : public Regressor {
 public:
  explicit RandomForest(RandomForestParams params = {});

  void fit(const Dataset& data, ceal::Rng& rng) override;
  double predict(std::span<const double> features) const override;
  bool is_fitted() const override { return fitted_; }

  std::size_t tree_count() const { return trees_.size(); }

 private:
  RandomForestParams params_;
  std::vector<RegressionTree> trees_;
  bool fitted_ = false;
};

}  // namespace ceal::ml
