// Flattened ensemble predictor: every trained tree's node table packed
// into one contiguous array for branch-light batch inference.
//
// Nodes are laid out in depth-first pre-order, so each internal node's
// left child is the next array element and only the right-child index is
// stored; a leaf is marked by right < 0 and stores its weight in the
// shared key slot. Descent is then a tight loop over one 16-byte node
// record per level with a single predictable branch, instead of chasing
// 40-byte Node records through per-tree vectors.
//
// Prediction accumulates the trees in ensemble order with the same
// base + learning_rate * leaf arithmetic as GradientBoostedTrees, so a
// compiled forest is bitwise identical to the tree-walk predictor — for
// single rows, batches, and any thread-pool width (batch inference
// parallelises over rows, one writer per row).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "ml/dataset.h"

namespace ceal::telemetry {
class Telemetry;
}

namespace ceal::ml {

class GradientBoostedTrees;

class CompiledForest {
 public:
  /// Flattens a fitted ensemble. The forest snapshots the model's trees;
  /// it stays valid after the model is destroyed.
  static CompiledForest compile(const GradientBoostedTrees& model);

  /// Ensemble prediction for one feature vector; bitwise equal to
  /// GradientBoostedTrees::predict.
  double predict(std::span<const double> features) const;

  /// Batch prediction over a feature matrix, parallel over row blocks on
  /// the global thread pool. `telemetry` (nullable) receives the
  /// "compiled.predict" span and "compiled.predict.rows" counter.
  std::vector<double> predict_matrix(
      const FeatureMatrix& rows,
      ceal::telemetry::Telemetry* telemetry = nullptr) const;

  /// Batch prediction over a dataset's feature rows (targets ignored).
  std::vector<double> predict_dataset(
      const Dataset& data,
      ceal::telemetry::Telemetry* telemetry = nullptr) const;

  std::size_t tree_count() const { return roots_.size(); }
  std::size_t node_count() const { return nodes_.size(); }

 private:
  /// One packed node: internal nodes hold the split threshold in `key`
  /// and the absolute index of the right child; the left child is the
  /// next node. Leaves hold the leaf weight in `key` and right == -1.
  struct FlatNode {
    double key = 0.0;
    std::uint32_t feature = 0;
    std::int32_t right = -1;
  };

  CompiledForest() = default;

  template <typename RowOf>
  std::vector<double> predict_batch(std::size_t n, const RowOf& row_of,
                                    ceal::telemetry::Telemetry* tel) const;

  double base_score_ = 0.0;
  double learning_rate_ = 0.0;
  std::vector<std::uint32_t> roots_;  // start of each tree in nodes_
  std::vector<FlatNode> nodes_;
};

}  // namespace ceal::ml
