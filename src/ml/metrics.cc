#include "ml/metrics.h"

#include <algorithm>

#include "core/error.h"
#include "core/stats.h"

namespace ceal::ml {

std::vector<std::size_t> top_indices(std::span<const double> values,
                                     std::size_t n) {
  CEAL_EXPECT(n <= values.size());
  auto order = ceal::argsort(values);
  order.resize(n);
  return order;
}

double recall_score_percent(std::size_t n, std::span<const double> scores,
                            std::span<const double> measured) {
  CEAL_EXPECT(n >= 1);
  CEAL_EXPECT(scores.size() == measured.size());
  CEAL_EXPECT(n <= scores.size());

  auto by_model = top_indices(scores, n);
  auto by_truth = top_indices(measured, n);
  std::sort(by_model.begin(), by_model.end());
  std::sort(by_truth.begin(), by_truth.end());

  std::vector<std::size_t> common;
  std::set_intersection(by_model.begin(), by_model.end(), by_truth.begin(),
                        by_truth.end(), std::back_inserter(common));
  return 100.0 * static_cast<double>(common.size()) / static_cast<double>(n);
}

double recall_sum_top123(std::span<const double> scores,
                         std::span<const double> measured) {
  CEAL_EXPECT(scores.size() == measured.size());
  CEAL_EXPECT(!scores.empty());
  double sum = 0.0;
  for (std::size_t n = 1; n <= 3 && n <= scores.size(); ++n) {
    sum += recall_score_percent(n, scores, measured);
  }
  return sum;
}

}  // namespace ceal::ml
