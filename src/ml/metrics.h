// Metrics specific to auto-tuner evaluation.
//
// The central one is the recall score (paper Eqn. 3):
//   S_r(n, c, M, D_c) = |top(n, M(c)) ∩ top(n, D_c)| / n × 100%
// where both the model scores and the measured performance are
// lower-is-better (times).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace ceal::ml {

/// Indices of the `n` smallest entries of `values` (lower is better),
/// ties broken by index. Requires n <= values.size().
std::vector<std::size_t> top_indices(std::span<const double> values,
                                     std::size_t n);

/// Recall score in percent for the top `n` (Eqn. 3). `scores` are the
/// model's predicted values and `measured` the observed performance for
/// the same configurations, both lower-is-better.
/// Requires 1 <= n <= scores.size() == measured.size().
double recall_score_percent(std::size_t n, std::span<const double> scores,
                            std::span<const double> measured);

/// Sum of recall scores for n = 1, 2, 3 — the model-switch statistic used
/// in CEAL's detection step (Alg. 1 lines 18–19). When fewer than 3
/// entries exist, the sum stops at the available count.
double recall_sum_top123(std::span<const double> scores,
                         std::span<const double> measured);

}  // namespace ceal::ml
