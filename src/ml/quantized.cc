#include "ml/quantized.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>

#include "core/error.h"
#include "core/parallel.h"
#include "core/telemetry.h"

#if defined(__SSE2__)
#include <emmintrin.h>
#endif

namespace ceal::ml {

namespace {

/// Occupancy word of the 64 counts at cn[0..63]: bit j set iff
/// cn[j] != 0. SSE2 (x86-64 baseline) turns the per-bin shift-or chain
/// into four-lane compares + movemask.
inline std::uint64_t nonzero_mask64(const std::uint32_t* cn) {
#if defined(__SSE2__)
  const __m128i zero = _mm_setzero_si128();
  std::uint64_t nz = 0;
  for (std::size_t j = 0; j < 64; j += 4) {
    const __m128i v =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(cn + j));
    const int zmask =
        _mm_movemask_ps(_mm_castsi128_ps(_mm_cmpeq_epi32(v, zero)));
    nz |= static_cast<std::uint64_t>(~zmask & 0xF) << j;
  }
  return nz;
#else
  std::uint64_t nz = 0;
  for (std::size_t j = 0; j < 64; ++j) {
    nz |= static_cast<std::uint64_t>(cn[j] != 0) << j;
  }
  return nz;
#endif
}

double leaf_weight(double g_sum, double h_sum, double lambda) {
  return -g_sum / (h_sum + lambda);
}

double score(double g_sum, double h_sum, double lambda) {
  return g_sum * g_sum / (h_sum + lambda);
}

/// Same tie epsilon as the exact and histogram split finders (tree.cc):
/// gains within it are ties and the incumbent (lower feature index,
/// earlier bin) wins.
constexpr double kGainEps = 1e-12;

/// Minimum (rows in level) x (features searched) before a level's node
/// units are worth fanning out to the thread pool.
constexpr std::size_t kParallelLevelWork = 2048;

/// Hard cap so bin indices fit the uint8 columns.
constexpr std::size_t kMaxQuantizedBins = 256;

}  // namespace

QuantizedMatrix::QuantizedMatrix(const Dataset& data, std::size_t max_bins)
    : n_rows_(data.size()),
      features_(data.n_features()),
      binned_(data.n_features() * data.size()) {
  CEAL_EXPECT(max_bins >= 2 && max_bins <= 65536);
  const std::size_t bins = std::min(max_bins, kMaxQuantizedBins);
  const std::size_t n = n_rows_;
  const auto bin_one = [&](std::size_t j) {
    std::vector<double> vals(n);
    for (std::size_t k = 0; k < n; ++k) vals[k] = data.feature(k, j);
    std::sort(vals.begin(), vals.end());

    FeatureQuantiles& fb = features_[j];
    fb = quantile_bins(vals, bins);
    CEAL_ENSURE(fb.bin_max.size() <= kMaxQuantizedBins);

    std::uint8_t* col = binned_.data() + j * n;
    for (std::size_t k = 0; k < n; ++k) {
      const double v = data.feature(k, j);
      const auto it =
          std::lower_bound(fb.bin_max.begin(), fb.bin_max.end(), v);
      col[k] = static_cast<std::uint8_t>(it - fb.bin_max.begin());
    }
  };
  const std::size_t d = data.n_features();
  if (d > 1 && d * n >= kParallelLevelWork) {
    ceal::parallel_apply(0, d, bin_one);
  } else {
    for (std::size_t j = 0; j < d; ++j) bin_one(j);
  }
  packed_.resize(n * d);
  for (std::size_t j = 0; j < d; ++j) {
    const std::uint8_t* col = binned_.data() + j * n;
    for (std::size_t r = 0; r < n; ++r) packed_[r * d + j] = col[r];
  }
}

QuantizedTreeBuilder::QuantizedTreeBuilder(
    RegressionTree& tree, std::span<const std::size_t> row_indices,
    std::span<const double> g, std::span<const double> h,
    std::vector<std::size_t> feature_pool, const QuantizedMatrix& matrix,
    ceal::telemetry::Telemetry* telemetry, QuantizedWorkspace* workspace)
    : tree_(tree),
      g_(g),
      h_(h),
      pool_(std::move(feature_pool)),
      qm_(matrix),
      telemetry_(telemetry),
      owned_ws_(workspace == nullptr ? std::make_unique<QuantizedWorkspace>()
                                     : nullptr),
      ws_(workspace != nullptr ? *workspace : *owned_ws_) {
  slots_.assign(row_indices.begin(), row_indices.end());
  // Ascending feature order makes the reduction's tie-break "lowest
  // feature index" regardless of the pool's sampling order.
  std::sort(pool_.begin(), pool_.end());
  // Squared-error boosting always passes h_i = 1; then every per-bin
  // hessian is exactly the bin count and the hessian arrays vanish.
  unit_hessian_ = std::all_of(h_.begin(), h_.end(),
                              [](double v) { return v == 1.0; });
  feat_off_.resize(pool_.size());
  for (std::size_t s = 0; s < pool_.size(); ++s) {
    feat_off_[s] = total_bins_;
    total_bins_ += (qm_.bin_count(pool_[s]) + 63) & ~std::size_t{63};
  }
  words_ = total_bins_ / 64;
  if (unit_hessian_) {
    // The table only depends on (row count, lambda); across the trees of
    // one ensemble fit both repeat, so the divisions run once per fit.
    const double lambda = params().lambda;
    const std::size_t want = slots_.size() + 1;
    if (recip_.size() != want || ws_.recip_lambda != lambda) {
      recip_.resize(want);
      for (std::size_t k = 0; k < want; ++k) {
        recip_[k] = 1.0 / (static_cast<double>(k) + lambda);
      }
      ws_.recip_lambda = lambda;
    }
  }
}

void QuantizedTreeBuilder::accumulate(const LevelNode& node,
                                      const std::uint64_t* parent_bits) {
  const std::size_t lo = node.lo, hi = node.hi;
  const std::size_t base = static_cast<std::size_t>(node.hist) * total_bins_;
  double* const cg = curr_g_.data() + base;
  double* const ch = unit_hessian_ ? nullptr : curr_h_.data() + base;
  std::uint32_t* const cn = curr_n_.data() + base;
  std::uint64_t* bits =
      curr_bits_.data() + static_cast<std::size_t>(node.hist) * words_;

  // Two accumulation regimes. Dense (enough rows to touch a good share
  // of the bins): zero-fill the unit, run the branch-free update loop,
  // then derive the bitmap from the counts in one vectorisable sweep.
  // Sparse (rows << bins, deep in the tree): skip the bin-linear fills
  // and first-touch-initialise each bin off its occupancy bit instead,
  // paying a data-dependent branch per update. The histograms are
  // identical either way (0.0 + g == g), so the crossover is purely a
  // speed trade.
  // Both regimes walk rows, not columns: the packed row-major mirror
  // hands a row's bin indices over in one load, and feat_off_[s] + bin
  // addresses the unit's histogram globally. Per feature the additions
  // still land in ascending-k order, so the sums are bitwise identical
  // to a column-major pass.
  const std::size_t n_pool = pool_.size();
  const bool dense = (hi - lo) * n_pool * 8 >= total_bins_;
  if (dense) {
    std::fill(cg, cg + total_bins_, 0.0);
    std::fill(cn, cn + total_bins_, 0u);
    if (!unit_hessian_) std::fill(ch, ch + total_bins_, 0.0);
    if (unit_hessian_) {
      for (std::size_t k = lo; k < hi; ++k) {
        const std::uint32_t r = slots_[k];
        const std::uint8_t* rb = qm_.packed_row(r);
        const double g = g_[r];
        for (std::size_t s = 0; s < n_pool; ++s) {
          const std::size_t b = feat_off_[s] + rb[pool_[s]];
          cg[b] += g;
          ++cn[b];
        }
      }
    } else {
      for (std::size_t k = lo; k < hi; ++k) {
        const std::uint32_t r = slots_[k];
        const std::uint8_t* rb = qm_.packed_row(r);
        const double g = g_[r], hv = h_[r];
        for (std::size_t s = 0; s < n_pool; ++s) {
          const std::size_t b = feat_off_[s] + rb[pool_[s]];
          cg[b] += g;
          ch[b] += hv;
          ++cn[b];
        }
      }
    }
    // Every real bin holds a defined value (empty ones an exact 0.0),
    // so the sibling's subtraction needs no complement zeroing; the
    // bitmap comes from one vectorised sweep over the counts.
    for (std::size_t w = 0; w < words_; ++w) {
      bits[w] = nonzero_mask64(cn + (w << 6));
    }
    return;
  }

  std::fill(bits, bits + words_, std::uint64_t{0});
  for (std::size_t k = lo; k < hi; ++k) {
    const std::uint32_t r = slots_[k];
    const std::uint8_t* rb = qm_.packed_row(r);
    const double g = g_[r];
    for (std::size_t s = 0; s < n_pool; ++s) {
      const std::size_t b = feat_off_[s] + rb[pool_[s]];
      std::uint64_t& word = bits[b >> 6];
      const std::uint64_t mask = std::uint64_t{1} << (b & 63);
      if (word & mask) {
        cg[b] += g;
        ++cn[b];
        if (!unit_hessian_) ch[b] += h_[r];
      } else {
        // First touch of this bin: initialise instead of zero-filling
        // the whole histogram up front.
        word |= mask;
        cg[b] = g;
        cn[b] = 1;
        if (!unit_hessian_) ch[b] = h_[r];
      }
    }
  }
  if (parent_bits == nullptr) return;
  // The sibling will derive by a dense word-wide subtraction over every
  // parent-occupied bin; bins the parent occupies but this node does
  // not would feed it uninitialised values, so zero exactly those.
  for (std::size_t w = 0; w < words_; ++w) {
    std::uint64_t extra = parent_bits[w] & ~bits[w];
    while (extra != 0) {
      const std::size_t b =
          (w << 6) + static_cast<std::size_t>(std::countr_zero(extra));
      extra &= extra - 1;
      cg[b] = 0.0;
      cn[b] = 0;
      if (!unit_hessian_) ch[b] = 0.0;
    }
  }
}

void QuantizedTreeBuilder::derive(const LevelNode& node,
                                  const LevelNode& sibling) {
  const std::size_t dst = static_cast<std::size_t>(node.hist) * total_bins_;
  const std::size_t par =
      static_cast<std::size_t>(node.parent_hist) * total_bins_;
  const std::size_t sib =
      static_cast<std::size_t>(sibling.hist) * total_bins_;
  double* __restrict dg = curr_g_.data() + dst;
  const double* __restrict sg = curr_g_.data() + sib;
  const double* __restrict pg = prev_g_.data() + par;
  std::uint32_t* __restrict dn = curr_n_.data() + dst;
  const std::uint32_t* __restrict sn = curr_n_.data() + sib;
  const std::uint32_t* __restrict pn = prev_n_.data() + par;
  const std::uint64_t* pbits =
      prev_bits_.data() + static_cast<std::size_t>(node.parent_hist) * words_;
  std::uint64_t* dbits =
      curr_bits_.data() + static_cast<std::size_t>(node.hist) * words_;
  // Only the parent's occupied bins can be occupied here. The subtract
  // runs dense across each parent-occupied word so it vectorises (bins
  // outside the parent's bits compute garbage the bitmap masks off),
  // and a bin whose rows all went to the sibling ends with count 0 and
  // stays unoccupied (its residual gradient is dropped, not stored).
  for (std::size_t w = 0; w < words_; ++w) {
    const std::uint64_t pw = pbits[w];
    if (pw == 0) {
      dbits[w] = 0;
      continue;
    }
    const std::size_t b0 = w << 6;
    // Type-homogeneous loops so each one auto-vectorises.
    for (std::size_t j = 0; j < 64; ++j) {
      dn[b0 + j] = pn[b0 + j] - sn[b0 + j];
    }
    for (std::size_t j = 0; j < 64; ++j) {
      dg[b0 + j] = pg[b0 + j] - sg[b0 + j];
    }
    if (!unit_hessian_) {
      double* __restrict dh = curr_h_.data() + dst;
      const double* __restrict sh = curr_h_.data() + sib;
      const double* __restrict ph = prev_h_.data() + par;
      for (std::size_t j = 0; j < 64; ++j) {
        dh[b0 + j] = ph[b0 + j] - sh[b0 + j];
      }
    }
    dbits[w] = nonzero_mask64(dn + b0) & pw;
  }
}

QuantizedTreeBuilder::Split QuantizedTreeBuilder::best_split(
    const LevelNode& node) const {
  const TreeParams& prm = params();
  const std::size_t n_node = node.hi - node.lo;
  const std::size_t base = static_cast<std::size_t>(node.hist) * total_bins_;
  const double* const cg = curr_g_.data() + base;
  const std::uint32_t* const cn = curr_n_.data() + base;
  const std::uint64_t* bits =
      curr_bits_.data() + static_cast<std::size_t>(node.hist) * words_;

  Split best;
  if (unit_hessian_) {
    // Unit hessians: every hessian sum is an exact row count, so the
    // gain's divisions become lookups in the 1/(k + lambda) table and
    // the min_samples_leaf / min_child_weight constraints collapse to
    // one integer range on n_left.
    const double* const recip = recip_.data();
    const double parent_score = node.g_sum * node.g_sum * recip[n_node];
    const std::size_t lo_n = std::max(
        prm.min_samples_leaf,
        static_cast<std::size_t>(
            std::ceil(std::max(0.0, prm.min_child_weight))));
    if (2 * lo_n > n_node) return best;
    const std::size_t hi_n = n_node - lo_n;
    // Single accept threshold folds the "first split needs gain > 0"
    // and the "beat the incumbent by kGainEps" rules into one compare:
    // it starts at 0 and every accept raises it to gain + kGainEps,
    // which is exactly the two-clause condition unrolled.
    double thr = 0.0;
    // Running max of the raw split score q = gL^2/(nL+lambda) +
    // gR^2/(nR+lambda) over every feasible boundary seen so far. The
    // gain transform 0.5*(q - parent_score) - gamma is monotone
    // (rounding preserves order), so q <= q_best can never pass the
    // accept test and the full gain arithmetic only runs on a new
    // high-water mark.
    double q_best = -std::numeric_limits<double>::infinity();
    for (std::size_t s = 0; s < pool_.size(); ++s) {
      const std::size_t n_bins = qm_.bin_count(pool_[s]);
      if (n_bins < 2) continue;
      const double* hg = cg + feat_off_[s];
      const std::uint32_t* hn = cn + feat_off_[s];
      const std::uint64_t* fbits = bits + feat_off_[s] / 64;
      const std::size_t n_words = (n_bins + 63) / 64;
      // The last bin has no right side; masking its bit up front (its
      // bit is the highest that can be set — padding bins never
      // accumulate) removes the boundary check from the inner loop.
      const std::size_t last_w = (n_bins - 1) >> 6;
      const std::uint64_t last_mask =
          ~(std::uint64_t{1} << ((n_bins - 1) & 63));
      double g_left = 0.0;
      std::size_t n_left = 0;
      const auto eval = [&](std::size_t b) {
        const std::size_t n_right = n_node - n_left;
        const double g_right = node.g_sum - g_left;
        const double q = g_left * g_left * recip[n_left] +
                         g_right * g_right * recip[n_right];
        if (q <= q_best) return;
        q_best = q;
        const double gain = 0.5 * (q - parent_score) - prm.gamma;
        if (gain > thr) {
          thr = gain + kGainEps;
          best.found = true;
          best.slot = s;
          best.bin = b;
          best.gain = gain;
          best.g_left = g_left;
          best.h_left = static_cast<double>(n_left);
          best.n_left = static_cast<std::uint32_t>(n_left);
        }
      };
      // Occupied boundaries only: a boundary at an empty bin carries
      // the same prefix sums (and therefore gain) as the nearest
      // occupied boundary below it, which the incumbent tie-break
      // already keeps.
      for (std::size_t w = 0; w < n_words; ++w) {
        std::uint64_t remaining = fbits[w];
        if (w == last_w) remaining &= last_mask;
        if (remaining == ~std::uint64_t{0}) {
          // Saturated word (typical near the root, where rows cover
          // every bin): plain scan, no bit extraction.
          const std::size_t b0 = w << 6;
          for (std::size_t j = 0; j < 64; ++j) {
            g_left += hg[b0 + j];
            n_left += hn[b0 + j];
            if (n_left < lo_n || n_left > hi_n) continue;
            eval(b0 + j);
          }
          continue;
        }
        while (remaining != 0) {
          const std::size_t b =
              (w << 6) +
              static_cast<std::size_t>(std::countr_zero(remaining));
          remaining &= remaining - 1;
          g_left += hg[b];
          n_left += hn[b];
          if (n_left < lo_n || n_left > hi_n) continue;
          eval(b);
        }
      }
    }
    return best;
  }

  const double parent_score = score(node.g_sum, node.h_sum, prm.lambda);
  for (std::size_t s = 0; s < pool_.size(); ++s) {
    const std::size_t n_bins = qm_.bin_count(pool_[s]);
    if (n_bins < 2) continue;
    const double* hg = cg + feat_off_[s];
    const std::uint32_t* hn = cn + feat_off_[s];
    const double* hh = curr_h_.data() + base + feat_off_[s];
    const std::uint64_t* fbits = bits + feat_off_[s] / 64;
    const std::size_t n_words = (n_bins + 63) / 64;
    double g_left = 0.0, h_left = 0.0;
    std::size_t n_left = 0;
    for (std::size_t w = 0; w < n_words; ++w) {
      std::uint64_t remaining = fbits[w];
      while (remaining != 0) {
        const std::size_t b =
            (w << 6) + static_cast<std::size_t>(std::countr_zero(remaining));
        remaining &= remaining - 1;
        if (b + 1 >= n_bins) break;  // last bin: no right side remains
        g_left += hg[b];
        n_left += hn[b];
        h_left += hh[b];
        const std::size_t n_right = n_node - n_left;
        if (n_left < prm.min_samples_leaf ||
            n_right < prm.min_samples_leaf) {
          continue;
        }
        const double h_right = node.h_sum - h_left;
        if (h_left < prm.min_child_weight ||
            h_right < prm.min_child_weight) {
          continue;
        }
        const double g_right = node.g_sum - g_left;
        const double gain = 0.5 * (score(g_left, h_left, prm.lambda) +
                                   score(g_right, h_right, prm.lambda) -
                                   parent_score) -
                            prm.gamma;
        if (gain > best.gain + kGainEps || (!best.found && gain > 0.0)) {
          best.found = true;
          best.slot = s;
          best.bin = b;
          best.gain = gain;
          best.g_left = g_left;
          best.h_left = h_left;
          best.n_left = static_cast<std::uint32_t>(n_left);
        }
      }
    }
  }
  return best;
}

void QuantizedTreeBuilder::run(std::vector<double>* out_leaf_values) {
  const TreeParams& prm = params();
  auto& nodes = tree_.nodes_;
  const std::size_t n = slots_.size();
  part_scratch_.resize(n);  // once; every partition fits inside
  double g_sum = 0.0, h_sum = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    g_sum += g_[slots_[k]];
    h_sum += h_[slots_[k]];
  }

  nodes.emplace_back();
  std::vector<LevelNode> level(1);
  level[0].lo = 0;
  level[0].hi = static_cast<std::uint32_t>(n);
  level[0].node = 0;
  level[0].g_sum = g_sum;
  level[0].h_sum = h_sum;

  const auto make_leaf = [&](const LevelNode& ln) {
    RegressionTree::Node& leaf = nodes[static_cast<std::size_t>(ln.node)];
    leaf.left = -1;
    leaf.right = -1;
    leaf.weight = leaf_weight(ln.g_sum, ln.h_sum, prm.lambda);
    if (out_leaf_values != nullptr) {
      for (std::size_t k = ln.lo; k < ln.hi; ++k) {
        (*out_leaf_values)[slots_[k]] = leaf.weight;
      }
    }
  };

  for (std::size_t depth = 0; !level.empty(); ++depth) {
    // Histogram slot assignment: terminal nodes keep hist == -1; every
    // other node gets a slot, and of two splittable siblings the larger
    // (ties: the right child) derives its histogram by subtraction from
    // the parent instead of accumulating its rows.
    std::size_t level_rows = 0;
    std::int32_t units = 0;
    for (LevelNode& ln : level) {
      const std::size_t size = ln.hi - ln.lo;
      const bool terminal =
          depth >= prm.max_depth || size < 2 * prm.min_samples_leaf;
      ln.hist = terminal ? -1 : units++;
      ln.subtract = false;
      if (!terminal) level_rows += size;
    }
    for (std::size_t i = 0; i < level.size(); ++i) {
      LevelNode& ln = level[i];
      if (ln.hist < 0 || ln.sibling < 0) continue;
      const LevelNode& sib = level[static_cast<std::size_t>(ln.sibling)];
      if (sib.hist < 0) continue;  // sibling terminal: accumulate directly
      const std::size_t mine = ln.hi - ln.lo;
      const std::size_t theirs = sib.hi - sib.lo;
      // Subtraction touches three full histograms (parent, sibling,
      // own) — a bin-linear cost — so it only pays off when direct
      // accumulation of this node's rows would cost more; small nodes
      // accumulate sparsely instead. The decision depends only on row
      // counts and the bin layout, so it is thread-count independent.
      ln.subtract = (mine > theirs || (mine == theirs && ln.lo > sib.lo)) &&
                    mine * pool_.size() >= total_bins_;
    }
    if (units == 0) {
      for (const LevelNode& ln : level) make_leaf(ln);
      break;
    }

    if (telemetry_ != nullptr) {
      telemetry_->count("tree.split_search.nodes",
                        static_cast<std::size_t>(units));
      telemetry_->count("tree.split_search.features",
                        static_cast<std::size_t>(units) * pool_.size());
    }

    curr_g_.ensure(static_cast<std::size_t>(units) * total_bins_);
    curr_n_.ensure(static_cast<std::size_t>(units) * total_bins_);
    curr_bits_.ensure(static_cast<std::size_t>(units) * words_);
    if (!unit_hessian_) {
      curr_h_.ensure(static_cast<std::size_t>(units) * total_bins_);
    }

    // One fused job per accumulating unit: build its histogram, search
    // its split, and — when its sibling derives by subtraction — derive
    // and search the sibling too, while both histograms are still
    // cache-resident (a separate pass per phase would re-pull every
    // unit's histogram from memory). Jobs touch disjoint slot ranges
    // and fixed per-unit histograms, so they are independent and the
    // result is bitwise identical for any worker count.
    acc_units_.clear();
    for (std::size_t i = 0; i < level.size(); ++i) {
      if (level[i].hist >= 0 && !level[i].subtract) acc_units_.push_back(i);
    }
    splits_.assign(static_cast<std::size_t>(units), Split{});
    const bool parallel = acc_units_.size() > 1 &&
                          level_rows * pool_.size() >= kParallelLevelWork;
    const auto job = [&](std::size_t i) {
      const LevelNode& ln = level[i];
      const LevelNode* sib =
          ln.sibling >= 0 ? &level[static_cast<std::size_t>(ln.sibling)]
                          : nullptr;
      const bool sib_subtracts = sib != nullptr && sib->subtract;
      const std::uint64_t* parent_bits =
          sib_subtracts ? prev_bits_.data() +
                              static_cast<std::size_t>(ln.parent_hist) * words_
                        : nullptr;
      accumulate(ln, parent_bits);
      splits_[static_cast<std::size_t>(ln.hist)] = best_split(ln);
      if (sib_subtracts) {
        derive(*sib, ln);
        splits_[static_cast<std::size_t>(sib->hist)] = best_split(*sib);
      }
    };
    if (parallel) {
      ceal::parallel_apply(0, acc_units_.size(),
                           [&](std::size_t u) { job(acc_units_[u]); });
    } else {
      for (const std::size_t i : acc_units_) job(i);
    }

    // Serial finalize in level order: grow children, partition slots.
    next_.clear();
    next_.reserve(static_cast<std::size_t>(units) * 2);
    for (const LevelNode& ln : level) {
      if (ln.hist < 0) {
        make_leaf(ln);
        continue;
      }
      const Split& sp = splits_[static_cast<std::size_t>(ln.hist)];
      if (!sp.found) {
        make_leaf(ln);
        continue;
      }
      const std::size_t feature = pool_[sp.slot];
      const std::uint8_t* col = qm_.column(feature);
      const auto split_bin = static_cast<std::uint8_t>(sp.bin);
      // Stable in-place partition via a scratch buffer for the right
      // side (std::stable_partition would allocate one per call). The
      // side a row lands on is a coin flip to the branch predictor, so
      // both sides are written unconditionally and the write cursors
      // advance by the comparison result instead of branching.
      std::uint32_t* const rbuf = part_scratch_.data();
      std::size_t out = ln.lo, n_right = 0;
      for (std::size_t k = ln.lo; k < ln.hi; ++k) {
        const std::uint32_t r = slots_[k];
        const bool goes_left = col[r] <= split_bin;
        slots_[out] = r;
        rbuf[n_right] = r;
        out += goes_left;
        n_right += !goes_left;
      }
      std::copy(part_scratch_.begin(),
                part_scratch_.begin() + static_cast<std::ptrdiff_t>(n_right),
                slots_.begin() + static_cast<std::ptrdiff_t>(out));
      const auto mid = static_cast<std::uint32_t>(out);
      CEAL_ENSURE(mid > ln.lo && mid < ln.hi);
      CEAL_ENSURE(mid - ln.lo == sp.n_left);

      nodes.emplace_back();
      const auto left_id = static_cast<std::int32_t>(nodes.size() - 1);
      nodes.emplace_back();
      const auto right_id = static_cast<std::int32_t>(nodes.size() - 1);
      RegressionTree::Node& self = nodes[static_cast<std::size_t>(ln.node)];
      self.feature = feature;
      self.threshold = qm_.split_value(feature, sp.bin);
      self.left = left_id;
      self.right = right_id;

      const auto child_base = static_cast<std::int32_t>(next_.size());
      LevelNode left;
      left.lo = ln.lo;
      left.hi = mid;
      left.node = left_id;
      left.g_sum = sp.g_left;
      left.h_sum = sp.h_left;
      left.parent_hist = ln.hist;
      left.sibling = child_base + 1;
      LevelNode right;
      right.lo = mid;
      right.hi = ln.hi;
      right.node = right_id;
      right.g_sum = ln.g_sum - sp.g_left;
      right.h_sum = ln.h_sum - sp.h_left;
      right.parent_hist = ln.hist;
      right.sibling = child_base;
      next_.push_back(left);
      next_.push_back(right);
    }
    prev_g_.swap(curr_g_);
    prev_n_.swap(curr_n_);
    prev_bits_.swap(curr_bits_);
    if (!unit_hessian_) prev_h_.swap(curr_h_);
    std::swap(level, next_);
  }
}

}  // namespace ceal::ml
