// Regression tree grown by exact greedy split search on second-order
// gradient statistics, following the XGBoost formulation (Chen & Guestrin,
// KDD'16), which the paper uses via xgboost.XGBRegressor.
//
// For squared-error boosting the caller supplies per-example gradients
// g_i = prediction_i - y_i and hessians h_i = 1; the optimal leaf weight
// is w* = -G/(H+lambda) and the split gain is
//   1/2 [G_L^2/(H_L+lambda) + G_R^2/(H_R+lambda) - G^2/(H+lambda)] - gamma.
// Fitting with g_i = -y_i, h_i = 1, lambda = 0 recovers a plain CART
// regression tree (leaves = mean target), which RandomForest exploits.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "core/rng.h"
#include "ml/dataset.h"

namespace ceal::telemetry {
class Telemetry;
}

namespace ceal::ml {

/// Split-finding strategy.
///   kExact: per-node sort of every feature; the serial reference path.
///     Every distinct value boundary is a candidate. Best for the tiny
///     sample budgets of the surrogates (tens of rows) and the path whose
///     results the reproduction benchmarks are pinned to.
///   kHist: quantile binning (<= max_bins bins per feature, computed once
///     per dataset — see HistogramCache) and per-node linear scans over
///     bin accumulators, with the per-feature
///     search fanned out across the global thread pool. Results are
///     deterministic and independent of the worker count (fixed per-
///     feature decomposition, reduction in feature order, ties broken on
///     the lowest feature index), but differ from kExact when a feature
///     has more distinct values than bins.
///   kQuantized: the same quantile-cut candidate set as kHist (bins
///     capped at 256 so indices pack into uint8), but trained over a
///     structure-of-arrays QuantizedMatrix (ml/quantized.h): contiguous
///     per-feature bin columns, fused gradient/count accumulation,
///     level-order growth with histogram subtraction, and node-level
///     parallelism. Same determinism contract as kHist; predictions
///     agree with kHist within the float error of histogram subtraction
///     whenever max_bins <= 256.
enum class TreeMethod { kExact, kHist, kQuantized };

struct TreeParams {
  std::size_t max_depth = 6;
  /// Minimum number of examples in each child of a split.
  std::size_t min_samples_leaf = 1;
  /// Minimum summed hessian in each child (XGBoost min_child_weight).
  double min_child_weight = 1.0;
  /// L2 regularisation on leaf weights.
  double lambda = 1.0;
  /// Minimum gain required to split (XGBoost gamma).
  double gamma = 0.0;
  /// Fraction of features considered at each tree (0 < colsample <= 1).
  double colsample = 1.0;
  /// Split-finding strategy (see TreeMethod).
  TreeMethod method = TreeMethod::kExact;
  /// Maximum histogram bins per feature (kHist/kQuantized). 2 <=
  /// max_bins <= 65536; kQuantized additionally caps the effective bin
  /// count at 256 so indices fit a uint8. When a feature has fewer
  /// distinct values than bins, each value gets its own bin and the
  /// binned methods consider exactly the kExact candidate set.
  std::size_t max_bins = 256;
};

/// Quantile binning of one feature: `bin_max[b]` is the largest training
/// value of bin b (ascending) and `split_value[b]` the candidate
/// threshold between bins b and b+1, satisfying
/// max(bin b) <= split_value[b] < min(bin b+1) — so partitioning by bin
/// index equals partitioning by `value <= split_value[b]`.
struct FeatureQuantiles {
  std::vector<double> split_value;  ///< size bin_max.size() - 1
  std::vector<double> bin_max;
};

/// Quantile cuts of one feature's sorted values into at most `max_bins`
/// bins — the single binning rule shared by HistogramCache (kHist) and
/// QuantizedMatrix (kQuantized), so both methods see the same candidate
/// thresholds. When the feature has <= max_bins distinct values every
/// value gets its own bin (the kExact candidate set).
FeatureQuantiles quantile_bins(std::span<const double> sorted_vals,
                               std::size_t max_bins);

/// Flattened node for persistence: leaves have left == right == -1 and
/// carry `weight`; internal nodes carry feature/threshold/children.
struct TreeNodeData {
  std::size_t feature = 0;
  double threshold = 0.0;
  std::int32_t left = -1;
  std::int32_t right = -1;
  double weight = 0.0;
};

/// Pre-binned view of a dataset for TreeMethod::kHist. Binning depends
/// only on the feature values — not on gradients or the per-tree row
/// sample — so an ensemble fit builds one cache up front and shares it
/// across all boosting rounds instead of re-sorting every feature per
/// tree. RegressionTree::fit_gradients builds a transient one when the
/// caller does not supply a cache.
class HistogramCache {
 public:
  /// Quantile-bins every feature of `data` (2 <= max_bins <= 65536).
  HistogramCache(const Dataset& data, std::size_t max_bins);

  std::size_t n_rows() const { return n_rows_; }
  std::size_t n_features() const { return features_.size(); }

 private:
  friend class HistTreeBuilder;

  std::size_t n_rows_ = 0;
  std::vector<FeatureQuantiles> features_;
  /// Bin index per value, feature-major: binned_[j * n_rows_ + row].
  std::vector<std::uint16_t> binned_;
};

class QuantizedMatrix;
struct QuantizedWorkspace;

class RegressionTree {
 public:
  explicit RegressionTree(TreeParams params = {});

  /// Grows the tree on the rows of `data` listed in `row_indices`, using
  /// per-row gradient/hessian statistics (indexed like `data` rows).
  ///
  /// When `out_leaf_values` is non-null it must have data.size() entries;
  /// for every trained row r the entry is set to the weight of the leaf
  /// the row landed in (== predict(data.row(r))), so boosting can update
  /// round predictions without re-descending the tree. Entries of rows
  /// not in `row_indices` are left untouched.
  ///
  /// `hist_cache` (kHist only) shares pre-binned features across the
  /// trees of an ensemble; it must have been built on `data` with this
  /// tree's max_bins. When null, kHist bins `data` transiently.
  /// `quantized_cache` plays the same role for kQuantized
  /// (ml/quantized.h); when null, kQuantized quantizes `data`
  /// transiently. `quantized_ws` (kQuantized only) carries the builder's
  /// scratch buffers across the trees of an ensemble fit; when null each
  /// tree allocates transient scratch.
  ///
  /// `telemetry` (optional, concurrency-safe) receives split-search
  /// counters: "tree.fits", "tree.split_search.nodes" (one per node whose
  /// split was searched), "tree.split_search.features" (features scanned,
  /// incremented from pool workers on the kHist path),
  /// "tree.hist_cache.hit"/"tree.hist_cache.miss" (shared vs transient
  /// binning), and "tree.nodes"/"tree.leaves" (grown totals). All are
  /// deterministic functions of the fit inputs.
  void fit_gradients(const Dataset& data,
                     std::span<const std::size_t> row_indices,
                     std::span<const double> gradients,
                     std::span<const double> hessians, ceal::Rng& rng,
                     std::vector<double>* out_leaf_values = nullptr,
                     const HistogramCache* hist_cache = nullptr,
                     ceal::telemetry::Telemetry* telemetry = nullptr,
                     const QuantizedMatrix* quantized_cache = nullptr,
                     QuantizedWorkspace* quantized_ws = nullptr);

  /// Leaf weight for one feature vector.
  double predict(std::span<const double> features) const;

  bool is_fitted() const { return !nodes_.empty(); }
  std::size_t node_count() const { return nodes_.size(); }
  std::size_t leaf_count() const;
  std::size_t depth() const;

  /// Flattened copy of the node table (for ml::save_gbt).
  std::vector<TreeNodeData> export_nodes() const;

  /// Rebuilds a tree from a node table; validates child indices form a
  /// proper tree rooted at node 0. Throws PreconditionError otherwise.
  static RegressionTree import_nodes(const std::vector<TreeNodeData>& nodes,
                                     TreeParams params = {});

 private:
  struct Node {
    // Internal nodes: feature/threshold/children. Leaves: weight.
    std::size_t feature = 0;
    double threshold = 0.0;
    std::int32_t left = -1;  // -1 marks a leaf
    std::int32_t right = -1;
    double weight = 0.0;
  };

  struct Split {
    bool found = false;
    std::size_t feature = 0;
    double threshold = 0.0;
    double gain = 0.0;
  };

  std::int32_t build(const Dataset& data, std::vector<std::size_t>& rows,
                     std::span<const double> g, std::span<const double> h,
                     std::span<const std::size_t> feature_pool,
                     std::size_t depth, std::vector<double>* out_leaf_values,
                     ceal::telemetry::Telemetry* telemetry);
  Split best_split(const Dataset& data, std::span<const std::size_t> rows,
                   std::span<const double> g, std::span<const double> h,
                   std::span<const std::size_t> feature_pool, double g_total,
                   double h_total,
                   ceal::telemetry::Telemetry* telemetry) const;
  std::size_t depth_of(std::int32_t node) const;

  friend class HistTreeBuilder;
  friend class QuantizedTreeBuilder;

  TreeParams params_;
  std::vector<Node> nodes_;  // nodes_[0] is the root when fitted
};

}  // namespace ceal::ml
