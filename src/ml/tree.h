// Regression tree grown by exact greedy split search on second-order
// gradient statistics, following the XGBoost formulation (Chen & Guestrin,
// KDD'16), which the paper uses via xgboost.XGBRegressor.
//
// For squared-error boosting the caller supplies per-example gradients
// g_i = prediction_i - y_i and hessians h_i = 1; the optimal leaf weight
// is w* = -G/(H+lambda) and the split gain is
//   1/2 [G_L^2/(H_L+lambda) + G_R^2/(H_R+lambda) - G^2/(H+lambda)] - gamma.
// Fitting with g_i = -y_i, h_i = 1, lambda = 0 recovers a plain CART
// regression tree (leaves = mean target), which RandomForest exploits.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "core/rng.h"
#include "ml/dataset.h"

namespace ceal::ml {

struct TreeParams {
  std::size_t max_depth = 6;
  /// Minimum number of examples in each child of a split.
  std::size_t min_samples_leaf = 1;
  /// Minimum summed hessian in each child (XGBoost min_child_weight).
  double min_child_weight = 1.0;
  /// L2 regularisation on leaf weights.
  double lambda = 1.0;
  /// Minimum gain required to split (XGBoost gamma).
  double gamma = 0.0;
  /// Fraction of features considered at each tree (0 < colsample <= 1).
  double colsample = 1.0;
};

/// Flattened node for persistence: leaves have left == right == -1 and
/// carry `weight`; internal nodes carry feature/threshold/children.
struct TreeNodeData {
  std::size_t feature = 0;
  double threshold = 0.0;
  std::int32_t left = -1;
  std::int32_t right = -1;
  double weight = 0.0;
};

class RegressionTree {
 public:
  explicit RegressionTree(TreeParams params = {});

  /// Grows the tree on the rows of `data` listed in `row_indices`, using
  /// per-row gradient/hessian statistics (indexed like `data` rows).
  void fit_gradients(const Dataset& data,
                     std::span<const std::size_t> row_indices,
                     std::span<const double> gradients,
                     std::span<const double> hessians, ceal::Rng& rng);

  /// Leaf weight for one feature vector.
  double predict(std::span<const double> features) const;

  bool is_fitted() const { return !nodes_.empty(); }
  std::size_t node_count() const { return nodes_.size(); }
  std::size_t leaf_count() const;
  std::size_t depth() const;

  /// Flattened copy of the node table (for ml::save_gbt).
  std::vector<TreeNodeData> export_nodes() const;

  /// Rebuilds a tree from a node table; validates child indices form a
  /// proper tree rooted at node 0. Throws PreconditionError otherwise.
  static RegressionTree import_nodes(const std::vector<TreeNodeData>& nodes,
                                     TreeParams params = {});

 private:
  struct Node {
    // Internal nodes: feature/threshold/children. Leaves: weight.
    std::size_t feature = 0;
    double threshold = 0.0;
    std::int32_t left = -1;  // -1 marks a leaf
    std::int32_t right = -1;
    double weight = 0.0;
  };

  struct Split {
    bool found = false;
    std::size_t feature = 0;
    double threshold = 0.0;
    double gain = 0.0;
  };

  std::int32_t build(const Dataset& data, std::vector<std::size_t>& rows,
                     std::span<const double> g, std::span<const double> h,
                     std::span<const std::size_t> feature_pool,
                     std::size_t depth);
  Split best_split(const Dataset& data, std::span<const std::size_t> rows,
                   std::span<const double> g, std::span<const double> h,
                   std::span<const std::size_t> feature_pool) const;
  std::size_t depth_of(std::int32_t node) const;

  TreeParams params_;
  std::vector<Node> nodes_;  // nodes_[0] is the root when fitted
};

}  // namespace ceal::ml
