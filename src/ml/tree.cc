#include "ml/tree.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <optional>

#include "core/error.h"
#include "core/parallel.h"
#include "core/telemetry.h"
#include "ml/quantized.h"

namespace ceal::ml {

namespace {

double leaf_weight(double g_sum, double h_sum, double lambda) {
  return -g_sum / (h_sum + lambda);
}

double score(double g_sum, double h_sum, double lambda) {
  return g_sum * g_sum / (h_sum + lambda);
}

/// Gains within this epsilon of the incumbent are ties; the incumbent
/// (earlier feature / smaller threshold) wins. Shared by both split
/// finders so they agree on tie handling.
constexpr double kGainEps = 1e-12;

/// Minimum (rows in node) x (features searched) before a node's split
/// search is worth fanning out to the thread pool.
constexpr std::size_t kParallelSplitWork = 2048;

}  // namespace

// ---------------------------------------------------------------------------
// Histogram split finding (TreeMethod::kHist).

FeatureQuantiles quantile_bins(std::span<const double> sorted_vals,
                               std::size_t max_bins) {
  const std::size_t n = sorted_vals.size();
  FeatureQuantiles fb;
  std::size_t distinct = n == 0 ? 0 : 1;
  for (std::size_t k = 1; k < n; ++k) {
    if (sorted_vals[k] != sorted_vals[k - 1]) ++distinct;
  }
  if (distinct <= max_bins) {
    // One bin per distinct value: the candidate set (midpoints between
    // adjacent values) matches the exact-greedy search.
    fb.bin_max.reserve(distinct);
    for (std::size_t k = 0; k < n; ++k) {
      if (k == 0 || sorted_vals[k] != sorted_vals[k - 1]) {
        fb.bin_max.push_back(sorted_vals[k]);
      }
    }
  } else {
    // Quantile cuts: bin edges at ranks b*n/max_bins, deduplicated so
    // heavy duplicates collapse into one bin.
    fb.bin_max.reserve(max_bins);
    for (std::size_t b = 1; b < max_bins; ++b) {
      const double edge = sorted_vals[(b * n) / max_bins];
      if (fb.bin_max.empty() || edge != fb.bin_max.back()) {
        fb.bin_max.push_back(edge);
      }
    }
    if (fb.bin_max.empty() || sorted_vals.back() != fb.bin_max.back()) {
      fb.bin_max.push_back(sorted_vals.back());
    }
  }

  fb.split_value.resize(fb.bin_max.empty() ? 0 : fb.bin_max.size() - 1);
  for (std::size_t b = 0; b + 1 < fb.bin_max.size(); ++b) {
    const double lo = fb.bin_max[b];
    // Smallest training value of the next bin: the first sorted value
    // above this bin's edge.
    const double hi = *std::upper_bound(sorted_vals.begin(),
                                        sorted_vals.end(), lo);
    double mid = lo + 0.5 * (hi - lo);
    if (!(mid < hi)) mid = lo;  // rounding collapse: stay left of hi
    fb.split_value[b] = mid;
  }
  return fb;
}

HistogramCache::HistogramCache(const Dataset& data, std::size_t max_bins)
    : n_rows_(data.size()),
      features_(data.n_features()),
      binned_(data.n_features() * data.size()) {
  CEAL_EXPECT(max_bins >= 2 && max_bins <= 65536);
  const std::size_t n = n_rows_;
  const auto bin_one = [&](std::size_t j) {
    std::vector<double> vals(n);
    for (std::size_t k = 0; k < n; ++k) vals[k] = data.feature(k, j);
    std::sort(vals.begin(), vals.end());

    FeatureQuantiles& fb = features_[j];
    fb = quantile_bins(vals, max_bins);

    std::uint16_t* col = binned_.data() + j * n;
    for (std::size_t k = 0; k < n; ++k) {
      const double v = data.feature(k, j);
      const auto it =
          std::lower_bound(fb.bin_max.begin(), fb.bin_max.end(), v);
      col[k] = static_cast<std::uint16_t>(it - fb.bin_max.begin());
    }
  };
  const std::size_t d = data.n_features();
  if (d > 1 && d * n >= kParallelSplitWork) {
    ceal::parallel_apply(0, d, bin_one);
  } else {
    for (std::size_t j = 0; j < d; ++j) bin_one(j);
  }
}

// Per node, split search is one linear pass per feature over bin
// accumulators instead of a sort; the bins come from a HistogramCache
// shared across the whole ensemble fit. The per-feature searches are
// independent and run on the global thread pool; the reduction walks
// features in ascending index order, so the chosen split — and therefore
// the whole tree — is bitwise identical for any worker count.
class HistTreeBuilder {
 public:
  HistTreeBuilder(RegressionTree& tree, const Dataset& data,
                  std::span<const std::size_t> row_indices,
                  std::span<const double> g, std::span<const double> h,
                  std::vector<std::size_t> feature_pool,
                  const HistogramCache& cache,
                  ceal::telemetry::Telemetry* telemetry)
      : tree_(tree),
        data_(data),
        g_(g),
        h_(h),
        pool_(std::move(feature_pool)),
        n_(row_indices.size()),
        rows_(row_indices.begin(), row_indices.end()),
        pos_(row_indices.size()),
        cache_(cache),
        telemetry_(telemetry) {
    // Ascending feature order makes the reduction's tie-break "lowest
    // feature index" regardless of the pool's sampling order.
    std::sort(pool_.begin(), pool_.end());
    for (std::size_t k = 0; k < n_; ++k) {
      pos_[k] = static_cast<std::uint32_t>(k);
    }
  }

  void run(std::vector<double>* out_leaf_values) {
    double g_sum = 0.0, h_sum = 0.0;
    for (std::size_t k = 0; k < n_; ++k) {
      g_sum += g_[rows_[k]];
      h_sum += h_[rows_[k]];
    }
    build(0, n_, 0, g_sum, h_sum, out_leaf_values);
  }

 private:
  struct Candidate {
    bool found = false;
    std::size_t slot = 0;
    std::size_t bin = 0;
    double gain = 0.0;
    double g_left = 0.0;
    double h_left = 0.0;
  };

  const TreeParams& params() const { return tree_.params_; }

  Candidate best_for_slot(std::size_t s, std::size_t lo, std::size_t hi,
                          double g_sum, double h_sum,
                          double parent_score) const {
    Candidate best;
    const FeatureQuantiles& fb = cache_.features_[pool_[s]];
    const std::size_t n_bins = fb.bin_max.size();
    if (n_bins < 2) return best;

    std::vector<double> hg(n_bins, 0.0), hh(n_bins, 0.0);
    std::vector<std::size_t> hc(n_bins, 0);
    const std::uint16_t* col =
        cache_.binned_.data() + pool_[s] * cache_.n_rows_;
    for (std::size_t k = lo; k < hi; ++k) {
      const std::uint32_t p = pos_[k];
      const std::size_t b = col[rows_[p]];
      hg[b] += g_[rows_[p]];
      hh[b] += h_[rows_[p]];
      ++hc[b];
    }

    const TreeParams& prm = params();
    const std::size_t n_node = hi - lo;
    double g_left = 0.0, h_left = 0.0;
    std::size_t n_left = 0;
    for (std::size_t b = 0; b + 1 < n_bins; ++b) {
      g_left += hg[b];
      h_left += hh[b];
      n_left += hc[b];
      const std::size_t n_right = n_node - n_left;
      if (n_left < prm.min_samples_leaf || n_right < prm.min_samples_leaf) {
        continue;
      }
      const double h_right = h_sum - h_left;
      if (h_left < prm.min_child_weight || h_right < prm.min_child_weight) {
        continue;
      }
      const double g_right = g_sum - g_left;
      const double gain = 0.5 * (score(g_left, h_left, prm.lambda) +
                                 score(g_right, h_right, prm.lambda) -
                                 parent_score) -
                          prm.gamma;
      if (gain > best.gain + kGainEps || (!best.found && gain > 0.0)) {
        best.found = true;
        best.slot = s;
        best.bin = b;
        best.gain = gain;
        best.g_left = g_left;
        best.h_left = h_left;
      }
    }
    return best;
  }

  std::int32_t build(std::size_t lo, std::size_t hi, std::size_t depth,
                     double g_sum, double h_sum,
                     std::vector<double>* out_leaf_values) {
    auto& nodes = tree_.nodes_;
    const TreeParams& prm = params();

    const auto make_leaf = [&]() -> std::int32_t {
      RegressionTree::Node leaf;
      leaf.weight = leaf_weight(g_sum, h_sum, prm.lambda);
      nodes.push_back(leaf);
      if (out_leaf_values != nullptr) {
        for (std::size_t k = lo; k < hi; ++k) {
          (*out_leaf_values)[rows_[pos_[k]]] = leaf.weight;
        }
      }
      return static_cast<std::int32_t>(nodes.size() - 1);
    };

    if (depth >= prm.max_depth || hi - lo < 2 * prm.min_samples_leaf) {
      return make_leaf();
    }

    const double parent_score = score(g_sum, h_sum, prm.lambda);
    if (telemetry_ != nullptr) telemetry_->count("tree.split_search.nodes");
    std::vector<Candidate> cands(pool_.size());
    // The per-feature counter increments run on pool workers — the
    // telemetry registry is concurrency-safe, and the final total is a
    // deterministic function of the fit inputs either way.
    const auto eval = [&](std::size_t s) {
      if (telemetry_ != nullptr) {
        telemetry_->count("tree.split_search.features");
      }
      cands[s] = best_for_slot(s, lo, hi, g_sum, h_sum, parent_score);
    };
    if (pool_.size() > 1 && pool_.size() * (hi - lo) >= kParallelSplitWork) {
      ceal::parallel_apply(0, pool_.size(), eval);
    } else {
      for (std::size_t s = 0; s < pool_.size(); ++s) eval(s);
    }

    // Ordered reduction: slots ascend by feature index, so equal gains
    // resolve to the lowest feature index for any worker count.
    Candidate best;
    for (const Candidate& c : cands) {
      if (!c.found) continue;
      if (c.gain > best.gain + kGainEps || (!best.found && c.gain > 0.0)) {
        best = c;
      }
    }
    if (!best.found) return make_leaf();

    const auto split_bin = static_cast<std::uint16_t>(best.bin);
    const std::uint16_t* col =
        cache_.binned_.data() + pool_[best.slot] * cache_.n_rows_;
    const auto mid_it = std::stable_partition(
        pos_.begin() + static_cast<std::ptrdiff_t>(lo),
        pos_.begin() + static_cast<std::ptrdiff_t>(hi),
        [&](std::uint32_t p) { return col[rows_[p]] <= split_bin; });
    const auto mid =
        static_cast<std::size_t>(mid_it - pos_.begin());
    CEAL_ENSURE(mid > lo && mid < hi);

    nodes.emplace_back();
    const auto self = static_cast<std::int32_t>(nodes.size() - 1);
    const std::int32_t left =
        build(lo, mid, depth + 1, best.g_left, best.h_left, out_leaf_values);
    const std::int32_t right =
        build(mid, hi, depth + 1, g_sum - best.g_left, h_sum - best.h_left,
              out_leaf_values);
    auto& node = nodes[static_cast<std::size_t>(self)];
    node.feature = pool_[best.slot];
    node.threshold =
        cache_.features_[pool_[best.slot]].split_value[best.bin];
    node.left = left;
    node.right = right;
    return self;
  }

  RegressionTree& tree_;
  const Dataset& data_;
  std::span<const double> g_, h_;
  std::vector<std::size_t> pool_;  // searched features, ascending
  std::size_t n_;                  // training rows in this tree
  std::vector<std::size_t> rows_;  // slot k -> dataset row index
  std::vector<std::uint32_t> pos_;  // partitionable permutation of slots
  const HistogramCache& cache_;    // shared pre-binned features
  ceal::telemetry::Telemetry* telemetry_;  // nullable
};

RegressionTree::RegressionTree(TreeParams params) : params_(params) {
  CEAL_EXPECT(params_.max_depth >= 1);
  CEAL_EXPECT(params_.min_samples_leaf >= 1);
  CEAL_EXPECT(params_.lambda >= 0.0);
  CEAL_EXPECT(params_.gamma >= 0.0);
  CEAL_EXPECT(params_.colsample > 0.0 && params_.colsample <= 1.0);
  CEAL_EXPECT(params_.max_bins >= 2 && params_.max_bins <= 65536);
}

void RegressionTree::fit_gradients(const Dataset& data,
                                   std::span<const std::size_t> row_indices,
                                   std::span<const double> gradients,
                                   std::span<const double> hessians,
                                   ceal::Rng& rng,
                                   std::vector<double>* out_leaf_values,
                                   const HistogramCache* hist_cache,
                                   ceal::telemetry::Telemetry* telemetry,
                                   const QuantizedMatrix* quantized_cache,
                                   QuantizedWorkspace* quantized_ws) {
  CEAL_EXPECT(!row_indices.empty());
  CEAL_EXPECT(gradients.size() == data.size());
  CEAL_EXPECT(hessians.size() == data.size());
  CEAL_EXPECT(out_leaf_values == nullptr ||
              out_leaf_values->size() == data.size());
  nodes_.clear();

  // Column subsampling: one feature pool per tree.
  const std::size_t d = data.n_features();
  std::size_t keep = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::llround(params_.colsample *
                                               static_cast<double>(d))));
  keep = std::min(keep, d);
  std::vector<std::size_t> feature_pool;
  if (keep == d) {
    feature_pool.resize(d);
    for (std::size_t j = 0; j < d; ++j) feature_pool[j] = j;
  } else {
    feature_pool = rng.sample_without_replacement(d, keep);
  }

  if (telemetry != nullptr) telemetry->count("tree.fits");
  if (params_.method == TreeMethod::kHist) {
    CEAL_EXPECT(hist_cache == nullptr ||
                (hist_cache->n_rows() == data.size() &&
                 hist_cache->n_features() == data.n_features()));
    if (telemetry != nullptr) {
      telemetry->count(hist_cache != nullptr ? "tree.hist_cache.hit"
                                             : "tree.hist_cache.miss");
    }
    std::optional<HistogramCache> local;
    if (hist_cache == nullptr) {
      local.emplace(data, params_.max_bins);
      hist_cache = &*local;
    }
    HistTreeBuilder builder(*this, data, row_indices, gradients, hessians,
                            std::move(feature_pool), *hist_cache, telemetry);
    builder.run(out_leaf_values);
  } else if (params_.method == TreeMethod::kQuantized) {
    CEAL_EXPECT(quantized_cache == nullptr ||
                (quantized_cache->n_rows() == data.size() &&
                 quantized_cache->n_features() == data.n_features()));
    if (telemetry != nullptr) {
      telemetry->count(quantized_cache != nullptr
                           ? "tree.quantized_cache.hit"
                           : "tree.quantized_cache.miss");
    }
    std::optional<QuantizedMatrix> local;
    if (quantized_cache == nullptr) {
      local.emplace(data, params_.max_bins);
      quantized_cache = &*local;
    }
    QuantizedTreeBuilder builder(*this, row_indices, gradients, hessians,
                                 std::move(feature_pool), *quantized_cache,
                                 telemetry, quantized_ws);
    builder.run(out_leaf_values);
  } else {
    std::vector<std::size_t> rows(row_indices.begin(), row_indices.end());
    build(data, rows, gradients, hessians, feature_pool, 0, out_leaf_values,
          telemetry);
  }
  CEAL_ENSURE(!nodes_.empty());
  if (telemetry != nullptr) {
    telemetry->count("tree.nodes", nodes_.size());
    telemetry->count("tree.leaves", leaf_count());
  }
}

std::int32_t RegressionTree::build(const Dataset& data,
                                   std::vector<std::size_t>& rows,
                                   std::span<const double> g,
                                   std::span<const double> h,
                                   std::span<const std::size_t> feature_pool,
                                   std::size_t depth,
                                   std::vector<double>* out_leaf_values,
                                   ceal::telemetry::Telemetry* telemetry) {
  double g_sum = 0.0, h_sum = 0.0;
  for (const std::size_t r : rows) {
    g_sum += g[r];
    h_sum += h[r];
  }

  const auto make_leaf = [&]() -> std::int32_t {
    Node leaf;
    leaf.weight = leaf_weight(g_sum, h_sum, params_.lambda);
    nodes_.push_back(leaf);
    if (out_leaf_values != nullptr) {
      for (const std::size_t r : rows) (*out_leaf_values)[r] = leaf.weight;
    }
    return static_cast<std::int32_t>(nodes_.size() - 1);
  };

  if (depth >= params_.max_depth ||
      rows.size() < 2 * params_.min_samples_leaf) {
    return make_leaf();
  }

  const Split split =
      best_split(data, rows, g, h, feature_pool, g_sum, h_sum, telemetry);
  if (!split.found) return make_leaf();

  // Partition rows in place.
  std::vector<std::size_t> left_rows, right_rows;
  left_rows.reserve(rows.size());
  right_rows.reserve(rows.size());
  for (const std::size_t r : rows) {
    if (data.feature(r, split.feature) <= split.threshold) {
      left_rows.push_back(r);
    } else {
      right_rows.push_back(r);
    }
  }
  CEAL_ENSURE(!left_rows.empty() && !right_rows.empty());
  rows.clear();
  rows.shrink_to_fit();

  // Reserve this node's slot before children are appended.
  nodes_.emplace_back();
  const auto self = static_cast<std::int32_t>(nodes_.size() - 1);
  const std::int32_t left = build(data, left_rows, g, h, feature_pool,
                                  depth + 1, out_leaf_values, telemetry);
  const std::int32_t right = build(data, right_rows, g, h, feature_pool,
                                   depth + 1, out_leaf_values, telemetry);
  nodes_[static_cast<std::size_t>(self)].feature = split.feature;
  nodes_[static_cast<std::size_t>(self)].threshold = split.threshold;
  nodes_[static_cast<std::size_t>(self)].left = left;
  nodes_[static_cast<std::size_t>(self)].right = right;
  return self;
}

RegressionTree::Split RegressionTree::best_split(
    const Dataset& data, std::span<const std::size_t> rows,
    std::span<const double> g, std::span<const double> h,
    std::span<const std::size_t> feature_pool, double g_total,
    double h_total, ceal::telemetry::Telemetry* telemetry) const {
  const double parent_score = score(g_total, h_total, params_.lambda);
  if (telemetry != nullptr) {
    telemetry->count("tree.split_search.nodes");
    telemetry->count("tree.split_search.features", feature_pool.size());
  }

  Split best;
  std::vector<std::size_t> order(rows.begin(), rows.end());
  for (const std::size_t j : feature_pool) {
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) {
                return data.feature(a, j) < data.feature(b, j);
              });
    double g_left = 0.0, h_left = 0.0;
    for (std::size_t k = 0; k + 1 < order.size(); ++k) {
      const std::size_t r = order[k];
      g_left += g[r];
      h_left += h[r];
      const double v = data.feature(r, j);
      const double v_next = data.feature(order[k + 1], j);
      if (v == v_next) continue;  // cannot split between equal values
      const std::size_t n_left = k + 1;
      const std::size_t n_right = order.size() - n_left;
      if (n_left < params_.min_samples_leaf ||
          n_right < params_.min_samples_leaf) {
        continue;
      }
      const double h_right = h_total - h_left;
      if (h_left < params_.min_child_weight ||
          h_right < params_.min_child_weight) {
        continue;
      }
      const double g_right = g_total - g_left;
      const double gain = 0.5 * (score(g_left, h_left, params_.lambda) +
                                 score(g_right, h_right, params_.lambda) -
                                 parent_score) -
                          params_.gamma;
      if (gain > best.gain + kGainEps || (!best.found && gain > 0.0)) {
        best.found = true;
        best.feature = j;
        best.threshold = 0.5 * (v + v_next);
        best.gain = gain;
      }
    }
  }
  return best;
}

double RegressionTree::predict(std::span<const double> features) const {
  CEAL_EXPECT_MSG(is_fitted(), "predict() before fit()");
  std::size_t node = 0;
  // The root is nodes_[0] only when the tree has an internal root; when the
  // whole tree is a single leaf, nodes_ has exactly one element.
  for (;;) {
    const Node& n = nodes_[node];
    if (n.left < 0) return n.weight;
    CEAL_EXPECT(n.feature < features.size());
    node = static_cast<std::size_t>(
        features[n.feature] <= n.threshold ? n.left : n.right);
  }
}

std::size_t RegressionTree::leaf_count() const {
  std::size_t leaves = 0;
  for (const Node& n : nodes_)
    if (n.left < 0) ++leaves;
  return leaves;
}

std::size_t RegressionTree::depth_of(std::int32_t node) const {
  const Node& n = nodes_[static_cast<std::size_t>(node)];
  if (n.left < 0) return 1;
  return 1 + std::max(depth_of(n.left), depth_of(n.right));
}

std::size_t RegressionTree::depth() const {
  CEAL_EXPECT(is_fitted());
  return depth_of(0);
}

std::vector<TreeNodeData> RegressionTree::export_nodes() const {
  CEAL_EXPECT(is_fitted());
  std::vector<TreeNodeData> out;
  out.reserve(nodes_.size());
  for (const Node& n : nodes_) {
    out.push_back(TreeNodeData{n.feature, n.threshold, n.left, n.right,
                               n.weight});
  }
  return out;
}

RegressionTree RegressionTree::import_nodes(
    const std::vector<TreeNodeData>& nodes, TreeParams params) {
  CEAL_EXPECT_MSG(!nodes.empty(), "tree needs at least one node");
  const auto n = static_cast<std::int32_t>(nodes.size());
  std::vector<int> referenced(nodes.size(), 0);
  for (const TreeNodeData& d : nodes) {
    const bool leaf = d.left < 0;
    CEAL_EXPECT_MSG(leaf == (d.right < 0),
                    "node must have both children or neither");
    if (!leaf) {
      CEAL_EXPECT_MSG(d.left < n && d.right < n && d.left != d.right,
                      "child index out of range");
      ++referenced[static_cast<std::size_t>(d.left)];
      ++referenced[static_cast<std::size_t>(d.right)];
    }
  }
  CEAL_EXPECT_MSG(referenced[0] == 0, "node 0 must be the root");
  for (std::size_t i = 1; i < nodes.size(); ++i) {
    CEAL_EXPECT_MSG(referenced[i] == 1,
                    "every non-root node needs exactly one parent");
  }

  RegressionTree tree(params);
  tree.nodes_.reserve(nodes.size());
  for (const TreeNodeData& d : nodes) {
    Node node;
    node.feature = d.feature;
    node.threshold = d.threshold;
    node.left = d.left;
    node.right = d.right;
    node.weight = d.weight;
    tree.nodes_.push_back(node);
  }
  return tree;
}

}  // namespace ceal::ml
