#include "ml/tree.h"

#include <algorithm>
#include <cmath>

#include "core/error.h"

namespace ceal::ml {

namespace {

double leaf_weight(double g_sum, double h_sum, double lambda) {
  return -g_sum / (h_sum + lambda);
}

double score(double g_sum, double h_sum, double lambda) {
  return g_sum * g_sum / (h_sum + lambda);
}

}  // namespace

RegressionTree::RegressionTree(TreeParams params) : params_(params) {
  CEAL_EXPECT(params_.max_depth >= 1);
  CEAL_EXPECT(params_.min_samples_leaf >= 1);
  CEAL_EXPECT(params_.lambda >= 0.0);
  CEAL_EXPECT(params_.gamma >= 0.0);
  CEAL_EXPECT(params_.colsample > 0.0 && params_.colsample <= 1.0);
}

void RegressionTree::fit_gradients(const Dataset& data,
                                   std::span<const std::size_t> row_indices,
                                   std::span<const double> gradients,
                                   std::span<const double> hessians,
                                   ceal::Rng& rng) {
  CEAL_EXPECT(!row_indices.empty());
  CEAL_EXPECT(gradients.size() == data.size());
  CEAL_EXPECT(hessians.size() == data.size());
  nodes_.clear();

  // Column subsampling: one feature pool per tree.
  const std::size_t d = data.n_features();
  std::size_t keep = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::llround(params_.colsample *
                                               static_cast<double>(d))));
  keep = std::min(keep, d);
  std::vector<std::size_t> feature_pool;
  if (keep == d) {
    feature_pool.resize(d);
    for (std::size_t j = 0; j < d; ++j) feature_pool[j] = j;
  } else {
    feature_pool = rng.sample_without_replacement(d, keep);
  }

  std::vector<std::size_t> rows(row_indices.begin(), row_indices.end());
  build(data, rows, gradients, hessians, feature_pool, 0);
  CEAL_ENSURE(!nodes_.empty());
}

std::int32_t RegressionTree::build(const Dataset& data,
                                   std::vector<std::size_t>& rows,
                                   std::span<const double> g,
                                   std::span<const double> h,
                                   std::span<const std::size_t> feature_pool,
                                   std::size_t depth) {
  double g_sum = 0.0, h_sum = 0.0;
  for (const std::size_t r : rows) {
    g_sum += g[r];
    h_sum += h[r];
  }

  const auto make_leaf = [&]() -> std::int32_t {
    Node leaf;
    leaf.weight = leaf_weight(g_sum, h_sum, params_.lambda);
    nodes_.push_back(leaf);
    return static_cast<std::int32_t>(nodes_.size() - 1);
  };

  if (depth >= params_.max_depth ||
      rows.size() < 2 * params_.min_samples_leaf) {
    return make_leaf();
  }

  const Split split = best_split(data, rows, g, h, feature_pool);
  if (!split.found) return make_leaf();

  // Partition rows in place.
  std::vector<std::size_t> left_rows, right_rows;
  left_rows.reserve(rows.size());
  right_rows.reserve(rows.size());
  for (const std::size_t r : rows) {
    if (data.feature(r, split.feature) <= split.threshold) {
      left_rows.push_back(r);
    } else {
      right_rows.push_back(r);
    }
  }
  CEAL_ENSURE(!left_rows.empty() && !right_rows.empty());
  rows.clear();
  rows.shrink_to_fit();

  // Reserve this node's slot before children are appended.
  nodes_.emplace_back();
  const auto self = static_cast<std::int32_t>(nodes_.size() - 1);
  const std::int32_t left =
      build(data, left_rows, g, h, feature_pool, depth + 1);
  const std::int32_t right =
      build(data, right_rows, g, h, feature_pool, depth + 1);
  nodes_[static_cast<std::size_t>(self)].feature = split.feature;
  nodes_[static_cast<std::size_t>(self)].threshold = split.threshold;
  nodes_[static_cast<std::size_t>(self)].left = left;
  nodes_[static_cast<std::size_t>(self)].right = right;
  return self;
}

RegressionTree::Split RegressionTree::best_split(
    const Dataset& data, std::span<const std::size_t> rows,
    std::span<const double> g, std::span<const double> h,
    std::span<const std::size_t> feature_pool) const {
  double g_total = 0.0, h_total = 0.0;
  for (const std::size_t r : rows) {
    g_total += g[r];
    h_total += h[r];
  }
  const double parent_score = score(g_total, h_total, params_.lambda);

  Split best;
  std::vector<std::size_t> order(rows.begin(), rows.end());
  for (const std::size_t j : feature_pool) {
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) {
                return data.feature(a, j) < data.feature(b, j);
              });
    double g_left = 0.0, h_left = 0.0;
    for (std::size_t k = 0; k + 1 < order.size(); ++k) {
      const std::size_t r = order[k];
      g_left += g[r];
      h_left += h[r];
      const double v = data.feature(r, j);
      const double v_next = data.feature(order[k + 1], j);
      if (v == v_next) continue;  // cannot split between equal values
      const std::size_t n_left = k + 1;
      const std::size_t n_right = order.size() - n_left;
      if (n_left < params_.min_samples_leaf ||
          n_right < params_.min_samples_leaf) {
        continue;
      }
      const double h_right = h_total - h_left;
      if (h_left < params_.min_child_weight ||
          h_right < params_.min_child_weight) {
        continue;
      }
      const double g_right = g_total - g_left;
      const double gain = 0.5 * (score(g_left, h_left, params_.lambda) +
                                 score(g_right, h_right, params_.lambda) -
                                 parent_score) -
                          params_.gamma;
      if (gain > best.gain + 1e-12 || (!best.found && gain > 0.0)) {
        best.found = true;
        best.feature = j;
        best.threshold = 0.5 * (v + v_next);
        best.gain = gain;
      }
    }
  }
  return best;
}

double RegressionTree::predict(std::span<const double> features) const {
  CEAL_EXPECT_MSG(is_fitted(), "predict() before fit()");
  std::size_t node = 0;
  // The root is nodes_[0] only when the tree has an internal root; when the
  // whole tree is a single leaf, nodes_ has exactly one element.
  for (;;) {
    const Node& n = nodes_[node];
    if (n.left < 0) return n.weight;
    CEAL_EXPECT(n.feature < features.size());
    node = static_cast<std::size_t>(
        features[n.feature] <= n.threshold ? n.left : n.right);
  }
}

std::size_t RegressionTree::leaf_count() const {
  std::size_t leaves = 0;
  for (const Node& n : nodes_)
    if (n.left < 0) ++leaves;
  return leaves;
}

std::size_t RegressionTree::depth_of(std::int32_t node) const {
  const Node& n = nodes_[static_cast<std::size_t>(node)];
  if (n.left < 0) return 1;
  return 1 + std::max(depth_of(n.left), depth_of(n.right));
}

std::size_t RegressionTree::depth() const {
  CEAL_EXPECT(is_fitted());
  return depth_of(0);
}

std::vector<TreeNodeData> RegressionTree::export_nodes() const {
  CEAL_EXPECT(is_fitted());
  std::vector<TreeNodeData> out;
  out.reserve(nodes_.size());
  for (const Node& n : nodes_) {
    out.push_back(TreeNodeData{n.feature, n.threshold, n.left, n.right,
                               n.weight});
  }
  return out;
}

RegressionTree RegressionTree::import_nodes(
    const std::vector<TreeNodeData>& nodes, TreeParams params) {
  CEAL_EXPECT_MSG(!nodes.empty(), "tree needs at least one node");
  const auto n = static_cast<std::int32_t>(nodes.size());
  std::vector<int> referenced(nodes.size(), 0);
  for (const TreeNodeData& d : nodes) {
    const bool leaf = d.left < 0;
    CEAL_EXPECT_MSG(leaf == (d.right < 0),
                    "node must have both children or neither");
    if (!leaf) {
      CEAL_EXPECT_MSG(d.left < n && d.right < n && d.left != d.right,
                      "child index out of range");
      ++referenced[static_cast<std::size_t>(d.left)];
      ++referenced[static_cast<std::size_t>(d.right)];
    }
  }
  CEAL_EXPECT_MSG(referenced[0] == 0, "node 0 must be the root");
  for (std::size_t i = 1; i < nodes.size(); ++i) {
    CEAL_EXPECT_MSG(referenced[i] == 1,
                    "every non-root node needs exactly one parent");
  }

  RegressionTree tree(params);
  tree.nodes_.reserve(nodes.size());
  for (const TreeNodeData& d : nodes) {
    Node node;
    node.feature = d.feature;
    node.threshold = d.threshold;
    node.left = d.left;
    node.right = d.right;
    node.weight = d.weight;
    tree.nodes_.push_back(node);
  }
  return tree;
}

}  // namespace ceal::ml
