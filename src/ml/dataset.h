// Row-major tabular dataset: feature rows plus one regression target each.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace ceal::ml {

class Dataset {
 public:
  /// Empty dataset for rows of `n_features` features. n_features > 0.
  explicit Dataset(std::size_t n_features);

  std::size_t n_features() const { return n_features_; }
  std::size_t size() const { return targets_.size(); }
  bool empty() const { return targets_.empty(); }

  /// Appends one example. `features.size()` must equal n_features().
  void add(std::span<const double> features, double target);

  /// Pre-allocates storage for `n_rows` total rows so a known-size
  /// add() loop performs one allocation instead of log2(n) regrowths.
  void reserve(std::size_t n_rows);

  /// Feature row i as a span (valid until the next mutation).
  std::span<const double> row(std::size_t i) const;

  double target(std::size_t i) const;
  std::span<const double> targets() const { return targets_; }

  /// Feature j of row i.
  double feature(std::size_t i, std::size_t j) const;

  /// Appends all examples from `other` (same width).
  void append(const Dataset& other);

  /// New dataset with the rows at `indices` (duplicates allowed).
  Dataset subset(std::span<const std::size_t> indices) const;

 private:
  std::size_t n_features_;
  std::vector<double> x_;        // row-major, size() * n_features_
  std::vector<double> targets_;  // one per row
};

/// Row-major feature matrix without targets: the cached featurization of
/// a candidate pool, scored many times per tuning run. Rows can be
/// written concurrently (one writer per row) once the shape is fixed.
class FeatureMatrix {
 public:
  /// Matrix of `n_rows` zero-initialised rows of `n_features` each.
  /// n_features > 0.
  FeatureMatrix(std::size_t n_features, std::size_t n_rows);

  std::size_t n_features() const { return n_features_; }
  std::size_t size() const { return n_rows_; }
  bool empty() const { return n_rows_ == 0; }

  std::span<const double> row(std::size_t i) const;

  /// Writable row i, for filling the matrix in place (possibly from
  /// several threads, each owning disjoint rows).
  std::span<double> mutable_row(std::size_t i);

  /// Overwrites row i. `features.size()` must equal n_features().
  void set_row(std::size_t i, std::span<const double> features);

 private:
  std::size_t n_features_;
  std::size_t n_rows_;
  std::vector<double> x_;  // row-major, n_rows_ * n_features_
};

}  // namespace ceal::ml
