// k-nearest-neighbour regressor over min-max-normalised features.
//
// Used by the GEIST baseline's parameter-graph neighbourhoods and offered
// as the KNN ensemble ingredient discussed in related work (§8.2).
#pragma once

#include <vector>

#include "ml/model.h"

namespace ceal::ml {

struct KnnParams {
  std::size_t k = 5;
  /// true: inverse-distance weighting; false: plain average.
  bool distance_weighted = true;
};

class KnnRegressor final : public Regressor {
 public:
  explicit KnnRegressor(KnnParams params = {});

  const KnnParams& params() const { return params_; }

  void fit(const Dataset& data, ceal::Rng& rng) override;
  double predict(std::span<const double> features) const override;
  bool is_fitted() const override { return fitted_; }

 private:
  double distance(std::span<const double> a, std::span<const double> b) const;

  KnnParams params_;
  Dataset train_{1};
  std::vector<double> lo_, hi_;  // per-feature normalisation bounds
  bool fitted_ = false;
};

}  // namespace ceal::ml
