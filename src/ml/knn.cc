#include "ml/knn.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/error.h"

namespace ceal::ml {

KnnRegressor::KnnRegressor(KnnParams params) : params_(params) {
  CEAL_EXPECT(params_.k >= 1);
}

void KnnRegressor::fit(const Dataset& data, ceal::Rng& /*rng*/) {
  CEAL_EXPECT_MSG(!data.empty(), "cannot fit on an empty dataset");
  train_ = data;
  const std::size_t d = data.n_features();
  lo_.assign(d, std::numeric_limits<double>::infinity());
  hi_.assign(d, -std::numeric_limits<double>::infinity());
  for (std::size_t i = 0; i < data.size(); ++i) {
    for (std::size_t j = 0; j < d; ++j) {
      lo_[j] = std::min(lo_[j], data.feature(i, j));
      hi_[j] = std::max(hi_[j], data.feature(i, j));
    }
  }
  fitted_ = true;
}

double KnnRegressor::distance(std::span<const double> a,
                              std::span<const double> b) const {
  double acc = 0.0;
  for (std::size_t j = 0; j < a.size(); ++j) {
    const double span = hi_[j] - lo_[j];
    const double scale = span > 0.0 ? span : 1.0;
    const double d = (a[j] - b[j]) / scale;
    acc += d * d;
  }
  return std::sqrt(acc);
}

double KnnRegressor::predict(std::span<const double> features) const {
  CEAL_EXPECT_MSG(fitted_, "predict() before fit()");
  CEAL_EXPECT(features.size() == train_.n_features());

  const std::size_t n = train_.size();
  const std::size_t k = std::min(params_.k, n);
  std::vector<std::pair<double, std::size_t>> dist(n);
  for (std::size_t i = 0; i < n; ++i) {
    dist[i] = {distance(features, train_.row(i)), i};
  }
  std::partial_sort(dist.begin(),
                    dist.begin() + static_cast<std::ptrdiff_t>(k),
                    dist.end());

  if (!params_.distance_weighted) {
    double sum = 0.0;
    for (std::size_t i = 0; i < k; ++i) sum += train_.target(dist[i].second);
    return sum / static_cast<double>(k);
  }
  // Inverse-distance weights; an exact match dominates via the epsilon.
  double wsum = 0.0, vsum = 0.0;
  for (std::size_t i = 0; i < k; ++i) {
    const double w = 1.0 / (dist[i].first + 1e-9);
    wsum += w;
    vsum += w * train_.target(dist[i].second);
  }
  return vsum / wsum;
}

}  // namespace ceal::ml
