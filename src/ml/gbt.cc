#include "ml/gbt.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>

#include "core/error.h"
#include "core/parallel.h"
#include "core/stats.h"
#include "core/telemetry.h"
#include "ml/compiled_forest.h"
#include "ml/quantized.h"

namespace ceal::ml {

GradientBoostedTrees::GradientBoostedTrees(GbtParams params)
    : params_(params) {
  CEAL_EXPECT(params_.n_rounds >= 1);
  CEAL_EXPECT(params_.learning_rate > 0.0 && params_.learning_rate <= 1.0);
  CEAL_EXPECT(params_.subsample > 0.0 && params_.subsample <= 1.0);
}

GbtParams GradientBoostedTrees::surrogate_defaults() {
  GbtParams p;
  p.n_rounds = 150;
  p.learning_rate = 0.10;
  p.subsample = 1.0;
  p.tree.max_depth = 5;
  // Tiny sample budgets (tens of runs) often contain a single extreme
  // outlier; leaves must be allowed to isolate it or its residual bleeds
  // into the predictions of good configurations.
  p.tree.min_samples_leaf = 1;
  p.tree.min_child_weight = 0.25;
  p.tree.lambda = 1.0;
  p.tree.colsample = 1.0;
  return p;
}

void GradientBoostedTrees::fit(const Dataset& data, ceal::Rng& rng) {
  CEAL_EXPECT_MSG(!data.empty(), "cannot fit on an empty dataset");
  telemetry::ScopedHistogramTimer fit_timer(telemetry_, "timing.gbt.fit_s");
  // Hard guard: a single NaN target poisons every gradient (and a NaN
  // feature corrupts split search), so reject them up front instead of
  // training a silently broken model.
  for (std::size_t i = 0; i < data.size(); ++i) {
    CEAL_EXPECT_MSG(std::isfinite(data.target(i)),
                    "non-finite training target");
    for (const double f : data.row(i)) {
      CEAL_EXPECT_MSG(std::isfinite(f), "non-finite training feature");
    }
  }
  trees_.clear();
  compiled_.reset();
  base_score_ = ceal::mean(data.targets());

  const std::size_t n = data.size();
  std::vector<double> pred(n, base_score_);
  std::vector<double> grad(n), hess(n, 1.0);

  const auto rows_per_round = std::max<std::size_t>(
      1, static_cast<std::size_t>(
             std::llround(params_.subsample * static_cast<double>(n))));

  // Per-round predictions update incrementally: the tree builder reports
  // the fitted leaf weight of every row it trained on (identical to
  // re-descending the tree for that row), so only rows left out by
  // subsampling need a real descent.
  constexpr double kUntrained = std::numeric_limits<double>::quiet_NaN();
  std::vector<double> leaf_values(n);

  // Feature binning depends only on the data, so the histogram and
  // quantized trainers bin once here and every round reuses the cache.
  std::optional<HistogramCache> hist_cache;
  std::optional<QuantizedMatrix> quantized_cache;
  // Tree-builder scratch (histogram buffers, reciprocal table) also
  // survives across rounds; each round's builder reuses it in place.
  std::optional<QuantizedWorkspace> quantized_ws;
  if (params_.tree.method == TreeMethod::kHist) {
    hist_cache.emplace(data, params_.tree.max_bins);
  } else if (params_.tree.method == TreeMethod::kQuantized) {
    telemetry::ScopedCausalSpan span(telemetry_, "gbt.quantize");
    quantized_cache.emplace(data, params_.tree.max_bins);
    quantized_ws.emplace();
  }

  if (telemetry_ != nullptr) telemetry_->count("gbt.fits");
  trees_.reserve(params_.n_rounds);
  for (std::size_t round = 0; round < params_.n_rounds; ++round) {
    telemetry::ScopedSpan round_span(telemetry_, "gbt.round");
    if (telemetry_ != nullptr) telemetry_->count("gbt.rounds");
    for (std::size_t i = 0; i < n; ++i) grad[i] = pred[i] - data.target(i);

    std::vector<std::size_t> rows;
    if (rows_per_round == n) {
      rows.resize(n);
      for (std::size_t i = 0; i < n; ++i) rows[i] = i;
    } else {
      rows = rng.sample_without_replacement(n, rows_per_round);
    }

    RegressionTree tree(params_.tree);
    if (rows_per_round != n) {
      std::fill(leaf_values.begin(), leaf_values.end(), kUntrained);
    }
    tree.fit_gradients(data, rows, grad, hess, rng, &leaf_values,
                       hist_cache ? &*hist_cache : nullptr, telemetry_,
                       quantized_cache ? &*quantized_cache : nullptr,
                       quantized_ws ? &*quantized_ws : nullptr);
    for (std::size_t i = 0; i < n; ++i) {
      const double value = std::isnan(leaf_values[i])
                               ? tree.predict(data.row(i))
                               : leaf_values[i];
      pred[i] += params_.learning_rate * value;
    }
    trees_.push_back(std::move(tree));
  }
  fitted_ = true;
  if (params_.compile_predictor) {
    compiled_ = std::make_shared<const CompiledForest>(
        CompiledForest::compile(*this));
  }
}

const std::vector<RegressionTree>& GradientBoostedTrees::trees() const {
  CEAL_EXPECT_MSG(fitted_, "trees() before fit()");
  return trees_;
}

GradientBoostedTrees GradientBoostedTrees::from_parts(
    GbtParams params, double base_score,
    std::vector<RegressionTree> trees) {
  CEAL_EXPECT_MSG(!trees.empty(), "model needs at least one tree");
  for (const auto& tree : trees) {
    CEAL_EXPECT_MSG(tree.is_fitted(), "all member trees must be fitted");
  }
  GradientBoostedTrees model(params);
  model.base_score_ = base_score;
  model.trees_ = std::move(trees);
  model.fitted_ = true;
  if (params.compile_predictor) {
    model.compiled_ = std::make_shared<const CompiledForest>(
        CompiledForest::compile(model));
  }
  return model;
}

double GradientBoostedTrees::predict(std::span<const double> features) const {
  CEAL_EXPECT_MSG(fitted_, "predict() before fit()");
  if (compiled_ != nullptr) return compiled_->predict(features);
  double out = base_score_;
  for (const auto& tree : trees_) {
    out += params_.learning_rate * tree.predict(features);
  }
  return out;
}

namespace {

/// Rows x trees below which the pool dispatch overhead outweighs the
/// parallel win.
constexpr std::size_t kParallelPredictWork = 1 << 14;

template <typename RowOf>
std::vector<double> predict_rows(const GradientBoostedTrees& model,
                                 std::size_t n, std::size_t n_trees,
                                 const RowOf& row_of) {
  std::vector<double> out(n);
  const auto fill = [&](std::size_t i) { out[i] = model.predict(row_of(i)); };
  if (n > 1 && n * n_trees >= kParallelPredictWork) {
    ceal::parallel_apply(0, n, fill);
  } else {
    for (std::size_t i = 0; i < n; ++i) fill(i);
  }
  return out;
}

}  // namespace

std::vector<double> GradientBoostedTrees::predict_all(
    const Dataset& data) const {
  CEAL_EXPECT_MSG(fitted_, "predict_all() before fit()");
  telemetry::ScopedCausalSpan span(telemetry_, "gbt.predict");
  telemetry::ScopedHistogramTimer predict_timer(telemetry_,
                                                "timing.gbt.predict_s");
  if (telemetry_ != nullptr) {
    telemetry_->count("gbt.predict.batches");
    telemetry_->count("gbt.predict.rows", data.size());
  }
  if (compiled_ != nullptr) {
    return compiled_->predict_dataset(data, telemetry_);
  }
  return predict_rows(*this, data.size(), trees_.size(),
                      [&](std::size_t i) { return data.row(i); });
}

std::vector<double> GradientBoostedTrees::predict_matrix(
    const FeatureMatrix& rows) const {
  CEAL_EXPECT_MSG(fitted_, "predict_matrix() before fit()");
  telemetry::ScopedCausalSpan span(telemetry_, "gbt.predict");
  telemetry::ScopedHistogramTimer predict_timer(telemetry_,
                                                "timing.gbt.predict_s");
  if (telemetry_ != nullptr) {
    telemetry_->count("gbt.predict.batches");
    telemetry_->count("gbt.predict.rows", rows.size());
  }
  if (compiled_ != nullptr) {
    return compiled_->predict_matrix(rows, telemetry_);
  }
  return predict_rows(*this, rows.size(), trees_.size(),
                      [&](std::size_t i) { return rows.row(i); });
}

}  // namespace ceal::ml
