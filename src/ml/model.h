// Common interface for the regression models used as surrogates.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "core/rng.h"
#include "ml/dataset.h"

namespace ceal::ml {

class Regressor {
 public:
  virtual ~Regressor() = default;

  /// Fits the model from scratch on `data`. Any previous fit is discarded.
  /// `rng` drives stochastic elements (subsampling, bagging).
  virtual void fit(const Dataset& data, ceal::Rng& rng) = 0;

  /// Predicts one example. Requires a prior successful fit().
  virtual double predict(std::span<const double> features) const = 0;

  /// True once fit() has completed.
  virtual bool is_fitted() const = 0;

  /// Predictions for every row of `data`. Implementations may fan rows
  /// out across threads but must return exactly what row-by-row
  /// predict() calls would.
  virtual std::vector<double> predict_all(const Dataset& data) const {
    std::vector<double> out(data.size());
    for (std::size_t i = 0; i < data.size(); ++i) out[i] = predict(data.row(i));
    return out;
  }
};

}  // namespace ceal::ml
