// Plain-text persistence for trained models.
//
// A tuned surrogate is the deliverable of an expensive auto-tuning
// session, so it must outlive the process. The format is a line-oriented
// text table (stable, diffable, locale-independent via std::to_chars-free
// full-precision hex doubles):
//
//   gbt v1 <n_features> <n_trees> <learning_rate(hex)> <base_score(hex)>
//   tree <n_nodes>
//   node <feature> <threshold(hex)> <left> <right> <weight(hex)>
//   ...
//
// v2 adds one optional line directly after the header, emitted only when
// the model departs from the v1 defaults (so default-path files stay
// byte-identical v1):
//
//   params <exact|hist|quantized> <max_bins> <compiled 0|1>
//
// The loader accepts both versions; a v2 params line reconstructs the
// training method and recompiles the flat predictor on load.
//
// Only GradientBoostedTrees is serialisable — it is the model every
// tuner ships. Trees expose their node tables through
// RegressionTree::export_nodes()/import_nodes().
#pragma once

#include <iosfwd>
#include <string>

#include "ml/gbt.h"

namespace ceal::ml {

/// Writes `model` (which must be fitted) to `os`. Throws on I/O failure.
void save_gbt(const GradientBoostedTrees& model, std::ostream& os,
              std::size_t n_features);

/// Reads a model previously written by save_gbt. Throws
/// ceal::PreconditionError on malformed input. Returns the model and the
/// feature count it was trained for.
struct LoadedGbt {
  GradientBoostedTrees model;
  std::size_t n_features = 0;
};
LoadedGbt load_gbt(std::istream& is);

/// Convenience file wrappers.
void save_gbt_file(const GradientBoostedTrees& model,
                   const std::string& path, std::size_t n_features);
LoadedGbt load_gbt_file(const std::string& path);

}  // namespace ceal::ml
