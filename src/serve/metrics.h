// Metric exposition for the serve layer: the JSON snapshot behind the
// server.metrics op and the daemon's --metrics-export file, plus a
// Prometheus text renderer and a strict validator for it.
//
// Three pieces:
//  * telemetry_sections_json — every counter/gauge/span/histogram in a
//    Telemetry registry as one JSON object. Histogram entries carry the
//    exact count/sum/min/max, the p50/p90/p99 derived via the shared
//    ceal::histogram_quantile helper (so offline consumers computing
//    quantiles from the bucket array agree byte-for-byte), and the
//    sparse bucket array as [le, count] pairs (overflow le is the
//    string "+Inf").
//  * to_prometheus — renders a server.metrics response (or export
//    snapshot) in Prometheus text exposition format 0.0.4. Names are
//    sanitised and prefixed with "ceal_"; histograms become the
//    conventional cumulative _bucket{le=...}/_sum/_count family.
//  * validate_prometheus — a strict line-oriented parser for the
//    renderer's output, used by the tier-1 gate and `ceal_top
//    --check-prom`. Throws ProtocolError on any malformed line or an
//    incoherent histogram (non-cumulative buckets, +Inf != _count).
#pragma once

#include <cstddef>
#include <string>

#include "core/json.h"
#include "core/telemetry.h"
#include "serve/protocol.h"

namespace ceal::serve {

/// Snapshot of every accumulator in `telemetry` as
/// {"counters":{...},"gauges":{...},"spans":{...},"histograms":{...}}.
/// Null telemetry yields the four sections empty. Span values are
/// {"count":N,"total_s":x}; histogram values are
/// {"count","sum","min","max","p50","p90","p99","buckets":[[le,n],...]}.
json::Value telemetry_sections_json(const telemetry::Telemetry* telemetry);

/// Renders a metrics object (the shape ServerCore::metrics_json
/// returns, or any subset with the same section names) as Prometheus
/// text exposition format. Deterministic: output bytes are a pure
/// function of the input document.
std::string to_prometheus(const json::Value& metrics);

/// Strictly validates Prometheus text exposition output: every
/// non-comment line must parse as `name{labels} value`, every TYPE
/// comment must precede its family, and each histogram family must have
/// cumulative bucket counts ending in an +Inf bucket that equals its
/// _count sample. Returns the number of samples. Throws ProtocolError
/// with a line number on the first violation.
std::size_t validate_prometheus(const std::string& text);

}  // namespace ceal::serve
