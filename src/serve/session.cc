#include "serve/session.h"

#include "measure/subprocess.h"
#include "tuner/active_learning.h"
#include "tuner/alph.h"
#include "tuner/bayes_opt.h"
#include "tuner/ceal.h"
#include "tuner/geist.h"
#include "tuner/objective.h"
#include "tuner/random_search.h"
#include "tuner/result_io.h"

namespace ceal::serve {

namespace {

// The same name tables as tools/common.h, but throwing instead of
// std::exit — a daemon must survive a bad request. Names were already
// validated by the protocol layer, so the terminal throws are
// unreachable belt-and-braces.
sim::Workload workload_by_name(const std::string& name) {
  if (name == "LV") return sim::make_lv();
  if (name == "HS") return sim::make_hs();
  if (name == "GP") return sim::make_gp();
  throw ProtocolError("request:workflow: unknown workflow '" + name + "'");
}

tuner::Objective objective_by_name(const std::string& name) {
  if (name == "exec") return tuner::Objective::kExecTime;
  if (name == "comp") return tuner::Objective::kComputerTime;
  throw ProtocolError("request:objective: unknown objective '" + name + "'");
}

std::unique_ptr<tuner::AutoTuner> algorithm_by_name(const std::string& name) {
  if (name == "CEAL") return std::make_unique<tuner::Ceal>();
  if (name == "AL") return std::make_unique<tuner::ActiveLearning>();
  if (name == "RS") return std::make_unique<tuner::RandomSearch>();
  if (name == "GEIST") return std::make_unique<tuner::Geist>();
  if (name == "ALpH") return std::make_unique<tuner::Alph>();
  if (name == "BO") return std::make_unique<tuner::BayesOpt>();
  if (name == "BO-CEAL") {
    tuner::BayesOptParams params;
    params.bootstrap_with_low_fidelity = true;
    return std::make_unique<tuner::BayesOpt>(params);
  }
  throw ProtocolError("request:algorithm: unknown algorithm '" + name + "'");
}

}  // namespace

const char* session_state_name(SessionState state) {
  switch (state) {
    case SessionState::kRunning:
      return "running";
    case SessionState::kDone:
      return "done";
    case SessionState::kCancelled:
      return "cancelled";
    case SessionState::kFailed:
      return "failed";
  }
  return "unknown";
}

ServeSession::ServeSession(std::string id, CreateParams params,
                           const std::string& journal_path, bool resume,
                           const std::string& trace_path, bool trace_fsync,
                           std::size_t flight_recorder_capacity,
                           const MeasureConfig& measure)
    : id_(std::move(id)),
      params_(std::move(params)),
      workload_(workload_by_name(params_.workflow)),
      pool_(tuner::measure_pool(workload_.workflow, params_.pool_size,
                                params_.pool_seed)),
      comps_(tuner::measure_components(workload_.workflow,
                                       params_.component_samples,
                                       params_.pool_seed + 1)),
      rng_(params_.seed) {
  if (!trace_path.empty()) {
    trace_sink_ = std::make_unique<telemetry::JsonlTraceSink>(trace_path,
                                                              trace_fsync);
  }
  if (trace_sink_ != nullptr || flight_recorder_capacity > 0) {
    telemetry_ = std::make_unique<telemetry::Telemetry>(trace_sink_.get());
    // Span ids derive from the session seed, so the trace of a seeded
    // session is byte-identical (timing stripped) across thread counts
    // and across restarts.
    telemetry_->seed_trace(params_.seed);
    if (flight_recorder_capacity > 0) {
      recorder_ = std::make_unique<telemetry::FlightRecorder>(
          flight_recorder_capacity);
      telemetry_->set_flight_recorder(recorder_.get());
      telemetry::register_crash_recorder(recorder_.get(), "session:" + id_);
    }
  }
  // Measurement backend (daemon-wide MeasureConfig; cannot change any
  // result or journal byte — see session.h). Built before the stepper
  // so problem_.measure is set when the first batch runs; resume works
  // unchanged because replayed measurements never reach a backend.
  if (measure.backend == "subprocess") {
    ceal::measure::SubprocessOptions mopts;
    mopts.workers = std::max<std::size_t>(1, measure.workers);
    mopts.worker_bin = measure.worker_bin;
    mopts.hedge_after_s = measure.hedge_after_s;
    mopts.hang_after_s = measure.hang_after_s;
    mopts.degrade_after = std::max<std::size_t>(1, measure.degrade_after);
    mopts.seed = params_.seed;
    mopts.worker_args = {"--workflow", params_.workflow,
                         "--pool-size", std::to_string(params_.pool_size),
                         "--pool-seed", std::to_string(params_.pool_seed)};
    measure_backend_ = std::make_unique<ceal::measure::SubprocessBackend>(
        pool_, std::move(mopts), telemetry_.get());
  } else if (measure.backend == "inproc") {
    measure_backend_ = std::make_unique<ceal::measure::InProcessBackend>(
        pool_);
  } else if (!measure.backend.empty()) {
    throw ProtocolError("measure: unknown backend '" + measure.backend +
                        "' (expected inproc|subprocess)");
  }
  if (!journal_path.empty()) {
    checkpoint_ = std::make_unique<tuner::CheckpointSession>(
        journal_path, resume ? tuner::CheckpointSession::Mode::kResume
                             : tuner::CheckpointSession::Mode::kStart);
    if (telemetry_ != nullptr) checkpoint_->set_telemetry(telemetry_.get());
  }
  algorithm_ = algorithm_by_name(params_.algorithm);
  problem_.workload = &workload_;
  problem_.objective = objective_by_name(params_.objective);
  problem_.pool = &pool_;
  problem_.component_samples = &comps_;
  problem_.components_are_history = params_.history;
  problem_.measurement.faults.fail_prob = params_.fault_rate;
  problem_.measurement.faults.outlier_prob = params_.outlier_rate;
  problem_.measurement.faults.deadline_s = params_.deadline_s;
  problem_.measurement.max_attempts = params_.max_attempts;
  problem_.measurement.faults.validate();
  problem_.telemetry = telemetry_.get();
  problem_.measure = measure_backend_.get();
  // Writes (or, on resume, validates) the session header immediately;
  // journaled records then replay as the session is stepped.
  stepper_ = algorithm_->make_stepper(problem_, params_.budget, rng_,
                                      checkpoint_.get());
}

void ServeSession::step(std::size_t n) {
  std::lock_guard lock(mutex_);
  age_steps_ += n;
  {
    // The root span of this request slice: every tuner.step /
    // collector.measure / surrogate span below parents under it.
    telemetry::ScopedCausalSpan span(telemetry_.get(), "serve.step");
    for (std::size_t k = 0; k < n; ++k) {
      if (state() != SessionState::kRunning) break;
      try {
        if (!stepper_->step())
          state_.store(SessionState::kDone, std::memory_order_release);
      } catch (const std::exception& e) {
        error_ = e.what();
        state_.store(SessionState::kFailed, std::memory_order_release);
        break;
      }
    }
  }
  // Flush after every slice so the on-disk trace always ends at a
  // complete line — the crash-dump gate matches its tail against the
  // flight recorder.
  if (trace_sink_ != nullptr) trace_sink_->flush();
}

void ServeSession::cancel() {
  std::lock_guard lock(mutex_);
  if (state() != SessionState::kRunning) {
    throw ProtocolError("session " + id_ + ": cannot cancel a " +
                        std::string(session_state_name(state())) +
                        " session");
  }
  state_.store(SessionState::kCancelled, std::memory_order_release);
}

json::Value ServeSession::status_json() const {
  std::lock_guard lock(mutex_);
  json::Value status = json::Value::object();
  status.set("ok", json::Value::boolean(true));
  status.set("id", json::Value::string(id_));
  status.set("state", json::Value::string(session_state_name(state())));
  status.set("algorithm", json::Value::string(params_.algorithm));
  status.set("workflow", json::Value::string(params_.workflow));
  status.set("objective", json::Value::string(params_.objective));
  status.set("budget", json::Value::number(
                           static_cast<std::uint64_t>(params_.budget)));
  status.set("seed", json::Value::number(params_.seed));
  status.set("steps", json::Value::number(static_cast<std::uint64_t>(
                          stepper_->steps_taken())));
  if (state() == SessionState::kDone) {
    const tuner::TuneResult& result = stepper_->result();
    status.set("runs_used", json::Value::number(static_cast<std::uint64_t>(
                                result.runs_used)));
    status.set("measured", json::Value::number(static_cast<std::uint64_t>(
                               result.measured_indices.size())));
    status.set("failed_runs", json::Value::number(static_cast<std::uint64_t>(
                                  result.failed_runs)));
    status.set("best_predicted_index",
               json::Value::number(static_cast<std::uint64_t>(
                   result.best_predicted_index)));
    status.set("best_measured_index",
               json::Value::number(static_cast<std::uint64_t>(
                   result.best_measured_index)));
    status.set("cost_exec_s",
               json::Value::string(tuner::hex_double(result.cost_exec_s)));
    status.set("cost_comp_ch",
               json::Value::string(tuner::hex_double(result.cost_comp_ch)));
  }
  if (state() == SessionState::kFailed)
    status.set("error", json::Value::string(error_));
  return status;
}

void ServeSession::save_result(const std::string& path) const {
  std::lock_guard lock(mutex_);
  if (state() != SessionState::kDone) {
    throw ProtocolError("session " + id_ + ": no result yet (state " +
                        std::string(session_state_name(state())) + ")");
  }
  tuner::save_result_csv(path, stepper_->result(), algorithm_->name(),
                         workload_.workflow.name(),
                         tuner::objective_name(problem_.objective),
                         params_.budget, params_.seed);
}

json::Value ServeSession::metrics_json() const {
  std::lock_guard lock(mutex_);
  json::Value m = json::Value::object();
  m.set("id", json::Value::string(id_));
  m.set("state", json::Value::string(session_state_name(state())));
  m.set("algorithm", json::Value::string(params_.algorithm));
  m.set("workflow", json::Value::string(params_.workflow));
  m.set("objective", json::Value::string(params_.objective));
  m.set("budget",
        json::Value::number(static_cast<std::uint64_t>(params_.budget)));
  m.set("steps", json::Value::number(
                     static_cast<std::uint64_t>(stepper_->steps_taken())));
  m.set("session_age_steps", json::Value::number(age_steps_));
  if (recorder_ != nullptr) {
    m.set("recorder_events", json::Value::number(
                                 static_cast<std::uint64_t>(
                                     recorder_->size())));
    m.set("recorder_dropped", json::Value::number(recorder_->dropped()));
  }
  const tuner::TunerProgress progress = stepper_->progress();
  m.set("budget_used", json::Value::number(static_cast<std::uint64_t>(
                           progress.budget_used)));
  m.set("budget_remaining", json::Value::number(static_cast<std::uint64_t>(
                                progress.budget_remaining)));
  if (progress.has_best)
    m.set("best_value", json::Value::number(progress.best_value));
  if (progress.model != nullptr)
    m.set("model", json::Value::string(progress.model));
  if (progress.has_recalls) {
    m.set("recall_low", json::Value::number(progress.recall_low));
    m.set("recall_high", json::Value::number(progress.recall_high));
  }
  if (checkpoint_ != nullptr) {
    m.set("checkpoint_records",
          json::Value::number(checkpoint_->appended_records()));
    m.set("checkpoint_replay_pending",
          json::Value::number(
              static_cast<std::uint64_t>(checkpoint_->replay_pending())));
  }
  if (state() == SessionState::kFailed)
    m.set("error", json::Value::string(error_));
  return m;
}

void ServeSession::flush_trace() {
  std::lock_guard lock(mutex_);
  if (trace_sink_ != nullptr) trace_sink_->flush();
}

}  // namespace ceal::serve
