// The ceal_serve daemon core: many concurrent tuning sessions
// multiplexed over newline-delimited JSON (serve/protocol.h).
//
// Two layers:
//  * ServerCore — the session registry and request handler. handle()
//    never throws; every failure becomes {"ok":false,"error":"..."}.
//    Same-session requests must be serialised by the caller (sessions
//    are strand-serialised by serve_stream; a single-threaded caller —
//    the tests — just calls handle_line in order).
//  * serve_stream — the transport loop: reads one request per line,
//    shards session work over a ThreadPool (one logical strand per
//    session id keeps same-session requests in request order), and
//    writes responses strictly in request order. Responses carry no
//    wall-clock values, so the output stream is byte-identical across
//    thread counts (tests/serve/test_session_matrix.cc).
//
// Durability: with a checkpoint directory configured every session gets
// a manifest ("<id>.session.json") and a write-ahead journal
// ("<id>.cealj", tuner/checkpoint.h). A daemon SIGKILLed at any journal
// record boundary restarts with --resume, rebuilds each session from
// its manifest, replays the journal while the client steps, and
// finishes with a bitwise-identical result (tests/integration/
// test_serve_kill_resume.cc; tools/run_tier1.sh kills a real daemon).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "serve/session.h"

namespace ceal::serve {

struct ServerOptions {
  /// Session manifests + journals live here; empty disables durability.
  std::string checkpoint_dir;
  /// Per-session trace sinks ("<id>.trace.jsonl"); empty disables.
  std::string trace_dir;
  /// fsync per-session trace sinks on flush, so a SIGKILL after a
  /// flushed step cannot lose acknowledged trace lines.
  bool trace_fsync = false;
  /// Per-session flight-recorder capacity in events (0 disables): every
  /// session keeps a ring of its most recent serialized events for
  /// server.dump and crash dumps (core/flight_recorder.h).
  std::size_t flight_recorder = 0;
  /// Server metrics (serve.* counters, serve.sessions_active gauge,
  /// serve.step span). Not owned; may be null.
  telemetry::Telemetry* telemetry = nullptr;
  /// Measurement-plane selection applied to every session this daemon
  /// creates or resumes (session.h). Daemon configuration, not session
  /// identity: results and journals are byte-identical under any
  /// backend, so a journal written under one backend resumes under
  /// another.
  MeasureConfig measure;
};

class ServerCore {
 public:
  explicit ServerCore(ServerOptions options);

  /// Rebuilds every session found in checkpoint_dir (sorted manifest
  /// order) for a restarted daemon; journals replay as the client
  /// steps. Returns the number of sessions resumed. Throws on a corrupt
  /// manifest or journal — a daemon must refuse to start on bad durable
  /// state rather than silently fork sessions.
  std::size_t resume_sessions();

  /// Parses and handles one request line; never throws.
  std::string handle_line(const std::string& line);

  /// Handles one parsed request; never throws. Thread-safe for
  /// different sessions; same-session calls must be serialised.
  json::Value handle(const Request& request);

  /// Counts a request that failed before dispatch (parse error) and
  /// returns its error response. serve_stream uses this for lines that
  /// never became a Request.
  json::Value handle_error(const std::string& message);

  std::size_t session_count() const;
  json::Value stats_json() const;

  /// The server.metrics response: the server block of stats_json under
  /// "server" (with the per-op request/error breakdown), every
  /// telemetry counter/gauge/span/histogram snapshot, and one
  /// per-session live-progress object (sorted by id). Unlike every
  /// other response this one carries wall-clock values (span totals,
  /// timing.* histograms) — consumers needing the byte-stable subset
  /// drop them (`ceal_top --deterministic`). Safe to call from outside
  /// the request path (the periodic metrics exporter does): sessions
  /// synchronise internally.
  json::Value metrics_json() const;

  /// The server.dump response: one entry per flight recorder (the
  /// server telemetry's, then every session's, sorted by id) with its
  /// occupancy counters and the recent events parsed back into JSON.
  /// Events carry `timing` members, so like server.metrics this
  /// response is not byte-stable across thread counts.
  json::Value dump_json() const;

  /// Ids of all registered sessions, sorted. The drain-time Chrome
  /// exporter in ceal_serve walks these to find per-session traces.
  std::vector<std::string> session_ids() const;

  /// Flushes every attached trace sink (per-session sinks; the server
  /// telemetry's sink is the caller's — flush it there). Used on
  /// graceful shutdown/SIGTERM drain.
  void flush_sinks() const;

 private:
  json::Value create_session(const Request& request);
  std::shared_ptr<ServeSession> find_session(const std::string& id) const;
  std::string manifest_path(const std::string& id) const;
  std::string journal_path(const std::string& id) const;
  std::string trace_path(const std::string& id) const;
  /// Recomputes the serve.sessions_active gauge after a state change.
  void update_active_gauge();

  static constexpr std::size_t kOpCount = 7;  // matches enum Op

  ServerOptions options_;
  mutable std::mutex mutex_;
  std::map<std::string, std::shared_ptr<ServeSession>> sessions_;
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> errors_{0};
  /// Per-op request/error tallies (indexed by Op), mirrored into the
  /// serve.op.<name> / serve.op.<name>.errors telemetry counters.
  std::array<std::atomic<std::uint64_t>, kOpCount> op_requests_{};
  std::array<std::atomic<std::uint64_t>, kOpCount> op_errors_{};
};

/// Serves newline-delimited JSON requests from `in` until EOF, writing
/// one response per line to `out` in request order. Session work runs
/// on a `threads`-sized ThreadPool (0 = hardware concurrency), one
/// strand per session id. A server.stats, server.metrics, or
/// server.dump request is a barrier: it waits for every earlier request
/// to complete, so its counts are deterministic too.
void serve_stream(ServerCore& core, std::istream& in, std::ostream& out,
                  std::size_t threads);

/// Listens on a Unix stream socket, serving one connection at a time
/// through serve_stream. Replaces any stale socket file. Runs until
/// `should_stop` (checked after every accept, including ones
/// interrupted by a signal) returns true — pass {} to run until the
/// process dies. Throws on socket setup failure.
void serve_unix_socket(ServerCore& core, const std::string& socket_path,
                       std::size_t threads,
                       const std::function<bool()>& should_stop = {});

}  // namespace ceal::serve
