// Wire protocol of the tuning-as-a-service daemon (tools/ceal_serve):
// newline-delimited JSON, one request object per line in, one response
// object per line out, in request order.
//
//   {"op":"session.create","id":"s1","workflow":"LV","objective":"exec",
//    "budget":20,"seed":5}                          -> {"ok":true,...}
//   {"op":"session.step","id":"s1","steps":4}       -> {"ok":true,...}
//   {"op":"session.query","id":"s1"}                -> {"ok":true,...}
//   {"op":"session.cancel","id":"s1"}               -> {"ok":true,...}
//   {"op":"server.stats"}                           -> {"ok":true,...}
//   {"op":"server.metrics"}                         -> {"ok":true,...}
//   {"op":"server.dump"}                            -> {"ok":true,...}
//
// Validation is strict and reuses src/core/json: unknown fields, wrong
// types, and out-of-range values are rejected before any session state
// changes, each with a one-line "request:<field>: why" error (the same
// "<where>: why" convention the pool loader and trace reader use). A
// malformed request NEVER takes the server down — the daemon answers
// {"ok":false,"error":"..."} and keeps serving (tests/serve/
// test_protocol.cc holds it to this). docs/SERVING.md is the full
// reference.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

#include "core/json.h"

namespace ceal::serve {

/// Raised on an invalid request (or manifest); what() is one printable
/// line of the form "<where>: why".
class ProtocolError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

enum class Op {
  kCreate,   ///< session.create
  kStep,     ///< session.step
  kQuery,    ///< session.query
  kCancel,   ///< session.cancel
  kStats,    ///< server.stats
  kMetrics,  ///< server.metrics
  kDump,     ///< server.dump (flight-recorder contents)
};

/// Wire name of the op ("create", "step", ...): the <name> in the
/// serve.op.<name> and serve.op.<name>.errors metric families.
const char* op_name(Op op);

/// The session parameters of session.create — deliberately the same
/// knobs (and defaults) as the ceal_tune command line, so a served
/// session's result CSV is byte-comparable to a `ceal_tune
/// --save-result` run with the matching flags.
struct CreateParams {
  std::string workflow;            ///< LV | HS | GP (required)
  std::string objective;           ///< exec | comp (required)
  std::string algorithm = "CEAL";  ///< CEAL|AL|RS|GEIST|ALpH|BO|BO-CEAL
  std::size_t budget = 0;          ///< required, >= 1
  std::uint64_t seed = 42;
  std::size_t pool_size = 2000;
  std::uint64_t pool_seed = 1;
  std::size_t component_samples = 500;
  bool history = false;
  // Fault model (per-attempt; same semantics as ceal_tune).
  double fault_rate = 0.0;
  double outlier_rate = 0.0;
  double deadline_s = 0.0;
  std::size_t max_attempts = 1;
};

/// One parsed, validated request.
struct Request {
  Op op = Op::kStats;
  std::string session_id;      ///< empty only for server.stats
  std::size_t steps = 1;       ///< session.step: slices to run (>= 1)
  std::string save_result;     ///< session.query: optional result CSV path
  CreateParams create;         ///< session.create payload
};

/// Parses and strictly validates one request line. Throws ProtocolError
/// ("request:<field>: why") on anything malformed; never mutates state.
Request parse_request(const std::string& line);

/// {"ok":false,"error":message}
json::Value error_response(std::string message);

/// CreateParams <-> manifest JSON (the durable "<id>.session.json" the
/// daemon writes next to a session's journal so `--resume` can rebuild
/// the session). `where` prefixes field errors with the manifest path.
json::Value to_manifest(const std::string& id, const CreateParams& params);
CreateParams create_from_manifest(const json::Value& manifest,
                                  const std::string& where);

}  // namespace ceal::serve
