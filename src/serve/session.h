// One served tuning session: the exact object graph a `ceal_tune`
// invocation builds (workload, measured pool, component samples,
// TuningProblem, seeded rng, tuner), wrapped around a resumable
// TunerStepper so the daemon can advance it one slice at a time.
//
// Determinism contract: a session is a function of its CreateParams
// alone — the pool and component measurements are seeded draws, the
// stepper is the tuner's exact operation sequence — so a served
// session's result CSV is byte-identical to `ceal_tune --save-result`
// with the matching flags (tests/serve/test_session_matrix.cc holds it
// there). status_json() carries no wall-clock values, so response
// streams are byte-stable across thread counts.
//
// Thread-safety: step()/cancel()/status_json()/save_result() must be
// serialised by the caller (the server's per-session strand does this);
// state() alone is safe to read concurrently (server.stats snapshots).
// An internal mutex additionally serialises those members against
// metrics_json()/flush_trace(), which the daemon's periodic metrics
// exporter calls from outside the strand.
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <string>

#include "core/flight_recorder.h"
#include "core/rng.h"
#include "core/telemetry.h"
#include "measure/backend.h"
#include "serve/protocol.h"
#include "tuner/autotuner.h"
#include "tuner/checkpoint.h"
#include "tuner/stepper.h"

namespace ceal::serve {

/// Measurement-plane selection for served sessions (the daemon-wide
/// mirror of ceal_tune's --measure-backend family; docs/RELIABILITY.md
/// "Distributed measurement plane"). Backends are dispatch strategies,
/// never data sources, so the choice cannot change any session's result
/// or journal bytes — it is daemon configuration, not session identity,
/// and deliberately stays out of CreateParams and the checkpoint header.
struct MeasureConfig {
  /// "" (inline pool reads, the default), "inproc", or "subprocess".
  std::string backend;
  std::size_t workers = 4;
  /// Empty resolves to the sibling ceal_worker binary.
  std::string worker_bin;
  double hedge_after_s = 0.25;
  double hang_after_s = 10.0;
  std::size_t degrade_after = 3;
};

enum class SessionState {
  kRunning,    ///< stepper has work left
  kDone,       ///< finished; result available
  kCancelled,  ///< cancelled before finishing; no result
  kFailed,     ///< tuning logic threw; error() carries the message
};

const char* session_state_name(SessionState state);

class ServeSession {
 public:
  /// Builds the full session up front (pool + component measurements
  /// included — deliberately identical to ceal_tune's construction
  /// order). `journal_path` empty disables checkpointing; `resume`
  /// selects kResume (replay an existing journal while stepping) over
  /// kStart. `trace_path` empty disables the per-session trace sink
  /// (`trace_fsync` makes its flushes durable). A nonzero
  /// `flight_recorder_capacity` attaches a per-session FlightRecorder
  /// (creating session telemetry even without a trace sink) and
  /// registers it with the process crash registry under "session:<id>".
  /// Throws (CheckpointError, PreconditionError) on invalid
  /// combinations; the server reports the error and drops the session.
  ServeSession(std::string id, CreateParams params,
               const std::string& journal_path, bool resume,
               const std::string& trace_path, bool trace_fsync = false,
               std::size_t flight_recorder_capacity = 0,
               const MeasureConfig& measure = {});

  ServeSession(const ServeSession&) = delete;
  ServeSession& operator=(const ServeSession&) = delete;

  const std::string& id() const { return id_; }
  const CreateParams& params() const { return params_; }
  SessionState state() const {
    return state_.load(std::memory_order_acquire);
  }

  /// Runs up to `n` stepper slices. A session that already left
  /// kRunning is not stepped — over-stepping is a no-op, not an error.
  /// Exceptions from the tuning logic mark the session kFailed and are
  /// captured in error().
  void step(std::size_t n);

  /// kRunning -> kCancelled. Throws ProtocolError otherwise (double
  /// cancel, cancelling a finished session).
  void cancel();

  /// Message of the failure that moved the session to kFailed.
  const std::string& error() const { return error_; }

  /// Deterministic status object: id, state, session identity, steps
  /// taken, and — once done — the result summary (hex-float costs).
  /// Never contains wall-clock values.
  json::Value status_json() const;

  /// Writes the result CSV via tuner::save_result_csv — the byte format
  /// of `ceal_tune --save-result`. Throws ProtocolError unless kDone.
  void save_result(const std::string& path) const;

  /// Live-progress object for server.metrics: identity and state plus
  /// the stepper's TunerProgress (budget used/remaining, best measured
  /// value, model phase, last switch-detection recalls) and — with a
  /// checkpoint attached — journal depth and replay lag. Safe to call
  /// concurrently with step() (internal mutex); every field is a
  /// deterministic function of the steps taken so far.
  json::Value metrics_json() const;

  /// Flushes the per-session trace sink, if any (graceful-shutdown
  /// drain). Safe to call concurrently with step().
  void flush_trace();

  /// This session's flight recorder (null unless created with a nonzero
  /// capacity). The pointer is stable for the session's lifetime.
  const telemetry::FlightRecorder* flight_recorder() const {
    return recorder_.get();
  }

 private:
  mutable std::mutex mutex_;  ///< serialises stepper access (see header)
  std::string id_;
  CreateParams params_;
  sim::Workload workload_;
  tuner::MeasuredPool pool_;
  std::vector<tuner::ComponentSamples> comps_;
  std::unique_ptr<telemetry::JsonlTraceSink> trace_sink_;
  std::unique_ptr<telemetry::FlightRecorder> recorder_;
  std::unique_ptr<telemetry::Telemetry> telemetry_;
  /// Declared after pool_ and telemetry_ (both of which it borrows), so
  /// it is destroyed — workers reaped — before either.
  std::unique_ptr<measure::MeasureBackend> measure_backend_;
  std::unique_ptr<tuner::CheckpointSession> checkpoint_;
  std::unique_ptr<tuner::AutoTuner> algorithm_;
  tuner::TuningProblem problem_;
  ceal::Rng rng_;
  std::unique_ptr<tuner::TunerStepper> stepper_;
  std::atomic<SessionState> state_{SessionState::kRunning};
  std::string error_;
  /// Monotonic sum of the step counts ever requested of this session
  /// (over-stepping included) — the session_age_steps metric.
  std::uint64_t age_steps_ = 0;
};

}  // namespace ceal::serve
