#include "serve/metrics.h"

#include <cmath>
#include <cstdlib>
#include <map>
#include <span>
#include <sstream>
#include <string_view>
#include <vector>

namespace ceal::serve {

namespace {

// Prometheus metric names allow [a-zA-Z0-9_:] with a non-digit start;
// anything else (the '.' in our dotted telemetry names) becomes '_'.
std::string sanitize(std::string_view name) {
  std::string out;
  out.reserve(name.size());
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  if (out.empty() || (out.front() >= '0' && out.front() <= '9'))
    out.insert(out.begin(), '_');
  return out;
}

std::string escape_label(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    if (c == '\\' || c == '"') {
      out.push_back('\\');
      out.push_back(c);
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out.push_back(c);
    }
  }
  return out;
}

// Sample values reuse the JSON number lexeme verbatim (byte-stable
// shortest round-trip, exactly what the JSON snapshot carries).
std::string value_text(const json::Value& v) {
  if (v.kind() == json::Value::Kind::kNumber) return v.number_lexeme();
  if (v.kind() == json::Value::Kind::kBool) return v.as_bool() ? "1" : "0";
  throw ProtocolError("prometheus: expected a number sample value");
}

void type_line(std::ostream& os, const std::string& name,
               std::string_view type) {
  os << "# TYPE " << name << ' ' << type << '\n';
}

}  // namespace

json::Value telemetry_sections_json(const telemetry::Telemetry* telemetry) {
  json::Value counters = json::Value::object();
  json::Value gauges = json::Value::object();
  json::Value spans = json::Value::object();
  json::Value histograms = json::Value::object();
  if (telemetry != nullptr) {
    for (const auto& [name, value] : telemetry->counters())
      counters.set(name, json::Value::number(value));
    for (const auto& [name, value] : telemetry->gauges())
      gauges.set(name, json::Value::number(value));
    for (const auto& [name, stats] : telemetry->spans()) {
      json::Value s = json::Value::object();
      s.set("count", json::Value::number(stats.count));
      s.set("total_s", json::Value::number(stats.total_s));
      spans.set(name, std::move(s));
    }
    const std::span<const double> bounds = telemetry::histogram_upper_bounds();
    for (const auto& [name, stats] : telemetry->histograms()) {
      if (stats.count == 0) continue;
      json::Value h = json::Value::object();
      h.set("count", json::Value::number(stats.count));
      h.set("sum", json::Value::number(stats.sum));
      h.set("min", json::Value::number(stats.min));
      h.set("max", json::Value::number(stats.max));
      h.set("p50", json::Value::number(stats.quantile(0.50)));
      h.set("p90", json::Value::number(stats.quantile(0.90)));
      h.set("p99", json::Value::number(stats.quantile(0.99)));
      // Sparse [le, count] pairs, ascending; the overflow bucket's le is
      // the string "+Inf" (matching the Prometheus label it becomes).
      json::Value pairs = json::Value::array();
      for (std::size_t i = 0; i < stats.buckets.size(); ++i) {
        if (stats.buckets[i] == 0) continue;
        json::Value pair = json::Value::array();
        if (i < bounds.size())
          pair.push(json::Value::number(bounds[i]));
        else
          pair.push(json::Value::string("+Inf"));
        pair.push(json::Value::number(stats.buckets[i]));
        pairs.push(std::move(pair));
      }
      h.set("buckets", std::move(pairs));
      histograms.set(name, std::move(h));
    }
  }
  json::Value out = json::Value::object();
  out.set("counters", std::move(counters));
  out.set("gauges", std::move(gauges));
  out.set("spans", std::move(spans));
  out.set("histograms", std::move(histograms));
  return out;
}

std::string to_prometheus(const json::Value& metrics) {
  std::ostringstream os;

  // --- Server block: request/error totals as counters, the rest as
  // gauges, the per-op breakdown as one labeled family per kind. ---
  if (const json::Value* server = metrics.find("server")) {
    for (const auto& [key, value] : server->members()) {
      if (key == "ops" || key == "ok") continue;
      if (value.kind() != json::Value::Kind::kNumber &&
          value.kind() != json::Value::Kind::kBool)
        continue;
      const std::string base = "ceal_server_" + sanitize(key);
      if (key == "requests" || key == "errors") {
        type_line(os, base + "_total", "counter");
        os << base << "_total " << value_text(value) << '\n';
      } else {
        type_line(os, base, "gauge");
        os << base << ' ' << value_text(value) << '\n';
      }
    }
    if (const json::Value* ops = server->find("ops")) {
      type_line(os, "ceal_serve_op_requests_total", "counter");
      for (const auto& [op, tallies] : ops->members()) {
        os << "ceal_serve_op_requests_total{op=\"" << escape_label(op)
           << "\"} " << value_text(tallies.at("requests")) << '\n';
      }
      type_line(os, "ceal_serve_op_errors_total", "counter");
      for (const auto& [op, tallies] : ops->members()) {
        os << "ceal_serve_op_errors_total{op=\"" << escape_label(op)
           << "\"} " << value_text(tallies.at("errors")) << '\n';
      }
    }
  }

  // --- Telemetry sections. ---
  if (const json::Value* counters = metrics.find("counters")) {
    for (const auto& [name, value] : counters->members()) {
      const std::string base = "ceal_" + sanitize(name) + "_total";
      type_line(os, base, "counter");
      os << base << ' ' << value_text(value) << '\n';
    }
  }
  if (const json::Value* gauges = metrics.find("gauges")) {
    for (const auto& [name, value] : gauges->members()) {
      const std::string base = "ceal_" + sanitize(name);
      type_line(os, base, "gauge");
      os << base << ' ' << value_text(value) << '\n';
    }
  }
  if (const json::Value* spans = metrics.find("spans")) {
    for (const auto& [name, stats] : spans->members()) {
      const std::string base = "ceal_" + sanitize(name);
      type_line(os, base + "_count", "counter");
      os << base << "_count " << value_text(stats.at("count")) << '\n';
      type_line(os, base + "_seconds_total", "counter");
      os << base << "_seconds_total " << value_text(stats.at("total_s"))
         << '\n';
    }
  }
  if (const json::Value* histograms = metrics.find("histograms")) {
    for (const auto& [name, stats] : histograms->members()) {
      const std::string base = "ceal_" + sanitize(name);
      type_line(os, base, "histogram");
      // Sparse [le, count] pairs become the conventional cumulative
      // buckets; the +Inf bucket is always present and equals _count.
      std::uint64_t cumulative = 0;
      bool saw_inf = false;
      const json::Value& pairs = stats.at("buckets");
      for (std::size_t i = 0; i < pairs.size(); ++i) {
        const json::Value& pair = pairs.at(i);
        const json::Value& le = pair.at(std::size_t{0});
        cumulative += static_cast<std::uint64_t>(
            pair.at(std::size_t{1}).as_double());
        std::string le_text;
        if (le.kind() == json::Value::Kind::kString) {
          le_text = le.as_string();
          saw_inf = true;
        } else {
          le_text = le.number_lexeme();
        }
        os << base << "_bucket{le=\"" << le_text << "\"} "
           << json::format_number(cumulative) << '\n';
      }
      if (!saw_inf) {
        os << base << "_bucket{le=\"+Inf\"} "
           << value_text(stats.at("count")) << '\n';
      }
      os << base << "_sum " << value_text(stats.at("sum")) << '\n';
      os << base << "_count " << value_text(stats.at("count")) << '\n';
    }
  }

  // --- Per-session families (labeled by session id). ---
  if (const json::Value* sessions = metrics.find("sessions")) {
    type_line(os, "ceal_sessions", "gauge");
    os << "ceal_sessions " << json::format_number(
        static_cast<std::uint64_t>(sessions->size())) << '\n';
    const auto labeled_family =
        [&](const char* family, const char* field, std::string_view type) {
          bool declared = false;
          for (std::size_t i = 0; i < sessions->size(); ++i) {
            const json::Value& session = sessions->at(i);
            const json::Value* value = session.find(field);
            if (value == nullptr) continue;
            if (!declared) {
              type_line(os, family, type);
              declared = true;
            }
            os << family << "{id=\""
               << escape_label(session.at("id").as_string()) << "\"} "
               << value_text(*value) << '\n';
          }
        };
    labeled_family("ceal_session_budget_used", "budget_used", "gauge");
    labeled_family("ceal_session_budget_remaining", "budget_remaining",
                   "gauge");
    labeled_family("ceal_session_steps", "steps", "gauge");
    labeled_family("ceal_session_age_steps_total", "session_age_steps",
                   "counter");
    labeled_family("ceal_session_best_value", "best_value", "gauge");
    labeled_family("ceal_session_checkpoint_replay_pending",
                   "checkpoint_replay_pending", "gauge");
    labeled_family("ceal_session_recorder_events", "recorder_events",
                   "gauge");
    labeled_family("ceal_session_recorder_dropped_total",
                   "recorder_dropped", "counter");
  }

  // --- Export timestamp (present only in --metrics-export files). ---
  if (const json::Value* timing = metrics.find("timing")) {
    if (const json::Value* ts = timing->find("exported_unix_s")) {
      type_line(os, "ceal_export_timestamp_seconds", "gauge");
      os << "ceal_export_timestamp_seconds " << value_text(*ts) << '\n';
    }
  }

  return os.str();
}

namespace {

[[noreturn]] void bad_line(std::size_t line_no, const std::string& why) {
  throw ProtocolError("prometheus:line " + std::to_string(line_no) + ": " +
                      why);
}

bool name_char(char c, bool first) {
  const bool alpha = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                     c == '_' || c == ':';
  return first ? alpha : (alpha || (c >= '0' && c <= '9'));
}

std::string parse_name(std::string_view line, std::size_t& pos,
                       std::size_t line_no) {
  const std::size_t start = pos;
  while (pos < line.size() && name_char(line[pos], pos == start)) ++pos;
  if (pos == start) bad_line(line_no, "expected a metric name");
  return std::string(line.substr(start, pos - start));
}

double parse_value(std::string_view token, std::size_t line_no) {
  const std::string text(token);
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  if (end != text.c_str() + text.size() || text.empty())
    bad_line(line_no, "bad sample value \"" + text + "\"");
  return value;
}

struct Family {
  std::string type;
  // Histogram coherence state.
  std::vector<std::pair<double, double>> buckets;  // (le, cumulative)
  bool has_sum = false;
  bool has_count = false;
  double count_value = 0.0;
};

}  // namespace

std::size_t validate_prometheus(const std::string& text) {
  std::map<std::string, Family> families;
  std::size_t samples = 0;
  std::size_t line_no = 0;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    if (line[0] == '#') {
      std::istringstream comment(line);
      std::string hash, keyword, name, type;
      comment >> hash >> keyword;
      if (keyword != "TYPE") continue;  // HELP / free comments: skipped
      if (!(comment >> name >> type))
        bad_line(line_no, "malformed TYPE comment");
      if (type != "counter" && type != "gauge" && type != "histogram" &&
          type != "summary" && type != "untyped")
        bad_line(line_no, "unknown metric type \"" + type + "\"");
      auto [it, inserted] = families.emplace(name, Family{});
      if (!inserted)
        bad_line(line_no, "duplicate TYPE for family \"" + name + "\"");
      it->second.type = type;
      continue;
    }

    // Sample line: name[{labels}] value
    std::size_t pos = 0;
    const std::string name = parse_name(line, pos, line_no);
    std::map<std::string, std::string> labels;
    if (pos < line.size() && line[pos] == '{') {
      ++pos;
      while (pos < line.size() && line[pos] != '}') {
        const std::string label = parse_name(line, pos, line_no);
        if (pos >= line.size() || line[pos] != '=')
          bad_line(line_no, "expected '=' after label name");
        ++pos;
        if (pos >= line.size() || line[pos] != '"')
          bad_line(line_no, "expected '\"' to open a label value");
        ++pos;
        std::string value;
        while (pos < line.size() && line[pos] != '"') {
          if (line[pos] == '\\') {
            ++pos;
            if (pos >= line.size())
              bad_line(line_no, "dangling escape in label value");
            if (line[pos] == 'n')
              value.push_back('\n');
            else
              value.push_back(line[pos]);
          } else {
            value.push_back(line[pos]);
          }
          ++pos;
        }
        if (pos >= line.size()) bad_line(line_no, "unterminated label value");
        ++pos;  // closing quote
        if (!labels.emplace(label, value).second)
          bad_line(line_no, "duplicate label \"" + label + "\"");
        if (pos < line.size() && line[pos] == ',') ++pos;
      }
      if (pos >= line.size() || line[pos] != '}')
        bad_line(line_no, "unterminated label set");
      ++pos;
    }
    if (pos >= line.size() || line[pos] != ' ')
      bad_line(line_no, "expected ' ' before the sample value");
    ++pos;
    const std::string_view token = std::string_view(line).substr(pos);
    if (token.find(' ') != std::string_view::npos)
      bad_line(line_no, "trailing content after the sample value");
    const double value = parse_value(token, line_no);
    ++samples;

    // Resolve the declared family this sample belongs to.
    std::string family_name = name;
    std::string role;  // "", "bucket", "sum", "count"
    auto it = families.find(name);
    if (it == families.end()) {
      for (const char* suffix : {"_bucket", "_sum", "_count"}) {
        const std::string_view sv(suffix);
        if (name.size() > sv.size() && name.ends_with(sv)) {
          const std::string stem = name.substr(0, name.size() - sv.size());
          auto stem_it = families.find(stem);
          if (stem_it != families.end() &&
              stem_it->second.type == "histogram") {
            family_name = stem;
            role = std::string(sv.substr(1));
            it = stem_it;
            break;
          }
        }
      }
    }
    if (it == families.end())
      bad_line(line_no, "sample \"" + name + "\" has no TYPE declaration");
    Family& family = it->second;

    if (family.type == "histogram") {
      if (role.empty())
        bad_line(line_no, "bare sample for histogram family \"" +
                              family_name + "\"");
      if (role == "bucket") {
        auto le_it = labels.find("le");
        if (le_it == labels.end())
          bad_line(line_no, "histogram bucket without an le label");
        const double le = parse_value(le_it->second, line_no);
        if (!family.buckets.empty()) {
          if (le <= family.buckets.back().first)
            bad_line(line_no, "bucket le values must be increasing");
          if (value < family.buckets.back().second)
            bad_line(line_no, "bucket counts must be cumulative");
        }
        family.buckets.emplace_back(le, value);
      } else if (role == "sum") {
        if (family.has_sum) bad_line(line_no, "duplicate _sum sample");
        family.has_sum = true;
      } else {
        if (family.has_count) bad_line(line_no, "duplicate _count sample");
        family.has_count = true;
        family.count_value = value;
      }
    }
  }

  // Histogram family coherence: buckets present, ending in +Inf whose
  // cumulative count equals the _count sample.
  for (const auto& [name, family] : families) {
    if (family.type != "histogram") continue;
    if (family.buckets.empty())
      throw ProtocolError("prometheus: histogram \"" + name +
                          "\" has no buckets");
    if (!family.has_sum || !family.has_count)
      throw ProtocolError("prometheus: histogram \"" + name +
                          "\" is missing _sum or _count");
    const auto& [last_le, last_cum] = family.buckets.back();
    if (!(std::isinf(last_le) && last_le > 0))
      throw ProtocolError("prometheus: histogram \"" + name +
                          "\" does not end in an +Inf bucket");
    if (last_cum != family.count_value)
      throw ProtocolError("prometheus: histogram \"" + name +
                          "\": +Inf bucket != _count");
  }

  return samples;
}

}  // namespace ceal::serve
