#include "serve/server.h"

#include <algorithm>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <filesystem>
#include <fstream>
#include <functional>
#include <future>
#include <istream>
#include <ostream>
#include <sstream>
#include <thread>
#include <vector>

#include "core/atomic_file.h"
#include "core/flight_recorder.h"
#include "core/thread_pool.h"
#include "serve/metrics.h"

#if !defined(_WIN32)
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#endif

namespace ceal::serve {

namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw ProtocolError(path + ": cannot open");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

bool file_non_empty(const std::string& path) {
  std::error_code ec;
  const auto size = std::filesystem::file_size(path, ec);
  return !ec && size > 0;
}

}  // namespace

ServerCore::ServerCore(ServerOptions options)
    : options_(std::move(options)) {
  if (!options_.checkpoint_dir.empty())
    std::filesystem::create_directories(options_.checkpoint_dir);
  if (!options_.trace_dir.empty())
    std::filesystem::create_directories(options_.trace_dir);
  update_active_gauge();
}

std::string ServerCore::manifest_path(const std::string& id) const {
  return options_.checkpoint_dir + "/" + id + ".session.json";
}

std::string ServerCore::journal_path(const std::string& id) const {
  return options_.checkpoint_dir + "/" + id + ".cealj";
}

std::string ServerCore::trace_path(const std::string& id) const {
  if (options_.trace_dir.empty()) return {};
  return options_.trace_dir + "/" + id + ".trace.jsonl";
}

void ServerCore::update_active_gauge() {
  if (options_.telemetry == nullptr) return;
  std::size_t active = 0;
  {
    std::lock_guard lock(mutex_);
    for (const auto& [id, session] : sessions_) {
      if (session->state() == SessionState::kRunning) ++active;
    }
  }
  options_.telemetry->gauge("serve.sessions_active",
                            static_cast<double>(active));
}

std::size_t ServerCore::resume_sessions() {
  if (options_.checkpoint_dir.empty()) return 0;
  // Sorted manifest order: resume construction is deterministic no
  // matter what order the directory iterator yields.
  std::vector<std::string> manifests;
  for (const auto& entry :
       std::filesystem::directory_iterator(options_.checkpoint_dir)) {
    const std::string name = entry.path().filename().string();
    constexpr std::string_view kSuffix = ".session.json";
    if (name.size() > kSuffix.size() &&
        name.compare(name.size() - kSuffix.size(), kSuffix.size(),
                     kSuffix.data()) == 0) {
      manifests.push_back(entry.path().string());
    }
  }
  std::sort(manifests.begin(), manifests.end());

  std::size_t resumed = 0;
  for (const std::string& path : manifests) {
    json::Value manifest;
    try {
      manifest = json::Value::parse(slurp(path));
    } catch (const std::exception& e) {
      throw ProtocolError(path + ": invalid manifest: " + e.what());
    }
    CreateParams params = create_from_manifest(manifest, path);
    const std::string id = manifest.at("id").as_string();
    const std::string stem =
        std::filesystem::path(path).filename().string();
    if (stem != id + ".session.json") {
      throw ProtocolError(path + ": manifest id \"" + id +
                          "\" does not match the filename");
    }
    // A journal with at least the header record replays on resume; a
    // session killed before its first durable record starts fresh.
    const std::string journal = journal_path(id);
    const bool resume = file_non_empty(journal);
    auto session = std::make_shared<ServeSession>(
        id, std::move(params), journal, resume, trace_path(id),
        options_.trace_fsync, options_.flight_recorder, options_.measure);
    {
      std::lock_guard lock(mutex_);
      sessions_.emplace(id, std::move(session));
    }
    ++resumed;
  }
  update_active_gauge();
  return resumed;
}

std::string ServerCore::handle_line(const std::string& line) {
  Request request;
  try {
    request = parse_request(line);
  } catch (const std::exception& e) {
    return handle_error(e.what()).dump();
  }
  return handle(request).dump();
}

json::Value ServerCore::handle_error(const std::string& message) {
  requests_.fetch_add(1, std::memory_order_relaxed);
  errors_.fetch_add(1, std::memory_order_relaxed);
  if (options_.telemetry != nullptr) {
    options_.telemetry->count("serve.requests");
    options_.telemetry->count("serve.errors");
  }
  return error_response(message);
}

json::Value ServerCore::handle(const Request& request) {
  telemetry::Telemetry* t = options_.telemetry;
  requests_.fetch_add(1, std::memory_order_relaxed);
  const auto op_index = static_cast<std::size_t>(request.op);
  op_requests_[op_index].fetch_add(1, std::memory_order_relaxed);
  if (t != nullptr) {
    t->count("serve.requests");
    t->count(std::string("serve.op.") + op_name(request.op));
  }
  try {
    switch (request.op) {
      case Op::kCreate: {
        return create_session(request);
      }
      case Op::kStep: {
        auto session = find_session(request.session_id);
        const SessionState before = session->state();
        {
          telemetry::ScopedSpan span(t, "serve.step");
          session->step(request.steps);
          if (t != nullptr)
            t->observe("timing.serve.step_s", span.stop());
        }
        if (before == SessionState::kRunning &&
            session->state() != SessionState::kRunning) {
          update_active_gauge();
        }
        return session->status_json();
      }
      case Op::kQuery: {
        auto session = find_session(request.session_id);
        if (!request.save_result.empty())
          session->save_result(request.save_result);
        return session->status_json();
      }
      case Op::kCancel: {
        auto session = find_session(request.session_id);
        session->cancel();
        // A cancelled session must not be resurrected by --resume.
        if (!options_.checkpoint_dir.empty()) {
          std::error_code ec;
          std::filesystem::remove(manifest_path(request.session_id), ec);
          std::filesystem::remove(journal_path(request.session_id), ec);
        }
        update_active_gauge();
        return session->status_json();
      }
      case Op::kStats: {
        return stats_json();
      }
      case Op::kMetrics: {
        return metrics_json();
      }
      case Op::kDump: {
        return dump_json();
      }
    }
    throw ProtocolError("request:op: unknown op");
  } catch (const std::exception& e) {
    errors_.fetch_add(1, std::memory_order_relaxed);
    op_errors_[op_index].fetch_add(1, std::memory_order_relaxed);
    if (t != nullptr) {
      t->count("serve.errors");
      t->count(std::string("serve.op.") + op_name(request.op) + ".errors");
    }
    return error_response(e.what());
  }
}

json::Value ServerCore::create_session(const Request& request) {
  const std::string& id = request.session_id;
  {
    std::lock_guard lock(mutex_);
    if (sessions_.count(id) != 0)
      throw ProtocolError("session " + id + ": already exists");
  }
  std::string journal;
  bool wrote_manifest = false;
  if (!options_.checkpoint_dir.empty()) {
    journal = journal_path(id);
    // Manifest before journal: a crash at any later point leaves enough
    // on disk for --resume to rebuild the session.
    atomic_write_file(manifest_path(id),
                      to_manifest(id, request.create).dump() + "\n");
    wrote_manifest = true;
  }
  try {
    // Built outside the registry lock: pool measurement is the
    // expensive part and concurrent creates of different sessions must
    // overlap. Same-id races are excluded by the caller's strand.
    auto session = std::make_shared<ServeSession>(
        id, request.create, journal, /*resume=*/false, trace_path(id),
        options_.trace_fsync, options_.flight_recorder, options_.measure);
    {
      std::lock_guard lock(mutex_);
      sessions_.emplace(id, session);
    }
    update_active_gauge();
    return session->status_json();
  } catch (...) {
    if (wrote_manifest) {
      std::error_code ec;
      std::filesystem::remove(manifest_path(id), ec);
      std::filesystem::remove(journal, ec);
    }
    throw;
  }
}

std::shared_ptr<ServeSession> ServerCore::find_session(
    const std::string& id) const {
  std::lock_guard lock(mutex_);
  auto it = sessions_.find(id);
  if (it == sessions_.end())
    throw ProtocolError("request:id: unknown session \"" + id + "\"");
  return it->second;
}

std::size_t ServerCore::session_count() const {
  std::lock_guard lock(mutex_);
  return sessions_.size();
}

json::Value ServerCore::stats_json() const {
  std::size_t running = 0, done = 0, cancelled = 0, failed = 0;
  std::size_t total = 0;
  {
    std::lock_guard lock(mutex_);
    total = sessions_.size();
    for (const auto& [id, session] : sessions_) {
      switch (session->state()) {
        case SessionState::kRunning:
          ++running;
          break;
        case SessionState::kDone:
          ++done;
          break;
        case SessionState::kCancelled:
          ++cancelled;
          break;
        case SessionState::kFailed:
          ++failed;
          break;
      }
    }
  }
  json::Value stats = json::Value::object();
  stats.set("ok", json::Value::boolean(true));
  stats.set("sessions", json::Value::number(static_cast<std::uint64_t>(total)));
  stats.set("running",
            json::Value::number(static_cast<std::uint64_t>(running)));
  stats.set("done", json::Value::number(static_cast<std::uint64_t>(done)));
  stats.set("cancelled",
            json::Value::number(static_cast<std::uint64_t>(cancelled)));
  stats.set("failed", json::Value::number(static_cast<std::uint64_t>(failed)));
  // The stats request itself is already counted.
  stats.set("requests", json::Value::number(
                            requests_.load(std::memory_order_relaxed)));
  stats.set("errors",
            json::Value::number(errors_.load(std::memory_order_relaxed)));
  // Per-op breakdown: requests and errors per protocol op, in enum
  // order. Deterministic under the serve_stream quiescence barrier like
  // every other field here.
  json::Value ops = json::Value::object();
  for (std::size_t i = 0; i < kOpCount; ++i) {
    json::Value one = json::Value::object();
    one.set("requests", json::Value::number(
                            op_requests_[i].load(std::memory_order_relaxed)));
    one.set("errors", json::Value::number(
                          op_errors_[i].load(std::memory_order_relaxed)));
    ops.set(op_name(static_cast<Op>(i)), std::move(one));
  }
  stats.set("ops", std::move(ops));
  return stats;
}

json::Value ServerCore::metrics_json() const {
  json::Value metrics = json::Value::object();
  metrics.set("ok", json::Value::boolean(true));
  // The server block is stats_json minus its "ok" member.
  const json::Value stats = stats_json();
  json::Value server = json::Value::object();
  for (const auto& [key, value] : stats.members()) {
    if (key != "ok") server.set(key, value);
  }
  metrics.set("server", std::move(server));
  const json::Value sections = telemetry_sections_json(options_.telemetry);
  for (const auto& [key, value] : sections.members())
    metrics.set(key, value);
  // Per-session live progress, sorted by id (the registry map order).
  std::vector<std::shared_ptr<ServeSession>> sessions;
  {
    std::lock_guard lock(mutex_);
    sessions.reserve(sessions_.size());
    for (const auto& [id, session] : sessions_) sessions.push_back(session);
  }
  json::Value list = json::Value::array();
  for (const auto& session : sessions) list.push(session->metrics_json());
  metrics.set("sessions", std::move(list));
  return metrics;
}

json::Value ServerCore::dump_json() const {
  json::Value dump = json::Value::object();
  dump.set("ok", json::Value::boolean(true));
  json::Value recorders = json::Value::array();
  const auto append = [&recorders](const std::string& label,
                                   const telemetry::FlightRecorder* rec) {
    if (rec == nullptr) return;
    json::Value one = json::Value::object();
    one.set("label", json::Value::string(label));
    one.set("capacity", json::Value::number(
                            static_cast<std::uint64_t>(rec->capacity())));
    one.set("events", json::Value::number(
                          static_cast<std::uint64_t>(rec->size())));
    one.set("dropped", json::Value::number(rec->dropped()));
    json::Value recent = json::Value::array();
    for (const std::string& line : rec->snapshot()) {
      // Lines are our own serialized TraceEvents; a parse failure would
      // mean a torn slot slipped past the seqlock, so surface it as a
      // raw-text stub instead of dropping the response.
      try {
        recent.push(json::Value::parse(line));
      } catch (const std::exception&) {
        json::Value raw = json::Value::object();
        raw.set("raw", json::Value::string(line));
        recent.push(std::move(raw));
      }
    }
    one.set("recent", std::move(recent));
    recorders.push(std::move(one));
  };
  if (options_.telemetry != nullptr)
    append("server", options_.telemetry->flight_recorder());
  std::vector<std::shared_ptr<ServeSession>> sessions;
  {
    std::lock_guard lock(mutex_);
    sessions.reserve(sessions_.size());
    for (const auto& [id, session] : sessions_) sessions.push_back(session);
  }
  for (const auto& session : sessions)
    append("session:" + session->id(), session->flight_recorder());
  dump.set("recorders", std::move(recorders));
  return dump;
}

std::vector<std::string> ServerCore::session_ids() const {
  std::lock_guard lock(mutex_);
  std::vector<std::string> ids;
  ids.reserve(sessions_.size());
  for (const auto& [id, session] : sessions_) ids.push_back(id);
  return ids;
}

void ServerCore::flush_sinks() const {
  std::vector<std::shared_ptr<ServeSession>> sessions;
  {
    std::lock_guard lock(mutex_);
    sessions.reserve(sessions_.size());
    for (const auto& [id, session] : sessions_) sessions.push_back(session);
  }
  for (const auto& session : sessions) session->flush_trace();
}

void serve_stream(ServerCore& core, std::istream& in, std::ostream& out,
                  std::size_t threads) {
  ThreadPool pool(threads);

  // One logical strand per session id: jobs of one session run in
  // request order, never concurrently; different sessions shard freely
  // over the pool. A strand with queued jobs has exactly one drainer
  // task in flight.
  struct Strand {
    std::deque<std::function<void()>> jobs;
    bool draining = false;
  };
  std::mutex strands_mutex;
  std::map<std::string, std::shared_ptr<Strand>> strands;

  // Responses leave in request order: the reader enqueues one future
  // per request, a dedicated writer thread resolves them front to back.
  std::mutex queue_mutex;
  std::condition_variable queue_cv;
  std::deque<std::future<std::string>> responses;
  std::size_t inflight = 0;  // enqueued and not yet written
  bool closing = false;

  std::thread writer([&] {
    std::unique_lock lock(queue_mutex);
    for (;;) {
      queue_cv.wait(lock, [&] { return closing || !responses.empty(); });
      if (responses.empty()) return;
      std::future<std::string> next = std::move(responses.front());
      responses.pop_front();
      lock.unlock();
      out << next.get() << '\n';
      out.flush();
      lock.lock();
      --inflight;
      queue_cv.notify_all();
    }
  });

  auto push_response = [&](std::future<std::string> f) {
    std::lock_guard lock(queue_mutex);
    responses.push_back(std::move(f));
    ++inflight;
    queue_cv.notify_all();
  };
  auto push_ready = [&](std::string text) {
    std::promise<std::string> ready;
    ready.set_value(std::move(text));
    push_response(ready.get_future());
  };
  auto run_on_strand = [&](const std::string& id,
                           std::function<void()> job) {
    std::shared_ptr<Strand> strand;
    {
      std::lock_guard lock(strands_mutex);
      auto& slot = strands[id];
      if (slot == nullptr) slot = std::make_shared<Strand>();
      strand = slot;
      strand->jobs.push_back(std::move(job));
      if (strand->draining) return;
      strand->draining = true;
    }
    pool.submit([&strands_mutex, strand] {
      for (;;) {
        std::function<void()> next;
        {
          std::lock_guard lock(strands_mutex);
          if (strand->jobs.empty()) {
            strand->draining = false;
            return;
          }
          next = std::move(strand->jobs.front());
          strand->jobs.pop_front();
        }
        next();
      }
    });
  };

  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    Request request;
    try {
      request = parse_request(line);
    } catch (const std::exception& e) {
      push_ready(core.handle_error(e.what()).dump());
      continue;
    }
    if (request.op == Op::kStats || request.op == Op::kMetrics ||
        request.op == Op::kDump) {
      // Quiescence barrier: stats/metrics/dump answer only after every
      // earlier request finished, so their counts are deterministic
      // under any thread count.
      {
        std::unique_lock lock(queue_mutex);
        queue_cv.wait(lock, [&] { return inflight == 0; });
      }
      push_ready(core.handle(request).dump());
      continue;
    }
    auto task = std::make_shared<std::packaged_task<std::string()>>(
        [&core, request] { return core.handle(request).dump(); });
    push_response(task->get_future());
    run_on_strand(request.session_id, [task] { (*task)(); });
  }

  {
    std::lock_guard lock(queue_mutex);
    closing = true;
    queue_cv.notify_all();
  }
  writer.join();
}

#if !defined(_WIN32)

namespace {

/// Minimal read/write streambuf over a connected socket fd, so the
/// stdio and Unix-socket transports share one serve_stream loop.
class FdStreambuf final : public std::streambuf {
 public:
  explicit FdStreambuf(int fd) : fd_(fd) {
    setg(rbuf_, rbuf_, rbuf_);
    setp(wbuf_, wbuf_ + sizeof wbuf_);
  }
  ~FdStreambuf() override { flush_buffer(); }

 protected:
  int_type underflow() override {
    const ssize_t n = ::read(fd_, rbuf_, sizeof rbuf_);
    if (n <= 0) return traits_type::eof();
    setg(rbuf_, rbuf_, rbuf_ + n);
    return traits_type::to_int_type(rbuf_[0]);
  }

  int_type overflow(int_type ch) override {
    if (flush_buffer() != 0) return traits_type::eof();
    if (!traits_type::eq_int_type(ch, traits_type::eof())) {
      *pptr() = traits_type::to_char_type(ch);
      pbump(1);
    }
    return traits_type::not_eof(ch);
  }

  int sync() override { return flush_buffer(); }

 private:
  int flush_buffer() {
    const char* p = pbase();
    while (p != pptr()) {
      const ssize_t n = ::write(fd_, p, static_cast<std::size_t>(pptr() - p));
      if (n <= 0) return -1;
      p += n;
    }
    setp(wbuf_, wbuf_ + sizeof wbuf_);
    return 0;
  }

  int fd_;
  char rbuf_[4096];
  char wbuf_[4096];
};

}  // namespace

void serve_unix_socket(ServerCore& core, const std::string& socket_path,
                       std::size_t threads,
                       const std::function<bool()>& should_stop) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0)
    throw std::runtime_error("socket: " + std::string(std::strerror(errno)));
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof addr.sun_path) {
    ::close(fd);
    throw std::runtime_error("socket path too long: " + socket_path);
  }
  std::strncpy(addr.sun_path, socket_path.c_str(),
               sizeof addr.sun_path - 1);
  ::unlink(socket_path.c_str());
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
          0 ||
      ::listen(fd, 8) != 0) {
    const std::string why = std::strerror(errno);
    ::close(fd);
    throw std::runtime_error(socket_path + ": " + why);
  }
  for (;;) {
    if (should_stop && should_stop()) break;
    const int conn = ::accept(fd, nullptr, nullptr);
    if (conn < 0) {
      // A signal (SIGTERM drain, handlers installed without SA_RESTART)
      // interrupts accept; re-check the stop predicate and keep
      // listening otherwise.
      if (errno == EINTR) continue;
      break;
    }
    FdStreambuf buffer(conn);
    std::istream conn_in(&buffer);
    std::ostream conn_out(&buffer);
    serve_stream(core, conn_in, conn_out, threads);
    ::close(conn);
    if (should_stop && should_stop()) break;
  }
  ::close(fd);
}

#else

void serve_unix_socket(ServerCore&, const std::string&, std::size_t,
                       const std::function<bool()>&) {
  throw std::runtime_error("unix sockets are not supported on this platform");
}

#endif

}  // namespace ceal::serve
