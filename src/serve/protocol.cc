#include "serve/protocol.h"

#include <charconv>
#include <initializer_list>

namespace ceal::serve {

namespace {

[[noreturn]] void fail(const std::string& where, const std::string& why) {
  throw ProtocolError(where + ": " + why);
}

const json::Value& require(const json::Value& obj, const std::string& key,
                           const std::string& where) {
  const json::Value* v = obj.find(key);
  if (v == nullptr) fail(where + ":" + key, "missing required field");
  return *v;
}

std::string get_string(const json::Value& v, const std::string& where) {
  if (v.kind() != json::Value::Kind::kString) fail(where, "expected a string");
  return v.as_string();
}

bool get_bool(const json::Value& v, const std::string& where) {
  if (v.kind() != json::Value::Kind::kBool) fail(where, "expected a boolean");
  return v.as_bool();
}

// Unsigned integers (seeds, counts) go through from_chars on the exact
// number lexeme: 1.5, -1, and 1e3 are all rejected rather than rounded.
std::uint64_t get_u64(const json::Value& v, const std::string& where) {
  if (v.kind() != json::Value::Kind::kNumber)
    fail(where, "expected an unsigned integer");
  const std::string& lexeme = v.number_lexeme();
  std::uint64_t out = 0;
  const char* end = lexeme.data() + lexeme.size();
  auto [ptr, ec] = std::from_chars(lexeme.data(), end, out);
  if (ec != std::errc() || ptr != end)
    fail(where, "expected an unsigned integer, got " + lexeme);
  return out;
}

std::size_t get_size(const json::Value& v, const std::string& where,
                     std::size_t min_value) {
  const std::uint64_t raw = get_u64(v, where);
  if (raw < min_value) fail(where, "must be >= " + std::to_string(min_value));
  return static_cast<std::size_t>(raw);
}

double get_nonnegative(const json::Value& v, const std::string& where) {
  if (v.kind() != json::Value::Kind::kNumber) fail(where, "expected a number");
  const double value = v.as_double();
  if (!(value >= 0.0)) fail(where, "must be >= 0, got " + v.number_lexeme());
  return value;
}

double get_rate(const json::Value& v, const std::string& where) {
  const double value = get_nonnegative(v, where);
  if (value > 1.0) fail(where, "must be in [0, 1], got " + v.number_lexeme());
  return value;
}

std::string check_choice(std::string value,
                         std::initializer_list<std::string_view> choices,
                         const std::string& where) {
  std::string expected;
  for (std::string_view choice : choices) {
    if (value == choice) return value;
    if (!expected.empty()) expected += '|';
    expected += choice;
  }
  fail(where, "unknown value \"" + value + "\" (expected " + expected + ")");
}

// Strictness first: any field outside the op's schema is an error, so a
// typo'd knob can never silently fall back to its default.
void reject_unknown(const json::Value& obj,
                    std::initializer_list<std::string_view> allowed,
                    const std::string& where) {
  for (const auto& [key, value] : obj.members()) {
    bool known = false;
    for (std::string_view candidate : allowed) {
      if (key == candidate) {
        known = true;
        break;
      }
    }
    if (!known) fail(where + ":" + key, "unknown field");
  }
}

// Session ids double as journal/manifest file stems, so they are held to
// a filename-safe alphabet.
std::string get_session_id(const json::Value& obj, const std::string& where) {
  const std::string id =
      get_string(require(obj, "id", where), where + ":id");
  if (id.empty()) fail(where + ":id", "must not be empty");
  if (id.size() > 64) fail(where + ":id", "must be at most 64 characters");
  for (char c : id) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '-' || c == '.';
    if (!ok) fail(where + ":id", "may contain only [A-Za-z0-9._-]");
  }
  if (id.front() == '.') fail(where + ":id", "must not start with '.'");
  return id;
}

const std::initializer_list<std::string_view> kCreateKeys = {
    "op",          "id",          "workflow",     "objective",
    "algorithm",   "budget",      "seed",         "pool_size",
    "pool_seed",   "component_samples",           "history",
    "fault_rate",  "outlier_rate", "deadline",    "max_attempts"};

// The session.create fields minus op/id — shared verbatim with the
// durable manifest, so a request and a resumed manifest cannot drift.
CreateParams parse_create_fields(const json::Value& obj,
                                 const std::string& where) {
  CreateParams p;
  p.workflow = check_choice(
      get_string(require(obj, "workflow", where), where + ":workflow"),
      {"LV", "HS", "GP"}, where + ":workflow");
  p.objective = check_choice(
      get_string(require(obj, "objective", where), where + ":objective"),
      {"exec", "comp"}, where + ":objective");
  if (const json::Value* v = obj.find("algorithm")) {
    p.algorithm = check_choice(get_string(*v, where + ":algorithm"),
                               {"CEAL", "AL", "RS", "GEIST", "ALpH", "BO",
                                "BO-CEAL"},
                               where + ":algorithm");
  }
  p.budget = get_size(require(obj, "budget", where), where + ":budget", 1);
  if (const json::Value* v = obj.find("seed"))
    p.seed = get_u64(*v, where + ":seed");
  if (const json::Value* v = obj.find("pool_size"))
    p.pool_size = get_size(*v, where + ":pool_size", 1);
  if (const json::Value* v = obj.find("pool_seed"))
    p.pool_seed = get_u64(*v, where + ":pool_seed");
  if (const json::Value* v = obj.find("component_samples"))
    p.component_samples = get_size(*v, where + ":component_samples", 1);
  if (const json::Value* v = obj.find("history"))
    p.history = get_bool(*v, where + ":history");
  if (const json::Value* v = obj.find("fault_rate"))
    p.fault_rate = get_rate(*v, where + ":fault_rate");
  if (const json::Value* v = obj.find("outlier_rate"))
    p.outlier_rate = get_rate(*v, where + ":outlier_rate");
  if (const json::Value* v = obj.find("deadline"))
    p.deadline_s = get_nonnegative(*v, where + ":deadline");
  if (const json::Value* v = obj.find("max_attempts"))
    p.max_attempts = get_size(*v, where + ":max_attempts", 1);
  return p;
}

}  // namespace

Request parse_request(const std::string& line) {
  json::Value doc;
  try {
    doc = json::Value::parse(line);
  } catch (const std::exception& e) {
    fail("request", std::string("invalid JSON: ") + e.what());
  }
  if (!doc.is_object()) fail("request", "expected a JSON object");

  const std::string op =
      get_string(require(doc, "op", "request"), "request:op");

  Request req;
  if (op == "session.create") {
    req.op = Op::kCreate;
    reject_unknown(doc, kCreateKeys, "request");
    req.session_id = get_session_id(doc, "request");
    req.create = parse_create_fields(doc, "request");
  } else if (op == "session.step") {
    req.op = Op::kStep;
    reject_unknown(doc, {"op", "id", "steps"}, "request");
    req.session_id = get_session_id(doc, "request");
    if (const json::Value* v = doc.find("steps"))
      req.steps = get_size(*v, "request:steps", 1);
  } else if (op == "session.query") {
    req.op = Op::kQuery;
    reject_unknown(doc, {"op", "id", "save_result"}, "request");
    req.session_id = get_session_id(doc, "request");
    if (const json::Value* v = doc.find("save_result")) {
      req.save_result = get_string(*v, "request:save_result");
      if (req.save_result.empty())
        fail("request:save_result", "must not be empty");
    }
  } else if (op == "session.cancel") {
    req.op = Op::kCancel;
    reject_unknown(doc, {"op", "id"}, "request");
    req.session_id = get_session_id(doc, "request");
  } else if (op == "server.stats") {
    req.op = Op::kStats;
    reject_unknown(doc, {"op"}, "request");
  } else if (op == "server.metrics") {
    req.op = Op::kMetrics;
    reject_unknown(doc, {"op"}, "request");
  } else if (op == "server.dump") {
    req.op = Op::kDump;
    reject_unknown(doc, {"op"}, "request");
  } else {
    fail("request:op", "unknown op \"" + op + "\"");
  }
  return req;
}

const char* op_name(Op op) {
  switch (op) {
    case Op::kCreate: return "create";
    case Op::kStep: return "step";
    case Op::kQuery: return "query";
    case Op::kCancel: return "cancel";
    case Op::kStats: return "stats";
    case Op::kMetrics: return "metrics";
    case Op::kDump: return "dump";
  }
  return "unknown";
}

json::Value error_response(std::string message) {
  json::Value response = json::Value::object();
  response.set("ok", json::Value::boolean(false));
  response.set("error", json::Value::string(std::move(message)));
  return response;
}

json::Value to_manifest(const std::string& id, const CreateParams& params) {
  json::Value m = json::Value::object();
  m.set("id", json::Value::string(id));
  m.set("workflow", json::Value::string(params.workflow));
  m.set("objective", json::Value::string(params.objective));
  m.set("algorithm", json::Value::string(params.algorithm));
  m.set("budget",
        json::Value::number(static_cast<std::uint64_t>(params.budget)));
  m.set("seed", json::Value::number(params.seed));
  m.set("pool_size",
        json::Value::number(static_cast<std::uint64_t>(params.pool_size)));
  m.set("pool_seed", json::Value::number(params.pool_seed));
  m.set("component_samples",
        json::Value::number(
            static_cast<std::uint64_t>(params.component_samples)));
  m.set("history", json::Value::boolean(params.history));
  m.set("fault_rate", json::Value::number(params.fault_rate));
  m.set("outlier_rate", json::Value::number(params.outlier_rate));
  m.set("deadline", json::Value::number(params.deadline_s));
  m.set("max_attempts",
        json::Value::number(static_cast<std::uint64_t>(params.max_attempts)));
  return m;
}

CreateParams create_from_manifest(const json::Value& manifest,
                                  const std::string& where) {
  if (!manifest.is_object()) fail(where, "expected a JSON object");
  reject_unknown(manifest, kCreateKeys, where);
  get_session_id(manifest, where);  // validates the embedded id
  return parse_create_fields(manifest, where);
}

}  // namespace ceal::serve
