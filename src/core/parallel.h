// Process-wide worker pool for the compute-bound hot paths (histogram
// split search, batch model prediction, pool featurization).
//
// A single shared pool avoids one-pool-per-model-fit thread churn; the
// consumers are written so their numeric results are bitwise identical
// for any worker count (fixed work decomposition, ordered reductions),
// which keeps reproduction runs seed-stable on any host. Tests exercise
// that contract by resizing the pool between runs.
#pragma once

#include <cstddef>

#include "core/thread_pool.h"

namespace ceal {

/// The shared pool. Lazily constructed on first use with
/// hardware_concurrency workers (overridable via the CEAL_THREADS
/// environment variable; CEAL_THREADS=1 forces serial execution).
ThreadPool& global_thread_pool();

/// Replaces the shared pool with one of `threads` workers (0 = hardware
/// concurrency). Blocks until the old pool drains. Not safe to call
/// concurrently with work running on the pool.
void set_global_thread_pool_threads(std::size_t threads);

/// Worker count of the shared pool (constructs it on first use).
std::size_t global_thread_count();

/// Runs fn(i) for i in [begin, end), on the shared pool when it has more
/// than one worker and inline otherwise. On a single-lane configuration
/// (CEAL_THREADS=1 or a one-core host) pool dispatch would only add
/// queue/wakeup overhead on top of timesharing, so the loop stays on the
/// calling thread. Consumers must not depend on the execution placement.
void parallel_apply(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& fn);

}  // namespace ceal
