// Seeded, deterministic exponential backoff with jitter — the one retry
// schedule shared by every layer that re-attempts failed work: the
// Collector's measurement retries (tuner/collector.cc) and the
// subprocess measurement plane's worker restarts
// (measure/subprocess.cc).
//
// The schedule is a pure function of (policy, seed, call count): delay k
// is min(initial_s * multiplier^k, max_s) scaled by a jitter factor
// drawn from a private ceal::Rng seeded at construction. Two Backoff
// instances with the same policy and seed therefore produce the same
// delay sequence — replays of a crashed session (or of a chaos test)
// see identical waits, which is what keeps fault-injected runs exactly
// reproducible. The jitter still decorrelates *different* seeds (worker
// 0 and worker 1 never stampede the same instant), which is the usual
// reason jitter exists.
//
// A Backoff never sleeps itself; callers decide whether a delay is a
// real clock wait (worker restarts) or a simulated one that is merely
// recorded (Collector retries inside the simulator have no wall clock
// to wait out).
#pragma once

#include <cstdint>

#include "core/rng.h"

namespace ceal {

struct BackoffPolicy {
  /// First delay in seconds (before jitter).
  double initial_s = 0.05;
  /// Growth factor per retry; must be >= 1.
  double multiplier = 2.0;
  /// Ceiling on the un-jittered delay.
  double max_s = 2.0;
  /// Jitter fraction in [0, 1]: each delay is scaled by a factor drawn
  /// uniformly from [1 - jitter, 1 + jitter]. 0 disables jitter (and
  /// the rng is never consumed, so jitter-free schedules draw nothing).
  double jitter = 0.25;
  /// Retries allowed before exhausted() turns true. This bounds the
  /// *schedule*; callers may additionally bound attempts themselves
  /// (the Collector's max_attempts does).
  std::size_t max_retries = 5;
};

/// One retry schedule. Not thread-safe; give each retrying unit
/// (measurement request, worker slot) its own instance.
class Backoff {
 public:
  /// `seed` roots the jitter stream; same (policy, seed) => same delays.
  Backoff(const BackoffPolicy& policy, std::uint64_t seed)
      : policy_(policy), rng_(Rng(seed).split(0xB0FFULL)) {}

  /// True once max_retries delays have been handed out.
  bool exhausted() const { return retries_ >= policy_.max_retries; }

  /// Retries scheduled so far.
  std::size_t retries() const { return retries_; }

  /// Delays handed out so far, summed (seconds).
  double total_delay_s() const { return total_delay_s_; }

  /// Next delay in seconds: exponential, capped, jittered. Advances the
  /// schedule. Callers should check exhausted() first; calling past
  /// exhaustion keeps returning capped delays (the schedule saturates,
  /// it does not wrap).
  double next_delay_s() {
    double delay = policy_.initial_s;
    for (std::size_t k = 0; k < retries_ && delay < policy_.max_s; ++k) {
      delay *= policy_.multiplier;
    }
    if (delay > policy_.max_s) delay = policy_.max_s;
    if (policy_.jitter > 0.0 && delay > 0.0) {
      delay *= rng_.uniform(1.0 - policy_.jitter, 1.0 + policy_.jitter);
    }
    ++retries_;
    total_delay_s_ += delay;
    return delay;
  }

  /// Forgets past retries (a success resets the schedule); the jitter
  /// stream keeps advancing, so reset does not replay old delays.
  void reset() {
    retries_ = 0;
    total_delay_s_ = 0.0;
  }

 private:
  BackoffPolicy policy_;
  Rng rng_;
  std::size_t retries_ = 0;
  double total_delay_s_ = 0.0;
};

}  // namespace ceal
