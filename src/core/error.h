// Error-handling helpers shared across the CEAL library.
//
// We follow the C++ Core Guidelines: exceptions signal violated
// preconditions or invariants; the macros below give call sites a compact
// way to state their contracts without losing the failing expression text.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace ceal {

/// Exception thrown when a caller violates a documented precondition.
class PreconditionError : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

/// Exception thrown when an internal invariant fails (a library bug).
class InvariantError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

namespace detail {

[[noreturn]] inline void throw_precondition(const char* expr, const char* file,
                                            int line, const std::string& msg) {
  std::ostringstream os;
  os << "precondition failed: " << expr << " at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw PreconditionError(os.str());
}

[[noreturn]] inline void throw_invariant(const char* expr, const char* file,
                                         int line, const std::string& msg) {
  std::ostringstream os;
  os << "invariant failed: " << expr << " at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw InvariantError(os.str());
}

}  // namespace detail
}  // namespace ceal

/// Validate a caller-supplied argument; throws ceal::PreconditionError.
#define CEAL_EXPECT(expr)                                                  \
  do {                                                                     \
    if (!(expr))                                                           \
      ::ceal::detail::throw_precondition(#expr, __FILE__, __LINE__, ""); \
  } while (false)

/// Like CEAL_EXPECT but with an explanatory message.
#define CEAL_EXPECT_MSG(expr, msg)                                          \
  do {                                                                      \
    if (!(expr))                                                            \
      ::ceal::detail::throw_precondition(#expr, __FILE__, __LINE__, (msg)); \
  } while (false)

/// Validate an internal invariant; throws ceal::InvariantError.
#define CEAL_ENSURE(expr)                                               \
  do {                                                                  \
    if (!(expr))                                                        \
      ::ceal::detail::throw_invariant(#expr, __FILE__, __LINE__, ""); \
  } while (false)

#define CEAL_ENSURE_MSG(expr, msg)                                       \
  do {                                                                   \
    if (!(expr))                                                         \
      ::ceal::detail::throw_invariant(#expr, __FILE__, __LINE__, (msg)); \
  } while (false)
