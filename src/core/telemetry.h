// Structured tracing + metrics for the tuning loop.
//
// Three pieces:
//  * Telemetry — a registry of named counters, gauges, and span timers,
//    plus an optional TraceSink that receives structured TraceEvents.
//  * TraceSink — where events go: JsonlTraceSink writes one JSON object
//    per line, NullTraceSink swallows everything (for overhead tests),
//    MultiTraceSink fans out to several sinks, BufferTraceSink keeps
//    events in memory for a deterministic merge into a parent.
//  * ScopedSpan — RAII wall-clock timer charging a named span
//    accumulator; a no-op when constructed with a null Telemetry.
//
// Thread-safety contract: one Telemetry may be shared by any number of
// concurrent writers. Counters, gauges, and spans live in name-sharded
// accumulators (one mutex per shard); emit() serialises sequence-number
// stamping and the sink write behind a single mutex, so a sink's write()
// is never entered concurrently. Snapshot accessors (counters(),
// gauges(), spans(), summary_*) merge the shards into one sorted map, so
// their output is independent of shard layout and thread interleaving.
//
// Determinism contract: every event field except the `timing` sub-object
// must be a deterministic function of the tuning session's seed. All
// wall-clock values live exclusively under `timing`, so two traces of
// the same seeded session are byte-identical once `timing` is stripped
// (`ceal_trace --check-determinism` and tests/tuner/test_trace.cc hold
// the instrumentation to this). Concurrent emitters interleave
// nondeterministically — when event *order* must stay a function of the
// seed (parallel replications), give each concurrent unit its own child
// Telemetry with a BufferTraceSink and merge() the children in a fixed
// order afterwards (tuner::evaluate does exactly this).
//
// Overhead contract: code under instrumentation holds a nullable
// `Telemetry*`; with no telemetry attached every instrumentation site
// reduces to one branch on that pointer (bench_micro_telemetry measures
// the residual cost and fails when the session delta breaks the bound).
#pragma once

#include <array>
#include <cstdint>
#include <fstream>
#include <map>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "core/json.h"
#include "core/table.h"

namespace ceal::telemetry {

/// Monotonic (steady_clock) seconds since an arbitrary epoch.
double monotonic_seconds();

/// One structured trace record: a name, deterministic fields, and
/// wall-clock timing fields kept in a separate sub-object.
class TraceEvent {
 public:
  explicit TraceEvent(std::string name) : name_(std::move(name)) {}

  TraceEvent& field(std::string key, json::Value v);
  TraceEvent& field(std::string key, bool v);
  TraceEvent& field(std::string key, double v);
  TraceEvent& field(std::string key, std::int64_t v);
  TraceEvent& field(std::string key, std::uint64_t v);
  TraceEvent& field(std::string key, int v);
  TraceEvent& field(std::string key, const char* v);
  TraceEvent& field(std::string key, std::string v);
  TraceEvent& field(std::string key, std::span<const std::size_t> v);
  TraceEvent& field(std::string key, std::span<const double> v);

  /// Wall-clock seconds; serialised under the `timing` sub-object.
  TraceEvent& timing(std::string key, double seconds);

  const std::string& name() const { return name_; }

  /// {"event":name,["seq":n,]fields...,["timing":{...}]}
  json::Value to_json() const;

 private:
  friend class Telemetry;

  std::string name_;
  std::optional<std::uint64_t> seq_;
  std::vector<std::pair<std::string, json::Value>> fields_;
  std::vector<std::pair<std::string, double>> timing_;
};

/// Receives trace events. Implementations must tolerate events of any
/// name — the schema is open (docs/OBSERVABILITY.md). A sink attached to
/// a Telemetry has its write() serialised by the emit lock, so write()
/// itself does not need to be re-entrant; a sink shared by several
/// Telemetry instances must synchronise internally.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void write(const TraceEvent& event) = 0;
  virtual void flush() {}
};

/// Swallows everything; stands in for "tracing disabled" where a sink is
/// structurally required (overhead benchmarks).
class NullTraceSink final : public TraceSink {
 public:
  void write(const TraceEvent&) override {}
};

/// One compact JSON object per line. The file constructor owns the
/// stream and flushes on destruction; the ostream constructor borrows.
/// An internal mutex serialises writes, so one JsonlTraceSink may be
/// shared by several Telemetry instances without interleaving lines.
class JsonlTraceSink final : public TraceSink {
 public:
  explicit JsonlTraceSink(std::ostream& os) : os_(&os) {}
  /// Opens (truncates) `path`; throws PreconditionError on failure.
  explicit JsonlTraceSink(const std::string& path);
  ~JsonlTraceSink() override;

  void write(const TraceEvent& event) override;
  void flush() override;

 private:
  std::mutex mutex_;
  std::ofstream file_;
  std::ostream* os_ = nullptr;
};

/// Fans one event out to several sinks, in order.
class MultiTraceSink final : public TraceSink {
 public:
  explicit MultiTraceSink(std::vector<TraceSink*> sinks);
  void write(const TraceEvent& event) override;
  void flush() override;

 private:
  std::vector<TraceSink*> sinks_;
};

/// Keeps every event in memory, in arrival order. The building block of
/// the deterministic parallel-tracing pattern: each concurrent unit
/// (replication, worker) emits into its own child Telemetry backed by a
/// BufferTraceSink, and the parent replays the buffers in a fixed order
/// via Telemetry::merge once the parallel section is over.
class BufferTraceSink final : public TraceSink {
 public:
  void write(const TraceEvent& event) override;

  /// The buffered events, in emission order. Only call after the
  /// producing session finished (no concurrent write()).
  std::span<const TraceEvent> events() const { return events_; }
  std::size_t size() const { return events_.size(); }
  void clear() { events_.clear(); }

 private:
  std::vector<TraceEvent> events_;
};

struct SpanStats {
  std::uint64_t count = 0;
  double total_s = 0.0;
};

/// Shared bucket layout of every histogram: four log-spaced buckets per
/// decade spanning [1e-9, 1e9] (upper_bounds[k] = 10^(k/4 - 9)), plus
/// one overflow bucket. One fixed layout means any two histograms merge
/// bucket-by-bucket and the Prometheus exposition needs no per-metric
/// configuration.
inline constexpr std::size_t kHistogramBounds = 73;
inline constexpr std::size_t kHistogramBuckets = kHistogramBounds + 1;

/// The inclusive (`le`) upper edges, ascending. Computed once.
std::span<const double> histogram_upper_bounds();

/// Distribution accumulator: exact count/sum/min/max plus the fixed
/// log-spaced bucket counts above. `sum` of integer-valued observations
/// is exact and order-independent (integers up to 2^53 add exactly in a
/// double), so such histograms are deterministic under any merge order;
/// wall-clock histograms are not, and must be named `timing.*` so the
/// determinism gates strip them (see docs/OBSERVABILITY.md).
struct HistogramStats {
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;  ///< Meaningful only when count > 0.
  double max = 0.0;
  /// kHistogramBuckets entries; empty until the first observation.
  std::vector<std::uint64_t> buckets;

  void observe(double value);
  void merge(const HistogramStats& other);
  /// Bucket-interpolated quantile (stats.h histogram_quantile), clamped
  /// to [min, max]. Requires count > 0.
  double quantile(double q) const;
};

/// Registry of counters, gauges, and span accumulators, with an optional
/// trace sink. Safe under concurrent writers: accumulator updates are
/// sharded by name, and emit() serialises the sequence stamp + sink
/// write. See the file header for how to keep event *order*
/// deterministic across threads (child instances + merge()).
class Telemetry {
 public:
  explicit Telemetry(TraceSink* sink = nullptr) : sink_(sink) {}

  Telemetry(const Telemetry&) = delete;
  Telemetry& operator=(const Telemetry&) = delete;

  /// Not synchronised with concurrent emit(); set the sink before the
  /// instrumented session starts.
  void set_sink(TraceSink* sink) { sink_ = sink; }
  TraceSink* sink() const { return sink_; }
  bool tracing() const { return sink_ != nullptr; }

  /// Stamps the event with the next sequence number and forwards it to
  /// the sink; drops it (cheaply) when no sink is attached. Concurrent
  /// calls serialise: sequence numbers are unique and the sink never
  /// sees two writes at once.
  void emit(TraceEvent event);

  void count(std::string_view name, std::uint64_t delta = 1);
  /// 0 for a counter never incremented.
  std::uint64_t counter(std::string_view name) const;

  /// Last-write-wins gauge.
  void gauge(std::string_view name, double value);
  /// High-water gauge: keeps the maximum of all values ever set.
  void gauge_max(std::string_view name, double value);

  /// Adds one timed interval to the named span accumulator (ScopedSpan
  /// calls this; direct use is fine for externally measured intervals).
  void add_span(std::string_view name, double seconds);
  SpanStats span_stats(std::string_view name) const;

  /// Adds one observation to the named histogram. Wall-clock
  /// observations must go to a `timing.*`-named histogram (determinism
  /// contract); deterministic quantities (counts of things) may use any
  /// other name.
  void observe(std::string_view name, double value);
  HistogramStats histogram_stats(std::string_view name) const;

  /// Snapshots: the shards merged into one name-sorted map. The result
  /// is independent of shard layout; taking a snapshot while writers are
  /// active yields some consistent intermediate state.
  std::map<std::string, std::uint64_t, std::less<>> counters() const;
  std::map<std::string, double, std::less<>> gauges() const;
  std::map<std::string, SpanStats, std::less<>> spans() const;
  std::map<std::string, HistogramStats, std::less<>> histograms() const;

  /// Deterministic merge of a child's accumulators into this instance:
  /// counters, span stats, and histograms add, gauges take the child's
  /// value. When
  /// `events` is non-empty (a BufferTraceSink's buffer) each event is
  /// re-emitted through this instance in order, acquiring fresh sequence
  /// numbers — so merging children in a fixed order reproduces the exact
  /// event stream a serial run would have produced.
  void merge(const Telemetry& child,
             std::span<const TraceEvent> events = {});

  /// "telemetry.summary" event: counters and gauges as deterministic
  /// fields, span call counts as fields, span totals under `timing`.
  /// Histograms surface as `hist.<name>.<stat>` (count, sum, min, max,
  /// p50, p90, p99); every stat of a `timing.*`-named histogram goes
  /// under `timing` so the determinism strip removes it whole.
  TraceEvent summary_event() const;

  /// Human-readable metrics table (kind, name, count/value, total
  /// seconds) for `ceal_tune --metrics-summary`.
  Table summary_table() const;

 private:
  // Accumulators are sharded by a hash of the metric name so concurrent
  // writers on different names rarely contend; one name always maps to
  // one shard, which keeps gauge last-write-wins and counter addition
  // race-free under the shard mutex.
  struct Shard {
    mutable std::mutex mutex;
    std::map<std::string, std::uint64_t, std::less<>> counters;
    std::map<std::string, double, std::less<>> gauges;
    std::map<std::string, SpanStats, std::less<>> spans;
    std::map<std::string, HistogramStats, std::less<>> histograms;
  };
  static constexpr std::size_t kShards = 8;

  Shard& shard_for(std::string_view name);
  const Shard& shard_for(std::string_view name) const;

  TraceSink* sink_;
  std::mutex emit_mutex_;          // guards seq_ and the sink write
  std::uint64_t seq_ = 0;
  std::array<Shard, kShards> shards_;
};

/// RAII wall-clock span: charges `telemetry->add_span(name, elapsed)` on
/// stop()/destruction. With a null Telemetry every member is one branch.
class ScopedSpan {
 public:
  ScopedSpan(Telemetry* telemetry, const char* name)
      : telemetry_(telemetry), name_(name) {
    if (telemetry_ != nullptr) start_ = monotonic_seconds();
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;
  ~ScopedSpan() { stop(); }

  /// Records the span once; further calls return the first elapsed time.
  /// Returns 0 when no telemetry is attached.
  double stop();

 private:
  Telemetry* telemetry_;
  const char* name_;
  double start_ = 0.0;
  double elapsed_ = 0.0;
};

/// RAII wall-clock timer feeding a histogram: charges
/// `telemetry->observe(name, elapsed)` on stop()/destruction. `name`
/// must be a `timing.*` histogram (wall clocks are nondeterministic).
/// With a null Telemetry every member is one branch.
class ScopedHistogramTimer {
 public:
  ScopedHistogramTimer(Telemetry* telemetry, const char* name)
      : telemetry_(telemetry), name_(name) {
    if (telemetry_ != nullptr) start_ = monotonic_seconds();
  }
  ScopedHistogramTimer(const ScopedHistogramTimer&) = delete;
  ScopedHistogramTimer& operator=(const ScopedHistogramTimer&) = delete;
  ~ScopedHistogramTimer() { stop(); }

  /// Records the observation once; further calls return the first
  /// elapsed time. Returns 0 when no telemetry is attached.
  double stop();

 private:
  Telemetry* telemetry_;
  const char* name_;
  double start_ = 0.0;
  double elapsed_ = 0.0;
};

}  // namespace ceal::telemetry
