// Structured tracing + metrics for the tuning loop.
//
// Three pieces:
//  * Telemetry — a registry of named counters, gauges, and span timers,
//    plus an optional TraceSink that receives structured TraceEvents.
//  * TraceSink — where events go: JsonlTraceSink writes one JSON object
//    per line, NullTraceSink swallows everything (for overhead tests),
//    MultiTraceSink fans out to several sinks, BufferTraceSink keeps
//    events in memory for a deterministic merge into a parent.
//  * ScopedSpan — RAII wall-clock timer charging a named span
//    accumulator; a no-op when constructed with a null Telemetry.
//
// Thread-safety contract: one Telemetry may be shared by any number of
// concurrent writers. Counters, gauges, and spans live in name-sharded
// accumulators (one mutex per shard); emit() serialises sequence-number
// stamping and the sink write behind a single mutex, so a sink's write()
// is never entered concurrently. Snapshot accessors (counters(),
// gauges(), spans(), summary_*) merge the shards into one sorted map, so
// their output is independent of shard layout and thread interleaving.
//
// Determinism contract: every event field except the `timing` sub-object
// must be a deterministic function of the tuning session's seed. All
// wall-clock values live exclusively under `timing`, so two traces of
// the same seeded session are byte-identical once `timing` is stripped
// (`ceal_trace --check-determinism` and tests/tuner/test_trace.cc hold
// the instrumentation to this). Concurrent emitters interleave
// nondeterministically — when event *order* must stay a function of the
// seed (parallel replications), give each concurrent unit its own child
// Telemetry with a BufferTraceSink and merge() the children in a fixed
// order afterwards (tuner::evaluate does exactly this).
//
// Overhead contract: code under instrumentation holds a nullable
// `Telemetry*`; with no telemetry attached every instrumentation site
// reduces to one branch on that pointer (bench_micro_telemetry measures
// the residual cost and fails when the session delta breaks the bound).
#pragma once

#include <array>
#include <cstdint>
#include <fstream>
#include <map>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "core/json.h"
#include "core/table.h"

namespace ceal::telemetry {

class FlightRecorder;

/// Monotonic (steady_clock) seconds since an arbitrary epoch.
double monotonic_seconds();

/// Identity of one causal span: which trace it belongs to, which span it
/// is, and which span caused it. Ids are deterministic functions of the
/// session seed + an allocation counter (never wall clocks), so the span
/// tree of a seeded run is byte-identical across thread counts. Id 0
/// means "none" (an unparented root).
struct TraceContext {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent_span_id = 0;
};

/// splitmix64 finalizer: the id-derivation mix for trace/span ids.
std::uint64_t mix64(std::uint64_t x);

/// Ids render as fixed-width lowercase hex in events ("%016x"), which
/// keeps them byte-stable and avoids double-precision loss in JSON.
std::string span_id_hex(std::uint64_t id);

/// One structured trace record: a name, deterministic fields, and
/// wall-clock timing fields kept in a separate sub-object.
class TraceEvent {
 public:
  explicit TraceEvent(std::string name) : name_(std::move(name)) {}

  TraceEvent& field(std::string key, json::Value v);
  TraceEvent& field(std::string key, bool v);
  TraceEvent& field(std::string key, double v);
  TraceEvent& field(std::string key, std::int64_t v);
  TraceEvent& field(std::string key, std::uint64_t v);
  TraceEvent& field(std::string key, int v);
  TraceEvent& field(std::string key, const char* v);
  TraceEvent& field(std::string key, std::string v);
  TraceEvent& field(std::string key, std::span<const std::size_t> v);
  TraceEvent& field(std::string key, std::span<const double> v);

  /// Wall-clock seconds; serialised under the `timing` sub-object.
  TraceEvent& timing(std::string key, double seconds);

  const std::string& name() const { return name_; }

  /// {"event":name,["seq":n,]fields...,["timing":{...}]}
  json::Value to_json() const;

 private:
  friend class Telemetry;

  std::string name_;
  std::optional<std::uint64_t> seq_;
  std::vector<std::pair<std::string, json::Value>> fields_;
  std::vector<std::pair<std::string, double>> timing_;
};

/// Receives trace events. Implementations must tolerate events of any
/// name — the schema is open (docs/OBSERVABILITY.md). A sink attached to
/// a Telemetry has its write() serialised by the emit lock, so write()
/// itself does not need to be re-entrant; a sink shared by several
/// Telemetry instances must synchronise internally.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void write(const TraceEvent& event) = 0;
  virtual void flush() {}
};

/// Swallows everything; stands in for "tracing disabled" where a sink is
/// structurally required (overhead benchmarks).
class NullTraceSink final : public TraceSink {
 public:
  void write(const TraceEvent&) override {}
};

/// One compact JSON object per line. The file constructor owns the
/// stream and flushes on destruction; the ostream constructor borrows.
/// An internal mutex serialises writes, so one JsonlTraceSink may be
/// shared by several Telemetry instances without interleaving lines.
class JsonlTraceSink final : public TraceSink {
 public:
  explicit JsonlTraceSink(std::ostream& os) : os_(&os) {}
  /// Opens (truncates) `path`; throws PreconditionError on failure.
  /// With `fsync_on_flush`, flush() additionally fsyncs the file so a
  /// SIGKILL after a flush cannot lose acknowledged lines (POSIX only;
  /// a no-op flag elsewhere). ceal_serve --trace-dir sinks set it.
  explicit JsonlTraceSink(const std::string& path,
                          bool fsync_on_flush = false);
  ~JsonlTraceSink() override;

  void write(const TraceEvent& event) override;
  void flush() override;

 private:
  std::mutex mutex_;
  std::ofstream file_;
  std::ostream* os_ = nullptr;
  std::string path_;
  bool fsync_on_flush_ = false;
};

/// Fans one event out to several sinks, in order.
class MultiTraceSink final : public TraceSink {
 public:
  explicit MultiTraceSink(std::vector<TraceSink*> sinks);
  void write(const TraceEvent& event) override;
  void flush() override;

 private:
  std::vector<TraceSink*> sinks_;
};

/// Keeps every event in memory, in arrival order. The building block of
/// the deterministic parallel-tracing pattern: each concurrent unit
/// (replication, worker) emits into its own child Telemetry backed by a
/// BufferTraceSink, and the parent replays the buffers in a fixed order
/// via Telemetry::merge once the parallel section is over.
class BufferTraceSink final : public TraceSink {
 public:
  void write(const TraceEvent& event) override;

  /// The buffered events, in emission order. Only call after the
  /// producing session finished (no concurrent write()).
  std::span<const TraceEvent> events() const { return events_; }
  std::size_t size() const { return events_.size(); }
  void clear() { events_.clear(); }

 private:
  std::vector<TraceEvent> events_;
};

struct SpanStats {
  std::uint64_t count = 0;
  double total_s = 0.0;
};

/// Shared bucket layout of every histogram: four log-spaced buckets per
/// decade spanning [1e-9, 1e9] (upper_bounds[k] = 10^(k/4 - 9)), plus
/// one overflow bucket. One fixed layout means any two histograms merge
/// bucket-by-bucket and the Prometheus exposition needs no per-metric
/// configuration.
inline constexpr std::size_t kHistogramBounds = 73;
inline constexpr std::size_t kHistogramBuckets = kHistogramBounds + 1;

/// The inclusive (`le`) upper edges, ascending. Computed once.
std::span<const double> histogram_upper_bounds();

/// Distribution accumulator: exact count/sum/min/max plus the fixed
/// log-spaced bucket counts above. `sum` of integer-valued observations
/// is exact and order-independent (integers up to 2^53 add exactly in a
/// double), so such histograms are deterministic under any merge order;
/// wall-clock histograms are not, and must be named `timing.*` so the
/// determinism gates strip them (see docs/OBSERVABILITY.md).
struct HistogramStats {
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;  ///< Meaningful only when count > 0.
  double max = 0.0;
  /// kHistogramBuckets entries; empty until the first observation.
  std::vector<std::uint64_t> buckets;

  void observe(double value);
  void merge(const HistogramStats& other);
  /// Bucket-interpolated quantile (stats.h histogram_quantile), clamped
  /// to [min, max]. Requires count > 0.
  double quantile(double q) const;
};

/// Registry of counters, gauges, and span accumulators, with an optional
/// trace sink. Safe under concurrent writers: accumulator updates are
/// sharded by name, and emit() serialises the sequence stamp + sink
/// write. See the file header for how to keep event *order*
/// deterministic across threads (child instances + merge()).
class Telemetry {
 public:
  explicit Telemetry(TraceSink* sink = nullptr) : sink_(sink) {}

  Telemetry(const Telemetry&) = delete;
  Telemetry& operator=(const Telemetry&) = delete;

  /// Not synchronised with concurrent emit(); set the sink before the
  /// instrumented session starts.
  void set_sink(TraceSink* sink) { sink_ = sink; }
  TraceSink* sink() const { return sink_; }
  bool tracing() const { return sink_ != nullptr; }

  /// Attaches a (borrowed, not owned) flight recorder that captures the
  /// serialized form of every emitted event. Not synchronised with
  /// concurrent emit(); attach before the instrumented session starts.
  void set_flight_recorder(FlightRecorder* recorder) {
    recorder_ = recorder;
  }
  FlightRecorder* flight_recorder() const { return recorder_; }

  /// True when emitted events go anywhere (sink or flight recorder).
  /// The cheap one-branch check causal spans make before allocating ids.
  bool observed() const {
    return sink_ != nullptr || recorder_ != nullptr;
  }

  /// Stamps the event with the next sequence number and forwards it to
  /// the sink and/or flight recorder; drops it (cheaply) when neither is
  /// attached. Concurrent calls serialise: sequence numbers are unique
  /// and the sink never sees two writes at once.
  void emit(TraceEvent event);

  /// --- Causal spans -------------------------------------------------
  /// Roots this instance's span-id namespace at `seed`: trace_id =
  /// mix64(seed) (forced nonzero), span ids are mix64(trace_id + n) for
  /// the n-th begin_span. Resets the span stack. Call once before the
  /// instrumented session starts; a begin_span on a never-seeded
  /// instance implicitly seeds with 0.
  void seed_trace(std::uint64_t seed);

  /// Joins `parent`'s trace from a concurrent strand (replication
  /// index, session lane): same trace_id, but span ids come from a
  /// strand-specific namespace — mix64(trace_id ^ (strand+1)·φ₂) — so
  /// sibling strands never collide, and depth-0 spans of this instance
  /// parent under `parent.span_id`. Used by the child-Telemetry merge
  /// pattern to keep parallel span trees deterministic.
  void adopt_trace(const TraceContext& parent, std::uint64_t strand);

  /// The innermost open span (or the adopted parent when the stack is
  /// empty; all-zero when tracing was never seeded).
  TraceContext current_span() const;

  /// Opens a span: allocates the next deterministic span id, parents it
  /// under the innermost open span, pushes it on the span stack, and
  /// emits `span.begin` (ids + strand as deterministic fields, start
  /// time under `timing.ts_s`). ScopedCausalSpan calls this.
  TraceContext begin_span(const char* name);

  /// Closes a span: emits `span.end` (same identity fields, end time
  /// under `timing.ts_s`, duration under `timing.dur_s`) and pops the
  /// stack if `ctx` is its top (tolerates out-of-order stops).
  void end_span(const char* name, const TraceContext& ctx,
                double elapsed_s);

  void count(std::string_view name, std::uint64_t delta = 1);
  /// 0 for a counter never incremented.
  std::uint64_t counter(std::string_view name) const;

  /// Last-write-wins gauge.
  void gauge(std::string_view name, double value);
  /// High-water gauge: keeps the maximum of all values ever set.
  void gauge_max(std::string_view name, double value);

  /// Adds one timed interval to the named span accumulator (ScopedSpan
  /// calls this; direct use is fine for externally measured intervals).
  void add_span(std::string_view name, double seconds);
  SpanStats span_stats(std::string_view name) const;

  /// Adds one observation to the named histogram. Wall-clock
  /// observations must go to a `timing.*`-named histogram (determinism
  /// contract); deterministic quantities (counts of things) may use any
  /// other name.
  void observe(std::string_view name, double value);
  HistogramStats histogram_stats(std::string_view name) const;

  /// Snapshots: the shards merged into one name-sorted map. The result
  /// is independent of shard layout; taking a snapshot while writers are
  /// active yields some consistent intermediate state.
  std::map<std::string, std::uint64_t, std::less<>> counters() const;
  std::map<std::string, double, std::less<>> gauges() const;
  std::map<std::string, SpanStats, std::less<>> spans() const;
  std::map<std::string, HistogramStats, std::less<>> histograms() const;

  /// Deterministic merge of a child's accumulators into this instance:
  /// counters, span stats, and histograms add, gauges take the child's
  /// value. When
  /// `events` is non-empty (a BufferTraceSink's buffer) each event is
  /// re-emitted through this instance in order, acquiring fresh sequence
  /// numbers — so merging children in a fixed order reproduces the exact
  /// event stream a serial run would have produced.
  void merge(const Telemetry& child,
             std::span<const TraceEvent> events = {});

  /// "telemetry.summary" event: counters and gauges as deterministic
  /// fields, span call counts as fields, span totals under `timing`.
  /// Histograms surface as `hist.<name>.<stat>` (count, sum, min, max,
  /// p50, p90, p99); every stat of a `timing.*`-named histogram goes
  /// under `timing` so the determinism strip removes it whole.
  TraceEvent summary_event() const;

  /// Human-readable metrics table (kind, name, count/value, total
  /// seconds) for `ceal_tune --metrics-summary`.
  Table summary_table() const;

 private:
  // Accumulators are sharded by a hash of the metric name so concurrent
  // writers on different names rarely contend; one name always maps to
  // one shard, which keeps gauge last-write-wins and counter addition
  // race-free under the shard mutex.
  struct Shard {
    mutable std::mutex mutex;
    std::map<std::string, std::uint64_t, std::less<>> counters;
    std::map<std::string, double, std::less<>> gauges;
    std::map<std::string, SpanStats, std::less<>> spans;
    std::map<std::string, HistogramStats, std::less<>> histograms;
  };
  static constexpr std::size_t kShards = 8;

  Shard& shard_for(std::string_view name);
  const Shard& shard_for(std::string_view name) const;

  TraceSink* sink_;
  FlightRecorder* recorder_ = nullptr;  // borrowed; see set_flight_recorder
  std::mutex emit_mutex_;          // guards seq_ and the sink write
  std::uint64_t seq_ = 0;
  std::array<Shard, kShards> shards_;

  // Causal-span state. A separate mutex from emit_mutex_: begin/end
  // compute ids under this lock, then emit() takes the emit lock — the
  // two never nest the other way, so no ordering cycle.
  void seed_trace_locked(std::uint64_t seed);
  mutable std::mutex causal_mutex_;
  std::uint64_t trace_id_ = 0;       // 0 = never seeded
  std::uint64_t span_base_ = 0;      // id-namespace root (strand-mixed)
  std::uint64_t strand_ = 0;         // emitted on span events
  std::uint64_t next_span_ = 0;      // allocation counter
  std::uint64_t adopted_parent_ = 0; // parent for depth-0 spans
  std::vector<std::uint64_t> span_stack_;
};

/// RAII wall-clock span: charges `telemetry->add_span(name, elapsed)` on
/// stop()/destruction. With a null Telemetry every member is one branch.
class ScopedSpan {
 public:
  ScopedSpan(Telemetry* telemetry, const char* name)
      : telemetry_(telemetry), name_(name) {
    if (telemetry_ != nullptr) start_ = monotonic_seconds();
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;
  ~ScopedSpan() { stop(); }

  /// Records the span once; further calls return the first elapsed time.
  /// Returns 0 when no telemetry is attached.
  double stop();

 private:
  Telemetry* telemetry_;
  const char* name_;
  double start_ = 0.0;
  double elapsed_ = 0.0;
};

/// RAII causal span: a ScopedSpan that additionally carries a
/// TraceContext and emits paired `span.begin`/`span.end` events when the
/// Telemetry is observed (sink or flight recorder attached). Always
/// charges the span accumulator like ScopedSpan, so converting a
/// ScopedSpan site to ScopedCausalSpan changes nothing for metrics
/// consumers. With a null Telemetry every member is one branch; with
/// telemetry attached but nothing observing, no events are built.
class ScopedCausalSpan {
 public:
  ScopedCausalSpan(Telemetry* telemetry, const char* name)
      : telemetry_(telemetry), name_(name) {
    if (telemetry_ != nullptr) {
      if (telemetry_->observed()) {
        ctx_ = telemetry_->begin_span(name_);
        traced_ = true;
      }
      // Clock starts after the begin event is built and emitted (and
      // stop() measures before emitting span.end), so serialization
      // cost never lands inside the charged window — microsecond-scale
      // spans would otherwise double under tracing.
      start_ = monotonic_seconds();
    }
  }
  ScopedCausalSpan(const ScopedCausalSpan&) = delete;
  ScopedCausalSpan& operator=(const ScopedCausalSpan&) = delete;
  ~ScopedCausalSpan() { stop(); }

  /// This span's identity — pass to Telemetry::adopt_trace to parent a
  /// concurrent child strand under it. All-zero when untraced.
  const TraceContext& context() const { return ctx_; }

  /// Records the span (accumulator + span.end) once; further calls
  /// return the first elapsed time. Returns 0 with no telemetry.
  double stop();

 private:
  Telemetry* telemetry_;
  const char* name_;
  TraceContext ctx_;
  bool traced_ = false;
  double start_ = 0.0;
  double elapsed_ = 0.0;
};

/// RAII wall-clock timer feeding a histogram: charges
/// `telemetry->observe(name, elapsed)` on stop()/destruction. `name`
/// must be a `timing.*` histogram (wall clocks are nondeterministic).
/// With a null Telemetry every member is one branch.
class ScopedHistogramTimer {
 public:
  ScopedHistogramTimer(Telemetry* telemetry, const char* name)
      : telemetry_(telemetry), name_(name) {
    if (telemetry_ != nullptr) start_ = monotonic_seconds();
  }
  ScopedHistogramTimer(const ScopedHistogramTimer&) = delete;
  ScopedHistogramTimer& operator=(const ScopedHistogramTimer&) = delete;
  ~ScopedHistogramTimer() { stop(); }

  /// Records the observation once; further calls return the first
  /// elapsed time. Returns 0 when no telemetry is attached.
  double stop();

 private:
  Telemetry* telemetry_;
  const char* name_;
  double start_ = 0.0;
  double elapsed_ = 0.0;
};

}  // namespace ceal::telemetry
