#include "core/journal.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>

#include "core/error.h"

namespace ceal {

namespace {

constexpr std::string_view kMagic = "J1";

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

[[noreturn]] void fail(const std::string& name, std::uint64_t record,
                       const std::string& why) {
  throw JournalError(name + ":record " + std::to_string(record + 1) + ": " +
                     why);
}

std::string hex8(std::uint32_t v) {
  static const char* digits = "0123456789abcdef";
  std::string out(8, '0');
  for (int i = 7; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = digits[v & 0xf];
    v >>= 4;
  }
  return out;
}

/// Parses a decimal u64 from [p, end); advances p past the digits.
/// Returns false when no digit is present or the value overflows.
bool parse_decimal(const char*& p, const char* end, std::uint64_t& out) {
  if (p == end || *p < '0' || *p > '9') return false;
  std::uint64_t v = 0;
  while (p != end && *p >= '0' && *p <= '9') {
    const std::uint64_t digit = static_cast<std::uint64_t>(*p - '0');
    if (v > (~std::uint64_t{0} - digit) / 10) return false;
    v = v * 10 + digit;
    ++p;
  }
  out = v;
  return true;
}

bool parse_hex32(const char*& p, const char* end, std::uint32_t& out) {
  std::uint32_t v = 0;
  int digits = 0;
  while (p != end && digits < 8) {
    const char c = *p;
    std::uint32_t nibble = 0;
    if (c >= '0' && c <= '9') {
      nibble = static_cast<std::uint32_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      nibble = static_cast<std::uint32_t>(c - 'a') + 10;
    } else {
      break;
    }
    v = (v << 4) | nibble;
    ++digits;
    ++p;
  }
  if (digits != 8) return false;
  out = v;
  return true;
}

}  // namespace

std::uint32_t crc32(std::string_view data) {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  std::uint32_t c = 0xffffffffu;
  for (const char ch : data) {
    c = table[(c ^ static_cast<unsigned char>(ch)) & 0xff] ^ (c >> 8);
  }
  return c ^ 0xffffffffu;
}

std::string frame_journal_record(std::uint64_t seq, std::string_view payload) {
  std::string line;
  line.reserve(payload.size() + 32);
  line += kMagic;
  line += ' ';
  line += std::to_string(seq);
  line += ' ';
  line += std::to_string(payload.size());
  line += ' ';
  line += hex8(crc32(payload));
  line += ' ';
  line += payload;
  line += '\n';
  return line;
}

JournalReadResult read_journal_text(std::string_view data,
                                    const std::string& name,
                                    std::uint64_t first_seq) {
  JournalReadResult result;
  std::size_t off = 0;
  while (off < data.size()) {
    const std::size_t nl = data.find('\n', off);
    if (nl == std::string_view::npos) {
      // No terminating newline: the partial final write a kill leaves
      // behind. Drop it; everything before this line stays valid.
      result.torn_tail = true;
      break;
    }
    const std::uint64_t rec = first_seq + result.records.size();
    const std::string_view line = data.substr(off, nl - off);
    const char* p = line.data();
    const char* end = line.data() + line.size();
    if (line.size() < kMagic.size() ||
        std::string_view(p, kMagic.size()) != kMagic) {
      fail(name, rec, "bad record magic (not a journal line)");
    }
    p += kMagic.size();
    std::uint64_t seq = 0;
    std::uint64_t len = 0;
    std::uint32_t crc = 0;
    if (p == end || *p != ' ' || (++p, !parse_decimal(p, end, seq))) {
      fail(name, rec, "malformed sequence number");
    }
    if (seq != rec) {
      fail(name, rec,
           "duplicate or out-of-order sequence number (got " +
               std::to_string(seq) + ", want " + std::to_string(rec) + ")");
    }
    if (p == end || *p != ' ' || (++p, !parse_decimal(p, end, len))) {
      fail(name, rec, "malformed length field");
    }
    if (p == end || *p != ' ' || (++p, !parse_hex32(p, end, crc))) {
      fail(name, rec, "malformed CRC field");
    }
    if (p == end || *p != ' ') fail(name, rec, "malformed record head");
    ++p;
    const std::size_t have = static_cast<std::size_t>(end - p);
    if (have != len) {
      fail(name, rec,
           "declared payload length " + std::to_string(len) +
               " does not match the " + std::to_string(have) +
               " bytes present");
    }
    const std::string_view payload(p, have);
    if (crc32(payload) != crc) fail(name, rec, "payload CRC mismatch");
    json::Value value;
    try {
      value = json::Value::parse(payload);
    } catch (const std::exception& e) {
      fail(name, rec, std::string("malformed JSON payload: ") + e.what());
    }
    if (!value.is_object()) fail(name, rec, "payload is not a JSON object");
    result.records.push_back(std::move(value));
    off = nl + 1;
    result.valid_bytes = off;
  }
  return result;
}

JournalReadResult read_journal_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw JournalError("cannot open journal '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) throw JournalError("read failure on journal '" + path + "'");
  const std::string data = buffer.str();
  return read_journal_text(data, path);
}

JournalWriter::JournalWriter(std::string path, std::uint64_t next_seq,
                             bool fsync_each)
    : path_(std::move(path)), next_seq_(next_seq), fsync_each_(fsync_each) {
  fd_ = ::open(path_.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd_ < 0) {
    throw JournalError("cannot open journal '" + path_ +
                       "' for appending: " + std::strerror(errno));
  }
}

JournalWriter::~JournalWriter() {
  if (fd_ >= 0) ::close(fd_);
}

std::uint64_t JournalWriter::append(const json::Value& payload) {
  CEAL_EXPECT_MSG(payload.is_object(),
                  "journal payloads must be JSON objects");
  const std::string line = frame_journal_record(next_seq_, payload.dump());
  std::size_t written = 0;
  while (written < line.size()) {
    const ::ssize_t n =
        ::write(fd_, line.data() + written, line.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw JournalError("write failure on journal '" + path_ +
                         "': " + std::strerror(errno));
    }
    written += static_cast<std::size_t>(n);
  }
  if (fsync_each_) sync();
  bytes_written_ += line.size();
  return next_seq_++;
}

void JournalWriter::sync() {
  if (::fsync(fd_) != 0 && errno != EINVAL && errno != EROFS) {
    throw JournalError("fsync failure on journal '" + path_ +
                       "': " + std::strerror(errno));
  }
}

void truncate_journal_file(const std::string& path, std::uint64_t size) {
  if (::truncate(path.c_str(), static_cast<::off_t>(size)) != 0) {
    throw JournalError("cannot truncate journal '" + path +
                       "': " + std::strerror(errno));
  }
}

}  // namespace ceal
