// Crash-safe session journal: CRC32-framed, length-prefixed JSONL.
//
// A journal is an append-only record log that survives SIGKILL at any
// byte: each record is one line
//
//   J1 <seq> <len> <crc32> <payload>\n
//
// where `J1` is the format magic+version, `seq` is the 0-based record
// number (decimal), `len` is the byte length of `payload` (decimal),
// `crc32` is the IEEE CRC-32 of the payload bytes as 8 lowercase hex
// digits, and `payload` is one compact JSON object (core/json.h, so the
// bytes are deterministic). The writer emits every record with a single
// O_APPEND write(2) followed by fsync(2), which makes the only possible
// post-crash defect a *torn tail*: a partial final line with no
// terminating newline.
//
// The reader enforces exactly that failure model. A final line without a
// newline is truncated away (reported, not fatal — that is what a kill
// mid-write leaves behind). Every *complete* line must check out
// end-to-end — magic, in-order sequence number, exact declared length,
// CRC, well-formed JSON object — and any violation raises JournalError
// whose what() is a single "<path>:record <n>: why" line, never a crash
// or an accepted corrupt record. tests/core/test_journal.cc holds the
// reader to this with exhaustive truncation and bit-flip sweeps.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "core/json.h"

namespace ceal {

/// Raised on any malformed journal; what() is one printable line.
class JournalError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// IEEE 802.3 CRC-32 (the zlib polynomial) of `data`.
std::uint32_t crc32(std::string_view data);

/// Frames one record as the exact bytes the writer appends (including
/// the trailing newline). Exposed so tests can craft corrupt journals.
std::string frame_journal_record(std::uint64_t seq, std::string_view payload);

struct JournalReadResult {
  /// Every validated record payload, in sequence order.
  std::vector<json::Value> records;
  /// Byte length of the valid prefix (= file size when tail is intact).
  std::uint64_t valid_bytes = 0;
  /// True when a partial final record (no terminating newline) was
  /// dropped. Resuming writers must truncate the file to valid_bytes
  /// before appending.
  bool torn_tail = false;
};

/// Parses journal bytes; `name` labels errors. An empty input is a valid
/// empty journal — whether that is acceptable is the caller's contract.
/// `first_seq` is the sequence number the first record must carry (0 for
/// a whole file; a stream consumer that has already validated N records
/// passes N to keep the in-order check across reads).
JournalReadResult read_journal_text(std::string_view data,
                                    const std::string& name,
                                    std::uint64_t first_seq = 0);

/// Reads and parses the journal at `path`. Throws JournalError when the
/// file cannot be opened or any complete record is corrupt.
JournalReadResult read_journal_file(const std::string& path);

/// Appends framed records to a journal file. Each append is one write(2)
/// on an O_APPEND descriptor followed (by default) by fsync(2), so a
/// record is either fully durable or a torn tail the reader drops.
class JournalWriter {
 public:
  /// Opens `path` for appending (created if absent). `next_seq` is the
  /// number of records already in the file — pass the record count a
  /// read returned when resuming. Throws JournalError on open failure.
  explicit JournalWriter(std::string path, std::uint64_t next_seq = 0,
                         bool fsync_each = true);
  ~JournalWriter();

  JournalWriter(const JournalWriter&) = delete;
  JournalWriter& operator=(const JournalWriter&) = delete;

  /// Appends one record; returns its sequence number. `payload` must be
  /// a JSON object. Throws JournalError on I/O failure.
  std::uint64_t append(const json::Value& payload);

  std::uint64_t records() const { return next_seq_; }
  std::uint64_t bytes_written() const { return bytes_written_; }
  const std::string& path() const { return path_; }

  /// Forces written records to stable storage (no-op when every append
  /// already syncs).
  void sync();

 private:
  std::string path_;
  int fd_ = -1;
  std::uint64_t next_seq_ = 0;
  std::uint64_t bytes_written_ = 0;
  bool fsync_each_ = true;
};

/// Truncates `path` to `size` bytes (used to drop a torn tail before
/// appending). Throws JournalError on failure.
void truncate_journal_file(const std::string& path, std::uint64_t size);

}  // namespace ceal
