#include "core/telemetry.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <csignal>
#include <cstdlib>
#include <functional>
#include <ostream>
#include <sstream>

#include "core/error.h"
#include "core/flight_recorder.h"
#include "core/stats.h"

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <unistd.h>
#define CEAL_TELEMETRY_POSIX 1
#endif

namespace ceal::telemetry {

double monotonic_seconds() {
  const auto now = std::chrono::steady_clock::now().time_since_epoch();
  return std::chrono::duration<double>(now).count();
}

std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::string span_id_hex(std::uint64_t id) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kHex[id & 0xF];
    id >>= 4;
  }
  return out;
}

namespace {

/// Crash-injection test hook: CEAL_CRASH_SIGSEGV_AFTER=N raises SIGSEGV
/// on the N-th emitted event, process-wide across all Telemetry
/// instances. Exercises the flight-recorder crash dump in run_tier1.sh;
/// unset (the default) costs one predictable branch per emit.
void maybe_crash_after_emit() {
  static const long crash_after = [] {
    const char* env = std::getenv("CEAL_CRASH_SIGSEGV_AFTER");
    return env == nullptr ? -1L : std::strtol(env, nullptr, 10);
  }();
  if (crash_after <= 0) return;
  static std::atomic<long> emitted{0};
  if (emitted.fetch_add(1, std::memory_order_relaxed) + 1 == crash_after) {
    std::raise(SIGSEGV);
  }
}

}  // namespace

TraceEvent& TraceEvent::field(std::string key, json::Value v) {
  fields_.emplace_back(std::move(key), std::move(v));
  return *this;
}

TraceEvent& TraceEvent::field(std::string key, bool v) {
  return field(std::move(key), json::Value::boolean(v));
}

TraceEvent& TraceEvent::field(std::string key, double v) {
  return field(std::move(key), json::Value::number(v));
}

TraceEvent& TraceEvent::field(std::string key, std::int64_t v) {
  return field(std::move(key), json::Value::number(v));
}

TraceEvent& TraceEvent::field(std::string key, std::uint64_t v) {
  return field(std::move(key), json::Value::number(v));
}

TraceEvent& TraceEvent::field(std::string key, int v) {
  return field(std::move(key),
               json::Value::number(static_cast<std::int64_t>(v)));
}

TraceEvent& TraceEvent::field(std::string key, const char* v) {
  return field(std::move(key), json::Value::string(v));
}

TraceEvent& TraceEvent::field(std::string key, std::string v) {
  return field(std::move(key), json::Value::string(std::move(v)));
}

TraceEvent& TraceEvent::field(std::string key,
                              std::span<const std::size_t> v) {
  json::Value arr = json::Value::array();
  for (const std::size_t x : v) {
    arr.push(json::Value::number(static_cast<std::uint64_t>(x)));
  }
  return field(std::move(key), std::move(arr));
}

TraceEvent& TraceEvent::field(std::string key, std::span<const double> v) {
  json::Value arr = json::Value::array();
  for (const double x : v) arr.push(json::Value::number(x));
  return field(std::move(key), std::move(arr));
}

TraceEvent& TraceEvent::timing(std::string key, double seconds) {
  timing_.emplace_back(std::move(key), seconds);
  return *this;
}

json::Value TraceEvent::to_json() const {
  json::Value obj = json::Value::object();
  obj.set("event", json::Value::string(name_));
  if (seq_) obj.set("seq", json::Value::number(*seq_));
  for (const auto& [key, value] : fields_) obj.set(key, value);
  if (!timing_.empty()) {
    json::Value t = json::Value::object();
    for (const auto& [key, seconds] : timing_) {
      t.set(key, json::Value::number(seconds));
    }
    obj.set("timing", std::move(t));
  }
  return obj;
}

JsonlTraceSink::JsonlTraceSink(const std::string& path, bool fsync_on_flush)
    : file_(path), path_(path), fsync_on_flush_(fsync_on_flush) {
  CEAL_EXPECT_MSG(file_.is_open(),
                  "cannot open trace file for writing: " + path);
  os_ = &file_;
}

JsonlTraceSink::~JsonlTraceSink() { flush(); }

void JsonlTraceSink::write(const TraceEvent& event) {
  std::lock_guard lock(mutex_);
  event.to_json().write(*os_);
  *os_ << '\n';
}

void JsonlTraceSink::flush() {
  std::lock_guard lock(mutex_);
  os_->flush();
#if defined(CEAL_TELEMETRY_POSIX)
  if (fsync_on_flush_ && !path_.empty()) {
    const int fd = ::open(path_.c_str(), O_WRONLY | O_CLOEXEC);
    if (fd >= 0) {
      ::fsync(fd);
      ::close(fd);
    }
  }
#endif
}

MultiTraceSink::MultiTraceSink(std::vector<TraceSink*> sinks)
    : sinks_(std::move(sinks)) {
  for (const TraceSink* s : sinks_) CEAL_EXPECT(s != nullptr);
}

void MultiTraceSink::write(const TraceEvent& event) {
  for (TraceSink* s : sinks_) s->write(event);
}

void MultiTraceSink::flush() {
  for (TraceSink* s : sinks_) s->flush();
}

void BufferTraceSink::write(const TraceEvent& event) {
  events_.push_back(event);
}

std::span<const double> histogram_upper_bounds() {
  static const std::array<double, kHistogramBounds> bounds = [] {
    std::array<double, kHistogramBounds> b{};
    for (std::size_t k = 0; k < kHistogramBounds; ++k) {
      b[k] = std::pow(10.0, static_cast<double>(k) / 4.0 - 9.0);
    }
    return b;
  }();
  return bounds;
}

namespace {

/// Index of the bucket holding `value` under inclusive (`le`) edges:
/// the first bound >= value, or the overflow bucket past the last bound.
/// lower_bound on the precomputed edges gives exact boundary semantics
/// (no log-arithmetic rounding surprises).
std::size_t histogram_bucket_index(double value) {
  const std::span<const double> bounds = histogram_upper_bounds();
  const auto it = std::lower_bound(bounds.begin(), bounds.end(), value);
  return static_cast<std::size_t>(it - bounds.begin());
}

}  // namespace

void HistogramStats::observe(double value) {
  CEAL_EXPECT_MSG(std::isfinite(value),
                  "histogram observation must be finite");
  if (count == 0) {
    min = value;
    max = value;
  } else {
    min = std::min(min, value);
    max = std::max(max, value);
  }
  ++count;
  sum += value;
  if (buckets.empty()) buckets.assign(kHistogramBuckets, 0);
  ++buckets[histogram_bucket_index(value)];
}

void HistogramStats::merge(const HistogramStats& other) {
  if (other.count == 0) return;
  if (count == 0) {
    min = other.min;
    max = other.max;
  } else {
    min = std::min(min, other.min);
    max = std::max(max, other.max);
  }
  count += other.count;
  sum += other.sum;
  if (buckets.empty()) buckets.assign(kHistogramBuckets, 0);
  for (std::size_t i = 0; i < other.buckets.size(); ++i) {
    buckets[i] += other.buckets[i];
  }
}

double HistogramStats::quantile(double q) const {
  CEAL_EXPECT_MSG(count > 0, "quantile of an empty histogram");
  return ceal::histogram_quantile(buckets, histogram_upper_bounds(), q, min,
                                  max);
}

Telemetry::Shard& Telemetry::shard_for(std::string_view name) {
  return shards_[std::hash<std::string_view>{}(name) % kShards];
}

const Telemetry::Shard& Telemetry::shard_for(std::string_view name) const {
  return shards_[std::hash<std::string_view>{}(name) % kShards];
}

void Telemetry::emit(TraceEvent event) {
  if (sink_ == nullptr && recorder_ == nullptr) return;
  std::lock_guard lock(emit_mutex_);
  event.seq_ = seq_++;
  if (sink_ != nullptr) sink_->write(event);
  if (recorder_ != nullptr) {
    std::ostringstream line;
    event.to_json().write(line);
    recorder_->record(line.str());
  }
  maybe_crash_after_emit();
}

void Telemetry::seed_trace(std::uint64_t seed) {
  std::lock_guard lock(causal_mutex_);
  seed_trace_locked(seed);
}

void Telemetry::seed_trace_locked(std::uint64_t seed) {
  trace_id_ = mix64(seed);
  if (trace_id_ == 0) trace_id_ = 1;
  span_base_ = trace_id_;
  strand_ = 0;
  next_span_ = 0;
  adopted_parent_ = 0;
  span_stack_.clear();
}

void Telemetry::adopt_trace(const TraceContext& parent,
                            std::uint64_t strand) {
  std::lock_guard lock(causal_mutex_);
  trace_id_ = parent.trace_id == 0 ? 1 : parent.trace_id;
  // Each strand gets a disjoint id namespace derived from (trace_id,
  // strand), so ids stay unique and deterministic no matter how sibling
  // strands interleave in wall time.
  span_base_ = mix64(trace_id_ ^ (strand + 1) * 0xda942042e4dd58b5ULL);
  if (span_base_ == 0) span_base_ = 1;
  strand_ = strand;
  next_span_ = 0;
  adopted_parent_ = parent.span_id;
  span_stack_.clear();
}

TraceContext Telemetry::current_span() const {
  std::lock_guard lock(causal_mutex_);
  TraceContext ctx;
  ctx.trace_id = trace_id_;
  ctx.span_id = span_stack_.empty() ? adopted_parent_ : span_stack_.back();
  return ctx;
}

TraceContext Telemetry::begin_span(const char* name) {
  TraceContext ctx;
  std::uint64_t strand = 0;
  {
    std::lock_guard lock(causal_mutex_);
    if (trace_id_ == 0) seed_trace_locked(0);
    ctx.trace_id = trace_id_;
    ctx.parent_span_id =
        span_stack_.empty() ? adopted_parent_ : span_stack_.back();
    ctx.span_id = mix64(span_base_ + ++next_span_);
    span_stack_.push_back(ctx.span_id);
    strand = strand_;
  }
  TraceEvent event("span.begin");
  event.field("span", name)
      .field("trace_id", span_id_hex(ctx.trace_id))
      .field("span_id", span_id_hex(ctx.span_id))
      .field("parent_span_id", span_id_hex(ctx.parent_span_id))
      .field("strand", strand)
      .timing("ts_s", monotonic_seconds());
  emit(std::move(event));
  return ctx;
}

void Telemetry::end_span(const char* name, const TraceContext& ctx,
                         double elapsed_s) {
  std::uint64_t strand = 0;
  {
    std::lock_guard lock(causal_mutex_);
    if (!span_stack_.empty() && span_stack_.back() == ctx.span_id) {
      span_stack_.pop_back();
    }
    strand = strand_;
  }
  TraceEvent event("span.end");
  event.field("span", name)
      .field("trace_id", span_id_hex(ctx.trace_id))
      .field("span_id", span_id_hex(ctx.span_id))
      .field("parent_span_id", span_id_hex(ctx.parent_span_id))
      .field("strand", strand)
      .timing("ts_s", monotonic_seconds())
      .timing("dur_s", elapsed_s);
  emit(std::move(event));
}

void Telemetry::count(std::string_view name, std::uint64_t delta) {
  Shard& shard = shard_for(name);
  std::lock_guard lock(shard.mutex);
  auto it = shard.counters.find(name);
  if (it == shard.counters.end()) {
    shard.counters.emplace(std::string(name), delta);
  } else {
    it->second += delta;
  }
}

std::uint64_t Telemetry::counter(std::string_view name) const {
  const Shard& shard = shard_for(name);
  std::lock_guard lock(shard.mutex);
  const auto it = shard.counters.find(name);
  return it == shard.counters.end() ? 0 : it->second;
}

void Telemetry::gauge(std::string_view name, double value) {
  Shard& shard = shard_for(name);
  std::lock_guard lock(shard.mutex);
  auto it = shard.gauges.find(name);
  if (it == shard.gauges.end()) {
    shard.gauges.emplace(std::string(name), value);
  } else {
    it->second = value;
  }
}

void Telemetry::gauge_max(std::string_view name, double value) {
  Shard& shard = shard_for(name);
  std::lock_guard lock(shard.mutex);
  auto it = shard.gauges.find(name);
  if (it == shard.gauges.end()) {
    shard.gauges.emplace(std::string(name), value);
  } else if (value > it->second) {
    it->second = value;
  }
}

void Telemetry::add_span(std::string_view name, double seconds) {
  Shard& shard = shard_for(name);
  std::lock_guard lock(shard.mutex);
  auto it = shard.spans.find(name);
  if (it == shard.spans.end()) {
    shard.spans.emplace(std::string(name), SpanStats{1, seconds});
  } else {
    ++it->second.count;
    it->second.total_s += seconds;
  }
}

SpanStats Telemetry::span_stats(std::string_view name) const {
  const Shard& shard = shard_for(name);
  std::lock_guard lock(shard.mutex);
  const auto it = shard.spans.find(name);
  return it == shard.spans.end() ? SpanStats{} : it->second;
}

void Telemetry::observe(std::string_view name, double value) {
  Shard& shard = shard_for(name);
  std::lock_guard lock(shard.mutex);
  auto it = shard.histograms.find(name);
  if (it == shard.histograms.end()) {
    it = shard.histograms.emplace(std::string(name), HistogramStats{}).first;
  }
  it->second.observe(value);
}

HistogramStats Telemetry::histogram_stats(std::string_view name) const {
  const Shard& shard = shard_for(name);
  std::lock_guard lock(shard.mutex);
  const auto it = shard.histograms.find(name);
  return it == shard.histograms.end() ? HistogramStats{} : it->second;
}

std::map<std::string, std::uint64_t, std::less<>> Telemetry::counters()
    const {
  std::map<std::string, std::uint64_t, std::less<>> out;
  for (const Shard& shard : shards_) {
    std::lock_guard lock(shard.mutex);
    out.insert(shard.counters.begin(), shard.counters.end());
  }
  return out;
}

std::map<std::string, double, std::less<>> Telemetry::gauges() const {
  std::map<std::string, double, std::less<>> out;
  for (const Shard& shard : shards_) {
    std::lock_guard lock(shard.mutex);
    out.insert(shard.gauges.begin(), shard.gauges.end());
  }
  return out;
}

std::map<std::string, SpanStats, std::less<>> Telemetry::spans() const {
  std::map<std::string, SpanStats, std::less<>> out;
  for (const Shard& shard : shards_) {
    std::lock_guard lock(shard.mutex);
    out.insert(shard.spans.begin(), shard.spans.end());
  }
  return out;
}

std::map<std::string, HistogramStats, std::less<>> Telemetry::histograms()
    const {
  std::map<std::string, HistogramStats, std::less<>> out;
  for (const Shard& shard : shards_) {
    std::lock_guard lock(shard.mutex);
    out.insert(shard.histograms.begin(), shard.histograms.end());
  }
  return out;
}

void Telemetry::merge(const Telemetry& child,
                      std::span<const TraceEvent> events) {
  CEAL_EXPECT_MSG(&child != this, "cannot merge a Telemetry into itself");
  for (const auto& [name, value] : child.counters()) count(name, value);
  for (const auto& [name, value] : child.gauges()) gauge(name, value);
  for (const auto& [name, stats] : child.spans()) {
    Shard& shard = shard_for(name);
    std::lock_guard lock(shard.mutex);
    auto it = shard.spans.find(name);
    if (it == shard.spans.end()) {
      shard.spans.emplace(name, stats);
    } else {
      it->second.count += stats.count;
      it->second.total_s += stats.total_s;
    }
  }
  for (const auto& [name, stats] : child.histograms()) {
    Shard& shard = shard_for(name);
    std::lock_guard lock(shard.mutex);
    auto it = shard.histograms.find(name);
    if (it == shard.histograms.end()) {
      it = shard.histograms.emplace(name, HistogramStats{}).first;
    }
    it->second.merge(stats);
  }
  // Replay the child's buffered events in order; emit() re-stamps each
  // with this instance's next sequence number, so merging children in a
  // fixed order reproduces the serial event stream exactly.
  for (const TraceEvent& event : events) emit(event);
}

TraceEvent Telemetry::summary_event() const {
  TraceEvent event("telemetry.summary");
  for (const auto& [name, value] : counters()) event.field(name, value);
  for (const auto& [name, value] : gauges()) event.field(name, value);
  for (const auto& [name, stats] : spans()) {
    event.field(name + ".count", stats.count);
    event.timing(name + ".total_s", stats.total_s);
  }
  // Histograms of wall clocks (name starts with "timing.") put *every*
  // stat — count included — inside the `timing` sub-object, so the
  // determinism strip (remove members named "timing") drops the whole
  // histogram; deterministic histograms stay in the byte-stable fields.
  for (const auto& [name, stats] : histograms()) {
    if (stats.count == 0) continue;
    const bool wall_clock = name.starts_with("timing.");
    const auto put = [&](const std::string& stat, double value) {
      const std::string key = "hist." + name + "." + stat;
      if (wall_clock) {
        event.timing(key, value);
      } else {
        event.field(key, value);
      }
    };
    if (wall_clock) {
      event.timing("hist." + name + ".count",
                   static_cast<double>(stats.count));
    } else {
      event.field("hist." + name + ".count", stats.count);
    }
    put("sum", stats.sum);
    put("min", stats.min);
    put("max", stats.max);
    put("p50", stats.quantile(0.50));
    put("p90", stats.quantile(0.90));
    put("p99", stats.quantile(0.99));
  }
  return event;
}

Table Telemetry::summary_table() const {
  Table table({"kind", "name", "count/value", "total (s)"});
  for (const auto& [name, value] : counters()) {
    table.add_row({"counter", name, std::to_string(value), ""});
  }
  for (const auto& [name, value] : gauges()) {
    table.add_row({"gauge", name, Table::num(value, 6), ""});
  }
  for (const auto& [name, stats] : spans()) {
    table.add_row({"span", name, std::to_string(stats.count),
                   Table::num(stats.total_s, 6)});
  }
  for (const auto& [name, stats] : histograms()) {
    table.add_row({"histogram", name, std::to_string(stats.count),
                   Table::num(stats.sum, 6)});
  }
  return table;
}

double ScopedCausalSpan::stop() {
  if (telemetry_ != nullptr) {
    elapsed_ = monotonic_seconds() - start_;
    telemetry_->add_span(name_, elapsed_);
    if (traced_) telemetry_->end_span(name_, ctx_, elapsed_);
    telemetry_ = nullptr;
  }
  return elapsed_;
}

double ScopedSpan::stop() {
  if (telemetry_ != nullptr) {
    elapsed_ = monotonic_seconds() - start_;
    telemetry_->add_span(name_, elapsed_);
    telemetry_ = nullptr;
  }
  return elapsed_;
}

double ScopedHistogramTimer::stop() {
  if (telemetry_ != nullptr) {
    elapsed_ = monotonic_seconds() - start_;
    telemetry_->observe(name_, elapsed_);
    telemetry_ = nullptr;
  }
  return elapsed_;
}

}  // namespace ceal::telemetry
