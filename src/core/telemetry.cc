#include "core/telemetry.h"

#include <chrono>
#include <functional>
#include <ostream>

#include "core/error.h"

namespace ceal::telemetry {

double monotonic_seconds() {
  const auto now = std::chrono::steady_clock::now().time_since_epoch();
  return std::chrono::duration<double>(now).count();
}

TraceEvent& TraceEvent::field(std::string key, json::Value v) {
  fields_.emplace_back(std::move(key), std::move(v));
  return *this;
}

TraceEvent& TraceEvent::field(std::string key, bool v) {
  return field(std::move(key), json::Value::boolean(v));
}

TraceEvent& TraceEvent::field(std::string key, double v) {
  return field(std::move(key), json::Value::number(v));
}

TraceEvent& TraceEvent::field(std::string key, std::int64_t v) {
  return field(std::move(key), json::Value::number(v));
}

TraceEvent& TraceEvent::field(std::string key, std::uint64_t v) {
  return field(std::move(key), json::Value::number(v));
}

TraceEvent& TraceEvent::field(std::string key, int v) {
  return field(std::move(key),
               json::Value::number(static_cast<std::int64_t>(v)));
}

TraceEvent& TraceEvent::field(std::string key, const char* v) {
  return field(std::move(key), json::Value::string(v));
}

TraceEvent& TraceEvent::field(std::string key, std::string v) {
  return field(std::move(key), json::Value::string(std::move(v)));
}

TraceEvent& TraceEvent::field(std::string key,
                              std::span<const std::size_t> v) {
  json::Value arr = json::Value::array();
  for (const std::size_t x : v) {
    arr.push(json::Value::number(static_cast<std::uint64_t>(x)));
  }
  return field(std::move(key), std::move(arr));
}

TraceEvent& TraceEvent::field(std::string key, std::span<const double> v) {
  json::Value arr = json::Value::array();
  for (const double x : v) arr.push(json::Value::number(x));
  return field(std::move(key), std::move(arr));
}

TraceEvent& TraceEvent::timing(std::string key, double seconds) {
  timing_.emplace_back(std::move(key), seconds);
  return *this;
}

json::Value TraceEvent::to_json() const {
  json::Value obj = json::Value::object();
  obj.set("event", json::Value::string(name_));
  if (seq_) obj.set("seq", json::Value::number(*seq_));
  for (const auto& [key, value] : fields_) obj.set(key, value);
  if (!timing_.empty()) {
    json::Value t = json::Value::object();
    for (const auto& [key, seconds] : timing_) {
      t.set(key, json::Value::number(seconds));
    }
    obj.set("timing", std::move(t));
  }
  return obj;
}

JsonlTraceSink::JsonlTraceSink(const std::string& path) : file_(path) {
  CEAL_EXPECT_MSG(file_.is_open(),
                  "cannot open trace file for writing: " + path);
  os_ = &file_;
}

JsonlTraceSink::~JsonlTraceSink() { flush(); }

void JsonlTraceSink::write(const TraceEvent& event) {
  std::lock_guard lock(mutex_);
  event.to_json().write(*os_);
  *os_ << '\n';
}

void JsonlTraceSink::flush() {
  std::lock_guard lock(mutex_);
  os_->flush();
}

MultiTraceSink::MultiTraceSink(std::vector<TraceSink*> sinks)
    : sinks_(std::move(sinks)) {
  for (const TraceSink* s : sinks_) CEAL_EXPECT(s != nullptr);
}

void MultiTraceSink::write(const TraceEvent& event) {
  for (TraceSink* s : sinks_) s->write(event);
}

void MultiTraceSink::flush() {
  for (TraceSink* s : sinks_) s->flush();
}

void BufferTraceSink::write(const TraceEvent& event) {
  events_.push_back(event);
}

Telemetry::Shard& Telemetry::shard_for(std::string_view name) {
  return shards_[std::hash<std::string_view>{}(name) % kShards];
}

const Telemetry::Shard& Telemetry::shard_for(std::string_view name) const {
  return shards_[std::hash<std::string_view>{}(name) % kShards];
}

void Telemetry::emit(TraceEvent event) {
  if (sink_ == nullptr) return;
  std::lock_guard lock(emit_mutex_);
  event.seq_ = seq_++;
  sink_->write(event);
}

void Telemetry::count(std::string_view name, std::uint64_t delta) {
  Shard& shard = shard_for(name);
  std::lock_guard lock(shard.mutex);
  auto it = shard.counters.find(name);
  if (it == shard.counters.end()) {
    shard.counters.emplace(std::string(name), delta);
  } else {
    it->second += delta;
  }
}

std::uint64_t Telemetry::counter(std::string_view name) const {
  const Shard& shard = shard_for(name);
  std::lock_guard lock(shard.mutex);
  const auto it = shard.counters.find(name);
  return it == shard.counters.end() ? 0 : it->second;
}

void Telemetry::gauge(std::string_view name, double value) {
  Shard& shard = shard_for(name);
  std::lock_guard lock(shard.mutex);
  auto it = shard.gauges.find(name);
  if (it == shard.gauges.end()) {
    shard.gauges.emplace(std::string(name), value);
  } else {
    it->second = value;
  }
}

void Telemetry::gauge_max(std::string_view name, double value) {
  Shard& shard = shard_for(name);
  std::lock_guard lock(shard.mutex);
  auto it = shard.gauges.find(name);
  if (it == shard.gauges.end()) {
    shard.gauges.emplace(std::string(name), value);
  } else if (value > it->second) {
    it->second = value;
  }
}

void Telemetry::add_span(std::string_view name, double seconds) {
  Shard& shard = shard_for(name);
  std::lock_guard lock(shard.mutex);
  auto it = shard.spans.find(name);
  if (it == shard.spans.end()) {
    shard.spans.emplace(std::string(name), SpanStats{1, seconds});
  } else {
    ++it->second.count;
    it->second.total_s += seconds;
  }
}

SpanStats Telemetry::span_stats(std::string_view name) const {
  const Shard& shard = shard_for(name);
  std::lock_guard lock(shard.mutex);
  const auto it = shard.spans.find(name);
  return it == shard.spans.end() ? SpanStats{} : it->second;
}

std::map<std::string, std::uint64_t, std::less<>> Telemetry::counters()
    const {
  std::map<std::string, std::uint64_t, std::less<>> out;
  for (const Shard& shard : shards_) {
    std::lock_guard lock(shard.mutex);
    out.insert(shard.counters.begin(), shard.counters.end());
  }
  return out;
}

std::map<std::string, double, std::less<>> Telemetry::gauges() const {
  std::map<std::string, double, std::less<>> out;
  for (const Shard& shard : shards_) {
    std::lock_guard lock(shard.mutex);
    out.insert(shard.gauges.begin(), shard.gauges.end());
  }
  return out;
}

std::map<std::string, SpanStats, std::less<>> Telemetry::spans() const {
  std::map<std::string, SpanStats, std::less<>> out;
  for (const Shard& shard : shards_) {
    std::lock_guard lock(shard.mutex);
    out.insert(shard.spans.begin(), shard.spans.end());
  }
  return out;
}

void Telemetry::merge(const Telemetry& child,
                      std::span<const TraceEvent> events) {
  CEAL_EXPECT_MSG(&child != this, "cannot merge a Telemetry into itself");
  for (const auto& [name, value] : child.counters()) count(name, value);
  for (const auto& [name, value] : child.gauges()) gauge(name, value);
  for (const auto& [name, stats] : child.spans()) {
    Shard& shard = shard_for(name);
    std::lock_guard lock(shard.mutex);
    auto it = shard.spans.find(name);
    if (it == shard.spans.end()) {
      shard.spans.emplace(name, stats);
    } else {
      it->second.count += stats.count;
      it->second.total_s += stats.total_s;
    }
  }
  // Replay the child's buffered events in order; emit() re-stamps each
  // with this instance's next sequence number, so merging children in a
  // fixed order reproduces the serial event stream exactly.
  for (const TraceEvent& event : events) emit(event);
}

TraceEvent Telemetry::summary_event() const {
  TraceEvent event("telemetry.summary");
  for (const auto& [name, value] : counters()) event.field(name, value);
  for (const auto& [name, value] : gauges()) event.field(name, value);
  for (const auto& [name, stats] : spans()) {
    event.field(name + ".count", stats.count);
    event.timing(name + ".total_s", stats.total_s);
  }
  return event;
}

Table Telemetry::summary_table() const {
  Table table({"kind", "name", "count/value", "total (s)"});
  for (const auto& [name, value] : counters()) {
    table.add_row({"counter", name, std::to_string(value), ""});
  }
  for (const auto& [name, value] : gauges()) {
    table.add_row({"gauge", name, Table::num(value, 6), ""});
  }
  for (const auto& [name, stats] : spans()) {
    table.add_row({"span", name, std::to_string(stats.count),
                   Table::num(stats.total_s, 6)});
  }
  return table;
}

double ScopedSpan::stop() {
  if (telemetry_ != nullptr) {
    elapsed_ = monotonic_seconds() - start_;
    telemetry_->add_span(name_, elapsed_);
    telemetry_ = nullptr;
  }
  return elapsed_;
}

}  // namespace ceal::telemetry
