// Deterministic, platform-independent random number generation.
//
// Every stochastic piece of the library (sampling, noise injection, model
// subsampling) draws from ceal::Rng so that experiments are exactly
// reproducible from a single seed on any platform.  The generator is
// xoshiro256** seeded through SplitMix64, both public-domain algorithms by
// Blackman & Vigna.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace ceal {

/// SplitMix64 stepper, used to expand a 64-bit seed into generator state.
/// Advances `state` and returns the next 64-bit output.
std::uint64_t splitmix64_next(std::uint64_t& state);

/// xoshiro256** pseudo-random generator with convenience distributions.
///
/// Satisfies UniformRandomBitGenerator so it can also feed <random>
/// distributions, but the member helpers below are preferred because their
/// results are bit-identical across standard-library implementations.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  /// Next raw 64-bit value.
  result_type operator()();

  /// Uniform integer in [0, bound). `bound` must be > 0.
  /// Uses rejection sampling, so the result is unbiased.
  std::uint64_t uniform_u64(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1) with 53 bits of randomness.
  double uniform01();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Standard normal via Box–Muller (deterministic, no cached spare).
  double normal();

  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Log-normal multiplicative factor with median 1 and shape sigma:
  /// exp(sigma * Z). Used for measurement-noise injection.
  double lognormal_factor(double sigma);

  /// True with probability p (clamped to [0,1]).
  bool bernoulli(double p);

  /// Fisher–Yates shuffle of an index vector [0, n).
  std::vector<std::size_t> permutation(std::size_t n);

  /// Sample k distinct indices from [0, n) without replacement.
  /// Requires k <= n. Order of the result is random.
  std::vector<std::size_t> sample_without_replacement(std::size_t n,
                                                      std::size_t k);

  /// Derive an independent child generator; streams are decorrelated by
  /// hashing the parent's next output with the child index.
  Rng split(std::uint64_t stream);

  /// The full generator state, for checkpointing. Restoring a saved
  /// state with set_state() resumes the stream exactly where state()
  /// captured it — the journal layer persists these four words so a
  /// resumed tuning session replays the identical draw sequence.
  std::array<std::uint64_t, 4> state() const;
  void set_state(const std::array<std::uint64_t, 4>& state);

 private:
  std::uint64_t s_[4];
};

}  // namespace ceal
