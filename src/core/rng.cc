#include "core/rng.h"

#include <cmath>
#include <numbers>

#include "core/error.h"

namespace ceal {

std::uint64_t splitmix64_next(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64_next(sm);
}

Rng::result_type Rng::operator()() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::uniform_u64(std::uint64_t bound) {
  CEAL_EXPECT(bound > 0);
  // Rejection sampling over the largest multiple of `bound`.
  const std::uint64_t threshold = -bound % bound;
  for (;;) {
    const std::uint64_t r = (*this)();
    if (r >= threshold) return r % bound;
  }
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  CEAL_EXPECT(lo <= hi);
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>((*this)());  // full range
  return lo + static_cast<std::int64_t>(uniform_u64(span));
}

double Rng::uniform01() {
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  CEAL_EXPECT(lo <= hi);
  return lo + (hi - lo) * uniform01();
}

double Rng::normal() {
  // Box–Muller; draw u1 in (0,1] to avoid log(0).
  double u1 = 0.0;
  do {
    u1 = uniform01();
  } while (u1 <= 0.0);
  const double u2 = uniform01();
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::normal(double mean, double stddev) {
  CEAL_EXPECT(stddev >= 0.0);
  return mean + stddev * normal();
}

double Rng::lognormal_factor(double sigma) {
  CEAL_EXPECT(sigma >= 0.0);
  return std::exp(sigma * normal());
}

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform01() < p;
}

std::vector<std::size_t> Rng::permutation(std::size_t n) {
  std::vector<std::size_t> idx(n);
  for (std::size_t i = 0; i < n; ++i) idx[i] = i;
  for (std::size_t i = n; i > 1; --i) {
    const std::size_t j = uniform_u64(i);
    std::swap(idx[i - 1], idx[j]);
  }
  return idx;
}

std::vector<std::size_t> Rng::sample_without_replacement(std::size_t n,
                                                         std::size_t k) {
  CEAL_EXPECT(k <= n);
  // Partial Fisher–Yates: only the first k swaps are materialised.
  std::vector<std::size_t> idx(n);
  for (std::size_t i = 0; i < n; ++i) idx[i] = i;
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t j = i + uniform_u64(n - i);
    std::swap(idx[i], idx[j]);
  }
  idx.resize(k);
  return idx;
}

Rng Rng::split(std::uint64_t stream) {
  std::uint64_t mix = (*this)() ^ (0x9e3779b97f4a7c15ULL * (stream + 1));
  return Rng(splitmix64_next(mix));
}

std::array<std::uint64_t, 4> Rng::state() const {
  return {s_[0], s_[1], s_[2], s_[3]};
}

void Rng::set_state(const std::array<std::uint64_t, 4>& state) {
  for (std::size_t i = 0; i < 4; ++i) s_[i] = state[i];
}

}  // namespace ceal
