#include "core/csv.h"

#include <stdexcept>

#include "core/error.h"

namespace ceal {

CsvWriter::CsvWriter(const std::string& path,
                     const std::vector<std::string>& header)
    : out_(path), columns_(header.size()) {
  CEAL_EXPECT(!header.empty());
  if (!out_) throw std::runtime_error("CsvWriter: cannot open " + path);
  write_row(header);
  rows_ = 0;  // header does not count as a data row
}

void CsvWriter::add_row(const std::vector<std::string>& cells) {
  CEAL_EXPECT_MSG(cells.size() == columns_, "CSV row width mismatch");
  write_row(cells);
  ++rows_;
}

std::string CsvWriter::escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string quoted = "\"";
  for (char ch : cell) {
    if (ch == '"') quoted += '"';
    quoted += ch;
  }
  quoted += '"';
  return quoted;
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) out_ << ',';
    out_ << escape(cells[i]);
  }
  out_ << '\n';
}

}  // namespace ceal
