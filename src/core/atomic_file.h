// Atomic whole-file writes: write-temp -> fsync -> rename.
//
// A crash (or thrown exception) at any point leaves either the complete
// old file or the complete new file at the target path — never a
// truncated half-written one. This is the persistence primitive under
// every artifact a session may need to trust later: pool CSVs, result
// CSVs, and checkpoint metadata. The temp file lives next to the target
// (same directory, "<target>.tmp") so the final rename(2) stays within
// one filesystem and is atomic; after the rename the directory entry is
// fsynced so the new name itself survives a power cut.
#pragma once

#include <fstream>
#include <string>
#include <string_view>

namespace ceal {

/// Streaming atomic writer. Write through stream(), then commit(); a
/// destructor without commit() (error paths, exceptions) removes the
/// temp file and leaves any existing target untouched.
class AtomicFile {
 public:
  /// Opens "<path>.tmp" for writing. Throws std::runtime_error when the
  /// temp file cannot be created.
  explicit AtomicFile(std::string path);
  ~AtomicFile();

  AtomicFile(const AtomicFile&) = delete;
  AtomicFile& operator=(const AtomicFile&) = delete;

  std::ostream& stream() { return os_; }

  /// Flushes, fsyncs, and renames the temp file onto the target path,
  /// then fsyncs the directory. Throws std::runtime_error on any
  /// failure (the temp file is cleaned up and the target is untouched).
  void commit();

 private:
  void discard() noexcept;

  std::string path_;
  std::string tmp_path_;
  std::ofstream os_;
  bool committed_ = false;
};

/// Convenience: atomically replaces `path` with `contents`.
void atomic_write_file(const std::string& path, std::string_view contents);

}  // namespace ceal
