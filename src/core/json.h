// Minimal JSON document model used by the telemetry trace layer: an
// ordered-object DOM with a compact writer and a strict parser.
//
// Determinism contract: serialisation is byte-stable. Object members keep
// insertion order, numbers carry their exact source text (the builders
// format via std::to_chars, the parser keeps the input lexeme verbatim),
// and string escaping follows one fixed policy. Parsing a line this
// writer produced and re-serialising it therefore reproduces the input
// bytes — the property the trace determinism checks rely on.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace ceal::json {

class Value {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  /// Default-constructs null.
  Value() = default;

  static Value boolean(bool v);
  static Value number(double v);
  static Value number(std::int64_t v);
  static Value number(std::uint64_t v);
  /// Number from a pre-formatted lexeme (must be a valid JSON number).
  static Value number_text(std::string text);
  static Value string(std::string v);
  static Value array();
  static Value object();

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_object() const { return kind_ == Kind::kObject; }
  bool is_array() const { return kind_ == Kind::kArray; }

  /// Typed accessors; throw PreconditionError on a kind mismatch.
  bool as_bool() const;
  double as_double() const;
  std::int64_t as_int() const;
  const std::string& as_string() const;
  /// The exact number lexeme as serialised.
  const std::string& number_lexeme() const;

  // --- Array interface. ---
  std::size_t size() const;
  const Value& at(std::size_t i) const;
  void push(Value v);

  // --- Object interface (insertion-ordered). ---
  /// Appends, or replaces the value of an existing key in place.
  void set(std::string key, Value v);
  /// Null when the key is absent.
  const Value* find(std::string_view key) const;
  /// Member value, or a throw when absent.
  const Value& at(std::string_view key) const;
  bool contains(std::string_view key) const { return find(key) != nullptr; }
  /// Removes every member (recursively, at any depth) with this key.
  void remove_recursive(std::string_view key);
  const std::vector<std::pair<std::string, Value>>& members() const;

  /// Compact serialisation (no whitespace), byte-deterministic.
  void write(std::ostream& os) const;
  std::string dump() const;

  /// Strict parser for one JSON document; rejects trailing garbage.
  /// Throws ceal::PreconditionError on malformed input.
  static Value parse(std::string_view text);

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  std::string text_;  // number lexeme or string payload
  std::vector<Value> items_;
  std::vector<std::pair<std::string, Value>> members_;
};

/// Writes `s` as a quoted JSON string with the fixed escaping policy
/// (backslash, quote, \n \r \t \b \f, \u00XX for other control bytes).
void write_escaped(std::ostream& os, std::string_view s);

/// Shortest round-trip formatting via std::to_chars.
std::string format_number(double v);
std::string format_number(std::int64_t v);
std::string format_number(std::uint64_t v);

}  // namespace ceal::json
