#include "core/thread_pool.h"

#include <algorithm>
#include <chrono>

#include "core/error.h"
#include "core/telemetry.h"

namespace ceal {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  stats_.resize(threads);
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

std::vector<ThreadPool::ThreadStats> ThreadPool::thread_stats() const {
  std::lock_guard lock(stats_mutex_);
  return stats_;
}

std::uint64_t ThreadPool::tasks_submitted() const {
  std::lock_guard lock(mutex_);
  return submitted_;
}

std::size_t ThreadPool::max_queue_depth() const {
  std::lock_guard lock(mutex_);
  return max_queue_depth_;
}

void ThreadPool::note_submit(std::size_t queue_depth) {
  telemetry::Telemetry* tel = telemetry_;
  if (tel == nullptr) return;
  tel->count("pool.tasks");
  tel->gauge("pool.queue_depth", static_cast<double>(queue_depth));
  tel->gauge_max("pool.queue_depth.max", static_cast<double>(queue_depth));
}

void ThreadPool::worker_loop(std::size_t worker_index) {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping and drained
      task = std::move(queue_.front());
      queue_.pop();
    }
    const auto start = std::chrono::steady_clock::now();
    task();
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    {
      std::lock_guard lock(stats_mutex_);
      ++stats_[worker_index].tasks;
      stats_[worker_index].busy_s += elapsed;
    }
    if (telemetry::Telemetry* tel = telemetry_; tel != nullptr) {
      tel->add_span("pool.task", elapsed);
      tel->observe("timing.pool.task_s", elapsed);
    }
  }
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& fn) {
  CEAL_EXPECT(begin <= end);
  const std::size_t n = end - begin;
  if (n == 0) return;
  const std::size_t chunks = std::min(n, thread_count() + 1);
  const std::size_t chunk = (n + chunks - 1) / chunks;

  std::vector<std::future<void>> futures;
  futures.reserve(chunks);
  // The calling thread takes the first chunk itself so a one-worker pool
  // still overlaps producer and consumer work.
  for (std::size_t c = 1; c < chunks; ++c) {
    const std::size_t lo = begin + c * chunk;
    const std::size_t hi = std::min(end, lo + chunk);
    if (lo >= hi) break;
    futures.push_back(submit([lo, hi, &fn] {
      for (std::size_t i = lo; i < hi; ++i) fn(i);
    }));
  }
  // Every chunk must finish before returning — even on failure. The
  // worker tasks capture `fn` by reference, so rethrowing while a chunk
  // is still queued or running would unwind state the workers use.
  std::exception_ptr first_error;
  const std::size_t first_hi = std::min(end, begin + chunk);
  try {
    for (std::size_t i = begin; i < first_hi; ++i) fn(i);
  } catch (...) {
    first_error = std::current_exception();
  }
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (first_error == nullptr) first_error = std::current_exception();
    }
  }
  if (first_error != nullptr) std::rethrow_exception(first_error);
}

}  // namespace ceal
