#include "core/thread_pool.h"

#include <algorithm>

#include "core/error.h"

namespace ceal {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping and drained
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
  }
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& fn) {
  CEAL_EXPECT(begin <= end);
  const std::size_t n = end - begin;
  if (n == 0) return;
  const std::size_t chunks = std::min(n, thread_count() + 1);
  const std::size_t chunk = (n + chunks - 1) / chunks;

  std::vector<std::future<void>> futures;
  futures.reserve(chunks);
  // The calling thread takes the first chunk itself so a one-worker pool
  // still overlaps producer and consumer work.
  for (std::size_t c = 1; c < chunks; ++c) {
    const std::size_t lo = begin + c * chunk;
    const std::size_t hi = std::min(end, lo + chunk);
    if (lo >= hi) break;
    futures.push_back(submit([lo, hi, &fn] {
      for (std::size_t i = lo; i < hi; ++i) fn(i);
    }));
  }
  const std::size_t first_hi = std::min(end, begin + chunk);
  for (std::size_t i = begin; i < first_hi; ++i) fn(i);

  for (auto& f : futures) f.get();  // rethrows the first failure
}

}  // namespace ceal
