// Small statistics toolkit used by the evaluation harness and benches.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace ceal {

/// Arithmetic mean. Requires a non-empty range.
double mean(std::span<const double> xs);

/// Unbiased sample variance (n-1 denominator). Requires size >= 2.
double variance(std::span<const double> xs);

/// Sample standard deviation. Requires size >= 2.
double stddev(std::span<const double> xs);

/// Median (average of middle two for even sizes). Requires non-empty.
double median(std::span<const double> xs);

/// Linear-interpolated quantile, q in [0,1]. Requires non-empty.
double quantile(std::span<const double> xs, double q);

/// Quantile estimated from a bucketed histogram, using the same rank
/// definition as quantile(): pos = q * (count - 1), linearly
/// interpolated within the containing bucket. `upper_bounds[i]` is the
/// inclusive upper edge of bucket i (ascending); `counts` may carry one
/// extra trailing overflow bucket. `observed_min`/`observed_max` clamp
/// the estimate so it never leaves the observed range (and bound the
/// otherwise edge-less first/overflow buckets). Requires a non-empty
/// histogram (total count >= 1) and q in [0,1].
double histogram_quantile(std::span<const std::uint64_t> counts,
                          std::span<const double> upper_bounds, double q,
                          double observed_min, double observed_max);

/// Absolute percentage error |y - yhat| / |y| of one prediction.
/// Requires y != 0.
double absolute_percentage_error(double y, double yhat);

/// Median absolute percentage error over paired actual/predicted values,
/// in percent (paper §7.4.2). Requires equal non-empty sizes, no zero actuals.
double mdape_percent(std::span<const double> actual,
                     std::span<const double> predicted);

/// Root mean squared error. Requires equal non-empty sizes.
double rmse(std::span<const double> actual, std::span<const double> predicted);

/// Indices that would sort `xs` ascending (stable).
std::vector<std::size_t> argsort(std::span<const double> xs);

/// Ranks (0-based, ties broken by index) of each element when sorted
/// ascending: rank[i] = position of xs[i] in the sorted order.
std::vector<std::size_t> ranks(std::span<const double> xs);

/// Spearman rank correlation between two equally sized samples (>= 2).
double spearman(std::span<const double> a, std::span<const double> b);

/// Pearson correlation between two equally sized samples (>= 2).
double pearson(std::span<const double> a, std::span<const double> b);

}  // namespace ceal
