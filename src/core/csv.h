// Minimal RFC-4180-ish CSV writer so bench binaries can dump machine-
// readable series next to their human-readable tables.
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace ceal {

class CsvWriter {
 public:
  /// Opens (truncates) `path` and writes the header row immediately.
  /// Throws std::runtime_error if the file cannot be opened.
  CsvWriter(const std::string& path, const std::vector<std::string>& header);

  /// Writes one data row; must match the header width.
  void add_row(const std::vector<std::string>& cells);

  std::size_t rows_written() const { return rows_; }

 private:
  static std::string escape(const std::string& cell);
  void write_row(const std::vector<std::string>& cells);

  std::ofstream out_;
  std::size_t columns_;
  std::size_t rows_ = 0;
};

}  // namespace ceal
