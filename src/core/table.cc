#include "core/table.h"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "core/error.h"

namespace ceal {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  CEAL_EXPECT(!header_.empty());
}

void Table::add_row(std::vector<std::string> cells) {
  CEAL_EXPECT_MSG(cells.size() <= header_.size(),
                  "row has more cells than the header");
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c)
    width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  const auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(width[c])) << row[c];
      if (c + 1 < row.size()) os << "  ";
    }
    os << '\n';
  };

  emit(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c)
    total += width[c] + (c + 1 < width.size() ? 2 : 0);
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
}

void Table::to_csv(std::ostream& os) const {
  const auto escape = [](const std::string& cell) {
    // RFC 4180: quote cells containing separators, quotes, or either
    // line-break character (a bare \r corrupts the record just as \n
    // does for consumers that split on CRLF).
    if (cell.find_first_of(",\"\n\r") == std::string::npos) return cell;
    std::string out = "\"";
    for (const char c : cell) {
      if (c == '"') out += '"';
      out += c;
    }
    out += '"';
    return out;
  };
  const auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) os << ',';
      os << escape(row[c]);
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
}

std::ostream& operator<<(std::ostream& os, const Table& t) {
  t.print(os);
  return os;
}

}  // namespace ceal
