// Crash-forensics flight recorder: a fixed-size ring of the most recent
// pre-serialized trace events, dumpable from an async-signal-safe
// SIGSEGV/SIGABRT/SIGBUS handler.
//
// The ring is sharded across Telemetry instances — every Telemetry that
// opts in (ceal_serve/ceal_tune `--flight-recorder N`) owns one
// FlightRecorder, so a daemon keeps an independent last-N-events window
// per session plus one for the server itself. Slots are fixed-size and
// pre-rendered at record() time (normal context, under the emit lock);
// the only thing the crash path does is read slots and write(2) them,
// guarded by a per-slot seqlock so a handler that interrupts record()
// mid-copy skips the torn slot instead of dumping garbage.
//
// Two dump paths:
//  * graceful (drain, `server.dump` op): snapshot() in normal context,
//    written through AtomicFile by the caller;
//  * crash: install_crash_dump_handler() registers a handler that
//    raw-open(2)s the pre-stored path, walks every recorder in the
//    process-wide registry via dump_to_fd(), fsyncs, and re-raises the
//    signal with the default disposition so the exit status still
//    reports the crash.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace ceal::telemetry {

class FlightRecorder {
 public:
  /// Largest pre-rendered event line a slot can hold; longer lines are
  /// replaced at record() time with a short `flight.oversize` stub so
  /// every dumped line stays parseable JSON.
  static constexpr std::size_t kSlotBytes = 4096;

  /// Ring of `capacity` slots (>= 1). Memory is capacity * ~4 KiB.
  explicit FlightRecorder(std::size_t capacity);

  /// Unregisters itself from the crash registry (no-op when never
  /// registered).
  ~FlightRecorder();

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  std::size_t capacity() const { return capacity_; }

  /// Stores one pre-serialized event line (no trailing newline).
  /// Callers serialise record() themselves (Telemetry::emit holds its
  /// emit lock); the seqlock only protects the crash-time reader.
  void record(std::string_view line);

  /// Total events ever recorded (monotonic).
  std::uint64_t recorded() const {
    return recorded_.load(std::memory_order_acquire);
  }
  /// Events overwritten by ring wrap-around (monotonic).
  std::uint64_t dropped() const {
    const std::uint64_t n = recorded();
    return n > capacity_ ? n - capacity_ : 0;
  }
  /// Events currently held (min(recorded, capacity)).
  std::size_t size() const {
    const std::uint64_t n = recorded();
    return n > capacity_ ? capacity_ : static_cast<std::size_t>(n);
  }

  /// The held lines, oldest first. Normal-context only (graceful dumps).
  std::vector<std::string> snapshot() const;

  /// Writes the held lines (oldest first, one per line) to `fd` using
  /// only async-signal-safe calls. Slots caught mid-write are skipped.
  void dump_to_fd(int fd) const;

 private:
  struct Slot {
    /// Seqlock: odd while record() is copying into the slot. A reader
    /// that sees an odd value, or a value that changed across its copy,
    /// discards the slot.
    std::atomic<std::uint64_t> version{0};
    std::uint32_t length = 0;
    char text[kSlotBytes];
  };

  std::size_t capacity_;
  std::unique_ptr<Slot[]> slots_;
  std::atomic<std::uint64_t> recorded_{0};
};

/// Registers `recorder` with the process-wide crash registry under
/// `label` (truncated to fit; characters outside [A-Za-z0-9._:-] become
/// '_' so the crash path can embed it in JSON without escaping). A
/// recorder registers at most once; re-registering updates the label.
void register_crash_recorder(FlightRecorder* recorder,
                             std::string_view label);

/// Removes `recorder` from the registry (idempotent). FlightRecorder's
/// destructor calls this, so a destroyed recorder can never be walked
/// by the crash handler.
void unregister_crash_recorder(FlightRecorder* recorder);

/// Installs SIGSEGV/SIGABRT/SIGBUS handlers that dump every registered
/// recorder to `path` (raw open/write — AtomicFile is not
/// signal-safe), then re-raise with the default disposition. The path
/// is copied into static storage; calling again replaces it.
void install_crash_dump_handler(const std::string& path);

/// Graceful-path dump: every registered recorder rendered as JSONL —
/// one `{"event":"flight.recorder","label":...,"events":N,"dropped":N}`
/// header per recorder followed by its held lines. Normal context only.
std::string dump_registered_recorders();

}  // namespace ceal::telemetry
