#include "core/flight_recorder.h"

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <sstream>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <unistd.h>
#define CEAL_FLIGHT_POSIX 1
#endif

namespace ceal::telemetry {
namespace {

constexpr std::size_t kMaxRegistered = 64;
constexpr std::size_t kLabelBytes = 80;
constexpr std::size_t kPathBytes = 512;

// Registry entries are never removed from the array — unregistering
// clears the pointer so the (lock-free) crash-time walk stays safe
// against concurrent register/unregister.
struct RegistryEntry {
  std::atomic<FlightRecorder*> recorder{nullptr};
  char label[kLabelBytes] = {};
};

RegistryEntry g_registry[kMaxRegistered];
std::mutex g_registry_mutex;  // serialises register/unregister only

char g_dump_path[kPathBytes] = {};
std::atomic<bool> g_handler_installed{false};

#if defined(CEAL_FLIGHT_POSIX)

// write(2) the whole buffer; ignores errors (nothing useful to do in a
// signal handler).
void raw_write(int fd, const char* data, std::size_t n) {
  std::size_t off = 0;
  while (off < n) {
    const ::ssize_t w = ::write(fd, data + off, n - off);
    if (w <= 0) {
      if (w < 0 && errno == EINTR) continue;
      return;
    }
    off += static_cast<std::size_t>(w);
  }
}

// Async-signal-safe unsigned decimal formatter. Returns chars written.
std::size_t raw_u64(char* out, std::uint64_t v) {
  char tmp[20];
  std::size_t n = 0;
  do {
    tmp[n++] = static_cast<char>('0' + v % 10);
    v /= 10;
  } while (v != 0);
  for (std::size_t i = 0; i < n; ++i) out[i] = tmp[n - 1 - i];
  return n;
}

void crash_handler(int sig) {
  const int fd =
      ::open(g_dump_path, O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd >= 0) {
    for (std::size_t i = 0; i < kMaxRegistered; ++i) {
      FlightRecorder* rec =
          g_registry[i].recorder.load(std::memory_order_acquire);
      if (rec == nullptr) continue;
      char header[kLabelBytes + 96];
      std::size_t n = 0;
      const char* pre = "{\"event\":\"flight.recorder\",\"label\":\"";
      std::memcpy(header + n, pre, std::strlen(pre));
      n += std::strlen(pre);
      const std::size_t label_len =
          ::strnlen(g_registry[i].label, kLabelBytes - 1);
      std::memcpy(header + n, g_registry[i].label, label_len);
      n += label_len;
      const char* mid = "\",\"signal\":";
      std::memcpy(header + n, mid, std::strlen(mid));
      n += std::strlen(mid);
      n += raw_u64(header + n, static_cast<std::uint64_t>(sig));
      header[n++] = '}';
      header[n++] = '\n';
      raw_write(fd, header, n);
      rec->dump_to_fd(fd);
    }
    ::fsync(fd);
    ::close(fd);
  }
  // SA_RESETHAND restored the default disposition, so re-raising
  // terminates with the signal's normal exit status (e.g. 139).
  ::raise(sig);
}

#endif  // CEAL_FLIGHT_POSIX

}  // namespace

FlightRecorder::FlightRecorder(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity),
      slots_(new Slot[capacity == 0 ? 1 : capacity]) {}

FlightRecorder::~FlightRecorder() { unregister_crash_recorder(this); }

void FlightRecorder::record(std::string_view line) {
  static constexpr std::string_view kOversize =
      "{\"event\":\"flight.oversize\"}";
  if (line.size() >= kSlotBytes) line = kOversize;
  const std::uint64_t n = recorded_.load(std::memory_order_relaxed);
  Slot& slot = slots_[n % capacity_];
  const std::uint64_t v = slot.version.load(std::memory_order_relaxed);
  slot.version.store(v + 1, std::memory_order_release);  // odd: writing
  std::atomic_thread_fence(std::memory_order_release);
  slot.length = static_cast<std::uint32_t>(line.size());
  std::memcpy(slot.text, line.data(), line.size());
  std::atomic_thread_fence(std::memory_order_release);
  slot.version.store(v + 2, std::memory_order_release);  // even: stable
  recorded_.store(n + 1, std::memory_order_release);
}

std::vector<std::string> FlightRecorder::snapshot() const {
  std::vector<std::string> out;
  const std::uint64_t n = recorded();
  const std::uint64_t first = n > capacity_ ? n - capacity_ : 0;
  out.reserve(static_cast<std::size_t>(n - first));
  for (std::uint64_t i = first; i < n; ++i) {
    const Slot& slot = slots_[i % capacity_];
    const std::uint64_t v0 = slot.version.load(std::memory_order_acquire);
    if (v0 % 2 != 0) continue;
    std::string line(slot.text, slot.length);
    std::atomic_thread_fence(std::memory_order_acquire);
    if (slot.version.load(std::memory_order_acquire) != v0) continue;
    out.push_back(std::move(line));
  }
  return out;
}

void FlightRecorder::dump_to_fd(int fd) const {
#if defined(CEAL_FLIGHT_POSIX)
  const std::uint64_t n = recorded();
  const std::uint64_t first = n > capacity_ ? n - capacity_ : 0;
  for (std::uint64_t i = first; i < n; ++i) {
    const Slot& slot = slots_[i % capacity_];
    const std::uint64_t v0 = slot.version.load(std::memory_order_acquire);
    if (v0 % 2 != 0) continue;
    char buf[kSlotBytes + 1];
    const std::uint32_t len =
        slot.length < kSlotBytes ? slot.length : kSlotBytes - 1;
    std::memcpy(buf, slot.text, len);
    std::atomic_thread_fence(std::memory_order_acquire);
    if (slot.version.load(std::memory_order_acquire) != v0) continue;
    buf[len] = '\n';
    raw_write(fd, buf, len + 1);
  }
#else
  (void)fd;
#endif
}

void register_crash_recorder(FlightRecorder* recorder,
                             std::string_view label) {
  if (recorder == nullptr) return;
  std::lock_guard<std::mutex> lock(g_registry_mutex);
  RegistryEntry* target = nullptr;
  for (auto& entry : g_registry) {
    FlightRecorder* cur = entry.recorder.load(std::memory_order_relaxed);
    if (cur == recorder) {
      target = &entry;
      break;
    }
    if (cur == nullptr && target == nullptr) target = &entry;
  }
  if (target == nullptr) return;  // registry full: crash dump loses this one
  std::size_t n = 0;
  for (char c : label) {
    if (n >= kLabelBytes - 1) break;
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '_' ||
                    c == ':' || c == '-';
    target->label[n++] = ok ? c : '_';
  }
  target->label[n] = '\0';
  target->recorder.store(recorder, std::memory_order_release);
}

void unregister_crash_recorder(FlightRecorder* recorder) {
  if (recorder == nullptr) return;
  std::lock_guard<std::mutex> lock(g_registry_mutex);
  for (auto& entry : g_registry) {
    if (entry.recorder.load(std::memory_order_relaxed) == recorder) {
      entry.recorder.store(nullptr, std::memory_order_release);
      entry.label[0] = '\0';
    }
  }
}

void install_crash_dump_handler(const std::string& path) {
#if defined(CEAL_FLIGHT_POSIX)
  std::snprintf(g_dump_path, sizeof(g_dump_path), "%s", path.c_str());
  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = crash_handler;
  sigemptyset(&sa.sa_mask);
  // SA_RESETHAND: a fault inside the handler terminates instead of
  // recursing, and the re-raise at the end hits the default action.
  sa.sa_flags = SA_RESETHAND;
  ::sigaction(SIGSEGV, &sa, nullptr);
  ::sigaction(SIGABRT, &sa, nullptr);
  ::sigaction(SIGBUS, &sa, nullptr);
  g_handler_installed.store(true, std::memory_order_release);
#else
  (void)path;
#endif
}

std::string dump_registered_recorders() {
  std::ostringstream out;
  std::lock_guard<std::mutex> lock(g_registry_mutex);
  for (const auto& entry : g_registry) {
    FlightRecorder* rec = entry.recorder.load(std::memory_order_acquire);
    if (rec == nullptr) continue;
    out << "{\"event\":\"flight.recorder\",\"label\":\"" << entry.label
        << "\",\"events\":" << rec->size() << ",\"dropped\":" << rec->dropped()
        << "}\n";
    for (const auto& line : rec->snapshot()) out << line << '\n';
  }
  return out.str();
}

}  // namespace ceal::telemetry
