#include "core/stats.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "core/error.h"

namespace ceal {

double mean(std::span<const double> xs) {
  CEAL_EXPECT(!xs.empty());
  return std::accumulate(xs.begin(), xs.end(), 0.0) /
         static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) {
  CEAL_EXPECT(xs.size() >= 2);
  const double m = mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return acc / static_cast<double>(xs.size() - 1);
}

double stddev(std::span<const double> xs) { return std::sqrt(variance(xs)); }

double median(std::span<const double> xs) { return quantile(xs, 0.5); }

double quantile(std::span<const double> xs, double q) {
  CEAL_EXPECT(!xs.empty());
  CEAL_EXPECT(q >= 0.0 && q <= 1.0);
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

double histogram_quantile(std::span<const std::uint64_t> counts,
                          std::span<const double> upper_bounds, double q,
                          double observed_min, double observed_max) {
  CEAL_EXPECT(q >= 0.0 && q <= 1.0);
  CEAL_EXPECT(!counts.empty());
  CEAL_EXPECT(counts.size() == upper_bounds.size() ||
              counts.size() == upper_bounds.size() + 1);
  std::uint64_t total = 0;
  for (const std::uint64_t c : counts) total += c;
  CEAL_EXPECT_MSG(total > 0, "histogram_quantile of an empty histogram");
  // Same rank definition as quantile(): the q-quantile sits at sorted
  // position q*(n-1). Walk buckets to the one containing that rank and
  // interpolate linearly across it, treating the bucket's mass as spread
  // uniformly over [lower_edge, upper_edge].
  const double pos = q * static_cast<double>(total - 1);
  std::uint64_t before = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;
    const double first = static_cast<double>(before);
    const double last = static_cast<double>(before + counts[i] - 1);
    if (pos <= last) {
      const double lower =
          i == 0 ? observed_min : std::max(observed_min, upper_bounds[i - 1]);
      const double upper = i < upper_bounds.size()
                               ? std::min(observed_max, upper_bounds[i])
                               : observed_max;
      if (upper <= lower || counts[i] == 1) {
        return std::clamp(upper, observed_min, observed_max);
      }
      const double frac = (pos - first) / (last - first);
      return std::clamp(lower + frac * (upper - lower), observed_min,
                        observed_max);
    }
    before += counts[i];
  }
  return observed_max;  // unreachable: total > 0 places pos in a bucket
}

double absolute_percentage_error(double y, double yhat) {
  CEAL_EXPECT(y != 0.0);
  return std::abs((y - yhat) / y);
}

double mdape_percent(std::span<const double> actual,
                     std::span<const double> predicted) {
  CEAL_EXPECT(!actual.empty());
  CEAL_EXPECT(actual.size() == predicted.size());
  std::vector<double> apes(actual.size());
  for (std::size_t i = 0; i < actual.size(); ++i)
    apes[i] = absolute_percentage_error(actual[i], predicted[i]);
  return median(apes) * 100.0;
}

double rmse(std::span<const double> actual,
            std::span<const double> predicted) {
  CEAL_EXPECT(!actual.empty());
  CEAL_EXPECT(actual.size() == predicted.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < actual.size(); ++i) {
    const double d = actual[i] - predicted[i];
    acc += d * d;
  }
  return std::sqrt(acc / static_cast<double>(actual.size()));
}

std::vector<std::size_t> argsort(std::span<const double> xs) {
  std::vector<std::size_t> idx(xs.size());
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  std::stable_sort(idx.begin(), idx.end(),
                   [&](std::size_t a, std::size_t b) { return xs[a] < xs[b]; });
  return idx;
}

std::vector<std::size_t> ranks(std::span<const double> xs) {
  const auto order = argsort(xs);
  std::vector<std::size_t> rank(xs.size());
  for (std::size_t pos = 0; pos < order.size(); ++pos) rank[order[pos]] = pos;
  return rank;
}

double spearman(std::span<const double> a, std::span<const double> b) {
  CEAL_EXPECT(a.size() == b.size());
  CEAL_EXPECT(a.size() >= 2);
  const auto ra = ranks(a);
  const auto rb = ranks(b);
  std::vector<double> da(ra.size()), db(rb.size());
  for (std::size_t i = 0; i < ra.size(); ++i) {
    da[i] = static_cast<double>(ra[i]);
    db[i] = static_cast<double>(rb[i]);
  }
  return pearson(da, db);
}

double pearson(std::span<const double> a, std::span<const double> b) {
  CEAL_EXPECT(a.size() == b.size());
  CEAL_EXPECT(a.size() >= 2);
  const double ma = mean(a);
  const double mb = mean(b);
  double num = 0.0, va = 0.0, vb = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    num += (a[i] - ma) * (b[i] - mb);
    va += (a[i] - ma) * (a[i] - ma);
    vb += (b[i] - mb) * (b[i] - mb);
  }
  CEAL_EXPECT_MSG(va > 0.0 && vb > 0.0, "constant input has no correlation");
  return num / std::sqrt(va * vb);
}

}  // namespace ceal
