// Aligned ASCII table printer used by the bench harness to emit the rows
// of each paper table/figure in a readable, diffable form.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace ceal {

/// Collects rows of string cells and renders them with aligned columns.
///
///   Table t({"algo", "time"});
///   t.add_row({"CEAL", "3.13"});
///   std::cout << t;        // operator<<(std::ostream&, const Table&),
///                          // renders via Table::print(std::ostream&)
///   t.to_csv(std::cout);   // same rows as RFC-4180-style CSV
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Appends a row; it may have fewer cells than the header (padded empty)
  /// but not more.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision.
  static std::string num(double v, int precision = 3);

  std::size_t row_count() const { return rows_.size(); }

  /// Renders with a header underline and two-space column gaps.
  void print(std::ostream& os) const;

  /// Writes header + rows as CSV (cells containing commas, quotes, or
  /// newlines are double-quoted with embedded quotes doubled). Used by
  /// `ceal_trace --csv` report output.
  void to_csv(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

std::ostream& operator<<(std::ostream& os, const Table& t);

}  // namespace ceal
