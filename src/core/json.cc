#include "core/json.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <ostream>
#include <sstream>

#include "core/error.h"

namespace ceal::json {

Value Value::boolean(bool v) {
  Value out;
  out.kind_ = Kind::kBool;
  out.bool_ = v;
  return out;
}

Value Value::number(double v) { return number_text(format_number(v)); }
Value Value::number(std::int64_t v) { return number_text(format_number(v)); }
Value Value::number(std::uint64_t v) { return number_text(format_number(v)); }

Value Value::number_text(std::string text) {
  Value out;
  out.kind_ = Kind::kNumber;
  out.text_ = std::move(text);
  return out;
}

Value Value::string(std::string v) {
  Value out;
  out.kind_ = Kind::kString;
  out.text_ = std::move(v);
  return out;
}

Value Value::array() {
  Value out;
  out.kind_ = Kind::kArray;
  return out;
}

Value Value::object() {
  Value out;
  out.kind_ = Kind::kObject;
  return out;
}

bool Value::as_bool() const {
  CEAL_EXPECT_MSG(kind_ == Kind::kBool, "JSON value is not a boolean");
  return bool_;
}

double Value::as_double() const {
  CEAL_EXPECT_MSG(kind_ == Kind::kNumber, "JSON value is not a number");
  return std::strtod(text_.c_str(), nullptr);
}

std::int64_t Value::as_int() const {
  CEAL_EXPECT_MSG(kind_ == Kind::kNumber, "JSON value is not a number");
  std::int64_t out = 0;
  const auto res =
      std::from_chars(text_.data(), text_.data() + text_.size(), out);
  CEAL_EXPECT_MSG(res.ec == std::errc() &&
                      res.ptr == text_.data() + text_.size(),
                  "JSON number is not an integer: " + text_);
  return out;
}

const std::string& Value::as_string() const {
  CEAL_EXPECT_MSG(kind_ == Kind::kString, "JSON value is not a string");
  return text_;
}

const std::string& Value::number_lexeme() const {
  CEAL_EXPECT_MSG(kind_ == Kind::kNumber, "JSON value is not a number");
  return text_;
}

std::size_t Value::size() const {
  CEAL_EXPECT_MSG(kind_ == Kind::kArray, "JSON value is not an array");
  return items_.size();
}

const Value& Value::at(std::size_t i) const {
  CEAL_EXPECT_MSG(kind_ == Kind::kArray, "JSON value is not an array");
  CEAL_EXPECT(i < items_.size());
  return items_[i];
}

void Value::push(Value v) {
  CEAL_EXPECT_MSG(kind_ == Kind::kArray, "JSON value is not an array");
  items_.push_back(std::move(v));
}

void Value::set(std::string key, Value v) {
  CEAL_EXPECT_MSG(kind_ == Kind::kObject, "JSON value is not an object");
  for (auto& [k, existing] : members_) {
    if (k == key) {
      existing = std::move(v);
      return;
    }
  }
  members_.emplace_back(std::move(key), std::move(v));
}

const Value* Value::find(std::string_view key) const {
  CEAL_EXPECT_MSG(kind_ == Kind::kObject, "JSON value is not an object");
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

const Value& Value::at(std::string_view key) const {
  const Value* v = find(key);
  CEAL_EXPECT_MSG(v != nullptr, "missing JSON member: " + std::string(key));
  return *v;
}

void Value::remove_recursive(std::string_view key) {
  if (kind_ == Kind::kArray) {
    for (Value& v : items_) v.remove_recursive(key);
    return;
  }
  if (kind_ != Kind::kObject) return;
  std::erase_if(members_, [&](const auto& m) { return m.first == key; });
  for (auto& [k, v] : members_) v.remove_recursive(key);
}

const std::vector<std::pair<std::string, Value>>& Value::members() const {
  CEAL_EXPECT_MSG(kind_ == Kind::kObject, "JSON value is not an object");
  return members_;
}

void write_escaped(std::ostream& os, std::string_view s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\r':
        os << "\\r";
        break;
      case '\t':
        os << "\\t";
        break;
      case '\b':
        os << "\\b";
        break;
      case '\f':
        os << "\\f";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

std::string format_number(double v) {
  CEAL_EXPECT_MSG(std::isfinite(v), "JSON numbers must be finite");
  char buf[64];
  const auto res = std::to_chars(buf, buf + sizeof buf, v);
  return std::string(buf, res.ptr);
}

std::string format_number(std::int64_t v) {
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof buf, v);
  return std::string(buf, res.ptr);
}

std::string format_number(std::uint64_t v) {
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof buf, v);
  return std::string(buf, res.ptr);
}

void Value::write(std::ostream& os) const {
  switch (kind_) {
    case Kind::kNull:
      os << "null";
      break;
    case Kind::kBool:
      os << (bool_ ? "true" : "false");
      break;
    case Kind::kNumber:
      os << text_;
      break;
    case Kind::kString:
      write_escaped(os, text_);
      break;
    case Kind::kArray: {
      os << '[';
      for (std::size_t i = 0; i < items_.size(); ++i) {
        if (i > 0) os << ',';
        items_[i].write(os);
      }
      os << ']';
      break;
    }
    case Kind::kObject: {
      os << '{';
      for (std::size_t i = 0; i < members_.size(); ++i) {
        if (i > 0) os << ',';
        write_escaped(os, members_[i].first);
        os << ':';
        members_[i].second.write(os);
      }
      os << '}';
      break;
    }
  }
}

std::string Value::dump() const {
  std::ostringstream os;
  write(os);
  return os.str();
}

namespace {

/// Recursive-descent parser over a string_view cursor.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value parse_document() {
    Value v = parse_value();
    skip_ws();
    CEAL_EXPECT_MSG(pos_ == text_.size(),
                    "trailing garbage after JSON document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw PreconditionError("malformed JSON at offset " +
                            std::to_string(pos_) + ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (pos_ >= text_.size() || text_[pos_] != c) {
      fail(std::string("expected '") + c + "'");
    }
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  Value parse_value() {
    skip_ws();
    const char c = peek();
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') return Value::string(parse_string());
    if (c == 't') {
      if (!consume_literal("true")) fail("bad literal");
      return Value::boolean(true);
    }
    if (c == 'f') {
      if (!consume_literal("false")) fail("bad literal");
      return Value::boolean(false);
    }
    if (c == 'n') {
      if (!consume_literal("null")) fail("bad literal");
      return Value();
    }
    return parse_number();
  }

  Value parse_object() {
    expect('{');
    Value out = Value::object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return out;
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      out.set(std::move(key), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return out;
    }
  }

  Value parse_array() {
    expect('[');
    Value out = Value::array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return out;
    }
    for (;;) {
      out.push(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return out;
    }
  }

  std::string parse_string() {
    if (peek() != '"') fail("expected string");
    ++pos_;
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code |= static_cast<unsigned>(h - 'A' + 10);
            else
              fail("bad \\u escape digit");
          }
          // The writer only emits \u00XX for control bytes; decode the
          // Latin-1 range as one byte and reject anything wider (the
          // trace layer never produces it).
          if (code > 0xFF) fail("unsupported \\u escape beyond 0x00ff");
          out.push_back(static_cast<char>(code));
          break;
        }
        default:
          fail("unknown escape");
      }
    }
  }

  Value parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    auto digits = [&] {
      const std::size_t d0 = pos_;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
      return pos_ > d0;
    };
    if (!digits()) fail("expected number");
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (!digits()) fail("expected fraction digits");
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (!digits()) fail("expected exponent digits");
    }
    return Value::number_text(std::string(text_.substr(start, pos_ - start)));
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Value Value::parse(std::string_view text) {
  return Parser(text).parse_document();
}

}  // namespace ceal::json
