#include "core/atomic_file.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <stdexcept>

namespace ceal {

namespace {

[[noreturn]] void fail(const std::string& what, const std::string& path) {
  throw std::runtime_error(what + " '" + path + "': " + std::strerror(errno));
}

void fsync_path(const std::string& path, int open_flags) {
  const int fd = ::open(path.c_str(), open_flags);
  if (fd < 0) fail("cannot open for fsync", path);
  const int rc = ::fsync(fd);
  // EINVAL/EROFS: the filesystem cannot sync this object (e.g. some
  // tmpfs directories); the rename is still ordered after the data write.
  if (rc != 0 && errno != EINVAL && errno != EROFS) {
    ::close(fd);
    fail("fsync failure on", path);
  }
  ::close(fd);
}

}  // namespace

AtomicFile::AtomicFile(std::string path)
    : path_(std::move(path)), tmp_path_(path_ + ".tmp") {
  os_.open(tmp_path_, std::ios::binary | std::ios::trunc);
  if (!os_) {
    throw std::runtime_error("cannot open '" + tmp_path_ + "' for writing");
  }
}

AtomicFile::~AtomicFile() {
  if (!committed_) discard();
}

void AtomicFile::discard() noexcept {
  if (os_.is_open()) os_.close();
  std::remove(tmp_path_.c_str());
}

void AtomicFile::commit() {
  if (committed_) {
    throw std::runtime_error("commit() called twice on '" + path_ + "'");
  }
  os_.flush();
  const bool ok = static_cast<bool>(os_);
  os_.close();
  if (!ok) {
    discard();
    throw std::runtime_error("write failure on '" + tmp_path_ + "'");
  }
  try {
    fsync_path(tmp_path_, O_WRONLY);
  } catch (...) {
    discard();
    throw;
  }
  if (std::rename(tmp_path_.c_str(), path_.c_str()) != 0) {
    const int saved = errno;
    discard();
    errno = saved;
    fail("cannot rename temp file onto", path_);
  }
  committed_ = true;
  // Persist the directory entry: without this a crash can forget the
  // rename even though the data blocks are on disk.
  const std::size_t slash = path_.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path_.substr(0, slash == 0 ? 1 : slash);
  fsync_path(dir, O_RDONLY | O_DIRECTORY);
}

void atomic_write_file(const std::string& path, std::string_view contents) {
  AtomicFile file(path);
  file.stream().write(contents.data(),
                      static_cast<std::streamsize>(contents.size()));
  file.commit();
}

}  // namespace ceal
