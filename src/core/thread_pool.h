// Fixed-size thread pool with a blocking work queue plus a chunked
// parallel_for helper.
//
// The mini-app kernels (src/apps) and the replication loops of the
// evaluation harness use this to exploit whatever cores the host offers;
// with a single hardware thread everything degrades gracefully to serial
// execution without code changes.
//
// Observability: attach a (concurrency-safe) telemetry::Telemetry with
// set_telemetry to record task counts, queue-depth gauges, and busy-time
// spans; thread_stats() exposes per-worker task/busy tallies either way.
// Queue-depth gauges reflect scheduling, not the tuning seed — attach a
// dedicated Telemetry instance to a pool rather than the one tracing a
// seeded tuning session (docs/OBSERVABILITY.md).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace ceal {

namespace telemetry {
class Telemetry;
}

class ThreadPool {
 public:
  /// Per-worker execution tally (thread_stats()).
  struct ThreadStats {
    std::uint64_t tasks = 0;
    double busy_s = 0.0;
  };

  /// Creates `threads` workers; 0 means std::thread::hardware_concurrency()
  /// (at least 1).
  explicit ThreadPool(std::size_t threads = 0);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Joins all workers after draining the queue.
  ~ThreadPool();

  std::size_t thread_count() const { return workers_.size(); }

  /// Attaches (or detaches, with nullptr) a telemetry registry. Not
  /// owned; must outlive the pool or be detached first. Counters/gauges
  /// recorded: "pool.tasks" (submissions), "pool.queue_depth" (depth
  /// after the latest submit), "pool.queue_depth.max" (high-water), and
  /// the "pool.task" span (per-task busy wall-clock). Call while no
  /// tasks are in flight.
  void set_telemetry(telemetry::Telemetry* telemetry) {
    telemetry_ = telemetry;
  }
  telemetry::Telemetry* telemetry() const { return telemetry_; }

  /// Per-worker task counts and busy seconds, indexed like the workers.
  std::vector<ThreadStats> thread_stats() const;

  /// Tasks ever submitted / largest queue depth observed at submit time.
  std::uint64_t tasks_submitted() const;
  std::size_t max_queue_depth() const;

  /// Enqueue a task; the returned future observes its completion and
  /// propagates exceptions.
  template <typename F>
  std::future<std::invoke_result_t<F>> submit(F&& fn) {
    using R = std::invoke_result_t<F>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> fut = task->get_future();
    std::size_t depth = 0;
    {
      std::lock_guard lock(mutex_);
      if (stopping_) throw std::runtime_error("ThreadPool is shutting down");
      queue_.emplace([task] { (*task)(); });
      depth = queue_.size();
      ++submitted_;
      if (depth > max_queue_depth_) max_queue_depth_ = depth;
    }
    note_submit(depth);
    cv_.notify_one();
    return fut;
  }

  /// Runs fn(i) for i in [begin, end) across the pool, blocking until all
  /// iterations finish. Work is split into contiguous chunks, one per
  /// worker (plus the calling thread participates). On failure every
  /// chunk still runs to completion (or its own failure) before the
  /// first exception is rethrown — fn is borrowed by the worker tasks,
  /// so no chunk may outlive the call.
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop(std::size_t worker_index);
  /// Telemetry hook for a submission (one null branch when detached).
  void note_submit(std::size_t queue_depth);

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
  std::uint64_t submitted_ = 0;     // guarded by mutex_
  std::size_t max_queue_depth_ = 0;  // guarded by mutex_

  telemetry::Telemetry* telemetry_ = nullptr;
  mutable std::mutex stats_mutex_;
  std::vector<ThreadStats> stats_;  // one slot per worker
};

}  // namespace ceal
