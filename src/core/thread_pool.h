// Fixed-size thread pool with a blocking work queue plus a chunked
// parallel_for helper.
//
// The mini-app kernels (src/apps) and the replication loops of the
// evaluation harness use this to exploit whatever cores the host offers;
// with a single hardware thread everything degrades gracefully to serial
// execution without code changes.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace ceal {

class ThreadPool {
 public:
  /// Creates `threads` workers; 0 means std::thread::hardware_concurrency()
  /// (at least 1).
  explicit ThreadPool(std::size_t threads = 0);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Joins all workers after draining the queue.
  ~ThreadPool();

  std::size_t thread_count() const { return workers_.size(); }

  /// Enqueue a task; the returned future observes its completion and
  /// propagates exceptions.
  template <typename F>
  std::future<std::invoke_result_t<F>> submit(F&& fn) {
    using R = std::invoke_result_t<F>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> fut = task->get_future();
    {
      std::lock_guard lock(mutex_);
      if (stopping_) throw std::runtime_error("ThreadPool is shutting down");
      queue_.emplace([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  /// Runs fn(i) for i in [begin, end) across the pool, blocking until all
  /// iterations finish. Work is split into contiguous chunks, one per
  /// worker (plus the calling thread participates). Exceptions from any
  /// iteration are rethrown (first one wins).
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

}  // namespace ceal
