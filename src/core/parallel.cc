#include "core/parallel.h"

#include <cstdlib>
#include <memory>
#include <mutex>

namespace ceal {

namespace {

std::mutex pool_mutex;
std::unique_ptr<ThreadPool> pool;

std::size_t default_thread_count() {
  if (const char* env = std::getenv("CEAL_THREADS")) {
    const long n = std::atol(env);
    if (n > 0) return static_cast<std::size_t>(n);
  }
  return 0;  // ThreadPool resolves 0 to hardware_concurrency
}

}  // namespace

ThreadPool& global_thread_pool() {
  std::lock_guard lock(pool_mutex);
  if (!pool) pool = std::make_unique<ThreadPool>(default_thread_count());
  return *pool;
}

void set_global_thread_pool_threads(std::size_t threads) {
  std::lock_guard lock(pool_mutex);
  pool = std::make_unique<ThreadPool>(threads);
}

std::size_t global_thread_count() { return global_thread_pool().thread_count(); }

void parallel_apply(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& fn) {
  ThreadPool& tp = global_thread_pool();
  if (tp.thread_count() <= 1) {
    for (std::size_t i = begin; i < end; ++i) fn(i);
    return;
  }
  tp.parallel_for(begin, end, fn);
}

}  // namespace ceal
