// PDF calculator: turns a scalar field into an empirical probability
// density function — the stand-in for the paper's PDF-calc analysis in the
// GP workflow.
#pragma once

#include <span>
#include <vector>

#include "core/thread_pool.h"

namespace ceal::apps {

struct PdfParams {
  std::size_t bins = 64;
};

struct PdfResult {
  double elapsed_seconds = 0.0;
  double lo = 0.0;                  ///< left edge of the first bin
  double hi = 0.0;                  ///< right edge of the last bin
  std::vector<double> density;      ///< normalised: sum(density)*width == 1
  std::vector<std::size_t> counts;  ///< raw per-bin counts
};

class PdfCalc {
 public:
  PdfCalc(PdfParams params, ceal::ThreadPool& pool);

  /// Histograms `field` between its min and max. Requires >= 2 values.
  PdfResult compute(std::span<const double> field);

 private:
  PdfParams params_;
  ceal::ThreadPool& pool_;
};

}  // namespace ceal::apps
