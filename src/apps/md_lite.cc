#include "apps/md_lite.h"

#include <chrono>
#include <cmath>

#include "core/error.h"

namespace ceal::apps {

namespace {

double wrap(double v, double box) {
  v = std::fmod(v, box);
  return v < 0.0 ? v + box : v;
}

double min_image(double d, double box) {
  if (d > 0.5 * box) return d - box;
  if (d < -0.5 * box) return d + box;
  return d;
}

}  // namespace

MdLite::MdLite(MdParams params, ceal::ThreadPool& pool)
    : params_(params), pool_(pool) {
  CEAL_EXPECT(params_.n_particles >= 2);
  CEAL_EXPECT(params_.cutoff > 0.0);
  CEAL_EXPECT(params_.box > 2.0 * params_.cutoff);
  CEAL_EXPECT(params_.dt > 0.0);

  cells_per_side_ = std::max<std::size_t>(
      3, static_cast<std::size_t>(params_.box / params_.cutoff));
  cell_size_ = params_.box / static_cast<double>(cells_per_side_);
  cells_.resize(cells_per_side_ * cells_per_side_);

  // Lattice initial placement with thermal velocities; a lattice avoids
  // overlapping particles that would blow up the LJ force.
  ceal::Rng rng(params_.seed);
  const auto per_side = static_cast<std::size_t>(
      std::ceil(std::sqrt(static_cast<double>(params_.n_particles))));
  const double spacing = params_.box / static_cast<double>(per_side);
  pos_.resize(params_.n_particles);
  vel_.resize(params_.n_particles);
  force_.assign(params_.n_particles, Vec2{});
  for (std::size_t i = 0; i < params_.n_particles; ++i) {
    const std::size_t gx = i % per_side;
    const std::size_t gy = i / per_side;
    pos_[i] = {(static_cast<double>(gx) + 0.5) * spacing,
               (static_cast<double>(gy) + 0.5) * spacing};
    vel_[i] = {rng.normal(0.0, params_.temperature),
               rng.normal(0.0, params_.temperature)};
  }
}

void MdLite::build_cells() {
  for (auto& cell : cells_) cell.clear();
  for (std::size_t i = 0; i < pos_.size(); ++i) {
    const auto cx = static_cast<std::size_t>(pos_[i].x / cell_size_) %
                    cells_per_side_;
    const auto cy = static_cast<std::size_t>(pos_[i].y / cell_size_) %
                    cells_per_side_;
    cells_[cy * cells_per_side_ + cx].push_back(
        static_cast<std::uint32_t>(i));
  }
}

void MdLite::compute_forces() {
  const double rc2 = params_.cutoff * params_.cutoff;
  const double box = params_.box;
  const std::size_t side = cells_per_side_;

  pool_.parallel_for(0, pos_.size(), [&](std::size_t i) {
    force_[i] = Vec2{};
    const auto cx =
        static_cast<std::ptrdiff_t>(pos_[i].x / cell_size_) %
        static_cast<std::ptrdiff_t>(side);
    const auto cy =
        static_cast<std::ptrdiff_t>(pos_[i].y / cell_size_) %
        static_cast<std::ptrdiff_t>(side);
    for (std::ptrdiff_t dy = -1; dy <= 1; ++dy) {
      for (std::ptrdiff_t dx = -1; dx <= 1; ++dx) {
        const auto nx = static_cast<std::size_t>(
            (cx + dx + static_cast<std::ptrdiff_t>(side)) %
            static_cast<std::ptrdiff_t>(side));
        const auto ny = static_cast<std::size_t>(
            (cy + dy + static_cast<std::ptrdiff_t>(side)) %
            static_cast<std::ptrdiff_t>(side));
        for (const std::uint32_t j : cells_[ny * side + nx]) {
          if (j == i) continue;
          const double rx = min_image(pos_[i].x - pos_[j].x, box);
          const double ry = min_image(pos_[i].y - pos_[j].y, box);
          const double r2 = rx * rx + ry * ry;
          if (r2 >= rc2 || r2 <= 1e-12) continue;
          const double inv2 = 1.0 / r2;
          const double inv6 = inv2 * inv2 * inv2;
          // dV/dr over r for LJ with epsilon = sigma = 1.
          const double fr = 24.0 * inv6 * (2.0 * inv6 - 1.0) * inv2;
          force_[i].x += fr * rx;
          force_[i].y += fr * ry;
        }
      }
    }
  });
}

double MdLite::pair_potential_sum() const {
  const double rc2 = params_.cutoff * params_.cutoff;
  const double box = params_.box;
  double pe = 0.0;
  const std::size_t side = cells_per_side_;
  for (std::size_t i = 0; i < pos_.size(); ++i) {
    const auto cx = static_cast<std::size_t>(pos_[i].x / cell_size_) % side;
    const auto cy = static_cast<std::size_t>(pos_[i].y / cell_size_) % side;
    for (std::ptrdiff_t dy = -1; dy <= 1; ++dy) {
      for (std::ptrdiff_t dx = -1; dx <= 1; ++dx) {
        const auto nx = static_cast<std::size_t>(
            (static_cast<std::ptrdiff_t>(cx) + dx +
             static_cast<std::ptrdiff_t>(side)) %
            static_cast<std::ptrdiff_t>(side));
        const auto ny = static_cast<std::size_t>(
            (static_cast<std::ptrdiff_t>(cy) + dy +
             static_cast<std::ptrdiff_t>(side)) %
            static_cast<std::ptrdiff_t>(side));
        for (const std::uint32_t j : cells_[ny * side + nx]) {
          if (j <= i) continue;  // each pair once
          const double rx = min_image(pos_[i].x - pos_[j].x, box);
          const double ry = min_image(pos_[i].y - pos_[j].y, box);
          const double r2 = rx * rx + ry * ry;
          if (r2 >= rc2 || r2 <= 1e-12) continue;
          const double inv6 = 1.0 / (r2 * r2 * r2);
          pe += 4.0 * inv6 * (inv6 - 1.0);
        }
      }
    }
  }
  return pe;
}

MdResult MdLite::run(const StepObserver& observer) {
  const auto start = std::chrono::steady_clock::now();
  const double dt = params_.dt;
  build_cells();
  compute_forces();

  for (std::size_t step = 0; step < params_.steps; ++step) {
    // Velocity Verlet: half kick, drift, rebuild, force, half kick.
    for (std::size_t i = 0; i < pos_.size(); ++i) {
      vel_[i].x += 0.5 * dt * force_[i].x;
      vel_[i].y += 0.5 * dt * force_[i].y;
      pos_[i].x = wrap(pos_[i].x + dt * vel_[i].x, params_.box);
      pos_[i].y = wrap(pos_[i].y + dt * vel_[i].y, params_.box);
    }
    build_cells();
    compute_forces();
    for (std::size_t i = 0; i < pos_.size(); ++i) {
      vel_[i].x += 0.5 * dt * force_[i].x;
      vel_[i].y += 0.5 * dt * force_[i].y;
    }
    if (observer) observer(step, pos_);
  }

  MdResult result;
  result.steps_run = params_.steps;
  for (const auto& v : vel_) {
    result.kinetic_energy += 0.5 * (v.x * v.x + v.y * v.y);
  }
  result.potential_energy = pair_potential_sum();
  result.elapsed_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return result;
}

}  // namespace ceal::apps
