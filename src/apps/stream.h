// Bounded in-memory data stream — a miniature ADIOS-style staging channel
// used to couple a producer mini-app to a consumer mini-app running
// concurrently (the "in-situ" data path of Fig. 2b).
//
// A fixed capacity models the staging area: a producer that outruns its
// consumer blocks, exactly the back-pressure that couples component
// performance in a real in-situ workflow.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <vector>

namespace ceal::apps {

/// One timestep's payload.
struct Frame {
  std::size_t step = 0;
  std::vector<double> data;
};

class Stream {
 public:
  /// `capacity` = number of frames the staging area holds. Must be >= 1.
  explicit Stream(std::size_t capacity);

  /// Blocks while the stream is full. Returns false if the stream was
  /// closed (frame dropped).
  bool push(Frame frame);

  /// Blocks until a frame is available or the stream is closed and
  /// drained; nullopt signals end-of-stream.
  std::optional<Frame> pop();

  /// Producer signals completion; pending frames remain poppable.
  void close();

  bool closed() const;
  std::size_t size() const;

  /// Total frames that passed through (for tests / stats).
  std::size_t frames_pushed() const;

  /// Cumulative time producers spent blocked on a full stream, seconds.
  double producer_blocked_seconds() const;
  /// Cumulative time consumers spent blocked on an empty stream, seconds.
  double consumer_blocked_seconds() const;

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<Frame> frames_;
  bool closed_ = false;
  std::size_t pushed_ = 0;
  double producer_blocked_ = 0.0;
  double consumer_blocked_ = 0.0;
};

}  // namespace ceal::apps
