#include "apps/stream.h"

#include <chrono>

#include "core/error.h"

namespace ceal::apps {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

}  // namespace

Stream::Stream(std::size_t capacity) : capacity_(capacity) {
  CEAL_EXPECT(capacity >= 1);
}

bool Stream::push(Frame frame) {
  std::unique_lock lock(mutex_);
  if (frames_.size() >= capacity_ && !closed_) {
    const auto t0 = Clock::now();
    not_full_.wait(lock,
                   [this] { return frames_.size() < capacity_ || closed_; });
    producer_blocked_ += seconds_since(t0);
  }
  if (closed_) return false;
  frames_.push_back(std::move(frame));
  ++pushed_;
  lock.unlock();
  not_empty_.notify_one();
  return true;
}

std::optional<Frame> Stream::pop() {
  std::unique_lock lock(mutex_);
  if (frames_.empty() && !closed_) {
    const auto t0 = Clock::now();
    not_empty_.wait(lock, [this] { return !frames_.empty() || closed_; });
    consumer_blocked_ += seconds_since(t0);
  }
  if (frames_.empty()) return std::nullopt;  // closed and drained
  Frame frame = std::move(frames_.front());
  frames_.pop_front();
  lock.unlock();
  not_full_.notify_one();
  return frame;
}

void Stream::close() {
  {
    std::lock_guard lock(mutex_);
    closed_ = true;
  }
  not_full_.notify_all();
  not_empty_.notify_all();
}

bool Stream::closed() const {
  std::lock_guard lock(mutex_);
  return closed_;
}

std::size_t Stream::size() const {
  std::lock_guard lock(mutex_);
  return frames_.size();
}

std::size_t Stream::frames_pushed() const {
  std::lock_guard lock(mutex_);
  return pushed_;
}

double Stream::producer_blocked_seconds() const {
  std::lock_guard lock(mutex_);
  return producer_blocked_;
}

double Stream::consumer_blocked_seconds() const {
  std::lock_guard lock(mutex_);
  return consumer_blocked_;
}

}  // namespace ceal::apps
