#include "apps/stage_write.h"

#include <algorithm>
#include <cstring>

#include "core/error.h"

namespace ceal::apps {

StageWriter::StageWriter(StageWriteParams params, Sink sink)
    : capacity_(params.buffer_mb * 1024 * 1024), sink_(std::move(sink)) {
  CEAL_EXPECT(params.buffer_mb >= 1);
  CEAL_EXPECT_MSG(static_cast<bool>(sink_), "StageWriter needs a sink");
  buffer_.reserve(capacity_);
}

void StageWriter::write(std::span<const std::byte> block) {
  stats_.bytes_in += block.size();
  std::size_t offset = 0;
  while (offset < block.size()) {
    const std::size_t room = capacity_ - buffer_.size();
    const std::size_t take = std::min(room, block.size() - offset);
    buffer_.insert(buffer_.end(), block.begin() + offset,
                   block.begin() + offset + take);
    offset += take;
    if (buffer_.size() == capacity_) flush();
  }
}

void StageWriter::write_doubles(std::span<const double> values) {
  write(std::as_bytes(values));
}

void StageWriter::finish() {
  if (!buffer_.empty()) flush();
}

void StageWriter::flush() {
  sink_(buffer_);
  stats_.bytes_flushed += buffer_.size();
  ++stats_.flush_count;
  buffer_.clear();
}

}  // namespace ceal::apps
