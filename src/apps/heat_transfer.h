// Mini Heat Transfer: explicit 5-point Jacobi iteration of the 2D heat
// equation — the stand-in for the paper's Heat Transfer mini-app (the
// simulation side of the HS workflow).
//
// The kernel does real floating-point work, parallelised over row bands
// with the shared ThreadPool, and exposes the simulation state after every
// step so an in-situ consumer (e.g. apps::StageWriter) can stream it.
#pragma once

#include <functional>
#include <span>
#include <vector>

#include "core/thread_pool.h"

namespace ceal::apps {

struct HeatParams {
  std::size_t nx = 256;        ///< interior grid width
  std::size_t ny = 256;        ///< interior grid height
  std::size_t steps = 50;      ///< Jacobi iterations
  double alpha = 0.2;          ///< diffusion number (stability: <= 0.25)
  double hot_boundary = 100.0; ///< Dirichlet value on the top edge
};

struct HeatResult {
  double elapsed_seconds = 0.0;
  double checksum = 0.0;       ///< sum of interior cells after the run
  std::size_t steps_run = 0;
};

class HeatTransfer2D {
 public:
  /// Called after each step with the current interior field (row-major,
  /// nx*ny) — the in-situ hook.
  using StepObserver =
      std::function<void(std::size_t step, std::span<const double> field)>;

  HeatTransfer2D(HeatParams params, ceal::ThreadPool& pool);

  /// Runs all steps; `observer` may be empty.
  HeatResult run(const StepObserver& observer = {});

  /// Current interior field (valid after run()).
  std::span<const double> field() const { return cur_; }

 private:
  void step_once();

  HeatParams params_;
  ceal::ThreadPool& pool_;
  std::vector<double> cur_, next_;  // padded (nx+2)*(ny+2) grids
  std::vector<double> interior_;    // scratch copy handed to observers
};

}  // namespace ceal::apps
