#include "apps/heat_transfer.h"

#include <chrono>

#include "core/error.h"

namespace ceal::apps {

HeatTransfer2D::HeatTransfer2D(HeatParams params, ceal::ThreadPool& pool)
    : params_(params), pool_(pool) {
  CEAL_EXPECT(params_.nx >= 2 && params_.ny >= 2);
  CEAL_EXPECT(params_.alpha > 0.0 && params_.alpha <= 0.25);
  const std::size_t padded = (params_.nx + 2) * (params_.ny + 2);
  cur_.assign(padded, 0.0);
  next_.assign(padded, 0.0);
  interior_.assign(params_.nx * params_.ny, 0.0);
  // Dirichlet hot top edge on both buffers.
  for (std::size_t i = 0; i < params_.nx + 2; ++i) {
    cur_[i] = params_.hot_boundary;
    next_[i] = params_.hot_boundary;
  }
}

void HeatTransfer2D::step_once() {
  const std::size_t nx = params_.nx;
  const std::size_t stride = nx + 2;
  const double a = params_.alpha;
  pool_.parallel_for(1, params_.ny + 1, [&](std::size_t row) {
    const double* up = cur_.data() + (row - 1) * stride;
    const double* mid = cur_.data() + row * stride;
    const double* down = cur_.data() + (row + 1) * stride;
    double* out = next_.data() + row * stride;
    for (std::size_t col = 1; col <= nx; ++col) {
      out[col] = mid[col] + a * (up[col] + down[col] + mid[col - 1] +
                                 mid[col + 1] - 4.0 * mid[col]);
    }
  });
  cur_.swap(next_);
}

HeatResult HeatTransfer2D::run(const StepObserver& observer) {
  const auto start = std::chrono::steady_clock::now();
  const std::size_t nx = params_.nx;
  const std::size_t stride = nx + 2;

  for (std::size_t step = 0; step < params_.steps; ++step) {
    step_once();
    if (observer) {
      for (std::size_t row = 0; row < params_.ny; ++row) {
        const double* src = cur_.data() + (row + 1) * stride + 1;
        std::copy(src, src + nx, interior_.data() + row * nx);
      }
      observer(step, interior_);
    }
  }

  HeatResult result;
  result.steps_run = params_.steps;
  for (std::size_t row = 1; row <= params_.ny; ++row) {
    for (std::size_t col = 1; col <= nx; ++col) {
      result.checksum += cur_[row * stride + col];
    }
  }
  result.elapsed_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return result;
}

}  // namespace ceal::apps
