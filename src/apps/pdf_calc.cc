#include "apps/pdf_calc.h"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "core/error.h"

namespace ceal::apps {

PdfCalc::PdfCalc(PdfParams params, ceal::ThreadPool& pool)
    : params_(params), pool_(pool) {
  CEAL_EXPECT(params_.bins >= 2);
}

PdfResult PdfCalc::compute(std::span<const double> field) {
  CEAL_EXPECT(field.size() >= 2);
  const auto start = std::chrono::steady_clock::now();

  PdfResult result;
  const auto [lo_it, hi_it] = std::minmax_element(field.begin(), field.end());
  result.lo = *lo_it;
  result.hi = *hi_it;
  const double span = result.hi - result.lo;
  const double width =
      (span > 0.0 ? span : 1.0) / static_cast<double>(params_.bins);

  // Per-chunk local histograms merged at the end (no shared-counter
  // contention).
  const std::size_t chunks = pool_.thread_count() + 1;
  std::vector<std::vector<std::size_t>> partial(
      chunks, std::vector<std::size_t>(params_.bins, 0));
  const std::size_t chunk_len = (field.size() + chunks - 1) / chunks;
  pool_.parallel_for(0, chunks, [&](std::size_t c) {
    const std::size_t begin = c * chunk_len;
    const std::size_t end = std::min(field.size(), begin + chunk_len);
    auto& hist = partial[c];
    for (std::size_t i = begin; i < end; ++i) {
      auto bin = static_cast<std::size_t>((field[i] - result.lo) / width);
      bin = std::min(bin, params_.bins - 1);
      ++hist[bin];
    }
  });

  result.counts.assign(params_.bins, 0);
  for (const auto& hist : partial) {
    for (std::size_t b = 0; b < params_.bins; ++b)
      result.counts[b] += hist[b];
  }
  result.density.resize(params_.bins);
  const double norm = 1.0 / (static_cast<double>(field.size()) * width);
  for (std::size_t b = 0; b < params_.bins; ++b) {
    result.density[b] = static_cast<double>(result.counts[b]) * norm;
  }

  result.elapsed_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return result;
}

}  // namespace ceal::apps
