// Voronoi-lite: per-particle local-structure analysis — the stand-in for
// Voro++ in the LV workflow. For each particle it finds, via cell lists,
// the nearest-neighbour distance and an approximate Voronoi cell volume
// (box area divided among particles weighted by local density), then
// aggregates a histogram of cell volumes. This mirrors the data-analysis
// role Voro++ plays downstream of LAMMPS.
#pragma once

#include <span>
#include <vector>

#include "apps/md_lite.h"
#include "core/thread_pool.h"

namespace ceal::apps {

struct VoronoiParams {
  double box = 64.0;        ///< periodic box edge (matches the producer)
  double search_radius = 4.0;
  std::size_t histogram_bins = 32;
};

struct VoronoiResult {
  double elapsed_seconds = 0.0;
  double mean_nn_distance = 0.0;       ///< mean nearest-neighbour distance
  double mean_cell_volume = 0.0;       ///< mean approximate cell area
  std::vector<std::size_t> histogram;  ///< cell-volume histogram
};

class VoronoiLite {
 public:
  VoronoiLite(VoronoiParams params, ceal::ThreadPool& pool);

  /// Analyses one frame of particle positions.
  VoronoiResult analyze(std::span<const Vec2> positions);

 private:
  VoronoiParams params_;
  ceal::ThreadPool& pool_;
};

}  // namespace ceal::apps
