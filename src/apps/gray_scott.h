// Mini Gray-Scott: 2D reaction-diffusion (two species U, V) — the stand-in
// for the paper's Gray-Scott simulation (the producer of the GP workflow).
#pragma once

#include <functional>
#include <span>
#include <vector>

#include "core/thread_pool.h"

namespace ceal::apps {

struct GrayScottParams {
  std::size_t n = 128;      ///< square grid edge (periodic boundary)
  std::size_t steps = 100;  ///< time steps
  double du = 0.16;         ///< diffusion rate of U
  double dv = 0.08;         ///< diffusion rate of V
  double feed = 0.060;      ///< feed rate F
  double kill = 0.062;      ///< kill rate k
  double dt = 1.0;
};

struct GrayScottResult {
  double elapsed_seconds = 0.0;
  double u_sum = 0.0;
  double v_sum = 0.0;
  std::size_t steps_run = 0;
};

class GrayScott2D {
 public:
  /// In-situ hook handing out the V field (row-major n*n) each step.
  using StepObserver =
      std::function<void(std::size_t step, std::span<const double> v_field)>;

  GrayScott2D(GrayScottParams params, ceal::ThreadPool& pool);

  GrayScottResult run(const StepObserver& observer = {});

  std::span<const double> u() const { return u_; }
  std::span<const double> v() const { return v_; }

 private:
  void step_once();

  GrayScottParams params_;
  ceal::ThreadPool& pool_;
  std::vector<double> u_, v_, un_, vn_;
};

}  // namespace ceal::apps
