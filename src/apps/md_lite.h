// MD-lite: a cell-list molecular-dynamics kernel (truncated Lennard-Jones,
// velocity Verlet, periodic box) — the stand-in for LAMMPS in the LV
// workflow. Small but structurally faithful: neighbour search via cell
// lists, force computation, integration, and an in-situ hook exposing
// particle positions each step for a downstream tesselator.
#pragma once

#include <functional>
#include <span>
#include <vector>

#include "core/rng.h"
#include "core/thread_pool.h"

namespace ceal::apps {

struct Vec2 {
  double x = 0.0;
  double y = 0.0;
};

struct MdParams {
  std::size_t n_particles = 1024;
  std::size_t steps = 20;
  double box = 64.0;       ///< periodic box edge
  double cutoff = 2.5;     ///< LJ cutoff radius
  double dt = 0.005;
  double temperature = 1.0;  ///< initial velocity scale
  std::uint64_t seed = 42;
};

struct MdResult {
  double elapsed_seconds = 0.0;
  double kinetic_energy = 0.0;
  double potential_energy = 0.0;
  std::size_t steps_run = 0;
};

class MdLite {
 public:
  /// In-situ hook: positions after each step.
  using StepObserver =
      std::function<void(std::size_t step, std::span<const Vec2> positions)>;

  MdLite(MdParams params, ceal::ThreadPool& pool);

  MdResult run(const StepObserver& observer = {});

  std::span<const Vec2> positions() const { return pos_; }

 private:
  void build_cells();
  void compute_forces();
  double pair_potential_sum() const;

  MdParams params_;
  ceal::ThreadPool& pool_;
  std::size_t cells_per_side_;
  double cell_size_;
  std::vector<Vec2> pos_, vel_, force_;
  std::vector<std::vector<std::uint32_t>> cells_;
};

}  // namespace ceal::apps
