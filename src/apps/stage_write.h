// StageWriter: buffered output staging — the stand-in for the paper's
// Stage Write application (the consumer of the HS workflow). Accepts data
// blocks, accumulates them in a fixed-size buffer, and flushes whole
// buffers to a sink. The buffer size (MB) is one of the tunables in
// Table 1, so the class mirrors that knob exactly.
#pragma once

#include <cstddef>
#include <functional>
#include <span>
#include <vector>

namespace ceal::apps {

struct StageWriteParams {
  std::size_t buffer_mb = 4;  ///< staging buffer capacity in MiB
};

struct StageWriteStats {
  std::size_t bytes_in = 0;
  std::size_t bytes_flushed = 0;
  std::size_t flush_count = 0;
};

class StageWriter {
 public:
  /// Sink consuming each flushed buffer (e.g. a file writer or /dev/null
  /// accumulator). Must not be empty.
  using Sink = std::function<void(std::span<const std::byte> buffer)>;

  StageWriter(StageWriteParams params, Sink sink);

  /// Stages a block, flushing as many full buffers as needed.
  void write(std::span<const std::byte> block);

  /// Convenience for double fields (the usual simulation payload).
  void write_doubles(std::span<const double> values);

  /// Flushes any partial buffer.
  void finish();

  const StageWriteStats& stats() const { return stats_; }
  std::size_t buffer_capacity_bytes() const { return capacity_; }

 private:
  void flush();

  std::size_t capacity_;
  Sink sink_;
  std::vector<std::byte> buffer_;
  StageWriteStats stats_;
};

}  // namespace ceal::apps
