#include "apps/voronoi_lite.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <numbers>

#include "core/error.h"

namespace ceal::apps {

VoronoiLite::VoronoiLite(VoronoiParams params, ceal::ThreadPool& pool)
    : params_(params), pool_(pool) {
  CEAL_EXPECT(params_.box > 0.0);
  CEAL_EXPECT(params_.search_radius > 0.0);
  CEAL_EXPECT(params_.histogram_bins >= 2);
}

VoronoiResult VoronoiLite::analyze(std::span<const Vec2> positions) {
  CEAL_EXPECT(positions.size() >= 2);
  const auto start = std::chrono::steady_clock::now();

  const double box = params_.box;
  const std::size_t side = std::max<std::size_t>(
      3, static_cast<std::size_t>(box / params_.search_radius));
  const double cell = box / static_cast<double>(side);

  std::vector<std::vector<std::uint32_t>> grid(side * side);
  for (std::size_t i = 0; i < positions.size(); ++i) {
    const auto cx = static_cast<std::size_t>(positions[i].x / cell) % side;
    const auto cy = static_cast<std::size_t>(positions[i].y / cell) % side;
    grid[cy * side + cx].push_back(static_cast<std::uint32_t>(i));
  }

  const auto min_image = [box](double d) {
    if (d > 0.5 * box) return d - box;
    if (d < -0.5 * box) return d + box;
    return d;
  };

  std::vector<double> nn_dist(positions.size());
  std::vector<std::size_t> local_count(positions.size());
  pool_.parallel_for(0, positions.size(), [&](std::size_t i) {
    const auto cx = static_cast<std::ptrdiff_t>(positions[i].x / cell) %
                    static_cast<std::ptrdiff_t>(side);
    const auto cy = static_cast<std::ptrdiff_t>(positions[i].y / cell) %
                    static_cast<std::ptrdiff_t>(side);
    double best = std::numeric_limits<double>::infinity();
    std::size_t count = 0;
    const double r2max = params_.search_radius * params_.search_radius;
    for (std::ptrdiff_t dy = -1; dy <= 1; ++dy) {
      for (std::ptrdiff_t dx = -1; dx <= 1; ++dx) {
        const auto nx = static_cast<std::size_t>(
            (cx + dx + static_cast<std::ptrdiff_t>(side)) %
            static_cast<std::ptrdiff_t>(side));
        const auto ny = static_cast<std::size_t>(
            (cy + dy + static_cast<std::ptrdiff_t>(side)) %
            static_cast<std::ptrdiff_t>(side));
        for (const std::uint32_t j : grid[ny * side + nx]) {
          if (j == i) continue;
          const double rx = min_image(positions[i].x - positions[j].x);
          const double ry = min_image(positions[i].y - positions[j].y);
          const double r2 = rx * rx + ry * ry;
          if (r2 < r2max) ++count;
          best = std::min(best, r2);
        }
      }
    }
    nn_dist[i] = std::isfinite(best) ? std::sqrt(best)
                                     : params_.search_radius;
    local_count[i] = count;
  });

  VoronoiResult result;
  result.histogram.assign(params_.histogram_bins, 0);

  // Approximate Voronoi cell area: share of the local neighbourhood area
  // per particle (density inverse), clamped to the box average.
  const double avg_area =
      box * box / static_cast<double>(positions.size());
  const double nbhd_area = std::numbers::pi * params_.search_radius *
                           params_.search_radius;
  double nn_sum = 0.0, vol_sum = 0.0;
  std::vector<double> volume(positions.size());
  for (std::size_t i = 0; i < positions.size(); ++i) {
    nn_sum += nn_dist[i];
    const double v = local_count[i] > 0
                         ? nbhd_area / static_cast<double>(local_count[i] + 1)
                         : avg_area;
    volume[i] = v;
    vol_sum += v;
  }
  result.mean_nn_distance = nn_sum / static_cast<double>(positions.size());
  result.mean_cell_volume = vol_sum / static_cast<double>(positions.size());

  const double vmax = 2.0 * result.mean_cell_volume + 1e-12;
  for (const double v : volume) {
    auto bin = static_cast<std::size_t>(
        std::min(1.0 - 1e-9, v / vmax) *
        static_cast<double>(params_.histogram_bins));
    ++result.histogram[bin];
  }

  result.elapsed_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return result;
}

}  // namespace ceal::apps
