#include "apps/gray_scott.h"

#include <chrono>

#include "core/error.h"

namespace ceal::apps {

GrayScott2D::GrayScott2D(GrayScottParams params, ceal::ThreadPool& pool)
    : params_(params), pool_(pool) {
  CEAL_EXPECT(params_.n >= 8);
  CEAL_EXPECT(params_.dt > 0.0);
  const std::size_t cells = params_.n * params_.n;
  u_.assign(cells, 1.0);
  v_.assign(cells, 0.0);
  un_.assign(cells, 0.0);
  vn_.assign(cells, 0.0);
  // Seed a square of V in the centre, the classic initial condition.
  const std::size_t n = params_.n;
  const std::size_t lo = n / 2 - n / 16;
  const std::size_t hi = n / 2 + n / 16;
  for (std::size_t y = lo; y < hi; ++y) {
    for (std::size_t x = lo; x < hi; ++x) {
      u_[y * n + x] = 0.50;
      v_[y * n + x] = 0.25;
    }
  }
}

void GrayScott2D::step_once() {
  const std::size_t n = params_.n;
  const double du = params_.du, dv = params_.dv;
  const double f = params_.feed, k = params_.kill, dt = params_.dt;
  pool_.parallel_for(0, n, [&](std::size_t y) {
    const std::size_t ym = (y + n - 1) % n;
    const std::size_t yp = (y + 1) % n;
    for (std::size_t x = 0; x < n; ++x) {
      const std::size_t xm = (x + n - 1) % n;
      const std::size_t xp = (x + 1) % n;
      const std::size_t i = y * n + x;
      const double u = u_[i];
      const double v = v_[i];
      const double lap_u = u_[ym * n + x] + u_[yp * n + x] + u_[y * n + xm] +
                           u_[y * n + xp] - 4.0 * u;
      const double lap_v = v_[ym * n + x] + v_[yp * n + x] + v_[y * n + xm] +
                           v_[y * n + xp] - 4.0 * v;
      const double uvv = u * v * v;
      un_[i] = u + dt * (du * lap_u - uvv + f * (1.0 - u));
      vn_[i] = v + dt * (dv * lap_v + uvv - (f + k) * v);
    }
  });
  u_.swap(un_);
  v_.swap(vn_);
}

GrayScottResult GrayScott2D::run(const StepObserver& observer) {
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t step = 0; step < params_.steps; ++step) {
    step_once();
    if (observer) observer(step, v_);
  }
  GrayScottResult result;
  result.steps_run = params_.steps;
  for (const double u : u_) result.u_sum += u;
  for (const double v : v_) result.v_sum += v;
  result.elapsed_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return result;
}

}  // namespace ceal::apps
