#include "tuner/pool_features.h"

#include "core/error.h"
#include "core/parallel.h"

namespace ceal::tuner {

namespace {

/// Featurization is memory-bound; below this many rows the pool
/// dispatch costs more than it saves.
constexpr std::size_t kParallelRows = 256;

}  // namespace

PoolFeatures featurize_pool(const sim::InSituWorkflow& workflow,
                            std::span<const config::Configuration> configs) {
  const auto& composite = workflow.space();
  const std::size_t n = configs.size();
  const std::size_t n_comps = workflow.component_count();

  PoolFeatures out{ml::FeatureMatrix(workflow.joint_space().dimension(), n),
                   {}};
  out.components.reserve(n_comps);
  for (std::size_t j = 0; j < n_comps; ++j) {
    out.components.emplace_back(composite.component_space(j).dimension(), n);
  }

  const auto fill_row = [&](std::size_t i) {
    out.joint.set_row(i, workflow.joint_space().features(configs[i]));
    for (std::size_t j = 0; j < n_comps; ++j) {
      out.components[j].set_row(
          i, composite.component_space(j).features(
                 composite.slice(configs[i], j)));
    }
  };
  if (n >= kParallelRows) {
    ceal::parallel_apply(0, n, fill_row);
  } else {
    for (std::size_t i = 0; i < n; ++i) fill_row(i);
  }
  return out;
}

ml::FeatureMatrix featurize_joint(
    const config::ConfigSpace& space,
    std::span<const config::Configuration> configs) {
  ml::FeatureMatrix out(space.dimension(), configs.size());
  const auto fill_row = [&](std::size_t i) {
    out.set_row(i, space.features(configs[i]));
  };
  if (configs.size() >= kParallelRows) {
    ceal::parallel_apply(0, configs.size(), fill_row);
  } else {
    for (std::size_t i = 0; i < configs.size(); ++i) fill_row(i);
  }
  return out;
}

}  // namespace ceal::tuner
