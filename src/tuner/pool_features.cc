#include "tuner/pool_features.h"

#include <algorithm>

#include "core/error.h"
#include "core/parallel.h"
#include "core/telemetry.h"

namespace ceal::tuner {

namespace {

/// Featurization is memory-bound; below this many rows the pool
/// dispatch costs more than it saves.
constexpr std::size_t kParallelRows = 256;

}  // namespace

PoolFeatures featurize_pool(const sim::InSituWorkflow& workflow,
                            std::span<const config::Configuration> configs) {
  const auto& composite = workflow.space();
  const std::size_t n = configs.size();
  const std::size_t n_comps = workflow.component_count();

  PoolFeatures out{ml::FeatureMatrix(workflow.joint_space().dimension(), n),
                   {}};
  out.components.reserve(n_comps);
  for (std::size_t j = 0; j < n_comps; ++j) {
    out.components.emplace_back(composite.component_space(j).dimension(), n);
  }

  const auto fill_row = [&](std::size_t i) {
    out.joint.set_row(i, workflow.joint_space().features(configs[i]));
    for (std::size_t j = 0; j < n_comps; ++j) {
      out.components[j].set_row(
          i, composite.component_space(j).features(
                 composite.slice(configs[i], j)));
    }
  };
  if (n >= kParallelRows) {
    ceal::parallel_apply(0, n, fill_row);
  } else {
    for (std::size_t i = 0; i < n; ++i) fill_row(i);
  }
  return out;
}

ml::FeatureMatrix featurize_joint(
    const config::ConfigSpace& space,
    std::span<const config::Configuration> configs) {
  ml::FeatureMatrix out(space.dimension(), configs.size());
  const auto fill_row = [&](std::size_t i) {
    out.set_row(i, space.features(configs[i]));
  };
  if (configs.size() >= kParallelRows) {
    ceal::parallel_apply(0, configs.size(), fill_row);
  } else {
    for (std::size_t i = 0; i < configs.size(); ++i) fill_row(i);
  }
  return out;
}

void featurize_pool_chunked(
    const sim::InSituWorkflow& workflow,
    std::span<const config::Configuration> configs, std::size_t chunk_rows,
    const std::function<void(std::size_t, const PoolFeatures&)>& fn,
    telemetry::Telemetry* telemetry) {
  CEAL_EXPECT(chunk_rows >= 1);
  // Each block is featurized by the same per-row code as the monolithic
  // path, so block row (first + i) equals monolithic row (first + i)
  // bitwise; only the allocation footprint changes.
  for (std::size_t first = 0; first < configs.size(); first += chunk_rows) {
    const std::size_t len = std::min(chunk_rows, configs.size() - first);
    telemetry::ScopedSpan span(telemetry, "pool.chunk");
    if (telemetry != nullptr) {
      telemetry->count("pool.chunks");
      telemetry->count("pool.chunk.rows", len);
    }
    const PoolFeatures block =
        featurize_pool(workflow, configs.subspan(first, len));
    fn(first, block);
  }
}

void featurize_joint_chunked(
    const config::ConfigSpace& space,
    std::span<const config::Configuration> configs, std::size_t chunk_rows,
    const std::function<void(std::size_t, const ml::FeatureMatrix&)>& fn,
    telemetry::Telemetry* telemetry) {
  CEAL_EXPECT(chunk_rows >= 1);
  for (std::size_t first = 0; first < configs.size(); first += chunk_rows) {
    const std::size_t len = std::min(chunk_rows, configs.size() - first);
    telemetry::ScopedSpan span(telemetry, "pool.chunk");
    if (telemetry != nullptr) {
      telemetry->count("pool.chunks");
      telemetry->count("pool.chunk.rows", len);
    }
    const ml::FeatureMatrix block =
        featurize_joint(space, configs.subspan(first, len));
    fn(first, block);
  }
}

}  // namespace ceal::tuner
