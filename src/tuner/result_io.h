// Exact (hex-float) TuneResult artifacts, shared by `ceal_tune
// --save-result` and the serving daemon's `session.query` op: two
// sessions produced identical TuneResults iff their result CSVs are
// byte-identical, which is how the kill-resume gates and the serve
// session-matrix tests compare runs across process boundaries.
#pragma once

#include <cstdint>
#include <string>

#include "tuner/autotuner.h"

namespace ceal::tuner {

/// C99 hex-float ("%a"): exact bitwise round-trip through text.
std::string hex_double(double v);

/// Writes the result CSV (atomic replace, doubles as hex floats).
/// `algorithm`/`workflow`/`objective` are the display names; `budget`
/// and `seed` identify the session the result came from.
void save_result_csv(const std::string& path, const TuneResult& result,
                     const std::string& algorithm,
                     const std::string& workflow,
                     const std::string& objective, std::size_t budget,
                     std::uint64_t seed);

}  // namespace ceal::tuner
