#include "tuner/measured_pool.h"

#include <algorithm>

#include "core/error.h"

namespace ceal::tuner {

std::size_t MeasuredPool::best_index(Objective objective) const {
  CEAL_EXPECT(!configs.empty());
  const auto& values = measured(objective);
  return static_cast<std::size_t>(
      std::min_element(values.begin(), values.end()) - values.begin());
}

std::size_t MeasuredPool::best_truth_index(Objective objective) const {
  CEAL_EXPECT(!configs.empty());
  const auto& values = truth(objective);
  return static_cast<std::size_t>(
      std::min_element(values.begin(), values.end()) - values.begin());
}

MeasuredPool measure_pool(const sim::InSituWorkflow& workflow, std::size_t n,
                          std::uint64_t seed) {
  CEAL_EXPECT(n >= 1);
  ceal::Rng rng(seed);
  MeasuredPool pool;
  pool.configs.reserve(n);
  pool.exec_s.reserve(n);
  pool.comp_ch.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    config::Configuration c = workflow.joint_space().random_valid(rng);
    const sim::Measurement m = workflow.run(c, rng);
    const sim::Measurement t = workflow.expected(c);
    pool.configs.push_back(std::move(c));
    pool.exec_s.push_back(m.exec_s);
    pool.comp_ch.push_back(m.comp_ch);
    pool.true_exec_s.push_back(t.exec_s);
    pool.true_comp_ch.push_back(t.comp_ch);
  }
  return pool;
}

std::vector<ComponentSamples> measure_components(
    const sim::InSituWorkflow& workflow, std::size_t n_per_component,
    std::uint64_t seed) {
  CEAL_EXPECT(n_per_component >= 1);
  ceal::Rng rng(seed);
  std::vector<ComponentSamples> all(workflow.component_count());
  for (std::size_t j = 0; j < workflow.component_count(); ++j) {
    const auto& app = workflow.app(j);
    const std::size_t n = app.configurable() ? n_per_component : 1;
    auto& samples = all[j];
    samples.configs.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      config::Configuration c = app.space().random_valid(rng);
      const sim::Measurement m = workflow.run_component(j, c, rng);
      samples.configs.push_back(std::move(c));
      samples.exec_s.push_back(m.exec_s);
      samples.comp_ch.push_back(m.comp_ch);
    }
  }
  return all;
}

}  // namespace ceal::tuner
