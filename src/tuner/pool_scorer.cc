#include "tuner/pool_scorer.h"

#include <algorithm>

#include "core/error.h"
#include "tuner/low_fidelity.h"
#include "tuner/surrogate.h"

namespace ceal::tuner {

PoolScorer::PoolScorer(const sim::InSituWorkflow& workflow,
                       std::span<const config::Configuration> configs,
                       std::size_t chunk_rows,
                       telemetry::Telemetry* telemetry)
    : workflow_(&workflow),
      joint_space_(&workflow.joint_space()),
      configs_(configs),
      chunk_rows_(chunk_rows),
      telemetry_(telemetry) {
  if (chunk_rows_ == 0) cached_.emplace(featurize_pool(workflow, configs));
}

PoolScorer::PoolScorer(const config::ConfigSpace& joint_space,
                       std::span<const config::Configuration> configs,
                       std::size_t chunk_rows,
                       telemetry::Telemetry* telemetry)
    : joint_space_(&joint_space),
      configs_(configs),
      chunk_rows_(chunk_rows),
      telemetry_(telemetry) {
  if (chunk_rows_ == 0) {
    cached_joint_.emplace(featurize_joint(joint_space, configs));
  }
}

std::vector<double> PoolScorer::surrogate_scores(
    const Surrogate& surrogate) const {
  if (!streaming()) {
    return surrogate.predict_many(cached_ ? cached_->joint : *cached_joint_);
  }
  std::vector<double> out(configs_.size());
  featurize_joint_chunked(
      *joint_space_, configs_, chunk_rows_,
      [&](std::size_t first, const ml::FeatureMatrix& block) {
        const auto scores = surrogate.predict_many(block);
        std::copy(scores.begin(), scores.end(), out.begin() + first);
      },
      telemetry_);
  return out;
}

std::vector<double> PoolScorer::low_fidelity_scores(
    const LowFidelityModel& model) const {
  CEAL_EXPECT_MSG(workflow_ != nullptr,
                  "low-fidelity scoring needs the full (workflow) scorer");
  if (!streaming()) return model.score_many(*cached_);
  std::vector<double> out(configs_.size());
  featurize_pool_chunked(
      *workflow_, configs_, chunk_rows_,
      [&](std::size_t first, const PoolFeatures& block) {
        const auto scores = model.score_many(block);
        std::copy(scores.begin(), scores.end(), out.begin() + first);
      },
      telemetry_);
  return out;
}

std::span<const double> PoolScorer::joint_row(std::size_t index) const {
  CEAL_EXPECT(index < configs_.size());
  if (!streaming()) {
    return cached_ ? cached_->joint.row(index) : cached_joint_->row(index);
  }
  row_scratch_ = joint_space_->features(configs_[index]);
  return row_scratch_;
}

}  // namespace ceal::tuner
