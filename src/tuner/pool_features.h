// Cached featurization of a candidate pool.
//
// CEAL's inner loop scores the same ~2000-configuration pool with both
// the low-fidelity combination model and the high-fidelity surrogate on
// every iteration. Featurizing a configuration allocates a fresh
// std::vector<double> per call, and the low-fidelity model additionally
// slices the joint configuration per component — all of it identical
// work every time. A PoolFeatures materialises the joint feature matrix
// and each component's sliced feature matrix once per tune() so every
// later scoring pass is a pure read of a row-major array.
#pragma once

#include <functional>
#include <span>
#include <vector>

#include "config/config_space.h"
#include "ml/dataset.h"
#include "sim/workflow.h"

namespace ceal::telemetry {
class Telemetry;
}

namespace ceal::tuner {

struct PoolFeatures {
  /// Joint-space features, one row per pool configuration.
  ml::FeatureMatrix joint;
  /// Per component j: features of the component's slice of each pool
  /// configuration (same row order as `joint`).
  std::vector<ml::FeatureMatrix> components;

  std::size_t size() const { return joint.size(); }
};

/// Featurizes `configs` against the workflow's joint and component
/// spaces, parallel over rows on the global thread pool. Row values are
/// exactly space.features(config), so cached and uncached scoring agree
/// bitwise.
PoolFeatures featurize_pool(const sim::InSituWorkflow& workflow,
                            std::span<const config::Configuration> configs);

/// Joint-space-only featurization for tuners that never slice per
/// component (active learning, random search).
ml::FeatureMatrix featurize_joint(
    const config::ConfigSpace& space,
    std::span<const config::Configuration> configs);

/// Streaming counterpart of featurize_pool for pools too large to hold
/// as one feature matrix: featurizes consecutive blocks of at most
/// `chunk_rows` configurations (chunk_rows >= 1) into a reusable block
/// and calls `fn(first, block)` for each, where `first` is the pool
/// index of the block's row 0. Block rows are bitwise identical to the
/// corresponding monolithic featurize_pool rows for any thread count.
/// `telemetry` (nullable) receives the "pool.chunk" span plus
/// "pool.chunks"/"pool.chunk.rows" counters per block.
void featurize_pool_chunked(
    const sim::InSituWorkflow& workflow,
    std::span<const config::Configuration> configs, std::size_t chunk_rows,
    const std::function<void(std::size_t, const PoolFeatures&)>& fn,
    telemetry::Telemetry* telemetry = nullptr);

/// Joint-space-only streaming featurization (same contract as
/// featurize_pool_chunked, without the per-component slices).
void featurize_joint_chunked(
    const config::ConfigSpace& space,
    std::span<const config::Configuration> configs, std::size_t chunk_rows,
    const std::function<void(std::size_t, const ml::FeatureMatrix&)>& fn,
    telemetry::Telemetry* telemetry = nullptr);

}  // namespace ceal::tuner
